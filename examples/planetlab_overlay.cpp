// Planet-Lab-scale overlay example: self-configuration, churn and
// multi-hop virtual IP routing on a 60-node wide-area deployment.
//
// Shows the properties the paper's Section IV-D exercises at 118 nodes:
// decentralized join, greedy multi-hop routing of tunneled IP packets,
// and self-repair when nodes leave.  (The full 118-node Figure-5
// regeneration with loaded CPUs lives in bench/fig5_planetlab.)
//
//   $ ./planetlab_overlay
#include <algorithm>
#include <cstdio>

#include "ipop/node.hpp"
#include "net/ping.hpp"
#include "net/topology.hpp"

using namespace ipop;

int main() {
  net::PlanetLabOptions plopts;
  plopts.nodes = 60;
  plopts.cpu_load_mean = 0.0;  // unloaded: this example is about routing
  plopts.sched_quantum = util::Duration{0};
  auto tb = net::build_planetlab(plopts);
  auto& loop = tb.net->loop();

  std::vector<std::unique_ptr<core::IpopNode>> nodes;
  const brunet::TransportAddress seed{brunet::TransportAddress::Proto::kUdp,
                                      tb.ips[0], 17001};
  for (std::size_t i = 0; i < tb.hosts.size(); ++i) {
    core::IpopConfig cfg;
    cfg.tap.ip = net::Ipv4Address(
        172, 16, static_cast<std::uint8_t>(1 + i / 250),
        static_cast<std::uint8_t>(1 + i % 250));
    auto n = std::make_unique<core::IpopNode>(*tb.hosts[i], cfg);
    if (i != 0) n->add_seed(seed);
    nodes.push_back(std::move(n));
  }
  std::printf("joining %zu nodes...\n", nodes.size());
  for (auto& n : nodes) n->start();
  loop.run_until(util::seconds(90));

  std::size_t total_conns = 0, shortcuts = 0;
  for (auto& n : nodes) {
    total_conns += n->overlay().table().size();
    shortcuts += n->overlay().table().count(
        brunet::ConnectionType::kStructuredFar);
  }
  std::printf("overlay up: %.1f connections/node (%zu shortcuts total)\n",
              double(total_conns) / double(nodes.size()), shortcuts);

  // Virtual pings between random distant pairs.
  util::Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, 59));
    auto b = static_cast<std::size_t>(rng.uniform_int(0, 59));
    if (b == a) b = (b + 17) % 60;
    net::Pinger pinger(tb.hosts[a]->stack());
    net::Pinger::Options opts;
    opts.count = 10;
    opts.interval = util::milliseconds(100);
    opts.timeout = util::seconds(3);
    bool done = false;
    pinger.run(nodes[b]->virtual_ip(), opts, [&](net::PingResult r) {
      std::printf("pl%-3zu -> pl%-3zu : %2d/%2d replies, RTT mean %7.1f ms\n",
                  a, b, r.received, r.sent, r.rtts_ms.mean());
      done = true;
    });
    while (!done) loop.run_until(loop.now() + util::seconds(1));
  }

  // Churn: kill a fifth of the overlay, verify routing still works.
  std::printf("\nstopping 12 nodes (churn)...\n");
  for (std::size_t i = 5; i < 60; i += 5) nodes[i]->stop();
  loop.run_until(loop.now() + util::seconds(60));  // self-repair window

  int ok = 0, total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    std::size_t a = static_cast<std::size_t>(rng.uniform_int(0, 59));
    std::size_t b = static_cast<std::size_t>(rng.uniform_int(0, 59));
    if (a % 5 == 0 || b % 5 == 0 || a == b) continue;  // skip dead/self
    net::Pinger pinger(tb.hosts[a]->stack());
    net::Pinger::Options opts;
    opts.count = 3;
    opts.interval = util::milliseconds(100);
    opts.timeout = util::seconds(3);
    bool done = false;
    pinger.run(nodes[b]->virtual_ip(), opts, [&](net::PingResult r) {
      ok += r.received;
      total += r.sent;
      done = true;
    });
    while (!done) loop.run_until(loop.now() + util::seconds(1));
  }
  std::printf("after churn: %d/%d pings delivered between surviving nodes\n",
              ok, total);
  return 0;
}
