// Grid cluster example: the paper's case study end to end.
//
// Six machines across three firewalled administrative domains (the
// Figure-4 testbed) aggregate into one virtual IP network, then run a
// complete parallel LSS job — SSH-booted workers, MPI-style messaging,
// NFS-served database files — with zero changes to any of those
// applications.  Without IPOP this workload cannot run at all: F1/F2 are
// NATted and V1/L1 sit behind site firewalls.
//
//   $ ./grid_cluster
#include <cstdio>

#include "apps/lss.hpp"
#include "ipop/fig4_overlay.hpp"

using namespace ipop;

int main() {
  std::printf("building the three-site testbed (Figure 4) ...\n");
  core::Fig4OverlayOptions opts;
  auto overlay = std::make_unique<core::Fig4Overlay>(opts);
  overlay->start_all();
  if (!overlay->converge(util::seconds(240))) {
    std::printf("overlay did not converge\n");
    return 1;
  }
  std::printf("overlay self-configured: all 6 nodes fully connected\n");
  for (const auto& name : core::Fig4Overlay::machine_names()) {
    auto& node = overlay->node(name);
    std::printf("  %-3s vip=%-13s p2p=%s conns=%zu\n", name.c_str(),
                overlay->vip(name).to_string().c_str(),
                node.overlay().address().short_hex().c_str(),
                node.overlay().table().size());
  }

  // LSS: F4 serves the databases, F3 is the master, the four compute
  // nodes span all three sites.  (Small databases so the example runs in
  // a blink; bench/table4_lss uses the paper's full 32 MB x 4.)
  auto& tb = overlay->testbed();
  apps::NfsServer nfs(tb.f4->stack());
  apps::LssConfig cfg;
  cfg.images = 3;
  cfg.databases = 4;
  cfg.db_size = 512 * 1024;
  cfg.fit_compute_per_db = util::seconds(5);
  cfg.file_server = overlay->vip("F4");
  for (int db = 0; db < cfg.databases; ++db) {
    nfs.add_file("db" + std::to_string(db), cfg.db_size);
  }

  std::vector<apps::LssMember> members{
      {&overlay->host("F3"), overlay->vip("F3")},  // master
      {&overlay->host("F1"), overlay->vip("F1")},
      {&overlay->host("F2"), overlay->vip("F2")},
      {&overlay->host("V1"), overlay->vip("V1")},
      {&overlay->host("L1"), overlay->vip("L1")},
  };
  apps::LssJob job(std::move(members), cfg);

  std::printf("\nlaunching LSS: ssh-booting 5 ranks, then %d images x %d "
              "databases...\n",
              cfg.images, cfg.databases);
  bool done = false;
  apps::LssReport report;
  job.run([&](apps::LssReport r) {
    report = std::move(r);
    done = true;
  });
  while (!done) {
    overlay->loop().run_until(overlay->loop().now() + util::seconds(10));
  }

  std::printf("LSS %s; per-image wall time (s):", report.ok ? "ok" : "FAILED");
  for (double s : report.image_seconds) std::printf(" %.1f", s);
  std::printf("\nimage 1 pays the cold NFS caches; images 2+ run from the "
              "local cache\n");
  return report.ok ? 0 : 1;
}
