// Quickstart: two machines, one of them behind a NAT, joined into a
// virtual IP network by IPOP.
//
// The physical network cannot deliver unsolicited packets to the NATted
// machine.  After IPOP self-configures, both machines share the
// 172.16.0.0/16 virtual network and plain `ping` works in both
// directions — no configuration beyond a seed endpoint.
//
//   $ ./quickstart
#include <cstdio>

#include "ipop/node.hpp"
#include "net/ping.hpp"
#include "net/topology.hpp"

using namespace ipop;

int main() {
  // --- Physical world: alice (public) and bob (behind a cone NAT) --------
  net::Network network(/*seed=*/2024);
  auto& internet = network.add_switch("internet");
  sim::LinkConfig wire;
  wire.delay = util::milliseconds(10);

  auto& alice = network.add_host("alice");
  network.connect_to_switch(alice.stack(),
                            {"eth0", net::Ipv4Address(8, 8, 0, 2), 24},
                            internet, wire);

  auto& nat = network.add_nat("home-router", net::NatType::kPortRestrictedCone);
  auto& bob = network.add_host("bob");
  network.connect(bob.stack(), {"eth0", net::Ipv4Address(192, 168, 0, 2), 24},
                  nat.stack(), {"in", net::Ipv4Address(192, 168, 0, 1), 24},
                  wire);
  network.connect_to_switch(nat.stack(),
                            {"out", net::Ipv4Address(8, 8, 0, 3), 24},
                            internet, wire);
  bob.stack().add_route(net::Ipv4Prefix::parse("0.0.0.0/0"), 0,
                        net::Ipv4Address(192, 168, 0, 1));
  nat.stack().add_route(net::Ipv4Prefix::parse("0.0.0.0/0"), 1,
                        net::Ipv4Address(8, 8, 0, 2));

  // --- IPOP: one node per machine, bob seeds at alice --------------------
  core::IpopConfig acfg;
  acfg.tap.ip = net::Ipv4Address(172, 16, 0, 1);
  core::IpopNode ipop_alice(alice, acfg);

  core::IpopConfig bcfg;
  bcfg.tap.ip = net::Ipv4Address(172, 16, 0, 2);
  core::IpopNode ipop_bob(bob, bcfg);
  ipop_bob.add_seed({brunet::TransportAddress::Proto::kUdp,
                     net::Ipv4Address(8, 8, 0, 2), 17001});

  ipop_alice.start();
  ipop_bob.start();
  std::printf("joining the overlay...\n");
  network.loop().run_until(util::seconds(20));

  // --- Unmodified ping over the virtual network, BOTH directions ---------
  auto ping = [&](net::Host& from, net::Ipv4Address to, const char* label) {
    net::Pinger pinger(from.stack());
    net::Pinger::Options opts;
    opts.count = 5;
    opts.interval = util::milliseconds(200);
    opts.timeout = util::seconds(2);
    bool done = false;
    pinger.run(to, opts, [&](net::PingResult r) {
      std::printf("%s: %d/%d replies, RTT mean %.2f ms\n", label, r.received,
                  r.sent, r.rtts_ms.mean());
      done = true;
    });
    while (!done) network.loop().run_until(network.loop().now() + util::seconds(1));
  };

  ping(alice, net::Ipv4Address(172, 16, 0, 2),
       "alice -> bob  (unsolicited inbound through the NAT!)");
  ping(bob, net::Ipv4Address(172, 16, 0, 1), "bob   -> alice");

  std::printf(
      "\nthe same pair cannot exchange unsolicited packets physically:\n");
  net::Pinger phys(alice.stack());
  net::Pinger::Options opts;
  opts.count = 3;
  opts.interval = util::milliseconds(200);
  opts.timeout = util::seconds(2);
  bool done = false;
  phys.run(net::Ipv4Address(192, 168, 0, 2), opts, [&](net::PingResult r) {
    std::printf("alice -> bob's private address: %d/%d replies\n", r.received,
                r.sent);
    done = true;
  });
  while (!done) network.loop().run_until(network.loop().now() + util::seconds(1));
  return 0;
}
