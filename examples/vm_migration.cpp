// VM migration example (paper Section III-E, "Multiple IPs and mobility").
//
// One IPOP node can route for several virtual IPs (the VMs it hosts) by
// publishing IP -> node bindings in the Brunet-ARP DHT.  When a VM
// migrates to another host — keeping its virtual IP — the new host simply
// re-registers the binding; peers re-resolve after their cache TTL (or an
// invalidation) and traffic follows the VM.
//
//   $ ./vm_migration
#include <cstdio>

#include "ipop/node.hpp"
#include "net/ping.hpp"
#include "net/topology.hpp"

using namespace ipop;

namespace {

void ping_vm(net::Network& network, net::Host& from, net::Ipv4Address vm,
             const char* label) {
  net::Pinger pinger(from.stack());
  net::Pinger::Options opts;
  opts.count = 5;
  opts.interval = util::milliseconds(100);
  opts.timeout = util::seconds(2);
  bool done = false;
  pinger.run(vm, opts, [&](net::PingResult r) {
    std::printf("%-28s %d/%d replies, RTT mean %.2f ms\n", label, r.received,
                r.sent, r.rtts_ms.mean());
    done = true;
  });
  while (!done) network.loop().run_until(network.loop().now() + util::seconds(1));
}

}  // namespace

int main() {
  // Three public hosts on a WAN-ish switch.
  net::Network network(7);
  auto& sw = network.add_switch("net");
  sim::LinkConfig wire;
  wire.delay = util::milliseconds(5);
  std::vector<net::Host*> hosts;
  std::vector<std::unique_ptr<core::IpopNode>> nodes;
  for (int i = 0; i < 3; ++i) {
    auto& h = network.add_host("host" + std::to_string(i));
    network.connect_to_switch(
        h.stack(),
        {"eth0", net::Ipv4Address(9, 0, 0, static_cast<std::uint8_t>(i + 1)), 24},
        sw, wire);
    hosts.push_back(&h);
    core::IpopConfig cfg;
    cfg.tap.ip = net::Ipv4Address(172, 16, 0, static_cast<std::uint8_t>(i + 1));
    cfg.use_brunet_arp = true;  // DHT-based IP resolution (Section III-E)
    cfg.brunet_arp.cache_ttl = util::seconds(5);
    auto n = std::make_unique<core::IpopNode>(h, cfg);
    if (i > 0) {
      n->add_seed({brunet::TransportAddress::Proto::kUdp,
                   net::Ipv4Address(9, 0, 0, 1), 17001});
    }
    nodes.push_back(std::move(n));
  }
  for (auto& n : nodes) n->start();
  network.loop().run_until(util::seconds(30));

  const auto vm_ip = net::Ipv4Address(172, 16, 9, 9);
  std::printf("VM %s boots on host1\n", vm_ip.to_string().c_str());
  nodes[1]->route_for(vm_ip);
  network.loop().run_until(network.loop().now() + util::seconds(5));
  ping_vm(network, *hosts[0], vm_ip, "host0 -> VM (on host1):");
  std::printf("  host1 injected %llu packets for the VM\n",
              static_cast<unsigned long long>(
                  nodes[1]->metrics().packets_injected));

  std::printf("\nVM migrates host1 -> host2 (keeps its virtual IP)\n");
  nodes[1]->unroute_for(vm_ip);
  nodes[2]->route_for(vm_ip);
  network.loop().run_until(network.loop().now() + util::seconds(10));

  ping_vm(network, *hosts[0], vm_ip, "host0 -> VM (on host2):");
  std::printf("  host2 injected %llu packets for the VM\n",
              static_cast<unsigned long long>(
                  nodes[2]->metrics().packets_injected));
  std::printf("\nBrunet-ARP stats at host0: lookups=%llu dht_hits=%llu "
              "cache_hits=%llu\n",
              static_cast<unsigned long long>(
                  nodes[0]->brunet_arp()->stats().lookups),
              static_cast<unsigned long long>(
                  nodes[0]->brunet_arp()->stats().dht_hits),
              static_cast<unsigned long long>(
                  nodes[0]->brunet_arp()->stats().cache_hits));
  return 0;
}
