// Application-substrate tests: SSH-like exec, message-passing runtime,
// NFS with client-side caching, and the LSS master/worker job.
#include <gtest/gtest.h>

#include "apps/lss.hpp"
#include "apps/mp.hpp"
#include "apps/nfs.hpp"
#include "apps/ssh.hpp"
#include "net/topology.hpp"

namespace ipop::apps {
namespace {

using util::milliseconds;
using util::seconds;

/// N hosts on one switch (plain physical LAN; the apps are network
/// agnostic — IPOP integration is covered in the LSS-over-IPOP test).
struct AppsFixture : ::testing::Test {
  net::Network net{81};
  std::vector<net::Host*> hosts;

  void build(int n, util::Duration link_delay = util::microseconds(100)) {
    auto& sw = net.add_switch("sw");
    sim::LinkConfig lan;
    lan.delay = link_delay;
    for (int i = 0; i < n; ++i) {
      auto& h = net.add_host("h" + std::to_string(i));
      net.connect_to_switch(
          h.stack(),
          {"eth0", net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)), 24},
          sw, lan);
      hosts.push_back(&h);
    }
  }

  net::Ipv4Address addr(int i) const {
    return net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1));
  }
};

// --- ExecServer -------------------------------------------------------------

TEST_F(AppsFixture, RemoteExecRoundTrip) {
  build(2);
  ExecServer server(hosts[1]->stack());
  server.register_command("echo",
                          [](const std::string& args) { return args; });
  std::optional<std::string> result;
  exec_remote(hosts[0]->stack(), addr(1), "echo hello world",
              [&](std::optional<std::string> r) { result = std::move(r); });
  net.loop().run_until(seconds(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, "hello world");
  EXPECT_EQ(server.commands_served(), 1u);
}

TEST_F(AppsFixture, UnknownCommandReportsError) {
  build(2);
  ExecServer server(hosts[1]->stack());
  std::optional<std::string> result;
  exec_remote(hosts[0]->stack(), addr(1), "rm -rf /",
              [&](std::optional<std::string> r) { result = std::move(r); });
  net.loop().run_until(seconds(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->find("command not found"), std::string::npos);
}

TEST_F(AppsFixture, ExecToDeadHostFails) {
  build(2);
  // No server running on host 1.
  std::optional<std::string> result{"sentinel"};
  bool called = false;
  exec_remote(hosts[0]->stack(), addr(1), "lamboot",
              [&](std::optional<std::string> r) {
                result = std::move(r);
                called = true;
              });
  net.loop().run_until(seconds(10));
  EXPECT_TRUE(called);
  EXPECT_FALSE(result.has_value());
}

// --- Message passing -----------------------------------------------------------

TEST_F(AppsFixture, TaggedSendRecv) {
  build(2);
  std::vector<net::Ipv4Address> ranks{addr(0), addr(1)};
  MpEndpoint e0(hosts[0]->stack(), 0, ranks);
  MpEndpoint e1(hosts[1]->stack(), 1, ranks);
  std::vector<std::uint8_t> got;
  int got_src = -1;
  e1.recv(0, 7, [&](int src, MpEndpoint::Message m) {
    got_src = src;
    got = std::move(m);
  });
  e0.send(1, 7, {1, 2, 3});
  net.loop().run_until(seconds(5));
  EXPECT_EQ(got_src, 0);
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(AppsFixture, UnexpectedMessageQueuesUntilRecvPosted) {
  build(2);
  std::vector<net::Ipv4Address> ranks{addr(0), addr(1)};
  MpEndpoint e0(hosts[0]->stack(), 0, ranks);
  MpEndpoint e1(hosts[1]->stack(), 1, ranks);
  e0.send(1, 42, {9});
  net.loop().run_until(seconds(3));  // message arrives with no recv posted
  bool got = false;
  e1.recv(-1, 42, [&](int src, MpEndpoint::Message m) {
    EXPECT_EQ(src, 0);
    EXPECT_EQ(m, (MpEndpoint::Message{9}));
    got = true;
  });
  net.loop().run_until(seconds(4));
  EXPECT_TRUE(got);
}

TEST_F(AppsFixture, TagAndSourceMatching) {
  build(3);
  std::vector<net::Ipv4Address> ranks{addr(0), addr(1), addr(2)};
  MpEndpoint e0(hosts[0]->stack(), 0, ranks);
  MpEndpoint e1(hosts[1]->stack(), 1, ranks);
  MpEndpoint e2(hosts[2]->stack(), 2, ranks);
  std::vector<int> srcs;
  // Receive tag 5 specifically from rank 2, then tag 5 from anyone.
  e0.recv(2, 5, [&](int src, MpEndpoint::Message) { srcs.push_back(src); });
  e0.recv(-1, 5, [&](int src, MpEndpoint::Message) { srcs.push_back(src); });
  e1.send(0, 5, {1});
  e2.send(0, 5, {2});
  net.loop().run_until(seconds(5));
  ASSERT_EQ(srcs.size(), 2u);
  // The rank-2-specific recv must have consumed the rank-2 message.
  EXPECT_NE(std::find(srcs.begin(), srcs.end(), 2), srcs.end());
  EXPECT_NE(std::find(srcs.begin(), srcs.end(), 1), srcs.end());
}

TEST_F(AppsFixture, BidirectionalTraffic) {
  build(2);
  std::vector<net::Ipv4Address> ranks{addr(0), addr(1)};
  MpEndpoint e0(hosts[0]->stack(), 0, ranks);
  MpEndpoint e1(hosts[1]->stack(), 1, ranks);
  int pongs = 0;
  std::function<void()> ping_loop = [&] {
    e0.recv(1, 2, [&](int, MpEndpoint::Message) {
      if (++pongs < 10) {
        e0.send(1, 1, {});
        ping_loop();
      }
    });
  };
  e1.recv(0, 1, [&](int, MpEndpoint::Message) { e1.send(0, 2, {}); });
  std::function<void()> worker_loop = [&] {
    // Re-post worker recv after each ping.
    e1.recv(0, 1, [&](int, MpEndpoint::Message) {
      e1.send(0, 2, {});
      worker_loop();
    });
  };
  worker_loop();
  ping_loop();
  e0.send(1, 1, {});
  net.loop().run_until(seconds(30));
  EXPECT_EQ(pongs, 10);
}

TEST_F(AppsFixture, LambootBootsAllRanks) {
  build(3);
  std::vector<std::unique_ptr<ExecServer>> servers;
  for (auto* h : hosts) {
    auto s = std::make_unique<ExecServer>(h->stack());
    s->register_command("lamboot", [](const std::string&) { return "ok"; });
    servers.push_back(std::move(s));
  }
  bool ok = false;
  MpLauncher::lamboot(hosts[0]->stack(), {addr(0), addr(1), addr(2)},
                      [&](bool r) { ok = r; });
  net.loop().run_until(seconds(10));
  EXPECT_TRUE(ok);
}

// --- NFS --------------------------------------------------------------------------

TEST_F(AppsFixture, BlockReadReturnsDeterministicContent) {
  build(2);
  NfsServer server(hosts[1]->stack());
  server.add_file("data", 64 * 1024);
  NfsClient client(*hosts[0], addr(1));
  std::vector<std::uint8_t> block;
  client.read_block("data", 2, [&](std::vector<std::uint8_t> d) {
    block = std::move(d);
  });
  net.loop().run_until(seconds(10));
  ASSERT_EQ(block.size(), 8u * 1024);
  for (std::size_t i = 0; i < block.size(); ++i) {
    ASSERT_EQ(block[i], NfsServer::content_byte("data", 2 * 8192 + i));
  }
}

TEST_F(AppsFixture, ColdThenWarmReads) {
  build(2);
  NfsServer server(hosts[1]->stack());
  constexpr std::uint64_t kSize = 256 * 1024;
  server.add_file("db0", kSize);
  NfsClient client(*hosts[0], addr(1));
  bool cold_done = false;
  const auto t0 = net.loop().now();
  util::TimePoint cold_finished{};
  client.read_file("db0", kSize, [&](bool ok) {
    EXPECT_TRUE(ok);
    cold_done = true;
    cold_finished = net.loop().now();
  });
  net.loop().run_until(seconds(60));
  ASSERT_TRUE(cold_done);
  const auto cold_elapsed = cold_finished - t0;
  EXPECT_EQ(client.stats().cache_misses, kSize / 8192);
  EXPECT_EQ(client.stats().bytes_fetched, kSize);

  // Warm pass: all from the local cache, no extra bytes fetched.
  bool warm_done = false;
  const auto t1 = net.loop().now();
  util::TimePoint warm_finished{};
  client.read_file("db0", kSize, [&](bool) {
    warm_done = true;
    warm_finished = net.loop().now();
  });
  net.loop().run_until(net.loop().now() + seconds(60));
  ASSERT_TRUE(warm_done);
  const auto warm_elapsed = warm_finished - t1;
  EXPECT_EQ(client.stats().bytes_fetched, kSize);  // unchanged
  EXPECT_EQ(client.stats().cache_hits, kSize / 8192);
  EXPECT_LT(warm_elapsed.count(), cold_elapsed.count() / 5);
}

TEST_F(AppsFixture, ColdReadIsLatencyBound) {
  build(2, /*link_delay=*/milliseconds(10));  // 20 ms RTT
  NfsServer server(hosts[1]->stack());
  constexpr std::uint64_t kSize = 128 * 1024;  // 16 blocks
  server.add_file("db", kSize);
  NfsClient client(*hosts[0], addr(1));
  bool done = false;
  const auto t0 = net.loop().now();
  util::TimePoint finished{};
  client.read_file("db", kSize, [&](bool) {
    done = true;
    finished = net.loop().now();
  });
  net.loop().run_until(seconds(120));
  ASSERT_TRUE(done);
  const double elapsed = util::to_seconds(finished - t0);
  // 16 synchronous round trips at >= 20 ms each.
  EXPECT_GT(elapsed, 16 * 0.020);
  EXPECT_LT(elapsed, 16 * 0.080);
}

TEST_F(AppsFixture, CacheInvalidationForcesRefetch) {
  build(2);
  NfsServer server(hosts[1]->stack());
  server.add_file("db", 64 * 1024);
  NfsClient client(*hosts[0], addr(1));
  bool done = false;
  client.read_file("db", 64 * 1024, [&](bool) { done = true; });
  net.loop().run_until(seconds(30));
  ASSERT_TRUE(done);
  const auto fetched = client.stats().bytes_fetched;
  client.invalidate_cache();
  done = false;
  client.read_file("db", 64 * 1024, [&](bool) { done = true; });
  net.loop().run_until(net.loop().now() + seconds(30));
  ASSERT_TRUE(done);
  EXPECT_EQ(client.stats().bytes_fetched, fetched * 2);
}

// --- LSS ---------------------------------------------------------------------------

struct LssFixture : AppsFixture {
  /// Small LSS config so tests run fast: 3 images, 2 DBs of 64 KB,
  /// 2 s of fit compute per DB.
  LssConfig small_cfg(net::Ipv4Address server) {
    LssConfig cfg;
    cfg.images = 3;
    cfg.databases = 2;
    cfg.db_size = 64 * 1024;
    cfg.fit_compute_per_db = seconds(2);
    cfg.file_server = server;
    return cfg;
  }
};

TEST_F(LssFixture, SequentialVsParallelSpeedup) {
  build(4);  // h0 master+server host, h1..h3 workers
  NfsServer server(hosts[0]->stack());
  auto cfg = small_cfg(addr(0));
  server.add_file("db0", cfg.db_size);
  server.add_file("db1", cfg.db_size);

  // Sequential: one worker (h1).  Scoped so its ports free up before the
  // parallel job binds the same master rank.
  LssReport seq_report;
  {
    LssJob seq({{hosts[0], addr(0)}, {hosts[1], addr(1)}}, cfg);
    seq.run([&](LssReport r) { seq_report = std::move(r); });
    net.loop().run_until(net.loop().now() + seconds(300));
  }
  ASSERT_TRUE(seq_report.ok);
  ASSERT_EQ(seq_report.image_seconds.size(), 3u);

  // Parallel: two workers (h2, h3) — one DB each.
  LssJob par({{hosts[0], addr(0)}, {hosts[2], addr(2)}, {hosts[3], addr(3)}},
             cfg);
  LssReport par_report;
  par.run([&](LssReport r) { par_report = std::move(r); });
  net.loop().run_until(net.loop().now() + seconds(300));
  ASSERT_TRUE(par_report.ok);

  // Warm images: sequential ~ 2 DB x 2 s = 4 s; parallel ~ 2 s.
  const double seq_warm = seq_report.image_seconds[1];
  const double par_warm = par_report.image_seconds[1];
  EXPECT_GT(seq_warm, 3.9);
  EXPECT_LT(par_warm, seq_warm / 1.7);
  // Cold first image strictly slower than warm ones.
  EXPECT_GT(seq_report.first_image(), seq_warm);
}

TEST_F(LssFixture, ColdCacheOnlyAffectsFirstImage) {
  build(2, /*link_delay=*/milliseconds(5));  // 10 ms RTT: I/O dominates
  NfsServer server(hosts[0]->stack());
  auto cfg = small_cfg(addr(0));
  cfg.db_size = 256 * 1024;                 // 32 blocks per DB
  cfg.fit_compute_per_db = milliseconds(10);
  server.add_file("db0", cfg.db_size);
  server.add_file("db1", cfg.db_size);
  LssJob job({{hosts[0], addr(0)}, {hosts[1], addr(1)}}, cfg);
  LssReport report;
  job.run([&](LssReport r) { report = std::move(r); });
  net.loop().run_until(net.loop().now() + seconds(300));
  ASSERT_TRUE(report.ok);
  ASSERT_EQ(report.image_seconds.size(), 3u);
  EXPECT_GT(report.image_seconds[0], 2 * report.image_seconds[1]);
  EXPECT_NEAR(report.image_seconds[1], report.image_seconds[2],
              report.image_seconds[1] * 0.5);
  EXPECT_EQ(job.worker_nfs_stats(0).bytes_fetched, 2 * cfg.db_size);
}

}  // namespace
}  // namespace ipop::apps
