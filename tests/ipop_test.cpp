// IPOP core tests: tap capture/injection, ARP containment, end-to-end
// virtual-network traffic over the overlay, self-configuration across
// NATs/firewalls (the Figure-4 testbed), Brunet-ARP multi-IP + migration,
// and traffic-triggered shortcuts.
#include <gtest/gtest.h>

#include "ipop/fig4_overlay.hpp"
#include "ipop/node.hpp"
#include "net/ping.hpp"
#include "net/ttcp.hpp"

namespace ipop::core {
namespace {

using util::milliseconds;
using util::seconds;

net::Ipv4Address ip(const char* s) { return net::Ipv4Address::parse(s); }

// ---------------------------------------------------------------------------
// Tap device
// ---------------------------------------------------------------------------

struct TapFixture : ::testing::Test {
  net::Network net{61};
  net::Host* h = nullptr;
  std::unique_ptr<TapDevice> tap;

  void SetUp() override {
    h = &net.add_host("h");
    TapConfig cfg;
    cfg.ip = ip("172.16.0.9");
    tap = std::make_unique<TapDevice>(*h, cfg);
  }
};

TEST_F(TapFixture, KernelFrameReachesUserFace) {
  std::vector<util::Buffer> captured;
  tap->set_frame_handler(
      [&](util::Buffer f) { captured.push_back(std::move(f)); });
  // Kernel-side traffic: ping another virtual IP; the echo request must
  // pop out of the tap's user face as an Ethernet frame to the gateway.
  h->stack().send_echo_request(ip("172.16.0.77"), 1, 1);
  net.loop().run_until(seconds(2));
  ASSERT_EQ(captured.size(), 1u);
  auto eth = net::EthernetFrame::decode(captured[0]);
  EXPECT_EQ(eth.type, net::EtherType::kIpv4);
  EXPECT_EQ(eth.dst, tap->gateway_mac());  // ARP containment: gateway MAC
  auto pkt = net::Ipv4Packet::decode(eth.payload);
  EXPECT_EQ(pkt.hdr.dst, ip("172.16.0.77"));
  EXPECT_EQ(pkt.hdr.src, ip("172.16.0.9"));
}

TEST_F(TapFixture, NoArpEverEmittedOnTap) {
  int arp_frames = 0;
  tap->set_frame_handler([&](util::Buffer f) {
    auto eth = net::EthernetFrame::decode(f);
    if (eth.type == net::EtherType::kArp) ++arp_frames;
  });
  for (int i = 0; i < 5; ++i) {
    h->stack().send_echo_request(
        net::Ipv4Address(172, 16, 1, static_cast<std::uint8_t>(i + 1)), 1,
        static_cast<std::uint16_t>(i));
  }
  net.loop().run_until(seconds(3));
  EXPECT_EQ(arp_frames, 0);  // the static gateway entry contains ARP
}

TEST_F(TapFixture, InjectedFrameReachesKernel) {
  int replies = 0;
  h->stack().set_echo_reply_handler(
      [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  // Build an echo *reply* as IPOP would inject it.
  net::IcmpMessage icmp;
  icmp.type = net::IcmpType::kEchoReply;
  icmp.id = 9;
  net::Ipv4Packet pkt;
  pkt.hdr.proto = net::IpProto::kIcmp;
  pkt.hdr.src = ip("172.16.0.77");
  pkt.hdr.dst = ip("172.16.0.9");
  pkt.payload = util::Buffer::wrap(icmp.encode());
  net::EthernetFrame eth;
  eth.dst = tap->kernel_mac();
  eth.src = tap->gateway_mac();
  eth.type = net::EtherType::kIpv4;
  eth.payload = pkt.encode();
  tap->write_frame(util::Buffer::wrap(eth.encode()));
  net.loop().run_until(seconds(2));
  EXPECT_EQ(replies, 1);
}

TEST_F(TapFixture, CapturedFramesCarryHeadroomForEncapsulation) {
  // Kernel-emitted frames must arrive with enough headroom that stripping
  // the Ethernet header leaves room to prepend the 48-byte Brunet header
  // in place (the zero-copy Figure-3 encapsulation).
  std::vector<util::Buffer> captured;
  tap->set_frame_handler(
      [&](util::Buffer f) { captured.push_back(std::move(f)); });
  h->stack().send_echo_request(ip("172.16.0.77"), 1, 1);
  net.loop().run_until(seconds(2));
  ASSERT_EQ(captured.size(), 1u);
  util::Buffer frame = std::move(captured[0]);
  const std::uint8_t* ip_start = frame.data() + net::EthernetFrame::kHeaderSize;
  frame.drop_front(net::EthernetFrame::kHeaderSize);
  ASSERT_GE(frame.headroom(), brunet::Packet::kHeaderSize);
  // The encapsulation itself must not move the IP bytes.
  brunet::Packet pkt;
  pkt.type = brunet::PacketType::kIpTunnel;
  pkt.set_payload(std::move(frame));
  auto wire = pkt.to_wire();
  EXPECT_EQ(wire.data() + brunet::Packet::kHeaderSize, ip_start);
}

TEST_F(TapFixture, MtuIsAppliedToTcpMss) {
  auto sock = h->stack().tcp_connect(ip("172.16.0.50"), 80);
  ASSERT_NE(sock, nullptr);
  // tap MTU 1200 => MSS 1160.
  EXPECT_EQ(sock->mss(), 1200u - 40u);
}

// ---------------------------------------------------------------------------
// End-to-end IPOP on a simple LAN
// ---------------------------------------------------------------------------

/// N public hosts on a switch, each with an IpopNode (classic SHA1 mode).
struct IpopLanFixture : ::testing::Test {
  net::Network net{71};
  std::vector<net::Host*> hosts;
  std::vector<std::unique_ptr<IpopNode>> nodes;

  void build(int n, bool brunet_arp = false, ShortcutConfig scfg = {}) {
    auto& sw = net.add_switch("sw");
    sim::LinkConfig lan;
    lan.delay = util::microseconds(100);
    for (int i = 0; i < n; ++i) {
      auto& h = net.add_host("h" + std::to_string(i));
      net.connect_to_switch(
          h.stack(),
          {"eth0", net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)), 24},
          sw, lan);
      hosts.push_back(&h);
      IpopConfig cfg;
      cfg.tap.ip = net::Ipv4Address(172, 16, 0, static_cast<std::uint8_t>(i + 2));
      cfg.overlay.near_per_side = 3;
      cfg.use_brunet_arp = brunet_arp;
      cfg.shortcuts = scfg;
      // Keep unit tests fast: modest user-level costs.
      cfg.cpu_per_packet = util::microseconds(50);
      cfg.sched_latency = util::microseconds(200);
      auto node = std::make_unique<IpopNode>(h, cfg);
      if (i > 0) {
        node->add_seed({brunet::TransportAddress::Proto::kUdp,
                        net::Ipv4Address(10, 0, 0, 1), 17001});
      }
      nodes.push_back(std::move(node));
    }
    for (auto& nd : nodes) nd->start();
  }

  bool converge(util::Duration budget = seconds(60)) {
    const auto deadline = net.loop().now() + budget;
    auto full = [&] {
      for (auto& nd : nodes) {
        if (nd->overlay().table().size() + 1 < nodes.size()) return false;
      }
      return true;
    };
    while (net.loop().now() < deadline) {
      net.loop().run_until(net.loop().now() + milliseconds(500));
      if (full()) return true;
    }
    return full();
  }

  net::Ipv4Address vip(int i) const {
    return net::Ipv4Address(172, 16, 0, static_cast<std::uint8_t>(i + 2));
  }
};

TEST_F(IpopLanFixture, PingAcrossVirtualNetwork) {
  build(2);
  ASSERT_TRUE(converge());
  net::Pinger pinger(hosts[0]->stack());
  net::Pinger::Options opts;
  opts.count = 10;
  opts.interval = milliseconds(50);
  opts.timeout = seconds(2);
  net::PingResult res;
  pinger.run(vip(1), opts, [&](net::PingResult r) { res = std::move(r); });
  net.loop().run_until(net.loop().now() + seconds(10));
  EXPECT_EQ(res.received, 10);
  EXPECT_GT(res.rtts_ms.mean(), 0.5);  // tunneled: slower than raw LAN
  EXPECT_GT(nodes[0]->metrics().packets_tunneled, 0u);
  EXPECT_GT(nodes[1]->metrics().packets_injected, 0u);
}

TEST_F(IpopLanFixture, UnmodifiedTcpAppRunsOverIpop) {
  build(2);
  ASSERT_TRUE(converge());
  net::TtcpReceiver recv(hosts[1]->stack(), 5001);
  net::TtcpSender send(hosts[0]->stack());
  net::TtcpSender::Options opts;
  opts.total_bytes = 256 * 1024;
  net::TtcpResult result;
  recv.set_done([&](net::TtcpResult r) { result = r; });
  send.run(vip(1), 5001, opts, [](net::TtcpResult) {});
  net.loop().run_until(net.loop().now() + seconds(120));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, opts.total_bytes);
}

TEST_F(IpopLanFixture, VirtualAddressesAreIsolatedFromPhysical) {
  build(2);
  ASSERT_TRUE(converge());
  // The virtual subnet is unreachable via the physical interface: a host
  // *without* IPOP cannot ping a virtual address.
  auto& outsider = net.add_host("outsider");
  // (No link: simply verify the virtual IP is not in the physical stack.)
  EXPECT_FALSE(hosts[0]->stack().is_local_ip(ip("10.99.99.99")));
  EXPECT_TRUE(hosts[0]->stack().is_local_ip(vip(0)));
  EXPECT_FALSE(outsider.stack().is_local_ip(vip(0)));
}

TEST_F(IpopLanFixture, MultiNodeAllPairsPing) {
  build(5);
  ASSERT_TRUE(converge());
  int total_received = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      if (i == j) continue;
      net::Pinger pinger(hosts[i]->stack());
      net::Pinger::Options opts;
      opts.count = 2;
      opts.interval = milliseconds(20);
      opts.timeout = seconds(2);
      bool done = false;
      pinger.run(vip(static_cast<int>(j)), opts, [&](net::PingResult r) {
        total_received += r.received;
        done = true;
      });
      while (!done) net.loop().run_until(net.loop().now() + milliseconds(100));
    }
  }
  EXPECT_EQ(total_received, static_cast<int>(nodes.size() * (nodes.size() - 1) * 2));
}

TEST_F(IpopLanFixture, BrunetArpResolvesAndCaches) {
  build(3, /*brunet_arp=*/true);
  ASSERT_TRUE(converge());
  // Let registrations land in the DHT.
  net.loop().run_until(net.loop().now() + seconds(5));
  net::Pinger pinger(hosts[0]->stack());
  net::Pinger::Options opts;
  opts.count = 5;
  opts.interval = milliseconds(100);
  opts.timeout = seconds(3);
  net::PingResult res;
  pinger.run(vip(2), opts, [&](net::PingResult r) { res = std::move(r); });
  net.loop().run_until(net.loop().now() + seconds(15));
  EXPECT_GE(res.received, 4);  // first packet may race the DHT lookup
  const auto& stats = nodes[0]->brunet_arp()->stats();
  EXPECT_GE(stats.lookups, 5u);
  EXPECT_GE(stats.cache_hits, 3u);  // later pings hit the cache
}

TEST_F(IpopLanFixture, RouteForExtraIpAndMigrate) {
  build(3, /*brunet_arp=*/true);
  ASSERT_TRUE(converge());
  const auto vm_ip = ip("172.16.7.7");
  // "VM" hosted on node 1.
  nodes[1]->route_for(vm_ip);
  net.loop().run_until(net.loop().now() + seconds(5));

  auto ping_vm = [&](int expect_min) {
    net::Pinger pinger(hosts[0]->stack());
    net::Pinger::Options opts;
    opts.count = 3;
    opts.interval = milliseconds(100);
    opts.timeout = seconds(3);
    net::PingResult res;
    bool done = false;
    pinger.run(vm_ip, opts, [&](net::PingResult r) {
      res = std::move(r);
      done = true;
    });
    while (!done) net.loop().run_until(net.loop().now() + milliseconds(200));
    EXPECT_GE(res.received, expect_min);
    return res.received;
  };
  ping_vm(2);
  EXPECT_GT(nodes[1]->metrics().packets_injected, 0u);

  // Migrate the VM to node 2 (paper Section III-E): re-register there.
  const auto injected_before_n2 = nodes[2]->metrics().packets_injected;
  nodes[1]->unroute_for(vm_ip);
  nodes[2]->route_for(vm_ip);
  net.loop().run_until(net.loop().now() + seconds(5));
  // Invalidate the stale cached binding (TTL would also age it out).
  nodes[0]->brunet_arp()->invalidate(vm_ip);
  ping_vm(2);
  EXPECT_GT(nodes[2]->metrics().packets_injected, injected_before_n2);
}

TEST_F(IpopLanFixture, ShortcutTriggersDirectConnection) {
  ShortcutConfig scfg;
  scfg.enabled = true;
  scfg.threshold = 8;
  scfg.window = seconds(30);
  build(4, /*brunet_arp=*/false, scfg);
  ASSERT_TRUE(converge());
  // Saturate one destination with pings; the shortcut manager must count
  // tunneled packets and (if not already direct) request a connection.
  net::Pinger pinger(hosts[0]->stack());
  net::Pinger::Options opts;
  opts.count = 30;
  opts.interval = milliseconds(20);
  opts.timeout = seconds(2);
  bool done = false;
  pinger.run(vip(3), opts, [&](net::PingResult) { done = true; });
  while (!done) net.loop().run_until(net.loop().now() + milliseconds(200));
  const auto& stats = nodes[0]->shortcuts().stats();
  // Fully-meshed small overlay: packets already ride a direct edge.
  EXPECT_GT(stats.already_direct + stats.requests, 0u);
}

TEST(ShortcutEvictionTest, CounterMapStaysBounded) {
  // A node forwarding traffic for many destinations must not leak one
  // counter per destination forever.
  net::Network net{97};
  auto& h = net.add_host("h");
  brunet::NodeConfig ncfg;
  brunet::BrunetNode node(h, brunet::Address::hash("evict"), ncfg);
  ShortcutConfig scfg;
  scfg.enabled = true;
  scfg.max_tracked = 16;
  scfg.window = util::seconds(1);
  ShortcutManager mgr(node, scfg);

  util::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    mgr.note_packet(brunet::Address::random(rng));
    // Advance time so earlier windows expire and become sweepable.
    net.loop().run_until(net.loop().now() + milliseconds(20));
  }
  EXPECT_LE(mgr.tracked(), scfg.max_tracked);
  EXPECT_GT(mgr.stats().evicted, 0u);

  // The hard bound holds even when every destination stays hot inside one
  // window (LRU eviction).
  for (int i = 0; i < 100; ++i) {
    mgr.note_packet(brunet::Address::random(rng));
  }
  EXPECT_LE(mgr.tracked(), scfg.max_tracked);
}

TEST(ShortcutEvictionTest, LruKeepsHotDestination) {
  // Eviction is least-recently-used: a destination touched on every
  // packet survives an arbitrary stream of one-off destinations.
  net::Network net{98};
  auto& h = net.add_host("h");
  brunet::NodeConfig ncfg;
  brunet::BrunetNode node(h, brunet::Address::hash("lru"), ncfg);
  ShortcutConfig scfg;
  scfg.enabled = true;
  scfg.max_tracked = 8;
  // Huge threshold/window so the hot counter's survival is observable via
  // the request it eventually triggers (no back-off: simulated time does
  // not advance in this test).
  scfg.threshold = 400;
  scfg.window = util::seconds(3600);
  scfg.retry_backoff = util::seconds(0);
  ShortcutManager mgr(node, scfg);

  const auto hot = brunet::Address::hash("hot-destination");
  util::Rng rng(6);
  for (int i = 0; i < 400; ++i) {
    mgr.note_packet(hot);  // touched every round: never the LRU front
    mgr.note_packet(brunet::Address::random(rng));  // one-off churn
  }
  EXPECT_LE(mgr.tracked(), scfg.max_tracked);
  // The hot counter reached the threshold despite hundreds of evictions,
  // so it was never reset by eviction.
  EXPECT_EQ(mgr.stats().requests, 1u);
}

// ---------------------------------------------------------------------------
// Figure-4: the paper's actual deployment
// ---------------------------------------------------------------------------

struct Fig4IpopTest : ::testing::Test {
  std::unique_ptr<Fig4Overlay> overlay;

  void make(brunet::TransportAddress::Proto proto) {
    Fig4OverlayOptions opts;
    opts.transport = proto;
    // Faster tests: modest user-level costs.
    opts.cpu_per_packet = util::microseconds(100);
    opts.sched_latency = util::microseconds(400);
    overlay = std::make_unique<Fig4Overlay>(opts);
    overlay->start_all();
  }

  int ping(const std::string& from, const std::string& to, int count) {
    net::Pinger pinger(overlay->host(from).stack());
    net::Pinger::Options opts;
    opts.count = count;
    opts.interval = milliseconds(100);
    opts.timeout = seconds(3);
    int received = -1;
    pinger.run(overlay->vip(to), opts,
               [&](net::PingResult r) { received = r.received; });
    while (received < 0) {
      overlay->loop().run_until(overlay->loop().now() + milliseconds(250));
    }
    return received;
  }
};

TEST_F(Fig4IpopTest, UdpOverlaySelfConfiguresAcrossNatsAndFirewalls) {
  make(brunet::TransportAddress::Proto::kUdp);
  EXPECT_TRUE(overlay->converge(seconds(180)))
      << "6-node overlay did not fully self-configure over UDP";
}

TEST_F(Fig4IpopTest, VirtualPingsAcrossAllThreeSites) {
  make(brunet::TransportAddress::Proto::kUdp);
  ASSERT_TRUE(overlay->converge(seconds(180)));
  // NATted ACIS machine <-> firewalled VIMS machine: impossible on the
  // physical network (see Fig4Fixture tests), trivial on the virtual one.
  EXPECT_EQ(ping("F2", "V1", 3), 3);
  // Firewalled LSU machine <-> NATted ACIS VM.
  EXPECT_EQ(ping("L1", "F1", 3), 3);
  // And the LAN pair used for Table I.
  EXPECT_EQ(ping("F2", "F4", 3), 3);
}

TEST_F(Fig4IpopTest, BidirectionalConnectivityRestoredByIpop) {
  make(brunet::TransportAddress::Proto::kUdp);
  ASSERT_TRUE(overlay->converge(seconds(180)));
  // The paper's headline: *bidirectional* TCP connectivity between hosts
  // that cannot exchange unsolicited packets physically.
  auto& v1 = overlay->host("V1");
  auto& f2 = overlay->host("F2");
  auto listener = f2.stack().tcp_listen(8080);
  bool accepted = false;
  listener->set_accept_handler(
      [&](std::shared_ptr<net::TcpSocket>) { accepted = true; });
  // V1 dials the NATted F2 by virtual IP: physically unsolicited inbound.
  auto sock = v1.stack().tcp_connect(overlay->vip("F2"), 8080);
  overlay->loop().run_until(overlay->loop().now() + seconds(30));
  EXPECT_TRUE(accepted);
}

// ---------------------------------------------------------------------------
// Self-configuration: DHCP over the DHT
// ---------------------------------------------------------------------------

/// N hosts on a LAN, every IpopNode booting with *no* preassigned virtual
/// IP: addresses come from DHCP-over-the-DHT leases.
struct DhcpLanFixture : ::testing::Test {
  net::Network net{93};
  std::vector<net::Host*> hosts;
  std::vector<std::unique_ptr<IpopNode>> nodes;

  void build(int n, DhcpConfig dcfg = {}, bool autostart = true) {
    auto& sw = net.add_switch("sw");
    sim::LinkConfig lan;
    lan.delay = util::microseconds(100);
    for (int i = 0; i < n; ++i) {
      add_node(sw, lan, i, dcfg);
    }
    if (autostart) {
      for (auto& nd : nodes) nd->start();
    }
  }

  IpopNode& add_node(sim::Switch& sw, const sim::LinkConfig& lan, int i,
                     const DhcpConfig& dcfg) {
    auto& h = net.add_host("d" + std::to_string(i));
    net.connect_to_switch(
        h.stack(),
        {"eth0", net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
         24},
        sw, lan);
    hosts.push_back(&h);
    IpopConfig cfg;
    cfg.use_dhcp = true;  // tap.ip stays 0.0.0.0
    cfg.dhcp = dcfg;
    cfg.overlay.near_per_side = 3;
    cfg.cpu_per_packet = util::microseconds(50);
    cfg.sched_latency = util::microseconds(200);
    auto node = std::make_unique<IpopNode>(h, cfg);
    if (i > 0) {
      node->add_seed({brunet::TransportAddress::Proto::kUdp,
                      net::Ipv4Address(10, 0, 0, 1), 17001});
    }
    nodes.push_back(std::move(node));
    return *nodes.back();
  }

  bool all_configured(util::Duration budget = seconds(120)) {
    const auto deadline = net.loop().now() + budget;
    auto done = [&] {
      for (auto& nd : nodes) {
        if (!nd->self_configured()) return false;
      }
      return true;
    };
    while (net.loop().now() < deadline) {
      net.loop().run_until(net.loop().now() + milliseconds(500));
      if (done()) return true;
    }
    return done();
  }
};

TEST_F(DhcpLanFixture, NodesBootWithNoIpAndAcquireDistinctLeases) {
  build(5, {}, /*autostart=*/false);
  for (auto& nd : nodes) {
    EXPECT_TRUE(nd->virtual_ip().is_unspecified()) << "IP preassigned";
    EXPECT_FALSE(nd->self_configured());
  }
  for (auto& nd : nodes) nd->start();
  ASSERT_TRUE(all_configured());
  std::set<net::Ipv4Address> ips;
  DhcpConfig dcfg;
  for (auto& nd : nodes) {
    const auto ip = nd->virtual_ip();
    EXPECT_FALSE(ip.is_unspecified());
    EXPECT_GE(ip.value, dcfg.pool_start.value) << ip.to_string();
    EXPECT_LT(ip.value, dcfg.pool_start.value + dcfg.pool_size)
        << ip.to_string() << " outside pool";
    EXPECT_TRUE(ips.insert(ip).second)
        << "duplicate lease " << ip.to_string();
    EXPECT_TRUE(nd->host().stack().is_local_ip(ip))
        << "tap not configured with the leased address";
  }
}

TEST_F(DhcpLanFixture, TrafficFlowsBetweenSelfConfiguredNodes) {
  build(3);
  ASSERT_TRUE(all_configured());
  // Let Brunet-ARP registrations land.
  net.loop().run_until(net.loop().now() + seconds(5));
  net::Pinger pinger(hosts[0]->stack());
  net::Pinger::Options opts;
  opts.count = 5;
  opts.interval = milliseconds(100);
  opts.timeout = seconds(3);
  net::PingResult res;
  pinger.run(nodes[2]->virtual_ip(), opts,
             [&](net::PingResult r) { res = std::move(r); });
  net.loop().run_until(net.loop().now() + seconds(15));
  EXPECT_GE(res.received, 4);  // first packet may race the DHT lookup
}

TEST_F(DhcpLanFixture, TunnelPayloadsAreSealedEndToEndZeroCopy) {
  build(3);
  ASSERT_TRUE(all_configured());
  net.loop().run_until(net.loop().now() + seconds(5));
  net::Pinger pinger(hosts[0]->stack());
  net::Pinger::Options opts;
  opts.count = 8;
  opts.interval = milliseconds(100);
  opts.timeout = seconds(3);
  net::PingResult res;
  pinger.run(nodes[1]->virtual_ip(), opts,
             [&](net::PingResult r) { res = std::move(r); });
  net.loop().run_until(net.loop().now() + seconds(15));
  EXPECT_GE(res.received, 7);

  // Key-addressed overlay: every binding carries a public key, so every
  // tunneled payload leaves encrypted — nothing falls back to cleartext.
  std::uint64_t sealed = 0, opened = 0, rejected = 0, copied = 0, clear = 0;
  for (auto& nd : nodes) {
    sealed += nd->sealer().stats().sealed;
    opened += nd->sealer().stats().opened;
    rejected += nd->sealer().stats().rejected;
    copied += nd->sealer().stats().payload_bytes_copied;
    clear += nd->metrics().packets_clear;
    EXPECT_EQ(nd->metrics().dropped_seal_reject, 0u);
  }
  EXPECT_GT(sealed, 0u);
  EXPECT_GT(opened, 0u);
  EXPECT_EQ(rejected, 0u);
  EXPECT_EQ(clear, 0u) << "a sealed overlay sent cleartext tunnel frames";
  // The zero-copy contract on the secured hot path: encrypt-in-place plus
  // header-into-headroom means not one payload byte moved.
  EXPECT_EQ(copied, 0u) << "sealing copied payload bytes";
}

TEST_F(DhcpLanFixture, LeasesRenewOnTimer) {
  DhcpConfig dcfg;
  dcfg.renew_interval = seconds(10);
  build(3, dcfg);
  ASSERT_TRUE(all_configured());
  const auto ip0 = nodes[0]->virtual_ip();
  net.loop().run_until(net.loop().now() + seconds(35));
  for (auto& nd : nodes) {
    EXPECT_GE(nd->dhcp()->stats().renewals, 2u);
    EXPECT_EQ(nd->dhcp()->stats().lost_leases, 0u);
  }
  EXPECT_EQ(nodes[0]->virtual_ip(), ip0) << "renewal must keep the address";
}

TEST_F(DhcpLanFixture, ContendedTinyPoolAllocatesAtomically) {
  // A pool with exactly one usable address (last-octet 0 is skipped):
  // both nodes race for it, the DHT create arbitrates, and exactly one
  // wins — the loser reports conflicts, not a duplicate address.
  DhcpConfig dcfg;
  dcfg.pool_start = net::Ipv4Address(172, 16, 9, 0);
  dcfg.pool_size = 2;  // only .1 usable
  dcfg.max_attempts = 4;
  build(2, dcfg);
  net.loop().run_until(net.loop().now() + seconds(120));
  int configured = 0;
  std::uint64_t conflicts = 0;
  for (auto& nd : nodes) {
    if (nd->self_configured()) {
      ++configured;
      EXPECT_EQ(nd->virtual_ip(), net::Ipv4Address(172, 16, 9, 1));
    }
    conflicts += nd->dhcp()->stats().conflicts;
  }
  EXPECT_EQ(configured, 1) << "atomic create must allow exactly one winner";
  EXPECT_GE(conflicts, 1u);
}

TEST_F(Fig4IpopTest, TcpTransportLinksMeasuredPairs) {
  make(brunet::TransportAddress::Proto::kTcp);
  overlay->loop().run_until(overlay->loop().now() + seconds(30));
  // Table I-III pairs must form direct overlay links in TCP mode too.
  EXPECT_TRUE(overlay->link_pair("F2", "F4"));
  EXPECT_TRUE(overlay->link_pair("F4", "V1"));
  EXPECT_EQ(ping("F2", "F4", 3), 3);
  EXPECT_EQ(ping("F4", "V1", 3), 3);
}

}  // namespace
}  // namespace ipop::core
