// TCP tests: handshake, transfer integrity, congestion behaviour, loss
// recovery, window limits, teardown, resets.
#include <gtest/gtest.h>

#include <numeric>

#include "net/topology.hpp"
#include "net/ttcp.hpp"

namespace ipop::net {
namespace {

using util::milliseconds;
using util::seconds;

Ipv4Address ip(const char* s) { return Ipv4Address::parse(s); }

/// Two hosts joined by a configurable point-to-point link.
struct TcpFixture : ::testing::Test {
  Network net{11};
  Host* a = nullptr;
  Host* b = nullptr;
  sim::Link* link = nullptr;

  void wire(sim::LinkConfig cfg) {
    a = &net.add_host("a");
    b = &net.add_host("b");
    link = &net.connect(a->stack(), {"eth0", ip("10.0.0.1"), 24}, b->stack(),
                        {"eth0", ip("10.0.0.2"), 24}, cfg);
  }

  static sim::LinkConfig lan() {
    sim::LinkConfig cfg;
    cfg.delay = util::microseconds(100);
    cfg.bandwidth_bps = 100e6;
    return cfg;
  }
};

TEST_F(TcpFixture, HandshakeAndCallbacks) {
  wire(lan());
  auto listener = b->stack().tcp_listen(80);
  ASSERT_NE(listener, nullptr);
  std::shared_ptr<TcpSocket> server;
  listener->set_accept_handler(
      [&](std::shared_ptr<TcpSocket> s) { server = std::move(s); });
  bool connected = false;
  auto client = a->stack().tcp_connect(ip("10.0.0.2"), 80);
  ASSERT_NE(client, nullptr);
  client->on_connected = [&] { connected = true; };
  net.loop().run_until(seconds(2));
  EXPECT_TRUE(connected);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  EXPECT_EQ(server->state(), TcpState::kEstablished);
  EXPECT_EQ(server->remote_port(), client->local_port());
}

TEST_F(TcpFixture, SmallTransferArrivesIntact) {
  wire(lan());
  auto listener = b->stack().tcp_listen(80);
  std::vector<std::uint8_t> received;
  listener->set_accept_handler([&](std::shared_ptr<TcpSocket> s) {
    auto sp = s;
    s->on_readable = [&received, sp] {
      auto chunk = sp->receive(4096);
      received.insert(received.end(), chunk.begin(), chunk.end());
    };
  });
  auto client = a->stack().tcp_connect(ip("10.0.0.2"), 80);
  std::vector<std::uint8_t> msg(300);
  std::iota(msg.begin(), msg.end(), 0);
  client->on_connected = [&] { client->send(msg); };
  net.loop().run_until(seconds(2));
  EXPECT_EQ(received, msg);
}

TEST_F(TcpFixture, BulkTransferIntegrityAndCompletion) {
  wire(lan());
  constexpr std::size_t kTotal = 2 * 1024 * 1024;
  auto listener = b->stack().tcp_listen(80);
  std::size_t received = 0;
  std::uint64_t checksum = 0;
  bool server_eof = false;
  listener->set_accept_handler([&](std::shared_ptr<TcpSocket> s) {
    auto sp = s;
    s->on_readable = [&, sp] {
      while (true) {
        auto chunk = sp->receive(65536);
        if (chunk.empty()) break;
        for (auto byte : chunk) checksum += byte;
        received += chunk.size();
      }
      if (sp->eof()) server_eof = true;
    };
  });
  auto client = a->stack().tcp_connect(ip("10.0.0.2"), 80);
  std::size_t queued = 0;
  std::uint64_t sent_checksum = 0;
  auto pump = [&] {
    while (queued < kTotal) {
      std::vector<std::uint8_t> chunk(
          std::min<std::size_t>(8192, kTotal - queued));
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        chunk[i] = static_cast<std::uint8_t>((queued + i) * 31);
      }
      const std::size_t sent = client->send(chunk);
      for (std::size_t i = 0; i < sent; ++i) sent_checksum += chunk[i];
      queued += sent;
      if (sent < chunk.size()) return;
    }
    client->close();
  };
  client->on_connected = pump;
  client->on_writable = pump;
  net.loop().run_until(seconds(60));
  EXPECT_EQ(received, kTotal);
  EXPECT_EQ(checksum, sent_checksum);
  EXPECT_TRUE(server_eof);
}

TEST_F(TcpFixture, TransferSurvivesHeavyLoss) {
  auto cfg = lan();
  cfg.loss_rate = 0.05;  // 5% loss both ways
  wire(cfg);
  constexpr std::size_t kTotal = 256 * 1024;
  auto listener = b->stack().tcp_listen(80);
  std::vector<std::uint8_t> received;
  received.reserve(kTotal);
  listener->set_accept_handler([&](std::shared_ptr<TcpSocket> s) {
    auto sp = s;
    s->on_readable = [&, sp] {
      while (true) {
        auto chunk = sp->receive(65536);
        if (chunk.empty()) break;
        received.insert(received.end(), chunk.begin(), chunk.end());
      }
    };
  });
  auto client = a->stack().tcp_connect(ip("10.0.0.2"), 80);
  std::size_t queued = 0;
  auto pump = [&] {
    while (queued < kTotal) {
      std::vector<std::uint8_t> chunk(
          std::min<std::size_t>(4096, kTotal - queued));
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        chunk[i] = static_cast<std::uint8_t>((queued + i) % 251);
      }
      const std::size_t sent = client->send(chunk);
      queued += sent;
      if (sent < chunk.size()) return;
    }
    client->close();
  };
  client->on_connected = pump;
  client->on_writable = pump;
  net.loop().run_until(seconds(600));
  ASSERT_EQ(received.size(), kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(received[i], static_cast<std::uint8_t>(i % 251)) << "at " << i;
  }
  EXPECT_GT(client->stats().retransmits, 0u);
}

TEST_F(TcpFixture, FastRetransmitOnIsolatedLoss) {
  auto cfg = lan();
  cfg.loss_rate = 0.01;
  wire(cfg);
  TtcpReceiver receiver(b->stack(), 80);
  TtcpSender sender(a->stack());
  TtcpSender::Options opts;
  opts.total_bytes = 512 * 1024;
  TtcpResult result;
  receiver.set_done([&](TtcpResult r) { result = r; });
  sender.run(ip("10.0.0.2"), 80, opts, [](TtcpResult) {});
  net.loop().run_until(seconds(300));
  EXPECT_EQ(result.bytes, opts.total_bytes);
  // With light loss most recoveries should be fast retransmits, and the
  // connection must not collapse into pure timeout recovery.
  EXPECT_GT(result.throughput_kbps(), 100.0);
}

TEST_F(TcpFixture, ThroughputIsWindowLimitedOnLongFatPipe) {
  sim::LinkConfig cfg;
  cfg.delay = milliseconds(20);  // 40 ms RTT
  cfg.bandwidth_bps = 100e6;
  wire(cfg);
  TtcpReceiver receiver(b->stack(), 80);
  TtcpSender sender(a->stack());
  TtcpSender::Options opts;
  opts.total_bytes = 4 * 1024 * 1024;
  TtcpResult result;
  receiver.set_done([&](TtcpResult r) { result = r; });
  sender.run(ip("10.0.0.2"), 80, opts, [](TtcpResult) {});
  net.loop().run_until(seconds(120));
  ASSERT_EQ(result.bytes, opts.total_bytes);
  // 64 KB window / 40 ms RTT = 1600 KB/s theoretical ceiling.
  EXPECT_LT(result.throughput_kbps(), 1700.0);
  EXPECT_GT(result.throughput_kbps(), 1000.0);
}

TEST_F(TcpFixture, LanThroughputApproachesLineRate) {
  wire(lan());
  TtcpReceiver receiver(b->stack(), 80);
  TtcpSender sender(a->stack());
  TtcpSender::Options opts;
  opts.total_bytes = 8 * 1024 * 1024;
  TtcpResult result;
  receiver.set_done([&](TtcpResult r) { result = r; });
  sender.run(ip("10.0.0.2"), 80, opts, [](TtcpResult) {});
  net.loop().run_until(seconds(60));
  ASSERT_EQ(result.bytes, opts.total_bytes);
  // 100 Mbps = 12.2 MB/s; expect most of it through one TCP stream.
  EXPECT_GT(result.throughput_kbps(), 7000.0);
  EXPECT_LT(result.throughput_kbps(), 12500.0);
}

TEST_F(TcpFixture, ConnectToClosedPortIsRefused) {
  wire(lan());
  std::string reason;
  auto client = a->stack().tcp_connect(ip("10.0.0.2"), 4321);
  client->on_closed = [&](std::string r) { reason = std::move(r); };
  net.loop().run_until(seconds(5));
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_EQ(reason, "connection refused");
}

TEST_F(TcpFixture, ConnectTimesOutWhenPeerSilent) {
  auto cfg = lan();
  wire(cfg);
  link->set_up(false);  // black hole
  std::string reason;
  TcpConfig tcfg;
  tcfg.syn_retries = 3;
  auto client = a->stack().tcp_connect(ip("10.0.0.2"), 80, tcfg);
  client->on_closed = [&](std::string r) { reason = std::move(r); };
  net.loop().run_until(seconds(120));
  EXPECT_EQ(reason, "connect timeout");
}

TEST_F(TcpFixture, GracefulCloseBothDirections) {
  wire(lan());
  auto listener = b->stack().tcp_listen(80);
  std::shared_ptr<TcpSocket> server;
  bool server_closed = false, client_closed = false;
  listener->set_accept_handler([&](std::shared_ptr<TcpSocket> s) {
    server = std::move(s);
    server->on_readable = [&] {
      if (server->eof()) server->close();  // close our side on EOF
    };
    server->on_closed = [&](std::string) { server_closed = true; };
  });
  auto client = a->stack().tcp_connect(ip("10.0.0.2"), 80);
  client->on_connected = [&] { client->close(); };
  client->on_closed = [&](std::string) { client_closed = true; };
  net.loop().run_until(seconds(120));  // covers TIME_WAIT
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_EQ(server->state(), TcpState::kClosed);
}

TEST_F(TcpFixture, AbortSendsReset) {
  wire(lan());
  auto listener = b->stack().tcp_listen(80);
  std::shared_ptr<TcpSocket> server;
  std::string server_reason = "unset";
  listener->set_accept_handler([&](std::shared_ptr<TcpSocket> s) {
    server = std::move(s);
    server->on_closed = [&](std::string r) { server_reason = std::move(r); };
  });
  auto client = a->stack().tcp_connect(ip("10.0.0.2"), 80);
  client->on_connected = [&] { client->abort(); };
  net.loop().run_until(seconds(5));
  EXPECT_EQ(server_reason, "connection reset");
}

TEST_F(TcpFixture, ZeroWindowStallsAndRecovers) {
  wire(lan());
  TcpConfig small;
  small.recv_buf = 4096;  // tiny receive buffer: reader-paced flow
  auto listener = b->stack().tcp_listen(80, small);
  std::shared_ptr<TcpSocket> server;
  std::size_t received = 0;
  listener->set_accept_handler(
      [&](std::shared_ptr<TcpSocket> s) { server = std::move(s); });
  auto client = a->stack().tcp_connect(ip("10.0.0.2"), 80);
  constexpr std::size_t kTotal = 64 * 1024;
  std::size_t queued = 0;
  auto pump = [&] {
    while (queued < kTotal) {
      std::vector<std::uint8_t> chunk(
          std::min<std::size_t>(8192, kTotal - queued));
      const std::size_t sent = client->send(chunk);
      queued += sent;
      if (sent < chunk.size()) return;
    }
    client->close();
  };
  client->on_connected = pump;
  client->on_writable = pump;
  // Slow reader: drain 2 KB every 50 ms.
  std::function<void()> drain = [&] {
    if (server) {
      auto chunk = server->receive(2048);
      received += chunk.size();
    }
    if (received < kTotal) {
      net.loop().schedule_after(milliseconds(50), drain);
    }
  };
  net.loop().schedule_after(milliseconds(50), drain);
  net.loop().run_until(seconds(600));
  EXPECT_EQ(received, kTotal);
}

TEST_F(TcpFixture, ManyParallelConnections) {
  wire(lan());
  constexpr int kConns = 20;
  auto listener = b->stack().tcp_listen(80);
  int server_done = 0;
  listener->set_accept_handler([&](std::shared_ptr<TcpSocket> s) {
    auto sp = s;
    auto count = std::make_shared<std::size_t>(0);
    s->on_readable = [&, sp, count] {
      while (true) {
        auto chunk = sp->receive(4096);
        if (chunk.empty()) break;
        *count += chunk.size();
      }
      if (sp->eof()) {
        EXPECT_EQ(*count, 1000u);
        ++server_done;
        sp->close();
      }
    };
  });
  std::vector<std::shared_ptr<TcpSocket>> clients;
  for (int i = 0; i < kConns; ++i) {
    auto c = a->stack().tcp_connect(ip("10.0.0.2"), 80);
    ASSERT_NE(c, nullptr);
    c->on_connected = [c] {
      std::vector<std::uint8_t> data(1000, 0x42);
      c->send(data);
      c->close();
    };
    clients.push_back(c);
  }
  net.loop().run_until(seconds(120));
  EXPECT_EQ(server_done, kConns);
}

TEST_F(TcpFixture, CongestionWindowGrowsFromSlowStart) {
  wire(lan());
  auto listener = b->stack().tcp_listen(80);
  listener->set_accept_handler([](std::shared_ptr<TcpSocket>) {});
  auto client = a->stack().tcp_connect(ip("10.0.0.2"), 80);
  const std::size_t initial_cwnd = client->cwnd();
  std::vector<std::uint8_t> data(200 * 1024, 1);
  client->on_connected = [&] { client->send(data); };
  net.loop().run_until(seconds(10));
  EXPECT_GT(client->cwnd(), initial_cwnd);
  EXPECT_GT(client->srtt().count(), 0);
}

// --- scatter-gather send path ----------------------------------------------

TEST(TcpWireTest, GatherEncodeMatchesCopyingEncode) {
  const auto src = ip("10.0.0.1");
  const auto dst = ip("10.0.0.2");
  std::vector<std::uint8_t> payload(700);
  std::iota(payload.begin(), payload.end(), std::uint8_t{3});

  TcpSegment seg;
  seg.src_port = 1234;
  seg.dst_port = 80;
  seg.seq = 0xCAFE0001;
  seg.ack = 0xBEEF0002;
  seg.flags.ack = true;
  seg.flags.psh = true;
  seg.window = 4096;
  seg.payload = payload;
  const auto copied = seg.encode_buffer(src, dst, 0);

  // Same header fields, payload scattered across three queue segments.
  util::BufferChain queue;
  queue.append(util::Buffer::copy_of({payload.data(), 100}));
  queue.append(util::Buffer::copy_of({payload.data() + 100, 500}));
  queue.append(util::Buffer::copy_of({payload.data() + 600, 100}));
  TcpSegment hdr = seg;
  hdr.payload.clear();
  const auto gathered = hdr.encode_gather(src, dst, 0, queue, 0, 700);

  EXPECT_EQ(gathered.view(), copied.view());
  // The gathered image decodes (checksum covers the gathered bytes).
  const auto decoded = TcpSegment::decode(gathered.as_span(), src, dst);
  EXPECT_EQ(decoded.payload, payload);

  // A mid-queue range gathers the right window of bytes.
  const auto slice = hdr.encode_gather(src, dst, 0, queue, 250, 200);
  const auto sliced = TcpSegment::decode(slice.as_span(), src, dst);
  EXPECT_EQ(sliced.payload, std::vector<std::uint8_t>(payload.begin() + 250,
                                                      payload.begin() + 450));
}

TEST_F(TcpFixture, BufferSendIsZeroCopyAndArrivesIntact) {
  wire(lan());
  auto listener = b->stack().tcp_listen(80);
  std::vector<std::uint8_t> received;
  listener->set_accept_handler([&](std::shared_ptr<TcpSocket> s) {
    auto sp = s;
    s->on_readable = [&received, sp] {
      auto chunk = sp->receive(64 * 1024);
      received.insert(received.end(), chunk.begin(), chunk.end());
    };
  });
  std::vector<std::uint8_t> msg(40 * 1024);
  std::iota(msg.begin(), msg.end(), std::uint8_t{0});
  auto client = a->stack().tcp_connect(ip("10.0.0.2"), 80);
  client->on_connected = [&] {
    // writev-style: a header segment and a payload buffer, linked into
    // the send queue as shared handles.
    util::BufferChain chain;
    chain.append(util::Buffer::copy_of({msg.data(), 1024}));
    chain.append(util::Buffer::copy_of({msg.data() + 1024, msg.size() - 1024}));
    EXPECT_EQ(client->send(std::move(chain)), msg.size());
  };
  net.loop().run_until(seconds(5));
  EXPECT_EQ(received, msg);
  // The send API linked shared handles: zero user/socket payload copies;
  // the queued bytes reached the segments through the gather walk.
  EXPECT_EQ(client->stats().payload_bytes_copied, 0u);
  EXPECT_GE(client->stats().payload_bytes_gathered, msg.size());
}

TEST_F(TcpFixture, SpanSendStillCountsItsCopy) {
  wire(lan());
  auto listener = b->stack().tcp_listen(80);
  listener->set_accept_handler([](std::shared_ptr<TcpSocket>) {});
  auto client = a->stack().tcp_connect(ip("10.0.0.2"), 80);
  std::vector<std::uint8_t> msg(2000, 0x7);
  client->on_connected = [&] { client->send(msg); };
  net.loop().run_until(seconds(2));
  EXPECT_EQ(client->stats().payload_bytes_copied, msg.size());
}

// --- path-MTU discovery (ICMP frag-needed, code 4) --------------------------

TEST(TcpPmtuTest, FragNeededShrinksMssAndTransferCompletes) {
  // a (MTU 1500) -- r -- b, with the WAN leg r<->b at MTU 600: the
  // router cannot forward a full-size segment and reports frag-needed
  // with its next-hop MTU (RFC 1191); the sender must react by shrinking
  // its segment size and finishing the transfer.
  Network net{7};
  auto& a = net.add_host("a");
  auto& r = net.add_router("r");
  auto& b = net.add_host("b");
  sim::LinkConfig link;
  link.delay = util::microseconds(200);
  net.connect(a.stack(), {"eth0", ip("10.0.0.2"), 24}, r.stack(),
              {"lan", ip("10.0.0.1"), 24}, link);
  InterfaceConfig r_wan{"wan", ip("20.0.0.1"), 24};
  r_wan.mtu = 600;
  InterfaceConfig b_eth{"eth0", ip("20.0.0.2"), 24};
  b_eth.mtu = 600;
  net.connect(r.stack(), r_wan, b.stack(), b_eth, link);
  a.stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0, ip("10.0.0.1"));
  b.stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0, ip("20.0.0.1"));

  auto listener = b.stack().tcp_listen(80);
  std::vector<std::uint8_t> received;
  listener->set_accept_handler([&](std::shared_ptr<TcpSocket> s) {
    auto sp = s;
    s->on_readable = [&received, sp] {
      auto chunk = sp->receive(64 * 1024);
      received.insert(received.end(), chunk.begin(), chunk.end());
    };
  });
  auto client = a.stack().tcp_connect(ip("20.0.0.2"), 80);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->mss(), 1460u);  // clamped to the local MTU only
  std::vector<std::uint8_t> msg(100 * 1024);
  std::iota(msg.begin(), msg.end(), std::uint8_t{0});
  std::size_t queued = 0;
  auto pump = [&] {
    queued += client->send(std::span<const std::uint8_t>(msg).subspan(queued));
  };
  client->on_connected = pump;
  client->on_writable = pump;
  net.loop().run_until(seconds(30));

  EXPECT_EQ(received, msg);
  // The sender reacted to the code-4 error: MSS now fits the 600-byte
  // WAN hop (600 - 20 IP - 20 TCP).
  EXPECT_EQ(client->mss(), 560u);
  EXPECT_EQ(client->stats().pmtu_shrinks, 1u);
  // The router really dropped oversized packets and reported them.
  EXPECT_GE(r.stack().counters().dropped_mtu, 1u);
  EXPECT_GE(r.stack().counters().icmp_errors_sent, 1u);
}

}  // namespace
}  // namespace ipop::net
