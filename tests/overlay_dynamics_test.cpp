// Tests for the overlay-dynamics mechanisms added during calibration:
// connection trimming, traffic-shortcut pinning, Nagle, the loaded-host
// scheduling model, and the Planet-Lab topology builder.
#include <gtest/gtest.h>

#include "brunet/node.hpp"
#include "ipop/node.hpp"
#include "net/topology.hpp"
#include "net/ttcp.hpp"
#include "net/ping.hpp"
#include "util/stats.hpp"

namespace ipop {
namespace {

using util::milliseconds;
using util::seconds;

net::Ipv4Address ip(const char* s) { return net::Ipv4Address::parse(s); }

// --- Connection trimming ------------------------------------------------------

struct BigOverlay {
  net::Network net{3131};
  std::vector<net::Host*> hosts;
  std::vector<std::unique_ptr<brunet::BrunetNode>> nodes;

  explicit BigOverlay(int n, std::size_t near = 2, std::size_t shortcuts = 2) {
    util::Rng rng(17);
    auto& sw = net.add_switch("sw");
    sim::LinkConfig lan;
    lan.delay = util::microseconds(200);
    for (int i = 0; i < n; ++i) {
      auto& h = net.add_host("n" + std::to_string(i));
      net.connect_to_switch(
          h.stack(),
          {"eth0",
           net::Ipv4Address(10, 0, static_cast<std::uint8_t>(i / 200),
                            static_cast<std::uint8_t>(i % 200 + 1)),
           16},
          sw, lan);
      hosts.push_back(&h);
      brunet::NodeConfig cfg;
      cfg.near_per_side = near;
      cfg.shortcut_target = shortcuts;
      auto node = std::make_unique<brunet::BrunetNode>(
          h, brunet::Address::random(rng), cfg);
      if (i > 0) {
        node->add_seed({brunet::TransportAddress::Proto::kUdp,
                        hosts[0]->stack().interface_ip(0), cfg.port});
      }
      nodes.push_back(std::move(node));
    }
    for (auto& nd : nodes) nd->start();
  }
};

TEST(ConnectionTrimming, MatureOverlayStaysSparse) {
  BigOverlay o(40);
  o.net.loop().run_until(seconds(240));
  double avg = 0;
  for (auto& n : o.nodes) avg += static_cast<double>(n->table().size());
  avg /= static_cast<double>(o.nodes.size());
  // near 2x2 + shortcuts 2 + peer-requested stragglers; a clique would be
  // 39.  Trimming must keep the overlay genuinely sparse.
  EXPECT_LT(avg, 16.0);
  EXPECT_GE(avg, 4.0);
}

TEST(ConnectionTrimming, RingRemainsCorrectAfterTrimming) {
  BigOverlay o(24);
  o.net.loop().run_until(seconds(240));
  std::vector<std::pair<brunet::Address, brunet::BrunetNode*>> sorted;
  for (auto& n : o.nodes) sorted.push_back({n->address(), n.get()});
  std::sort(sorted.begin(), sorted.end(),
            [](auto& a, auto& b) { return a.first < b.first; });
  int correct = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    auto right = sorted[i].second->right_neighbor();
    if (right && *right == sorted[(i + 1) % sorted.size()].first) ++correct;
  }
  EXPECT_EQ(correct, static_cast<int>(sorted.size()));
}

TEST(ConnectionTrimming, PeerRequestedNearLinksSurvive) {
  brunet::ConnectionTable table(brunet::Address::hash("self"));
  brunet::Connection c;
  c.addr = brunet::Address::hash("peer");
  c.type = brunet::ConnectionType::kStructuredFar;
  c.peer_requested_near = false;
  table.add(c);
  // Peer re-handshakes asking for near: flag must stick even though the
  // local classification stays far.
  brunet::Connection update = c;
  update.peer_requested_near = true;
  table.add(update);
  EXPECT_TRUE(table.find(c.addr)->peer_requested_near);
}

// --- Traffic shortcuts are pinned ----------------------------------------------

TEST(TrafficShortcut, PinnedTypeIsNeverTrimmed) {
  BigOverlay o(16, /*near=*/1, /*shortcuts=*/0);
  o.net.loop().run_until(seconds(180));
  // Find a pair without a direct link.
  brunet::BrunetNode* a = nullptr;
  brunet::BrunetNode* b = nullptr;
  for (auto& n1 : o.nodes) {
    for (auto& n2 : o.nodes) {
      if (n1 == n2 || n1->table().contains(n2->address())) continue;
      a = n1.get();
      b = n2.get();
      break;
    }
    if (a != nullptr) break;
  }
  ASSERT_NE(a, nullptr) << "overlay unexpectedly fully meshed";
  a->request_connection(b->address(),
                        brunet::ConnectionType::kTrafficShortcut);
  o.net.loop().run_until(o.net.loop().now() + seconds(30));
  ASSERT_TRUE(a->table().contains(b->address()));
  EXPECT_EQ(a->table().find(b->address())->type,
            brunet::ConnectionType::kTrafficShortcut);
  // Survives many maintenance/trim rounds.
  o.net.loop().run_until(o.net.loop().now() + seconds(120));
  EXPECT_TRUE(a->table().contains(b->address()));
}

// --- Nagle ----------------------------------------------------------------------

/// One self-contained measurement: fresh network per run.
struct NagleRun {
  double elapsed_s = 0;
  std::uint64_t segments_sent = 0;
};

NagleRun nagle_small_writes(bool nagle) {
  net::Network net{55};
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  sim::LinkConfig wan;
  wan.delay = milliseconds(20);  // 40 ms RTT makes Nagle delays visible
  net.connect(a.stack(), {"eth0", ip("10.0.0.1"), 24}, b.stack(),
              {"eth0", ip("10.0.0.2"), 24}, wan);
  net::TcpConfig cfg;
  cfg.nagle = nagle;
  auto listener = b.stack().tcp_listen(80, cfg);
  std::size_t received = 0;
  listener->set_accept_handler([&](std::shared_ptr<net::TcpSocket> s2) {
    auto sp = s2;
    s2->on_readable = [&received, sp] {
      while (true) {
        auto chunk = sp->receive(4096);
        if (chunk.empty()) break;
        received += chunk.size();
      }
    };
  });
  auto client = a.stack().tcp_connect(ip("10.0.0.2"), 80, cfg);
  const auto t0 = net.loop().now();
  constexpr int kWrites = 10;
  client->on_connected = [&] {
    for (int i = 0; i < kWrites; ++i) {
      std::vector<std::uint8_t> small(100, static_cast<std::uint8_t>(i));
      client->send(small);
    }
  };
  while (received < kWrites * 100 && net.loop().now() < t0 + seconds(60)) {
    net.loop().run_until(net.loop().now() + milliseconds(5));
  }
  NagleRun r;
  r.elapsed_s = util::to_seconds(net.loop().now() - t0);
  r.segments_sent = client->stats().segments_sent;
  return r;
}

TEST(Nagle, DelaysSmallWritesAndCoalesces) {
  const NagleRun without = nagle_small_writes(false);
  const NagleRun with = nagle_small_writes(true);
  // With TCP_NODELAY all ten 100-byte segments leave immediately (bounded
  // only by cwnd); with Nagle the coalesced tail waits for acks.
  EXPECT_GT(with.elapsed_s, without.elapsed_s + 0.020);
  EXPECT_LT(with.segments_sent, without.segments_sent);  // coalescing
}

// --- Loaded-host scheduling model -------------------------------------------------

TEST(CpuSchedQuantum, LoadedHostDelaysBursts) {
  sim::EventLoop loop;
  sim::CpuScheduler cpu(loop, "loaded");
  cpu.set_load(10.0);
  cpu.set_sched_quantum(milliseconds(60));
  util::RunningStats waits;
  for (int i = 0; i < 200; ++i) {
    // Idle gaps between tasks: each task pays a fresh scheduling wait.
    const auto issued = loop.now();
    bool done = false;
    util::TimePoint finished{};
    cpu.run(util::microseconds(100), [&] {
      finished = loop.now();
      done = true;
    });
    loop.run();
    ASSERT_TRUE(done);
    waits.add(util::to_milliseconds(finished - issued));
    loop.schedule_after(seconds(5), [] {});
    loop.run();
  }
  // Mean wait ~ quantum * load = 600 ms (exponential).
  EXPECT_GT(waits.mean(), 300.0);
  EXPECT_LT(waits.mean(), 1200.0);
}

TEST(CpuSchedQuantum, BurstsShareOneSchedulingWait) {
  sim::EventLoop loop;
  sim::CpuScheduler cpu(loop, "loaded");
  cpu.set_load(10.0);
  cpu.set_sched_quantum(milliseconds(60));
  // Queue 50 tasks at once: they must complete as one burst, not pay 50
  // independent 600 ms waits.
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    cpu.run(util::microseconds(100), [&] { ++done; });
  }
  loop.run();
  EXPECT_EQ(done, 50);
  // 50 x 100 us x 11 (load scaling) = 55 ms of work + one sched wait.
  EXPECT_LT(util::to_seconds(loop.now()), 10.0);
}

// --- Planet-Lab builder -------------------------------------------------------------

TEST(PlanetLabTopology, BuildsRequestedNodeCountWithLoads) {
  net::PlanetLabOptions opts;
  opts.nodes = 25;
  auto tb = net::build_planetlab(opts);
  ASSERT_EQ(tb.hosts.size(), 25u);
  ASSERT_EQ(tb.ips.size(), 25u);
  double total_load = 0;
  for (auto* h : tb.hosts) total_load += h->cpu().load();
  EXPECT_GT(total_load / 25.0, 2.0);  // heavy-tailed around mean 10
  // All pairwise physically reachable through the core.
  int replies = 0;
  tb.hosts[3]->stack().set_echo_reply_handler(
      [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  tb.hosts[3]->stack().send_echo_request(tb.ips[20], 1, 1);
  tb.net->loop().run_until(seconds(5));
  EXPECT_EQ(replies, 1);
}

TEST(PlanetLabTopology, AccessDelaysWithinConfiguredRange) {
  net::PlanetLabOptions opts;
  opts.nodes = 10;
  opts.cpu_load_mean = 0;
  opts.sched_quantum = util::Duration{0};
  auto tb = net::build_planetlab(opts);
  // RTT between two hosts = 2 x (d_a + d_b) + processing, with d in
  // [10ms, 80ms] -> RTT in [40ms, 330ms].
  tb.hosts[1]->stack().set_echo_reply_handler(
      [&](net::Ipv4Address, const net::IcmpMessage&) {});
  net::Pinger pinger(tb.hosts[1]->stack());
  net::Pinger::Options popts;
  popts.count = 10;
  popts.interval = milliseconds(100);
  popts.timeout = seconds(2);
  net::PingResult res;
  pinger.run(tb.ips[7], popts, [&](net::PingResult r) { res = std::move(r); });
  tb.net->loop().run_until(seconds(30));
  ASSERT_EQ(res.received, 10);
  EXPECT_GT(res.rtts_ms.mean(), 40.0);
  EXPECT_LT(res.rtts_ms.mean(), 340.0);
}

// --- IP aliases -------------------------------------------------------------------

TEST(IpAlias, AliasAnswersEcho) {
  net::Network net{66};
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  sim::LinkConfig lan;
  net.connect(a.stack(), {"eth0", ip("10.0.0.1"), 24}, b.stack(),
              {"eth0", ip("10.0.0.2"), 24}, lan);
  b.stack().add_ip_alias(0, ip("10.0.0.99"));
  // ARP cannot resolve the alias (interface replies only for its primary
  // address), so pre-seed the neighbor entry like IPOP's injector does.
  a.stack().add_static_arp(0, ip("10.0.0.99"), b.stack().interface_mac(0));
  int replies = 0;
  a.stack().set_echo_reply_handler(
      [&](net::Ipv4Address src, const net::IcmpMessage&) {
        EXPECT_EQ(src, ip("10.0.0.99"));
        ++replies;
      });
  a.stack().send_echo_request(ip("10.0.0.99"), 1, 1);
  net.loop().run_until(seconds(5));
  EXPECT_EQ(replies, 1);
  b.stack().remove_ip_alias(0, ip("10.0.0.99"));
  EXPECT_FALSE(b.stack().is_local_ip(ip("10.0.0.99")));
}

// --- Property sweeps ---------------------------------------------------------

/// TCP transfer integrity must hold across a sweep of loss rates.
struct TcpLossSweep : ::testing::TestWithParam<int> {};  // loss in 0.1%%

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep,
                         ::testing::Values(0, 10, 30, 70));  // 0..7%

TEST_P(TcpLossSweep, TransferIsLossless) {
  net::Network net{static_cast<std::uint64_t>(9000 + GetParam())};
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  sim::LinkConfig link;
  link.delay = milliseconds(1);
  link.loss_rate = GetParam() / 1000.0;
  net.connect(a.stack(), {"eth0", ip("10.0.0.1"), 24}, b.stack(),
              {"eth0", ip("10.0.0.2"), 24}, link);
  net::TtcpReceiver recv(b.stack(), 80);
  net::TtcpSender send(a.stack());
  net::TtcpSender::Options opts;
  opts.total_bytes = 96 * 1024;
  net::TtcpResult result;
  recv.set_done([&](net::TtcpResult r) { result = r; });
  send.run(ip("10.0.0.2"), 80, opts, [](net::TtcpResult) {});
  net.loop().run_until(seconds(1200));
  EXPECT_EQ(result.bytes, opts.total_bytes)
      << "at loss rate " << GetParam() / 10.0 << "%";
  EXPECT_TRUE(result.ok);
}

/// Ring formation and exact routing must converge for arbitrary seeds
/// (address distributions), not just the ones the other tests use.
struct SeedSweep : ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 31337ull, 987654321ull));

TEST_P(SeedSweep, RingConvergesAndRoutesForAnyAddressDistribution) {
  BigOverlay o(12);
  // Re-randomize addresses with the sweep seed by restarting the nodes
  // is heavyweight; instead we reuse BigOverlay and route to targets
  // drawn from the sweep seed.
  o.net.loop().run_until(seconds(180));
  util::Rng rng(GetParam());
  int delivered = 0;
  for (int t = 0; t < 20; ++t) {
    const auto target = brunet::Address::random(rng);
    // Expected owner = node with minimal ring distance.
    std::size_t expected = 0;
    for (std::size_t i = 1; i < o.nodes.size(); ++i) {
      if (brunet::Address::closer(target, o.nodes[i]->address(),
                                  o.nodes[expected]->address())) {
        expected = i;
      }
    }
    for (std::size_t i = 0; i < o.nodes.size(); ++i) {
      o.nodes[i]->set_handler(
          brunet::PacketType::kAppData,
          [&delivered, i, expected](const brunet::Packet&) {
            EXPECT_EQ(i, expected);
            ++delivered;
          });
    }
    const std::size_t origin = static_cast<std::size_t>(t) % o.nodes.size();
    if (origin == expected) continue;
    o.nodes[origin]->send(
        brunet::Destination::closest(target),
        brunet::OutboundFrame(brunet::PacketType::kAppData,
                              std::vector<std::uint8_t>{}));
    o.net.loop().run_until(o.net.loop().now() + seconds(2));
  }
  EXPECT_GT(delivered, 0);
}

}  // namespace
}  // namespace ipop
