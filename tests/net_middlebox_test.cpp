// NAT (all four RFC 3489 types) — behaviour matrix, conntrack-driven
// mapping lifetime (TCP SYN/FIN/RST lifecycle), in-place rewriting, ICMP
// error translation (traceroute through the NAT) — stateful firewall
// (bounded conntrack, related-flow admission), and the Figure-4 testbed's
// reachability policy.
#include <gtest/gtest.h>

#include "net/icmp.hpp"
#include "net/l4_patch.hpp"
#include "net/ping.hpp"
#include "net/topology.hpp"
#include "net/traceroute.hpp"
#include "net/udp.hpp"

namespace ipop::net {
namespace {

using util::milliseconds;
using util::seconds;

Ipv4Address ip(const char* s) { return Ipv4Address::parse(s); }

// ---------------------------------------------------------------------------
// NAT behaviour matrix.
//
// inside (10.0.0.2) -- NAT -- outside subnet (8.0.0.0/24) with two public
// hosts pub1 (8.0.0.10) and pub2 (8.0.0.20).
// ---------------------------------------------------------------------------
struct NatFixture : ::testing::TestWithParam<NatType> {
  Network net{21};
  Host* inside = nullptr;
  Host* pub1 = nullptr;
  Host* pub2 = nullptr;
  NatBox* nat = nullptr;

  void SetUp() override {
    inside = &net.add_host("inside");
    pub1 = &net.add_host("pub1");
    pub2 = &net.add_host("pub2");
    nat = &net.add_nat("nat", GetParam());
    sim::LinkConfig link;
    link.delay = milliseconds(1);
    auto& sw = net.add_switch("outside");
    net.connect(inside->stack(), {"eth0", ip("10.0.0.2"), 24}, nat->stack(),
                {"in", ip("10.0.0.1"), 24}, link);
    net.connect_to_switch(nat->stack(), {"out", ip("8.0.0.1"), 24}, sw, link);
    net.connect_to_switch(pub1->stack(), {"eth0", ip("8.0.0.10"), 24}, sw, link);
    net.connect_to_switch(pub2->stack(), {"eth0", ip("8.0.0.20"), 24}, sw, link);
    inside->stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0, ip("10.0.0.1"));
  }

  struct Echo {
    Ipv4Address src;
    std::uint16_t src_port;
    std::vector<std::uint8_t> data;
  };
};

INSTANTIATE_TEST_SUITE_P(AllNatTypes, NatFixture,
                         ::testing::Values(NatType::kFullCone,
                                           NatType::kRestrictedCone,
                                           NatType::kPortRestrictedCone,
                                           NatType::kSymmetric),
                         [](const auto& info) {
                           std::string n = nat_type_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(NatFixture, OutboundUdpIsTranslatedAndRepliesReturn) {
  auto server = pub1->stack().udp_bind(7000);
  Ipv4Address seen_src;
  std::uint16_t seen_port = 0;
  server->set_receive_handler(
      [&](Ipv4Address src, std::uint16_t sport, std::vector<std::uint8_t> d) {
        seen_src = src;
        seen_port = sport;
        server->send_to(src, sport, std::move(d));
      });
  auto client = inside->stack().udp_bind(5555);
  std::vector<std::uint8_t> reply;
  client->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t> d) {
        reply = std::move(d);
      });
  client->send_to(ip("8.0.0.10"), 7000, {1, 2, 3});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(seen_src, ip("8.0.0.1"));  // translated to the NAT's external IP
  EXPECT_NE(seen_port, 5555);          // translated port
  EXPECT_EQ(reply, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(nat->stats().mappings_created, 1u);
}

TEST_P(NatFixture, ThirdPartyInboundFollowsNatTypeRules) {
  // inside contacts pub1 only; then pub2 tries to reach the mapped port.
  auto server = pub1->stack().udp_bind(7000);
  std::uint16_t mapped_port = 0;
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t sport, std::vector<std::uint8_t>) {
        mapped_port = sport;
      });
  auto client = inside->stack().udp_bind(5555);
  int inside_got = 0;
  client->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {
        ++inside_got;
      });
  client->send_to(ip("8.0.0.10"), 7000, {1});
  net.loop().run_until(seconds(1));
  ASSERT_NE(mapped_port, 0);

  // pub2 (different IP, some port) sends to the mapping.
  auto probe = pub2->stack().udp_bind(9000);
  probe->send_to(ip("8.0.0.1"), mapped_port, {0x77});
  net.loop().run_until(seconds(2));

  const bool should_pass = GetParam() == NatType::kFullCone;
  EXPECT_EQ(inside_got > 0, should_pass)
      << "NAT type " << nat_type_name(GetParam());
}

TEST_P(NatFixture, SameHostDifferentPortFollowsNatTypeRules) {
  // inside contacts pub1:7000; pub1 then replies from port 7001.
  auto server = pub1->stack().udp_bind(7000);
  std::uint16_t mapped_port = 0;
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t sport, std::vector<std::uint8_t>) {
        mapped_port = sport;
      });
  auto client = inside->stack().udp_bind(5555);
  int inside_got = 0;
  client->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {
        ++inside_got;
      });
  client->send_to(ip("8.0.0.10"), 7000, {1});
  net.loop().run_until(seconds(1));
  ASSERT_NE(mapped_port, 0);

  auto other_port = pub1->stack().udp_bind(7001);
  other_port->send_to(ip("8.0.0.1"), mapped_port, {0x55});
  net.loop().run_until(seconds(2));

  const bool should_pass = GetParam() == NatType::kFullCone ||
                           GetParam() == NatType::kRestrictedCone;
  EXPECT_EQ(inside_got > 0, should_pass)
      << "NAT type " << nat_type_name(GetParam());
}

TEST_P(NatFixture, ConePreservesMappingAcrossDestinations) {
  // The property Brunet traversal relies on: for non-symmetric NATs the
  // same internal endpoint maps to the same external port regardless of
  // destination.
  std::uint16_t port_seen_by_1 = 0, port_seen_by_2 = 0;
  auto s1 = pub1->stack().udp_bind(7000);
  s1->set_receive_handler([&](Ipv4Address, std::uint16_t sport,
                              std::vector<std::uint8_t>) { port_seen_by_1 = sport; });
  auto s2 = pub2->stack().udp_bind(7000);
  s2->set_receive_handler([&](Ipv4Address, std::uint16_t sport,
                              std::vector<std::uint8_t>) { port_seen_by_2 = sport; });
  auto client = inside->stack().udp_bind(5555);
  client->send_to(ip("8.0.0.10"), 7000, {1});
  client->send_to(ip("8.0.0.20"), 7000, {1});
  net.loop().run_until(seconds(2));
  ASSERT_NE(port_seen_by_1, 0);
  ASSERT_NE(port_seen_by_2, 0);
  if (GetParam() == NatType::kSymmetric) {
    EXPECT_NE(port_seen_by_1, port_seen_by_2);
  } else {
    EXPECT_EQ(port_seen_by_1, port_seen_by_2);
  }
}

TEST_P(NatFixture, TcpThroughNatWorksOutbound) {
  auto listener = pub1->stack().tcp_listen(80);
  std::vector<std::uint8_t> got;
  listener->set_accept_handler([&](std::shared_ptr<TcpSocket> s) {
    auto sp = s;
    s->on_readable = [&, sp] {
      auto chunk = sp->receive(4096);
      got.insert(got.end(), chunk.begin(), chunk.end());
    };
  });
  auto client = inside->stack().tcp_connect(ip("8.0.0.10"), 80);
  ASSERT_NE(client, nullptr);
  client->on_connected = [&] {
    client->send(std::vector<std::uint8_t>{9, 8, 7});
  };
  net.loop().run_until(seconds(5));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST_P(NatFixture, UnsolicitedInboundToUnmappedPortBlocked) {
  auto probe = pub2->stack().udp_bind(9000);
  const auto blocked_before = nat->stats().blocked_in;
  probe->send_to(ip("8.0.0.1"), 40000, {1});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(nat->stats().blocked_in, blocked_before + 1);
}

TEST_P(NatFixture, PingThroughNat) {
  Pinger pinger(inside->stack());
  Pinger::Options opts;
  opts.count = 3;
  opts.interval = milliseconds(10);
  opts.timeout = milliseconds(500);
  PingResult res;
  pinger.run(ip("8.0.0.10"), opts, [&](PingResult r) { res = std::move(r); });
  net.loop().run_until(seconds(5));
  EXPECT_EQ(res.received, 3);
}

// ---------------------------------------------------------------------------
// NAT mapping lifetime: idle expiry and external-port reclamation
// ---------------------------------------------------------------------------
struct NatLifetimeFixture : ::testing::Test {
  Network net{22};
  Host* inside = nullptr;
  Host* outside = nullptr;
  NatBox* nat = nullptr;

  void SetUp() override {
    inside = &net.add_host("inside");
    outside = &net.add_host("outside");
    NatConfig ncfg;
    ncfg.timeouts.udp_idle = seconds(5);
    ncfg.sweep_interval = seconds(1);
    // Two allocatable ports before the counter wraps: 65534, 65535.
    ncfg.first_ext_port = 65534;
    nat = &net.add_nat("nat", NatType::kPortRestrictedCone, {}, ncfg);
    sim::LinkConfig link;
    link.delay = milliseconds(1);
    net.connect(inside->stack(), {"eth0", ip("10.0.0.2"), 24}, nat->stack(),
                {"in", ip("10.0.0.1"), 24}, link);
    net.connect(nat->stack(), {"out", ip("8.0.0.1"), 24}, outside->stack(),
                {"eth0", ip("8.0.0.2"), 24}, link);
    inside->stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0,
                              ip("10.0.0.1"));
  }
};

TEST_F(NatLifetimeFixture, IdleMappingsExpireAndBlockInbound) {
  auto server = outside->stack().udp_bind(7000);
  std::uint16_t mapped_port = 0;
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t sport, std::vector<std::uint8_t>) {
        mapped_port = sport;
      });
  auto client = inside->stack().udp_bind(5555);
  client->send_to(ip("8.0.0.2"), 7000, {1});
  net.loop().run_until(seconds(1));
  ASSERT_NE(mapped_port, 0);
  EXPECT_EQ(nat->mapping_count(), 1u);

  // No traffic for longer than the idle timeout: the sweep reclaims the
  // mapping (a long-lived box does not accumulate one entry per flow
  // forever).
  net.loop().run_until(seconds(10));
  EXPECT_EQ(nat->mapping_count(), 0u);
  EXPECT_GE(nat->stats().mappings_expired, 1u);

  // The reclaimed external port no longer routes inside.
  auto probe = outside->stack().udp_bind(9000);
  const auto blocked_before = nat->stats().blocked_in;
  probe->send_to(ip("8.0.0.1"), mapped_port, {2});
  net.loop().run_until(seconds(12));
  EXPECT_EQ(nat->stats().blocked_in, blocked_before + 1);
}

TEST_F(NatLifetimeFixture, TrafficRefreshesMappings) {
  auto server = outside->stack().udp_bind(7000);
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {});
  auto client = inside->stack().udp_bind(5555);
  // Send every 2 s for 20 s: always inside the 5 s idle timeout.
  for (int i = 0; i < 10; ++i) {
    client->send_to(ip("8.0.0.2"), 7000, {1});
    net.loop().run_until(net.loop().now() + seconds(2));
  }
  EXPECT_EQ(nat->mapping_count(), 1u);
  EXPECT_EQ(nat->stats().mappings_expired, 0u);
  EXPECT_EQ(nat->stats().mappings_created, 1u);
}

TEST_F(NatLifetimeFixture, ExternalPortWrapReusesExpiredPortsCleanly) {
  // Regression for the port-wrap bug: next_ext_port_ used to increment
  // forever, so past 64k mappings the counter wrapped into ports whose
  // by_ext_port_ entries still pointed at old mappings.  With two
  // allocatable ports (65534, 65535), flows A and B take both; after
  // they expire, flows C and D must get the *same* ports, and inbound
  // traffic must reach C/D — not the stale A/B state.
  auto server = outside->stack().udp_bind(7000);
  std::vector<std::uint16_t> seen_ports;
  server->set_receive_handler(
      [&](Ipv4Address src, std::uint16_t sport, std::vector<std::uint8_t> d) {
        seen_ports.push_back(sport);
        server->send_to(src, sport, std::move(d));  // echo
      });
  auto a = inside->stack().udp_bind(5001);
  auto b = inside->stack().udp_bind(5002);
  a->send_to(ip("8.0.0.2"), 7000, {1});
  b->send_to(ip("8.0.0.2"), 7000, {1});
  net.loop().run_until(seconds(1));
  ASSERT_EQ(seen_ports.size(), 2u);
  EXPECT_EQ(nat->stats().mappings_created, 2u);

  // A third concurrent flow finds the port space exhausted and is
  // dropped, not silently aliased onto a live mapping.
  auto c = inside->stack().udp_bind(5003);
  c->send_to(ip("8.0.0.2"), 7000, {1});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(seen_ports.size(), 2u);
  EXPECT_GE(nat->stats().dropped_port_exhausted, 1u);

  // Let A and B expire, then open two fresh flows from different inside
  // ports: the wrapped counter must hand out the reclaimed ports again.
  net.loop().run_until(seconds(10));
  ASSERT_EQ(nat->mapping_count(), 0u);
  seen_ports.clear();
  int d_replies = 0, e_replies = 0;
  auto d = inside->stack().udp_bind(6001);
  auto e = inside->stack().udp_bind(6002);
  d->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {
        ++d_replies;
      });
  e->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {
        ++e_replies;
      });
  d->send_to(ip("8.0.0.2"), 7000, {2});
  e->send_to(ip("8.0.0.2"), 7000, {2});
  net.loop().run_until(seconds(12));
  ASSERT_EQ(seen_ports.size(), 2u);
  // Reused external ports from the reclaimed pair...
  for (auto p : seen_ports) EXPECT_GE(p, 65534);
  // ...and the echoes came back to the *new* flows (no stale
  // by_ext_port_ collision sending them to 5001/5002).
  EXPECT_EQ(d_replies, 1);
  EXPECT_EQ(e_replies, 1);
}

// ---------------------------------------------------------------------------
// In-place NAT rewrite (zero-copy, refcount-verified)
// ---------------------------------------------------------------------------

TEST(L4PatchTest, UdpRewritePatchesInPlaceAndFixesChecksum) {
  const auto src = ip("10.0.0.2");
  const auto dst = ip("8.0.0.10");
  const auto ext = ip("8.0.0.1");
  UdpDatagram d;
  d.src_port = 5555;
  d.dst_port = 7000;
  d.payload = {1, 2, 3, 4, 5, 6, 7};
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kUdp;
  pkt.hdr.src = src;
  pkt.hdr.dst = dst;
  pkt.payload = util::Buffer::wrap(d.encode(src, dst));  // real checksum

  const std::uint8_t* storage = pkt.payload.data();
  const std::size_t copied =
      patch_l4_endpoints(pkt, L4Endpoint{ext, 62001}, std::nullopt);
  // Uniquely owned: patched in place, zero bytes copied.
  EXPECT_EQ(copied, 0u);
  EXPECT_EQ(pkt.payload.data(), storage);
  EXPECT_EQ(pkt.hdr.src, ext);
  // The incrementally updated checksum validates against the new
  // pseudo-header, and the ports/payload read back correctly.
  auto g = UdpDatagram::decode(pkt.payload.view(), ext, dst);
  EXPECT_EQ(g.src_port, 62001);
  EXPECT_EQ(g.dst_port, 7000);
  EXPECT_EQ(g.payload, d.payload);
}

TEST(L4PatchTest, UdpZeroChecksumStaysZero) {
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kUdp;
  pkt.hdr.src = ip("10.0.0.2");
  pkt.hdr.dst = ip("8.0.0.10");
  UdpDatagram d;
  d.src_port = 5555;
  d.dst_port = 7000;
  d.payload = {9, 9};
  pkt.payload = util::Buffer::wrap(d.encode());  // checksum 0 = none
  patch_l4_endpoints(pkt, L4Endpoint{ip("8.0.0.1"), 60000}, std::nullopt);
  auto v = UdpView::parse(pkt.payload.view());
  EXPECT_EQ(v.src_port, 60000);
  EXPECT_EQ(v.checksum, 0);  // "no checksum" is preserved per RFC 768
}

TEST(L4PatchTest, TcpRewriteKeepsChecksumValid) {
  const auto src = ip("10.0.0.2");
  const auto dst = ip("8.0.0.10");
  const auto ext = ip("8.0.0.1");
  TcpSegment seg;
  seg.src_port = 44000;
  seg.dst_port = 80;
  seg.seq = 1234;
  seg.flags.psh = true;
  seg.flags.ack = true;
  seg.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kTcp;
  pkt.hdr.src = src;
  pkt.hdr.dst = dst;
  pkt.payload = seg.encode_buffer(src, dst, 0);

  const std::uint8_t* storage = pkt.payload.data();
  EXPECT_EQ(patch_l4_endpoints(pkt, L4Endpoint{ext, 62002}, std::nullopt), 0u);
  EXPECT_EQ(pkt.payload.data(), storage);
  // decode() re-validates the pseudo-header checksum end to end.
  auto g = TcpSegment::decode(pkt.payload.view(), ext, dst);
  EXPECT_EQ(g.src_port, 62002);
  EXPECT_EQ(g.payload, seg.payload);
}

TEST(L4PatchTest, IcmpIdRewriteKeepsChecksumValid) {
  IcmpMessage m;
  m.type = IcmpType::kEchoRequest;
  m.id = 77;
  m.seq = 3;
  m.payload = {1, 2, 3};
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kIcmp;
  pkt.hdr.src = ip("10.0.0.2");
  pkt.hdr.dst = ip("8.0.0.10");
  pkt.payload = util::Buffer::wrap(m.encode());
  EXPECT_EQ(
      patch_l4_endpoints(pkt, L4Endpoint{ip("8.0.0.1"), 4242}, std::nullopt),
      0u);
  auto g = IcmpMessage::decode(pkt.payload.view());  // validates checksum
  EXPECT_EQ(g.id, 4242);
  EXPECT_EQ(g.seq, 3);
}

TEST(L4PatchTest, SharedStorageTriggersCopyOnWrite) {
  // Like buffer_test's shared-prepend case: a rewrite on shared storage
  // must not corrupt the bytes another holder still reads.
  UdpDatagram d;
  d.src_port = 5555;
  d.dst_port = 7000;
  d.payload = {42, 43, 44};
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kUdp;
  pkt.hdr.src = ip("10.0.0.2");
  pkt.hdr.dst = ip("8.0.0.10");
  pkt.payload = util::Buffer::wrap(d.encode());
  util::Buffer other = pkt.payload.share();  // e.g. a flooded sibling
  ASSERT_EQ(pkt.payload.use_count(), 2);

  const std::size_t copied =
      patch_l4_endpoints(pkt, L4Endpoint{ip("8.0.0.1"), 60001}, std::nullopt);
  EXPECT_EQ(copied, other.size());        // copy-on-write, counted
  EXPECT_NE(pkt.payload.data(), other.data());
  EXPECT_TRUE(pkt.payload.unique());
  // The sibling still reads the original port...
  EXPECT_EQ(UdpView::parse(other.view()).src_port, 5555);
  // ...while the packet carries the rewrite.
  EXPECT_EQ(UdpView::parse(pkt.payload.view()).src_port, 60001);
}

TEST_F(NatLifetimeFixture, ForwardedPacketCrossesNatWithZeroCopies) {
  // The tentpole's acceptance criterion at test granularity: after ARP
  // and mapping warm-up, a NAT-translated forward moves zero payload
  // bytes — header prepends reuse headroom, the port rewrite patches the
  // shared buffer in place.
  auto server = outside->stack().udp_bind(7000);
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, util::Buffer) {});
  auto client = inside->stack().udp_bind(5555);
  auto payload = util::Buffer::allocate(1000, util::kPacketHeadroom);
  client->send_to(ip("8.0.0.2"), 7000, payload.clone(util::kPacketHeadroom));
  net.loop().run_until(seconds(1));

  const auto nat_before = nat->stack().counters().payload_bytes_copied;
  const auto fwd_before = nat->stack().counters().forwarded;
  for (int i = 0; i < 50; ++i) {
    client->send_to(ip("8.0.0.2"), 7000,
                    payload.clone(util::kPacketHeadroom));
  }
  net.loop().run_until(seconds(2));
  EXPECT_EQ(nat->stack().counters().forwarded, fwd_before + 50);
  EXPECT_EQ(nat->stack().counters().payload_bytes_copied, nat_before);
  EXPECT_EQ(nat->stats().rewrite_bytes_copied, 0u);
  EXPECT_EQ(server->datagrams_received(), 51u);
}

// ---------------------------------------------------------------------------
// ICMP error-quote rewriting (unit level)
// ---------------------------------------------------------------------------

// An ICMP error as a router on the path would emit it: quoting the
// original packet's IP header plus its first `quote_l4` payload bytes.
Ipv4Packet make_icmp_error(const Ipv4Packet& original, IcmpType type,
                           std::uint8_t code, Ipv4Address router_ip) {
  IcmpMessage msg;
  msg.type = type;
  msg.code = code;
  const std::size_t quote_l4 =
      std::min<std::size_t>(original.payload.size(), 8);
  std::vector<std::uint8_t> quoted(Ipv4Header::kSize + quote_l4);
  Ipv4Packet::encode_header(quoted.data(), original.hdr,
                            original.total_length());
  std::copy_n(original.payload.begin(), quote_l4,
              quoted.begin() + Ipv4Header::kSize);
  msg.payload = std::move(quoted);
  Ipv4Packet err;
  err.hdr.proto = IpProto::kIcmp;
  err.hdr.src = router_ip;
  err.hdr.dst = original.hdr.src;
  err.payload = msg.encode_buffer(util::kPacketHeadroom);
  return err;
}

Ipv4Packet make_udp_packet(Ipv4Address src, std::uint16_t sport,
                           Ipv4Address dst, std::uint16_t dport,
                           bool with_checksum) {
  UdpDatagram d;
  d.src_port = sport;
  d.dst_port = dport;
  // Empty payload: the 8-byte UDP header is quoted in full, so the quoted
  // transport checksum can be re-validated end to end after the patch.
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kUdp;
  pkt.hdr.src = src;
  pkt.hdr.dst = dst;
  pkt.payload = util::Buffer::wrap(with_checksum ? d.encode(src, dst)
                                                 : d.encode());
  return pkt;
}

TEST(IcmpQuotePatchTest, RewritesQuoteInPlaceAndFixesAllChecksums) {
  const auto inside = ip("10.0.0.2");
  const auto ext = ip("8.0.0.1");
  const auto far = ip("9.0.0.2");
  // The translated (post-SNAT) probe a router beyond the NAT saw.
  Ipv4Packet translated = make_udp_packet(ext, 62001, far, 33434,
                                          /*with_checksum=*/true);
  Ipv4Packet err =
      make_icmp_error(translated, IcmpType::kTimeExceeded, 0, ip("8.0.0.2"));

  auto q = icmp_error_quote(err);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->proto, IpProto::kUdp);
  EXPECT_EQ(q->src.ip, ext);
  EXPECT_EQ(q->src.port, 62001);
  EXPECT_EQ(q->dst.ip, far);
  EXPECT_EQ(q->dst.port, 33434);

  // Translate the quote back to the inside endpoint, as dnat does.
  const std::uint8_t* storage = err.payload.data();
  const std::size_t copied = patch_icmp_quote_endpoint(
      err, *q, /*src_side=*/true, L4Endpoint{inside, 5555}, std::nullopt,
      inside);
  EXPECT_EQ(copied, 0u);
  EXPECT_EQ(err.payload.data(), storage);  // patched in place
  EXPECT_EQ(err.hdr.dst, inside);

  // Outer ICMP checksum revalidates over the rewritten quote.
  EXPECT_NO_THROW(IcmpView::parse(err.payload.view()));
  // The embedded quote now reads as the pre-SNAT packet...
  auto q2 = parse_ipv4_quote(err.payload.view(), IcmpView::kQuoteOffset);
  ASSERT_TRUE(q2.has_value());
  EXPECT_EQ(q2->src.ip, inside);
  EXPECT_EQ(q2->src.port, 5555);
  EXPECT_EQ(q2->dst.ip, far);
  // ...its quoted IP header checksum is valid...
  EXPECT_EQ(internet_checksum(err.payload.view(IcmpView::kQuoteOffset,
                                               Ipv4Header::kSize)),
            0);
  // ...and the quoted UDP checksum validates against the new
  // pseudo-header (the quote carries the full 8-byte datagram here).
  EXPECT_EQ(transport_checksum(inside, far, IpProto::kUdp,
                               err.payload.view(
                                   IcmpView::kQuoteOffset + Ipv4Header::kSize,
                                   8)),
            0);
}

TEST(IcmpQuotePatchTest, ZeroUdpChecksumInQuoteStaysZero) {
  // RFC 768: checksum 0 means "not computed"; an RFC 1624 incremental
  // update of 0 would fabricate a garbage nonzero sum.
  const auto ext = ip("8.0.0.1");
  const auto far = ip("9.0.0.2");
  Ipv4Packet translated = make_udp_packet(ext, 62001, far, 33434,
                                          /*with_checksum=*/false);
  Ipv4Packet err =
      make_icmp_error(translated, IcmpType::kTimeExceeded, 0, ip("8.0.0.2"));
  auto q = icmp_error_quote(err);
  ASSERT_TRUE(q.has_value());
  patch_icmp_quote_endpoint(err, *q, /*src_side=*/true,
                            L4Endpoint{ip("10.0.0.2"), 5555}, std::nullopt,
                            ip("10.0.0.2"));
  const std::size_t csum_off =
      IcmpView::kQuoteOffset + Ipv4Header::kSize + UdpView::kChecksumOffset;
  EXPECT_EQ(util::load_u16(err.payload.data() + csum_off), 0);
  // The outer ICMP checksum still validates.
  EXPECT_NO_THROW(IcmpView::parse(err.payload.view()));
}

TEST(IcmpQuotePatchTest, SharedStorageTriggersCopyOnWrite) {
  Ipv4Packet translated = make_udp_packet(ip("8.0.0.1"), 62001, ip("9.0.0.2"),
                                          33434, /*with_checksum=*/true);
  Ipv4Packet err =
      make_icmp_error(translated, IcmpType::kTimeExceeded, 0, ip("8.0.0.2"));
  util::Buffer other = err.payload.share();
  auto q = icmp_error_quote(err);
  ASSERT_TRUE(q.has_value());
  const std::size_t copied = patch_icmp_quote_endpoint(
      err, *q, /*src_side=*/true, L4Endpoint{ip("10.0.0.2"), 5555},
      std::nullopt, ip("10.0.0.2"));
  EXPECT_EQ(copied, other.size());
  EXPECT_NE(err.payload.data(), other.data());
  // The sibling still reads the original external endpoint.
  auto orig = parse_ipv4_quote(other.view(), IcmpView::kQuoteOffset);
  ASSERT_TRUE(orig.has_value());
  EXPECT_EQ(orig->src.port, 62001);
}

// ---------------------------------------------------------------------------
// Traceroute through the NAT: TTL-exceeded and port-unreachable errors
// generated beyond the box are translated back hop by hop.
//
// inside (10.0.0.2) -- NAT (10.0.0.1 / 8.0.0.1) -- r1 (8.0.0.2 / 9.0.0.1)
//   -- outside (9.0.0.2)
// ---------------------------------------------------------------------------
struct TracerouteFixture : ::testing::TestWithParam<NatType> {
  Network net{23};
  Host* inside = nullptr;
  Host* r1 = nullptr;
  Host* outside = nullptr;
  NatBox* nat = nullptr;

  void SetUp() override {
    inside = &net.add_host("inside");
    r1 = &net.add_router("r1");
    outside = &net.add_host("outside");
    nat = &net.add_nat("nat", GetParam());
    sim::LinkConfig link;
    link.delay = milliseconds(1);
    net.connect(inside->stack(), {"eth0", ip("10.0.0.2"), 24}, nat->stack(),
                {"in", ip("10.0.0.1"), 24}, link);
    net.connect(nat->stack(), {"out", ip("8.0.0.1"), 24}, r1->stack(),
                {"eth0", ip("8.0.0.2"), 24}, link);
    net.connect(r1->stack(), {"eth1", ip("9.0.0.1"), 24}, outside->stack(),
                {"eth0", ip("9.0.0.2"), 24}, link);
    inside->stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0,
                              ip("10.0.0.1"));
    nat->stack().add_route(Ipv4Prefix::parse("9.0.0.0/24"), 1, ip("8.0.0.2"));
    outside->stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0,
                               ip("9.0.0.1"));
  }
};

INSTANTIATE_TEST_SUITE_P(AllNatTypes, TracerouteFixture,
                         ::testing::Values(NatType::kFullCone,
                                           NatType::kRestrictedCone,
                                           NatType::kPortRestrictedCone,
                                           NatType::kSymmetric),
                         [](const auto& info) {
                           std::string n = nat_type_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(TracerouteFixture, EveryHopAnswersThroughTheNat) {
  Traceroute tr(inside->stack());
  Traceroute::Options opts;
  opts.max_ttl = 8;
  opts.probe_timeout = seconds(1);
  TracerouteResult res;
  bool done = false;
  tr.run(ip("9.0.0.2"), opts, [&](TracerouteResult r) {
    res = std::move(r);
    done = true;
  });
  net.loop().run_until(seconds(20));
  ASSERT_TRUE(done);
  ASSERT_EQ(res.hops.size(), 3u) << "NAT type " << nat_type_name(GetParam());
  // Hop 1: the NAT itself (error generated before translation).
  EXPECT_FALSE(res.hops[0].timed_out);
  EXPECT_EQ(res.hops[0].from, ip("10.0.0.1"));
  // Hop 2: the router beyond the NAT — only reachable via quote rewrite.
  EXPECT_FALSE(res.hops[1].timed_out);
  EXPECT_EQ(res.hops[1].from, ip("8.0.0.2"));
  // Hop 3: the destination's port-unreachable, equally translated.
  EXPECT_TRUE(res.reached);
  EXPECT_EQ(res.hops[2].from, ip("9.0.0.2"));
  // Two errors originated beyond the box and were rewritten in place.
  EXPECT_EQ(nat->stats().icmp_errors_translated_in, 2u);
  EXPECT_EQ(nat->stats().rewrite_bytes_copied, 0u);
  EXPECT_GE(inside->stack().counters().icmp_errors_delivered, 3u);
}

TEST_P(TracerouteFixture, EchoFlowErrorsAreTranslatedToo) {
  // Ping-flavoured traceroute: a TTL-limited echo request dies beyond
  // the NAT.  The error quotes the echo with the *rewritten* query id in
  // its port slot, so the related-flow match must go per destination IP
  // (like inbound_allowed) — matching the recorded inside id would
  // orphan every echo-flow error.
  int errors = 0;
  inside->stack().set_icmp_error_handler(
      [&](Ipv4Address, const IcmpMessage&) { ++errors; });
  IcmpMessage echo;
  echo.type = IcmpType::kEchoRequest;
  echo.id = 321;
  echo.seq = 1;
  echo.payload = {1, 2, 3, 4};
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kIcmp;
  pkt.hdr.ttl = 2;  // expires at r1, one hop beyond the NAT
  pkt.hdr.dst = ip("9.0.0.2");
  pkt.payload = echo.encode_buffer(util::kPacketHeadroom);
  inside->stack().send_ip(std::move(pkt));
  net.loop().run_until(seconds(2));
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(nat->stats().icmp_errors_translated_in, 1u);
  EXPECT_EQ(nat->stats().icmp_errors_orphaned, 0u);
}

TEST_P(TracerouteFixture, RestoresDisplacedIcmpErrorHandler) {
  // A tool that takes the stack's single error-handler slot over must
  // hand it back: the application's PMTU/unreachable handling would
  // otherwise go silent after the first trace.
  int app_errors = 0;
  inside->stack().set_icmp_error_handler(
      [&](Ipv4Address, const IcmpMessage&) { ++app_errors; });
  Traceroute tr(inside->stack());
  bool done = false;
  tr.run(ip("9.0.0.2"), {}, [&](TracerouteResult) { done = true; });
  net.loop().run_until(seconds(20));
  ASSERT_TRUE(done);
  EXPECT_EQ(app_errors, 0);  // suppressed while the trace owned the slot

  // A fresh unreachable (closed port beyond the NAT) lands in the
  // restored application handler.
  UdpDatagram d;
  d.src_port = 50000;
  d.dst_port = 9998;
  Ipv4Packet probe;
  probe.hdr.proto = IpProto::kUdp;
  probe.hdr.dst = ip("9.0.0.2");
  probe.payload = util::Buffer::wrap(d.encode());
  inside->stack().send_ip(std::move(probe));
  net.loop().run_until(seconds(25));
  EXPECT_EQ(app_errors, 1);
}

TEST_P(TracerouteFixture, OrphanIcmpErrorsAreDropped) {
  // An error quoting a flow this NAT never translated must not cross.
  Ipv4Packet translated = make_udp_packet(ip("8.0.0.1"), 40000, ip("9.0.0.2"),
                                          33434, /*with_checksum=*/true);
  Ipv4Packet err =
      make_icmp_error(translated, IcmpType::kTimeExceeded, 0, ip("9.0.0.2"));
  err.hdr.src = Ipv4Address{};  // filled by send_ip
  outside->stack().send_ip(std::move(err));
  net.loop().run_until(seconds(2));
  EXPECT_EQ(nat->stats().icmp_errors_orphaned, 1u);
  EXPECT_EQ(inside->stack().counters().icmp_errors_delivered, 0u);
}

// ---------------------------------------------------------------------------
// TCP lifecycle-aware NAT mappings
// ---------------------------------------------------------------------------
struct NatTcpFixture : ::testing::Test {
  Network net{24};
  Host* inside = nullptr;
  Host* outside = nullptr;
  NatBox* nat = nullptr;
  std::shared_ptr<TcpListener> listener;
  std::shared_ptr<TcpSocket> server;
  std::uint16_t ext_port = 0;

  void SetUp() override {
    inside = &net.add_host("inside");
    outside = &net.add_host("outside");
    NatConfig ncfg;
    ncfg.sweep_interval = seconds(1);
    ncfg.timeouts.tcp_time_wait = seconds(5);
    ncfg.timeouts.tcp_closed = seconds(2);
    // A single allocatable TCP/UDP external port: teardown must release
    // it before any new flow can map.
    ncfg.first_ext_port = 65535;
    nat = &net.add_nat("nat", NatType::kPortRestrictedCone, {}, ncfg);
    sim::LinkConfig link;
    link.delay = milliseconds(1);
    net.connect(inside->stack(), {"eth0", ip("10.0.0.2"), 24}, nat->stack(),
                {"in", ip("10.0.0.1"), 24}, link);
    net.connect(nat->stack(), {"out", ip("8.0.0.1"), 24}, outside->stack(),
                {"eth0", ip("8.0.0.2"), 24}, link);
    inside->stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0,
                              ip("10.0.0.1"));
    listener = outside->stack().tcp_listen(80);
    listener->set_accept_handler([this](std::shared_ptr<TcpSocket> s) {
      server = s;
      ext_port = s->remote_port();  // the NAT's external port
    });
  }
};

TEST_F(NatTcpFixture, EstablishedMappingOutlivesUdpIdleTimer) {
  auto client = inside->stack().tcp_connect(ip("8.0.0.2"), 80);
  ASSERT_NE(client, nullptr);
  bool connected = false;
  client->on_connected = [&] { connected = true; };
  net.loop().run_until(seconds(2));
  ASSERT_TRUE(connected);
  ASSERT_NE(ext_port, 0);
  EXPECT_EQ(nat->tcp_state_of(ext_port), CtTcpState::kEstablished);

  // Idle far past the 60 s one-size timer that used to kill TCP flows.
  net.loop().run_until(seconds(120));
  EXPECT_EQ(nat->mapping_count(), 1u);
  EXPECT_EQ(nat->stats().mappings_expired, 0u);
  EXPECT_EQ(nat->tcp_state_of(ext_port), CtTcpState::kEstablished);

  // The flow still carries data both ways after the long idle.
  std::vector<std::uint8_t> got;
  server->on_readable = [&] {
    auto chunk = server->receive(4096);
    got.insert(got.end(), chunk.begin(), chunk.end());
  };
  client->send(std::vector<std::uint8_t>{1, 2, 3});
  net.loop().run_until(seconds(125));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(NatTcpFixture, FinTeardownReclaimsPortWithinTimeWait) {
  auto client = inside->stack().tcp_connect(ip("8.0.0.2"), 80);
  ASSERT_NE(client, nullptr);
  net.loop().run_until(seconds(2));
  ASSERT_NE(ext_port, 0);
  ASSERT_EQ(nat->mapping_count(), 1u);

  // Graceful close from both ends: FIN out, FIN-ACK back.
  server->on_readable = [this] {
    if (server->eof()) server->close();
  };
  client->close();
  net.loop().run_until(seconds(4));
  EXPECT_EQ(nat->tcp_state_of(ext_port), CtTcpState::kTimeWait);
  EXPECT_EQ(nat->mapping_count(), 1u);  // TIME_WAIT holds the port briefly

  // Reclaimed within the TIME_WAIT budget (5 s) + one sweep, far below
  // the established timeout — and the external port is usable again.
  net.loop().run_until(seconds(12));
  EXPECT_EQ(nat->mapping_count(), 0u);
  EXPECT_GE(nat->stats().mappings_expired, 1u);

  server.reset();
  ext_port = 0;
  auto client2 = inside->stack().tcp_connect(ip("8.0.0.2"), 80);
  ASSERT_NE(client2, nullptr);
  bool connected2 = false;
  client2->on_connected = [&] { connected2 = true; };
  net.loop().run_until(seconds(20));
  EXPECT_TRUE(connected2);
  EXPECT_EQ(ext_port, 65535);  // the reclaimed port, handed out again
  EXPECT_EQ(nat->stats().dropped_port_exhausted, 0u);
}

TEST_F(NatTcpFixture, RstTeardownReclaimsPortEarly) {
  auto client = inside->stack().tcp_connect(ip("8.0.0.2"), 80);
  ASSERT_NE(client, nullptr);
  net.loop().run_until(seconds(2));
  ASSERT_EQ(nat->mapping_count(), 1u);

  client->abort();  // RST crosses the NAT
  net.loop().run_until(seconds(3));
  EXPECT_EQ(nat->tcp_state_of(ext_port), CtTcpState::kClosed);
  // Reclaimed within the CLOSED budget (2 s) + one sweep.
  net.loop().run_until(seconds(7));
  EXPECT_EQ(nat->mapping_count(), 0u);
  EXPECT_GE(nat->stats().mappings_expired, 1u);
}

TEST_F(NatTcpFixture, ForgedIcmpErrorQuotingUncontactedDestinationDropped) {
  // An off-path forger who guessed the live external port still cannot
  // name a destination the mapping never contacted.
  auto server_sock = outside->stack().udp_bind(7000);
  server_sock->set_receive_handler(
      [](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {});
  auto client = inside->stack().udp_bind(5555);
  client->send_to(ip("8.0.0.2"), 7000, {1});
  net.loop().run_until(seconds(1));
  ASSERT_EQ(nat->mapping_count(), 1u);  // ext port 65535

  Ipv4Packet forged_quote = make_udp_packet(
      ip("8.0.0.1"), 65535, ip("9.9.9.9"), 1234, /*with_checksum=*/true);
  Ipv4Packet err = make_icmp_error(forged_quote, IcmpType::kDestUnreachable,
                                   3, ip("8.0.0.2"));
  outside->stack().send_ip(std::move(err));
  net.loop().run_until(seconds(3));
  EXPECT_GE(nat->stats().icmp_errors_orphaned, 1u);
  EXPECT_EQ(inside->stack().counters().icmp_errors_delivered, 0u);
}

TEST_F(NatTcpFixture, ZeroUdpChecksumSurvivesNatRewrite) {
  // Regression (RFC 768): a checksum-0 datagram crossing the NAT must
  // arrive with checksum 0, not an incremental update of 0.  The socket
  // path emits checksum-0 datagrams; sniff the wire at the receiver.
  auto server_sock = outside->stack().udp_bind(7000);
  int received = 0;
  server_sock->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {
        ++received;
      });
  std::vector<std::uint16_t> seen_checksums;
  outside->stack().set_prerouting_hook(
      [&](Ipv4Packet& pkt, std::size_t) {
        if (pkt.hdr.proto == IpProto::kUdp) {
          seen_checksums.push_back(UdpView::parse(pkt.payload.view()).checksum);
        }
        return true;
      });
  auto client = inside->stack().udp_bind(5555);
  client->send_to(ip("8.0.0.2"), 7000, {1, 2, 3});
  net.loop().run_until(seconds(2));
  ASSERT_EQ(received, 1);
  ASSERT_EQ(seen_checksums.size(), 1u);
  EXPECT_EQ(seen_checksums[0], 0);  // "no checksum" preserved end to end

  // And a datagram carrying a real checksum still validates post-rewrite.
  Ipv4Packet pkt =
      make_udp_packet(ip("10.0.0.2"), 5555, ip("8.0.0.2"), 7000,
                      /*with_checksum=*/true);
  inside->stack().send_ip(std::move(pkt));
  net.loop().run_until(seconds(4));
  ASSERT_EQ(seen_checksums.size(), 2u);
  EXPECT_NE(seen_checksums[1], 0);
  EXPECT_EQ(received, 2);  // receiver validated the updated checksum
}
struct FirewallFixture : ::testing::Test {
  Network net{31};
  Host* in_host = nullptr;
  Host* out_host = nullptr;
  Firewall* fw = nullptr;

  void SetUp() override {
    in_host = &net.add_host("in");
    out_host = &net.add_host("out");
    fw = &net.add_firewall("fw");
    sim::LinkConfig link;
    link.delay = milliseconds(1);
    net.connect(in_host->stack(), {"eth0", ip("192.168.0.2"), 24}, fw->stack(),
                {"in", ip("192.168.0.1"), 24}, link);
    net.connect(fw->stack(), {"out", ip("8.1.0.1"), 24}, out_host->stack(),
                {"eth0", ip("8.1.0.2"), 24}, link);
    in_host->stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0,
                               ip("192.168.0.1"));
    out_host->stack().add_route(Ipv4Prefix::parse("192.168.0.0/24"), 0,
                                ip("8.1.0.1"));
  }
};

TEST_F(FirewallFixture, OutboundAllowedRepliesTracked) {
  auto server = out_host->stack().udp_bind(5000);
  server->set_receive_handler(
      [&](Ipv4Address src, std::uint16_t sport, std::vector<std::uint8_t> d) {
        server->send_to(src, sport, std::move(d));
      });
  auto client = in_host->stack().udp_bind(0);
  int got = 0;
  client->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) { ++got; });
  client->send_to(ip("8.1.0.2"), 5000, {1});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(got, 1);
  EXPECT_GE(fw->stats().allowed_in_established, 1u);
}

TEST_F(FirewallFixture, UnsolicitedInboundBlocked) {
  auto server = in_host->stack().udp_bind(5000);
  int got = 0;
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) { ++got; });
  auto probe = out_host->stack().udp_bind(0);
  probe->send_to(ip("192.168.0.2"), 5000, {1});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(got, 0);
  EXPECT_GE(fw->stats().blocked_in, 1u);
}

TEST_F(FirewallFixture, InboundRulePuncturesFirewall) {
  FirewallRule ssh;
  ssh.proto = IpProto::kTcp;
  ssh.dst_port = 22;
  fw->allow_inbound(ssh);
  auto listener = in_host->stack().tcp_listen(22);
  bool accepted = false;
  listener->set_accept_handler(
      [&](std::shared_ptr<TcpSocket>) { accepted = true; });
  auto client = out_host->stack().tcp_connect(ip("192.168.0.2"), 22);
  net.loop().run_until(seconds(5));
  EXPECT_TRUE(accepted);
  // But a different port stays closed.
  bool connected80 = false;
  auto c80 = out_host->stack().tcp_connect(ip("192.168.0.2"), 80,
                                           TcpConfig{.syn_retries = 2});
  c80->on_connected = [&] { connected80 = true; };
  net.loop().run_until(seconds(60));
  EXPECT_FALSE(connected80);
}

TEST_F(FirewallFixture, OutboundDefaultDenyWithAllowList) {
  fw->set_outbound_default_allow(false);
  FirewallRule to5000;
  to5000.proto = IpProto::kUdp;
  to5000.dst_port = 5000;
  fw->allow_outbound(to5000);
  auto s5000 = out_host->stack().udp_bind(5000);
  auto s6000 = out_host->stack().udp_bind(6000);
  int got5000 = 0, got6000 = 0;
  s5000->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) { ++got5000; });
  s6000->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) { ++got6000; });
  auto client = in_host->stack().udp_bind(0);
  client->send_to(ip("8.1.0.2"), 5000, {1});
  client->send_to(ip("8.1.0.2"), 6000, {1});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(got5000, 1);
  EXPECT_EQ(got6000, 0);
  EXPECT_GE(fw->stats().blocked_out, 1u);
}

// ---------------------------------------------------------------------------
// Firewall conntrack: bounded state, TCP lifecycle, related-flow admission
// ---------------------------------------------------------------------------
struct FirewallConntrackFixture : ::testing::Test {
  Network net{32};
  Host* in_host = nullptr;
  Host* out_host = nullptr;
  Firewall* fw = nullptr;

  void SetUp() override {
    in_host = &net.add_host("in");
    out_host = &net.add_host("out");
    FirewallConfig fwcfg;
    fwcfg.timeouts.udp_idle = seconds(3);
    fwcfg.timeouts.tcp_time_wait = seconds(3);
    fwcfg.sweep_interval = seconds(1);
    fw = &net.add_firewall("fw", {}, fwcfg);
    sim::LinkConfig link;
    link.delay = milliseconds(1);
    net.connect(in_host->stack(), {"eth0", ip("192.168.0.2"), 24}, fw->stack(),
                {"in", ip("192.168.0.1"), 24}, link);
    net.connect(fw->stack(), {"out", ip("8.1.0.1"), 24}, out_host->stack(),
                {"eth0", ip("8.1.0.2"), 24}, link);
    in_host->stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0,
                               ip("192.168.0.1"));
    out_host->stack().add_route(Ipv4Prefix::parse("192.168.0.0/24"), 0,
                                ip("8.1.0.1"));
  }
};

TEST_F(FirewallConntrackFixture, IdleEntriesExpireAndTableStaysBounded) {
  // Regression: conntrack_ used to grow without bound — no entry ever
  // expired, so a long-lived firewall accumulated one entry per flow
  // forever.
  auto server = out_host->stack().udp_bind(5000);
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {});
  auto client = in_host->stack().udp_bind(6000);
  client->send_to(ip("8.1.0.2"), 5000, {1});
  net.loop().run_until(seconds(1));
  EXPECT_EQ(fw->conntrack_count(), 1u);

  // Idle past the UDP budget: the sweep reclaims the entry.
  net.loop().run_until(seconds(10));
  EXPECT_EQ(fw->conntrack_count(), 0u);
  const FwStats& st = fw->stats();
  EXPECT_GE(st.conntrack_expired, 1u);

  // A late "reply" no longer matches established state.
  const auto blocked_before = fw->stats().blocked_in;
  server->send_to(ip("192.168.0.2"), 6000, {2});
  net.loop().run_until(seconds(12));
  EXPECT_EQ(fw->stats().blocked_in, blocked_before + 1);
}

TEST_F(FirewallConntrackFixture, TcpEntryFollowsLifecycleNotIdleTimer) {
  auto listener = in_host->stack().tcp_listen(22);
  std::shared_ptr<TcpSocket> server;
  listener->set_accept_handler(
      [&](std::shared_ptr<TcpSocket> s) { server = std::move(s); });
  FirewallRule ssh;
  ssh.proto = IpProto::kTcp;
  ssh.dst_port = 22;
  fw->allow_inbound(ssh);

  auto client = out_host->stack().tcp_connect(ip("192.168.0.2"), 22);
  ASSERT_NE(client, nullptr);
  net.loop().run_until(seconds(2));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(fw->conntrack_count(), 1u);

  // Established TCP outlives the (short) UDP idle budget.
  net.loop().run_until(seconds(20));
  EXPECT_EQ(fw->conntrack_count(), 1u);

  // FIN/FIN-ACK teardown: the entry dies within the TIME_WAIT budget.
  server->on_readable = [&] {
    if (server->eof()) server->close();
  };
  client->close();
  net.loop().run_until(seconds(22));
  net.loop().run_until(seconds(30));
  EXPECT_EQ(fw->conntrack_count(), 0u);
  EXPECT_GE(fw->stats().conntrack_expired, 1u);
}

TEST_F(FirewallConntrackFixture, FreshSynNeverRidesATrackedEntry) {
  // Regression: an inbound SYN matching a tracked tuple used to bypass
  // the inbound rule chain and even *restart* the entry's lifecycle — a
  // renewable hole through a default-deny firewall.
  auto listener = out_host->stack().tcp_listen(5000);
  std::shared_ptr<TcpSocket> server;
  listener->set_accept_handler(
      [&](std::shared_ptr<TcpSocket> s) { server = std::move(s); });
  auto client = in_host->stack().tcp_connect(ip("8.1.0.2"), 5000);
  ASSERT_NE(client, nullptr);
  net.loop().run_until(seconds(2));
  ASSERT_NE(server, nullptr);
  const std::uint16_t client_port = client->local_port();
  ASSERT_EQ(fw->conntrack_count(), 1u);

  auto send_bare_syn = [&] {
    TcpSegment syn;
    syn.src_port = 5000;
    syn.dst_port = client_port;
    syn.seq = 777;
    syn.flags.syn = true;
    syn.window = 65535;
    Ipv4Packet pkt;
    pkt.hdr.proto = IpProto::kTcp;
    pkt.hdr.src = ip("8.1.0.2");
    pkt.hdr.dst = ip("192.168.0.2");
    pkt.payload = syn.encode_buffer(pkt.hdr.src, pkt.hdr.dst,
                                    util::kPacketHeadroom);
    out_host->stack().send_ip(std::move(pkt));
  };

  // On the live flow: the SYN is invalid — blocked, state untouched.
  const auto blocked_live = fw->stats().blocked_in;
  send_bare_syn();
  net.loop().run_until(seconds(3));
  EXPECT_EQ(fw->stats().blocked_in, blocked_live + 1);
  EXPECT_EQ(fw->conntrack_count(), 1u);

  // After teardown (entry dying in TIME_WAIT): the SYN drops the dead
  // entry and must then pass the inbound chain — which has no rule.
  server->on_readable = [&] {
    if (server->eof()) server->close();
  };
  client->close();
  net.loop().run_until(seconds(4));
  const auto blocked_dead = fw->stats().blocked_in;
  send_bare_syn();
  net.loop().run_until(seconds(5));
  EXPECT_EQ(fw->stats().blocked_in, blocked_dead + 1);
  EXPECT_EQ(fw->conntrack_count(), 0u);  // not resurrected
}

TEST_F(FirewallConntrackFixture, RelatedIcmpErrorAdmittedForTrackedFlow) {
  // The inside host probes a closed UDP port; the destination's
  // port-unreachable is inbound at the firewall and carries no tracked
  // 5-tuple of its own — it must pass on the strength of its quote.
  auto client = in_host->stack().udp_bind(6000);
  client->send_to(ip("8.1.0.2"), 9999, {1});
  net.loop().run_until(seconds(2));
  EXPECT_GE(fw->stats().allowed_related, 1u);
  EXPECT_EQ(in_host->stack().counters().icmp_errors_delivered, 1u);
}

TEST_F(FirewallConntrackFixture, UnrelatedIcmpErrorBlocked) {
  // An error quoting a flow the firewall never saw is dropped.
  Ipv4Packet quoted = make_udp_packet(ip("192.168.0.2"), 1234, ip("8.1.0.2"),
                                      9999, /*with_checksum=*/true);
  Ipv4Packet err =
      make_icmp_error(quoted, IcmpType::kDestUnreachable, 3, ip("8.1.0.2"));
  const auto blocked_before = fw->stats().blocked_in;
  out_host->stack().send_ip(std::move(err));
  net.loop().run_until(seconds(2));
  EXPECT_EQ(fw->stats().blocked_in, blocked_before + 1);
  EXPECT_EQ(in_host->stack().counters().icmp_errors_delivered, 0u);
}

// ---------------------------------------------------------------------------
// Figure-4 testbed reachability
// ---------------------------------------------------------------------------
struct Fig4Fixture : ::testing::Test {
  Fig4Testbed tb = build_fig4();

  int ping_once(Host& from, Ipv4Address to) {
    Pinger pinger(from.stack());
    Pinger::Options opts;
    opts.count = 3;
    opts.interval = milliseconds(50);
    opts.timeout = seconds(1);
    int received = -1;
    pinger.run(to, opts, [&](PingResult r) { received = r.received; });
    tb.net->loop().run_until(tb.net->loop().now() + seconds(10));
    return received;
  }
};

TEST_F(Fig4Fixture, LanPingF2toF4) {
  EXPECT_EQ(ping_once(*tb.f2, tb.f4_lan_ip), 3);
}

TEST_F(Fig4Fixture, LanRttMatchesPaperBallpark) {
  Pinger pinger(tb.f2->stack());
  Pinger::Options opts;
  opts.count = 100;
  opts.interval = milliseconds(10);
  opts.timeout = seconds(1);
  PingResult res;
  pinger.run(tb.f4_lan_ip, opts, [&](PingResult r) { res = std::move(r); });
  tb.net->loop().run_until(seconds(30));
  ASSERT_EQ(res.received, 100);
  // Paper Table I physical LAN RTT: 0.625-0.898 ms.
  EXPECT_GT(res.rtts_ms.mean(), 0.3);
  EXPECT_LT(res.rtts_ms.mean(), 1.2);
}

TEST_F(Fig4Fixture, WanPingF4toV1MatchesPaperBallpark) {
  Pinger pinger(tb.f4->stack());
  Pinger::Options opts;
  opts.count = 100;
  opts.interval = milliseconds(20);
  opts.timeout = seconds(2);
  PingResult res;
  pinger.run(tb.v1_ip, opts, [&](PingResult r) { res = std::move(r); });
  tb.net->loop().run_until(seconds(60));
  // V1 is firewalled: ICMP echo from F4 creates state outbound... but the
  // request is *inbound* at VFW, so it must be blocked.
  EXPECT_EQ(res.received, 0);
}

TEST_F(Fig4Fixture, V1CanPingOutToF4) {
  Pinger pinger(tb.v1->stack());
  Pinger::Options opts;
  opts.count = 100;
  opts.interval = milliseconds(20);
  opts.timeout = seconds(2);
  PingResult res;
  pinger.run(tb.f4_pub_ip, opts, [&](PingResult r) { res = std::move(r); });
  tb.net->loop().run_until(seconds(60));
  ASSERT_EQ(res.received, 100);
  // Paper Table I physical WAN RTT: 34.5-38.8 ms.
  EXPECT_GT(res.rtts_ms.mean(), 30.0);
  EXPECT_LT(res.rtts_ms.mean(), 42.0);
}

TEST_F(Fig4Fixture, F2BehindNatCanReachPublicF3) {
  EXPECT_EQ(ping_once(*tb.f2, tb.f3_ip), 3);
}

TEST_F(Fig4Fixture, OutsideCannotReachNattedF2) {
  EXPECT_EQ(ping_once(*tb.f3, tb.f2_ip), 0);
}

TEST_F(Fig4Fixture, F3CanSshIntoV1AndL1) {
  for (Host* target : {tb.v1, tb.l1}) {
    auto listener = target->stack().tcp_listen(22);
    bool accepted = false;
    listener->set_accept_handler(
        [&](std::shared_ptr<TcpSocket>) { accepted = true; });
    auto client = tb.f3->stack().tcp_connect(
        target->stack().interface_ip(0), 22);
    tb.net->loop().run_until(tb.net->loop().now() + seconds(10));
    EXPECT_TRUE(accepted) << target->name();
  }
}

TEST_F(Fig4Fixture, F4CannotSshIntoV1) {
  auto listener = tb.v1->stack().tcp_listen(22);
  bool accepted = false;
  listener->set_accept_handler(
      [&](std::shared_ptr<TcpSocket>) { accepted = true; });
  auto client =
      tb.f4->stack().tcp_connect(tb.v1_ip, 22, TcpConfig{.syn_retries = 2});
  tb.net->loop().run_until(seconds(60));
  EXPECT_FALSE(accepted);
}

TEST_F(Fig4Fixture, L1OutboundRestrictedToF3) {
  // L1 -> F3 allowed.
  auto l3 = tb.f3->stack().tcp_listen(7777);
  bool to_f3 = false;
  l3->set_accept_handler([&](std::shared_ptr<TcpSocket>) { to_f3 = true; });
  auto c1 = tb.l1->stack().tcp_connect(tb.f3_ip, 7777);
  // L1 -> F4 blocked by LFW outbound policy.
  auto l4 = tb.f4->stack().tcp_listen(7777);
  bool to_f4 = false;
  l4->set_accept_handler([&](std::shared_ptr<TcpSocket>) { to_f4 = true; });
  auto c2 = tb.l1->stack().tcp_connect(tb.f4_pub_ip, 7777,
                                       TcpConfig{.syn_retries = 2});
  tb.net->loop().run_until(seconds(60));
  EXPECT_TRUE(to_f3);
  EXPECT_FALSE(to_f4);
}

}  // namespace
}  // namespace ipop::net
