// NAT (all four RFC 3489 types) — behaviour matrix, mapping lifetime,
// in-place rewriting — stateful firewall, and the Figure-4 testbed's
// reachability policy.
#include <gtest/gtest.h>

#include "net/l4_patch.hpp"
#include "net/ping.hpp"
#include "net/topology.hpp"

namespace ipop::net {
namespace {

using util::milliseconds;
using util::seconds;

Ipv4Address ip(const char* s) { return Ipv4Address::parse(s); }

// ---------------------------------------------------------------------------
// NAT behaviour matrix.
//
// inside (10.0.0.2) -- NAT -- outside subnet (8.0.0.0/24) with two public
// hosts pub1 (8.0.0.10) and pub2 (8.0.0.20).
// ---------------------------------------------------------------------------
struct NatFixture : ::testing::TestWithParam<NatType> {
  Network net{21};
  Host* inside = nullptr;
  Host* pub1 = nullptr;
  Host* pub2 = nullptr;
  NatBox* nat = nullptr;

  void SetUp() override {
    inside = &net.add_host("inside");
    pub1 = &net.add_host("pub1");
    pub2 = &net.add_host("pub2");
    nat = &net.add_nat("nat", GetParam());
    sim::LinkConfig link;
    link.delay = milliseconds(1);
    auto& sw = net.add_switch("outside");
    net.connect(inside->stack(), {"eth0", ip("10.0.0.2"), 24}, nat->stack(),
                {"in", ip("10.0.0.1"), 24}, link);
    net.connect_to_switch(nat->stack(), {"out", ip("8.0.0.1"), 24}, sw, link);
    net.connect_to_switch(pub1->stack(), {"eth0", ip("8.0.0.10"), 24}, sw, link);
    net.connect_to_switch(pub2->stack(), {"eth0", ip("8.0.0.20"), 24}, sw, link);
    inside->stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0, ip("10.0.0.1"));
  }

  struct Echo {
    Ipv4Address src;
    std::uint16_t src_port;
    std::vector<std::uint8_t> data;
  };
};

INSTANTIATE_TEST_SUITE_P(AllNatTypes, NatFixture,
                         ::testing::Values(NatType::kFullCone,
                                           NatType::kRestrictedCone,
                                           NatType::kPortRestrictedCone,
                                           NatType::kSymmetric),
                         [](const auto& info) {
                           std::string n = nat_type_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(NatFixture, OutboundUdpIsTranslatedAndRepliesReturn) {
  auto server = pub1->stack().udp_bind(7000);
  Ipv4Address seen_src;
  std::uint16_t seen_port = 0;
  server->set_receive_handler(
      [&](Ipv4Address src, std::uint16_t sport, std::vector<std::uint8_t> d) {
        seen_src = src;
        seen_port = sport;
        server->send_to(src, sport, std::move(d));
      });
  auto client = inside->stack().udp_bind(5555);
  std::vector<std::uint8_t> reply;
  client->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t> d) {
        reply = std::move(d);
      });
  client->send_to(ip("8.0.0.10"), 7000, {1, 2, 3});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(seen_src, ip("8.0.0.1"));  // translated to the NAT's external IP
  EXPECT_NE(seen_port, 5555);          // translated port
  EXPECT_EQ(reply, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(nat->stats().mappings_created, 1u);
}

TEST_P(NatFixture, ThirdPartyInboundFollowsNatTypeRules) {
  // inside contacts pub1 only; then pub2 tries to reach the mapped port.
  auto server = pub1->stack().udp_bind(7000);
  std::uint16_t mapped_port = 0;
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t sport, std::vector<std::uint8_t>) {
        mapped_port = sport;
      });
  auto client = inside->stack().udp_bind(5555);
  int inside_got = 0;
  client->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {
        ++inside_got;
      });
  client->send_to(ip("8.0.0.10"), 7000, {1});
  net.loop().run_until(seconds(1));
  ASSERT_NE(mapped_port, 0);

  // pub2 (different IP, some port) sends to the mapping.
  auto probe = pub2->stack().udp_bind(9000);
  probe->send_to(ip("8.0.0.1"), mapped_port, {0x77});
  net.loop().run_until(seconds(2));

  const bool should_pass = GetParam() == NatType::kFullCone;
  EXPECT_EQ(inside_got > 0, should_pass)
      << "NAT type " << nat_type_name(GetParam());
}

TEST_P(NatFixture, SameHostDifferentPortFollowsNatTypeRules) {
  // inside contacts pub1:7000; pub1 then replies from port 7001.
  auto server = pub1->stack().udp_bind(7000);
  std::uint16_t mapped_port = 0;
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t sport, std::vector<std::uint8_t>) {
        mapped_port = sport;
      });
  auto client = inside->stack().udp_bind(5555);
  int inside_got = 0;
  client->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {
        ++inside_got;
      });
  client->send_to(ip("8.0.0.10"), 7000, {1});
  net.loop().run_until(seconds(1));
  ASSERT_NE(mapped_port, 0);

  auto other_port = pub1->stack().udp_bind(7001);
  other_port->send_to(ip("8.0.0.1"), mapped_port, {0x55});
  net.loop().run_until(seconds(2));

  const bool should_pass = GetParam() == NatType::kFullCone ||
                           GetParam() == NatType::kRestrictedCone;
  EXPECT_EQ(inside_got > 0, should_pass)
      << "NAT type " << nat_type_name(GetParam());
}

TEST_P(NatFixture, ConePreservesMappingAcrossDestinations) {
  // The property Brunet traversal relies on: for non-symmetric NATs the
  // same internal endpoint maps to the same external port regardless of
  // destination.
  std::uint16_t port_seen_by_1 = 0, port_seen_by_2 = 0;
  auto s1 = pub1->stack().udp_bind(7000);
  s1->set_receive_handler([&](Ipv4Address, std::uint16_t sport,
                              std::vector<std::uint8_t>) { port_seen_by_1 = sport; });
  auto s2 = pub2->stack().udp_bind(7000);
  s2->set_receive_handler([&](Ipv4Address, std::uint16_t sport,
                              std::vector<std::uint8_t>) { port_seen_by_2 = sport; });
  auto client = inside->stack().udp_bind(5555);
  client->send_to(ip("8.0.0.10"), 7000, {1});
  client->send_to(ip("8.0.0.20"), 7000, {1});
  net.loop().run_until(seconds(2));
  ASSERT_NE(port_seen_by_1, 0);
  ASSERT_NE(port_seen_by_2, 0);
  if (GetParam() == NatType::kSymmetric) {
    EXPECT_NE(port_seen_by_1, port_seen_by_2);
  } else {
    EXPECT_EQ(port_seen_by_1, port_seen_by_2);
  }
}

TEST_P(NatFixture, TcpThroughNatWorksOutbound) {
  auto listener = pub1->stack().tcp_listen(80);
  std::vector<std::uint8_t> got;
  listener->set_accept_handler([&](std::shared_ptr<TcpSocket> s) {
    auto sp = s;
    s->on_readable = [&, sp] {
      auto chunk = sp->receive(4096);
      got.insert(got.end(), chunk.begin(), chunk.end());
    };
  });
  auto client = inside->stack().tcp_connect(ip("8.0.0.10"), 80);
  ASSERT_NE(client, nullptr);
  client->on_connected = [&] {
    client->send(std::vector<std::uint8_t>{9, 8, 7});
  };
  net.loop().run_until(seconds(5));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST_P(NatFixture, UnsolicitedInboundToUnmappedPortBlocked) {
  auto probe = pub2->stack().udp_bind(9000);
  const auto blocked_before = nat->stats().blocked_in;
  probe->send_to(ip("8.0.0.1"), 40000, {1});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(nat->stats().blocked_in, blocked_before + 1);
}

TEST_P(NatFixture, PingThroughNat) {
  Pinger pinger(inside->stack());
  Pinger::Options opts;
  opts.count = 3;
  opts.interval = milliseconds(10);
  opts.timeout = milliseconds(500);
  PingResult res;
  pinger.run(ip("8.0.0.10"), opts, [&](PingResult r) { res = std::move(r); });
  net.loop().run_until(seconds(5));
  EXPECT_EQ(res.received, 3);
}

// ---------------------------------------------------------------------------
// NAT mapping lifetime: idle expiry and external-port reclamation
// ---------------------------------------------------------------------------
struct NatLifetimeFixture : ::testing::Test {
  Network net{22};
  Host* inside = nullptr;
  Host* outside = nullptr;
  NatBox* nat = nullptr;

  void SetUp() override {
    inside = &net.add_host("inside");
    outside = &net.add_host("outside");
    NatConfig ncfg;
    ncfg.mapping_idle_timeout = seconds(5);
    ncfg.sweep_interval = seconds(1);
    // Two allocatable ports before the counter wraps: 65534, 65535.
    ncfg.first_ext_port = 65534;
    nat = &net.add_nat("nat", NatType::kPortRestrictedCone, {}, ncfg);
    sim::LinkConfig link;
    link.delay = milliseconds(1);
    net.connect(inside->stack(), {"eth0", ip("10.0.0.2"), 24}, nat->stack(),
                {"in", ip("10.0.0.1"), 24}, link);
    net.connect(nat->stack(), {"out", ip("8.0.0.1"), 24}, outside->stack(),
                {"eth0", ip("8.0.0.2"), 24}, link);
    inside->stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0,
                              ip("10.0.0.1"));
  }
};

TEST_F(NatLifetimeFixture, IdleMappingsExpireAndBlockInbound) {
  auto server = outside->stack().udp_bind(7000);
  std::uint16_t mapped_port = 0;
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t sport, std::vector<std::uint8_t>) {
        mapped_port = sport;
      });
  auto client = inside->stack().udp_bind(5555);
  client->send_to(ip("8.0.0.2"), 7000, {1});
  net.loop().run_until(seconds(1));
  ASSERT_NE(mapped_port, 0);
  EXPECT_EQ(nat->mapping_count(), 1u);

  // No traffic for longer than the idle timeout: the sweep reclaims the
  // mapping (a long-lived box does not accumulate one entry per flow
  // forever).
  net.loop().run_until(seconds(10));
  EXPECT_EQ(nat->mapping_count(), 0u);
  EXPECT_GE(nat->stats().mappings_expired, 1u);

  // The reclaimed external port no longer routes inside.
  auto probe = outside->stack().udp_bind(9000);
  const auto blocked_before = nat->stats().blocked_in;
  probe->send_to(ip("8.0.0.1"), mapped_port, {2});
  net.loop().run_until(seconds(12));
  EXPECT_EQ(nat->stats().blocked_in, blocked_before + 1);
}

TEST_F(NatLifetimeFixture, TrafficRefreshesMappings) {
  auto server = outside->stack().udp_bind(7000);
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {});
  auto client = inside->stack().udp_bind(5555);
  // Send every 2 s for 20 s: always inside the 5 s idle timeout.
  for (int i = 0; i < 10; ++i) {
    client->send_to(ip("8.0.0.2"), 7000, {1});
    net.loop().run_until(net.loop().now() + seconds(2));
  }
  EXPECT_EQ(nat->mapping_count(), 1u);
  EXPECT_EQ(nat->stats().mappings_expired, 0u);
  EXPECT_EQ(nat->stats().mappings_created, 1u);
}

TEST_F(NatLifetimeFixture, ExternalPortWrapReusesExpiredPortsCleanly) {
  // Regression for the port-wrap bug: next_ext_port_ used to increment
  // forever, so past 64k mappings the counter wrapped into ports whose
  // by_ext_port_ entries still pointed at old mappings.  With two
  // allocatable ports (65534, 65535), flows A and B take both; after
  // they expire, flows C and D must get the *same* ports, and inbound
  // traffic must reach C/D — not the stale A/B state.
  auto server = outside->stack().udp_bind(7000);
  std::vector<std::uint16_t> seen_ports;
  server->set_receive_handler(
      [&](Ipv4Address src, std::uint16_t sport, std::vector<std::uint8_t> d) {
        seen_ports.push_back(sport);
        server->send_to(src, sport, std::move(d));  // echo
      });
  auto a = inside->stack().udp_bind(5001);
  auto b = inside->stack().udp_bind(5002);
  a->send_to(ip("8.0.0.2"), 7000, {1});
  b->send_to(ip("8.0.0.2"), 7000, {1});
  net.loop().run_until(seconds(1));
  ASSERT_EQ(seen_ports.size(), 2u);
  EXPECT_EQ(nat->stats().mappings_created, 2u);

  // A third concurrent flow finds the port space exhausted and is
  // dropped, not silently aliased onto a live mapping.
  auto c = inside->stack().udp_bind(5003);
  c->send_to(ip("8.0.0.2"), 7000, {1});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(seen_ports.size(), 2u);
  EXPECT_GE(nat->stats().dropped_port_exhausted, 1u);

  // Let A and B expire, then open two fresh flows from different inside
  // ports: the wrapped counter must hand out the reclaimed ports again.
  net.loop().run_until(seconds(10));
  ASSERT_EQ(nat->mapping_count(), 0u);
  seen_ports.clear();
  int d_replies = 0, e_replies = 0;
  auto d = inside->stack().udp_bind(6001);
  auto e = inside->stack().udp_bind(6002);
  d->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {
        ++d_replies;
      });
  e->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) {
        ++e_replies;
      });
  d->send_to(ip("8.0.0.2"), 7000, {2});
  e->send_to(ip("8.0.0.2"), 7000, {2});
  net.loop().run_until(seconds(12));
  ASSERT_EQ(seen_ports.size(), 2u);
  // Reused external ports from the reclaimed pair...
  for (auto p : seen_ports) EXPECT_GE(p, 65534);
  // ...and the echoes came back to the *new* flows (no stale
  // by_ext_port_ collision sending them to 5001/5002).
  EXPECT_EQ(d_replies, 1);
  EXPECT_EQ(e_replies, 1);
}

// ---------------------------------------------------------------------------
// In-place NAT rewrite (zero-copy, refcount-verified)
// ---------------------------------------------------------------------------

TEST(L4PatchTest, UdpRewritePatchesInPlaceAndFixesChecksum) {
  const auto src = ip("10.0.0.2");
  const auto dst = ip("8.0.0.10");
  const auto ext = ip("8.0.0.1");
  UdpDatagram d;
  d.src_port = 5555;
  d.dst_port = 7000;
  d.payload = {1, 2, 3, 4, 5, 6, 7};
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kUdp;
  pkt.hdr.src = src;
  pkt.hdr.dst = dst;
  pkt.payload = util::Buffer::wrap(d.encode(src, dst));  // real checksum

  const std::uint8_t* storage = pkt.payload.data();
  const std::size_t copied =
      patch_l4_endpoints(pkt, L4Endpoint{ext, 62001}, std::nullopt);
  // Uniquely owned: patched in place, zero bytes copied.
  EXPECT_EQ(copied, 0u);
  EXPECT_EQ(pkt.payload.data(), storage);
  EXPECT_EQ(pkt.hdr.src, ext);
  // The incrementally updated checksum validates against the new
  // pseudo-header, and the ports/payload read back correctly.
  auto g = UdpDatagram::decode(pkt.payload.view(), ext, dst);
  EXPECT_EQ(g.src_port, 62001);
  EXPECT_EQ(g.dst_port, 7000);
  EXPECT_EQ(g.payload, d.payload);
}

TEST(L4PatchTest, UdpZeroChecksumStaysZero) {
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kUdp;
  pkt.hdr.src = ip("10.0.0.2");
  pkt.hdr.dst = ip("8.0.0.10");
  UdpDatagram d;
  d.src_port = 5555;
  d.dst_port = 7000;
  d.payload = {9, 9};
  pkt.payload = util::Buffer::wrap(d.encode());  // checksum 0 = none
  patch_l4_endpoints(pkt, L4Endpoint{ip("8.0.0.1"), 60000}, std::nullopt);
  auto v = UdpView::parse(pkt.payload.view());
  EXPECT_EQ(v.src_port, 60000);
  EXPECT_EQ(v.checksum, 0);  // "no checksum" is preserved per RFC 768
}

TEST(L4PatchTest, TcpRewriteKeepsChecksumValid) {
  const auto src = ip("10.0.0.2");
  const auto dst = ip("8.0.0.10");
  const auto ext = ip("8.0.0.1");
  TcpSegment seg;
  seg.src_port = 44000;
  seg.dst_port = 80;
  seg.seq = 1234;
  seg.flags.psh = true;
  seg.flags.ack = true;
  seg.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kTcp;
  pkt.hdr.src = src;
  pkt.hdr.dst = dst;
  pkt.payload = seg.encode_buffer(src, dst, 0);

  const std::uint8_t* storage = pkt.payload.data();
  EXPECT_EQ(patch_l4_endpoints(pkt, L4Endpoint{ext, 62002}, std::nullopt), 0u);
  EXPECT_EQ(pkt.payload.data(), storage);
  // decode() re-validates the pseudo-header checksum end to end.
  auto g = TcpSegment::decode(pkt.payload.view(), ext, dst);
  EXPECT_EQ(g.src_port, 62002);
  EXPECT_EQ(g.payload, seg.payload);
}

TEST(L4PatchTest, IcmpIdRewriteKeepsChecksumValid) {
  IcmpMessage m;
  m.type = IcmpType::kEchoRequest;
  m.id = 77;
  m.seq = 3;
  m.payload = {1, 2, 3};
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kIcmp;
  pkt.hdr.src = ip("10.0.0.2");
  pkt.hdr.dst = ip("8.0.0.10");
  pkt.payload = util::Buffer::wrap(m.encode());
  EXPECT_EQ(
      patch_l4_endpoints(pkt, L4Endpoint{ip("8.0.0.1"), 4242}, std::nullopt),
      0u);
  auto g = IcmpMessage::decode(pkt.payload.view());  // validates checksum
  EXPECT_EQ(g.id, 4242);
  EXPECT_EQ(g.seq, 3);
}

TEST(L4PatchTest, SharedStorageTriggersCopyOnWrite) {
  // Like buffer_test's shared-prepend case: a rewrite on shared storage
  // must not corrupt the bytes another holder still reads.
  UdpDatagram d;
  d.src_port = 5555;
  d.dst_port = 7000;
  d.payload = {42, 43, 44};
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kUdp;
  pkt.hdr.src = ip("10.0.0.2");
  pkt.hdr.dst = ip("8.0.0.10");
  pkt.payload = util::Buffer::wrap(d.encode());
  util::Buffer other = pkt.payload.share();  // e.g. a flooded sibling
  ASSERT_EQ(pkt.payload.use_count(), 2);

  const std::size_t copied =
      patch_l4_endpoints(pkt, L4Endpoint{ip("8.0.0.1"), 60001}, std::nullopt);
  EXPECT_EQ(copied, other.size());        // copy-on-write, counted
  EXPECT_NE(pkt.payload.data(), other.data());
  EXPECT_TRUE(pkt.payload.unique());
  // The sibling still reads the original port...
  EXPECT_EQ(UdpView::parse(other.view()).src_port, 5555);
  // ...while the packet carries the rewrite.
  EXPECT_EQ(UdpView::parse(pkt.payload.view()).src_port, 60001);
}

TEST_F(NatLifetimeFixture, ForwardedPacketCrossesNatWithZeroCopies) {
  // The tentpole's acceptance criterion at test granularity: after ARP
  // and mapping warm-up, a NAT-translated forward moves zero payload
  // bytes — header prepends reuse headroom, the port rewrite patches the
  // shared buffer in place.
  auto server = outside->stack().udp_bind(7000);
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, util::Buffer) {});
  auto client = inside->stack().udp_bind(5555);
  auto payload = util::Buffer::allocate(1000, util::kPacketHeadroom);
  client->send_to(ip("8.0.0.2"), 7000, payload.clone(util::kPacketHeadroom));
  net.loop().run_until(seconds(1));

  const auto nat_before = nat->stack().counters().payload_bytes_copied;
  const auto fwd_before = nat->stack().counters().forwarded;
  for (int i = 0; i < 50; ++i) {
    client->send_to(ip("8.0.0.2"), 7000,
                    payload.clone(util::kPacketHeadroom));
  }
  net.loop().run_until(seconds(2));
  EXPECT_EQ(nat->stack().counters().forwarded, fwd_before + 50);
  EXPECT_EQ(nat->stack().counters().payload_bytes_copied, nat_before);
  EXPECT_EQ(nat->stats().rewrite_bytes_copied, 0u);
  EXPECT_EQ(server->datagrams_received(), 51u);
}

// ---------------------------------------------------------------------------
// Firewall
// ---------------------------------------------------------------------------
struct FirewallFixture : ::testing::Test {
  Network net{31};
  Host* in_host = nullptr;
  Host* out_host = nullptr;
  Firewall* fw = nullptr;

  void SetUp() override {
    in_host = &net.add_host("in");
    out_host = &net.add_host("out");
    fw = &net.add_firewall("fw");
    sim::LinkConfig link;
    link.delay = milliseconds(1);
    net.connect(in_host->stack(), {"eth0", ip("192.168.0.2"), 24}, fw->stack(),
                {"in", ip("192.168.0.1"), 24}, link);
    net.connect(fw->stack(), {"out", ip("8.1.0.1"), 24}, out_host->stack(),
                {"eth0", ip("8.1.0.2"), 24}, link);
    in_host->stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0,
                               ip("192.168.0.1"));
    out_host->stack().add_route(Ipv4Prefix::parse("192.168.0.0/24"), 0,
                                ip("8.1.0.1"));
  }
};

TEST_F(FirewallFixture, OutboundAllowedRepliesTracked) {
  auto server = out_host->stack().udp_bind(5000);
  server->set_receive_handler(
      [&](Ipv4Address src, std::uint16_t sport, std::vector<std::uint8_t> d) {
        server->send_to(src, sport, std::move(d));
      });
  auto client = in_host->stack().udp_bind(0);
  int got = 0;
  client->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) { ++got; });
  client->send_to(ip("8.1.0.2"), 5000, {1});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(got, 1);
  EXPECT_GE(fw->stats().allowed_in_established, 1u);
}

TEST_F(FirewallFixture, UnsolicitedInboundBlocked) {
  auto server = in_host->stack().udp_bind(5000);
  int got = 0;
  server->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) { ++got; });
  auto probe = out_host->stack().udp_bind(0);
  probe->send_to(ip("192.168.0.2"), 5000, {1});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(got, 0);
  EXPECT_GE(fw->stats().blocked_in, 1u);
}

TEST_F(FirewallFixture, InboundRulePuncturesFirewall) {
  FirewallRule ssh;
  ssh.proto = IpProto::kTcp;
  ssh.dst_port = 22;
  fw->allow_inbound(ssh);
  auto listener = in_host->stack().tcp_listen(22);
  bool accepted = false;
  listener->set_accept_handler(
      [&](std::shared_ptr<TcpSocket>) { accepted = true; });
  auto client = out_host->stack().tcp_connect(ip("192.168.0.2"), 22);
  net.loop().run_until(seconds(5));
  EXPECT_TRUE(accepted);
  // But a different port stays closed.
  bool connected80 = false;
  auto c80 = out_host->stack().tcp_connect(ip("192.168.0.2"), 80,
                                           TcpConfig{.syn_retries = 2});
  c80->on_connected = [&] { connected80 = true; };
  net.loop().run_until(seconds(60));
  EXPECT_FALSE(connected80);
}

TEST_F(FirewallFixture, OutboundDefaultDenyWithAllowList) {
  fw->set_outbound_default_allow(false);
  FirewallRule to5000;
  to5000.proto = IpProto::kUdp;
  to5000.dst_port = 5000;
  fw->allow_outbound(to5000);
  auto s5000 = out_host->stack().udp_bind(5000);
  auto s6000 = out_host->stack().udp_bind(6000);
  int got5000 = 0, got6000 = 0;
  s5000->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) { ++got5000; });
  s6000->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) { ++got6000; });
  auto client = in_host->stack().udp_bind(0);
  client->send_to(ip("8.1.0.2"), 5000, {1});
  client->send_to(ip("8.1.0.2"), 6000, {1});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(got5000, 1);
  EXPECT_EQ(got6000, 0);
  EXPECT_GE(fw->stats().blocked_out, 1u);
}

// ---------------------------------------------------------------------------
// Figure-4 testbed reachability
// ---------------------------------------------------------------------------
struct Fig4Fixture : ::testing::Test {
  Fig4Testbed tb = build_fig4();

  int ping_once(Host& from, Ipv4Address to) {
    Pinger pinger(from.stack());
    Pinger::Options opts;
    opts.count = 3;
    opts.interval = milliseconds(50);
    opts.timeout = seconds(1);
    int received = -1;
    pinger.run(to, opts, [&](PingResult r) { received = r.received; });
    tb.net->loop().run_until(tb.net->loop().now() + seconds(10));
    return received;
  }
};

TEST_F(Fig4Fixture, LanPingF2toF4) {
  EXPECT_EQ(ping_once(*tb.f2, tb.f4_lan_ip), 3);
}

TEST_F(Fig4Fixture, LanRttMatchesPaperBallpark) {
  Pinger pinger(tb.f2->stack());
  Pinger::Options opts;
  opts.count = 100;
  opts.interval = milliseconds(10);
  opts.timeout = seconds(1);
  PingResult res;
  pinger.run(tb.f4_lan_ip, opts, [&](PingResult r) { res = std::move(r); });
  tb.net->loop().run_until(seconds(30));
  ASSERT_EQ(res.received, 100);
  // Paper Table I physical LAN RTT: 0.625-0.898 ms.
  EXPECT_GT(res.rtts_ms.mean(), 0.3);
  EXPECT_LT(res.rtts_ms.mean(), 1.2);
}

TEST_F(Fig4Fixture, WanPingF4toV1MatchesPaperBallpark) {
  Pinger pinger(tb.f4->stack());
  Pinger::Options opts;
  opts.count = 100;
  opts.interval = milliseconds(20);
  opts.timeout = seconds(2);
  PingResult res;
  pinger.run(tb.v1_ip, opts, [&](PingResult r) { res = std::move(r); });
  tb.net->loop().run_until(seconds(60));
  // V1 is firewalled: ICMP echo from F4 creates state outbound... but the
  // request is *inbound* at VFW, so it must be blocked.
  EXPECT_EQ(res.received, 0);
}

TEST_F(Fig4Fixture, V1CanPingOutToF4) {
  Pinger pinger(tb.v1->stack());
  Pinger::Options opts;
  opts.count = 100;
  opts.interval = milliseconds(20);
  opts.timeout = seconds(2);
  PingResult res;
  pinger.run(tb.f4_pub_ip, opts, [&](PingResult r) { res = std::move(r); });
  tb.net->loop().run_until(seconds(60));
  ASSERT_EQ(res.received, 100);
  // Paper Table I physical WAN RTT: 34.5-38.8 ms.
  EXPECT_GT(res.rtts_ms.mean(), 30.0);
  EXPECT_LT(res.rtts_ms.mean(), 42.0);
}

TEST_F(Fig4Fixture, F2BehindNatCanReachPublicF3) {
  EXPECT_EQ(ping_once(*tb.f2, tb.f3_ip), 3);
}

TEST_F(Fig4Fixture, OutsideCannotReachNattedF2) {
  EXPECT_EQ(ping_once(*tb.f3, tb.f2_ip), 0);
}

TEST_F(Fig4Fixture, F3CanSshIntoV1AndL1) {
  for (Host* target : {tb.v1, tb.l1}) {
    auto listener = target->stack().tcp_listen(22);
    bool accepted = false;
    listener->set_accept_handler(
        [&](std::shared_ptr<TcpSocket>) { accepted = true; });
    auto client = tb.f3->stack().tcp_connect(
        target->stack().interface_ip(0), 22);
    tb.net->loop().run_until(tb.net->loop().now() + seconds(10));
    EXPECT_TRUE(accepted) << target->name();
  }
}

TEST_F(Fig4Fixture, F4CannotSshIntoV1) {
  auto listener = tb.v1->stack().tcp_listen(22);
  bool accepted = false;
  listener->set_accept_handler(
      [&](std::shared_ptr<TcpSocket>) { accepted = true; });
  auto client =
      tb.f4->stack().tcp_connect(tb.v1_ip, 22, TcpConfig{.syn_retries = 2});
  tb.net->loop().run_until(seconds(60));
  EXPECT_FALSE(accepted);
}

TEST_F(Fig4Fixture, L1OutboundRestrictedToF3) {
  // L1 -> F3 allowed.
  auto l3 = tb.f3->stack().tcp_listen(7777);
  bool to_f3 = false;
  l3->set_accept_handler([&](std::shared_ptr<TcpSocket>) { to_f3 = true; });
  auto c1 = tb.l1->stack().tcp_connect(tb.f3_ip, 7777);
  // L1 -> F4 blocked by LFW outbound policy.
  auto l4 = tb.f4->stack().tcp_listen(7777);
  bool to_f4 = false;
  l4->set_accept_handler([&](std::shared_ptr<TcpSocket>) { to_f4 = true; });
  auto c2 = tb.l1->stack().tcp_connect(tb.f4_pub_ip, 7777,
                                       TcpConfig{.syn_retries = 2});
  tb.net->loop().run_until(seconds(60));
  EXPECT_TRUE(to_f3);
  EXPECT_FALSE(to_f4);
}

}  // namespace
}  // namespace ipop::net
