// Brunet overlay tests: address arithmetic, packet codec, link handshakes,
// ring self-configuration (UDP and TCP), greedy routing properties, churn
// repair, NAT traversal, DHT storage.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "brunet/dht.hpp"
#include "brunet/node.hpp"
#include "brunet/secure.hpp"
#include "net/topology.hpp"

namespace ipop::brunet {
namespace {

using util::milliseconds;
using util::seconds;

net::Ipv4Address ip(const char* s) { return net::Ipv4Address::parse(s); }

// --- Address arithmetic -----------------------------------------------------

TEST(AddressTest, HexRoundTrip) {
  util::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    Address a = Address::random(rng);
    EXPECT_EQ(Address::from_hex(a.to_hex()), a);
  }
}

TEST(AddressTest, FromIpIsSha1) {
  // SHA1 of the 4 raw bytes 172.16.0.2 must be stable and distinct.
  Address a = Address::from_ip(ip("172.16.0.2"));
  Address b = Address::from_ip(ip("172.16.0.3"));
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Address::from_ip(ip("172.16.0.2")));
}

TEST(AddressTest, RingDistanceSymmetric) {
  util::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    Address a = Address::random(rng);
    Address b = Address::random(rng);
    EXPECT_EQ(Address::ring_distance(a, b), Address::ring_distance(b, a));
  }
}

TEST(AddressTest, DirectedDistanceWrapsAroundZero) {
  Address::Bytes near_top{};
  near_top.fill(0xFF);  // 2^160 - 1
  Address a(near_top);
  Address::Bytes two{};
  two[Address::kBytes - 1] = 2;
  Address b(two);
  // Clockwise from (2^160-1) to 2 is 3 steps.
  auto d = Address::directed_distance(a, b);
  Address::Bytes three{};
  three[Address::kBytes - 1] = 3;
  EXPECT_EQ(d, three);
}

TEST(AddressTest, CloserIsStrict) {
  util::Rng rng(9);
  Address t = Address::random(rng);
  Address x = Address::random(rng);
  EXPECT_FALSE(Address::closer(t, x, x));
  EXPECT_TRUE(Address::closer(x, x, t));  // distance 0 beats anything else
}

TEST(AddressTest, InRangeRight) {
  Address::Bytes b10{}, b20{}, b30{};
  b10[Address::kBytes - 1] = 10;
  b20[Address::kBytes - 1] = 20;
  b30[Address::kBytes - 1] = 30;
  Address a10(b10), a20(b20), a30(b30);
  EXPECT_TRUE(Address::in_range_right(a10, a20, a30));
  EXPECT_TRUE(Address::in_range_right(a10, a30, a30));   // inclusive right
  EXPECT_FALSE(Address::in_range_right(a10, a10, a30));  // exclusive left
  EXPECT_FALSE(Address::in_range_right(a20, a10, a30));  // wraps: 10 not in (20,30]
}

TEST(AddressTest, OffsetByPow2) {
  Address zero;
  Address one_shifted = zero.offset_by_pow2(0);
  EXPECT_EQ(one_shifted.bytes()[Address::kBytes - 1], 1);
  Address big = zero.offset_by_pow2(159);
  EXPECT_EQ(big.bytes()[0], 0x80);
}

// --- Packet codec -------------------------------------------------------------

TEST(PacketTest, RoundTrip) {
  util::Rng rng(3);
  Packet p;
  p.type = PacketType::kIpTunnel;
  p.mode = RoutingMode::kClosest;
  p.ttl = 17;
  p.hops = 4;
  p.msg_id = 0xCAFE;
  p.src = Address::random(rng);
  p.dst = Address::random(rng);
  p.set_payload({1, 2, 3, 4, 5});
  auto wire = p.to_wire();
  EXPECT_EQ(wire.size(), Packet::kHeaderSize + 5);
  Packet q = Packet::decode(wire.share());
  EXPECT_EQ(q.type, p.type);
  EXPECT_EQ(q.mode, p.mode);
  EXPECT_EQ(q.ttl, 17);
  EXPECT_EQ(q.hops, 4);
  EXPECT_EQ(q.msg_id, 0xCAFEu);
  EXPECT_EQ(q.src, p.src);
  EXPECT_EQ(q.dst, p.dst);
  EXPECT_EQ(q.payload(), p.payload());
}

TEST(PacketTest, TruncatedThrows) {
  std::vector<std::uint8_t> junk(10, 0);
  EXPECT_THROW(Packet::decode(std::span<const std::uint8_t>(junk)),
               util::ParseError);
}

// --- ConnectionTable -----------------------------------------------------------

TEST(ConnectionTableTest, NeighborOrdering) {
  Address::Bytes b{};
  auto mk = [&](std::uint8_t v) {
    Address::Bytes x{};
    x[0] = v;  // spread across the top byte
    return Address(x);
  };
  ConnectionTable table(mk(100));
  for (std::uint8_t v : {10, 50, 120, 200, 240}) {
    Connection c;
    c.addr = mk(v);
    table.add(c);
  }
  auto right = table.right_neighbors(2);
  ASSERT_EQ(right.size(), 2u);
  EXPECT_EQ(right[0]->addr, mk(120));
  EXPECT_EQ(right[1]->addr, mk(200));
  auto left = table.left_neighbors(2);
  ASSERT_EQ(left.size(), 2u);
  EXPECT_EQ(left[0]->addr, mk(50));
  EXPECT_EQ(left[1]->addr, mk(10));
  (void)b;
}

TEST(ConnectionTableTest, ClosestToWithExclusion) {
  auto mk = [&](std::uint8_t v) {
    Address::Bytes x{};
    x[0] = v;
    return Address(x);
  };
  ConnectionTable table(mk(0));
  Connection c10, c20;
  c10.addr = mk(10);
  c20.addr = mk(20);
  table.add(c10);
  table.add(c20);
  Address target = mk(12);
  EXPECT_EQ(table.closest_to(target)->addr, mk(10));
  Address excl = mk(10);
  EXPECT_EQ(table.closest_to(target, &excl)->addr, mk(20));
}

TEST(ConnectionTableTest, AddUpgradesTypeAndDeduplicates) {
  util::Rng rng(1);
  ConnectionTable table(Address::random(rng));
  Address peer = Address::random(rng);
  Connection leaf;
  leaf.addr = peer;
  table.add(leaf);
  Connection near_conn;
  near_conn.addr = peer;
  near_conn.type = ConnectionType::kStructuredNear;
  table.add(near_conn);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(peer)->type, ConnectionType::kStructuredNear);
  // Downgrade attempts are ignored.
  table.add(leaf);
  EXPECT_EQ(table.find(peer)->type, ConnectionType::kStructuredNear);
}

// The ring index must agree with the obvious O(n) reference on randomized
// tables: closest_to (with and without exclusion, including duplicate-
// distance ties), the k-neighbor walks, and the single-neighbor
// accessors.  This is the property the binary-search rewrite must not
// break — greedy routing at 10^4 nodes fails silently on any divergence.
TEST(ConnectionTableTest, RingIndexMatchesLinearReference) {
  util::Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    const Address self = Address::random(rng);
    ConnectionTable table(self);
    std::vector<Address> members;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < n; ++i) {
      Address a = Address::random(rng);
      if (rng.uniform() < 0.3) {
        // Cluster some entries near self/extremes to exercise wraparound.
        Address::Bytes b = self.bytes();
        b[Address::kBytes - 1] ^= static_cast<std::uint8_t>(
            rng.uniform_int(0, 255));
        a = Address(b);
      }
      if (a == self) continue;
      Connection c;
      c.addr = a;
      table.add(c);
      if (std::find(members.begin(), members.end(), a) == members.end()) {
        members.push_back(a);
      }
    }
    ASSERT_EQ(table.size(), members.size());

    // Linear reference: min ring distance, ties to the lower address.
    auto reference = [&](const Address& target,
                         const Address* exclude) -> std::optional<Address> {
      std::optional<Address> best;
      for (const auto& a : members) {
        if (exclude != nullptr && a == *exclude) continue;
        if (!best || Address::closer(target, a, *best) ||
            (!Address::closer(target, *best, a) && a < *best)) {
          best = a;
        }
      }
      return best;
    };

    for (int probe = 0; probe < 20; ++probe) {
      Address target = Address::random(rng);
      if (rng.uniform() < 0.3) {
        target = members[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(members.size()) -
                                   1))];
      }
      const Connection* got = table.closest_to(target);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->addr, *reference(target, nullptr));
      const Address excl = got->addr;
      const Connection* got2 = table.closest_to(target, &excl);
      const auto ref2 = reference(target, &excl);
      if (ref2) {
        ASSERT_NE(got2, nullptr);
        EXPECT_EQ(got2->addr, *ref2);
      } else {
        EXPECT_EQ(got2, nullptr);
      }
    }

    // Neighbor walks: sort members by clockwise distance from self and
    // compare both directions at several k, plus the single accessors.
    std::vector<Address> cw = members;
    std::sort(cw.begin(), cw.end(), [&](const Address& a, const Address& b) {
      return compare_bytes(Address::directed_distance(self, a),
                           Address::directed_distance(self, b)) < 0;
    });
    for (std::size_t k : {std::size_t{1}, std::size_t{3},
                          members.size(), members.size() + 5}) {
      const auto right = table.right_neighbors(k);
      const auto left = table.left_neighbors(k);
      const std::size_t expect = std::min(k, members.size());
      ASSERT_EQ(right.size(), expect);
      ASSERT_EQ(left.size(), expect);
      for (std::size_t i = 0; i < expect; ++i) {
        EXPECT_EQ(right[i]->addr, cw[i]);
        EXPECT_EQ(left[i]->addr, cw[cw.size() - 1 - i]);
      }
    }
    ASSERT_NE(table.right_neighbor(), nullptr);
    ASSERT_NE(table.left_neighbor(), nullptr);
    EXPECT_EQ(table.right_neighbor()->addr, cw.front());
    EXPECT_EQ(table.left_neighbor()->addr, cw.back());

    // reclassify at k >= n marks everything near; at k < n exactly the k
    // clockwise-closest and k counter-clockwise-closest are near.
    table.reclassify(members.size() + 3);
    EXPECT_EQ(table.count(ConnectionType::kStructuredNear), members.size());
    const std::size_t k = 2;
    table.reclassify(k);
    for (std::size_t i = 0; i < cw.size(); ++i) {
      const bool expect_near =
          cw.size() <= 2 * k || i < k || i >= cw.size() - k;
      EXPECT_EQ(table.find(cw[i])->type == ConnectionType::kStructuredNear,
                expect_near)
          << "offset " << i << " of " << cw.size();
    }
  }
}

// --- NodeInfo wire encoding --------------------------------------------------

TEST(NodeInfoEncoding, CountByteClampsAt255) {
  // Regression: the u8 count prefix used to be written unclamped, so a
  // >255-entry list silently truncated the count byte (e.g. 300 -> 44)
  // and the decoder read garbage where entry 45 should have ended.
  std::vector<NodeInfo> infos;
  for (int i = 0; i < 300; ++i) {
    NodeInfo info;
    info.addr = Address::hash("clamp-" + std::to_string(i));
    info.addrs.push_back({TransportAddress::Proto::kUdp,
                          net::Ipv4Address(10, 0, 0, 1),
                          static_cast<std::uint16_t>(1000 + i)});
    infos.push_back(std::move(info));
  }
  util::ByteWriter w;
  EXPECT_EQ(encode_node_infos(w, infos), 255u);
  util::ByteReader r(w.data());
  const std::uint8_t n = r.u8();
  ASSERT_EQ(n, 255u);
  for (std::uint8_t i = 0; i < n; ++i) {
    NodeInfo decoded = NodeInfo::decode(r);
    EXPECT_EQ(decoded.addr, infos[i].addr) << "entry " << int{i};
  }
  EXPECT_EQ(r.remaining(), 0u) << "count byte and entries must agree";
}

TEST(NodeInfoEncoding, SmallListsRoundTripExactly) {
  std::vector<NodeInfo> infos(3);
  for (int i = 0; i < 3; ++i) {
    infos[static_cast<std::size_t>(i)].addr =
        Address::hash("rt-" + std::to_string(i));
  }
  util::ByteWriter w;
  EXPECT_EQ(encode_node_infos(w, infos), 3u);
  util::ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 3u);
}

// --- Overlay fixtures ------------------------------------------------------------

/// N public hosts on one switch, each running a BrunetNode.
struct OverlayFixture {
  net::Network net{101};
  std::vector<net::Host*> hosts;
  std::vector<std::unique_ptr<BrunetNode>> nodes;
  std::vector<Address> addrs;

  void build(int n, TransportAddress::Proto proto, std::uint64_t seed = 77,
             bool key_addressed = false) {
    util::Rng rng(seed);
    auto& sw = net.add_switch("sw");
    sim::LinkConfig lan;
    lan.delay = util::microseconds(100);
    for (int i = 0; i < n; ++i) {
      auto& h = net.add_host("n" + std::to_string(i));
      const net::Ipv4Address hip(10, 0, static_cast<std::uint8_t>(i / 250),
                                 static_cast<std::uint8_t>(i % 250 + 1));
      net.connect_to_switch(h.stack(), {"eth0", hip, 8}, sw, lan);
      hosts.push_back(&h);
      NodeConfig cfg;
      cfg.transport = proto;
      Address addr = Address::random(rng);
      std::unique_ptr<BrunetNode> node;
      if (key_addressed) {
        const auto identity = NodeIdentity::generate(rng);
        addr = identity.address();
        node = std::make_unique<BrunetNode>(h, identity, cfg);
      } else {
        node = std::make_unique<BrunetNode>(h, addr, cfg);
      }
      if (i > 0) {
        node->add_seed({proto, hosts[0]->stack().interface_ip(0), cfg.port});
      }
      addrs.push_back(addr);
      nodes.push_back(std::move(node));
    }
  }

  void start_all() {
    for (auto& n : nodes) n->start();
  }

  /// True when every running node's immediate ring neighbors match the
  /// global sorted order of addresses.
  bool ring_consistent() const {
    std::vector<std::pair<Address, const BrunetNode*>> alive;
    for (const auto& n : nodes) {
      if (n->started()) alive.push_back({n->address(), n.get()});
    }
    if (alive.size() < 2) return true;
    std::sort(alive.begin(), alive.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < alive.size(); ++i) {
      const auto& expect_right = alive[(i + 1) % alive.size()].first;
      auto right = alive[i].second->right_neighbor();
      if (!right || *right != expect_right) return false;
    }
    return true;
  }

  /// Run the loop until the ring converges (or the deadline passes).
  bool converge(util::Duration budget = seconds(60)) {
    const auto deadline = net.loop().now() + budget;
    while (net.loop().now() < deadline) {
      net.loop().run_until(net.loop().now() + milliseconds(500));
      if (ring_consistent()) return true;
    }
    return ring_consistent();
  }
};

struct RingFormation : ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, RingFormation,
                         ::testing::Values(2, 3, 5, 8, 16, 32));

TEST_P(RingFormation, UdpRingConverges) {
  OverlayFixture f;
  f.build(GetParam(), TransportAddress::Proto::kUdp);
  f.start_all();
  EXPECT_TRUE(f.converge()) << "ring did not converge with " << GetParam()
                            << " nodes";
}

TEST(RingFormationTcp, TcpRingConverges) {
  OverlayFixture f;
  f.build(8, TransportAddress::Proto::kTcp);
  f.start_all();
  EXPECT_TRUE(f.converge());
}

TEST(Bootstrap, CrossProtoSeedIsDialedNotSkipped) {
  // Regression: bootstrap() used to skip seeds whose protocol differed
  // from the node's configured transport, so a UDP node handed only TCP
  // seeds retried forever.  It must instead dial the seed through a
  // lazily created transport of the matching protocol.
  net::Network net{404};
  auto& sw = net.add_switch("sw");
  sim::LinkConfig lan;
  lan.delay = util::microseconds(100);
  std::vector<net::Host*> hosts;
  for (int i = 0; i < 3; ++i) {
    auto& h = net.add_host("x" + std::to_string(i));
    net.connect_to_switch(
        h.stack(),
        {"eth0", net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
         24},
        sw, lan);
    hosts.push_back(&h);
  }
  // Two TCP nodes form the existing overlay.
  NodeConfig tcp_cfg;
  tcp_cfg.transport = TransportAddress::Proto::kTcp;
  BrunetNode a(*hosts[0], Address::hash("tcp-a"), tcp_cfg);
  BrunetNode b(*hosts[1], Address::hash("tcp-b"), tcp_cfg);
  b.add_seed({TransportAddress::Proto::kTcp, net::Ipv4Address(10, 0, 0, 1),
              tcp_cfg.port});
  a.start();
  b.start();
  net.loop().run_until(seconds(30));
  ASSERT_TRUE(a.table().contains(b.address()));

  // A UDP node whose only seed is a's TCP endpoint.
  NodeConfig udp_cfg;
  udp_cfg.transport = TransportAddress::Proto::kUdp;
  BrunetNode c(*hosts[2], Address::hash("udp-c"), udp_cfg);
  c.add_seed({TransportAddress::Proto::kTcp, net::Ipv4Address(10, 0, 0, 1),
              tcp_cfg.port});
  c.start();
  net.loop().run_until(net.loop().now() + seconds(30));
  EXPECT_GE(c.stats().bootstrap_cross_proto, 1u);
  ASSERT_TRUE(c.table().contains(a.address()))
      << "cross-proto seed was never dialed";
  // The leaf edge routes real traffic: an overlay ping crosses it.
  bool got = false;
  c.request(a.address(), PacketType::kPing, RoutingMode::kExact, {1, 2},
            [&](std::optional<Packet> resp) { got = resp.has_value(); });
  net.loop().run_until(net.loop().now() + seconds(5));
  EXPECT_TRUE(got);
}

TEST(OverlayRouting, ExactDeliveryBetweenAllPairs) {
  OverlayFixture f;
  f.build(10, TransportAddress::Proto::kUdp);
  f.start_all();
  ASSERT_TRUE(f.converge());
  int delivered = 0;
  const int n = static_cast<int>(f.nodes.size());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      f.nodes[j]->set_handler(PacketType::kAppData,
                              [&delivered](const Packet&) { ++delivered; });
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      f.nodes[i]->send(
          Destination::unicast(f.addrs[j]),
          OutboundFrame(PacketType::kAppData,
                        std::vector<std::uint8_t>{static_cast<std::uint8_t>(i)}));
    }
  }
  f.net.loop().run_until(f.net.loop().now() + seconds(10));
  EXPECT_EQ(delivered, n * (n - 1));
}

TEST(OverlayRouting, ClosestModeDeliversToClosestNode) {
  OverlayFixture f;
  f.build(12, TransportAddress::Proto::kUdp);
  f.start_all();
  ASSERT_TRUE(f.converge());
  util::Rng rng(1234);
  for (int trial = 0; trial < 30; ++trial) {
    const Address target = Address::random(rng);
    // Expected owner: node with minimal ring distance.
    std::size_t expected = 0;
    for (std::size_t i = 1; i < f.addrs.size(); ++i) {
      if (Address::closer(target, f.addrs[i], f.addrs[expected])) expected = i;
    }
    int hits = 0;
    for (std::size_t i = 0; i < f.nodes.size(); ++i) {
      f.nodes[i]->set_handler(
          PacketType::kAppData,
          [&hits, i, expected](const Packet&) {
            EXPECT_EQ(i, expected) << "delivered to wrong owner";
            ++hits;
          });
    }
    const std::size_t origin = trial % f.nodes.size();
    f.nodes[origin]->send(Destination::closest(target),
                          OutboundFrame(PacketType::kAppData,
                                        std::vector<std::uint8_t>{}));
    f.net.loop().run_until(f.net.loop().now() + seconds(2));
    if (origin != expected) {
      EXPECT_EQ(hits, 1) << "trial " << trial;
    }
  }
}

TEST(OverlayRouting, HopCountLogarithmicWithShortcuts) {
  OverlayFixture f;
  f.build(24, TransportAddress::Proto::kUdp);
  f.start_all();
  ASSERT_TRUE(f.converge());
  // Give shortcuts time to form.
  f.net.loop().run_until(f.net.loop().now() + seconds(20));
  int max_hops = 0;
  int received = 0;
  for (std::size_t j = 0; j < f.nodes.size(); ++j) {
    f.nodes[j]->set_handler(PacketType::kAppData,
                            [&](const Packet& pkt) {
                              max_hops = std::max(max_hops, int{pkt.hops});
                              ++received;
                            });
  }
  for (std::size_t i = 0; i < f.nodes.size(); ++i) {
    for (std::size_t j = 0; j < f.nodes.size(); ++j) {
      if (i == j) continue;
      f.nodes[i]->send(Destination::unicast(f.addrs[j]),
                       OutboundFrame(PacketType::kAppData,
                                     std::vector<std::uint8_t>{}));
    }
  }
  f.net.loop().run_until(f.net.loop().now() + seconds(10));
  EXPECT_EQ(received, static_cast<int>(f.nodes.size() * (f.nodes.size() - 1)));
  // Pure ring worst case is n/2 = 12; shortcuts should do much better.
  EXPECT_LE(max_hops, 8);
}

TEST(OverlayChurn, RingRepairsAfterNodeLeaves) {
  OverlayFixture f;
  f.build(8, TransportAddress::Proto::kUdp);
  f.start_all();
  ASSERT_TRUE(f.converge());
  // Kill a middle node (never the seed, index 0).
  f.nodes[3]->stop();
  EXPECT_TRUE(f.converge(seconds(120))) << "ring did not repair after leave";
}

TEST(OverlayChurn, RingAbsorbsLateJoin) {
  OverlayFixture f;
  f.build(6, TransportAddress::Proto::kUdp);
  // Start all but the last.
  for (std::size_t i = 0; i + 1 < f.nodes.size(); ++i) f.nodes[i]->start();
  f.net.loop().run_until(seconds(30));
  f.nodes.back()->start();
  EXPECT_TRUE(f.converge(seconds(60)));
}

TEST(OverlayChurn, GracefulLeaveEvictsImmediatelyAndRepairsRing) {
  OverlayFixture f;
  f.build(8, TransportAddress::Proto::kUdp);
  f.start_all();
  ASSERT_TRUE(f.converge());
  const Address departed = f.addrs[3];
  f.nodes[3]->leave();
  // kDeparting is synchronous up to the transport: peers evict the
  // departed node as soon as the notice is delivered — far inside the
  // 15-second keepalive timeout a crash would need.
  f.net.loop().run_until(f.net.loop().now() + seconds(2));
  std::uint64_t departures_seen = 0;
  for (const auto& n : f.nodes) {
    if (!n->started()) continue;
    EXPECT_FALSE(n->table().contains(departed))
        << n->address().short_hex() << " still lists the departed node";
    departures_seen += n->stats().departures_seen;
  }
  EXPECT_GE(departures_seen, 2u);  // at least its two ring neighbors heard
  EXPECT_TRUE(f.converge(seconds(60))) << "ring did not close the gap";
}

TEST(OverlayChurn, KeepaliveMissCountsEvictions) {
  OverlayFixture f;
  f.build(6, TransportAddress::Proto::kUdp);
  f.start_all();
  ASSERT_TRUE(f.converge());
  f.nodes[2]->stop();  // crash: no departure notice
  ASSERT_TRUE(f.converge(seconds(120)));
  std::uint64_t evictions = 0;
  for (const auto& n : f.nodes) {
    if (n->started()) evictions += n->stats().keepalive_evictions;
  }
  EXPECT_GE(evictions, 1u) << "crash must be detected by keepalive misses";
}

TEST(OverlayChurn, SurvivesMultipleFailures) {
  OverlayFixture f;
  f.build(16, TransportAddress::Proto::kUdp);
  f.start_all();
  ASSERT_TRUE(f.converge());
  f.nodes[5]->stop();
  f.nodes[9]->stop();
  f.nodes[12]->stop();
  EXPECT_TRUE(f.converge(seconds(180)));
}

TEST(OverlayPing, RequestResponseAndTimeout) {
  OverlayFixture f;
  f.build(4, TransportAddress::Proto::kUdp);
  f.start_all();
  ASSERT_TRUE(f.converge());
  bool got = false;
  f.nodes[0]->request(f.addrs[2], PacketType::kPing, RoutingMode::kExact,
                      {7, 7}, [&](std::optional<Packet> resp) {
                        ASSERT_TRUE(resp.has_value());
                        EXPECT_EQ(resp->payload(),
                                  util::BufferView(
                                      std::vector<std::uint8_t>{7, 7}));
                        got = true;
                      });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  EXPECT_TRUE(got);
  // Request to a dead address times out with nullopt.
  util::Rng rng(4242);
  bool timed_out = false;
  f.nodes[0]->request(Address::random(rng), PacketType::kPing,
                      RoutingMode::kExact, {},
                      [&](std::optional<Packet> resp) {
                        EXPECT_FALSE(resp.has_value());
                        timed_out = true;
                      });
  f.net.loop().run_until(f.net.loop().now() + seconds(10));
  EXPECT_TRUE(timed_out);
}

// --- NAT traversal -----------------------------------------------------------

struct NatTraversalEnv {
  // seed (public) -- switch -- natA -- nodeA (private)
  //                        \-- natB -- nodeB (private)
  net::Network net{202};
  net::Host* seed_host = nullptr;
  net::Host* host_a = nullptr;
  net::Host* host_b = nullptr;
  std::unique_ptr<BrunetNode> seed;
  std::unique_ptr<BrunetNode> node_a;
  std::unique_ptr<BrunetNode> node_b;

  void build(net::NatType type_a, net::NatType type_b) {
    auto& sw = net.add_switch("internet");
    sim::LinkConfig lan;
    lan.delay = milliseconds(2);
    seed_host = &net.add_host("seed");
    net.connect_to_switch(seed_host->stack(), {"eth0", ip("8.0.0.1"), 24}, sw,
                          lan);
    auto make_site = [&](const char* name, net::NatType t, const char* priv,
                         const char* pub) -> net::Host* {
      auto& nat = net.add_nat(std::string(name) + "-nat", t);
      auto& h = net.add_host(name);
      net.connect(h.stack(), {"eth0", ip(priv), 24}, nat.stack(),
                  {"in", ip((std::string(priv).substr(0, std::string(priv).rfind('.')) + ".254").c_str()), 24},
                  lan);
      net.connect_to_switch(nat.stack(), {"out", ip(pub), 24}, sw, lan);
      h.stack().add_route(net::Ipv4Prefix::parse("0.0.0.0/0"), 0,
                          ip((std::string(priv).substr(0, std::string(priv).rfind('.')) + ".254").c_str()));
      nat.stack().add_route(net::Ipv4Prefix::parse("0.0.0.0/0"), 1,
                            ip("8.0.0.1"));
      return &h;
    };
    host_a = make_site("a", type_a, "192.168.1.2", "8.0.0.10");
    host_b = make_site("b", type_b, "192.168.2.2", "8.0.0.20");

    util::Rng rng(55);
    NodeConfig cfg;
    cfg.transport = TransportAddress::Proto::kUdp;
    seed = std::make_unique<BrunetNode>(*seed_host, Address::random(rng), cfg);
    node_a = std::make_unique<BrunetNode>(*host_a, Address::random(rng), cfg);
    node_b = std::make_unique<BrunetNode>(*host_b, Address::random(rng), cfg);
    const TransportAddress seed_ta{TransportAddress::Proto::kUdp,
                                   ip("8.0.0.1"), cfg.port};
    node_a->add_seed(seed_ta);
    node_b->add_seed(seed_ta);
  }
};

struct NatTraversalFixture : NatTraversalEnv,
                             ::testing::TestWithParam<net::NatType> {};

INSTANTIATE_TEST_SUITE_P(ConeTypes, NatTraversalFixture,
                         ::testing::Values(net::NatType::kFullCone,
                                           net::NatType::kRestrictedCone,
                                           net::NatType::kPortRestrictedCone));

TEST_P(NatTraversalFixture, NattedNodesJoinViaPublicSeed) {
  build(GetParam(), GetParam());
  seed->start();
  node_a->start();
  node_b->start();
  net.loop().run_until(seconds(30));
  EXPECT_GE(seed->table().size(), 2u);
  EXPECT_GE(node_a->table().size(), 1u);
  EXPECT_GE(node_b->table().size(), 1u);
}

TEST_P(NatTraversalFixture, HolePunchDirectEdgeBetweenNattedNodes) {
  build(GetParam(), GetParam());
  seed->start();
  node_a->start();
  node_b->start();
  net.loop().run_until(seconds(60));
  // Ring of 3: each node must hold connections to both others — including
  // a punched A<->B edge through both NATs.
  EXPECT_TRUE(node_a->table().contains(node_b->address()))
      << "no direct edge A->B through " << net::nat_type_name(GetParam());
  EXPECT_TRUE(node_b->table().contains(node_a->address()));
}

TEST(NatTraversalSymmetric, SymmetricPairFallsBackToRelay) {
  NatTraversalEnv f;
  f.build(net::NatType::kSymmetric, net::NatType::kSymmetric);
  f.seed->start();
  f.node_a->start();
  f.node_b->start();
  f.net.loop().run_until(seconds(60));
  // Both can join via the public seed...
  EXPECT_TRUE(f.seed->table().contains(f.node_a->address()));
  EXPECT_TRUE(f.seed->table().contains(f.node_b->address()));
  // ...and symmetric-symmetric direct traversal must fail (the observed
  // port is per-destination, so the punch targets the wrong mapping) —
  // but the link still forms, tunneled through the public seed as relay.
  const Connection* ab = f.node_a->table().find(f.node_b->address());
  ASSERT_NE(ab, nullptr) << "A<->B link missing: relay fallback never ran";
  ASSERT_NE(ab->edge, nullptr);
  EXPECT_EQ(ab->edge->remote().proto, TransportAddress::Proto::kRelay)
      << "symmetric pair linked over a non-relay edge";
  const Connection* ba = f.node_b->table().find(f.node_a->address());
  ASSERT_NE(ba, nullptr);
  ASSERT_NE(ba->edge, nullptr);
  EXPECT_EQ(ba->edge->remote().proto, TransportAddress::Proto::kRelay);
  // The tunnel rides existing seed edges: no new NAT mappings may have
  // been punched between the two symmetric boxes.
  EXPECT_GE(f.node_a->stats().links_relayed + f.node_b->stats().links_relayed,
            1u);
}

// --- DHT ------------------------------------------------------------------------

struct DhtFixture : ::testing::Test {
  OverlayFixture f;
  std::vector<std::unique_ptr<Dht>> dhts;

  void SetUp() override {
    f.build(8, TransportAddress::Proto::kUdp);
    f.start_all();
    ASSERT_TRUE(f.converge());
    for (auto& n : f.nodes) {
      dhts.push_back(std::make_unique<Dht>(*n));
    }
  }
};

/// Unwrap a typed DHT record into the raw value bytes the assertions
/// compare against.
std::optional<std::vector<std::uint8_t>> record_value(
    std::optional<Record> rec) {
  if (!rec) return std::nullopt;
  return rec->value.to_vector();
}

TEST_F(DhtFixture, PutThenGetFromAnyNode) {
  const auto key = Address::hash("test-key");
  bool put_ok = false;
  dhts[0]->put(key, {1, 2, 3}, [&](bool ok) { put_ok = ok; });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(put_ok);
  for (std::size_t i = 0; i < dhts.size(); ++i) {
    std::optional<std::vector<std::uint8_t>> got;
    dhts[i]->get(key, [&](auto v) { got = record_value(std::move(v)); });
    f.net.loop().run_until(f.net.loop().now() + seconds(5));
    ASSERT_TRUE(got.has_value()) << "get from node " << i;
    EXPECT_EQ(*got, (std::vector<std::uint8_t>{1, 2, 3}));
  }
}

TEST_F(DhtFixture, GetMissingKeyReturnsNullopt) {
  std::optional<std::vector<std::uint8_t>> got{{9}};
  bool called = false;
  dhts[3]->get(Address::hash("never-stored"), [&](auto v) {
    got = record_value(std::move(v));
    called = true;
  });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value());
}

TEST_F(DhtFixture, OverwriteKeepsNewestValue) {
  const auto key = Address::hash("versioned");
  dhts[1]->put(key, {1}, [](bool) {});
  f.net.loop().run_until(f.net.loop().now() + seconds(2));
  dhts[2]->put(key, {2}, [](bool) {});
  f.net.loop().run_until(f.net.loop().now() + seconds(2));
  std::optional<std::vector<std::uint8_t>> got;
  dhts[4]->get(key, [&](auto v) { got = record_value(std::move(v)); });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (std::vector<std::uint8_t>{2}));
}

TEST_F(DhtFixture, ValueIsReplicated) {
  const auto key = Address::hash("replicated-key");
  dhts[0]->put(key, {42}, [](bool) {});
  f.net.loop().run_until(f.net.loop().now() + seconds(10));
  std::size_t copies = 0;
  for (const auto& d : dhts) copies += d->local_records();
  EXPECT_GE(copies, 2u);  // owner + at least one replica
}

TEST_F(DhtFixture, SurvivesOwnerFailure) {
  const auto key = Address::hash("durable-key");
  dhts[0]->put(key, {7, 7}, [](bool) {});
  f.net.loop().run_until(f.net.loop().now() + seconds(10));
  // Find and kill the owner node.
  std::size_t owner = 0;
  for (std::size_t i = 1; i < f.addrs.size(); ++i) {
    if (Address::closer(key, f.addrs[i], f.addrs[owner])) owner = i;
  }
  if (owner == 0) GTEST_SKIP() << "owner is the seed; skipping";
  f.nodes[owner]->stop();
  ASSERT_TRUE(f.converge(seconds(120)));
  f.net.loop().run_until(f.net.loop().now() + seconds(10));
  std::size_t asker = (owner + 1) % dhts.size();
  std::optional<std::vector<std::uint8_t>> got;
  dhts[asker]->get(key, [&](auto v) { got = record_value(std::move(v)); });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(got.has_value()) << "value lost after owner failure";
  EXPECT_EQ(*got, (std::vector<std::uint8_t>{7, 7}));
}

TEST_F(DhtFixture, CreateIsAtomicFirstWriterWins) {
  const auto key = Address::hash("lease-172.16.1.7");
  bool first_ok = false;
  dhts[1]->create(key, {1, 1, 1}, [&](bool ok) { first_ok = ok; });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(first_ok);
  // A competing create with a different value must lose...
  bool second_ok = true;
  dhts[2]->create(key, {2, 2, 2}, [&](bool ok) { second_ok = ok; });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  EXPECT_FALSE(second_ok);
  // ...and the stored value stays the first writer's.
  std::optional<std::vector<std::uint8_t>> got;
  dhts[3]->get(key, [&](auto v) { got = record_value(std::move(v)); });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (std::vector<std::uint8_t>{1, 1, 1}));
  std::uint64_t conflicts = 0;
  for (const auto& d : dhts) conflicts += d->stats().create_conflicts;
  EXPECT_EQ(conflicts, 1u);
}

TEST_F(DhtFixture, CreateWithOwnValueRenews) {
  const auto key = Address::hash("renewable-lease");
  bool ok1 = false;
  dhts[0]->create(key, {9}, [&](bool ok) { ok1 = ok; });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(ok1);
  // Re-claiming with the identical value is the renewal path: accepted,
  // expiry pushed out, replicas refreshed.
  bool ok2 = false;
  dhts[0]->create(key, {9}, [&](bool ok) { ok2 = ok; });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  EXPECT_TRUE(ok2);
}

TEST_F(DhtFixture, CreateSucceedsAfterRecordExpires) {
  // A fresh overlay with a tiny record TTL: an abandoned claim must leak
  // back to the pool once it expires.
  OverlayFixture g;
  g.build(4, TransportAddress::Proto::kUdp, /*seed=*/911);
  g.start_all();
  ASSERT_TRUE(g.converge());
  DhtConfig dcfg;
  dcfg.record_ttl = seconds(10);
  std::vector<std::unique_ptr<Dht>> ds;
  for (auto& n : g.nodes) ds.push_back(std::make_unique<Dht>(*n, dcfg));
  const auto key = Address::hash("expiring-lease");
  bool ok1 = false;
  ds[0]->create(key, {1}, [&](bool ok) { ok1 = ok; });
  // A fresh overlay converges well inside DhtConfig::min_owner_age, so the
  // first create is deferred (kRetry) until the owner is old enough to
  // trust its own miss; give the retry loop room to land.
  g.net.loop().run_until(g.net.loop().now() + seconds(12));
  ASSERT_TRUE(ok1);
  bool contested = true;
  ds[1]->create(key, {2}, [&](bool ok) { contested = ok; });
  g.net.loop().run_until(g.net.loop().now() + seconds(5));
  EXPECT_FALSE(contested);
  // Holder never renews; wait out the TTL and claim again.
  g.net.loop().run_until(g.net.loop().now() + seconds(15));
  bool reclaimed = false;
  ds[1]->create(key, {2}, [&](bool ok) { reclaimed = ok; });
  g.net.loop().run_until(g.net.loop().now() + seconds(5));
  EXPECT_TRUE(reclaimed);
}

TEST_F(DhtFixture, HandoffSurvivesSimultaneousAdjacentDepartures) {
  const auto key = Address::hash("churn-proof-record");
  bool put_ok = false;
  dhts[0]->put(key, {4, 2}, [&](bool ok) { put_ok = ok; });
  f.net.loop().run_until(f.net.loop().now() + seconds(10));
  ASSERT_TRUE(put_ok);
  // The owner and its ring successor hold the record (owner + first
  // replica).  Both leave in the same instant — the worst case for
  // handoff, because each may aim its records at the other.
  std::size_t owner = 0;
  for (std::size_t i = 1; i < f.addrs.size(); ++i) {
    if (Address::closer(key, f.addrs[i], f.addrs[owner])) owner = i;
  }
  // Ring successor of the owner in global address order.
  std::vector<std::size_t> order(f.addrs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return f.addrs[a] < f.addrs[b];
  });
  std::size_t owner_pos = 0;
  while (order[owner_pos] != owner) ++owner_pos;
  const std::size_t successor = order[(owner_pos + 1) % order.size()];

  f.nodes[owner]->leave();
  f.nodes[successor]->leave();
  ASSERT_TRUE(f.converge(seconds(120)));
  f.net.loop().run_until(f.net.loop().now() + seconds(10));

  // No record loss: any survivor can still resolve the key.
  std::size_t asker = 0;
  while (asker == owner || asker == successor) ++asker;
  std::optional<std::vector<std::uint8_t>> got;
  dhts[asker]->get(key, [&](auto v) { got = record_value(std::move(v)); });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(got.has_value())
      << "record lost when two adjacent owners departed together";
  EXPECT_EQ(*got, (std::vector<std::uint8_t>{4, 2}));

  // Correct re-replication accounting: the departing holders handed off
  // their records, and the survivors pushed fresh copies when the losses
  // were noticed.
  EXPECT_GE(dhts[owner]->stats().handoffs + dhts[successor]->stats().handoffs,
            2u);
  std::uint64_t rereplications = 0;
  std::size_t holders = 0;
  for (std::size_t i = 0; i < dhts.size(); ++i) {
    if (i == owner || i == successor) continue;
    rereplications += dhts[i]->stats().rereplications;
    holders += dhts[i]->local_records();
  }
  EXPECT_GE(rereplications, 1u)
      << "survivors must re-replicate after losing two replica holders";
  EXPECT_GE(holders, 2u) << "replication factor not restored";
}

// --- FrameSealer (end-to-end payload crypto) ---------------------------------

TEST(FrameSealerTest, SealOpenRoundTripsInPlaceWithZeroCopies) {
  util::Rng rng(404);
  const auto a = util::crypto::KeyPair::generate(rng);
  const auto b = util::crypto::KeyPair::generate(rng);
  FrameSealer alice(a);
  FrameSealer bob(b);
  const Address dst = Address::from_public_key(b.public_key());

  std::vector<std::uint8_t> plain(600);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i);
  }
  auto payload = util::Buffer::copy_of(plain, util::kPacketHeadroom);
  const std::uint8_t* bytes_before = payload.data();

  auto sealed = alice.seal(std::move(payload), b.public_key(), dst,
                           util::kPacketHeadroom);
  EXPECT_EQ(alice.stats().sealed, 1u);
  EXPECT_EQ(alice.stats().payload_bytes_copied, 0u)
      << "seal with headroom available must not move payload bytes";
  EXPECT_TRUE(FrameSealer::looks_sealed(sealed.as_span()));
  // The header landed in the headroom; the (now encrypted) payload bytes
  // did not move.
  EXPECT_EQ(sealed.data() + FrameSealer::kHeaderSize, bytes_before);
  EXPECT_NE(sealed.to_vector(),
            plain)  // and they really are ciphertext now
      << "sealed frame leaked plaintext";

  auto opened = bob.open(std::move(sealed), dst);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->to_vector(), plain);
  EXPECT_EQ(opened->data(), bytes_before) << "open must decrypt in place";
  EXPECT_EQ(bob.stats().opened, 1u);
  EXPECT_EQ(bob.stats().rejected, 0u);
}

TEST(FrameSealerTest, NoncesMakeIdenticalPayloadsDistinct) {
  util::Rng rng(405);
  const auto a = util::crypto::KeyPair::generate(rng);
  const auto b = util::crypto::KeyPair::generate(rng);
  FrameSealer alice(a);
  const Address dst = Address::from_public_key(b.public_key());
  const std::vector<std::uint8_t> plain(64, 0x5A);
  auto s1 = alice.seal(util::Buffer::copy_of(plain, util::kPacketHeadroom),
                       b.public_key(), dst, util::kPacketHeadroom);
  auto s2 = alice.seal(util::Buffer::copy_of(plain, util::kPacketHeadroom),
                       b.public_key(), dst, util::kPacketHeadroom);
  EXPECT_NE(s1.to_vector(), s2.to_vector());
  // One DH agreement serves both frames.
  EXPECT_EQ(alice.stats().key_agreements, 1u);
}

TEST(FrameSealerTest, TamperedOrMisdirectedFramesRejected) {
  util::Rng rng(406);
  const auto a = util::crypto::KeyPair::generate(rng);
  const auto b = util::crypto::KeyPair::generate(rng);
  FrameSealer alice(a);
  FrameSealer bob(b);
  const Address dst = Address::from_public_key(b.public_key());
  const std::vector<std::uint8_t> plain{1, 2, 3, 4, 5, 6, 7, 8};

  // Bit-flipped ciphertext: the encrypt-then-sign MAC catches it.
  auto sealed = alice.seal(util::Buffer::copy_of(plain, util::kPacketHeadroom),
                           b.public_key(), dst, util::kPacketHeadroom);
  sealed.patch_u8(FrameSealer::kHeaderSize + 3,
                  sealed[FrameSealer::kHeaderSize + 3] ^ 0x10);
  EXPECT_FALSE(bob.open(std::move(sealed), dst).has_value());

  // Redirected frame: the signature binds the destination address, so a
  // relay cannot replay a captured frame at a different node.
  auto sealed2 = alice.seal(util::Buffer::copy_of(plain, util::kPacketHeadroom),
                            b.public_key(), dst, util::kPacketHeadroom);
  EXPECT_FALSE(
      bob.open(std::move(sealed2), Address::hash("somewhere-else")).has_value());

  // Truncated header.
  auto runt = util::Buffer::wrap({FrameSealer::kSealedV1, 0x00, 0x01});
  EXPECT_FALSE(bob.open(std::move(runt), dst).has_value());
  EXPECT_EQ(bob.stats().rejected, 3u);
  EXPECT_EQ(bob.stats().opened, 0u);
}

TEST(FrameSealerTest, SealWithoutHeadroomCountsTheCopy) {
  util::Rng rng(407);
  const auto a = util::crypto::KeyPair::generate(rng);
  const auto b = util::crypto::KeyPair::generate(rng);
  FrameSealer alice(a);
  const Address dst = Address::from_public_key(b.public_key());
  const std::vector<std::uint8_t> plain(128, 0x11);
  // No headroom: seal still works, but the forced reallocation is
  // visible in the zero-copy counter (what the bench gate pins at 0).
  auto sealed = alice.seal(util::Buffer::copy_of(plain, /*headroom=*/0),
                           b.public_key(), dst, util::kPacketHeadroom);
  EXPECT_TRUE(FrameSealer::looks_sealed(sealed.as_span()));
  EXPECT_EQ(alice.stats().payload_bytes_copied, plain.size());
  FrameSealer bob(b);
  auto opened = bob.open(std::move(sealed), dst);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->to_vector(), plain);
}

// --- record signatures & cryptographic ownership -----------------------------

TEST(DhtRecordSignature, RoundTripsAndBindsKeyVersionAndValue) {
  util::Rng rng(2024);
  const auto keys = util::crypto::KeyPair::generate(rng);
  const auto key = Address::hash("signed-record");
  Record rec;
  rec.value = util::Buffer::wrap({10, 20, 30});
  rec.ttl = 120;
  rec.version = 41;
  rec.sign(key, keys);
  EXPECT_TRUE(rec.is_signed());
  EXPECT_TRUE(rec.verify(key));
  // The signature covers the record's own DHT key: a valid record cannot
  // be replanted under a different key.
  EXPECT_FALSE(rec.verify(Address::hash("other-key")));
}

TEST(DhtRecordSignature, TamperedValueRejected) {
  util::Rng rng(2025);
  const auto keys = util::crypto::KeyPair::generate(rng);
  const auto key = Address::hash("tamper-proof");
  Record rec;
  rec.value = util::Buffer::wrap({1, 2, 3, 4});
  rec.sign(key, keys);
  ASSERT_TRUE(rec.verify(key));
  rec.value.patch_u8(2, rec.value[2] ^ 0x01);  // flip one payload bit
  EXPECT_FALSE(rec.verify(key));
}

TEST(DhtRecordSignature, StaleVersionReplayRejected) {
  util::Rng rng(2026);
  const auto keys = util::crypto::KeyPair::generate(rng);
  const auto key = Address::hash("replay-proof");
  Record rec;
  rec.value = util::Buffer::wrap({7});
  rec.version = 100;
  rec.sign(key, keys);
  ASSERT_TRUE(rec.verify(key));
  // Re-stamping an old record (the replay primitive: capture a signed
  // record, bump the version to dominate the current one) invalidates
  // the signature, because it covers the version.
  rec.version = 200;
  EXPECT_FALSE(rec.verify(key));
}

TEST(DhtRecordSignature, KeyBoundValueMustClaimSignersAddress) {
  util::Rng rng(2027);
  const auto victim = util::crypto::KeyPair::generate(rng);
  const auto attacker = util::crypto::KeyPair::generate(rng);
  const auto key = Address::hash("arp-10.0.0.7");
  const auto victim_addr = Address::from_public_key(victim.public_key());
  // An attacker binds the victim's overlay address with its own
  // perfectly valid key: the signature verifies, but kKeyBound demands
  // the claimed address derive from the *signing* key.
  Record forged;
  forged.value = util::Buffer::copy_of(victim_addr.bytes());
  forged.flags |= Record::kKeyBound;
  forged.sign(key, attacker);
  EXPECT_FALSE(forged.verify(key));
  // The honest equivalent passes.
  Record honest;
  honest.value = util::Buffer::copy_of(
      Address::from_public_key(attacker.public_key()).bytes());
  honest.flags |= Record::kKeyBound;
  honest.sign(key, attacker);
  EXPECT_TRUE(honest.verify(key));
}

/// Key-addressed overlay with per-node identities: every DHT write is
/// signed, so ownership is enforced at the storing node.
struct SignedDhtFixture : ::testing::Test {
  OverlayFixture f;
  std::vector<std::unique_ptr<Dht>> dhts;

  void SetUp() override {
    f.build(6, TransportAddress::Proto::kUdp, /*seed=*/77,
            /*key_addressed=*/true);
    f.start_all();
    ASSERT_TRUE(f.converge());
    for (auto& n : f.nodes) dhts.push_back(std::make_unique<Dht>(*n));
  }

  std::uint64_t total_owner_rejects() const {
    std::uint64_t n = 0;
    for (const auto& d : dhts) n += d->stats().owner_rejects;
    return n;
  }
};

TEST_F(SignedDhtFixture, ForeignCreateOnHeldKeyIsRejected) {
  const auto key = Address::hash("lease-172.16.1.9");
  bool ok = false;
  dhts[1]->create(key, {1, 2, 3}, [&](bool k) { ok = k; });
  // The freshly converged owner defers creates until min_owner_age; give
  // the retry loop room to land.
  f.net.loop().run_until(f.net.loop().now() + seconds(12));
  ASSERT_TRUE(ok);
  // The hijack attempt: another identity tries to claim the held key.
  bool hijack = true;
  dhts[2]->create(key, {9, 9, 9}, [&](bool k) { hijack = k; });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  EXPECT_FALSE(hijack);
  EXPECT_GE(total_owner_rejects(), 1u);
  // The stored record still carries the first owner's value.
  std::optional<std::vector<std::uint8_t>> got;
  dhts[3]->get(key, [&](auto v) { got = record_value(std::move(v)); });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(SignedDhtFixture, ForeignPutCannotOverwriteSignedRecord) {
  const auto key = Address::hash("owned-binding");
  bool ok = false;
  dhts[0]->put(key, {5}, [&](bool k) { ok = k; });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(ok);
  // Unlike create, put() has overwrite semantics — but a live signed
  // record only yields to its own owner, so the overwrite is refused.
  bool stomp = true;
  dhts[4]->put(key, {6}, [&](bool k) { stomp = k; });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  EXPECT_FALSE(stomp);
  EXPECT_GE(total_owner_rejects(), 1u);
  std::optional<std::vector<std::uint8_t>> got;
  dhts[2]->get(key, [&](auto v) { got = record_value(std::move(v)); });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (std::vector<std::uint8_t>{5}));
  // The owner itself can still overwrite.
  bool again = false;
  dhts[0]->put(key, {5, 5}, [&](bool k) { again = k; });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  EXPECT_TRUE(again);
}

TEST_F(SignedDhtFixture, SignedReleaseFreesKeyForNewOwner) {
  const auto key = Address::hash("released-lease");
  bool ok = false;
  dhts[1]->create(key, {1}, [&](bool k) { ok = k; });
  // min_owner_age deferral on the young owner, as above.
  f.net.loop().run_until(f.net.loop().now() + seconds(12));
  ASSERT_TRUE(ok);
  bool released = false;
  dhts[1]->release(key, [&](bool k) { released = k; });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  EXPECT_TRUE(released);
  // A different identity can now claim the key without waiting out the
  // record TTL.
  bool reclaimed = false;
  dhts[2]->create(key, {2}, [&](bool k) { reclaimed = k; });
  f.net.loop().run_until(f.net.loop().now() + seconds(10));
  EXPECT_TRUE(reclaimed);
}

TEST_F(SignedDhtFixture, SignedRecordRoundTripsOwnerKeyToReaders) {
  const auto key = Address::hash("keyed-binding");
  bool ok = false;
  dhts[5]->put(key, {42}, [&](bool k) { ok = k; });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(ok);
  std::optional<Record> got;
  dhts[2]->get(key, [&](auto v) { got = std::move(v); });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->is_signed());
  // The reader learns the writer's public key — how resolvers find the
  // encryption key behind a lease/binding — and it derives the writer's
  // overlay address.
  EXPECT_EQ(got->owner, f.nodes[5]->identity().keys.public_key());
  EXPECT_EQ(Address::from_public_key(got->owner), f.nodes[5]->address());
  EXPECT_TRUE(got->verify(key));
}

// --- batched fan-out sends ---------------------------------------------------

struct BatchSendFixture : ::testing::Test {
  OverlayFixture f;

  void SetUp() override {
    f.build(5, TransportAddress::Proto::kUdp);
    f.start_all();
    ASSERT_TRUE(f.converge());
  }
};

TEST_F(BatchSendFixture, SendBatchDeliversToAllWithOneSocketCrossing) {
  std::vector<std::vector<std::uint8_t>> got(f.nodes.size());
  for (std::size_t i = 1; i < f.nodes.size(); ++i) {
    f.nodes[i]->set_handler(PacketType::kAppData,
                            [&got, i](const Packet& pkt) {
                              got[i] = pkt.payload().to_vector();
                            });
  }
  std::vector<std::uint8_t> value(1200, 0x3C);
  auto payload = util::Buffer::copy_of(value);
  std::vector<Address> dsts(f.addrs.begin() + 1, f.addrs.end());

  const auto& c = f.hosts[0]->stack().counters();
  const auto calls_before = c.udp_send_calls;
  const auto copied_before = c.payload_bytes_copied;
  // A fan-out send is synchronous down to the socket: the counters move
  // before the loop runs again, so background maintenance cannot blur
  // the assertion.
  EXPECT_EQ(f.nodes[0]->send(Destination::fanout(dsts),
                             OutboundFrame(PacketType::kAppData,
                                           payload.share())),
            dsts.size());
  EXPECT_EQ(c.udp_send_calls - calls_before, 1u)
      << "fan-out to 4 destinations should cross the UDP socket once";
  EXPECT_EQ(c.payload_bytes_copied - copied_before, 0u)
      << "the shared payload buffer must never be duplicated on the host";

  f.net.loop().run_until(f.net.loop().now() + seconds(2));
  for (std::size_t i = 1; i < f.nodes.size(); ++i) {
    EXPECT_EQ(got[i], value) << "destination " << i;
  }
}

TEST_F(BatchSendFixture, SendBatchIncludesLocalDelivery) {
  std::vector<std::uint8_t> local;
  f.nodes[0]->set_handler(PacketType::kAppData, [&](const Packet& pkt) {
    local = pkt.payload().to_vector();
  });
  std::vector<Address> dsts{f.addrs[0], f.addrs[1]};
  auto payload = util::Buffer::copy_of(std::vector<std::uint8_t>{9, 9, 9});
  EXPECT_EQ(f.nodes[0]->send(Destination::fanout(dsts),
                             OutboundFrame(PacketType::kAppData,
                                           payload.share())),
            2u);
  EXPECT_EQ(local, (std::vector<std::uint8_t>{9, 9, 9}));
}

TEST_F(BatchSendFixture, DhtReplicationCopiesNoPayloadBytes) {
  std::vector<std::unique_ptr<Dht>> dhts;
  for (auto& n : f.nodes) dhts.push_back(std::make_unique<Dht>(*n));
  std::uint64_t copied_before = 0;
  for (auto* h : f.hosts) {
    copied_before += h->stack().counters().payload_bytes_copied;
  }
  const auto key = Address::hash("zero-copy-replication");
  bool put_ok = false;
  dhts[1]->put(key, std::vector<std::uint8_t>(900, 0x42),
               [&](bool ok) { put_ok = ok; });
  f.net.loop().run_until(f.net.loop().now() + seconds(5));
  ASSERT_TRUE(put_ok);
  std::size_t copies = 0;
  for (const auto& d : dhts) copies += d->local_records();
  EXPECT_GE(copies, 2u);  // owner + at least one replica
  // The whole put — routed request, replication fan-out, response —
  // crossed every stack without a payload memcpy.
  std::uint64_t copied_after = 0;
  for (auto* h : f.hosts) {
    copied_after += h->stack().counters().payload_bytes_copied;
  }
  EXPECT_EQ(copied_after - copied_before, 0u);
}

}  // namespace
}  // namespace ipop::brunet
