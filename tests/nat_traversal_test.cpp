// NAT traversal: the full NAT-type pair matrix (direct / punched /
// relayed asserted per pair), reflexive-address discovery, the
// port-forwarded rendezvous, mixed-transport links, punch-timer lifetime
// under mid-punch node death, and the relay path's zero-copy contract.
//
// The expectations encode RFC 3489 punchability physics:
//   * a full cone accepts any inbound packet on an established mapping —
//     the peer dials the observed address directly;
//   * cone-cone pairs (restricted / port-restricted) punch: the
//     overlay-coordinated simultaneous open makes each side's probe look
//     like the reply to the other's outbound packet;
//   * restricted-cone <-> symmetric punches because the restricted cone
//     filters on IP only and the symmetric NAT's per-destination mapping
//     still comes from the same IP;
//   * port-restricted <-> symmetric and symmetric <-> symmetric CANNOT
//     punch (the filter wants the exact port the symmetric NAT just
//     rewrote) — the linker must fall back to a relay tunnel through a
//     mutual neighbor.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "brunet/node.hpp"
#include "brunet/relay_edge.hpp"
#include "net/topology.hpp"

namespace ipop::brunet {
namespace {

using util::milliseconds;
using util::seconds;

net::Ipv4Address ip(const char* s) { return net::Ipv4Address::parse(s); }

/// Expected traversal outcome for a NAT-type pair.
enum class Outcome { kDirect, kPunched, kRelayed };

// seed (public 8.0.0.1) -- switch -- natA -- nodeA (192.168.1.2)
//                                \-- natB -- nodeB (192.168.2.2)
struct TraversalEnv {
  net::Network net{317};
  net::Host* seed_host = nullptr;
  net::Host* pub2_host = nullptr;
  net::Host* host_a = nullptr;
  net::Host* host_b = nullptr;
  net::NatBox* nat_a = nullptr;
  net::NatBox* nat_b = nullptr;
  std::unique_ptr<BrunetNode> seed;
  std::unique_ptr<BrunetNode> pub2;
  std::unique_ptr<BrunetNode> node_a;
  std::unique_ptr<BrunetNode> node_b;
  /// When set before build(), a second public node joins at 8.0.0.2 —
  /// giving relay-tunnel linkers a runner-up carrier to pre-arm as
  /// backup (the failover test needs two public candidates).
  bool second_public = false;

  void build(net::NatType type_a, net::NatType type_b,
             TransportAddress::Proto proto_a =
                 TransportAddress::Proto::kUdp,
             TransportAddress::Proto proto_b =
                 TransportAddress::Proto::kUdp) {
    auto& sw = net.add_switch("internet");
    sim::LinkConfig lan;
    lan.delay = milliseconds(2);
    seed_host = &net.add_host("seed");
    net.connect_to_switch(seed_host->stack(), {"eth0", ip("8.0.0.1"), 24},
                          sw, lan);
    auto make_site = [&](const char* name, net::NatType t, const char* priv,
                         const char* gw, const char* pub,
                         net::NatBox** nat_out) -> net::Host* {
      auto& nat = net.add_nat(std::string(name) + "-nat", t);
      auto& h = net.add_host(name);
      net.connect(h.stack(), {"eth0", ip(priv), 24}, nat.stack(),
                  {"in", ip(gw), 24}, lan);
      net.connect_to_switch(nat.stack(), {"out", ip(pub), 24}, sw, lan);
      h.stack().add_route(net::Ipv4Prefix::parse("0.0.0.0/0"), 0, ip(gw));
      nat.stack().add_route(net::Ipv4Prefix::parse("0.0.0.0/0"), 1,
                            ip("8.0.0.1"));
      *nat_out = &nat;
      return &h;
    };
    host_a = make_site("a", type_a, "192.168.1.2", "192.168.1.254",
                       "8.0.0.10", &nat_a);
    host_b = make_site("b", type_b, "192.168.2.2", "192.168.2.254",
                       "8.0.0.20", &nat_b);

    util::Rng rng(55);
    NodeConfig cfg;
    cfg.transport = TransportAddress::Proto::kUdp;
    seed = std::make_unique<BrunetNode>(*seed_host, Address::random(rng),
                                        cfg);
    const TransportAddress first_seed_ta{TransportAddress::Proto::kUdp,
                                         ip("8.0.0.1"), 17001};
    if (second_public) {
      pub2_host = &net.add_host("pub2");
      net.connect_to_switch(pub2_host->stack(),
                            {"eth0", ip("8.0.0.2"), 24}, sw, lan);
      pub2 = std::make_unique<BrunetNode>(*pub2_host, Address::random(rng),
                                          cfg);
      pub2->add_seed(first_seed_ta);
    }
    cfg.transport = proto_a;
    node_a = std::make_unique<BrunetNode>(*host_a, Address::random(rng),
                                          cfg);
    cfg.transport = proto_b;
    node_b = std::make_unique<BrunetNode>(*host_b, Address::random(rng),
                                          cfg);
    const TransportAddress seed_ta{TransportAddress::Proto::kUdp,
                                   ip("8.0.0.1"), 17001};
    node_a->add_seed(seed_ta);
    node_b->add_seed(seed_ta);
  }

  void start_and_run(util::Duration d = seconds(60)) {
    seed->start();
    if (pub2) pub2->start();
    node_a->start();
    node_b->start();
    net.loop().run_until(d);
  }
};

// --- the 4x4 pair matrix ----------------------------------------------------

struct MatrixCase {
  net::NatType a;
  net::NatType b;
  Outcome expect;
};

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string n = std::string(net::nat_type_name(info.param.a)) + "_" +
                  net::nat_type_name(info.param.b);
  for (auto& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

struct TraversalMatrix : TraversalEnv,
                         ::testing::TestWithParam<MatrixCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllPairs, TraversalMatrix,
    ::testing::Values(
        // Any pair with a full cone side is directly dialable: the other
        // side reaches the advertised reflexive address unassisted.
        MatrixCase{net::NatType::kFullCone, net::NatType::kFullCone,
                   Outcome::kDirect},
        MatrixCase{net::NatType::kFullCone, net::NatType::kRestrictedCone,
                   Outcome::kDirect},
        MatrixCase{net::NatType::kFullCone,
                   net::NatType::kPortRestrictedCone, Outcome::kDirect},
        MatrixCase{net::NatType::kFullCone, net::NatType::kSymmetric,
                   Outcome::kDirect},
        // Filtered-filtered cone pairs need the coordinated punch.
        MatrixCase{net::NatType::kRestrictedCone,
                   net::NatType::kRestrictedCone, Outcome::kPunched},
        MatrixCase{net::NatType::kRestrictedCone,
                   net::NatType::kPortRestrictedCone, Outcome::kPunched},
        MatrixCase{net::NatType::kPortRestrictedCone,
                   net::NatType::kPortRestrictedCone, Outcome::kPunched},
        // IP-only filtering keeps rc-sym punchable...
        MatrixCase{net::NatType::kRestrictedCone, net::NatType::kSymmetric,
                   Outcome::kPunched},
        // ...but port filtering against a per-destination mapping is
        // unpunchable: the linker must tunnel through the seed.
        MatrixCase{net::NatType::kPortRestrictedCone,
                   net::NatType::kSymmetric, Outcome::kRelayed},
        MatrixCase{net::NatType::kSymmetric, net::NatType::kSymmetric,
                   Outcome::kRelayed}),
    case_name);

TEST_P(TraversalMatrix, PairConnectsWithExpectedPath) {
  const MatrixCase& c = GetParam();
  build(c.a, c.b);
  start_and_run();

  const Connection* ab = node_a->table().find(node_b->address());
  const Connection* ba = node_b->table().find(node_a->address());
  ASSERT_NE(ab, nullptr) << "A->B link missing through "
                         << net::nat_type_name(c.a) << " / "
                         << net::nat_type_name(c.b);
  ASSERT_NE(ba, nullptr) << "B->A link missing";
  ASSERT_NE(ab->edge, nullptr);
  ASSERT_NE(ba->edge, nullptr);

  const bool ab_relayed =
      ab->edge->remote().proto == TransportAddress::Proto::kRelay;
  const bool ba_relayed =
      ba->edge->remote().proto == TransportAddress::Proto::kRelay;
  switch (c.expect) {
    case Outcome::kDirect:
    case Outcome::kPunched:
      EXPECT_FALSE(ab_relayed) << "punchable pair fell back to relay";
      EXPECT_FALSE(ba_relayed);
      break;
    case Outcome::kRelayed:
      EXPECT_TRUE(ab_relayed) << "unpunchable pair linked directly?";
      EXPECT_TRUE(ba_relayed);
      EXPECT_GE(node_a->stats().links_relayed +
                    node_b->stats().links_relayed,
                1u);
      break;
  }
  if (c.expect == Outcome::kPunched) {
    // The link needed punch assistance: at least one side established
    // after its first dial round, with a punch exchange in flight.
    EXPECT_GE(node_a->stats().links_punched +
                  node_b->stats().links_punched,
              1u)
        << "filtered pair linked without the punch path";
  }
}

// --- reflexive discovery ----------------------------------------------------

TEST(NatReflexive, HandshakesDiscoverTranslatedAddressAndClass) {
  // fc-sym so the symmetric node holds DIRECT edges to two peers (seed
  // and the full-cone node): classification needs two vantage points to
  // see the per-destination mappings diverge — behind a single edge a
  // symmetric NAT is indistinguishable from a cone, by design.
  TraversalEnv f;
  f.build(net::NatType::kFullCone, net::NatType::kSymmetric);
  f.start_and_run(seconds(30));

  // The decentralized STUN: peers echoed back the translated address, so
  // the cone node advertises its public mapping alongside the private one.
  bool a_advertises_public = false;
  for (const auto& ta : f.node_a->local_addresses()) {
    if (ta.ip == ip("8.0.0.10")) a_advertises_public = true;
    EXPECT_NE(ta.proto, TransportAddress::Proto::kRelay);
  }
  EXPECT_TRUE(a_advertises_public)
      << "cone node never learned its reflexive address";

  // Self-classification: one stable mapping reads cone, per-destination
  // mappings read symmetric, the public seed sees itself untranslated.
  EXPECT_EQ(f.node_a->nat_class(), NatClass::kCone);
  EXPECT_EQ(f.node_b->nat_class(), NatClass::kSymmetric);
  EXPECT_EQ(f.seed->nat_class(), NatClass::kOpen);
}

// --- port-forwarded rendezvous ----------------------------------------------

TEST(NatPortForward, NattedSeedIsJoinableThroughForwardedPort) {
  // The hostile soak's bootstrap shape: even the rendezvous node sits
  // behind a NAT, reachable only through a static port forward.
  TraversalEnv f;
  f.build(net::NatType::kFullCone, net::NatType::kPortRestrictedCone);
  f.nat_a->add_port_forward(net::IpProto::kUdp, 17001,
                            {ip("192.168.1.2"), 17001});
  // B bootstraps off A's forwarded public endpoint, not the public seed.
  f.node_b = std::make_unique<BrunetNode>(*f.host_b, f.node_b->address(),
                                          f.node_b->config());
  f.node_b->add_seed({TransportAddress::Proto::kUdp, ip("8.0.0.10"),
                      17001});
  f.node_a->start();
  f.node_b->start();
  f.net.loop().run_until(seconds(30));
  EXPECT_TRUE(f.node_a->table().contains(f.node_b->address()));
  EXPECT_TRUE(f.node_b->table().contains(f.node_a->address()));
}

// --- mixed transports -------------------------------------------------------

TEST(NatMixedTransport, TcpNodeLinksIntoUdpOverlay) {
  TraversalEnv f;
  f.build(net::NatType::kFullCone, net::NatType::kFullCone,
          TransportAddress::Proto::kUdp, TransportAddress::Proto::kTcp);
  f.start_and_run(seconds(60));
  const Connection* ab = f.node_a->table().find(f.node_b->address());
  ASSERT_NE(ab, nullptr) << "cross-transport link never formed";
  ASSERT_NE(ab->edge, nullptr);
  EXPECT_NE(ab->edge->remote().proto, TransportAddress::Proto::kRelay);
  // The TCP-only node's candidates carry its protocol; somebody had to
  // dial through a lazily created secondary transport.
  EXPECT_GE(f.node_a->stats().links_cross_proto +
                f.node_b->stats().links_cross_proto +
                f.node_b->stats().bootstrap_cross_proto,
            1u);
}

// --- punch-timer lifetime under mid-punch death -----------------------------

TEST(NatPunchLifetime, TargetDiesMidPunchWithoutDanglingTimers) {
  // Both sides port-restricted: the link can only complete via the punch
  // exchange, so killing B the moment A has a punch in flight leaves A's
  // retry/backoff timers pointing at a corpse.  The AliveToken guards on
  // those timers must let them fire into a no-op (ASan/TSan jobs turn a
  // use-after-free here into a hard failure), and A must abandon the
  // attempt rather than retry forever.
  TraversalEnv f;
  f.build(net::NatType::kPortRestrictedCone,
          net::NatType::kPortRestrictedCone);
  f.seed->start();
  f.node_a->start();
  f.node_b->start();
  bool punching = false;
  for (int i = 0; i < 600 && !punching; ++i) {
    f.net.loop().run_until(f.net.loop().now() + milliseconds(100));
    punching = f.node_a->stats().punch_requests_sent > 0 ||
               f.node_b->stats().punch_requests_sent > 0;
  }
  ASSERT_TRUE(punching) << "punch exchange never started";
  f.node_b->stop();  // crash mid-punch: no departure notice
  f.net.loop().run_until(f.net.loop().now() + seconds(90));

  EXPECT_TRUE(f.node_a->started());
  EXPECT_FALSE(f.node_a->table().contains(f.node_b->address()))
      << "dead punch target still in the connection table";
  // The ring with the seed survives the aborted punch.
  EXPECT_TRUE(f.node_a->table().contains(f.seed->address()));
  EXPECT_TRUE(f.seed->table().contains(f.node_a->address()));
}

// --- relay path zero-copy ---------------------------------------------------

TEST(NatRelayZeroCopy, TunneledTrafficCopiesNothingAndGrowsHeadroom) {
  TraversalEnv f;
  f.build(net::NatType::kSymmetric, net::NatType::kSymmetric);
  f.start_and_run();
  const Connection* ab = f.node_a->table().find(f.node_b->address());
  ASSERT_NE(ab, nullptr);
  ASSERT_NE(ab->edge, nullptr);
  ASSERT_EQ(ab->edge->remote().proto, TransportAddress::Proto::kRelay);

  // Push overlay traffic across the tunnel both ways.
  int answered = 0;
  for (int i = 0; i < 8; ++i) {
    f.node_a->request(f.node_b->address(), PacketType::kPing,
                      RoutingMode::kExact, {1, 2, 3},
                      [&](std::optional<Packet> resp) {
                        if (resp.has_value()) ++answered;
                      });
    f.node_b->request(f.node_a->address(), PacketType::kPing,
                      RoutingMode::kExact, {4, 5, 6},
                      [&](std::optional<Packet> resp) {
                        if (resp.has_value()) ++answered;
                      });
    f.net.loop().run_until(f.net.loop().now() + seconds(1));
  }
  EXPECT_GE(answered, 8) << "tunneled overlay traffic not flowing";

  // The seed carried wrapped frames; nobody copied a byte wrapping them.
  EXPECT_GE(f.seed->stats().relay_forwarded, 1u);
  for (BrunetNode* n : {f.seed.get(), f.node_a.get(), f.node_b.get()}) {
    EXPECT_EQ(n->stats().relay_wrap_bytes_copied, 0u)
        << n->address().to_hex().substr(0, 8)
        << ": relay wrap fell off the zero-copy path";
  }
  // Per-path headroom (buffer-ownership rule 6): a node holding a relay
  // tunnel budgets for the extra encapsulation layer up front — its send
  // headroom covers the tunnel edge's full downstream stack (wrapper
  // header + the carrying edge's own budget).
  EXPECT_GE(f.node_a->send_headroom(), ab->edge->headroom());
  EXPECT_GT(ab->edge->headroom(), Packet::kHeaderSize);
  EXPECT_FALSE(f.node_a->relay_edges().empty());
}

// --- relay failover ---------------------------------------------------------

// With two public carrier candidates on the ring, the relay linker
// pre-arms the runner-up as backup.  When the active carrier departs,
// the tunnel must swap onto the backup's direct edge (relay_failovers
// ticks) and keep carrying overlay traffic — not collapse and force a
// full re-link.
TEST(NatRelayFailover, TunnelSwapsToPreArmedBackupWhenCarrierLeaves) {
  TraversalEnv f;
  f.second_public = true;
  f.build(net::NatType::kSymmetric, net::NatType::kSymmetric);
  f.start_and_run();

  const Connection* ab = f.node_a->table().find(f.node_b->address());
  ASSERT_NE(ab, nullptr);
  ASSERT_NE(ab->edge, nullptr);
  ASSERT_EQ(ab->edge->remote().proto, TransportAddress::Proto::kRelay);
  auto it = f.node_a->relay_edges().find(f.node_b->address());
  ASSERT_NE(it, f.node_a->relay_edges().end());
  const std::shared_ptr<RelayEdge> re = it->second;
  ASSERT_NE(re->backup_relay(), Address{})
      << "no backup carrier armed despite two public candidates";
  const Address active = re->relay();
  ASSERT_TRUE(active == f.seed->address() || active == f.pub2->address());

  int answered = 0;
  auto ping_both_ways = [&] {
    f.node_a->request(f.node_b->address(), PacketType::kPing,
                      RoutingMode::kExact, {1, 2, 3},
                      [&](std::optional<Packet> resp) {
                        if (resp.has_value()) ++answered;
                      });
    f.node_b->request(f.node_a->address(), PacketType::kPing,
                      RoutingMode::kExact, {4, 5, 6},
                      [&](std::optional<Packet> resp) {
                        if (resp.has_value()) ++answered;
                      });
    f.net.loop().run_until(f.net.loop().now() + seconds(1));
  };
  for (int i = 0; i < 4; ++i) ping_both_ways();
  ASSERT_GE(answered, 4) << "tunnel not carrying traffic before failover";

  // The active carrier leaves gracefully: its kDeparting notice closes
  // the via edge on both tunnel endpoints while the tunnel itself is
  // still fresh — exactly the window the pre-armed backup exists for.
  BrunetNode* carrier =
      active == f.seed->address() ? f.seed.get() : f.pub2.get();
  BrunetNode* survivor =
      carrier == f.seed.get() ? f.pub2.get() : f.seed.get();
  carrier->leave();
  f.net.loop().run_until(f.net.loop().now() + seconds(10));

  EXPECT_GE(f.node_a->stats().relay_failovers +
                f.node_b->stats().relay_failovers,
            1u)
      << "carrier death did not trigger a via swap";
  ASSERT_TRUE(f.node_a->table().contains(f.node_b->address()))
      << "tunnel died instead of failing over";
  EXPECT_EQ(re->relay(), survivor->address());
  EXPECT_TRUE(re->is_up());

  answered = 0;
  for (int i = 0; i < 6; ++i) ping_both_ways();
  EXPECT_GE(answered, 6) << "failed-over tunnel not carrying traffic";
}

}  // namespace
}  // namespace ipop::brunet
