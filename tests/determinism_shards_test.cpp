// Determinism pin for the sharded engine on the full IPOP stack.
//
// One seeded churn scenario — hosts on a proxy-ARP LAN, DHCP-over-DHT
// self-configuration, scripted leaves/crashes/rejoins — is run with 1, 2
// and 8 shards; the event-trace digest (sha1 over every delivery's
// (at, stream, seq, size) chain) and the global event count must be
// bit-for-bit identical.  This is the acceptance test for the engine's
// conservative-window protocol: any cross-shard ordering leak, stamp
// drift or rogue direct-schedule shows up as a digest mismatch.
//
// The multi-shard legs also make this the TSan workout for the sharded
// path (CI job sanitize/thread runs the whole suite).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ipop/node.hpp"
#include "net/topology.hpp"

namespace ipop {
namespace {

using util::microseconds;
using util::seconds;

// TSan executes ~10-20x slower; a smaller ring exercises the same
// machinery while keeping the three legs inside the ctest timeout.
#if defined(__SANITIZE_THREAD__)
constexpr int kNodes = 96;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr int kNodes = 96;
#else
constexpr int kNodes = 512;
#endif
#else
constexpr int kNodes = 512;
#endif

net::Ipv4Address underlay_ip(int i) {
  const auto u = static_cast<std::uint32_t>(i);
  return net::Ipv4Address(10, static_cast<std::uint8_t>(u / 62500),
                          static_cast<std::uint8_t>((u / 250) % 250),
                          static_cast<std::uint8_t>(u % 250 + 1));
}

struct ChurnRun {
  std::string digest;
  std::uint64_t events = 0;
  std::uint64_t configured = 0;
};

ChurnRun run_churn(std::size_t shards) {
  net::Network net{/*seed=*/5};
  auto& sw = net.add_switch("core");
  sw.set_arp_suppression(true);
  sim::LinkConfig lan;
  lan.delay = microseconds(200);

  std::vector<net::Host*> hosts;
  for (int i = 0; i < kNodes; ++i) {
    auto& h = net.add_host("c" + std::to_string(i));
    net.connect_to_switch(h.stack(), {"eth0", underlay_ip(i), 8}, sw, lan);
    hosts.push_back(&h);
  }
  net.plan_shards(shards);
  net.engine().set_tracing(true);

  std::vector<std::unique_ptr<core::IpopNode>> nodes;
  for (int i = 0; i < kNodes; ++i) {
    core::IpopConfig cfg;
    cfg.use_dhcp = true;
    cfg.dhcp.renew_interval = seconds(30);
    cfg.dhcp.pool_size = 4096;
    cfg.overlay.near_per_side = 2;
    cfg.overlay.shortcut_target = 6;
    cfg.dht.replicas = 3;
    cfg.overlay.edge_idle_ping = seconds(2);
    cfg.overlay.edge_timeout = seconds(6);
    cfg.cpu_per_packet = microseconds(50);
    cfg.sched_latency = microseconds(200);
    auto node = std::make_unique<core::IpopNode>(*hosts[(std::size_t)i], cfg);
    if (i > 0) {
      node->add_seed({brunet::TransportAddress::Proto::kUdp,
                      hosts[0]->stack().interface_ip(0), 17001});
    }
    nodes.push_back(std::move(node));
  }

  // Staggered mass join, then a settling stretch.
  const std::size_t batch = std::max<std::size_t>(1, nodes.size() / 32);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i]->start();
    if ((i + 1) % batch == 0) net.run_for(util::milliseconds(250));
  }
  net.run_for(seconds(40));

  // Scripted churn: graceful leave, crash, and a rejoin of each — fixed
  // script, so every leg replays the identical membership history.
  nodes[5]->leave();
  nodes[9]->stop();
  net.run_for(seconds(10));
  nodes[5]->start();
  net.run_for(seconds(10));
  nodes[9]->start();
  net.run_for(seconds(15));

  ChurnRun out;
  out.digest = net.engine().trace_digest();
  out.events = net.engine().events_processed();
  for (const auto& n : nodes) {
    if (n->self_configured()) ++out.configured;
  }
  return out;
}

TEST(ShardDeterminismTest, DigestIdenticalForShards128) {
  const ChurnRun r1 = run_churn(1);
  const ChurnRun r2 = run_churn(2);
  const ChurnRun r8 = run_churn(8);

  // The scenario has to be non-trivial for the pin to mean anything.
  EXPECT_GT(r1.configured, static_cast<std::uint64_t>(kNodes) * 9 / 10);
  EXPECT_GT(r1.events, 100000u);

  EXPECT_EQ(r1.digest, r2.digest);
  EXPECT_EQ(r1.digest, r8.digest);
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_EQ(r1.events, r8.events);
  EXPECT_EQ(r1.configured, r2.configured);
  EXPECT_EQ(r1.configured, r8.configured);
}

}  // namespace
}  // namespace ipop
