// Integration tests for the host stack: ARP, ICMP echo, UDP sockets,
// routing/forwarding, TTL, MTU, ping tool.
#include <gtest/gtest.h>

#include "net/ping.hpp"
#include "net/topology.hpp"

namespace ipop::net {
namespace {

using util::milliseconds;
using util::seconds;

Ipv4Address ip(const char* s) { return Ipv4Address::parse(s); }

/// Two hosts on one switch.
struct LanFixture : ::testing::Test {
  Network net{1};
  Host* a = nullptr;
  Host* b = nullptr;

  void SetUp() override {
    auto& sw = net.add_switch("sw");
    a = &net.add_host("a");
    b = &net.add_host("b");
    sim::LinkConfig lan;
    lan.delay = util::microseconds(50);
    net.connect_to_switch(a->stack(), {"eth0", ip("10.0.0.1"), 24}, sw, lan);
    net.connect_to_switch(b->stack(), {"eth0", ip("10.0.0.2"), 24}, sw, lan);
  }
};

TEST_F(LanFixture, ArpResolutionThenEcho) {
  int replies = 0;
  a->stack().set_echo_reply_handler(
      [&](Ipv4Address src, const IcmpMessage&) {
        EXPECT_EQ(src, ip("10.0.0.2"));
        ++replies;
      });
  a->stack().send_echo_request(ip("10.0.0.2"), 1, 1);
  net.loop().run_until(seconds(2));
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(b->stack().counters().icmp_echo_replied, 1u);
}

TEST_F(LanFixture, SecondEchoSkipsArp) {
  int replies = 0;
  a->stack().set_echo_reply_handler(
      [&](Ipv4Address, const IcmpMessage&) { ++replies; });
  a->stack().send_echo_request(ip("10.0.0.2"), 1, 1);
  net.loop().run_until(seconds(1));
  const auto t0 = net.loop().now();
  a->stack().send_echo_request(ip("10.0.0.2"), 1, 2);
  net.loop().run_until(t0 + milliseconds(100));
  EXPECT_EQ(replies, 2);
}

TEST_F(LanFixture, ArpForUnknownHostFailsAfterRetries) {
  a->stack().send_echo_request(ip("10.0.0.99"), 1, 1);
  net.loop().run_until(seconds(10));
  EXPECT_EQ(a->stack().counters().dropped_arp_fail, 1u);
}

TEST_F(LanFixture, UdpDelivery) {
  auto rx = b->stack().udp_bind(5000);
  ASSERT_NE(rx, nullptr);
  std::vector<std::uint8_t> got;
  Ipv4Address got_src;
  std::uint16_t got_port = 0;
  rx->set_receive_handler(
      [&](Ipv4Address src, std::uint16_t sport, std::vector<std::uint8_t> d) {
        got_src = src;
        got_port = sport;
        got = std::move(d);
      });
  auto tx = a->stack().udp_bind(0);
  ASSERT_NE(tx, nullptr);
  EXPECT_GE(tx->port(), 32768);
  tx->send_to(ip("10.0.0.2"), 5000, {1, 2, 3});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(got_src, ip("10.0.0.1"));
  EXPECT_EQ(got_port, tx->port());
}

TEST_F(LanFixture, UdpBidirectional) {
  auto sa = a->stack().udp_bind(1000);
  auto sb = b->stack().udp_bind(2000);
  int a_got = 0, b_got = 0;
  sa->set_receive_handler([&](Ipv4Address, std::uint16_t,
                              std::vector<std::uint8_t>) { ++a_got; });
  sb->set_receive_handler(
      [&](Ipv4Address src, std::uint16_t sport, std::vector<std::uint8_t>) {
        ++b_got;
        sb->send_to(src, sport, {42});
      });
  sa->send_to(ip("10.0.0.2"), 2000, {1});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(a_got, 1);
}

TEST_F(LanFixture, UdpToClosedPortTriggersIcmpUnreachable) {
  int errors = 0;
  a->stack().set_icmp_error_handler(
      [&](Ipv4Address, const IcmpMessage& msg) {
        EXPECT_EQ(msg.type, IcmpType::kDestUnreachable);
        EXPECT_EQ(msg.code, 3);
        ++errors;
      });
  auto tx = a->stack().udp_bind(0);
  tx->send_to(ip("10.0.0.2"), 4444, {1});
  net.loop().run_until(seconds(2));
  EXPECT_EQ(errors, 1);
}

TEST_F(LanFixture, UdpBadChecksumDroppedGoodChecksumDelivered) {
  auto rx = b->stack().udp_bind(5000);
  int got = 0;
  rx->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) { ++got; });

  // A datagram with a valid pseudo-header checksum is delivered.
  UdpDatagram d;
  d.src_port = 4000;
  d.dst_port = 5000;
  d.payload = {1, 2, 3};
  Ipv4Packet good;
  good.hdr.proto = IpProto::kUdp;
  good.hdr.src = ip("10.0.0.1");
  good.hdr.dst = ip("10.0.0.2");
  good.payload =
      util::Buffer::wrap(d.encode(good.hdr.src, good.hdr.dst));
  a->stack().send_ip(std::move(good));
  net.loop().run_until(seconds(1));
  EXPECT_EQ(got, 1);

  // The same datagram with a corrupted nonzero checksum is dropped and
  // counted — it must not be silently accepted as it used to be.
  auto bytes = d.encode(ip("10.0.0.1"), ip("10.0.0.2"));
  bytes[6] ^= 0x5A;
  Ipv4Packet bad;
  bad.hdr.proto = IpProto::kUdp;
  bad.hdr.src = ip("10.0.0.1");
  bad.hdr.dst = ip("10.0.0.2");
  bad.payload = util::Buffer::wrap(std::move(bytes));
  const auto dropped_before = b->stack().counters().dropped_checksum;
  a->stack().send_ip(std::move(bad));
  net.loop().run_until(seconds(2));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(b->stack().counters().dropped_checksum, dropped_before + 1);
}

TEST_F(LanFixture, DuplicateUdpBindRejected) {
  auto s1 = a->stack().udp_bind(7000);
  auto s2 = a->stack().udp_bind(7000);
  EXPECT_NE(s1, nullptr);
  EXPECT_EQ(s2, nullptr);
  s1->close();
  auto s3 = a->stack().udp_bind(7000);
  EXPECT_NE(s3, nullptr);
}

TEST_F(LanFixture, LoopbackDelivery) {
  auto rx = a->stack().udp_bind(6000);
  int got = 0;
  rx->set_receive_handler(
      [&](Ipv4Address, std::uint16_t, std::vector<std::uint8_t>) { ++got; });
  auto tx = a->stack().udp_bind(0);
  tx->send_to(ip("10.0.0.1"), 6000, {1});
  net.loop().run_until(seconds(1));
  EXPECT_EQ(got, 1);
}

TEST_F(LanFixture, PingToolCollectsStats) {
  Pinger pinger(a->stack());
  Pinger::Options opts;
  opts.count = 20;
  opts.interval = milliseconds(10);
  opts.timeout = milliseconds(500);
  PingResult result;
  bool done = false;
  pinger.run(ip("10.0.0.2"), opts, [&](PingResult r) {
    result = std::move(r);
    done = true;
  });
  net.loop().run_until(seconds(5));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.sent, 20);
  EXPECT_EQ(result.received, 20);
  EXPECT_EQ(result.loss_fraction(), 0.0);
  // LAN RTT should be sub-millisecond with defaults.
  EXPECT_GT(result.rtts_ms.mean(), 0.0);
  EXPECT_LT(result.rtts_ms.mean(), 1.0);
}

/// a -- r1 -- r2 -- b  (two routers in line)
struct RoutedFixture : ::testing::Test {
  Network net{2};
  Host* a = nullptr;
  Host* b = nullptr;
  Host* r1 = nullptr;
  Host* r2 = nullptr;

  void SetUp() override {
    a = &net.add_host("a");
    b = &net.add_host("b");
    r1 = &net.add_router("r1");
    r2 = &net.add_router("r2");
    sim::LinkConfig link;
    link.delay = milliseconds(1);
    net.connect(a->stack(), {"eth0", ip("10.1.0.1"), 24}, r1->stack(),
                {"west", ip("10.1.0.254"), 24}, link);
    net.connect(r1->stack(), {"east", ip("10.2.0.1"), 24}, r2->stack(),
                {"west", ip("10.2.0.2"), 24}, link);
    net.connect(r2->stack(), {"east", ip("10.3.0.254"), 24}, b->stack(),
                {"eth0", ip("10.3.0.1"), 24}, link);
    a->stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0, ip("10.1.0.254"));
    b->stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0, ip("10.3.0.254"));
    r1->stack().add_route(Ipv4Prefix::parse("10.3.0.0/24"), 1, ip("10.2.0.2"));
    r2->stack().add_route(Ipv4Prefix::parse("10.1.0.0/24"), 0, ip("10.2.0.1"));
  }
};

TEST_F(RoutedFixture, EndToEndEchoAcrossRouters) {
  int replies = 0;
  a->stack().set_echo_reply_handler(
      [&](Ipv4Address, const IcmpMessage&) { ++replies; });
  a->stack().send_echo_request(ip("10.3.0.1"), 9, 1);
  net.loop().run_until(seconds(5));
  EXPECT_EQ(replies, 1);
  EXPECT_GE(r1->stack().counters().forwarded, 2u);  // request + reply
  EXPECT_GE(r2->stack().counters().forwarded, 2u);
}

TEST_F(RoutedFixture, RttReflectsLinkDelays) {
  Pinger pinger(a->stack());
  Pinger::Options opts;
  opts.count = 5;
  opts.interval = milliseconds(50);
  opts.timeout = milliseconds(500);
  PingResult result;
  pinger.run(ip("10.3.0.1"), opts, [&](PingResult r) { result = std::move(r); });
  net.loop().run_until(seconds(5));
  ASSERT_EQ(result.received, 5);
  // 3 links x 1 ms each way = 6 ms, plus processing.
  EXPECT_GT(result.rtts_ms.mean(), 6.0);
  EXPECT_LT(result.rtts_ms.mean(), 8.0);
}

TEST_F(RoutedFixture, TtlExpiryGeneratesTimeExceeded) {
  int time_exceeded = 0;
  a->stack().set_icmp_error_handler(
      [&](Ipv4Address src, const IcmpMessage& msg) {
        if (msg.type == IcmpType::kTimeExceeded) {
          EXPECT_EQ(src, ip("10.2.0.2"));  // expired at r2
          ++time_exceeded;
        }
      });
  IcmpMessage echo;
  echo.type = IcmpType::kEchoRequest;
  echo.id = 5;
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kIcmp;
  pkt.hdr.dst = ip("10.3.0.1");
  pkt.hdr.ttl = 2;  // dies at the second router
  pkt.payload = util::Buffer::wrap(echo.encode());
  a->stack().send_ip(std::move(pkt));
  net.loop().run_until(seconds(5));
  EXPECT_EQ(time_exceeded, 1);
}

TEST_F(RoutedFixture, NoRouteGeneratesDestUnreachable) {
  int unreachable = 0;
  a->stack().set_icmp_error_handler(
      [&](Ipv4Address, const IcmpMessage& msg) {
        if (msg.type == IcmpType::kDestUnreachable) ++unreachable;
      });
  a->stack().send_echo_request(ip("99.99.99.99"), 1, 1);
  net.loop().run_until(seconds(5));
  EXPECT_EQ(unreachable, 1);
}

TEST_F(RoutedFixture, MtuExceededDropsPacket) {
  // Shrink r1's east MTU below the packet size.
  // (Interfaces cannot be reconfigured; send an oversized packet instead
  // by using a payload larger than the 1500 default on a's interface.)
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kUdp;
  pkt.hdr.dst = ip("10.3.0.1");
  UdpDatagram d;
  d.src_port = 1;
  d.dst_port = 2;
  d.payload.assign(2000, 0xAA);
  pkt.payload = util::Buffer::wrap(d.encode());
  const auto before = a->stack().counters().dropped_mtu;
  a->stack().send_ip(std::move(pkt));
  net.loop().run_until(seconds(1));
  EXPECT_EQ(a->stack().counters().dropped_mtu, before + 1);
}

TEST(StackRoutingTest, LongestPrefixMatchWins) {
  Network net{3};
  Host& h = net.add_host("h");
  Host& r = net.add_router("r");
  sim::LinkConfig link;
  net.connect(h.stack(), {"eth0", ip("10.0.0.1"), 24}, r.stack(),
              {"a", ip("10.0.0.2"), 24}, link);
  net.connect(h.stack(), {"eth1", ip("10.9.0.1"), 24}, r.stack(),
              {"b", ip("10.9.0.2"), 24}, link);
  // Default via eth0 but a /8 via eth1: /8 is longer than /0.
  h.stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0, ip("10.0.0.2"));
  h.stack().add_route(Ipv4Prefix::parse("44.0.0.0/8"), 1, ip("10.9.0.2"));
  EXPECT_EQ(h.stack().source_ip_for(ip("44.1.2.3")), ip("10.9.0.1"));
  EXPECT_EQ(h.stack().source_ip_for(ip("45.1.2.3")), ip("10.0.0.1"));
  EXPECT_EQ(h.stack().source_ip_for(ip("10.0.0.9")), ip("10.0.0.1"));
}

TEST(StackRoutingTest, InterfaceLookupByName) {
  Network net{4};
  Host& h = net.add_host("h");
  sim::LinkConfig link;
  Host& r = net.add_router("r");
  net.connect(h.stack(), {"tap0", ip("172.16.0.1"), 16}, r.stack(),
              {"x", ip("172.16.0.2"), 16}, link);
  ASSERT_TRUE(h.stack().interface_by_name("tap0").has_value());
  EXPECT_EQ(*h.stack().interface_by_name("tap0"), 0u);
  EXPECT_FALSE(h.stack().interface_by_name("eth7").has_value());
}

// --- sendmmsg-style UDP batch ------------------------------------------------

TEST_F(LanFixture, UdpBatchSharesPayloadAcrossDatagrams) {
  auto rx1 = b->stack().udp_bind(7001);
  auto rx2 = b->stack().udp_bind(7002);
  auto rx3 = b->stack().udp_bind(7003);
  std::vector<std::vector<std::uint8_t>> got;
  auto handler = [&](Ipv4Address, std::uint16_t, util::Buffer data) {
    got.push_back(data.to_vector());
  };
  rx1->set_receive_handler(UdpSocket::BufferReceiveHandler(handler));
  rx2->set_receive_handler(UdpSocket::BufferReceiveHandler(handler));
  rx3->set_receive_handler(UdpSocket::BufferReceiveHandler(handler));

  auto tx = a->stack().udp_bind(5000);
  // One shared payload buffer; each datagram gets its own 4-byte header
  // segment in front of it.
  auto payload = util::Buffer::copy_of(std::vector<std::uint8_t>(1000, 0x5A));
  std::vector<UdpSendItem> items;
  for (std::uint16_t i = 0; i < 3; ++i) {
    util::BufferChain chain;
    chain.append(util::Buffer::copy_of(std::vector<std::uint8_t>(4, i)));
    chain.append(payload.share());
    items.push_back(UdpSendItem{ip("10.0.0.2"),
                                static_cast<std::uint16_t>(7001 + i),
                                std::move(chain)});
  }
  const auto& c = a->stack().counters();
  const auto calls_before = c.udp_send_calls;
  const auto copied_before = c.payload_bytes_copied;
  EXPECT_EQ(tx->send_batch(items), 3u);
  // One socket-API crossing for the whole batch, zero CPU payload
  // copies; the bytes came together in the NIC-style gather pass.
  EXPECT_EQ(c.udp_send_calls - calls_before, 1u);
  EXPECT_EQ(c.payload_bytes_copied - copied_before, 0u);
  EXPECT_EQ(c.payload_bytes_gathered, 3u * 1004u);

  net.loop().run_until(seconds(1));
  ASSERT_EQ(got.size(), 3u);
  for (std::uint8_t i = 0; i < 3; ++i) {
    std::vector<std::uint8_t> expect(4, i);
    expect.insert(expect.end(), 1000, 0x5A);
    EXPECT_EQ(got[i], expect);
  }
}

TEST_F(LanFixture, BatchAgainstClosedSocketIsDroppedSafely) {
  auto tx = a->stack().udp_bind(5000);
  std::vector<UdpSendItem> items;
  items.push_back(UdpSendItem{
      ip("10.0.0.2"), 7001,
      util::BufferChain(util::Buffer::copy_of(std::vector<std::uint8_t>(8, 1)))});
  tx->close();
  // A batch pending across teardown must not touch the dead stack.
  EXPECT_EQ(tx->send_batch(items), 0u);
  EXPECT_EQ(tx->datagrams_sent(), 0u);
}

TEST_F(LanFixture, ReceiverClosedWhileBatchInFlightDoesNotDeliver) {
  auto rx = b->stack().udp_bind(7001);
  int delivered = 0;
  rx->set_receive_handler(UdpSocket::BufferReceiveHandler(
      [&](Ipv4Address, std::uint16_t, util::Buffer) { ++delivered; }));
  auto tx = a->stack().udp_bind(5000);
  std::vector<UdpSendItem> items;
  for (int i = 0; i < 3; ++i) {
    items.push_back(UdpSendItem{
        ip("10.0.0.2"), 7001,
        util::BufferChain(
            util::Buffer::copy_of(std::vector<std::uint8_t>(16, 0x2)))});
  }
  EXPECT_EQ(tx->send_batch(items), 3u);
  // The datagrams are in flight; the receiver goes away before they
  // land.  The demux must drop them (port unreachable), never invoke
  // the dead socket's handler.
  rx->close();
  net.loop().run_until(seconds(1));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rx->datagrams_received(), 0u);
}

}  // namespace
}  // namespace ipop::net
