// Unit tests for the wire-format codecs: Ethernet, ARP, IPv4, ICMP, UDP, TCP.
#include <gtest/gtest.h>

#include "net/arp.hpp"
#include "net/ethernet.hpp"
#include "net/icmp.hpp"
#include "net/ipv4.hpp"
#include "net/tcp_wire.hpp"
#include "net/udp.hpp"

namespace ipop::net {
namespace {

TEST(MacTest, FormatAndBroadcast) {
  MacAddress m{{0x02, 0x1b, 0x00, 0x00, 0x00, 0x05}};
  EXPECT_EQ(m.to_string(), "02:1b:00:00:00:05");
  EXPECT_FALSE(m.is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
}

TEST(MacTest, FromIndexUnique) {
  EXPECT_NE(MacAddress::from_index(1), MacAddress::from_index(2));
  // Locally administered unicast: low bits of first octet are 0b10.
  EXPECT_EQ(MacAddress::from_index(7).octets[0] & 0x03, 0x02);
}

TEST(EthernetTest, RoundTrip) {
  EthernetFrame f;
  f.dst = MacAddress::from_index(1);
  f.src = MacAddress::from_index(2);
  f.type = EtherType::kArp;
  f.payload = {1, 2, 3, 4};
  auto bytes = f.encode();
  EXPECT_EQ(bytes.size(), EthernetFrame::kHeaderSize + 4);
  auto g = EthernetFrame::decode(bytes);
  EXPECT_EQ(g.dst, f.dst);
  EXPECT_EQ(g.src, f.src);
  EXPECT_EQ(g.type, EtherType::kArp);
  EXPECT_EQ(g.payload, f.payload);
}

TEST(EthernetTest, TruncatedThrows) {
  std::vector<std::uint8_t> short_frame(10, 0);
  EXPECT_THROW(EthernetFrame::decode(short_frame), util::ParseError);
}

TEST(Ipv4AddressTest, ParseFormat) {
  auto a = Ipv4Address::parse("172.16.0.2");
  EXPECT_EQ(a.to_string(), "172.16.0.2");
  EXPECT_EQ(a.value, 0xAC100002u);
  EXPECT_EQ(Ipv4Address(172, 16, 0, 2), a);
}

TEST(Ipv4AddressTest, ParseRejectsMalformed) {
  EXPECT_THROW(Ipv4Address::parse("256.1.1.1"), util::ParseError);
  EXPECT_THROW(Ipv4Address::parse("1.2.3"), util::ParseError);
  EXPECT_THROW(Ipv4Address::parse("a.b.c.d"), util::ParseError);
  EXPECT_THROW(Ipv4Address::parse(""), util::ParseError);
}

TEST(Ipv4PrefixTest, ContainsAndMask) {
  auto p = Ipv4Prefix::parse("172.16.0.0/16");
  EXPECT_TRUE(p.contains(Ipv4Address::parse("172.16.255.1")));
  EXPECT_FALSE(p.contains(Ipv4Address::parse("172.17.0.1")));
  EXPECT_EQ(p.to_string(), "172.16.0.0/16");
  auto all = Ipv4Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(Ipv4Address::parse("8.8.8.8")));
  auto host = Ipv4Prefix::parse("10.0.0.1/32");
  EXPECT_TRUE(host.contains(Ipv4Address::parse("10.0.0.1")));
  EXPECT_FALSE(host.contains(Ipv4Address::parse("10.0.0.2")));
}

TEST(Ipv4PrefixTest, ParseRejectsMalformed) {
  EXPECT_THROW(Ipv4Prefix::parse("10.0.0.0"), util::ParseError);
  EXPECT_THROW(Ipv4Prefix::parse("10.0.0.0/33"), util::ParseError);
}

TEST(ChecksumTest, KnownVector) {
  // Example from RFC 1071 discussions.
  std::vector<std::uint8_t> data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(ChecksumTest, OddLength) {
  // Odd trailing byte is padded with zero: 0x0102 + 0x0300 = 0x0402.
  std::vector<std::uint8_t> data{0x01, 0x02, 0x03};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0x0402));
}

TEST(Ipv4PacketTest, RoundTrip) {
  Ipv4Packet p;
  p.hdr.src = Ipv4Address::parse("10.0.0.1");
  p.hdr.dst = Ipv4Address::parse("10.0.0.2");
  p.hdr.proto = IpProto::kUdp;
  p.hdr.ttl = 31;
  p.payload = util::Buffer::wrap({9, 9, 9});
  auto bytes = p.encode();
  auto q = Ipv4Packet::decode(util::BufferView(bytes));
  EXPECT_EQ(q.hdr.src, p.hdr.src);
  EXPECT_EQ(q.hdr.dst, p.hdr.dst);
  EXPECT_EQ(q.hdr.proto, IpProto::kUdp);
  EXPECT_EQ(q.hdr.ttl, 31);
  EXPECT_EQ(q.payload.view(), p.payload.view());
}

TEST(Ipv4PacketTest, CorruptedHeaderChecksumRejected) {
  Ipv4Packet p;
  p.hdr.src = Ipv4Address::parse("10.0.0.1");
  p.hdr.dst = Ipv4Address::parse("10.0.0.2");
  auto bytes = p.encode();
  bytes[8] ^= 0xFF;  // flip the TTL
  EXPECT_THROW(Ipv4Packet::decode(util::BufferView(bytes)), util::ParseError);
}

TEST(Ipv4PacketTest, BadLengthRejected) {
  Ipv4Packet p;
  p.hdr.src = Ipv4Address::parse("10.0.0.1");
  p.hdr.dst = Ipv4Address::parse("10.0.0.2");
  p.payload = util::Buffer::wrap({1, 2, 3, 4});
  auto bytes = p.encode();
  bytes.resize(22);  // truncate below total_length
  EXPECT_THROW(Ipv4Packet::decode(util::BufferView(bytes)), util::ParseError);
}

TEST(ArpTest, RoundTrip) {
  ArpMessage m;
  m.op = ArpOp::kRequest;
  m.sender_mac = MacAddress::from_index(3);
  m.sender_ip = Ipv4Address::parse("10.0.0.3");
  m.target_ip = Ipv4Address::parse("10.0.0.9");
  auto bytes = m.encode();
  EXPECT_EQ(bytes.size(), 28u);
  auto g = ArpMessage::decode(bytes);
  EXPECT_EQ(g.op, ArpOp::kRequest);
  EXPECT_EQ(g.sender_mac, m.sender_mac);
  EXPECT_EQ(g.sender_ip, m.sender_ip);
  EXPECT_EQ(g.target_ip, m.target_ip);
}

TEST(IcmpTest, EchoRoundTrip) {
  IcmpMessage m;
  m.type = IcmpType::kEchoRequest;
  m.id = 0x1234;
  m.seq = 7;
  m.payload = {0xDE, 0xAD};
  auto bytes = m.encode();
  auto g = IcmpMessage::decode(bytes);
  EXPECT_EQ(g.type, IcmpType::kEchoRequest);
  EXPECT_EQ(g.id, 0x1234);
  EXPECT_EQ(g.seq, 7);
  EXPECT_EQ(g.payload, m.payload);
  EXPECT_TRUE(g.is_echo());
}

TEST(IcmpTest, ChecksumValidated) {
  IcmpMessage m;
  m.type = IcmpType::kEchoReply;
  auto bytes = m.encode();
  bytes[4] ^= 0x01;
  EXPECT_THROW(IcmpMessage::decode(bytes), util::ParseError);
}

TEST(UdpTest, RoundTrip) {
  UdpDatagram d;
  d.src_port = 1111;
  d.dst_port = 53;
  d.payload = {5, 6, 7, 8, 9};
  auto bytes = d.encode();
  auto g = UdpDatagram::decode(bytes, Ipv4Address::parse("10.0.0.1"),
                               Ipv4Address::parse("10.0.0.2"));
  EXPECT_EQ(g.src_port, 1111);
  EXPECT_EQ(g.dst_port, 53);
  EXPECT_EQ(g.payload, d.payload);
}

TEST(UdpTest, BadLengthRejected) {
  UdpDatagram d;
  d.payload = {1, 2, 3};
  auto bytes = d.encode();
  bytes[4] = 0;
  bytes[5] = 2;  // length < header size
  EXPECT_THROW(UdpDatagram::decode(bytes, Ipv4Address{}, Ipv4Address{}),
               util::ParseError);
}

TEST(UdpTest, NonzeroChecksumValidated) {
  const auto src = Ipv4Address::parse("10.0.0.1");
  const auto dst = Ipv4Address::parse("10.0.0.2");
  UdpDatagram d;
  d.src_port = 1111;
  d.dst_port = 53;
  d.payload = {5, 6, 7};
  auto bytes = d.encode(src, dst);  // real pseudo-header checksum
  EXPECT_NE(bytes[6] | bytes[7], 0);
  auto g = UdpDatagram::decode(bytes, src, dst);
  EXPECT_EQ(g.payload, d.payload);
  // A flipped payload bit no longer matches the checksum...
  bytes[10] ^= 0x01;
  EXPECT_THROW(UdpDatagram::decode(bytes, src, dst), util::ParseError);
  bytes[10] ^= 0x01;
  // ...and so does a wrong pseudo-header (different source address).
  EXPECT_THROW(
      UdpDatagram::decode(bytes, Ipv4Address::parse("9.9.9.9"), dst),
      util::ParseError);
}

TEST(UdpTest, ZeroChecksumMeansNotComputed) {
  // RFC 768: checksum 0 = "no checksum"; corrupt-looking payloads must
  // still decode when the sender opted out.
  const auto src = Ipv4Address::parse("10.0.0.1");
  const auto dst = Ipv4Address::parse("10.0.0.2");
  UdpDatagram d;
  d.src_port = 1;
  d.dst_port = 2;
  d.payload = {0xFF, 0x00, 0xFF};
  auto bytes = d.encode();
  EXPECT_EQ(bytes[6], 0);
  EXPECT_EQ(bytes[7], 0);
  auto g = UdpDatagram::decode(bytes, src, dst);
  EXPECT_EQ(g.payload, d.payload);
}

TEST(ChecksumTest, IncrementalUpdateMatchesRecompute) {
  // checksum_update (RFC 1624) must agree with a full re-sum after a
  // 16-bit word substitution.
  std::vector<std::uint8_t> data{0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC};
  const std::uint16_t before = internet_checksum(data);
  const std::uint16_t old_word = 0x5678;
  const std::uint16_t new_word = 0xCAFE;
  data[2] = 0xCA;
  data[3] = 0xFE;
  EXPECT_EQ(checksum_update(before, old_word, new_word),
            internet_checksum(data));
  // Identity substitution is a no-op.
  EXPECT_EQ(checksum_update(before, old_word, old_word), before);
}

TEST(TcpWireTest, RoundTripWithChecksum) {
  const auto src = Ipv4Address::parse("1.2.3.4");
  const auto dst = Ipv4Address::parse("5.6.7.8");
  TcpSegment s;
  s.src_port = 4000;
  s.dst_port = 80;
  s.seq = 0xAABBCCDD;
  s.ack = 0x11223344;
  s.flags.syn = true;
  s.flags.ack = true;
  s.window = 8192;
  s.payload = {1, 2, 3};
  auto bytes = s.encode(src, dst);
  auto g = TcpSegment::decode(bytes, src, dst);
  EXPECT_EQ(g.src_port, 4000);
  EXPECT_EQ(g.dst_port, 80);
  EXPECT_EQ(g.seq, 0xAABBCCDDu);
  EXPECT_EQ(g.ack, 0x11223344u);
  EXPECT_TRUE(g.flags.syn);
  EXPECT_TRUE(g.flags.ack);
  EXPECT_FALSE(g.flags.fin);
  EXPECT_EQ(g.window, 8192);
  EXPECT_EQ(g.payload, s.payload);
}

TEST(TcpWireTest, ChecksumCoversPseudoHeader) {
  const auto src = Ipv4Address::parse("1.2.3.4");
  const auto dst = Ipv4Address::parse("5.6.7.8");
  TcpSegment s;
  auto bytes = s.encode(src, dst);
  // Decoding with different addresses must fail the pseudo-header checksum.
  EXPECT_THROW(
      TcpSegment::decode(bytes, Ipv4Address::parse("9.9.9.9"), dst),
      util::ParseError);
}

TEST(TcpWireTest, FlagsEncodeDecode) {
  TcpFlags f;
  f.syn = f.fin = f.psh = true;
  auto g = TcpFlags::decode(f.encode());
  EXPECT_TRUE(g.syn);
  EXPECT_TRUE(g.fin);
  EXPECT_TRUE(g.psh);
  EXPECT_FALSE(g.ack);
  EXPECT_FALSE(g.rst);
  EXPECT_EQ(g.to_string(), "SYN,FIN,PSH");
}

TEST(TcpWireTest, SequenceComparisonsWrap) {
  EXPECT_TRUE(seq_lt(0xFFFFFFF0u, 0x10u));  // wraps forward
  EXPECT_TRUE(seq_gt(0x10u, 0xFFFFFFF0u));
  EXPECT_TRUE(seq_le(5u, 5u));
  EXPECT_TRUE(seq_ge(5u, 5u));
  EXPECT_FALSE(seq_lt(5u, 5u));
}

}  // namespace
}  // namespace ipop::net
