// Unit tests for src/sim: event loop, CPU scheduler, link, switch.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/cpu.hpp"
#include "sim/event_loop.hpp"
#include "sim/link.hpp"
#include "sim/switch.hpp"
#include "util/lifetime.hpp"

namespace ipop::sim {
namespace {

using util::microseconds;
using util::milliseconds;
using util::seconds;

// --- EventLoop ---------------------------------------------------------------

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  loop.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  loop.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), milliseconds(30));
}

TEST(EventLoopTest, FifoAtEqualTimestamps) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.schedule_at(milliseconds(1), [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoopTest, CancelAfterRunIsHarmless) {
  EventLoop loop;
  auto id = loop.schedule_at(milliseconds(1), [] {});
  loop.run();
  loop.cancel(id);  // must not crash or corrupt
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoopTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(milliseconds(10), [&] { ++count; });
  loop.schedule_at(milliseconds(20), [&] { ++count; });
  loop.schedule_at(milliseconds(30), [&] { ++count; });
  loop.run_until(milliseconds(20));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.now(), milliseconds(20));
  loop.run();
  EXPECT_EQ(count, 3);
}

TEST(EventLoopTest, EventsScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.schedule_after(milliseconds(1), recurse);
  };
  loop.schedule_after(milliseconds(1), recurse);
  loop.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now(), milliseconds(5));
}

TEST(EventLoopTest, PastTimestampsClampToNow) {
#ifndef NDEBUG
  // Debug builds treat a past timestamp as a cross-shard synchronization
  // bug and abort so the offender is caught at its source.
  EventLoop loop;
  loop.schedule_at(milliseconds(10), [] {});
  loop.run();
  EXPECT_DEATH(loop.schedule_at(milliseconds(1), [] {}),
               "schedule into the past");
#else
  // Release builds clamp to now() (late is better than time travel) and
  // count the offence so soaks can assert the count stayed zero.
  EventLoop loop;
  loop.schedule_at(milliseconds(10), [] {});
  loop.run();
  EXPECT_EQ(loop.clamped_schedules(), 0u);
  bool ran = false;
  loop.schedule_at(milliseconds(1), [&] { ran = true; });  // in the past
  loop.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.now(), milliseconds(10));
  EXPECT_EQ(loop.clamped_schedules(), 1u);
#endif
}

TEST(EventLoopTest, StaleIdCannotCancelRecycledSlot) {
  // EventIds carry a generation stamp: once a timer fires, its slot can
  // be recycled by a later schedule, and cancelling the *old* id must not
  // kill the new tenant.
  EventLoop loop;
  bool second = false;
  const auto id1 = loop.schedule_at(milliseconds(1), [] {});
  loop.run();  // id1's slot is released and eligible for reuse
  const auto id2 = loop.schedule_at(milliseconds(2), [&] { second = true; });
  EXPECT_NE(id1, id2);  // generation differs even when the slot is reused
  loop.cancel(id1);     // stale handle: must be a no-op
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_TRUE(second);
}

TEST(EventLoopTest, StopInterruptsRun) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(milliseconds(1), [&] {
    ++count;
    loop.stop();
  });
  loop.schedule_at(milliseconds(2), [&] { ++count; });
  loop.run();
  EXPECT_EQ(count, 1);
  loop.run();
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, CancelledDebrisIsCompacted) {
  // Churn pattern: schedule far-future timers and cancel almost all of
  // them (keepalive/renew timers of departing nodes).  pending() must
  // track live events exactly, and the heap must shed lazily-cancelled
  // slots instead of accumulating them — queue_depth() stays O(pending()).
  EventLoop loop;
  std::vector<EventLoop::EventId> ids;
  constexpr int kRounds = 200;
  constexpr int kPerRound = 100;
  for (int r = 0; r < kRounds; ++r) {
    ids.clear();
    for (int i = 0; i < kPerRound; ++i) {
      ids.push_back(loop.schedule_at(seconds(3600 + r), [] {}));
    }
    // Cancel all but one per round, as a departing node would.
    for (std::size_t i = 1; i < ids.size(); ++i) loop.cancel(ids[i]);
  }
  EXPECT_EQ(loop.pending(), static_cast<std::size_t>(kRounds));
  // 20k cancels against 200 survivors: without compaction queue_depth()
  // would be ~20200.  The lazy-cancel bound is 2x live + the small
  // compaction floor.
  EXPECT_LE(loop.queue_depth(), 2 * loop.pending() + 64);
  // Survivors still run, in order, exactly once.
  std::size_t ran = loop.run();
  EXPECT_EQ(ran, static_cast<std::size_t>(kRounds));
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.queue_depth(), 0u);
}

TEST(EventLoopTest, CancelledTimerNeverFiresAfterOwnerDestruction) {
  // The timer-lifetime pattern the lint pass enforces: an owner whose
  // callback captures `this` must either cancel its EventId on
  // destruction or capture a liveness guard.  Model both and destroy the
  // owner before its deadline — neither callback may touch freed state.
  EventLoop loop;
  int fired = 0;

  struct CancellingOwner {
    EventLoop& loop;
    int& fired;
    EventLoop::EventId id = 0;
    CancellingOwner(EventLoop& l, int& f) : loop(l), fired(f) {
      id = loop.schedule_after(milliseconds(10), [this] { ++fired; });
    }
    ~CancellingOwner() { loop.cancel(id); }
  };
  struct GuardedOwner {
    int& fired;
    util::AliveToken alive_;
    GuardedOwner(EventLoop& l, int& f) : fired(f) {
      l.schedule_after(milliseconds(10),
                       [this, alive = alive_.guard()] {
                         if (!alive) return;
                         ++fired;
                       });
    }
  };

  {
    CancellingOwner a(loop, fired);
    GuardedOwner b(loop, fired);
  }  // both destroyed before their deadlines
  loop.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(loop.pending(), 0u);

  // Control: the same owners left alive past the deadline do fire.
  auto a = std::make_unique<CancellingOwner>(loop, fired);
  auto b = std::make_unique<GuardedOwner>(loop, fired);
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, QueueDepthBoundedUnderCancelHeavyLoad) {
  // Steady-state churn: every tick reschedules a keepalive (cancel the
  // old timer, schedule a replacement) for each of kNodes nodes.  The
  // heap must stay O(live) *throughout* the run, not just after a final
  // drain — an unbounded high-water mark is the regression this guards.
  EventLoop loop;
  constexpr int kNodes = 50;
  constexpr int kTicks = 400;
  std::vector<EventLoop::EventId> keepalive(kNodes, 0);
  for (int n = 0; n < kNodes; ++n) {
    keepalive[n] = loop.schedule_at(seconds(3600), [] {});
  }
  std::size_t max_depth = 0;
  for (int t = 1; t <= kTicks; ++t) {
    loop.run_until(milliseconds(t));
    for (int n = 0; n < kNodes; ++n) {
      loop.cancel(keepalive[n]);
      keepalive[n] = loop.schedule_at(seconds(3600 + t), [] {});
    }
    max_depth = std::max(max_depth, loop.queue_depth());
  }
  EXPECT_EQ(loop.pending(), static_cast<std::size_t>(kNodes));
  // 20k cancels with 50 live events: the lazy-cancel invariant bounds the
  // heap at 2x live + the compaction floor at every observation point.
  EXPECT_LE(max_depth, 2 * static_cast<std::size_t>(kNodes) + 64);
  loop.run();
  EXPECT_EQ(loop.queue_depth(), 0u);
}

// --- CpuScheduler --------------------------------------------------------------

TEST(CpuTest, SerializesWork) {
  EventLoop loop;
  CpuScheduler cpu(loop, "cpu");
  std::vector<std::int64_t> done_at;
  cpu.run(milliseconds(10), [&] { done_at.push_back(loop.now().count()); });
  cpu.run(milliseconds(5), [&] { done_at.push_back(loop.now().count()); });
  loop.run();
  ASSERT_EQ(done_at.size(), 2u);
  EXPECT_EQ(done_at[0], milliseconds(10).count());
  EXPECT_EQ(done_at[1], milliseconds(15).count());  // queued behind first
}

TEST(CpuTest, LoadScalesCost) {
  EventLoop loop;
  CpuScheduler cpu(loop, "cpu");
  cpu.set_load(9.0);  // 10x slowdown
  std::int64_t done = 0;
  cpu.run(milliseconds(10), [&] { done = loop.now().count(); });
  loop.run();
  EXPECT_EQ(done, milliseconds(100).count());
}

TEST(CpuTest, IdleGapsDoNotAccumulate) {
  EventLoop loop;
  CpuScheduler cpu(loop, "cpu");
  std::int64_t done = 0;
  cpu.run(milliseconds(1), [] {});
  loop.run();
  loop.schedule_at(milliseconds(100), [&] {
    cpu.run(milliseconds(2), [&] { done = loop.now().count(); });
  });
  loop.run();
  EXPECT_EQ(done, milliseconds(102).count());
  EXPECT_EQ(cpu.busy_total(), milliseconds(3));
  EXPECT_EQ(cpu.tasks(), 2u);
}

// --- Link -----------------------------------------------------------------------

sim::Frame make_frame(std::size_t size) {
  return sim::Frame::filled(size, 0x5A);
}

TEST(LinkTest, DeliversWithPropagationDelay) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.delay = milliseconds(5);
  cfg.bandwidth_bps = 0;  // no serialization
  Link link(loop, cfg, util::Rng(1));
  std::int64_t arrival = -1;
  link.end_b().set_receiver([&](Frame) { arrival = loop.now().count(); });
  link.end_a().send(make_frame(100));
  loop.run();
  EXPECT_EQ(arrival, milliseconds(5).count());
}

TEST(LinkTest, SerializationDelayMatchesBandwidth) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.delay = Duration{0};
  cfg.bandwidth_bps = 8e6;  // 1 byte per microsecond
  Link link(loop, cfg, util::Rng(1));
  std::int64_t arrival = -1;
  link.end_b().set_receiver([&](Frame) { arrival = loop.now().count(); });
  link.end_a().send(make_frame(1000));
  loop.run();
  EXPECT_EQ(arrival, microseconds(1000).count());
}

TEST(LinkTest, BackToBackFramesQueueBehindEachOther) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.delay = Duration{0};
  cfg.bandwidth_bps = 8e6;
  Link link(loop, cfg, util::Rng(1));
  std::vector<std::int64_t> arrivals;
  link.end_b().set_receiver([&](Frame) { arrivals.push_back(loop.now().count()); });
  link.end_a().send(make_frame(1000));
  link.end_a().send(make_frame(1000));
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], microseconds(1000).count());
  EXPECT_EQ(arrivals[1], microseconds(2000).count());
}

TEST(LinkTest, DropTailQueueOverflow) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.delay = Duration{0};
  cfg.bandwidth_bps = 8e6;
  cfg.queue_bytes = 2500;  // fits two 1000B frames plus change
  Link link(loop, cfg, util::Rng(1));
  int delivered = 0;
  link.end_b().set_receiver([&](Frame) { ++delivered; });
  for (int i = 0; i < 10; ++i) link.end_a().send(make_frame(1000));
  loop.run();
  EXPECT_LT(delivered, 10);
  EXPECT_EQ(link.stats_a_to_b().frames_dropped_queue,
            10u - static_cast<unsigned>(delivered));
}

TEST(LinkTest, RandomLossDropsApproximatelyRate) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.delay = microseconds(1);
  cfg.bandwidth_bps = 0;
  cfg.loss_rate = 0.3;
  Link link(loop, cfg, util::Rng(99));
  int delivered = 0;
  link.end_b().set_receiver([&](Frame) { ++delivered; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) link.end_a().send(make_frame(64));
  loop.run();
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.7, 0.03);
}

TEST(LinkTest, DirectionsAreIndependent) {
  EventLoop loop;
  LinkConfig ab;
  ab.delay = milliseconds(1);
  ab.bandwidth_bps = 0;
  LinkConfig ba;
  ba.delay = milliseconds(7);
  ba.bandwidth_bps = 0;
  Link link(loop, ab, ba, util::Rng(1));
  std::int64_t at_b = -1, at_a = -1;
  link.end_b().set_receiver([&](Frame) { at_b = loop.now().count(); });
  link.end_a().set_receiver([&](Frame) { at_a = loop.now().count(); });
  link.end_a().send(make_frame(10));
  link.end_b().send(make_frame(10));
  loop.run();
  EXPECT_EQ(at_b, milliseconds(1).count());
  EXPECT_EQ(at_a, milliseconds(7).count());
}

TEST(LinkTest, DownLinkDropsEverything) {
  EventLoop loop;
  LinkConfig cfg;
  Link link(loop, cfg, util::Rng(1));
  int delivered = 0;
  link.end_b().set_receiver([&](Frame) { ++delivered; });
  link.set_up(false);
  link.end_a().send(make_frame(10));
  loop.run();
  EXPECT_EQ(delivered, 0);
  link.set_up(true);
  link.end_a().send(make_frame(10));
  loop.run();
  EXPECT_EQ(delivered, 1);
}

TEST(LinkTest, JitterBoundsDelay) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.delay = milliseconds(10);
  cfg.bandwidth_bps = 0;
  cfg.jitter = milliseconds(5);
  Link link(loop, cfg, util::Rng(5));
  std::vector<std::int64_t> arrivals;
  std::int64_t sent_at = 0;
  link.end_b().set_receiver([&](Frame) { arrivals.push_back(loop.now().count()); });
  for (int i = 0; i < 100; ++i) {
    loop.schedule_at(seconds(i), [&link] { link.end_a().send(make_frame(8)); });
  }
  loop.run();
  ASSERT_EQ(arrivals.size(), 100u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    sent_at = seconds(static_cast<std::int64_t>(i)).count();
    const auto delay = arrivals[i] - sent_at;
    EXPECT_GE(delay, milliseconds(10).count());
    EXPECT_LT(delay, milliseconds(15).count());
  }
}

// --- Switch -----------------------------------------------------------------------

struct SwitchFixture : ::testing::Test {
  // Three "hosts" hanging off one switch; frames are hand-rolled
  // [dst6][src6][type2] headers.
  EventLoop loop;
  Switch sw{loop, "sw"};
  std::vector<std::unique_ptr<Link>> links;
  std::vector<std::vector<Frame>> received{3};

  void SetUp() override {
    LinkConfig cfg;
    cfg.delay = microseconds(10);
    for (int i = 0; i < 3; ++i) {
      links.push_back(std::make_unique<Link>(loop, cfg, util::Rng(i + 1)));
      sw.attach(links[i]->end_b());
      links[i]->end_a().set_receiver(
          [this, i](Frame f) { received[i].push_back(std::move(f)); });
    }
  }

  static Frame frame(int dst, int src) {
    Frame f = Frame::filled(64, 0);
    auto set_mac = [&](std::size_t off, int idx) {
      if (idx < 0) {
        std::fill(f.data() + off, f.data() + off + 6, 0xFF);
      } else {
        f[off + 5] = static_cast<std::uint8_t>(idx + 1);
      }
    };
    set_mac(0, dst);
    set_mac(6, src);
    f[12] = 0x08;
    return f;
  }
};

TEST_F(SwitchFixture, FloodsUnknownDestination) {
  links[0]->end_a().send(frame(2, 0));
  loop.run();
  EXPECT_EQ(received[0].size(), 0u);  // never echoed to sender
  EXPECT_EQ(received[1].size(), 1u);
  EXPECT_EQ(received[2].size(), 1u);
}

TEST_F(SwitchFixture, LearnsAndForwardsUnicast) {
  links[2]->end_a().send(frame(-1, 2));  // teach the switch where MAC 2 lives
  loop.run();
  received.assign(3, {});
  links[0]->end_a().send(frame(2, 0));
  loop.run();
  EXPECT_EQ(received[1].size(), 0u);  // no flood: learned port
  EXPECT_EQ(received[2].size(), 1u);
  EXPECT_GE(sw.frames_forwarded(), 1u);
}

TEST_F(SwitchFixture, BroadcastReachesAllOthers) {
  links[1]->end_a().send(frame(-1, 1));
  loop.run();
  EXPECT_EQ(received[0].size(), 1u);
  EXPECT_EQ(received[1].size(), 0u);
  EXPECT_EQ(received[2].size(), 1u);
}

TEST_F(SwitchFixture, RuntFramesDropped) {
  links[0]->end_a().send(Frame::filled(5, 0xAA));
  loop.run();
  EXPECT_EQ(received[1].size(), 0u);
  EXPECT_EQ(received[2].size(), 0u);
}

}  // namespace
}  // namespace ipop::sim
