// util::Buffer / util::BufferView: the zero-copy packet pipeline's
// ownership unit.  Covers headroom prepend round-trips, refcount-verified
// in-place forwarding (no reallocation), copy-on-prepend for shared
// storage, and bounds violations throwing util::ParseError.
#include <gtest/gtest.h>

#include <numeric>

#include "brunet/packet.hpp"
#include "util/buffer.hpp"
#include "util/buffer_chain.hpp"

namespace ipop {
namespace {

using util::Buffer;
using util::BufferChain;
using util::BufferView;
using util::ParseError;

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), std::uint8_t{0});
  return v;
}

// ---------------------------------------------------------------------------
// Buffer basics
// ---------------------------------------------------------------------------

TEST(BufferTest, AllocateReservesHeadroom) {
  Buffer b = Buffer::allocate(100, 64);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.headroom(), 64u);
  EXPECT_EQ(b.tailroom(), 0u);
  EXPECT_EQ(b.use_count(), 1);
  EXPECT_TRUE(b.unique());
}

TEST(BufferTest, WrapAdoptsVectorWithoutCopy) {
  auto v = pattern(32);
  const std::uint8_t* raw = v.data();
  Buffer b = Buffer::wrap(std::move(v));
  EXPECT_EQ(b.size(), 32u);
  EXPECT_EQ(b.data(), raw);  // adopted, not copied
  EXPECT_EQ(b[5], 5);
}

TEST(BufferTest, HeadroomPrependRoundTrips) {
  Buffer b = Buffer::copy_of(pattern(40), /*headroom=*/16);
  const std::uint8_t* payload_ptr = b.data();
  const std::uint8_t header[4] = {0xDE, 0xAD, 0xBE, 0xEF};
  b.prepend(std::span<const std::uint8_t>(header, 4));
  // In place: the payload bytes did not move, the header landed in front.
  EXPECT_EQ(b.size(), 44u);
  EXPECT_EQ(b.headroom(), 12u);
  EXPECT_EQ(b.data() + 4, payload_ptr);
  EXPECT_EQ(b[0], 0xDE);
  EXPECT_EQ(b[4], 0);
  // Round-trip: dropping the header recovers the original payload view.
  b.drop_front(4);
  EXPECT_EQ(b.data(), payload_ptr);
  EXPECT_EQ(b.view(), BufferView(pattern(40)));
  EXPECT_EQ(b.headroom(), 16u);
}

TEST(BufferTest, PrependOnSharedStorageCopiesInsteadOfCorrupting) {
  Buffer b = Buffer::copy_of(pattern(20), /*headroom=*/16);
  Buffer other = b.share();  // storage now referenced twice
  EXPECT_EQ(b.use_count(), 2);
  const std::uint8_t header[2] = {0xAA, 0xBB};
  b.prepend(std::span<const std::uint8_t>(header, 2));
  // The prepend re-allocated: `other` kept its bytes and its storage.
  EXPECT_NE(b.data(), other.data());
  EXPECT_EQ(other.view(), BufferView(pattern(20)));
  EXPECT_EQ(b.size(), 22u);
  EXPECT_EQ(b[0], 0xAA);
  EXPECT_EQ(b.view(2, 20), BufferView(pattern(20)));
}

TEST(BufferTest, GrowFrontWithoutHeadroomReallocatesWithFreshHeadroom) {
  Buffer b = Buffer::wrap(pattern(10));  // no headroom
  b.grow_front(8);
  EXPECT_EQ(b.size(), 18u);
  EXPECT_EQ(b.headroom(), util::kPacketHeadroom);
  EXPECT_EQ(b.view(8, 10), BufferView(pattern(10)));
}

TEST(BufferTest, SubBufferSharesStorage) {
  Buffer b = Buffer::copy_of(pattern(50));
  Buffer mid = b.share(10, 20);
  EXPECT_EQ(b.use_count(), 2);
  EXPECT_EQ(mid.size(), 20u);
  EXPECT_EQ(mid.data(), b.data() + 10);
  EXPECT_EQ(mid[0], 10);
  // Patches through one handle are visible through the other (shared
  // storage is the point) — but writing through a shared handle must be
  // acknowledged explicitly.
  mid.assume_exclusive().patch_u8(0, 0x7F);
  EXPECT_EQ(b[10], 0x7F);
}

TEST(BufferTest, EnsureUniqueClonesSharedStorage) {
  Buffer b = Buffer::copy_of(pattern(16));
  Buffer other = b.share();
  ASSERT_EQ(b.use_count(), 2);
  b.ensure_unique();
  // COW: this handle now owns fresh storage; the other handle's bytes
  // are untouched by subsequent patches.
  EXPECT_EQ(b.use_count(), 1);
  EXPECT_EQ(other.use_count(), 1);
  EXPECT_NE(b.data(), other.data());
  b.patch_u8(3, 0xEE);
  EXPECT_EQ(b[3], 0xEE);
  EXPECT_EQ(other[3], 3);
  // Already-unique handles are left alone (no reallocation).
  const std::uint8_t* ptr = b.data();
  b.ensure_unique();
  EXPECT_EQ(b.data(), ptr);
}

#ifndef NDEBUG
TEST(BufferDeathTest, PatchingSharedStorageWithoutAcknowledgementAsserts) {
  Buffer b = Buffer::copy_of(pattern(8));
  Buffer other = b.share();
  ASSERT_FALSE(b.patchable());
  EXPECT_DEATH(b.patch_u8(0, 0xFF), "ensure_unique|assume_exclusive");
  EXPECT_DEATH(b.patch_u16(0, 0xFFFF), "ensure_unique|assume_exclusive");
  // Either acknowledgement path silences the assertion.
  b.ensure_unique();
  EXPECT_TRUE(b.patchable());
  b.patch_u8(0, 0xFF);
  Buffer c = other.share();
  c.assume_exclusive();
  EXPECT_TRUE(c.patchable());
  c.patch_u16(0, 0xBEEF);
}
#endif

TEST(BufferTest, PatchesAreBoundsChecked) {
  Buffer b = Buffer::copy_of(pattern(4));
  b.patch_u16(2, 0xBEEF);
  EXPECT_EQ(b[2], 0xBE);
  EXPECT_EQ(b[3], 0xEF);
  EXPECT_THROW(b.patch_u8(4, 0), ParseError);
  EXPECT_THROW(b.patch_u16(3, 0), ParseError);
}

TEST(BufferTest, OutOfRangeAccessesThrow) {
  Buffer b = Buffer::copy_of(pattern(8));
  EXPECT_THROW(b[8], ParseError);
  EXPECT_THROW(b.view(4, 5), ParseError);
  EXPECT_THROW(b.share(9, 0), ParseError);
  EXPECT_THROW(b.drop_front(9), ParseError);
  EXPECT_THROW(b.drop_back(9), ParseError);
}

// ---------------------------------------------------------------------------
// BufferView bounds
// ---------------------------------------------------------------------------

TEST(BufferViewTest, BoundsViolationsThrowParseError) {
  auto v = pattern(16);
  BufferView view(v);
  EXPECT_EQ(view.size(), 16u);
  EXPECT_EQ(view[15], 15);
  EXPECT_THROW(view[16], ParseError);
  EXPECT_THROW(view.subview(17), ParseError);
  EXPECT_THROW(view.subview(8, 9), ParseError);
  EXPECT_EQ(view.subview(8, 8)[0], 8);
  EXPECT_EQ(view.subview(16).size(), 0u);
}

TEST(BufferViewTest, EqualityComparesBytes) {
  auto a = pattern(8);
  auto b = pattern(8);
  EXPECT_EQ(BufferView(a), BufferView(b));
  b[3] ^= 1;
  EXPECT_FALSE(BufferView(a) == BufferView(b));
}

// ---------------------------------------------------------------------------
// Zero-copy forwarding (the tentpole's acceptance criterion)
// ---------------------------------------------------------------------------

TEST(PacketZeroCopyTest, ForwardingPatchesTransitFieldsInPlace) {
  brunet::Packet p;
  p.type = brunet::PacketType::kIpTunnel;
  p.ttl = 32;
  util::Rng rng(7);
  p.src = brunet::Address::random(rng);
  p.dst = brunet::Address::random(rng);
  p.set_payload(pattern(1400));

  Buffer wire = p.to_wire();
  const std::uint8_t* storage = wire.data();
  ASSERT_EQ(wire.size(), brunet::Packet::kHeaderSize + 1400);

  // A relay receives the wire buffer: decoding parses the 48-byte header
  // and adopts the buffer — the refcount proves no bytes were copied.
  const long refs_before = wire.use_count();
  brunet::Packet q = brunet::Packet::decode(wire.share());
  EXPECT_EQ(wire.use_count(), refs_before + 1);  // decode added a handle only
  EXPECT_EQ(q.payload().data(), storage + brunet::Packet::kHeaderSize);
  EXPECT_EQ(q.payload(), BufferView(pattern(1400)));

  // Forwarding bumps the hop count and re-emits the *same* buffer.
  ++q.hops;
  Buffer out = q.to_wire();
  EXPECT_EQ(out.data(), storage);  // same storage: zero payload copies
  EXPECT_EQ(out[brunet::Packet::kHopsOffset], 1);
  EXPECT_EQ(wire[brunet::Packet::kHopsOffset], 1);  // in-place patch

  // A second hop repeats the exercise on the already-shared buffer.
  brunet::Packet r = brunet::Packet::decode(out.share());
  EXPECT_EQ(r.hops, 1);
  ++r.hops;
  EXPECT_EQ(r.to_wire().data(), storage);
  EXPECT_EQ(wire[brunet::Packet::kHopsOffset], 2);
}

TEST(PacketZeroCopyTest, HeadroomEncapsulationDoesNotCopyPayload) {
  // A captured tap frame arrives with headroom (as Stack::emit_frame
  // allocates them); encapsulation must prepend the Brunet header into
  // that headroom rather than copying the IP bytes.
  Buffer ip_packet = Buffer::copy_of(pattern(1200), util::kPacketHeadroom);
  const std::uint8_t* payload_ptr = ip_packet.data();

  brunet::Packet p;
  p.type = brunet::PacketType::kIpTunnel;
  p.set_payload(std::move(ip_packet));
  Buffer wire = p.to_wire();
  EXPECT_EQ(wire.data(), payload_ptr - brunet::Packet::kHeaderSize);
  EXPECT_EQ(p.payload().data(), payload_ptr);

  // Unwrapping on delivery is a sub-buffer share, not a copy.
  Buffer unwrapped = p.share_payload();
  EXPECT_EQ(unwrapped.data(), payload_ptr);
  EXPECT_EQ(unwrapped.view(), BufferView(pattern(1200)));
  // ...and it regained the headroom for the next layer's header.
  EXPECT_GE(unwrapped.headroom(), brunet::Packet::kHeaderSize);
}

TEST(PacketZeroCopyTest, TruncatedWireThrows) {
  Buffer junk = Buffer::copy_of(pattern(10));
  EXPECT_THROW(brunet::Packet::decode(junk.share()), ParseError);
}

// ---------------------------------------------------------------------------
// BufferChain: the scatter-gather iovec
// ---------------------------------------------------------------------------

TEST(BufferChainTest, PrependAppendAreHandleTrafficOnly) {
  Buffer payload = Buffer::copy_of(pattern(100));
  const std::uint8_t* payload_ptr = payload.data();
  BufferChain chain;
  chain.append(payload.share());
  Buffer header = Buffer::copy_of(pattern(8));
  const std::uint8_t* header_ptr = header.data();
  chain.prepend(header.share());
  EXPECT_EQ(chain.size(), 108u);
  EXPECT_EQ(chain.segments(), 2u);
  // The segments alias the original storage — nothing moved.
  EXPECT_EQ(chain.segment(0).data(), header_ptr);
  EXPECT_EQ(chain.segment(1).data(), payload_ptr);
  EXPECT_EQ(chain.at(0), 0);
  EXPECT_EQ(chain.at(8), 0);    // first payload byte
  EXPECT_EQ(chain.at(107), 99); // last payload byte
}

TEST(BufferChainTest, EmptyBuffersAreNeverStored) {
  BufferChain chain;
  chain.append(Buffer());
  chain.prepend(Buffer::allocate(0, 16));
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.segments(), 0u);
  chain.append(Buffer::copy_of(pattern(4)));
  EXPECT_EQ(chain.segments(), 1u);
}

TEST(BufferChainTest, GatherCrossesSegmentBoundaries) {
  BufferChain chain;
  auto bytes = pattern(30);
  chain.append(Buffer::copy_of({bytes.data(), 10}));
  chain.append(Buffer::copy_of({bytes.data() + 10, 10}));
  chain.append(Buffer::copy_of({bytes.data() + 20, 10}));
  std::vector<std::uint8_t> out(18);
  chain.gather(7, out);  // spans all three segments
  EXPECT_EQ(out, std::vector<std::uint8_t>(bytes.begin() + 7,
                                           bytes.begin() + 25));
  EXPECT_EQ(chain.to_vector(), bytes);
}

TEST(BufferChainTest, DropFrontUnlinksAndTrims) {
  BufferChain chain;
  auto bytes = pattern(30);
  chain.append(Buffer::copy_of({bytes.data(), 10}));
  chain.append(Buffer::copy_of({bytes.data() + 10, 20}));
  chain.drop_front(15);  // whole first segment + 5 bytes of the second
  EXPECT_EQ(chain.size(), 15u);
  EXPECT_EQ(chain.segments(), 1u);
  EXPECT_EQ(chain.at(0), 15);
  chain.drop_front(15);
  EXPECT_TRUE(chain.empty());
}

TEST(BufferChainTest, LazyCoalesceFlattensOnceAndCaches) {
  BufferChain chain;
  auto bytes = pattern(40);
  chain.append(Buffer::copy_of({bytes.data(), 16}));
  chain.append(Buffer::copy_of({bytes.data() + 16, 24}));
  const Buffer& flat = chain.coalesce();
  EXPECT_EQ(flat.view(), BufferView(bytes));
  EXPECT_EQ(chain.segments(), 1u);
  // Cached: coalescing again returns the same storage.
  const std::uint8_t* flat_ptr = flat.data();
  EXPECT_EQ(chain.coalesce().data(), flat_ptr);
  // Flattened storage carries headroom for downstream prepends.
  EXPECT_GE(chain.segment(0).headroom(), util::kPacketHeadroom);
}

TEST(BufferChainTest, SingleSegmentCoalesceIsZeroCopy) {
  Buffer b = Buffer::copy_of(pattern(12));
  const std::uint8_t* ptr = b.data();
  BufferChain chain(b.share());
  EXPECT_EQ(chain.coalesce().data(), ptr);
}

TEST(BufferChainTest, TryShareWithinOneSegmentAliasesStorage) {
  BufferChain chain;
  auto bytes = pattern(20);
  chain.append(Buffer::copy_of({bytes.data(), 10}));
  chain.append(Buffer::copy_of({bytes.data() + 10, 10}));
  auto sub = chain.try_share(12, 6);
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->data(), chain.segment(1).data() + 2);
  // A range spanning the boundary cannot be shared.
  EXPECT_FALSE(chain.try_share(8, 6).has_value());
}

TEST(BufferChainTest, BoundsViolationsThrow) {
  BufferChain chain;
  chain.append(Buffer::copy_of(pattern(10)));
  std::vector<std::uint8_t> out(4);
  EXPECT_THROW(chain.gather(8, out), ParseError);
  EXPECT_THROW(chain.drop_front(11), ParseError);
  EXPECT_THROW(chain.at(10), ParseError);
  EXPECT_THROW(chain.try_share(6, 6), ParseError);
  EXPECT_THROW(chain.segment(1), ParseError);
}

TEST(BufferChainTest, AppendChainSplicesSegments) {
  BufferChain a;
  a.append(Buffer::copy_of(pattern(5)));
  BufferChain b;
  b.append(Buffer::copy_of(pattern(3)));
  b.append(Buffer::copy_of(pattern(2)));
  a.append(std::move(b));
  EXPECT_EQ(a.segments(), 3u);
  EXPECT_EQ(a.size(), 10u);
}

}  // namespace
}  // namespace ipop
