// Unit tests for src/util: SHA-1, crypto primitives, byte codecs,
// statistics, RNG, tables.
#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/crypto.hpp"
#include "util/random.hpp"
#include "util/sha1.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace ipop::util {
namespace {

// --- SHA-1 (FIPS 180-1 / RFC 3174 vectors) ---------------------------------

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, LongerVector) {
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionA) {
  Sha1 ctx;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  auto digest = ctx.finish();
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(digest.data(), digest.size())),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha1 ctx;
    ctx.update(std::string_view(msg).substr(0, split));
    ctx.update(std::string_view(msg).substr(split));
    EXPECT_EQ(ctx.finish(), sha1(msg)) << "split at " << split;
  }
}

TEST(Sha1Test, BlockBoundaryLengths) {
  // Exercise padding across the 55/56/63/64-byte boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Sha1 ctx;
    ctx.update(msg);
    EXPECT_EQ(ctx.finish(), sha1(msg)) << "len " << len;
  }
}

TEST(Sha1Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha1("172.16.0.2"), sha1("172.16.0.3"));
}

// --- Byte codecs ------------------------------------------------------------

TEST(BytesTest, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(BytesTest, LengthPrefixed) {
  ByteWriter w;
  w.lp_string("hello");
  w.lp_bytes(std::vector<std::uint8_t>{9, 8, 7});
  ByteReader r(w.data());
  EXPECT_EQ(r.lp_string(), "hello");
  EXPECT_EQ(r.lp_bytes(), (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST(BytesTest, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  r.u8();
  EXPECT_THROW(r.u16(), ParseError);
}

TEST(BytesTest, LengthPrefixBeyondBufferThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow
  w.u8(1);
  ByteReader r(w.data());
  EXPECT_THROW(r.lp_bytes(), ParseError);
}

TEST(BytesTest, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u8(5);
  w.patch_u16(0, 0xBEEF);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 0xBEEF);
}

TEST(BytesTest, HexRoundTrip) {
  std::vector<std::uint8_t> data{0x00, 0x7F, 0xFF, 0x12};
  EXPECT_EQ(to_hex(data), "007fff12");
  EXPECT_EQ(from_hex("007fff12"), data);
  EXPECT_EQ(from_hex("007FFF12"), data);
  EXPECT_THROW(from_hex("abc"), ParseError);   // odd length
  EXPECT_THROW(from_hex("zz"), ParseError);    // bad digit
}

TEST(BytesTest, RestAndSkip) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  w.u8(3);
  ByteReader r(w.data());
  r.skip(1);
  auto rest = r.rest_copy();
  EXPECT_EQ(rest, (std::vector<std::uint8_t>{2, 3}));
  EXPECT_EQ(r.remaining(), 0u);
}

// --- Statistics --------------------------------------------------------------

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, RunningStatsMergeMatchesCombined) {
  Rng rng(123);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    double x = rng.normal(10, 3);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(StatsTest, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StatsTest, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(StatsTest, HistogramBinning) {
  Histogram h(0, 10, 10);
  h.add(-5);    // clamps into first bin
  h.add(0.5);
  h.add(9.5);
  h.add(15);    // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[9], 2u);
  EXPECT_NE(h.render().find('#'), std::string::npos);
  EXPECT_NE(h.to_csv().find("bin_lo"), std::string::npos);
}

// --- RNG ----------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(RngTest, ForkIndependentButStable) {
  Rng a(42), b(42);
  Rng fa = a.fork(1);
  Rng fb = b.fork(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa(), fb());
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// --- SHA-512 (FIPS 180-4 vectors) ------------------------------------------

TEST(Sha512Test, EmptyString) {
  EXPECT_EQ(to_hex(crypto::sha512("")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512Test, Abc) {
  EXPECT_EQ(to_hex(crypto::sha512("abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(crypto::sha512(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512Test, IncrementalMatchesOneShot) {
  const std::string msg(300, 'q');
  for (std::size_t split : {0u, 1u, 127u, 128u, 129u, 255u, 300u}) {
    crypto::Sha512 ctx;
    ctx.update(std::string_view(msg).substr(0, split));
    ctx.update(std::string_view(msg).substr(split));
    EXPECT_EQ(ctx.finish(), crypto::sha512(msg)) << "split at " << split;
  }
}

// --- Ed25519 (RFC 8032 section 7.1 vectors) --------------------------------

crypto::KeyPair rfc8032_keypair(const char* seed_hex, const char* pub_hex) {
  const auto seed = from_hex(seed_hex);
  auto kp = crypto::KeyPair::from_seed(seed);
  EXPECT_TRUE(kp.valid());
  EXPECT_EQ(to_hex(kp.public_key().bytes), pub_hex);
  return kp;
}

TEST(Ed25519Test, Rfc8032Test1EmptyMessage) {
  const auto kp = rfc8032_keypair(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
      "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
  const auto sig = kp.sign({});
  EXPECT_EQ(to_hex(sig.bytes),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(crypto::verify(kp.public_key(), {}, sig));
}

TEST(Ed25519Test, Rfc8032Test2OneByteMessage) {
  const auto kp = rfc8032_keypair(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
      "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
  const std::vector<std::uint8_t> msg{0x72};
  const auto sig = kp.sign(msg);
  EXPECT_EQ(to_hex(sig.bytes),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(crypto::verify(kp.public_key(), msg, sig));
}

TEST(Ed25519Test, TamperedMessageOrSignatureRejected) {
  const auto seed = from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto kp = crypto::KeyPair::from_seed(seed);
  std::vector<std::uint8_t> msg{1, 2, 3, 4, 5};
  auto sig = kp.sign(msg);
  ASSERT_TRUE(crypto::verify(kp.public_key(), msg, sig));
  msg[2] ^= 0x01;  // flip one payload bit
  EXPECT_FALSE(crypto::verify(kp.public_key(), msg, sig));
  msg[2] ^= 0x01;
  sig.bytes[10] ^= 0x80;  // flip one signature bit
  EXPECT_FALSE(crypto::verify(kp.public_key(), msg, sig));
}

TEST(Ed25519Test, GenerateFromRngIsDeterministic) {
  Rng a(777), b(777), c(778);
  const auto ka = crypto::KeyPair::generate(a);
  const auto kb = crypto::KeyPair::generate(b);
  const auto kc = crypto::KeyPair::generate(c);
  EXPECT_EQ(ka.public_key(), kb.public_key());
  EXPECT_NE(ka.public_key(), kc.public_key());
}

TEST(Ed25519Test, SharedKeyIsSymmetric) {
  Rng rng(31337);
  const auto a = crypto::KeyPair::generate(rng);
  const auto b = crypto::KeyPair::generate(rng);
  const auto ab = a.shared_key(b.public_key());
  const auto ba = b.shared_key(a.public_key());
  EXPECT_EQ(ab, ba);
  const auto c = crypto::KeyPair::generate(rng);
  EXPECT_NE(ab, a.shared_key(c.public_key()));
}

TEST(StreamXorTest, RoundTripsAndNoncesDiverge) {
  Rng rng(9);
  const auto kp = crypto::KeyPair::generate(rng);
  const auto key = kp.shared_key(kp.public_key());
  std::vector<std::uint8_t> data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const auto original = data;
  crypto::stream_xor(data, key, /*nonce=*/1);
  EXPECT_NE(data, original);
  auto other_nonce = original;
  crypto::stream_xor(other_nonce, key, /*nonce=*/2);
  EXPECT_NE(other_nonce, data) << "nonces must give distinct keystreams";
  crypto::stream_xor(data, key, /*nonce=*/1);  // decrypt = same op
  EXPECT_EQ(data, original);
}

// --- Time helpers ---------------------------------------------------------------

TEST(TimeTest, Conversions) {
  EXPECT_EQ(milliseconds(3).count(), 3'000'000);
  EXPECT_EQ(to_milliseconds(milliseconds(3)), 3.0);
  EXPECT_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_EQ(milliseconds_f(0.5).count(), 500'000);
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(format_duration(nanoseconds(500)), "500ns");
  EXPECT_EQ(format_duration(milliseconds(2)), "2.000ms");
}

// --- Table ------------------------------------------------------------------------

TEST(TableTest, RendersAlignedCells) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_rule();
  t.add_row({"longer-name", "2.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // All lines equally wide.
  std::size_t width = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::percent(0.295, 0), "30%");
}

}  // namespace
}  // namespace ipop::util
