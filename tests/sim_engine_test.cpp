// Unit tests for the sharded engine: channels, the shard planner,
// conservative windows and the determinism machinery (trace digests,
// per-shard rng streams).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "util/random.hpp"

namespace ipop::sim {
namespace {

using util::microseconds;
using util::milliseconds;

// --- Channel -----------------------------------------------------------------

TEST(ChannelTest, DrainMovesStampedEventsAndCounts) {
  Channel ch;
  int ran = 0;
  ch.push({milliseconds(5), /*stream=*/7, /*seq=*/0, /*aux=*/64,
           [&] { ++ran; }});
  ch.push({milliseconds(6), 7, 1, 64, [&] { ++ran; }});
  EXPECT_EQ(ch.events_forwarded(), 0u);  // counted at drain, not push

  std::vector<StampedEvent> out;
  ch.drain(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].at, milliseconds(5));
  EXPECT_EQ(out[0].stream, 7u);
  EXPECT_EQ(out[1].seq, 1u);
  EXPECT_EQ(ch.events_forwarded(), 2u);
  EXPECT_EQ(ran, 0);  // drain transports, never executes

  out.clear();
  ch.drain(out);  // drained channel is empty
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(ch.events_forwarded(), 2u);
}

// --- planner -----------------------------------------------------------------

TEST(ShardedEngineTest, PlannerContractsZeroDelayEdges) {
  // 0 -0ns- 1 -5ms- 2 -0ns- 3 -5ms- 0: the zero-delay pairs must never be
  // cut (that would zero the lookahead), so a 2-way split has exactly the
  // two 5 ms edges in its cut.
  ShardedEngine eng;
  const auto v0 = eng.add_vertex();
  const auto v1 = eng.add_vertex();
  const auto v2 = eng.add_vertex();
  const auto v3 = eng.add_vertex();
  eng.add_edge(v0, v1, Duration{0});
  eng.add_edge(v2, v3, Duration{0});
  eng.add_edge(v1, v2, milliseconds(5));
  eng.add_edge(v3, v0, milliseconds(5));
  eng.plan(2);
  ASSERT_EQ(eng.shards(), 2u);
  EXPECT_EQ(eng.shard_of(v0), eng.shard_of(v1));
  EXPECT_EQ(eng.shard_of(v2), eng.shard_of(v3));
  EXPECT_NE(eng.shard_of(v0), eng.shard_of(v2));
  EXPECT_EQ(eng.lookahead(), milliseconds(5));
}

TEST(ShardedEngineTest, PlannerBalancesEqualRing) {
  // An 8-ring of equal-delay edges under a 4-way split: the balance cap
  // ((V + n - 1) / n = 2) forces four clusters of exactly two vertices.
  ShardedEngine eng;
  std::vector<ShardedEngine::VertexId> v;
  for (int i = 0; i < 8; ++i) v.push_back(eng.add_vertex());
  for (int i = 0; i < 8; ++i) {
    eng.add_edge(v[static_cast<std::size_t>(i)],
                 v[static_cast<std::size_t>((i + 1) % 8)], microseconds(100));
  }
  eng.plan(4);
  ASSERT_EQ(eng.shards(), 4u);
  std::vector<int> load(4, 0);
  for (const auto vid : v) ++load[eng.shard_of(vid)];
  for (int s = 0; s < 4; ++s) EXPECT_EQ(load[static_cast<std::size_t>(s)], 2);
  EXPECT_EQ(eng.lookahead(), microseconds(100));
}

TEST(ShardedEngineTest, SingleShardHasNoCutAndInfiniteLookahead) {
  ShardedEngine eng;
  const auto v0 = eng.add_vertex();
  const auto v1 = eng.add_vertex();
  eng.add_edge(v0, v1, microseconds(10));
  eng.plan(1);
  EXPECT_EQ(eng.shards(), 1u);
  EXPECT_EQ(eng.channel(0, 0), nullptr);
  EXPECT_EQ(eng.lookahead(), Duration::max());
  // An empty engine still advances its clock.
  eng.run_until(milliseconds(3));
  EXPECT_EQ(eng.now(), milliseconds(3));
}

TEST(ShardedEngineTest, MoreShardsThanVerticesClampsShardCount) {
  ShardedEngine eng;
  eng.add_vertex();
  eng.add_vertex();
  eng.plan(8);
  EXPECT_LE(eng.shards(), 2u);
}

// --- cross-shard execution ---------------------------------------------------

TEST(ShardedEngineTest, CrossShardDeliveryArrivesAtStampedTime) {
  ShardedEngine eng;
  const auto v0 = eng.add_vertex();
  const auto v1 = eng.add_vertex();
  eng.add_edge(v0, v1, milliseconds(2));
  eng.plan(2);
  ASSERT_EQ(eng.shards(), 2u);
  const auto s0 = eng.shard_of(v0);
  const auto s1 = eng.shard_of(v1);
  ASSERT_NE(s0, s1);
  ASSERT_NE(eng.channel(s0, s1), nullptr);

  LinkConfig cfg;
  cfg.delay = milliseconds(2);
  cfg.bandwidth_bps = 0;
  Link link(eng.loop(s0), cfg, util::Rng(1));
  link.set_streams(0, 1);
  link.bind(eng.loop(s0), eng.loop(s1), eng.channel(s0, s1),
            eng.channel(s1, s0));

  std::int64_t arrival = -1;
  link.end_b().set_receiver(
      [&](Frame) { arrival = eng.loop(s1).now().count(); });
  eng.loop(s0).schedule_at(milliseconds(1),
                           [&] { link.end_a().send(Frame::filled(64, 1)); });
  eng.run_until(milliseconds(10));
  EXPECT_EQ(arrival, milliseconds(3).count());
  EXPECT_GE(eng.channel_events(), 1u);
  EXPECT_EQ(eng.now(), milliseconds(10));
}

// One scripted ping-pong workload, parameterized by shard count; used to
// pin the bit-for-bit determinism contract at the engine level.
std::string pingpong_digest(std::size_t shards, int bounces,
                            std::uint64_t* events_out = nullptr) {
  ShardedEngine eng;
  const auto v0 = eng.add_vertex();
  const auto v1 = eng.add_vertex();
  eng.add_edge(v0, v1, microseconds(700));
  eng.plan(shards);
  eng.set_tracing(true);
  const auto s0 = eng.shard_of(v0);
  const auto s1 = eng.shard_of(v1);

  LinkConfig cfg;
  cfg.delay = microseconds(700);
  cfg.bandwidth_bps = 8e6;
  cfg.jitter = microseconds(50);
  Link link(eng.loop(s0), cfg, util::Rng(42));
  link.set_streams(0, 1);
  link.bind(eng.loop(s0), eng.loop(s1), eng.channel(s0, s1),
            eng.channel(s1, s0));

  int remaining = bounces;
  link.end_b().set_receiver([&](Frame f) {
    if (remaining-- > 0) link.end_b().send(std::move(f));
  });
  link.end_a().set_receiver([&](Frame f) {
    if (remaining-- > 0) link.end_a().send(std::move(f));
  });
  eng.loop(s0).schedule_at(microseconds(100),
                           [&] { link.end_a().send(Frame::filled(200, 7)); });
  eng.run_until(milliseconds(500));
  if (events_out != nullptr) *events_out = eng.events_processed();
  return eng.trace_digest();
}

TEST(ShardedEngineTest, DigestIdenticalAcrossShardCounts) {
  std::uint64_t ev1 = 0, ev2 = 0;
  const auto d1 = pingpong_digest(1, 40, &ev1);
  const auto d2 = pingpong_digest(2, 40, &ev2);
  EXPECT_EQ(d1.size(), 40u);  // sha1 hex
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(ev1, ev2);
  // A different workload must not collide.
  EXPECT_NE(d1, pingpong_digest(1, 7));
}

TEST(ShardedEngineTest, WindowsAdvanceByLookahead) {
  std::uint64_t events = 0;
  ShardedEngine eng;
  const auto v0 = eng.add_vertex();
  const auto v1 = eng.add_vertex();
  eng.add_edge(v0, v1, microseconds(500));
  eng.plan(2);
  for (int i = 0; i < 20; ++i) {
    eng.loop(eng.shard_of(v0)).schedule_at(microseconds(100 * i),
                                           [&events] { ++events; });
  }
  eng.run_until(milliseconds(5));
  EXPECT_EQ(events, 20u);
  EXPECT_EQ(eng.events_processed(), 20u);
  // 20 events spread over 2 ms with a 500 us lookahead: several windows,
  // but far fewer than events (the empty-gap skip coalesces).
  EXPECT_GE(eng.windows_run(), 2u);
}

// --- per-shard rng -----------------------------------------------------------

TEST(ShardedEngineTest, ShardRngStreamsAreIndependentAndStable) {
  ShardedEngine eng;
  eng.add_vertex();
  auto r0 = eng.shard_rng(0);
  auto r0_again = eng.shard_rng(0);
  auto r1 = eng.shard_rng(1);
  const auto a = r0();
  EXPECT_EQ(a, r0_again());  // same shard -> same stream
  EXPECT_NE(a, r1());        // different shard -> different stream
}

}  // namespace
}  // namespace ipop::sim
