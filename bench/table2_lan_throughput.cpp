// Table II: ttcp throughput of a single overlay link on the LAN
// (F2 -> F4, transfer size 92.97 MB), physical vs IPOP-TCP vs IPOP-UDP.
//
// Paper values (KB/s): physical 8255 / IPOP-TCP 2389 (29%);
//                      physical 9416 / IPOP-UDP 1905 (20%).
#include "common.hpp"

namespace {
using namespace ipop;
using brunet::TransportAddress;
constexpr std::uint64_t kTransfer = 97486668ull;  // 92.97 MB
}  // namespace

int main() {
  bench::banner(
      "Table II: LAN ttcp throughput, single overlay link (92.97 MB)",
      "Table II");

  struct Row {
    std::string label;
    double paper_kbps;
    double measured = 0;
  };
  std::vector<Row> rows = {
      {"physical (TCP run)", 8255},
      {"IPOP-TCP", 2389},
      {"physical (UDP run)", 9416},
      {"IPOP-UDP", 1905},
  };

  for (auto proto :
       {TransportAddress::Proto::kTcp, TransportAddress::Proto::kUdp}) {
    const bool tcp = proto == TransportAddress::Proto::kTcp;
    std::printf("building %s-mode overlay...\n", tcp ? "TCP" : "UDP");
    auto overlay = bench::make_overlay(proto);
    auto& loop = overlay->loop();
    auto& tb = overlay->testbed();

    std::printf("  physical transfer...\n");
    auto phys = bench::run_ttcp(loop, tb.f2->stack(), tb.f4->stack(),
                                tb.f4_lan_ip, kTransfer, 5001);
    std::printf("  IPOP transfer...\n");
    auto ipop = bench::run_ttcp(loop, tb.f2->stack(), tb.f4->stack(),
                                overlay->vip("F4"), kTransfer, 5002);
    const std::size_t base = tcp ? 0 : 2;
    rows[base + 0].measured = phys.throughput_kbps();
    rows[base + 1].measured = ipop.throughput_kbps();
  }

  util::Table table({"configuration", "paper (KB/s)", "measured (KB/s)",
                     "paper rel.", "measured rel."});
  for (std::size_t i = 0; i < rows.size(); i += 2) {
    const auto& phys = rows[i];
    const auto& ipop = rows[i + 1];
    table.add_row({phys.label, util::Table::num(phys.paper_kbps, 0),
                   util::Table::num(phys.measured, 0), "-", "-"});
    table.add_row({ipop.label, util::Table::num(ipop.paper_kbps, 0),
                   util::Table::num(ipop.measured, 0),
                   util::Table::percent(ipop.paper_kbps / phys.paper_kbps),
                   util::Table::percent(ipop.measured / phys.measured)});
    if (i == 0) table.add_rule();
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper claim: on a LAN the user-level IPOP data path bounds\n"
      "throughput at roughly 20-30%% of the physical network (per-packet\n"
      "processing cost dominates when the wire is fast).\n");
  return 0;
}
