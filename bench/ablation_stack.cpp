// Ablation B (paper Section V.2): single vs double kernel-stack traversal.
//
// The paper attributes most of the LAN overhead to every virtual-network
// packet traversing the kernel TCP/IP stack twice (once on the virtual
// interface, once on the physical interface) and proposes user-level
// communication to bypass one traversal.  We sweep the kernel per-packet
// cost and the user-level scheduling latency to show how much of the
// 6-10 ms single-hop overhead each contributes.
#include "common.hpp"

namespace {
using namespace ipop;

double lan_ipop_rtt(util::Duration stack_delay, util::Duration sched_latency,
                    util::Duration cpu) {
  core::Fig4OverlayOptions opts;
  opts.testbed.host_stack_delay = stack_delay;
  opts.sched_latency = sched_latency;
  opts.cpu_per_packet = cpu;
  auto overlay = bench::make_overlay(
      brunet::TransportAddress::Proto::kUdp, opts);
  auto result = bench::run_pings(
      overlay->loop(), overlay->testbed().f2->stack(), overlay->vip("F4"),
      200, util::milliseconds(50));
  return result.rtts_ms.mean();
}

}  // namespace

int main() {
  bench::banner("Ablation: kernel-stack traversals and user-level latency",
                "Section V.2");

  const auto cpu = util::microseconds(240);
  const auto sched = util::microseconds(1330);
  const auto kstack = util::microseconds(30);

  util::Table table({"configuration", "LAN IPOP RTT (ms)", "delta (ms)"});
  const double baseline = lan_ipop_rtt(kstack, sched, cpu);
  table.add_row({"baseline (double traversal + full user-level latency)",
                 util::Table::num(baseline, 3), "-"});

  // Section V.2's proposal: user-level NIC access removes one kernel
  // traversal per host (model: zero kernel per-packet cost).
  const double no_kernel = lan_ipop_rtt(util::microseconds(0), sched, cpu);
  table.add_row({"kernel stack bypass (user-level communication)",
                 util::Table::num(no_kernel, 3),
                 util::Table::num(no_kernel - baseline, 3)});

  // Halving the scheduling latency (optimized wakeups).
  const double half_sched = lan_ipop_rtt(kstack, sched / 2, cpu);
  table.add_row({"halved user-level scheduling latency",
                 util::Table::num(half_sched, 3),
                 util::Table::num(half_sched - baseline, 3)});

  // Both optimizations together.
  const double both = lan_ipop_rtt(util::microseconds(0), sched / 2, cpu);
  table.add_row({"both optimizations", util::Table::num(both, 3),
                 util::Table::num(both - baseline, 3)});

  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper claim: most of the LAN overhead is user-level processing\n"
      "latency; bypassing one kernel stack traversal (user-level\n"
      "communication on cluster NICs) shaves a measurable slice, and\n"
      "applications remain oblivious to which path is used.\n");
  return 0;
}
