// Table III: ttcp throughput of a single overlay link over the WAN
// (F4 <-> V1) for transfer sizes 13.09 MB and 92.97 MB.
//
// Paper values (KB/s):
//   physical 1419/1419 ; IPOP-TCP 673 (47%) / 688 (48%)
//   physical 1538/1531 ; IPOP-UDP 1239 (81%) / 1150 (75%)
#include "common.hpp"

namespace {
using namespace ipop;
using brunet::TransportAddress;
constexpr std::uint64_t kSmall = 13725466ull;   // 13.09 MB
constexpr std::uint64_t kLarge = 97486668ull;   // 92.97 MB
}  // namespace

int main() {
  bench::banner(
      "Table III: WAN ttcp throughput, single overlay link (13.09/92.97 MB)",
      "Table III");

  struct Row {
    std::string label;
    double paper_small, paper_large;
    double small = 0, large = 0;
  };
  std::vector<Row> rows = {
      {"physical (TCP run)", 1419, 1419},
      {"IPOP-TCP", 673, 688},
      {"physical (UDP run)", 1538, 1531},
      {"IPOP-UDP", 1239, 1150},
  };

  for (auto proto :
       {TransportAddress::Proto::kTcp, TransportAddress::Proto::kUdp}) {
    const bool tcp = proto == TransportAddress::Proto::kTcp;
    std::printf("building %s-mode overlay...\n", tcp ? "TCP" : "UDP");
    // Clean WAN: the TCP-mode collapse is carried by the Nagle
    // interaction on the outer (Brunet) TCP socket, which delays the
    // tunneled inner ACKs by roughly one outer RTT — no loss required.
    core::Fig4OverlayOptions base;
    auto overlay = bench::make_overlay(proto, base);
    auto& loop = overlay->loop();
    auto& tb = overlay->testbed();
    const std::size_t r = tcp ? 0 : 2;

    // ttcp sender on V1 (it can open connections outbound through VFW).
    std::printf("  physical 13.09 MB...\n");
    rows[r].small = bench::run_ttcp(loop, tb.v1->stack(), tb.f4->stack(),
                                    tb.f4_pub_ip, kSmall, 5001)
                        .throughput_kbps();
    std::printf("  physical 92.97 MB...\n");
    rows[r].large = bench::run_ttcp(loop, tb.v1->stack(), tb.f4->stack(),
                                    tb.f4_pub_ip, kLarge, 5002)
                        .throughput_kbps();
    std::printf("  IPOP 13.09 MB...\n");
    rows[r + 1].small = bench::run_ttcp(loop, tb.v1->stack(), tb.f4->stack(),
                                        overlay->vip("F4"), kSmall, 5003)
                            .throughput_kbps();
    std::printf("  IPOP 92.97 MB...\n");
    rows[r + 1].large = bench::run_ttcp(loop, tb.v1->stack(), tb.f4->stack(),
                                        overlay->vip("F4"), kLarge, 5004)
                            .throughput_kbps();
  }

  util::Table table({"configuration", "size", "paper (KB/s)",
                     "measured (KB/s)", "paper rel.", "measured rel."});
  for (std::size_t i = 0; i < rows.size(); i += 2) {
    const auto& phys = rows[i];
    const auto& ipop = rows[i + 1];
    auto add = [&](const char* size, double pp, double pi, double mp,
                   double mi) {
      table.add_row({phys.label, size, util::Table::num(pp, 0),
                     util::Table::num(mp, 0), "-", "-"});
      table.add_row({ipop.label, size, util::Table::num(pi, 0),
                     util::Table::num(mi, 0), util::Table::percent(pi / pp),
                     util::Table::percent(mi / mp)});
    };
    add("13.09 MB", phys.paper_small, ipop.paper_small, phys.small,
        ipop.small);
    add("92.97 MB", phys.paper_large, ipop.paper_large, phys.large,
        ipop.large);
    if (i == 0) table.add_rule();
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper claim: over a WAN the overlay recovers most of the physical\n"
      "bandwidth; Brunet-UDP clearly outperforms Brunet-TCP because the\n"
      "inner TCP stream suffers when tunneled through an outer TCP\n"
      "connection (head-of-line blocking + stacked retransmission).\n");
  return 0;
}
