// Microbenchmarks (google-benchmark): the hot paths of the IPOP data
// plane — SHA-1 address mapping, packet codecs, ring-distance arithmetic,
// greedy next-hop selection, and checksum computation.
#include <benchmark/benchmark.h>

#include "brunet/connection_table.hpp"
#include "brunet/packet.hpp"
#include "net/ipv4.hpp"
#include "net/tcp_wire.hpp"
#include "util/random.hpp"
#include "util/sha1.hpp"

namespace {

using namespace ipop;

void BM_Sha1AddressFromIp(benchmark::State& state) {
  std::uint32_t ip = 0xAC100002;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        brunet::Address::from_ip(net::Ipv4Address(ip++)));
  }
}
BENCHMARK(BM_Sha1AddressFromIp);

void BM_Sha1Throughput(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::sha1(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(64)->Arg(1024)->Arg(64 * 1024);

void BM_PacketEncodeDecode(benchmark::State& state) {
  util::Rng rng(1);
  brunet::Packet pkt;
  pkt.type = brunet::PacketType::kIpTunnel;
  pkt.src = brunet::Address::random(rng);
  pkt.dst = brunet::Address::random(rng);
  pkt.payload.assign(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    auto bytes = pkt.encode();
    benchmark::DoNotOptimize(brunet::Packet::decode(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PacketEncodeDecode)->Arg(64)->Arg(1200);

void BM_RingDistance(benchmark::State& state) {
  util::Rng rng(2);
  auto a = brunet::Address::random(rng);
  auto b = brunet::Address::random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(brunet::Address::ring_distance(a, b));
  }
}
BENCHMARK(BM_RingDistance);

void BM_GreedyNextHop(benchmark::State& state) {
  util::Rng rng(3);
  brunet::ConnectionTable table(brunet::Address::random(rng));
  for (int i = 0; i < state.range(0); ++i) {
    brunet::Connection c;
    c.addr = brunet::Address::random(rng);
    c.type = brunet::ConnectionType::kStructuredNear;
    table.add(c);
  }
  auto target = brunet::Address::random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.closest_to(target));
  }
}
BENCHMARK(BM_GreedyNextHop)->Arg(8)->Arg(64)->Arg(512);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(20)->Arg(1500);

void BM_TcpSegmentRoundTrip(benchmark::State& state) {
  const auto src = net::Ipv4Address(10, 0, 0, 1);
  const auto dst = net::Ipv4Address(10, 0, 0, 2);
  net::TcpSegment seg;
  seg.src_port = 1234;
  seg.dst_port = 80;
  seg.flags.ack = true;
  seg.payload.assign(1160, 0x42);
  for (auto _ : state) {
    auto bytes = seg.encode(src, dst);
    benchmark::DoNotOptimize(net::TcpSegment::decode(bytes, src, dst));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1160);
}
BENCHMARK(BM_TcpSegmentRoundTrip);

}  // namespace

BENCHMARK_MAIN();
