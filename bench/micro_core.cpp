// Microbenchmarks (google-benchmark): the hot paths of the IPOP data
// plane — SHA-1 address mapping, packet codecs, per-hop forwarding,
// ring-distance arithmetic, greedy next-hop selection, and checksum
// computation.
//
// Results are also written to BENCH_micro_core.json (google-benchmark's
// JSON format) unless the caller passes its own --benchmark_out flags.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "brunet/connection_table.hpp"
#include "brunet/packet.hpp"
#include "brunet/secure.hpp"
#include "brunet/transport.hpp"
#include "net/ipv4.hpp"
#include "net/l4_patch.hpp"
#include "net/tcp_wire.hpp"
#include "net/topology.hpp"
#include "net/udp.hpp"
#include "util/buffer.hpp"
#include "util/random.hpp"
#include "util/sha1.hpp"

namespace {

using namespace ipop;

void BM_Sha1AddressFromIp(benchmark::State& state) {
  std::uint32_t ip = 0xAC100002;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        brunet::Address::from_ip(net::Ipv4Address(ip++)));
  }
}
BENCHMARK(BM_Sha1AddressFromIp);

void BM_Sha1Throughput(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::sha1(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(64)->Arg(1024)->Arg(64 * 1024);

void BM_PacketBuildParse(benchmark::State& state) {
  util::Rng rng(1);
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0x5A);
  const auto src = brunet::Address::random(rng);
  const auto dst = brunet::Address::random(rng);
  for (auto _ : state) {
    brunet::Packet pkt;
    pkt.type = brunet::PacketType::kIpTunnel;
    pkt.src = src;
    pkt.dst = dst;
    pkt.set_payload(util::Buffer::copy_of(payload, util::kPacketHeadroom));
    auto wire = pkt.take_wire();
    benchmark::DoNotOptimize(brunet::Packet::decode(std::move(wire)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PacketBuildParse)->Arg(64)->Arg(1200);

// --- per-hop forwarding ----------------------------------------------------
// The cost an intermediate overlay node pays to relay one routed packet.
// The paper's greedy routing crosses O(log n) such hops per virtual IP
// packet, so this microbenchmark is the core of the data plane.

util::Buffer make_wire(std::size_t payload_size) {
  util::Rng rng(1);
  brunet::Packet pkt;
  pkt.type = brunet::PacketType::kIpTunnel;
  pkt.src = brunet::Address::random(rng);
  pkt.dst = brunet::Address::random(rng);
  pkt.set_payload(std::vector<std::uint8_t>(payload_size, 0x5A));
  return pkt.to_wire();
}

/// Pre-refactor forwarding: copy the wire bytes into an owned buffer
/// before relaying (the legacy owning-codec path).
void BM_ForwardHopCopy(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  const auto wire_bytes = make_wire(payload_size).to_vector();
  for (auto _ : state) {
    brunet::Packet pkt =
        brunet::Packet::decode(std::span<const std::uint8_t>(wire_bytes));
    ++pkt.hops;
    auto out = pkt.take_wire();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire_bytes.size()));
  state.counters["bytes_copied_per_hop"] =
      static_cast<double>(wire_bytes.size());
}
BENCHMARK(BM_ForwardHopCopy)->Arg(64)->Arg(1400);

/// Zero-copy forwarding: parse the 48-byte header over the shared buffer,
/// patch the hop count in place, re-emit the same buffer.
void BM_ForwardHopZeroCopy(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  auto wire = make_wire(payload_size);
  for (auto _ : state) {
    brunet::Packet pkt = brunet::Packet::decode(wire.share());
    ++pkt.hops;
    auto out = pkt.to_wire();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
  state.counters["bytes_copied_per_hop"] = 0.0;
}
BENCHMARK(BM_ForwardHopZeroCopy)->Arg(64)->Arg(1400);

void BM_RingDistance(benchmark::State& state) {
  util::Rng rng(2);
  auto a = brunet::Address::random(rng);
  auto b = brunet::Address::random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(brunet::Address::ring_distance(a, b));
  }
}
BENCHMARK(BM_RingDistance);

void BM_GreedyNextHop(benchmark::State& state) {
  util::Rng rng(3);
  brunet::ConnectionTable table(brunet::Address::random(rng));
  for (int i = 0; i < state.range(0); ++i) {
    brunet::Connection c;
    c.addr = brunet::Address::random(rng);
    c.type = brunet::ConnectionType::kStructuredNear;
    table.add(c);
  }
  auto target = brunet::Address::random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.closest_to(target));
  }
}
// 4096/8192 exercise the binary-search index at overlay-scale table sizes;
// the bench gate's scaling rule pins 8192 to ~O(log n) of the 512 cost.
BENCHMARK(BM_GreedyNextHop)->Arg(8)->Arg(64)->Arg(512)->Arg(4096)->Arg(8192);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(20)->Arg(1500);

// --- sealed tunnel frames ---------------------------------------------------
// The secured hot path: encrypt-in-place + sign into headroom (seal) and
// verify + decrypt-in-place (open).  payload_bytes_copied must stay 0 —
// the capture buffer arrives uniquely owned with the per-path headroom
// budget intact, so sealing never reallocates.  The gate also pins the
// 64B/1400B cpu_time ratio: per-packet crypto cost is dominated by the
// constant sign/verify, not by payload size, so securing full-MTU
// traffic costs about the same per packet as securing ACKs.

void BM_SealInPlace(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  const auto sender = util::crypto::KeyPair::generate(rng);
  const auto receiver = util::crypto::KeyPair::generate(rng);
  const auto dst = brunet::Address::from_public_key(receiver.public_key());
  brunet::FrameSealer sealer(sender);
  std::vector<std::uint8_t> plain(payload_size);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i * 13);
  }
  // Prime the DH cache: the steady-state per-packet cost excludes the
  // one-time key agreement.
  sealer.seal(util::Buffer::copy_of(plain, util::kPacketHeadroom),
              receiver.public_key(), dst, util::kPacketHeadroom);
  for (auto _ : state) {
    state.PauseTiming();  // rebuilding the capture buffer is not sealing
    auto payload = util::Buffer::copy_of(plain, util::kPacketHeadroom);
    state.ResumeTiming();
    auto sealed = sealer.seal(std::move(payload), receiver.public_key(), dst,
                              util::kPacketHeadroom);
    benchmark::DoNotOptimize(sealed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload_size));
  state.counters["payload_bytes_copied"] =
      static_cast<double>(sealer.stats().payload_bytes_copied);
}
BENCHMARK(BM_SealInPlace)->Arg(64)->Arg(1400);

void BM_OpenInPlace(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  util::Rng rng(12);
  const auto sender = util::crypto::KeyPair::generate(rng);
  const auto receiver = util::crypto::KeyPair::generate(rng);
  const auto dst = brunet::Address::from_public_key(receiver.public_key());
  brunet::FrameSealer seal_side(sender);
  brunet::FrameSealer open_side(receiver);
  std::vector<std::uint8_t> plain(payload_size);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i * 29);
  }
  const auto sealed =
      seal_side
          .seal(util::Buffer::copy_of(plain, util::kPacketHeadroom),
                receiver.public_key(), dst, util::kPacketHeadroom)
          .to_vector();
  // Prime the opener's DH cache off the clock, same as the sealer's.
  open_side.open(util::Buffer::copy_of(sealed, util::kPacketHeadroom), dst);
  for (auto _ : state) {
    state.PauseTiming();  // open() decrypts in place: fresh frame each time
    auto frame = util::Buffer::copy_of(sealed, util::kPacketHeadroom);
    state.ResumeTiming();
    auto opened = open_side.open(std::move(frame), dst);
    benchmark::DoNotOptimize(opened);
    if (!opened.has_value()) {
      state.SkipWithError("sealed frame failed to open");
      break;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload_size));
  state.counters["payload_bytes_copied"] =
      static_cast<double>(open_side.stats().payload_bytes_copied);
  state.counters["frames_rejected"] =
      static_cast<double>(open_side.stats().rejected);
}
BENCHMARK(BM_OpenInPlace)->Arg(64)->Arg(1400);

// --- NAT-rewritten forwarding ----------------------------------------------
// The simulated-kernel leg of the zero-copy pipeline: a middlebox decodes
// the IP header over the arriving frame's storage, patches L4 endpoints
// and checksums in place (RFC 1624), and re-emits the same buffer.

util::Buffer make_ip_udp_wire(std::size_t payload_size) {
  net::UdpDatagram d;
  d.src_port = 5555;
  d.dst_port = 7000;
  d.payload.assign(payload_size, 0x42);
  net::Ipv4Packet pkt;
  pkt.hdr.proto = net::IpProto::kUdp;
  pkt.hdr.id = 1;
  pkt.hdr.src = net::Ipv4Address(10, 0, 0, 2);
  pkt.hdr.dst = net::Ipv4Address(8, 0, 0, 10);
  pkt.payload = util::Buffer::copy_of(
      d.encode(pkt.hdr.src, pkt.hdr.dst), util::kPacketHeadroom);
  return pkt.take_wire();
}

/// Steady-state per-packet cost of a NAT forward on the zero-copy path:
/// parse, patch ports + checksums in place, re-serialize the header into
/// the recovered headroom.  The buffer never changes storage.
void BM_NatRewriteInPlace(benchmark::State& state) {
  auto wire = make_ip_udp_wire(static_cast<std::size_t>(state.range(0)));
  const net::L4Endpoint ext{net::Ipv4Address(8, 0, 0, 1), 62000};
  for (auto _ : state) {
    net::Ipv4Packet pkt = net::Ipv4Packet::decode(std::move(wire));
    net::patch_l4_endpoints(pkt, ext, std::nullopt);
    wire = pkt.take_wire();
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
  state.counters["bytes_copied_per_forward"] = 0.0;
}
BENCHMARK(BM_NatRewriteInPlace)->Arg(64)->Arg(1372);

/// The copy_at_stack_crossing ablation's data-plane cost: same rewrite,
/// plus the receive- and transmit-side payload copies the pre-zero-copy
/// kernel performed on every traversal (paper Section V.2).
void BM_NatRewriteCopyAtCrossing(benchmark::State& state) {
  auto wire = make_ip_udp_wire(static_cast<std::size_t>(state.range(0)));
  const net::L4Endpoint ext{net::Ipv4Address(8, 0, 0, 1), 62000};
  double copied = 0.0;
  for (auto _ : state) {
    net::Ipv4Packet pkt = net::Ipv4Packet::decode(std::move(wire));
    pkt.payload = pkt.payload.clone(util::kPacketHeadroom);  // rx crossing
    net::patch_l4_endpoints(pkt, ext, std::nullopt);
    pkt.payload = pkt.payload.clone(util::kPacketHeadroom);  // tx crossing
    copied += 2.0 * static_cast<double>(pkt.payload.size());
    wire = pkt.take_wire();
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
  state.counters["bytes_copied_per_forward"] =
      copied / static_cast<double>(state.iterations());
}
BENCHMARK(BM_NatRewriteCopyAtCrossing)->Arg(64)->Arg(1372);

/// End-to-end check through the full simulated network: one UDP packet
/// per iteration crosses inside -> NAT -> outside; the NAT stack's own
/// counters report how many payload bytes it copied.  Arg 0: 0 = default
/// zero-copy config (must report 0), 1 = copy_at_stack_crossing ablation.
/// Arg 1: concurrent flows kept live in the NAT's conntrack table — the
/// regression context for the per-forward mapping lookup (the
/// conntrack_entries counter records the table size the fast path
/// searched).
void BM_NatForwardSim(benchmark::State& state) {
  const bool ablation = state.range(0) != 0;
  const int flows = static_cast<int>(state.range(1));
  net::StackConfig nat_cfg;
  nat_cfg.copy_at_stack_crossing = ablation;
  // The background flows only send once: a generous idle budget keeps the
  // table at the configured size for the whole measured run.
  net::NatConfig ncfg;
  ncfg.timeouts.udp_idle = util::seconds(1'000'000);
  net::Network netw{11};
  auto& inside = netw.add_host("inside");
  auto& outside = netw.add_host("outside");
  auto& nat =
      netw.add_nat("nat", net::NatType::kPortRestrictedCone, nat_cfg, ncfg);
  sim::LinkConfig link;
  link.delay = util::microseconds(20);
  netw.connect(inside.stack(), {"eth0", net::Ipv4Address(10, 0, 0, 2), 24},
               nat.stack(), {"in", net::Ipv4Address(10, 0, 0, 1), 24}, link);
  netw.connect(nat.stack(), {"out", net::Ipv4Address(8, 0, 0, 1), 24},
               outside.stack(), {"eth0", net::Ipv4Address(8, 0, 0, 2), 24},
               link);
  inside.stack().add_route(net::Ipv4Prefix::parse("0.0.0.0/0"), 0,
                           net::Ipv4Address(10, 0, 0, 1));
  auto server = outside.stack().udp_bind(7000);
  std::uint64_t received = 0;
  server->set_receive_handler(
      [&](net::Ipv4Address, std::uint16_t, util::Buffer) { ++received; });
  auto client = inside.stack().udp_bind(5555);
  const std::vector<std::uint8_t> payload(1372, 0x5A);
  // Background flows populate the conntrack table the measured flow's
  // lookups must traverse (one mapping per inside port).
  std::vector<std::shared_ptr<net::UdpSocket>> background;
  for (int i = 1; i < flows; ++i) {
    auto sock =
        inside.stack().udp_bind(static_cast<std::uint16_t>(20000 + i));
    sock->send_to(net::Ipv4Address(8, 0, 0, 2), 7000, {0x42});
    background.push_back(std::move(sock));
    // Drain in batches so the one-shot burst does not overrun the link
    // queue (a dropped datagram would never create its mapping).
    if (i % 64 == 0) netw.loop().run_for(util::milliseconds(10));
  }
  // Warm up ARP resolution and the measured flow's NAT mapping.
  client->send_to(net::Ipv4Address(8, 0, 0, 2), 7000, payload);
  netw.loop().run_for(util::seconds(1));
  const auto copied_before = nat.stack().counters().payload_bytes_copied;
  const auto received_before = received;
  for (auto _ : state) {
    client->send_to(net::Ipv4Address(8, 0, 0, 2), 7000, payload);
    netw.loop().run_for(util::milliseconds(1));
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["bytes_copied_per_forward"] =
      static_cast<double>(nat.stack().counters().payload_bytes_copied -
                          copied_before) /
      iters;
  state.counters["delivered_fraction"] =
      static_cast<double>(received - received_before) / iters;
  state.counters["conntrack_entries"] =
      static_cast<double>(nat.mapping_count());
}
BENCHMARK(BM_NatForwardSim)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 256})
    ->Args({0, 4096});

// --- scatter-gather transport sends ----------------------------------------
// The two send paths the BufferChain refactor rewired: TCP edges link
// length-framed packets into the socket queue as shared handles (no
// stream serialization copy), and UDP fan-outs share one payload buffer
// across a sendmmsg-style batch.  `bytes_copied_per_*` counts CPU
// memcpys on the sender (socket + stack); `bytes_gathered_per_*` is the
// NIC-style scatter-gather walk that assembles the wire image.

/// One Brunet-packet-sized buffer per iteration crosses a TcpEdge.  The
/// sender must not copy the payload: framing is a separate 4-byte
/// segment, the socket queue links shared handles, and segments gather
/// queue ranges straight into the wire image.
void BM_TcpEdgeStreamSend(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  net::Network netw{13};
  auto& ha = netw.add_host("ea");
  auto& hb = netw.add_host("eb");
  sim::LinkConfig link;
  link.delay = util::microseconds(50);
  link.bandwidth_bps = 10e9;
  netw.connect(ha.stack(), {"eth0", net::Ipv4Address(10, 0, 0, 1), 24},
               hb.stack(), {"eth0", net::Ipv4Address(10, 0, 0, 2), 24}, link);
  auto listener = hb.stack().tcp_listen(4000);
  std::shared_ptr<brunet::TcpEdge> server_edge;
  std::uint64_t received = 0;
  listener->set_accept_handler([&](std::shared_ptr<net::TcpSocket> s) {
    server_edge = std::make_shared<brunet::TcpEdge>(netw.loop(), std::move(s));
    server_edge->attach();
    server_edge->set_receive_handler([&](util::Buffer) { ++received; });
  });
  auto csock = ha.stack().tcp_connect(net::Ipv4Address(10, 0, 0, 2), 4000);
  auto client_edge = std::make_shared<brunet::TcpEdge>(netw.loop(), csock);
  client_edge->attach();
  netw.loop().run_for(util::seconds(1));  // handshake + ARP warmup
  const auto& tcp_stats = client_edge->socket()->stats();
  const auto& stack_ctr = ha.stack().counters();
  const auto copied0 =
      tcp_stats.payload_bytes_copied + stack_ctr.payload_bytes_copied;
  const auto gathered0 =
      tcp_stats.payload_bytes_gathered + stack_ctr.payload_bytes_gathered;
  const auto received0 = received;
  for (auto _ : state) {
    client_edge->send(
        util::Buffer::allocate(payload_size, util::kPacketHeadroom));
    netw.loop().run_for(util::milliseconds(1));
  }
  const auto iters = static_cast<double>(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload_size));
  state.counters["bytes_copied_per_send"] =
      static_cast<double>(tcp_stats.payload_bytes_copied +
                          stack_ctr.payload_bytes_copied - copied0) /
      iters;
  state.counters["bytes_gathered_per_send"] =
      static_cast<double>(tcp_stats.payload_bytes_gathered +
                          stack_ctr.payload_bytes_gathered - gathered0) /
      iters;
  state.counters["delivered_fraction"] =
      static_cast<double>(received - received0) / iters;
}
BENCHMARK(BM_TcpEdgeStreamSend)->Arg(64)->Arg(1400);

struct UdpFanoutEnv {
  net::Network netw{17};
  net::Host* tx_host;
  net::Host* rx_host;
  std::shared_ptr<net::UdpSocket> tx;
  std::shared_ptr<net::UdpSocket> rx;
  std::uint64_t received = 0;

  UdpFanoutEnv() {
    tx_host = &netw.add_host("fa");
    rx_host = &netw.add_host("fb");
    sim::LinkConfig link;
    link.delay = util::microseconds(50);
    link.bandwidth_bps = 10e9;
    netw.connect(tx_host->stack(), {"eth0", net::Ipv4Address(10, 0, 0, 1), 24},
                 rx_host->stack(), {"eth0", net::Ipv4Address(10, 0, 0, 2), 24},
                 link);
    rx = rx_host->stack().udp_bind(7000);
    rx->set_receive_handler(
        [this](net::Ipv4Address, std::uint16_t, util::Buffer) { ++received; });
    tx = tx_host->stack().udp_bind(5000);
    // ARP warmup.
    tx->send_to(net::Ipv4Address(10, 0, 0, 2), 7000, {0x1});
    netw.loop().run_for(util::seconds(1));
  }
};

/// Pre-batch fan-out: one owning vector (header + payload copied
/// together) and one socket crossing per replica.
void BM_UdpFanoutCopyPerDest(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));
  UdpFanoutEnv env;
  const std::vector<std::uint8_t> header(48, 0xA5);
  const std::vector<std::uint8_t> payload(1200, 0x5A);
  const auto& c = env.tx_host->stack().counters();
  const auto copied0 = c.payload_bytes_copied;
  const auto calls0 = c.udp_send_calls;
  const auto sent0 = env.tx->datagrams_sent();
  for (auto _ : state) {
    for (int i = 0; i < replicas; ++i) {
      std::vector<std::uint8_t> wire = header;
      wire.insert(wire.end(), payload.begin(), payload.end());
      env.tx->send_to(net::Ipv4Address(10, 0, 0, 2), 7000, std::move(wire));
    }
    env.netw.loop().run_for(util::milliseconds(1));
  }
  const auto datagrams =
      static_cast<double>(env.tx->datagrams_sent() - sent0);
  state.counters["bytes_copied_per_datagram"] =
      static_cast<double>(c.payload_bytes_copied - copied0) / datagrams;
  state.counters["datagrams_per_syscall"] =
      datagrams / static_cast<double>(c.udp_send_calls - calls0);
}
BENCHMARK(BM_UdpFanoutCopyPerDest)->Arg(8);

/// Batched fan-out: every replica shares one payload buffer (its header
/// rides a separate per-destination segment) and the whole batch crosses
/// the socket once.
void BM_UdpFanoutBatchShared(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));
  UdpFanoutEnv env;
  const auto payload =
      util::Buffer::copy_of(std::vector<std::uint8_t>(1200, 0x5A));
  const auto& c = env.tx_host->stack().counters();
  const auto copied0 = c.payload_bytes_copied;
  const auto gathered0 = c.payload_bytes_gathered;
  const auto calls0 = c.udp_send_calls;
  const auto sent0 = env.tx->datagrams_sent();
  for (auto _ : state) {
    std::vector<net::UdpSendItem> items;
    items.reserve(static_cast<std::size_t>(replicas));
    for (int i = 0; i < replicas; ++i) {
      util::BufferChain chain;
      auto hdr = util::Buffer::allocate(48, util::kPacketHeadroom);
      hdr.writable()[0] = static_cast<std::uint8_t>(i);
      chain.append(std::move(hdr));
      chain.append(payload.share());
      items.push_back(
          net::UdpSendItem{net::Ipv4Address(10, 0, 0, 2), 7000,
                           std::move(chain)});
    }
    env.tx->send_batch(items);
    env.netw.loop().run_for(util::milliseconds(1));
  }
  const auto datagrams =
      static_cast<double>(env.tx->datagrams_sent() - sent0);
  state.counters["bytes_copied_per_datagram"] =
      static_cast<double>(c.payload_bytes_copied - copied0) / datagrams;
  state.counters["bytes_gathered_per_datagram"] =
      static_cast<double>(c.payload_bytes_gathered - gathered0) / datagrams;
  state.counters["datagrams_per_syscall"] =
      datagrams / static_cast<double>(c.udp_send_calls - calls0);
}
BENCHMARK(BM_UdpFanoutBatchShared)->Arg(8);

void BM_TcpSegmentRoundTrip(benchmark::State& state) {
  const auto src = net::Ipv4Address(10, 0, 0, 1);
  const auto dst = net::Ipv4Address(10, 0, 0, 2);
  net::TcpSegment seg;
  seg.src_port = 1234;
  seg.dst_port = 80;
  seg.flags.ack = true;
  seg.payload.assign(1160, 0x42);
  for (auto _ : state) {
    auto bytes = seg.encode(src, dst);
    benchmark::DoNotOptimize(net::TcpSegment::decode(bytes, src, dst));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1160);
}
BENCHMARK(BM_TcpSegmentRoundTrip);

}  // namespace

// BENCHMARK_MAIN, plus machine-readable output: default to writing
// BENCH_micro_core.json next to the working directory when the caller did
// not pick an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Exact flag only: --benchmark_out_format alone must not suppress the
    // default output file.
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_core.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
