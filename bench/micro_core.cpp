// Microbenchmarks (google-benchmark): the hot paths of the IPOP data
// plane — SHA-1 address mapping, packet codecs, per-hop forwarding,
// ring-distance arithmetic, greedy next-hop selection, and checksum
// computation.
//
// Results are also written to BENCH_micro_core.json (google-benchmark's
// JSON format) unless the caller passes its own --benchmark_out flags.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "brunet/connection_table.hpp"
#include "brunet/packet.hpp"
#include "net/ipv4.hpp"
#include "net/tcp_wire.hpp"
#include "util/buffer.hpp"
#include "util/random.hpp"
#include "util/sha1.hpp"

namespace {

using namespace ipop;

void BM_Sha1AddressFromIp(benchmark::State& state) {
  std::uint32_t ip = 0xAC100002;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        brunet::Address::from_ip(net::Ipv4Address(ip++)));
  }
}
BENCHMARK(BM_Sha1AddressFromIp);

void BM_Sha1Throughput(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::sha1(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(64)->Arg(1024)->Arg(64 * 1024);

void BM_PacketEncodeDecode(benchmark::State& state) {
  util::Rng rng(1);
  brunet::Packet pkt;
  pkt.type = brunet::PacketType::kIpTunnel;
  pkt.src = brunet::Address::random(rng);
  pkt.dst = brunet::Address::random(rng);
  pkt.set_payload(std::vector<std::uint8_t>(
      static_cast<std::size_t>(state.range(0)), 0x5A));
  for (auto _ : state) {
    auto bytes = pkt.encode();
    benchmark::DoNotOptimize(
        brunet::Packet::decode(std::span<const std::uint8_t>(bytes)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PacketEncodeDecode)->Arg(64)->Arg(1200);

// --- per-hop forwarding ----------------------------------------------------
// The cost an intermediate overlay node pays to relay one routed packet.
// The paper's greedy routing crosses O(log n) such hops per virtual IP
// packet, so this microbenchmark is the core of the data plane.

util::Buffer make_wire(std::size_t payload_size) {
  util::Rng rng(1);
  brunet::Packet pkt;
  pkt.type = brunet::PacketType::kIpTunnel;
  pkt.src = brunet::Address::random(rng);
  pkt.dst = brunet::Address::random(rng);
  pkt.set_payload(std::vector<std::uint8_t>(payload_size, 0x5A));
  return pkt.to_wire();
}

/// Pre-refactor forwarding: decode the whole packet into an owning struct
/// (payload copy), bump the hop count, re-encode (second copy).
void BM_ForwardHopCopy(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  const auto wire_bytes = make_wire(payload_size).to_vector();
  for (auto _ : state) {
    brunet::Packet pkt =
        brunet::Packet::decode(std::span<const std::uint8_t>(wire_bytes));
    ++pkt.hops;
    auto out = pkt.encode();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire_bytes.size()));
  state.counters["bytes_copied_per_hop"] =
      2.0 * static_cast<double>(wire_bytes.size());
}
BENCHMARK(BM_ForwardHopCopy)->Arg(64)->Arg(1400);

/// Zero-copy forwarding: parse the 48-byte header over the shared buffer,
/// patch the hop count in place, re-emit the same buffer.
void BM_ForwardHopZeroCopy(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  auto wire = make_wire(payload_size);
  for (auto _ : state) {
    brunet::Packet pkt = brunet::Packet::decode(wire.share());
    ++pkt.hops;
    auto out = pkt.to_wire();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
  state.counters["bytes_copied_per_hop"] = 0.0;
}
BENCHMARK(BM_ForwardHopZeroCopy)->Arg(64)->Arg(1400);

void BM_RingDistance(benchmark::State& state) {
  util::Rng rng(2);
  auto a = brunet::Address::random(rng);
  auto b = brunet::Address::random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(brunet::Address::ring_distance(a, b));
  }
}
BENCHMARK(BM_RingDistance);

void BM_GreedyNextHop(benchmark::State& state) {
  util::Rng rng(3);
  brunet::ConnectionTable table(brunet::Address::random(rng));
  for (int i = 0; i < state.range(0); ++i) {
    brunet::Connection c;
    c.addr = brunet::Address::random(rng);
    c.type = brunet::ConnectionType::kStructuredNear;
    table.add(c);
  }
  auto target = brunet::Address::random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.closest_to(target));
  }
}
BENCHMARK(BM_GreedyNextHop)->Arg(8)->Arg(64)->Arg(512);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(20)->Arg(1500);

void BM_TcpSegmentRoundTrip(benchmark::State& state) {
  const auto src = net::Ipv4Address(10, 0, 0, 1);
  const auto dst = net::Ipv4Address(10, 0, 0, 2);
  net::TcpSegment seg;
  seg.src_port = 1234;
  seg.dst_port = 80;
  seg.flags.ack = true;
  seg.payload.assign(1160, 0x42);
  for (auto _ : state) {
    auto bytes = seg.encode(src, dst);
    benchmark::DoNotOptimize(net::TcpSegment::decode(bytes, src, dst));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1160);
}
BENCHMARK(BM_TcpSegmentRoundTrip);

}  // namespace

// BENCHMARK_MAIN, plus machine-readable output: default to writing
// BENCH_micro_core.json next to the working directory when the caller did
// not pick an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Exact flag only: --benchmark_out_format alone must not suppress the
    // default output file.
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_core.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
