// Ablation A (paper Section V.1): traffic-triggered shortcut connections.
//
// A multi-hop overlay path between two chatty nodes should collapse to a
// direct edge once their traffic crosses the shortcut threshold,
// recovering 1-hop latency while the overlay still provides address
// resolution.  We build a 24-node ring WITHOUT far connections so paths
// are genuinely multi-hop, then compare ping RTT with shortcuts disabled
// vs enabled (before and after the trigger).
#include "common.hpp"
#include "ipop/node.hpp"

namespace {
using namespace ipop;

struct RingOverlay {
  net::Network net{424};
  std::vector<net::Host*> hosts;
  std::vector<std::unique_ptr<core::IpopNode>> nodes;

  explicit RingOverlay(bool shortcuts, int n = 24) {
    auto& sw = net.add_switch("sw");
    sim::LinkConfig lan;
    lan.delay = util::milliseconds(2);
    for (int i = 0; i < n; ++i) {
      auto& h = net.add_host("h" + std::to_string(i));
      net.connect_to_switch(
          h.stack(),
          {"eth0",
           net::Ipv4Address(10, 0, static_cast<std::uint8_t>(i / 200),
                            static_cast<std::uint8_t>(i % 200 + 1)),
           16},
          sw, lan);
      hosts.push_back(&h);
      core::IpopConfig cfg;
      cfg.tap.ip =
          net::Ipv4Address(172, 16, 0, static_cast<std::uint8_t>(i + 2));
      cfg.overlay.near_per_side = 1;    // thin ring: long greedy paths
      cfg.overlay.shortcut_target = 0;  // no background shortcuts
      cfg.shortcuts.enabled = shortcuts;
      cfg.shortcuts.threshold = 16;
      cfg.shortcuts.window = util::seconds(60);
      auto node = std::make_unique<core::IpopNode>(h, cfg);
      if (i > 0) {
        node->add_seed({brunet::TransportAddress::Proto::kUdp,
                        net::Ipv4Address(10, 0, 0, 1), 17001});
      }
      nodes.push_back(std::move(node));
    }
    for (auto& nd : nodes) nd->start();
    net.loop().run_until(net.loop().now() + util::seconds(120));
  }

  net::Ipv4Address vip(int i) const {
    return net::Ipv4Address(172, 16, 0, static_cast<std::uint8_t>(i + 2));
  }
};

}  // namespace

int main() {
  bench::banner("Ablation: traffic-triggered shortcut connections",
                "Section V.1");

  std::printf("building 24-node thin-ring overlay (shortcuts OFF)...\n");
  RingOverlay base(false);

  // Pick the pair with the longest greedy overlay path (the overlays for
  // both runs share a seed, so the same indices apply to both).
  std::map<brunet::Address, brunet::BrunetNode*> by_addr;
  for (auto& n : base.nodes) by_addr[n->overlay().address()] = &n->overlay();
  int kSrc = 0, kDst = 1;
  std::size_t best_hops = 0;
  for (std::size_t i = 0; i < base.nodes.size(); ++i) {
    for (std::size_t j = 0; j < base.nodes.size(); ++j) {
      if (i == j) continue;
      const auto path = bench::overlay_path(
          by_addr, base.nodes[i]->overlay().address(),
          base.nodes[j]->overlay().address());
      if (path.empty() ||
          path.back() != base.nodes[j]->overlay().address()) {
        continue;
      }
      if (path.size() - 1 > best_hops) {
        best_hops = path.size() - 1;
        kSrc = static_cast<int>(i);
        kDst = static_cast<int>(j);
      }
    }
  }
  std::printf("measuring node %d -> node %d (%zu overlay hops)\n", kSrc,
              kDst, best_hops);
  auto off_before = bench::run_pings(base.net.loop(),
                                     base.hosts[kSrc]->stack(),
                                     base.vip(kDst), 50,
                                     util::milliseconds(200));
  auto off_after = bench::run_pings(base.net.loop(),
                                    base.hosts[kSrc]->stack(),
                                    base.vip(kDst), 50,
                                    util::milliseconds(200));

  std::printf("building 24-node thin-ring overlay (shortcuts ON)...\n");
  RingOverlay sc(true);
  auto on_before = bench::run_pings(sc.net.loop(), sc.hosts[kSrc]->stack(),
                                    sc.vip(kDst), 50,
                                    util::milliseconds(200));
  // The first batch crossed the threshold; give the linker a moment.
  sc.net.loop().run_until(sc.net.loop().now() + util::seconds(10));
  auto on_after = bench::run_pings(sc.net.loop(), sc.hosts[kSrc]->stack(),
                                   sc.vip(kDst), 50,
                                   util::milliseconds(200));
  const bool direct =
      sc.nodes[kSrc]->overlay().table().contains(
          sc.nodes[kDst]->overlay().address());

  util::Table table({"configuration", "ping RTT mean (ms)", "received"});
  table.add_row({"shortcuts off, first 50",
                 util::Table::num(off_before.rtts_ms.mean(), 2),
                 std::to_string(off_before.received)});
  table.add_row({"shortcuts off, next 50",
                 util::Table::num(off_after.rtts_ms.mean(), 2),
                 std::to_string(off_after.received)});
  table.add_row({"shortcuts on, first 50 (multi-hop)",
                 util::Table::num(on_before.rtts_ms.mean(), 2),
                 std::to_string(on_before.received)});
  table.add_row({"shortcuts on, after trigger (direct)",
                 util::Table::num(on_after.rtts_ms.mean(), 2),
                 std::to_string(on_after.received)});
  std::printf("%s", table.render().c_str());
  std::printf("\ndirect edge created: %s; shortcut requests: %llu\n",
              direct ? "yes" : "no",
              static_cast<unsigned long long>(
                  sc.nodes[kSrc]->shortcuts().stats().requests));
  std::printf(
      "expected shape: with shortcuts enabled, RTT after the trigger drops\n"
      "toward the 1-hop latency; without them it stays at multi-hop cost.\n");
  return 0;
}
