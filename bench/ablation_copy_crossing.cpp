// Ablation (paper Section V.2): copies at the simulated kernel's stack
// crossings.
//
// The paper attributes a large share of IPOP's per-packet cost to the
// user/kernel boundary: every virtual-network packet crosses the kernel
// stack twice per host, and each crossing historically copies the
// payload.  The zero-copy pipeline removes those copies — received frames
// are adopted as shared buffers, NAT patches ports/checksums in place,
// and transmit prepends headers into recovered headroom.  The
// `copy_at_stack_crossing` StackConfig toggle reinstates the copies so
// their cost is directly measurable.
//
// This bench pushes a UDP stream inside -> NAT -> outside in both
// configurations and reports (a) payload bytes copied per forwarded
// packet at each stack (from StackCounters, exact) and (b) the real
// wall-clock cost per simulated packet (the discrete-event clock is
// oblivious to memcpy; the host CPU is not).
#include <chrono>

#include "common.hpp"
#include "net/topology.hpp"

namespace {
using namespace ipop;

struct RunResult {
  double nat_copied_per_pkt = 0.0;
  double end_hosts_copied_per_pkt = 0.0;
  double wall_us_per_pkt = 0.0;
  std::uint64_t delivered = 0;
};

RunResult run(bool copy_at_crossing, int packets) {
  net::StackConfig scfg;
  scfg.copy_at_stack_crossing = copy_at_crossing;
  net::Network netw{17};
  auto& inside = netw.add_host("inside", scfg);
  auto& outside = netw.add_host("outside", scfg);
  auto& nat = netw.add_nat("nat", net::NatType::kPortRestrictedCone, scfg);
  sim::LinkConfig link;
  link.delay = util::microseconds(50);
  netw.connect(inside.stack(), {"eth0", net::Ipv4Address(10, 0, 0, 2), 24},
               nat.stack(), {"in", net::Ipv4Address(10, 0, 0, 1), 24}, link);
  netw.connect(nat.stack(), {"out", net::Ipv4Address(8, 0, 0, 1), 24},
               outside.stack(), {"eth0", net::Ipv4Address(8, 0, 0, 2), 24},
               link);
  inside.stack().add_route(net::Ipv4Prefix::parse("0.0.0.0/0"), 0,
                           net::Ipv4Address(10, 0, 0, 1));

  auto server = outside.stack().udp_bind(7000);
  std::uint64_t received = 0;
  server->set_receive_handler(
      [&](net::Ipv4Address, std::uint16_t, util::Buffer) { ++received; });
  auto client = inside.stack().udp_bind(5555);

  // A full 1400-byte virtual-network packet (1372B payload + 28B headers),
  // sent through the shared-buffer socket API with proper headroom so the
  // default path has no inherent copy.
  auto payload = util::Buffer::allocate(1372, util::kPacketHeadroom);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }

  // Warm up ARP resolution and the NAT mapping.
  client->send_to(net::Ipv4Address(8, 0, 0, 2), 7000, payload.clone());
  netw.loop().run_for(util::seconds(1));

  const auto nat_before = nat.stack().counters().payload_bytes_copied;
  const auto hosts_before = inside.stack().counters().payload_bytes_copied +
                            outside.stack().counters().payload_bytes_copied;
  const auto received_before = received;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < packets; ++i) {
    client->send_to(net::Ipv4Address(8, 0, 0, 2), 7000,
                    payload.clone(util::kPacketHeadroom));
    netw.loop().run_for(util::milliseconds(1));
  }
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.delivered = received - received_before;
  r.nat_copied_per_pkt =
      static_cast<double>(nat.stack().counters().payload_bytes_copied -
                          nat_before) /
      packets;
  r.end_hosts_copied_per_pkt =
      static_cast<double>(inside.stack().counters().payload_bytes_copied +
                          outside.stack().counters().payload_bytes_copied -
                          hosts_before) /
      packets;
  r.wall_us_per_pkt =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / packets;
  return r;
}

}  // namespace

int main() {
  bench::banner("Ablation: payload copies at kernel stack crossings",
                "Section V.2");

  constexpr int kPackets = 20000;
  const RunResult zero_copy = run(/*copy_at_crossing=*/false, kPackets);
  const RunResult copying = run(/*copy_at_crossing=*/true, kPackets);

  util::Table table({"configuration", "NAT bytes copied/pkt",
                     "end-host bytes copied/pkt", "wall us/pkt",
                     "delivered"});
  table.add_row({"zero-copy pipeline (default)",
                 util::Table::num(zero_copy.nat_copied_per_pkt, 1),
                 util::Table::num(zero_copy.end_hosts_copied_per_pkt, 1),
                 util::Table::num(zero_copy.wall_us_per_pkt, 3),
                 std::to_string(zero_copy.delivered) + "/" +
                     std::to_string(kPackets)});
  table.add_row({"copy_at_stack_crossing ablation",
                 util::Table::num(copying.nat_copied_per_pkt, 1),
                 util::Table::num(copying.end_hosts_copied_per_pkt, 1),
                 util::Table::num(copying.wall_us_per_pkt, 3),
                 std::to_string(copying.delivered) + "/" +
                     std::to_string(kPackets)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: 0 bytes copied per NAT-rewritten forward at the default\n"
      "config (ports and checksums are patched in the shared buffer); the\n"
      "ablation copies the payload at every crossing — two per stack\n"
      "traversal — reproducing the kernel-path cost the paper proposes\n"
      "eliminating.  The simulated clock is identical in both runs; the\n"
      "difference is real CPU time per packet.\n");
  return (zero_copy.nat_copied_per_pkt == 0.0 &&
          zero_copy.delivered == kPackets)
             ? 0
             : 1;
}
