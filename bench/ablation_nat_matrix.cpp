// Ablation D: decentralized NAT traversal across all NAT-type pairs.
//
// Section III-D argues Brunet's traversal (translated-address discovery +
// simultaneous dialing) handles the cone NAT types without any STUN
// server, while symmetric-symmetric pairs cannot be punched (the same
// limitation STUN documents).  We attempt a direct overlay link between
// two NATted nodes for every combination of the four RFC 3489 NAT types.
#include "brunet/node.hpp"
#include "common.hpp"
#include "net/topology.hpp"

namespace {
using namespace ipop;

bool try_punch(net::NatType type_a, net::NatType type_b) {
  net::Network net{static_cast<std::uint64_t>(1000 +
                                              static_cast<int>(type_a) * 7 +
                                              static_cast<int>(type_b))};
  auto& sw = net.add_switch("internet");
  sim::LinkConfig lan;
  lan.delay = util::milliseconds(2);
  auto& seed_host = net.add_host("seed");
  net.connect_to_switch(seed_host.stack(),
                        {"eth0", net::Ipv4Address(8, 0, 0, 1), 24}, sw, lan);
  auto make_site = [&](const char* name, net::NatType t, int idx) {
    auto& nat = net.add_nat(std::string(name) + "-nat", t);
    auto& h = net.add_host(name);
    const net::Ipv4Address priv(192, 168, static_cast<std::uint8_t>(idx), 2);
    const net::Ipv4Address gw(192, 168, static_cast<std::uint8_t>(idx), 254);
    const net::Ipv4Address pub(8, 0, 0, static_cast<std::uint8_t>(10 * idx));
    net.connect(h.stack(), {"eth0", priv, 24}, nat.stack(), {"in", gw, 24},
                lan);
    net.connect_to_switch(nat.stack(), {"out", pub, 24}, sw, lan);
    h.stack().add_route(net::Ipv4Prefix::parse("0.0.0.0/0"), 0, gw);
    nat.stack().add_route(net::Ipv4Prefix::parse("0.0.0.0/0"), 1,
                          net::Ipv4Address(8, 0, 0, 1));
    return &h;
  };
  auto* ha = make_site("a", type_a, 1);
  auto* hb = make_site("b", type_b, 2);

  util::Rng rng(99);
  brunet::NodeConfig cfg;
  brunet::BrunetNode seed(seed_host, brunet::Address::random(rng), cfg);
  brunet::BrunetNode na(*ha, brunet::Address::random(rng), cfg);
  brunet::BrunetNode nb(*hb, brunet::Address::random(rng), cfg);
  const brunet::TransportAddress seed_ta{
      brunet::TransportAddress::Proto::kUdp, net::Ipv4Address(8, 0, 0, 1),
      cfg.port};
  na.add_seed(seed_ta);
  nb.add_seed(seed_ta);
  seed.start();
  na.start();
  nb.start();
  net.loop().run_until(util::seconds(90));
  return na.table().contains(nb.address()) &&
         nb.table().contains(na.address());
}

}  // namespace

int main() {
  bench::banner("Ablation: NAT traversal matrix (direct edge punched?)",
                "Section III-D");

  const net::NatType types[] = {
      net::NatType::kFullCone, net::NatType::kRestrictedCone,
      net::NatType::kPortRestrictedCone, net::NatType::kSymmetric};

  util::Table table({"A \\ B", "full-cone", "restricted", "port-restr.",
                     "symmetric"});
  int punched = 0, total = 0;
  for (auto ta : types) {
    std::vector<std::string> row{net::nat_type_name(ta)};
    for (auto tb : types) {
      const bool ok = try_punch(ta, tb);
      row.push_back(ok ? "yes" : "NO");
      ++total;
      punched += ok ? 1 : 0;
      std::printf("  %-22s x %-22s -> %s\n", net::nat_type_name(ta),
                  net::nat_type_name(tb), ok ? "punched" : "blocked");
    }
    table.add_row(row);
  }
  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\n%d/%d pairs punched. expected: all cone-cone pairs succeed with\n"
      "no STUN server (each overlay peer reports observed addresses);\n"
      "symmetric NATs defeat traversal whenever the far side must hit the\n"
      "per-destination mapping — symmetric x symmetric always fails, and\n"
      "symmetric x port-restricted fails because the punch targets a\n"
      "mapping allocated for the seed, exactly as RFC 3489 predicts.\n",
      punched, total);
  return 0;
}
