// Table IV: LSS execution times over IPOP — sequential (1 worker) vs
// parallel (4 workers), first image (cold NFS caches) reported separately
// from images 2-6 (warm caches).
//
// Paper values (seconds):
//   1 node : image 1 = 811, images 2-6 = 834  (total 1645)
//   4 nodes: image 1 = 378, images 2-6 = 217  (total  595)
//   warm-cache parallel speedup: (834/5) / (217/5) = 3.8x
//
// Setup mirrors Section IV-C: F4 is the central NFS file server holding
// four 32 MB database files; the master runs on F3; workers are F1, F2
// (ACIS, behind NAT), V1 (VIMS) and L1 (LSU) — three firewalled domains
// joined only by the IPOP virtual network.  SSH boots the daemons, MPI
// carries tasks/results, NFS streams the databases.
#include "apps/lss.hpp"
#include "common.hpp"

namespace {
using namespace ipop;

apps::LssReport run_lss(core::Fig4Overlay& overlay,
                        const std::vector<std::string>& workers) {
  auto& tb = overlay.testbed();
  apps::NfsServer nfs(tb.f4->stack());
  apps::LssConfig cfg;
  cfg.file_server = overlay.vip("F4");
  for (int db = 0; db < cfg.databases; ++db) {
    nfs.add_file("db" + std::to_string(db), cfg.db_size);
  }
  std::vector<apps::LssMember> members;
  members.push_back({&overlay.host("F3"), overlay.vip("F3")});  // master
  for (const auto& w : workers) {
    members.push_back({&overlay.host(w), overlay.vip(w)});
  }
  apps::LssJob job(std::move(members), cfg);
  apps::LssReport report;
  bool done = false;
  job.run([&](apps::LssReport r) {
    report = std::move(r);
    done = true;
  });
  auto& loop = overlay.loop();
  const auto deadline = loop.now() + util::seconds(4 * 3600);
  while (!done && loop.now() < deadline) {
    loop.run_until(loop.now() + util::seconds(30));
  }
  return report;
}

}  // namespace

int main() {
  bench::banner("Table IV: LSS image analysis over IPOP (seq vs parallel)",
                "Table IV");

  std::printf("building UDP-mode overlay (sequential run)...\n");
  auto seq_overlay = bench::make_overlay(brunet::TransportAddress::Proto::kUdp);
  std::printf("running sequential LSS (worker: V1)...\n");
  auto seq = run_lss(*seq_overlay, {"V1"});

  std::printf("building UDP-mode overlay (parallel run)...\n");
  auto par_overlay = bench::make_overlay(brunet::TransportAddress::Proto::kUdp);
  std::printf("running parallel LSS (workers: F1 F2 V1 L1)...\n");
  auto par = run_lss(*par_overlay, {"F1", "F2", "V1", "L1"});

  util::Table table({"# of nodes", "image 1 (s)", "images 2-6 (s)",
                     "total (s)"});
  table.add_row({"paper: 1", "811", "834", "1645"});
  table.add_row({"ours : 1", util::Table::num(seq.first_image(), 0),
                 util::Table::num(seq.remaining_images(), 0),
                 util::Table::num(seq.total(), 0)});
  table.add_rule();
  table.add_row({"paper: 4", "378", "217", "595"});
  table.add_row({"ours : 4", util::Table::num(par.first_image(), 0),
                 util::Table::num(par.remaining_images(), 0),
                 util::Table::num(par.total(), 0)});
  std::printf("%s", table.render().c_str());

  const double paper_speedup = (834.0 / 5) / (217.0 / 5);
  const double our_speedup =
      seq.remaining_images() / std::max(1e-9, par.remaining_images());
  std::printf(
      "\nwarm-cache parallel speedup: paper %.1fx, measured %.1fx\n"
      "paper claim: first image is slow (cold NFS caches force remote I/O\n"
      "over the virtual WAN); once databases are cached locally the\n"
      "parallel run achieves near-linear speedup — and none of this would\n"
      "run at all without IPOP, since the nodes span three firewalled\n"
      "domains with no physical bidirectional connectivity.\n",
      paper_speedup, our_speedup);
  return seq.ok && par.ok ? 0 : 1;
}
