// Table I: mean and standard deviation of 1000 ping round-trip times,
// LAN (F2<->F4) and WAN (F4<->V1), physical network vs IPOP-TCP vs
// IPOP-UDP.
//
// Paper values (ms, mean/stddev):
//   LAN physical 0.898/2.843 (TCP-run) and 0.625/0.214 (UDP-run)
//   LAN IPOP-TCP 7.832/21.704    LAN IPOP-UDP 6.859/3.180
//   WAN physical 38.801/6.541 (TCP-run) and 34.492/0.702 (UDP-run)
//   WAN IPOP-TCP 48.539/3.117    WAN IPOP-UDP 45.896/9.782
#include "common.hpp"

namespace {

using namespace ipop;
using brunet::TransportAddress;

struct Row {
  std::string label;
  double paper_mean, paper_std;
  double mean = 0, stddev = 0;
};

constexpr int kPings = 1000;

}  // namespace

int main() {
  bench::banner("Table I: ping RTT, physical vs IPOP (1000 pings)",
                "Table I");

  std::vector<Row> rows = {
      {"LAN physical (TCP run)", 0.898, 2.843},
      {"LAN IPOP-TCP", 7.832, 21.704},
      {"LAN physical (UDP run)", 0.625, 0.214},
      {"LAN IPOP-UDP", 6.859, 3.180},
      {"WAN physical (TCP run)", 38.801, 6.541},
      {"WAN IPOP-TCP", 48.539, 3.117},
      {"WAN physical (UDP run)", 34.492, 0.702},
      {"WAN IPOP-UDP", 45.896, 9.782},
  };

  const auto interval = util::milliseconds(100);
  for (auto proto :
       {TransportAddress::Proto::kTcp, TransportAddress::Proto::kUdp}) {
    const bool tcp = proto == TransportAddress::Proto::kTcp;
    std::printf("building %s-mode overlay...\n", tcp ? "TCP" : "UDP");
    auto overlay = bench::make_overlay(proto);
    auto& loop = overlay->loop();
    auto& tb = overlay->testbed();

    // Physical baselines (the paper re-measured them in each run).
    auto lan_phys = bench::run_pings(loop, tb.f2->stack(),
                                     tb.f4_lan_ip, kPings, interval);
    // V1 is firewalled: the physical WAN baseline must originate at V1.
    auto wan_phys = bench::run_pings(loop, tb.v1->stack(),
                                     tb.f4_pub_ip, kPings, interval);
    // Virtual network measurements.
    auto lan_ipop = bench::run_pings(loop, tb.f2->stack(),
                                     overlay->vip("F4"), kPings, interval);
    auto wan_ipop = bench::run_pings(loop, tb.v1->stack(),
                                     overlay->vip("F4"), kPings, interval);

    const std::size_t base = tcp ? 0 : 2;
    rows[base + 0].mean = lan_phys.rtts_ms.mean();
    rows[base + 0].stddev = lan_phys.rtts_ms.stddev();
    rows[base + 1].mean = lan_ipop.rtts_ms.mean();
    rows[base + 1].stddev = lan_ipop.rtts_ms.stddev();
    rows[base + 4].mean = wan_phys.rtts_ms.mean();
    rows[base + 4].stddev = wan_phys.rtts_ms.stddev();
    rows[base + 5].mean = wan_ipop.rtts_ms.mean();
    rows[base + 5].stddev = wan_ipop.rtts_ms.stddev();
  }

  util::Table table({"configuration", "paper mean/std (ms)",
                     "measured mean/std (ms)", "overhead vs physical"});
  double phys_mean = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (i % 2 == 0) {
      phys_mean = r.mean;
      if (i > 0) table.add_rule();
    }
    std::string overhead = "-";
    if (i % 2 == 1) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "+%.3f ms", r.mean - phys_mean);
      overhead = buf;
    }
    table.add_row({r.label, bench::ms_pair(r.paper_mean, r.paper_std),
                   bench::ms_pair(r.mean, r.stddev), overhead});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper claim: IPOP single-hop latency overhead is 6-10 ms on an\n"
      "unoptimized prototype; the same overhead appears on LAN and WAN,\n"
      "so it is amortized over the WAN's physical RTT.\n");
  return 0;
}
