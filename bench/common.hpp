// Shared helpers for the paper-reproduction bench binaries.
//
// Each bench regenerates one table or figure from the paper: it builds the
// corresponding testbed, runs the paper's workload, and prints the paper's
// reported values next to our measured values so the shape comparison is
// immediate.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ipop/fig4_overlay.hpp"
#include "net/ping.hpp"
#include "net/ttcp.hpp"
#include "util/table.hpp"

namespace ipop::bench {

/// Shared `--shards N` plumbing for the scale-capable benches: parse the
/// flag's value, clamping to >= 1 (0 or garbage means "single shard").
/// Shard count never changes results — only wall-clock — so benches
/// accept it uniformly and pass it straight to Network::plan_shards().
inline int parse_shards(const char* value) {
  return std::max(1, std::atoi(value));
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s of \"IP over P2P\", IPPS 2006)\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

/// Run `count` pings from a host's stack and block (in simulated time)
/// until the run completes; returns the result.
inline net::PingResult run_pings(sim::EventLoop& loop, net::Stack& from,
                                 net::Ipv4Address to, int count,
                                 util::Duration interval,
                                 std::size_t payload = 56) {
  net::Pinger pinger(from);
  net::Pinger::Options opts;
  opts.count = count;
  opts.interval = interval;
  opts.timeout = util::seconds(5);
  opts.payload_size = payload;
  net::PingResult result;
  bool done = false;
  pinger.run(to, opts, [&](net::PingResult r) {
    result = std::move(r);
    done = true;
  });
  while (!done) loop.run_until(loop.now() + util::milliseconds(500));
  return result;
}

/// One ttcp transfer (sender -> receiver); returns the receiver-side
/// result (bytes + elapsed measured at the sink, like the original tool).
inline net::TtcpResult run_ttcp(sim::EventLoop& loop, net::Stack& from,
                                net::Stack& to, net::Ipv4Address to_ip,
                                std::uint64_t bytes, std::uint16_t port) {
  net::TtcpReceiver receiver(to, port);
  net::TtcpSender sender(from);
  net::TtcpSender::Options opts;
  opts.total_bytes = bytes;
  net::TtcpResult result;
  bool done = false;
  receiver.set_done([&](net::TtcpResult r) {
    result = r;
    done = true;
  });
  sender.run(to_ip, port, opts, [](net::TtcpResult) {});
  // Generous ceiling: even the slowest tunneled WAN transfer finishes
  // well inside two simulated hours.
  const auto deadline = loop.now() + util::seconds(7200);
  while (!done && loop.now() < deadline) {
    loop.run_until(loop.now() + util::seconds(5));
  }
  return result;
}

/// Build a Figure-4 IPOP overlay for a transport mode, converge it, and
/// guarantee direct overlay links for the measured pairs.
inline std::unique_ptr<core::Fig4Overlay> make_overlay(
    brunet::TransportAddress::Proto proto,
    const core::Fig4OverlayOptions& base = {}) {
  core::Fig4OverlayOptions opts = base;
  opts.transport = proto;
  auto overlay = std::make_unique<core::Fig4Overlay>(opts);
  overlay->start_all();
  overlay->converge(util::seconds(240));
  // The pairs measured by Tables I-III (always dialable in one direction).
  overlay->link_pair("F2", "F4");
  overlay->link_pair("F4", "V1");
  return overlay;
}

/// Follow greedy routing over live connection tables: the overlay path
/// src -> dst, mirroring BrunetNode::route's next-hop choice.
inline std::vector<brunet::Address> overlay_path(
    const std::map<brunet::Address, brunet::BrunetNode*>& by_addr,
    brunet::Address src, brunet::Address dst) {
  std::vector<brunet::Address> path{src};
  brunet::Address cur = src;
  for (int hops = 0; hops < 32; ++hops) {
    if (cur == dst) return path;
    auto it = by_addr.find(cur);
    if (it == by_addr.end()) break;
    const auto* best = it->second->table().closest_to(dst);
    if (best == nullptr || !brunet::Address::closer(dst, best->addr, cur)) {
      break;
    }
    cur = best->addr;
    path.push_back(cur);
  }
  return path;
}

inline std::string ms_pair(double mean, double stddev) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%7.3f / %7.3f", mean, stddev);
  return buf;
}

}  // namespace ipop::bench
