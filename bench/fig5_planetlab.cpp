// Figure 5: distribution of 10000 ping RTTs over a 118-node Planet-Lab
// overlay, with two overlay hops between the ping endpoints.
//
// Paper observations: average RTT in excess of 1.6 s; ~1.4 s of that is
// IPOP overhead caused by CPU contention at the intermediate user-level
// routers (loads above 10); forward and reverse paths differed.
#include <algorithm>

#include "common.hpp"
#include "ipop/node.hpp"
#include "net/topology.hpp"
#include "util/stats.hpp"

namespace {
using namespace ipop;
using bench::overlay_path;
}  // namespace

int main() {
  bench::banner(
      "Figure 5: ping RTT distribution over a 118-node Planet-Lab overlay",
      "Figure 5");

  net::PlanetLabOptions plopts;
  auto tb = net::build_planetlab(plopts);
  auto& loop = tb.net->loop();

  // Two lightly loaded endpoint machines (the paper's F2 and F4) join the
  // Planet-Lab overlay from the UF campus.
  std::vector<std::unique_ptr<core::IpopNode>> nodes;
  std::vector<net::Host*> all_hosts = tb.hosts;
  for (int i = 0; i < 2; ++i) {
    net::StackConfig scfg;
    scfg.per_packet_delay = util::microseconds(30);
    auto& h = tb.net->add_host(i == 0 ? "F2" : "F4", scfg);
    const net::Ipv4Address hip(44, 0, static_cast<std::uint8_t>(i), 2);
    sim::LinkConfig access;
    access.delay = util::milliseconds(5);
    access.bandwidth_bps = 100e6;
    const net::Ipv4Address gw(44, 0, static_cast<std::uint8_t>(i), 1);
    tb.net->connect(h.stack(), {"eth0", hip, 24}, tb.core->stack(),
                    {"uf" + std::to_string(i), gw, 24}, access);
    h.stack().add_route(net::Ipv4Prefix::parse("0.0.0.0/0"), 0, gw);
    all_hosts.push_back(&h);
  }

  // Every machine runs an IPOP node; the 118 Planet-Lab ones are loaded.
  const brunet::TransportAddress seed{
      brunet::TransportAddress::Proto::kUdp, tb.ips[0], 17001};
  std::map<brunet::Address, brunet::BrunetNode*> by_addr;
  for (std::size_t i = 0; i < all_hosts.size(); ++i) {
    core::IpopConfig cfg;
    cfg.tap.ip = net::Ipv4Address(
        172, 16, static_cast<std::uint8_t>(1 + i / 200),
        static_cast<std::uint8_t>(1 + i % 200));
    cfg.overlay.maintenance_interval = util::seconds(2);
    // Planet-Lab routers keep shortcuts so greedy paths are short; the
    // two measurement endpoints build none (the paper's F2/F4 reached
    // each other through intermediate overlay routers, 2 hops).
    const bool endpoint = i >= all_hosts.size() - 2;
    cfg.overlay.shortcut_target = endpoint ? 0 : 6;
    cfg.overlay.edge_idle_ping = util::seconds(30);
    cfg.overlay.edge_timeout = util::seconds(90);
    auto node = std::make_unique<core::IpopNode>(*all_hosts[i], cfg);
    if (i != 0) node->add_seed(seed);
    nodes.push_back(std::move(node));
  }
  std::printf("joining %zu nodes to the overlay...\n", nodes.size());
  for (auto& n : nodes) n->start();
  loop.run_until(loop.now() + util::seconds(300));
  for (auto& n : nodes) {
    by_addr[n->overlay().address()] = &n->overlay();
  }

  auto& f2 = *nodes[nodes.size() - 2];
  auto& f4 = *nodes[nodes.size() - 1];
  const auto fwd = overlay_path(by_addr, f2.overlay().address(),
                                f4.overlay().address());
  const auto rev = overlay_path(by_addr, f4.overlay().address(),
                                f2.overlay().address());
  std::printf("overlay path F2->F4: %zu hops; F4->F2: %zu hops%s\n",
              fwd.size() - 1, rev.size() - 1,
              fwd.size() != rev.size() ||
                      !std::equal(fwd.begin(), fwd.end(), rev.rbegin())
                  ? " (asymmetric, as the paper observed)"
                  : "");

  std::printf("running 10000 pings F2 -> F4 over the loaded overlay...\n");
  auto result = bench::run_pings(loop, f2.host().stack(), f4.virtual_ip(),
                                 10000, util::milliseconds(500));

  util::Histogram hist(0.0, 8000.0, 32);  // ms
  for (double rtt : result.rtts_ms.values()) hist.add(rtt);

  std::printf("\nreceived %d/%d; RTT mean %.0f ms, stddev %.0f ms, "
              "median %.0f ms, p95 %.0f ms\n",
              result.received, result.sent, result.rtts_ms.mean(),
              result.rtts_ms.stddev(), result.rtts_ms.percentile(50),
              result.rtts_ms.percentile(95));
  std::printf("paper: mean > 1600 ms, ~1400 ms of it IPOP overhead from "
              "CPU loads > 10 at the intermediate routing nodes\n\n");
  std::printf("RTT distribution (ms):\n%s\n",
              hist.render(48, "ms").c_str());
  std::printf("CSV:\n%s", hist.to_csv().c_str());
  return 0;
}
