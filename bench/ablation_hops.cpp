// Ablation C: per-hop overhead and the paper's amortization argument.
//
// Section IV-B argues the fixed user-level overhead is large relative to
// a sub-millisecond LAN RTT but amortized over a 35 ms WAN path.  Here we
// build a thin ring (near=1, no shortcuts) on one LAN, compute the actual
// greedy path length from each node's live connection table, and show RTT
// growing linearly with the measured overlay hop count: every extra
// user-level router adds the same per-hop routing cost.
#include <map>

#include "common.hpp"
#include "ipop/node.hpp"

namespace {
using namespace ipop;
}

int main() {
  bench::banner("Ablation: RTT vs overlay hop count", "Section IV-B/IV-D");

  constexpr int kNodes = 10;
  net::Network net{777};
  auto& sw = net.add_switch("sw");
  sim::LinkConfig lan;
  lan.delay = util::microseconds(200);
  std::vector<net::Host*> hosts;
  std::vector<std::unique_ptr<core::IpopNode>> nodes;
  for (int i = 0; i < kNodes; ++i) {
    auto& h = net.add_host("h" + std::to_string(i));
    net.connect_to_switch(
        h.stack(),
        {"eth0", net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
         24},
        sw, lan);
    hosts.push_back(&h);
    core::IpopConfig cfg;
    cfg.tap.ip = net::Ipv4Address(172, 16, 0, static_cast<std::uint8_t>(i + 2));
    cfg.overlay.near_per_side = 1;
    cfg.overlay.shortcut_target = 0;
    auto node = std::make_unique<core::IpopNode>(h, cfg);
    if (i > 0) {
      node->add_seed({brunet::TransportAddress::Proto::kUdp,
                      net::Ipv4Address(10, 0, 0, 1), 17001});
    }
    nodes.push_back(std::move(node));
  }
  for (auto& n : nodes) n->start();
  net.loop().run_until(net.loop().now() + util::seconds(180));

  std::map<brunet::Address, brunet::BrunetNode*> by_addr;
  for (auto& n : nodes) by_addr[n->overlay().address()] = &n->overlay();

  // Ping every destination from node 0; bucket by the *measured* greedy
  // path length.
  std::map<std::size_t, util::RunningStats> by_hops;
  for (int j = 1; j < kNodes; ++j) {
    const auto path =
        bench::overlay_path(by_addr, nodes[0]->overlay().address(),
                            nodes[static_cast<std::size_t>(j)]->overlay().address());
    if (path.empty() ||
        path.back() != nodes[static_cast<std::size_t>(j)]->overlay().address()) {
      continue;  // not routable via greedy snapshot (should not happen)
    }
    auto result = bench::run_pings(
        net.loop(), hosts[0]->stack(),
        net::Ipv4Address(172, 16, 0, static_cast<std::uint8_t>(j + 2)), 100,
        util::milliseconds(50));
    if (result.received > 0) {
      by_hops[path.size() - 1].add(result.rtts_ms.mean());
    }
  }

  util::Table table({"overlay hops", "ping RTT mean (ms)",
                     "marginal cost (ms/hop)"});
  double prev = 0;
  std::size_t prev_hops = 0;
  for (const auto& [hops, stats] : by_hops) {
    std::string marginal = "-";
    if (prev_hops != 0 && hops > prev_hops) {
      marginal = util::Table::num(
          (stats.mean() - prev) / static_cast<double>(hops - prev_hops), 3);
    }
    table.add_row({std::to_string(hops), util::Table::num(stats.mean(), 3),
                   marginal});
    prev = stats.mean();
    prev_hops = hops;
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: RTT grows ~linearly with measured overlay hops.\n"
      "The end-to-end 6-10 ms overhead the paper reports for one hop is\n"
      "dominated by the *endpoint* capture/inject latency; each additional\n"
      "overlay router adds its (smaller) per-hop forwarding cost.\n");
  return 0;
}
