// Churn soak: the self-configuration workload.
//
// N IPOP nodes boot with no preassigned virtual IP on one simulated LAN,
// lease addresses through DHCP-over-the-DHT, and are then subjected to
// Poisson churn — graceful leaves (kDeparting + DHT handoff), abrupt
// failures (keepalive-miss detection + re-replication) and re-joins (a
// fresh lease acquisition) — while the harness continuously audits the
// three viability metrics the related smart-grid trade-off study singles
// out (arXiv 2112.06848):
//
//   * virtual-IP acquisition latency (join cost under churn),
//   * duplicate leases (the atomic-create invariant; must be zero),
//   * Brunet-ARP resolution success rate (can traffic still find nodes).
//
// Results go to BENCH_churn_soak.json in google-benchmark JSON shape so
// tools/bench_gate.py --suite churn can gate CI on them.
//
//   bench_churn_soak [--nodes N] [--churn-minutes M] [--churn-rate R]
//                    [--seed S] [--shards K] [--hostile]
//                    [--hijack-fraction F] [--out PATH]
//
// R is expressed in events per node per minute (0.10 = "10% churn").
// --shards K runs the same scenario on K engine shards; the event-trace
// digest and every protocol counter are identical for any K (the gate
// compares the legs), only wall_seconds changes.
//
// --hostile puts every node behind its own NAT box (type mix cycling
// full-cone / restricted / port-restricted / symmetric, with a TCP-native
// minority), every site on the *same* 192.168.0.0/24 prefix — the
// worst-case internet where no advertised private address is dialable and
// every link must be hole-punched or relayed.  Only the seed gets a
// port-forward pinhole.  The run additionally audits the traversal
// outcome (direct / punched / relayed) of every formed link per NAT-type
// pair and emits the rates to BENCH_hostile_soak.json for
// tools/bench_gate.py --suite hostile.
//
// --hijack-fraction F turns roughly F of the nodes (deterministically
// chosen) into malicious insiders: fully protocol-conformant members
// that additionally forge writes against OTHER nodes' DHT keys —
// overwriting a victim's Brunet-ARP binding with their own (correctly
// signed) identity, overwriting its DHCP lease record, and racing
// create() on its lease key.  Every attempt and its outcome is counted;
// hijacks_succeeded must be exactly 0 (the storing-node ownership gate,
// netsukuku-ANDNA style), which both the binary and the hostile bench
// gate enforce.
#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "ipop/node.hpp"
#include "net/nat.hpp"
#include "net/topology.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace {

using ipop::util::milliseconds;
using ipop::util::seconds;

struct Options {
  int nodes = 64;
  double churn_minutes = 20.0;
  double churn_rate = 0.10;  // events / node / minute
  std::uint64_t seed = 1;
  double warmup_seconds = 0.0;  // 0 = auto-scale with node count
  int shards = 1;
  bool hostile = false;
  /// Fraction of nodes that actively attempt lease/ARP hijacks.
  double hijack_fraction = 0.0;
  std::string out;  // default depends on --hostile
};

// Underlay address for node i: base-250 digits under 10.0.0.0/8, so one
// flat segment holds up to ~15.6M hosts (the old 10.0.x.y/16 scheme
// overflowed its third octet past ~12.8k nodes).
ipop::net::Ipv4Address underlay_ip(int i) {
  const auto u = static_cast<std::uint32_t>(i);
  return ipop::net::Ipv4Address(
      10, static_cast<std::uint8_t>(u / 62500),
      static_cast<std::uint8_t>((u / 250) % 250),
      static_cast<std::uint8_t>(u % 250 + 1));
}

struct SoakNode {
  ipop::net::Host* host = nullptr;
  /// Hostile mode: the node's own NAT box and its configured type (the
  /// ground truth the traversal audit classifies link outcomes against).
  ipop::net::NatBox* nat = nullptr;
  ipop::net::NatType nat_type = ipop::net::NatType::kFullCone;
  std::unique_ptr<ipop::core::IpopNode> node;
  /// Hijack mode: this node forges writes against other nodes' records.
  bool attacker = false;
  bool live = false;
  ipop::util::TimePoint started{};
  ipop::util::TimePoint configured{};
  /// Acquisition samples appended by the configured handler on the node's
  /// shard thread; the main thread harvests them between engine windows
  /// (the barrier orders the handoff, so no lock is needed).
  std::vector<double> pending_acq_ms;
};

struct Metrics {
  ipop::util::Samples acquisition_ms;
  std::uint64_t churn_events = 0;
  std::uint64_t joins = 0;
  std::uint64_t graceful_leaves = 0;
  std::uint64_t failures = 0;
  std::uint64_t duplicate_leases = 0;
  std::uint64_t lease_audits = 0;
  std::uint64_t resolution_attempts = 0;
  // Resolve callbacks execute on the prober's shard thread; the totals
  // are order-independent sums, so plain atomics keep them exact (and
  // TSan-clean) for any shard count.
  std::atomic<std::uint64_t> resolution_successes = 0;
  std::atomic<std::uint64_t> resolution_aborted = 0;
  std::atomic<std::uint64_t> resolution_misses = 0;  // lookup found nothing
  std::atomic<std::uint64_t> resolution_wrong = 0;   // stale owner returned
  // Hijack audit: forged writes issued against other nodes' keys, and
  // their outcomes.  Callbacks fire on the attacker's shard thread.
  std::uint64_t hijacks_attempted = 0;
  std::atomic<std::uint64_t> hijacks_succeeded = 0;
  std::atomic<std::uint64_t> hijacks_rejected = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--nodes") == 0) {
      opt.nodes = std::atoi(next());
    } else if (std::strcmp(argv[i], "--churn-minutes") == 0) {
      opt.churn_minutes = std::atof(next());
    } else if (std::strcmp(argv[i], "--churn-rate") == 0) {
      opt.churn_rate = std::atof(next());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--warmup-seconds") == 0) {
      opt.warmup_seconds = std::atof(next());
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      opt.shards = ipop::bench::parse_shards(next());
    } else if (std::strcmp(argv[i], "--hostile") == 0) {
      opt.hostile = true;
    } else if (std::strcmp(argv[i], "--hijack-fraction") == 0) {
      opt.hijack_fraction = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      opt.out = next();
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      return 2;
    }
  }
  if (opt.out.empty()) {
    opt.out = opt.hostile ? "BENCH_hostile_soak.json" : "BENCH_churn_soak.json";
  }
  // Protocol-level visibility for debugging convergence stalls:
  //   IPOP_LOG=debug bench_churn_soak --hostile ...
  if (const char* lvl = std::getenv("IPOP_LOG")) {
    if (std::strcmp(lvl, "debug") == 0) {
      ipop::util::Logger::instance().set_level(ipop::util::LogLevel::kDebug);
    } else if (std::strcmp(lvl, "trace") == 0) {
      ipop::util::Logger::instance().set_level(ipop::util::LogLevel::kTrace);
    }
  }

  std::printf("%s soak: %d nodes, %.0f%% churn/node/min, %.1f min, "
              "%d shard%s\n",
              opt.hostile ? "hostile" : "churn", opt.nodes,
              opt.churn_rate * 100.0, opt.churn_minutes, opt.shards,
              opt.shards == 1 ? "" : "s");

  ipop::net::Network net{opt.seed};
  auto& sw = net.add_switch("core");
  // One flat segment at 10^4..10^5 ports only works with proxy ARP: a
  // flood-and-learn broadcast per resolution would cost O(N) frames per
  // join and O(N^2) across warmup.
  sw.set_arp_suppression(true);
  ipop::sim::LinkConfig lan;
  lan.delay = ipop::util::microseconds(200);

  // Greedy routing needs ~log2(N) shortcuts per node to keep hop counts
  // logarithmic; with a fixed handful, paths at 10^4 nodes outrun the
  // TTL.  Scale both with the ring size.
  const auto ring_bits = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(opt.nodes)));
  const std::size_t shortcut_target = std::max<std::size_t>(2, ring_bits);
  const auto ttl = static_cast<std::uint8_t>(
      std::min<std::size_t>(255, std::max<std::size_t>(32, 3 * ring_bits)));

  Metrics m;
  // Short resolver cache: bounds how long a re-leased address resolves to
  // its previous holder (shared with the probe-eligibility rule below).
  const auto kArpCacheTtl = seconds(10);
  std::vector<SoakNode> soak(static_cast<std::size_t>(opt.nodes));
  // Phase 1 — physical build only.  The shard planner needs the complete
  // link graph, and the overlay layer arms timers at construction, so
  // IPOP nodes may only be created after plan_shards() has re-homed every
  // host onto its final shard loop.
  // Hostile-mode NAT type mix: every fourth node symmetric, the rest
  // spread across the three cone variants.  Node 0 (the seed) is pinned
  // full-cone with a port-forward pinhole so bootstrap has one reachable
  // rendezvous; everything else is dialable only via punching or relays.
  const ipop::net::NatType kTypeMix[4] = {
      ipop::net::NatType::kFullCone, ipop::net::NatType::kRestrictedCone,
      ipop::net::NatType::kPortRestrictedCone,
      ipop::net::NatType::kSymmetric};
  const ipop::net::Ipv4Address kSiteHostIp(192, 168, 0, 2);
  const ipop::net::Ipv4Address kSiteGwIp(192, 168, 0, 1);
  for (int i = 0; i < opt.nodes; ++i) {
    auto& s = soak[static_cast<std::size_t>(i)];
    auto& h = net.add_host("c" + std::to_string(i));
    if (opt.hostile) {
      // Every site reuses the *same* RFC1918 prefix — as real home NATs
      // do — so an advertised private address is never dialable from
      // another site (and is in fact the dialer's own address, which the
      // linker's self-dial guard must skip).
      s.nat_type = i == 0 ? ipop::net::NatType::kFullCone : kTypeMix[i % 4];
      auto& nat = net.add_nat("nat" + std::to_string(i), s.nat_type);
      net.connect(h.stack(), {"eth0", kSiteHostIp, 24}, nat.stack(),
                  {"in", kSiteGwIp, 24}, lan);
      net.connect_to_switch(nat.stack(), {"out", underlay_ip(i), 8}, sw,
                            lan);
      h.stack().add_route(ipop::net::Ipv4Prefix::parse("0.0.0.0/0"), 0,
                          kSiteGwIp);
      if (i == 0) {
        nat.add_port_forward(ipop::net::IpProto::kUdp, 17001,
                             {kSiteHostIp, 17001});
      }
      s.nat = &nat;
    } else {
      net.connect_to_switch(h.stack(), {"eth0", underlay_ip(i), 8}, sw, lan);
    }
    s.host = &h;
  }
  net.plan_shards(static_cast<std::size_t>(opt.shards));
  // Trace every delivery so runs with different shard counts can be
  // compared digest-for-digest.
  net.engine().set_tracing(true);
  // Phase 2 — the overlay layer, on final shard loops.
  // Deterministic attacker roster for --hijack-fraction: every k-th node
  // (k = round(1/F)), never the seed.  Attackers are ordinary members in
  // every other respect — they lease, register and resolve like anyone.
  const int hijack_stride =
      opt.hijack_fraction > 0.0
          ? std::max(2, static_cast<int>(
                            std::lround(1.0 / opt.hijack_fraction)))
          : 0;
  for (int i = 0; i < opt.nodes; ++i) {
    auto& s = soak[static_cast<std::size_t>(i)];
    s.attacker = hijack_stride > 0 && i > 0 && i % hijack_stride == 1;
    ipop::core::IpopConfig cfg;
    cfg.use_dhcp = true;
    cfg.dhcp.renew_interval = seconds(30);
    // The lease pool must comfortably exceed the membership, or joins
    // degenerate into create-conflict retries.
    cfg.dhcp.pool_size = std::max<std::uint32_t>(
        4096, 2 * static_cast<std::uint32_t>(opt.nodes));
    cfg.overlay.near_per_side = 2;
    cfg.overlay.shortcut_target = shortcut_target;
    cfg.overlay.default_ttl = ttl;
    // Scale hardening: a third replica keeps the consult-on-miss window
    // covered through simultaneous owner+replica deaths (at 10k nodes a
    // crash every ~200 ms makes that routine, and an uncovered window
    // mints a duplicate that later costs a lease loss), and a short
    // resolver cache bounds how long re-leased addresses resolve stale.
    cfg.dht.replicas = 3;
    cfg.brunet_arp.cache_ttl = kArpCacheTtl;
    // Aggressive binding refresh: ring movement around SHA1(ip) can strand
    // an old binding at a consulted ex-replica until the holder's next
    // re-register put re-seats the fresh record; 15 s bounds that window
    // (60 s default is tuned for calm networks, not 10%/min churn).
    cfg.brunet_arp.reregister_interval = seconds(15);
    // Churn-tuned failure detection: a crashed node blackholes every
    // route through it until keepalive evicts the edge, so the soak runs
    // the aggressive timers a churn-heavy deployment would use.
    cfg.overlay.edge_idle_ping = seconds(2);
    cfg.overlay.edge_timeout = seconds(6);
    // Modest user-level costs: the soak measures protocol dynamics, not
    // the calibrated Planet-Lab processing model.
    cfg.cpu_per_packet = ipop::util::microseconds(50);
    cfg.sched_latency = ipop::util::microseconds(200);
    if (opt.hostile && i % 8 == 5) {
      // TCP-native minority: their links exercise the linker's
      // cross-protocol fallback on top of NAT traversal.
      cfg.overlay.transport = ipop::brunet::TransportAddress::Proto::kTcp;
    }
    s.node = std::make_unique<ipop::core::IpopNode>(*s.host, cfg);
    if (i > 0) {
      // Hostile mode: the dialable seed endpoint is the pinhole on its
      // NAT's *external* address, not the private interface address.
      s.node->add_seed({ipop::brunet::TransportAddress::Proto::kUdp,
                        opt.hostile ? underlay_ip(0)
                                    : soak[0].host->stack().interface_ip(0),
                        17001});
    }
    // Fires on the node's shard thread: touch only this node's slot and
    // stamp with the node's own shard clock (identical to global time up
    // to the conservative window, and exact at harvest barriers).
    s.node->set_configured_handler([&s](ipop::net::Ipv4Address) {
      s.configured = s.host->loop().now();
      s.pending_acq_ms.push_back(
          ipop::util::to_milliseconds(s.configured - s.started));
    });
  }
  // Move shard-thread acquisition samples into the shared histogram; only
  // ever called from the main thread between engine windows, in node-index
  // order, so the sample stream is identical for every shard count.
  auto harvest_acquisitions = [&] {
    for (auto& s : soak) {
      for (const double v : s.pending_acq_ms) m.acquisition_ms.add(v);
      s.pending_acq_ms.clear();
    }
  };
  const auto wall_start = std::chrono::steady_clock::now();

  // --- warmup: staggered joins, wait for full self-configuration --------
  // Batched stagger: one node per 250 ms step at small N (the original
  // schedule), groups at large N so 10^4 joins still fit ~16 sim-seconds
  // of stagger instead of 42 sim-minutes.
  const std::size_t join_batch =
      std::max<std::size_t>(1, soak.size() / 64);
  for (std::size_t i = 0; i < soak.size(); ++i) {
    auto& s = soak[i];
    s.started = net.now();
    s.live = true;
    s.node->start();
    if ((i + 1) % join_batch == 0) {
      net.run_until(net.now() + milliseconds(250));
    }
  }
  const double warmup_s =
      opt.warmup_seconds > 0.0
          ? opt.warmup_seconds
          : std::max(300.0, static_cast<double>(opt.nodes) * 0.1);
  const auto warmup_deadline =
      net.now() + ipop::util::seconds_f(warmup_s);
  auto all_configured = [&] {
    return std::all_of(soak.begin(), soak.end(), [](const SoakNode& s) {
      return !s.live || s.node->self_configured();
    });
  };
  auto table_stats = [&](double* mean, std::uint64_t* max) {
    std::uint64_t total = 0, worst = 0, count = 0;
    for (const auto& s : soak) {
      if (!s.live) continue;
      const auto sz =
          static_cast<std::uint64_t>(s.node->overlay().table().size());
      total += sz;
      worst = std::max(worst, sz);
      ++count;
    }
    *mean = count > 0 ? static_cast<double>(total) /
                            static_cast<double>(count)
                      : 0.0;
    *max = worst;
  };
  // Ring consistency: a node routes correctly only if its table holds its
  // true ring successor.  Sort the live membership by overlay address and
  // count nodes whose table is missing it.
  auto ring_consistency = [&](std::size_t* linked, std::size_t* total) {
    std::vector<const SoakNode*> live;
    for (const auto& s : soak) {
      if (s.live) live.push_back(&s);
    }
    std::sort(live.begin(), live.end(), [](const SoakNode* a,
                                           const SoakNode* b) {
      return a->node->overlay().address() < b->node->overlay().address();
    });
    *linked = 0;
    *total = live.size();
    for (std::size_t i = 0; i < live.size(); ++i) {
      const auto& succ = live[(i + 1) % live.size()]->node->overlay();
      if (live[i]->node->overlay().table().contains(succ.address())) {
        ++*linked;
      }
    }
  };
  // Churn against a half-built ring audits nothing but the mess the mass
  // join left behind: hold warmup until every node holds a lease AND the
  // ring is fully successor-linked, so the soak measures churn dynamics,
  // not join-storm residue.  The consistency sweep is O(n log n); check it
  // on a coarser cadence than the 500 ms sim step.
  // Leases minted while the overlay was still merging partitions can
  // collide; the epoch/readback repair resolves them within a few renew
  // cycles.  Warmup is not over until that reconciliation has finished,
  // so the churn phase starts from a duplicate-free address space and
  // any duplicate seen later is a genuine protocol violation.
  auto duplicate_vips = [&]() {
    std::map<ipop::net::Ipv4Address, int> holders;
    for (const auto& s : soak) {
      if (s.live && s.node->self_configured()) {
        ++holders[s.node->virtual_ip()];
      }
    }
    std::size_t dups = 0;
    for (const auto& [ip, count] : holders) {
      if (count > 1) dups += static_cast<std::size_t>(count - 1);
    }
    return dups;
  };
  std::size_t ring_linked = 0, ring_total = 0;
  auto next_progress = net.now() + seconds(30);
  while (net.now() < warmup_deadline) {
    net.run_until(net.now() + ipop::util::seconds_f(2.0));
    if (net.now() >= next_progress) {
      ring_consistency(&ring_linked, &ring_total);
      std::printf("  warmup t=%.0fs: ring %zu/%zu linked, %zu dup leases\n",
                  ipop::util::to_seconds(net.now()), ring_linked,
                  ring_total, duplicate_vips());
      next_progress = net.now() + seconds(30);
    }
    if (!all_configured()) continue;
    ring_consistency(&ring_linked, &ring_total);
    if (ring_linked == ring_total && duplicate_vips() == 0) break;
  }
  if (!all_configured()) {
    std::fprintf(stderr, "FAIL: warmup did not self-configure all nodes\n");
    for (std::size_t i = 0; i < soak.size(); ++i) {
      const auto& s = soak[i];
      if (!s.live || s.node->self_configured()) continue;
      const auto& ov = s.node->overlay();
      std::fprintf(stderr,
                   "  unconfigured c%zu %s (%s): table %zu, links %llu/%llu "
                   "fail, punches %llu sent %llu answered, relay edges "
                   "%llu\n",
                   i, ov.address().short_hex().c_str(),
                   ipop::net::nat_type_name(s.nat_type),
                   ov.table().size(),
                   (unsigned long long)ov.stats().links_failed,
                   (unsigned long long)ov.stats().links_started,
                   (unsigned long long)ov.stats().punch_requests_sent,
                   (unsigned long long)ov.stats().punch_responses,
                   (unsigned long long)ov.stats().relay_edges);
      const auto& seed_ov = soak[0].node->overlay();
      std::fprintf(stderr,
                   "    seed sees it: %d; seed relay fwd %llu, drops %llu\n",
                   seed_ov.table().contains(ov.address()) ? 1 : 0,
                   (unsigned long long)seed_ov.stats().relay_forwarded,
                   (unsigned long long)seed_ov.stats().relay_drop_no_route);
    }
    return 1;
  }
  ring_consistency(&ring_linked, &ring_total);
  if (ring_linked != ring_total) {
    std::fprintf(stderr,
                 "FAIL: warmup ring did not converge (%zu/%zu linked)\n",
                 ring_linked, ring_total);
    // Dump a few stuck nodes: who they are, what they see, and whether
    // the missing successor at least sees them (one-way link).
    std::vector<const SoakNode*> live;
    for (const auto& s : soak) {
      if (s.live) live.push_back(&s);
    }
    std::sort(live.begin(), live.end(), [](const SoakNode* a,
                                           const SoakNode* b) {
      return a->node->overlay().address() < b->node->overlay().address();
    });
    int dumped = 0;
    for (std::size_t i = 0; i < live.size() && dumped < 5; ++i) {
      const auto& me = live[i]->node->overlay();
      const auto& succ = live[(i + 1) % live.size()]->node->overlay();
      if (me.table().contains(succ.address())) continue;
      ++dumped;
      const auto* r = me.table().right_neighbor();
      const auto* l = me.table().left_neighbor();
      std::fprintf(stderr,
                   "  stuck %s: succ %s; table size %zu, right %s, left %s; "
                   "succ sees me: %d; succ table size %zu\n",
                   me.address().short_hex().c_str(),
                   succ.address().short_hex().c_str(), me.table().size(),
                   r ? r->addr.short_hex().c_str() : "-",
                   l ? l->addr.short_hex().c_str() : "-",
                   succ.table().contains(me.address()) ? 1 : 0,
                   succ.table().size());
      std::fprintf(stderr,
                   "    me: conn_req %llu, links %llu/%llu fail, locate_resp "
                   "%llu, exact_drop %llu; succ: conn_req %llu, links "
                   "%llu/%llu fail\n",
                   (unsigned long long)me.stats().connect_requests,
                   (unsigned long long)me.stats().links_failed,
                   (unsigned long long)me.stats().links_started,
                   (unsigned long long)me.stats().locate_responses,
                   (unsigned long long)me.stats().dropped_exact,
                   (unsigned long long)succ.stats().connect_requests,
                   (unsigned long long)succ.stats().links_failed,
                   (unsigned long long)succ.stats().links_started);
      std::fprintf(stderr, "    maintenance ticks: me %llu, succ %llu\n",
                   (unsigned long long)me.maintenance_ticks(),
                   (unsigned long long)succ.maintenance_ticks());
    }
    // Connected components of the overlay graph: a frozen consistency
    // count with healthy per-node maintenance is the signature of a
    // partitioned overlay (sub-rings closed over themselves).
    {
      std::map<ipop::brunet::Address, std::size_t> index;
      for (std::size_t i = 0; i < live.size(); ++i) {
        index[live[i]->node->overlay().address()] = i;
      }
      std::vector<int> comp(live.size(), -1);
      int ncomp = 0;
      std::vector<std::size_t> comp_size;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (comp[i] != -1) continue;
        const int c = ncomp++;
        comp_size.push_back(0);
        std::vector<std::size_t> stack{i};
        comp[i] = c;
        while (!stack.empty()) {
          const std::size_t n = stack.back();
          stack.pop_back();
          ++comp_size[(std::size_t)c];
          live[n]->node->overlay().table().for_each(
              [&](const ipop::brunet::Connection& conn) {
                auto it2 = index.find(conn.addr);
                if (it2 == index.end() || comp[it2->second] != -1) return;
                comp[it2->second] = c;
                stack.push_back(it2->second);
              });
        }
      }
      std::sort(comp_size.rbegin(), comp_size.rend());
      std::fprintf(stderr, "  overlay components: %d; sizes:", ncomp);
      for (std::size_t i = 0; i < comp_size.size() && i < 8; ++i) {
        std::fprintf(stderr, " %zu", comp_size[i]);
      }
      std::fprintf(stderr, "%s\n", comp_size.size() > 8 ? " ..." : "");
    }
    return 1;
  }
  if (duplicate_vips() != 0) {
    std::fprintf(stderr,
                 "FAIL: warmup leases did not reconcile (%zu duplicates)\n",
                 duplicate_vips());
    return 1;
  }
  harvest_acquisitions();
  double warm_conn_mean = 0.0;
  std::uint64_t warm_conn_max = 0;
  table_stats(&warm_conn_mean, &warm_conn_max);
  std::printf("ring consistency after warmup: %zu/%zu successor-linked\n",
              ring_linked, ring_total);
  std::printf("warmup done at t=%.1fs: %d nodes self-configured, "
              "mean acquisition %.1f ms, connections mean %.1f max %llu\n",
              ipop::util::to_seconds(net.now()), opt.nodes,
              m.acquisition_ms.mean(), warm_conn_mean,
              static_cast<unsigned long long>(warm_conn_max));

  // Partition-era duplicates reconcile *through* lease losses (the loser
  // detects the rival at renewal and re-acquires), so the warmup total is
  // the reconciliation bill, not churn instability.  Snapshot it here and
  // report churn-phase losses separately — that is the number the gate
  // bounds.
  std::uint64_t warmup_lease_losses = 0;
  for (const auto& s : soak) {
    warmup_lease_losses += s.node->dhcp()->stats().lost_leases;
  }
  std::printf("warmup lease reconciliations: %llu\n",
              static_cast<unsigned long long>(warmup_lease_losses));

  // --- churn + continuous audit ------------------------------------------
  ipop::util::Rng rng(opt.seed * 7919 + 13);
  const double events_per_minute =
      opt.churn_rate * static_cast<double>(opt.nodes);
  const auto t_end =
      net.now() + ipop::util::seconds_f(opt.churn_minutes * 60.0);

  auto live_configured = [&](ipop::util::Duration min_age) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < soak.size(); ++i) {
      if (soak[i].live && soak[i].node->self_configured() &&
          net.now() - soak[i].configured > min_age) {
        out.push_back(i);
      }
    }
    return out;
  };

  auto audit_leases = [&] {
    ++m.lease_audits;
    std::map<ipop::net::Ipv4Address, std::vector<std::size_t>> holders;
    for (std::size_t i = 0; i < soak.size(); ++i) {
      const auto& s = soak[i];
      if (s.live && s.node->self_configured()) {
        holders[s.node->virtual_ip()].push_back(i);
      }
    }
    for (const auto& [ip, idx] : holders) {
      if (idx.size() > 1) {
        m.duplicate_leases += static_cast<std::uint64_t>(idx.size() - 1);
        std::fprintf(stderr, "DUPLICATE LEASE: t=%.0fs %s held by %zu nodes:",
                     ipop::util::to_seconds(net.now()),
                     ip.to_string().c_str(), idx.size());
        for (const auto i : idx) {
          std::fprintf(stderr, " %s(acq t=%.0fs)",
                       soak[i].node->overlay().address().short_hex().c_str(),
                       ipop::util::to_seconds(soak[i].configured));
        }
        std::fprintf(stderr, "\n");
      }
    }
  };

  auto probe_resolution = [&] {
    auto probers = live_configured(seconds(2));
    // A probe target must have held its address for at least one resolver
    // cache TTL: the cache *by design* bounds how long a re-leased address
    // resolves to its previous holder, so a probe inside that window would
    // measure the (intended) cache-staleness bound, not the DHT.
    auto targets = live_configured(kArpCacheTtl + seconds(2));
    if (probers.size() < 2 || targets.empty()) return;
    // 16 probes per audit round: enough samples that the 0.99 floor is a
    // verdict on the protocol, not on one unlucky probe.
    for (int p = 0; p < 16; ++p) {
      auto ai = probers[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(probers.size()) - 1))];
      const auto bi = targets[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(targets.size()) - 1))];
      while (ai == bi) {
        ai = probers[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(probers.size()) - 1))];
      }
      const auto vip = soak[bi].node->virtual_ip();
      const auto expect = soak[bi].node->overlay().address();
      ++m.resolution_attempts;
      soak[ai].node->brunet_arp()->resolve(
          vip, [&m, &soak, ai, expect](
                   std::optional<ipop::core::ArpBinding> binding) {
            if (!soak[ai].live) {
              // The prober itself churned away mid-lookup; the timeout
              // says nothing about the DHT.
              ++m.resolution_aborted;
              return;
            }
            if (binding && binding->addr == expect) {
              ++m.resolution_successes;
            } else if (!binding) {
              ++m.resolution_misses;
            } else {
              ++m.resolution_wrong;
            }
          });
    }
  };

  // Hijack attempts: an attacker forges writes against a victim's DHT
  // keys, signed with the attacker's own (perfectly valid) identity —
  // the storing node must reject them on ownership, not signature
  // malformation.  Three shapes per round: overwrite the victim's
  // Brunet-ARP binding (resolution capture), overwrite its DHCP lease
  // record (lease theft by put), and race create() on its lease key
  // (lease theft by allocation).
  auto attempt_hijacks = [&] {
    if (hijack_stride == 0) return;
    const auto eligible = live_configured(seconds(2));
    std::vector<std::size_t> attackers;
    for (const auto i : eligible) {
      if (soak[i].attacker) attackers.push_back(i);
    }
    if (attackers.empty() || eligible.size() < 2) return;
    for (int p = 0; p < 4; ++p) {
      const auto ai = attackers[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(attackers.size()) - 1))];
      auto bi = eligible[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(eligible.size()) - 1))];
      if (bi == ai) continue;  // self-targeting proves nothing
      const auto vip = soak[bi].node->virtual_ip();
      auto& attacker = *soak[ai].node;
      // Forged binding/lease value: the attacker's overlay address and
      // public key — byte-for-byte what its honest registration would
      // carry, just bound to the victim's key.
      const auto& addr_bytes = attacker.overlay().address().bytes();
      const auto& pk = attacker.overlay().identity().keys.public_key().bytes;
      std::vector<std::uint8_t> forged(addr_bytes.begin(), addr_bytes.end());
      forged.insert(forged.end(), pk.begin(), pk.end());
      auto count_outcome = [&m](bool ok) {
        if (ok) {
          ++m.hijacks_succeeded;
        } else {
          ++m.hijacks_rejected;
        }
      };
      m.hijacks_attempted += 3;
      attacker.dht().put(ipop::core::BrunetArp::key_for(vip), forged,
                         count_outcome);
      attacker.dht().put(ipop::core::DhcpClient::key_for(vip), forged,
                         count_outcome);
      attacker.dht().create(ipop::core::DhcpClient::key_for(vip), forged,
                            count_outcome);
    }
  };

  auto churn_event = [&] {
    ++m.churn_events;
    std::vector<std::size_t> live;
    std::vector<std::size_t> down;
    for (std::size_t i = 1; i < soak.size(); ++i) {  // node 0 = seed, pinned
      (soak[i].live ? live : down).push_back(i);
    }
    const double live_fraction =
        static_cast<double>(live.size() + 1) / static_cast<double>(opt.nodes);
    const double roll = rng.uniform();
    if (!down.empty() && (live_fraction < 0.85 || roll < 0.4)) {
      const auto i = down[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(down.size()) - 1))];
      ++m.joins;
      soak[i].started = net.now();
      soak[i].live = true;
      soak[i].node->start();
    } else if (!live.empty()) {
      const auto i = live[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];
      soak[i].live = false;
      if (roll < 0.7) {
        ++m.graceful_leaves;
        soak[i].node->leave();
      } else {
        ++m.failures;
        soak[i].node->stop();  // crash: no departure notice
      }
    }
  };

  auto next_event =
      net.now() + ipop::util::seconds_f(rng.exponential(
                       60.0 / events_per_minute));
  auto next_audit = net.now() + seconds(5);
  while (net.now() < t_end) {
    const auto next = std::min(std::min(next_event, next_audit), t_end);
    net.run_until(next);
    if (net.now() >= next_event) {
      churn_event();
      next_event = net.now() + ipop::util::seconds_f(rng.exponential(
                                    60.0 / events_per_minute));
    }
    if (net.now() >= next_audit) {
      audit_leases();
      probe_resolution();
      attempt_hijacks();
      next_audit = net.now() + seconds(5);
    }
  }
  // Drain: let in-flight lookups and reacquisitions settle, final audit.
  net.run_until(net.now() + seconds(30));
  audit_leases();
  harvest_acquisitions();
  const double wall_seconds = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - wall_start).count();
  const std::string trace_digest = net.engine().trace_digest();

  std::uint64_t live_count = 0;
  std::uint64_t configured_count = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t rereplications = 0;
  std::uint64_t dhcp_conflicts = 0;
  std::uint64_t lease_losses = 0;
  std::uint64_t antientropy = 0;
  std::uint64_t keepalive_evictions = 0;
  std::uint64_t departures_seen = 0;
  std::uint64_t arp_invalidations = 0;
  std::uint64_t gets = 0, get_timeouts = 0, get_notfound = 0;
  std::uint64_t drop_ttl = 0, drop_no_route = 0, drop_exact = 0;
  std::uint64_t punch_req_sent = 0, punch_responses = 0;
  std::uint64_t links_punched = 0, links_relayed = 0, links_cross_proto = 0;
  std::uint64_t relay_edges = 0, relay_forwarded = 0, relay_no_route = 0;
  std::uint64_t relay_wrap_copied = 0;
  std::uint64_t dht_owner_rejects = 0, dht_sig_rejects = 0;
  for (const auto& s : soak) {
    if (s.live) {
      ++live_count;
      if (s.node->self_configured()) ++configured_count;
    }
    punch_req_sent += s.node->overlay().stats().punch_requests_sent;
    punch_responses += s.node->overlay().stats().punch_responses;
    links_punched += s.node->overlay().stats().links_punched;
    links_relayed += s.node->overlay().stats().links_relayed;
    links_cross_proto += s.node->overlay().stats().links_cross_proto;
    relay_edges += s.node->overlay().stats().relay_edges;
    relay_forwarded += s.node->overlay().stats().relay_forwarded;
    relay_no_route += s.node->overlay().stats().relay_drop_no_route;
    relay_wrap_copied += s.node->overlay().stats().relay_wrap_bytes_copied;
    handoffs += s.node->dht().stats().handoffs;
    rereplications += s.node->dht().stats().rereplications;
    gets += s.node->dht().stats().gets;
    get_timeouts += s.node->dht().stats().get_timeouts;
    get_notfound += s.node->dht().stats().get_notfound;
    dhcp_conflicts += s.node->dhcp()->stats().conflicts;
    lease_losses += s.node->dhcp()->stats().lost_leases;
    antientropy += s.node->dht().stats().antientropy_pushbacks;
    keepalive_evictions += s.node->overlay().stats().keepalive_evictions;
    departures_seen += s.node->overlay().stats().departures_seen;
    drop_ttl += s.node->overlay().stats().dropped_ttl;
    drop_no_route += s.node->overlay().stats().dropped_no_route;
    drop_exact += s.node->overlay().stats().dropped_exact;
    arp_invalidations += s.node->brunet_arp()->stats().invalidations;
    dht_owner_rejects += s.node->dht().stats().owner_rejects;
    dht_sig_rejects += s.node->dht().stats().sig_rejects;
  }
  const double resolution_rate =
      m.resolution_attempts > m.resolution_aborted
          ? static_cast<double>(m.resolution_successes) /
                static_cast<double>(m.resolution_attempts -
                                    m.resolution_aborted)
          : 1.0;
  const double acquired_fraction =
      live_count > 0 ? static_cast<double>(configured_count) /
                           static_cast<double>(live_count)
                     : 1.0;
  // Losses counted by the warmup reconciliation were billed there; the
  // churn-phase delta is the stability metric.
  const std::uint64_t churn_lease_losses =
      lease_losses - std::min(lease_losses, warmup_lease_losses);
  double end_conn_mean = 0.0;
  std::uint64_t end_conn_max = 0;
  table_stats(&end_conn_mean, &end_conn_max);
  ring_consistency(&ring_linked, &ring_total);
  std::printf("ring consistency at end: %zu/%zu successor-linked\n",
              ring_linked, ring_total);

  // --- hostile-mode traversal audit --------------------------------------
  // Classify every link between live nodes by how it was established —
  // direct dial, hole-punched, or relayed — bucketed by the NAT-type pair
  // of its endpoints.  Both directions of a link are inspected and the
  // strongest assistance wins (relayed > punched > direct): the side that
  // accepted an inbound dial legitimately sees its own leg as "direct".
  struct PairCell {
    std::uint64_t total = 0, punched = 0, relayed = 0;
  };
  PairCell cells[4][4] = {};  // upper triangle, indexed by type rank
  static const char* const kRankName[4] = {"fc", "rc", "pr", "sym"};
  auto type_rank = [](ipop::net::NatType t) {
    switch (t) {
      case ipop::net::NatType::kFullCone: return 0;
      case ipop::net::NatType::kRestrictedCone: return 1;
      case ipop::net::NatType::kPortRestrictedCone: return 2;
      case ipop::net::NatType::kSymmetric: return 3;
    }
    return 0;
  };
  std::uint64_t total_pairs = 0, total_punched = 0, total_relayed = 0;
  if (opt.hostile) {
    std::map<ipop::brunet::Address, std::size_t> addr_index;
    for (std::size_t i = 0; i < soak.size(); ++i) {
      if (soak[i].live) {
        addr_index[soak[i].node->overlay().address()] = i;
      }
    }
    std::map<std::pair<std::size_t, std::size_t>, int> outcome;
    for (std::size_t i = 0; i < soak.size(); ++i) {
      if (!soak[i].live) continue;
      soak[i].node->overlay().table().for_each(
          [&](const ipop::brunet::Connection& conn) {
            const auto it = addr_index.find(conn.addr);
            if (it == addr_index.end()) return;  // peer churned away
            int o = 0;
            if (conn.edge != nullptr &&
                conn.edge->remote().proto ==
                    ipop::brunet::TransportAddress::Proto::kRelay) {
              o = 2;
            } else if (conn.punched) {
              o = 1;
            }
            auto key = std::minmax(i, it->second);
            auto& cur = outcome[{key.first, key.second}];
            cur = std::max(cur, o);
          });
    }
    for (const auto& [key, o] : outcome) {
      int a = type_rank(soak[key.first].nat_type);
      int b = type_rank(soak[key.second].nat_type);
      if (a > b) std::swap(a, b);
      auto& c = cells[a][b];
      ++c.total;
      ++total_pairs;
      if (o == 2) {
        ++c.relayed;
        ++total_relayed;
      } else if (o == 1) {
        ++c.punched;
        ++total_punched;
      }
    }
    std::printf("traversal outcomes (%llu links between live nodes):\n",
                static_cast<unsigned long long>(total_pairs));
    for (int a = 0; a < 4; ++a) {
      for (int b = a; b < 4; ++b) {
        const auto& c = cells[a][b];
        if (c.total == 0) continue;
        std::printf("  %s-%s: %llu links, %llu punched, %llu relayed\n",
                    kRankName[a], kRankName[b],
                    static_cast<unsigned long long>(c.total),
                    static_cast<unsigned long long>(c.punched),
                    static_cast<unsigned long long>(c.relayed));
      }
    }
    std::printf("  punches: %llu sent, %llu answered; relays: %llu edges, "
                "%llu forwards, %llu no-route drops, %llu wrap bytes "
                "copied; cross-proto links %llu\n",
                static_cast<unsigned long long>(punch_req_sent),
                static_cast<unsigned long long>(punch_responses),
                static_cast<unsigned long long>(relay_edges),
                static_cast<unsigned long long>(relay_forwarded),
                static_cast<unsigned long long>(relay_no_route),
                static_cast<unsigned long long>(relay_wrap_copied),
                static_cast<unsigned long long>(links_cross_proto));
  }
  const std::uint64_t nonrelayed_sym_sym =
      cells[3][3].total - cells[3][3].relayed;
  const double relayed_edge_fraction =
      total_pairs > 0 ? static_cast<double>(total_relayed) /
                            static_cast<double>(total_pairs)
                      : 0.0;
  const double copied_per_forward =
      relay_forwarded > 0 ? static_cast<double>(relay_wrap_copied) /
                                static_cast<double>(relay_forwarded)
                          : static_cast<double>(relay_wrap_copied);

  std::printf(
      "soak done: %llu events (%llu joins, %llu leaves, %llu fails)\n"
      "  duplicate leases: %llu across %llu audits\n"
      "  resolution: %llu/%llu ok (%.4f; %llu aborted, %llu misses, "
      "%llu stale)\n"
      "  acquisition latency: mean %.1f ms, p95 %.1f ms, max %.1f ms\n"
      "  dht: %llu handoffs, %llu re-replications, %llu anti-entropy "
      "push-backs; dhcp conflicts %llu, leases lost %llu in churn "
      "(+%llu warmup reconciliation)\n"
      "  churn detection: %llu keepalive evictions, %llu departures seen, "
      "%llu arp invalidations\n"
      "  tables: connections mean %.1f max %llu; switch arp-suppressed "
      "%llu\n"
      "  dht gets: %llu total, %llu timeouts, %llu not-found; route drops: "
      "%llu ttl, %llu no-route, %llu exact\n",
      static_cast<unsigned long long>(m.churn_events),
      static_cast<unsigned long long>(m.joins),
      static_cast<unsigned long long>(m.graceful_leaves),
      static_cast<unsigned long long>(m.failures),
      static_cast<unsigned long long>(m.duplicate_leases),
      static_cast<unsigned long long>(m.lease_audits),
      static_cast<unsigned long long>(m.resolution_successes),
      static_cast<unsigned long long>(m.resolution_attempts -
                                      m.resolution_aborted),
      resolution_rate,
      static_cast<unsigned long long>(m.resolution_aborted),
      static_cast<unsigned long long>(m.resolution_misses),
      static_cast<unsigned long long>(m.resolution_wrong),
      m.acquisition_ms.mean(), m.acquisition_ms.percentile(95),
      m.acquisition_ms.percentile(100),
      static_cast<unsigned long long>(handoffs),
      static_cast<unsigned long long>(rereplications),
      static_cast<unsigned long long>(antientropy),
      static_cast<unsigned long long>(dhcp_conflicts),
      static_cast<unsigned long long>(churn_lease_losses),
      static_cast<unsigned long long>(warmup_lease_losses),
      static_cast<unsigned long long>(keepalive_evictions),
      static_cast<unsigned long long>(departures_seen),
      static_cast<unsigned long long>(arp_invalidations),
      end_conn_mean, static_cast<unsigned long long>(end_conn_max),
      static_cast<unsigned long long>(sw.arp_suppressed()),
      static_cast<unsigned long long>(gets),
      static_cast<unsigned long long>(get_timeouts),
      static_cast<unsigned long long>(get_notfound),
      static_cast<unsigned long long>(drop_ttl),
      static_cast<unsigned long long>(drop_no_route),
      static_cast<unsigned long long>(drop_exact));
  if (hijack_stride > 0) {
    std::printf("  hijacks: %llu forged writes issued, %llu accepted, "
                "%llu rejected; storing-node rejects: %llu owner, %llu "
                "signature\n",
                static_cast<unsigned long long>(m.hijacks_attempted),
                static_cast<unsigned long long>(m.hijacks_succeeded.load()),
                static_cast<unsigned long long>(m.hijacks_rejected.load()),
                static_cast<unsigned long long>(dht_owner_rejects),
                static_cast<unsigned long long>(dht_sig_rejects));
  }
  std::printf("  trace digest %s; wall %.1f s on %d shard%s\n",
              trace_digest.c_str(), wall_seconds, opt.shards,
              opt.shards == 1 ? "" : "s");

  // Same scenario on any shard count keeps the baseline-matched run name;
  // extra-shard legs get a suffixed name so the scale suite can compare
  // them against the 1-shard leg inside one JSON report.
  // A hijack leg gets its own "/hijack" suffix: the hostile gate's
  // prefix rules (^HostileSoak/) still cover it, while exact-name
  // baseline comparisons keep matching only the attacker-free leg.
  char run_name[64];
  const char* soak_name = opt.hostile ? "HostileSoak" : "ChurnSoak";
  const char* hijack_tag = hijack_stride > 0 ? "/hijack" : "";
  if (opt.shards > 1) {
    std::snprintf(run_name, sizeof run_name, "%s/%d%s/shards:%d", soak_name,
                  opt.nodes, hijack_tag, opt.shards);
  } else {
    std::snprintf(run_name, sizeof run_name, "%s/%d%s", soak_name, opt.nodes,
                  hijack_tag);
  }

  // google-benchmark JSON shape, so tools/bench_gate.py shares one parser.
  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"context\": {\n"
               "    \"executable\": \"bench_churn_soak\",\n"
               "    \"nodes\": %d,\n"
               "    \"churn_rate_per_node_per_min\": %.4f,\n"
               "    \"churn_minutes\": %.2f,\n"
               "    \"seed\": %llu,\n"
               "    \"hostile\": %s,\n"
               "    \"hijack_fraction\": %.4f,\n"
               "    \"shards\": %d\n"
               "  },\n"
               "  \"benchmarks\": [\n"
               "    {\n"
               "      \"name\": \"%s\",\n"
               "      \"run_type\": \"iteration\",\n"
               "      \"iterations\": 1,\n"
               "      \"real_time\": %.3f,\n"
               "      \"cpu_time\": %.3f,\n"
               "      \"time_unit\": \"s\",\n"
               "      \"churn_events\": %llu,\n"
               "      \"joins\": %llu,\n"
               "      \"graceful_leaves\": %llu,\n"
               "      \"failures\": %llu,\n"
               "      \"duplicate_leases\": %llu,\n"
               "      \"lease_audits\": %llu,\n"
               "      \"resolution_attempts\": %llu,\n"
               "      \"resolution_aborted\": %llu,\n"
               "      \"resolution_success_rate\": %.6f,\n"
               "      \"lease_acquired_fraction\": %.6f,\n"
               "      \"acquisition_latency_ms_mean\": %.3f,\n"
               "      \"acquisition_latency_ms_p95\": %.3f,\n"
               "      \"acquisition_latency_ms_max\": %.3f,\n"
               "      \"dht_handoffs\": %llu,\n"
               "      \"dht_rereplications\": %llu,\n"
               "      \"dhcp_conflicts\": %llu,\n"
               "      \"lease_losses\": %llu,\n"
               "      \"warmup_lease_reconciliations\": %llu,\n"
               "      \"dht_antientropy_pushbacks\": %llu,\n"
               "      \"keepalive_evictions\": %llu,\n"
               "      \"departures_seen\": %llu,\n"
               "      \"arp_invalidations\": %llu,\n",
               opt.nodes, opt.churn_rate, opt.churn_minutes,
               static_cast<unsigned long long>(opt.seed),
               opt.hostile ? "true" : "false", opt.hijack_fraction,
               opt.shards, run_name,
               ipop::util::to_seconds(net.now()),
               ipop::util::to_seconds(net.now()),
               static_cast<unsigned long long>(m.churn_events),
               static_cast<unsigned long long>(m.joins),
               static_cast<unsigned long long>(m.graceful_leaves),
               static_cast<unsigned long long>(m.failures),
               static_cast<unsigned long long>(m.duplicate_leases),
               static_cast<unsigned long long>(m.lease_audits),
               static_cast<unsigned long long>(m.resolution_attempts),
               static_cast<unsigned long long>(m.resolution_aborted),
               resolution_rate, acquired_fraction,
               m.acquisition_ms.mean(), m.acquisition_ms.percentile(95),
               m.acquisition_ms.percentile(100),
               static_cast<unsigned long long>(handoffs),
               static_cast<unsigned long long>(rereplications),
               static_cast<unsigned long long>(dhcp_conflicts),
               static_cast<unsigned long long>(churn_lease_losses),
               static_cast<unsigned long long>(warmup_lease_losses),
               static_cast<unsigned long long>(antientropy),
               static_cast<unsigned long long>(keepalive_evictions),
               static_cast<unsigned long long>(departures_seen),
               static_cast<unsigned long long>(arp_invalidations));
  if (opt.hostile) {
    // Per-NAT-type-pair traversal outcomes.  punch_success_rate_<a>_<b>
    // is the fraction of that pair's links that did NOT need a relay
    // (direct or punched both count: traversal succeeded).  The gate's
    // rate rules only apply where the companion pairs_<a>_<b> count is
    // nonzero, so quiet cells stay neutral.
    for (int a = 0; a < 4; ++a) {
      for (int b = a; b < 4; ++b) {
        const auto& c = cells[a][b];
        const double rate =
            c.total > 0 ? static_cast<double>(c.total - c.relayed) /
                              static_cast<double>(c.total)
                        : 1.0;
        std::fprintf(f,
                     "      \"pairs_%s_%s\": %llu,\n"
                     "      \"punched_%s_%s\": %llu,\n"
                     "      \"relayed_%s_%s\": %llu,\n"
                     "      \"punch_success_rate_%s_%s\": %.6f,\n",
                     kRankName[a], kRankName[b],
                     static_cast<unsigned long long>(c.total), kRankName[a],
                     kRankName[b], static_cast<unsigned long long>(c.punched),
                     kRankName[a], kRankName[b],
                     static_cast<unsigned long long>(c.relayed), kRankName[a],
                     kRankName[b], rate);
      }
    }
    std::fprintf(f,
                 "      \"links_audited\": %llu,\n"
                 "      \"links_punched_total\": %llu,\n"
                 "      \"links_relayed_total\": %llu,\n"
                 "      \"nonrelayed_sym_sym\": %llu,\n"
                 "      \"relayed_edge_fraction\": %.6f,\n"
                 "      \"punch_requests_sent\": %llu,\n"
                 "      \"punch_responses\": %llu,\n"
                 "      \"links_cross_proto\": %llu,\n"
                 "      \"relay_edges\": %llu,\n"
                 "      \"relay_forwarded\": %llu,\n"
                 "      \"relay_drop_no_route\": %llu,\n"
                 "      \"relay_wrap_bytes_copied\": %llu,\n"
                 "      \"bytes_copied_per_forward\": %.6f,\n",
                 static_cast<unsigned long long>(total_pairs),
                 static_cast<unsigned long long>(total_punched),
                 static_cast<unsigned long long>(total_relayed),
                 static_cast<unsigned long long>(nonrelayed_sym_sym),
                 relayed_edge_fraction,
                 static_cast<unsigned long long>(punch_req_sent),
                 static_cast<unsigned long long>(punch_responses),
                 static_cast<unsigned long long>(links_cross_proto),
                 static_cast<unsigned long long>(relay_edges),
                 static_cast<unsigned long long>(relay_forwarded),
                 static_cast<unsigned long long>(relay_no_route),
                 static_cast<unsigned long long>(relay_wrap_copied),
                 copied_per_forward);
  }
  if (opt.hostile || hijack_stride > 0) {
    // Every hostile run emits the hijack counters — the gate's zero
    // rule on hijacks_succeeded must bite even on attacker-free legs
    // (where all three stay 0 and the ownership rejects are organic).
    std::fprintf(f,
                 "      \"hijacks_attempted\": %llu,\n"
                 "      \"hijacks_succeeded\": %llu,\n"
                 "      \"hijacks_rejected\": %llu,\n"
                 "      \"dht_owner_rejects\": %llu,\n"
                 "      \"dht_sig_rejects\": %llu,\n",
                 static_cast<unsigned long long>(m.hijacks_attempted),
                 static_cast<unsigned long long>(m.hijacks_succeeded.load()),
                 static_cast<unsigned long long>(m.hijacks_rejected.load()),
                 static_cast<unsigned long long>(dht_owner_rejects),
                 static_cast<unsigned long long>(dht_sig_rejects));
  }
  std::fprintf(f,
               "      \"shards\": %d,\n"
               "      \"wall_seconds\": %.3f,\n"
               "      \"trace_digest\": \"%s\"\n"
               "    }\n"
               "  ]\n"
               "}\n",
               opt.shards, wall_seconds, trace_digest.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", opt.out.c_str());

  // The soak binary itself enforces the hard invariants so a CI leg
  // without the gate script still fails loudly.
  if (m.duplicate_leases != 0) {
    std::fprintf(stderr, "FAIL: duplicate leases\n");
    return 1;
  }
  if (resolution_rate < 0.99) {
    std::fprintf(stderr, "FAIL: resolution success %.4f < 0.99\n",
                 resolution_rate);
    return 1;
  }
  if (opt.hostile) {
    // Symmetric-symmetric pairs cannot hole-punch (per-destination
    // mappings); any such link NOT riding a relay tunnel means the
    // outcome classifier or the fallback logic is broken.
    if (nonrelayed_sym_sym != 0) {
      std::fprintf(stderr, "FAIL: %llu sym-sym links not relayed\n",
                   static_cast<unsigned long long>(nonrelayed_sym_sym));
      return 1;
    }
    // Relayed tunnels must stay zero-copy end to end: per-path headroom
    // means the inner wire image is built deep enough that the wrapper
    // prepends in place.
    if (relay_wrap_copied != 0) {
      std::fprintf(stderr, "FAIL: relay wrap copied %llu bytes\n",
                   static_cast<unsigned long long>(relay_wrap_copied));
      return 1;
    }
  }
  // Cryptographic ownership is an all-or-nothing property: a single
  // accepted forged write means some storing node let an attacker
  // capture another node's lease or ARP binding.
  if (m.hijacks_succeeded.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu forged writes accepted\n",
                 static_cast<unsigned long long>(m.hijacks_succeeded.load()));
    return 1;
  }
  if (hijack_stride > 0 && m.hijacks_attempted == 0) {
    std::fprintf(stderr,
                 "FAIL: hijack mode requested but no attacks were issued\n");
    return 1;
  }
  return 0;
}
