// Churn soak: the self-configuration workload.
//
// N IPOP nodes boot with no preassigned virtual IP on one simulated LAN,
// lease addresses through DHCP-over-the-DHT, and are then subjected to
// Poisson churn — graceful leaves (kDeparting + DHT handoff), abrupt
// failures (keepalive-miss detection + re-replication) and re-joins (a
// fresh lease acquisition) — while the harness continuously audits the
// three viability metrics the related smart-grid trade-off study singles
// out (arXiv 2112.06848):
//
//   * virtual-IP acquisition latency (join cost under churn),
//   * duplicate leases (the atomic-create invariant; must be zero),
//   * Brunet-ARP resolution success rate (can traffic still find nodes).
//
// Results go to BENCH_churn_soak.json in google-benchmark JSON shape so
// tools/bench_gate.py --suite churn can gate CI on them.
//
//   bench_churn_soak [--nodes N] [--churn-minutes M] [--churn-rate R]
//                    [--seed S] [--out PATH]
//
// R is expressed in events per node per minute (0.10 = "10% churn").
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ipop/node.hpp"
#include "net/topology.hpp"
#include "util/stats.hpp"

namespace {

using ipop::util::milliseconds;
using ipop::util::seconds;

struct Options {
  int nodes = 64;
  double churn_minutes = 20.0;
  double churn_rate = 0.10;  // events / node / minute
  std::uint64_t seed = 1;
  std::string out = "BENCH_churn_soak.json";
};

struct SoakNode {
  ipop::net::Host* host = nullptr;
  std::unique_ptr<ipop::core::IpopNode> node;
  bool live = false;
  ipop::util::TimePoint started{};
  ipop::util::TimePoint configured{};
};

struct Metrics {
  ipop::util::Samples acquisition_ms;
  std::uint64_t churn_events = 0;
  std::uint64_t joins = 0;
  std::uint64_t graceful_leaves = 0;
  std::uint64_t failures = 0;
  std::uint64_t duplicate_leases = 0;
  std::uint64_t lease_audits = 0;
  std::uint64_t resolution_attempts = 0;
  std::uint64_t resolution_successes = 0;
  std::uint64_t resolution_aborted = 0;
  std::uint64_t resolution_misses = 0;  // lookup returned nothing
  std::uint64_t resolution_wrong = 0;   // lookup returned a stale owner
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--nodes") == 0) {
      opt.nodes = std::atoi(next());
    } else if (std::strcmp(argv[i], "--churn-minutes") == 0) {
      opt.churn_minutes = std::atof(next());
    } else if (std::strcmp(argv[i], "--churn-rate") == 0) {
      opt.churn_rate = std::atof(next());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      opt.out = next();
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("churn soak: %d nodes, %.0f%% churn/node/min, %.1f min\n",
              opt.nodes, opt.churn_rate * 100.0, opt.churn_minutes);

  ipop::net::Network net{opt.seed};
  auto& loop = net.loop();
  auto& sw = net.add_switch("core");
  ipop::sim::LinkConfig lan;
  lan.delay = ipop::util::microseconds(200);

  Metrics m;
  std::vector<SoakNode> soak(static_cast<std::size_t>(opt.nodes));
  for (int i = 0; i < opt.nodes; ++i) {
    auto& s = soak[static_cast<std::size_t>(i)];
    auto& h = net.add_host("c" + std::to_string(i));
    net.connect_to_switch(
        h.stack(),
        {"eth0",
         ipop::net::Ipv4Address(10, 0, static_cast<std::uint8_t>(i / 200),
                                static_cast<std::uint8_t>(i % 200 + 1)),
         16},
        sw, lan);
    s.host = &h;
    ipop::core::IpopConfig cfg;
    cfg.use_dhcp = true;
    cfg.dhcp.renew_interval = seconds(30);
    cfg.overlay.near_per_side = 2;
    // Churn-tuned failure detection: a crashed node blackholes every
    // route through it until keepalive evicts the edge, so the soak runs
    // the aggressive timers a churn-heavy deployment would use.
    cfg.overlay.edge_idle_ping = seconds(2);
    cfg.overlay.edge_timeout = seconds(6);
    // Modest user-level costs: the soak measures protocol dynamics, not
    // the calibrated Planet-Lab processing model.
    cfg.cpu_per_packet = ipop::util::microseconds(50);
    cfg.sched_latency = ipop::util::microseconds(200);
    s.node = std::make_unique<ipop::core::IpopNode>(h, cfg);
    if (i > 0) {
      s.node->add_seed({ipop::brunet::TransportAddress::Proto::kUdp,
                        soak[0].host->stack().interface_ip(0), 17001});
    }
    s.node->set_configured_handler([&m, &s, &loop](ipop::net::Ipv4Address) {
      s.configured = loop.now();
      m.acquisition_ms.add(ipop::util::to_milliseconds(s.configured -
                                                       s.started));
    });
  }

  // --- warmup: staggered joins, wait for full self-configuration --------
  for (auto& s : soak) {
    s.started = loop.now();
    s.live = true;
    s.node->start();
    loop.run_until(loop.now() + milliseconds(250));
  }
  const auto warmup_deadline = loop.now() + seconds(300);
  auto all_configured = [&] {
    return std::all_of(soak.begin(), soak.end(), [](const SoakNode& s) {
      return !s.live || s.node->self_configured();
    });
  };
  while (loop.now() < warmup_deadline && !all_configured()) {
    loop.run_until(loop.now() + milliseconds(500));
  }
  if (!all_configured()) {
    std::fprintf(stderr, "FAIL: warmup did not self-configure all nodes\n");
    return 1;
  }
  std::printf("warmup done at t=%.1fs: %d nodes self-configured, "
              "mean acquisition %.1f ms\n",
              ipop::util::to_seconds(loop.now()), opt.nodes,
              m.acquisition_ms.mean());

  // --- churn + continuous audit ------------------------------------------
  ipop::util::Rng rng(opt.seed * 7919 + 13);
  const double events_per_minute =
      opt.churn_rate * static_cast<double>(opt.nodes);
  const auto t_end =
      loop.now() + ipop::util::seconds_f(opt.churn_minutes * 60.0);

  auto live_configured = [&]() {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < soak.size(); ++i) {
      if (soak[i].live && soak[i].node->self_configured() &&
          loop.now() - soak[i].configured > seconds(2)) {
        out.push_back(i);
      }
    }
    return out;
  };

  auto audit_leases = [&] {
    ++m.lease_audits;
    std::map<ipop::net::Ipv4Address, int> holders;
    for (const auto& s : soak) {
      if (s.live && s.node->self_configured()) {
        ++holders[s.node->virtual_ip()];
      }
    }
    for (const auto& [ip, count] : holders) {
      if (count > 1) {
        m.duplicate_leases += static_cast<std::uint64_t>(count - 1);
        std::fprintf(stderr, "DUPLICATE LEASE: %s held by %d nodes\n",
                     ip.to_string().c_str(), count);
      }
    }
  };

  auto probe_resolution = [&] {
    auto ready = live_configured();
    if (ready.size() < 2) return;
    for (int p = 0; p < 8; ++p) {
      const auto ai = ready[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(ready.size()) - 1))];
      auto bi = ai;
      while (bi == ai) {
        bi = ready[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(ready.size()) - 1))];
      }
      const auto vip = soak[bi].node->virtual_ip();
      const auto expect = soak[bi].node->overlay().address();
      ++m.resolution_attempts;
      soak[ai].node->brunet_arp()->resolve(
          vip, [&m, &soak, ai, expect](
                   std::optional<ipop::brunet::Address> addr) {
            if (!soak[ai].live) {
              // The prober itself churned away mid-lookup; the timeout
              // says nothing about the DHT.
              ++m.resolution_aborted;
              return;
            }
            if (addr && *addr == expect) {
              ++m.resolution_successes;
            } else if (!addr) {
              ++m.resolution_misses;
            } else {
              ++m.resolution_wrong;
            }
          });
    }
  };

  auto churn_event = [&] {
    ++m.churn_events;
    std::vector<std::size_t> live;
    std::vector<std::size_t> down;
    for (std::size_t i = 1; i < soak.size(); ++i) {  // node 0 = seed, pinned
      (soak[i].live ? live : down).push_back(i);
    }
    const double live_fraction =
        static_cast<double>(live.size() + 1) / static_cast<double>(opt.nodes);
    const double roll = rng.uniform();
    if (!down.empty() && (live_fraction < 0.85 || roll < 0.4)) {
      const auto i = down[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(down.size()) - 1))];
      ++m.joins;
      soak[i].started = loop.now();
      soak[i].live = true;
      soak[i].node->start();
    } else if (!live.empty()) {
      const auto i = live[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];
      soak[i].live = false;
      if (roll < 0.7) {
        ++m.graceful_leaves;
        soak[i].node->leave();
      } else {
        ++m.failures;
        soak[i].node->stop();  // crash: no departure notice
      }
    }
  };

  auto next_event =
      loop.now() + ipop::util::seconds_f(rng.exponential(
                       60.0 / events_per_minute));
  auto next_audit = loop.now() + seconds(5);
  while (loop.now() < t_end) {
    const auto next = std::min(std::min(next_event, next_audit), t_end);
    loop.run_until(next);
    if (loop.now() >= next_event) {
      churn_event();
      next_event = loop.now() + ipop::util::seconds_f(rng.exponential(
                                    60.0 / events_per_minute));
    }
    if (loop.now() >= next_audit) {
      audit_leases();
      probe_resolution();
      next_audit = loop.now() + seconds(5);
    }
  }
  // Drain: let in-flight lookups and reacquisitions settle, final audit.
  loop.run_until(loop.now() + seconds(30));
  audit_leases();

  std::uint64_t live_count = 0;
  std::uint64_t configured_count = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t rereplications = 0;
  std::uint64_t dhcp_conflicts = 0;
  std::uint64_t lease_losses = 0;
  std::uint64_t keepalive_evictions = 0;
  std::uint64_t departures_seen = 0;
  std::uint64_t arp_invalidations = 0;
  for (const auto& s : soak) {
    if (s.live) {
      ++live_count;
      if (s.node->self_configured()) ++configured_count;
    }
    handoffs += s.node->dht().stats().handoffs;
    rereplications += s.node->dht().stats().rereplications;
    dhcp_conflicts += s.node->dhcp()->stats().conflicts;
    lease_losses += s.node->dhcp()->stats().lost_leases;
    keepalive_evictions += s.node->overlay().stats().keepalive_evictions;
    departures_seen += s.node->overlay().stats().departures_seen;
    arp_invalidations += s.node->brunet_arp()->stats().invalidations;
  }
  const double resolution_rate =
      m.resolution_attempts > m.resolution_aborted
          ? static_cast<double>(m.resolution_successes) /
                static_cast<double>(m.resolution_attempts -
                                    m.resolution_aborted)
          : 1.0;
  const double acquired_fraction =
      live_count > 0 ? static_cast<double>(configured_count) /
                           static_cast<double>(live_count)
                     : 1.0;

  std::printf(
      "soak done: %llu events (%llu joins, %llu leaves, %llu fails)\n"
      "  duplicate leases: %llu across %llu audits\n"
      "  resolution: %llu/%llu ok (%.4f; %llu aborted, %llu misses, "
      "%llu stale)\n"
      "  acquisition latency: mean %.1f ms, p95 %.1f ms, max %.1f ms\n"
      "  dht: %llu handoffs, %llu re-replications; dhcp conflicts %llu, "
      "leases lost %llu\n"
      "  churn detection: %llu keepalive evictions, %llu departures seen, "
      "%llu arp invalidations\n",
      static_cast<unsigned long long>(m.churn_events),
      static_cast<unsigned long long>(m.joins),
      static_cast<unsigned long long>(m.graceful_leaves),
      static_cast<unsigned long long>(m.failures),
      static_cast<unsigned long long>(m.duplicate_leases),
      static_cast<unsigned long long>(m.lease_audits),
      static_cast<unsigned long long>(m.resolution_successes),
      static_cast<unsigned long long>(m.resolution_attempts -
                                      m.resolution_aborted),
      resolution_rate,
      static_cast<unsigned long long>(m.resolution_aborted),
      static_cast<unsigned long long>(m.resolution_misses),
      static_cast<unsigned long long>(m.resolution_wrong),
      m.acquisition_ms.mean(), m.acquisition_ms.percentile(95),
      m.acquisition_ms.percentile(100),
      static_cast<unsigned long long>(handoffs),
      static_cast<unsigned long long>(rereplications),
      static_cast<unsigned long long>(dhcp_conflicts),
      static_cast<unsigned long long>(lease_losses),
      static_cast<unsigned long long>(keepalive_evictions),
      static_cast<unsigned long long>(departures_seen),
      static_cast<unsigned long long>(arp_invalidations));

  // google-benchmark JSON shape, so tools/bench_gate.py shares one parser.
  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"context\": {\n"
               "    \"executable\": \"bench_churn_soak\",\n"
               "    \"nodes\": %d,\n"
               "    \"churn_rate_per_node_per_min\": %.4f,\n"
               "    \"churn_minutes\": %.2f,\n"
               "    \"seed\": %llu\n"
               "  },\n"
               "  \"benchmarks\": [\n"
               "    {\n"
               "      \"name\": \"ChurnSoak/%d\",\n"
               "      \"run_type\": \"iteration\",\n"
               "      \"iterations\": 1,\n"
               "      \"real_time\": %.3f,\n"
               "      \"cpu_time\": %.3f,\n"
               "      \"time_unit\": \"s\",\n"
               "      \"churn_events\": %llu,\n"
               "      \"joins\": %llu,\n"
               "      \"graceful_leaves\": %llu,\n"
               "      \"failures\": %llu,\n"
               "      \"duplicate_leases\": %llu,\n"
               "      \"lease_audits\": %llu,\n"
               "      \"resolution_attempts\": %llu,\n"
               "      \"resolution_aborted\": %llu,\n"
               "      \"resolution_success_rate\": %.6f,\n"
               "      \"lease_acquired_fraction\": %.6f,\n"
               "      \"acquisition_latency_ms_mean\": %.3f,\n"
               "      \"acquisition_latency_ms_p95\": %.3f,\n"
               "      \"acquisition_latency_ms_max\": %.3f,\n"
               "      \"dht_handoffs\": %llu,\n"
               "      \"dht_rereplications\": %llu,\n"
               "      \"dhcp_conflicts\": %llu,\n"
               "      \"lease_losses\": %llu,\n"
               "      \"keepalive_evictions\": %llu,\n"
               "      \"departures_seen\": %llu,\n"
               "      \"arp_invalidations\": %llu\n"
               "    }\n"
               "  ]\n"
               "}\n",
               opt.nodes, opt.churn_rate, opt.churn_minutes,
               static_cast<unsigned long long>(opt.seed), opt.nodes,
               ipop::util::to_seconds(loop.now()),
               ipop::util::to_seconds(loop.now()),
               static_cast<unsigned long long>(m.churn_events),
               static_cast<unsigned long long>(m.joins),
               static_cast<unsigned long long>(m.graceful_leaves),
               static_cast<unsigned long long>(m.failures),
               static_cast<unsigned long long>(m.duplicate_leases),
               static_cast<unsigned long long>(m.lease_audits),
               static_cast<unsigned long long>(m.resolution_attempts),
               static_cast<unsigned long long>(m.resolution_aborted),
               resolution_rate, acquired_fraction,
               m.acquisition_ms.mean(), m.acquisition_ms.percentile(95),
               m.acquisition_ms.percentile(100),
               static_cast<unsigned long long>(handoffs),
               static_cast<unsigned long long>(rereplications),
               static_cast<unsigned long long>(dhcp_conflicts),
               static_cast<unsigned long long>(lease_losses),
               static_cast<unsigned long long>(keepalive_evictions),
               static_cast<unsigned long long>(departures_seen),
               static_cast<unsigned long long>(arp_invalidations));
  std::fclose(f);
  std::printf("wrote %s\n", opt.out.c_str());

  // The soak binary itself enforces the hard invariants so a CI leg
  // without the gate script still fails loudly.
  if (m.duplicate_leases != 0) {
    std::fprintf(stderr, "FAIL: duplicate leases\n");
    return 1;
  }
  if (resolution_rate < 0.99) {
    std::fprintf(stderr, "FAIL: resolution success %.4f < 0.99\n",
                 resolution_rate);
    return 1;
  }
  return 0;
}
