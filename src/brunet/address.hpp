// 160-bit structured-overlay addresses with ring arithmetic.
//
// Brunet organizes nodes on a ring over the 160-bit address space; IPOP
// assigns each node the SHA-1 hash of its virtual IP (paper Section III-B),
// which is why the address width is exactly SHA-1's digest size.  Greedy
// routing, neighbor selection and DHT ownership all reduce to the modular
// distance operations defined here.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "net/ipv4.hpp"
#include "util/crypto.hpp"
#include "util/random.hpp"
#include "util/sha1.hpp"

namespace ipop::brunet {

class Address {
 public:
  static constexpr std::size_t kBytes = 20;
  using Bytes = std::array<std::uint8_t, kBytes>;

  Address() = default;
  explicit Address(const Bytes& b) : bytes_(b) {}

  /// SHA-1 of the 4-byte big-endian IPv4 address (the IPOP mapping).
  static Address from_ip(net::Ipv4Address ip);
  /// SHA-1 of an arbitrary string (DHT keys, test fixtures).
  static Address hash(std::string_view data);
  /// SHA-1 over a domain-separated encoding of an Ed25519 public key.
  /// Key-derived addresses make overlay identity cryptographic: only the
  /// holder of the matching private key can sign for this ring position.
  static Address from_public_key(const util::crypto::PublicKey& pk);
  static Address random(util::Rng& rng);
  /// Parse 40 hex chars.
  static Address from_hex(std::string_view hex);

  const Bytes& bytes() const { return bytes_; }
  std::string to_hex() const;
  /// First 8 hex chars, for logs.
  std::string short_hex() const { return to_hex().substr(0, 8); }

  /// Ring distance: min(|a-b|, 2^160 - |a-b|).
  static Bytes ring_distance(const Address& a, const Address& b);
  /// Clockwise (increasing-address) distance from a to b: (b - a) mod 2^160.
  static Bytes directed_distance(const Address& a, const Address& b);

  /// True if `x` is closer to `target` on the ring than `y` is.
  static bool closer(const Address& target, const Address& x,
                     const Address& y);
  /// True if x lies in the clockwise half-open interval (a, b].
  static bool in_range_right(const Address& a, const Address& x,
                             const Address& b);

  /// Address at (this + 2^bit) mod 2^160; used to aim Kleinberg shortcuts.
  Address offset_by_pow2(int bit) const;
  /// Address at (this + delta) for an arbitrary 160-bit delta.
  Address offset_by(const Bytes& delta) const;

  friend bool operator==(const Address&, const Address&) = default;
  friend std::strong_ordering operator<=>(const Address& a, const Address& b) {
    for (std::size_t i = 0; i < kBytes; ++i) {
      if (a.bytes_[i] != b.bytes_[i]) return a.bytes_[i] <=> b.bytes_[i];
    }
    return std::strong_ordering::equal;
  }

 private:
  Bytes bytes_{};
};

/// Compare two 160-bit magnitudes.
int compare_bytes(const Address::Bytes& a, const Address::Bytes& b);

}  // namespace ipop::brunet

template <>
struct std::hash<ipop::brunet::Address> {
  std::size_t operator()(const ipop::brunet::Address& a) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (auto b : a.bytes()) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return h;
  }
};
