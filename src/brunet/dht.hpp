// DHT over the structured overlay (closest-node storage + replication).
//
// The paper's Section III-E ("Brunet-ARP") needs exactly this: the
// IP-to-node binding for virtual IP D is stored at the node whose address
// is closest to SHA1(D) — the "Brunet-ARP-Mapper".  Values are replicated
// to ring neighbors and handed off when ring membership shifts, the
// standard DHT remedies the paper cites from the Chord/Tapestry/CAN
// literature.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "brunet/node.hpp"

namespace ipop::brunet {

struct DhtConfig {
  /// Copies kept on ring neighbors in addition to the owner.
  std::size_t replicas = 2;
  /// Records expire unless refreshed (mobility updates refresh them).
  Duration record_ttl = util::seconds(600);
  Duration republish_interval = util::seconds(5);
};

struct DhtStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stored = 0;
  std::uint64_t handoffs = 0;
};

class Dht {
 public:
  using Key = Address;
  using PutCallback = std::function<void(bool ok)>;
  using GetCallback =
      std::function<void(std::optional<std::vector<std::uint8_t>>)>;

  Dht(BrunetNode& node, DhtConfig cfg = {});
  ~Dht();

  /// Store value at the node closest to `key` (plus replicas).
  void put(const Key& key, std::vector<std::uint8_t> value, PutCallback cb);
  /// Fetch the freshest value for `key` from its owner.
  void get(const Key& key, GetCallback cb);

  /// Number of records this node currently stores.
  std::size_t local_records() const { return store_.size(); }
  const DhtStats& stats() const { return stats_; }

 private:
  struct Record {
    std::vector<std::uint8_t> value;
    TimePoint expires{};
    std::uint64_t version = 0;  // writer-supplied monotonic stamp
  };

  enum class Op : std::uint8_t { kPut = 0, kGet = 1, kReplica = 2 };

  void handle_request(const Packet& pkt);
  void store_record(const Key& key, Record rec);
  void republish_tick();

  BrunetNode& node_;
  DhtConfig cfg_;
  DhtStats stats_;
  std::map<Key, Record> store_;
  std::uint64_t version_counter_ = 1;
  std::uint64_t republish_timer_ = 0;
  bool stopped_ = false;
};

}  // namespace ipop::brunet
