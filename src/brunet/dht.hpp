// DHT over the structured overlay (closest-node storage + replication).
//
// The paper's Section III-E ("Brunet-ARP") needs exactly this: the
// IP-to-node binding for virtual IP D is stored at the node whose address
// is closest to SHA1(D) — the "Brunet-ARP-Mapper".  Values are replicated
// to ring neighbors and handed off when ring membership shifts, the
// standard DHT remedies the paper cites from the Chord/Tapestry/CAN
// literature.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "brunet/node.hpp"

namespace ipop::brunet {

struct DhtConfig {
  /// Copies kept on ring neighbors in addition to the owner.
  std::size_t replicas = 2;
  /// Records expire unless refreshed (mobility updates refresh them).
  Duration record_ttl = util::seconds(600);
  Duration republish_interval = util::seconds(5);
  /// Grace period between a lost connection and the re-replication pass it
  /// triggers (lets ring repair re-link first so the copies land on the
  /// *new* neighbors, and coalesces a burst of failures into one pass).
  Duration rereplicate_delay = util::milliseconds(500);
  /// A get() that misses (not-found or timeout) is retried this many
  /// times: under churn the first attempt often dies on a route through a
  /// not-yet-evicted dead node, and by the retry the ring has healed.
  int get_retries = 2;
  Duration get_retry_delay = util::milliseconds(1500);
  /// A node younger than this must not mint records for keys it holds no
  /// copy of: its table may deliver/consult far from the key's true ring
  /// region, and a blind accept there double-allocates a taken key.  It
  /// answers kRetry instead, and create() backs off and retries.
  Duration min_owner_age = util::seconds(5);
  int create_retries = 8;
  Duration create_retry_delay = util::milliseconds(1000);
};

/// One typed DHT record.  `value` is a util::Buffer, so owner-side reads
/// and replica decodes share the carrying packet's storage instead of
/// copying; the version stamp orders writes, the TTL bounds the record's
/// life, and a signed record carries the writer's public key + signature
/// over (key || version || ttl || flags || value).
///
/// Ownership model (netsukuku ANDNA first-come-first-served): the storing
/// node verifies the signature, and while a *live* signed record holds a
/// key, only a record signed by the same owner may replace it — a put,
/// create or replica from anyone else is rejected at the storing node, so
/// lease/binding hijacks die where the record lives, not at the honest
/// reader.  An owner-signed record with an empty value is a release: it
/// erases the record, freeing the key immediately (migration/departure).
struct Record {
  /// flags bit: owner + sig fields are present and must verify.
  static constexpr std::uint8_t kSigned = 1;
  /// flags bit: the value's first kBytes claim an overlay address, and
  /// the storing node requires that address to derive from `owner` — a
  /// key-addressed node can only bind leases and ARP entries to itself.
  static constexpr std::uint8_t kKeyBound = 2;

  util::Buffer value;
  std::uint64_t version = 0;  // writer-supplied monotonic stamp
  /// Lifetime in seconds; 0 = the storing node's configured default.
  std::uint32_t ttl = 0;
  std::uint8_t flags = 0;
  util::crypto::PublicKey owner{};
  util::crypto::Signature sig{};

  bool is_signed() const { return (flags & kSigned) != 0; }
  bool key_bound() const { return (flags & kKeyBound) != 0; }
  bool is_release() const { return is_signed() && value.empty(); }

  /// The byte string the signature covers.  Includes the version so a
  /// stale record cannot be replayed with its old signature, and the
  /// flags so a verifier cannot be tricked into skipping kKeyBound.
  std::vector<std::uint8_t> signed_bytes(const Address& key) const;
  /// Sign in place with `keys` (sets owner, kSigned, then sig).
  void sign(const Address& key, const util::crypto::KeyPair& keys);
  /// Storing-node check: signature present and valid, and (for kKeyBound
  /// records with a value) the claimed address derives from the owner.
  bool verify(const Address& key) const;
  /// Same stored bytes (the create-renewal identity check).
  bool same_value(const Record& other) const {
    const auto a = value.as_span();
    const auto b = other.value.as_span();
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
};

struct DhtStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stored = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t creates = 0;
  /// Second-chance lookups issued after a miss/timeout under churn.
  std::uint64_t get_retries = 0;
  /// Per-attempt failure taxonomy (counts every attempt, not just final
  /// outcomes): the request timed out in flight vs. a node answered
  /// kNotFound (routing delivered somewhere without the record).
  std::uint64_t get_timeouts = 0;
  std::uint64_t get_notfound = 0;
  /// Owner-side create() rejections: a live record with a different value
  /// already held the key.
  std::uint64_t create_conflicts = 0;
  /// Records pushed back out to ring neighbors after a connection loss
  /// left them under-replicated.
  std::uint64_t rereplications = 0;
  /// Owner-side consult-on-miss fallbacks: a get/create arrived for a key
  /// we hold no record for, so we asked the next-closest node (likely the
  /// previous owner, pre-handoff) before answering.  consult_hits counts
  /// the ones where that node did hold the record.
  std::uint64_t consults = 0;
  std::uint64_t consult_hits = 0;
  /// Creates answered kRetry because this node was too young to trust its
  /// own miss (see DhtConfig::min_owner_age).
  std::uint64_t create_deferrals = 0;
  /// Incoming replicas older than our stored copy, answered by pushing
  /// the newer record back at the stale holder (read repair on the
  /// replication plane).
  std::uint64_t antientropy_pushbacks = 0;
  /// Writes rejected at the storing node because their signature (or
  /// kKeyBound address claim) failed to verify.
  std::uint64_t sig_rejects = 0;
  /// Writes rejected at the storing node because a live signed record
  /// holds the key and the write was unsigned or signed by a different
  /// key (the attempted-hijack counter the hostile soak gates on).
  std::uint64_t owner_rejects = 0;
  /// Owner-signed empty-value writes that erased a record (release).
  std::uint64_t releases = 0;
};

class Dht {
 public:
  using Key = Address;
  using PutCallback = std::function<void(bool ok)>;
  using GetCallback = std::function<void(std::optional<Record>)>;

  Dht(BrunetNode& node, DhtConfig cfg = {});
  ~Dht();

  /// Store a record at the node closest to `key` (plus replicas).  The
  /// Dht stamps the version, and — when the node carries an identity —
  /// signs the record before it leaves, so every subsystem writing
  /// through here gets ownership protection without touching crypto.
  /// Caller-set kKeyBound is preserved (only set it on values whose
  /// first 20 bytes claim this node's key-derived address).
  void put(const Key& key, Record rec, PutCallback cb);
  void put(const Key& key, std::vector<std::uint8_t> value, PutCallback cb) {
    put(key, Record{util::Buffer::wrap(std::move(value))}, std::move(cb));
  }
  /// Atomic create-if-absent: succeeds only when no live record holds the
  /// key, or the existing record already carries exactly this value (so
  /// the writer can renew its own claim with the same call — the refresh
  /// pushes the expiry out and re-replicates).  The uniqueness check runs
  /// on the owner, making this the allocation primitive DHCP-over-DHT
  /// leases are built on; accepted creates replicate like put().
  void create(const Key& key, Record rec, PutCallback cb);
  void create(const Key& key, std::vector<std::uint8_t> value,
              PutCallback cb) {
    create(key, Record{util::Buffer::wrap(std::move(value))}, std::move(cb));
  }
  /// Fetch the freshest record for `key` from its owner.  The returned
  /// Record's value shares the response packet's storage (zero-copy); it
  /// carries the owner's public key, which is how resolvers learn the
  /// encryption key of the node behind a lease or ARP binding.
  void get(const Key& key, GetCallback cb);
  /// Release `key` (owner-signed empty-value put): erases the record at
  /// the storing node, freeing the key immediately instead of waiting
  /// out the TTL.  No-op reported as failure when this node carries no
  /// identity (an unsigned release would be a free hijack primitive).
  void release(const Key& key, PutCallback cb);

  /// Number of records this node currently stores.
  std::size_t local_records() const { return store_.size(); }
  const DhtStats& stats() const { return stats_; }

 private:
  /// A Record at rest on the storing node, plus local bookkeeping that
  /// never crosses the wire.
  struct Stored {
    Record rec;
    TimePoint expires{};
    /// Ring-shift handoff bookkeeping: the owner this copy was already
    /// forwarded to.  Without it every replica re-sends every record to
    /// the owner on every republish tick — at 64 nodes that snowballs
    /// into hundreds of redundant handoffs per second.
    Address handed_to{};
    bool handed = false;
  };

  enum class Op : std::uint8_t { kPut = 0, kGet = 1, kReplica = 2,
                                 kCreate = 3,
                                 // Strictly-local lookup, used by the
                                 // consult-on-miss fallback so it can
                                 // never recurse past one hop.
                                 kGetLocal = 4 };

  /// Version stamp for an outgoing write: clock-derived so stamps order
  /// writes *across* writers (see the definition for why writer-local
  /// counters poison anti-entropy), strictly monotonic per writer.
  std::uint64_t write_stamp();
  /// Stamp the version and (when the node has an identity) sign: the one
  /// spot every outgoing put/create/release funnels through.
  void finalize_outgoing(const Key& key, Record& rec);
  void handle_request(const Packet& pkt);
  void get_attempt(const Key& key, int retries_left, GetCallback cb);
  void create_attempt(const Key& key, Record rec, int retries_left,
                      PutCallback cb);
  /// Ownership gate for every incoming write (put/create/replica): a
  /// malformed signature rejects outright, and a live signed record only
  /// yields to the same owner.  Returns the status byte to answer with
  /// (kOk = accept).
  std::uint8_t check_ownership(const Key& key, const Record& rec);
  /// Accept a put/create: stamp expiry, dominate the stored version,
  /// store, replicate, and answer kOk to the original requester.
  void accept_write(const Key& key, Record rec, const Packet& req);
  /// Raise an accepted unsigned write's version above the stored
  /// record's (writers stamp from independent counters; an overwrite the
  /// owner accepted must dominate the previous writer's stamp on every
  /// replica too).  Signed records are never restamped — that would
  /// break the signature; their same-owner writes already share one
  /// clock-derived stamp sequence.
  void bump_version(const Key& key, Record& rec);
  /// The full record wire image behind an op byte (shared by put/create
  /// requests, replication fan-out, ring-shift and departure handoff).
  std::vector<std::uint8_t> encode_record(Op op, const Key& key,
                                          const Record& rec);
  /// Decode the record fields of a kPut/kCreate/kReplica payload; the
  /// value Buffer shares `storage` (the carrying packet's bytes).
  static Record decode_record(util::ByteReader& r, const util::Buffer& storage);
  /// Store (last-writer-wins on version among live records); returns the
  /// stored slot, or nullptr when a newer live record won.
  Stored* store_record(const Key& key, Record rec);
  void republish_tick();
  /// Serialize `rec` once and fan the kReplica out to the ring neighbors
  /// (one shared payload buffer, batched per edge).
  void replicate(const Key& key, const Record& rec);
  /// Handoff/pushback wire image for a stored copy.
  std::vector<std::uint8_t> encode_stored(const Key& key, const Stored& s) {
    return encode_record(Op::kReplica, key, s.rec);
  }
  /// A connection died: schedule one coalesced re-replication pass.
  void schedule_rereplication();
  void rereplicate_owned();
  /// Graceful-departure hook: hand every stored record to the connected
  /// node now closest to its key, before our edges go down.
  void handoff_all();
  bool owns(const Key& key) const;

  BrunetNode& node_;
  DhtConfig cfg_;
  DhtStats stats_;
  std::map<Key, Stored> store_;
  std::uint64_t version_counter_ = 1;
  std::uint64_t republish_timer_ = 0;
  std::uint64_t rereplicate_timer_ = 0;
  bool stopped_ = false;
  /// Sentinel for the observer lambdas registered with the node (the node
  /// may outlive this Dht; expired weak_ptr = dead Dht, do nothing).
  std::shared_ptr<bool> alive_;
};

}  // namespace ipop::brunet
