// DHT over the structured overlay (closest-node storage + replication).
//
// The paper's Section III-E ("Brunet-ARP") needs exactly this: the
// IP-to-node binding for virtual IP D is stored at the node whose address
// is closest to SHA1(D) — the "Brunet-ARP-Mapper".  Values are replicated
// to ring neighbors and handed off when ring membership shifts, the
// standard DHT remedies the paper cites from the Chord/Tapestry/CAN
// literature.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "brunet/node.hpp"

namespace ipop::brunet {

struct DhtConfig {
  /// Copies kept on ring neighbors in addition to the owner.
  std::size_t replicas = 2;
  /// Records expire unless refreshed (mobility updates refresh them).
  Duration record_ttl = util::seconds(600);
  Duration republish_interval = util::seconds(5);
  /// Grace period between a lost connection and the re-replication pass it
  /// triggers (lets ring repair re-link first so the copies land on the
  /// *new* neighbors, and coalesces a burst of failures into one pass).
  Duration rereplicate_delay = util::milliseconds(500);
  /// A get() that misses (not-found or timeout) is retried this many
  /// times: under churn the first attempt often dies on a route through a
  /// not-yet-evicted dead node, and by the retry the ring has healed.
  int get_retries = 2;
  Duration get_retry_delay = util::milliseconds(1500);
  /// A node younger than this must not mint records for keys it holds no
  /// copy of: its table may deliver/consult far from the key's true ring
  /// region, and a blind accept there double-allocates a taken key.  It
  /// answers kRetry instead, and create() backs off and retries.
  Duration min_owner_age = util::seconds(5);
  int create_retries = 8;
  Duration create_retry_delay = util::milliseconds(1000);
};

struct DhtStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stored = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t creates = 0;
  /// Second-chance lookups issued after a miss/timeout under churn.
  std::uint64_t get_retries = 0;
  /// Per-attempt failure taxonomy (counts every attempt, not just final
  /// outcomes): the request timed out in flight vs. a node answered
  /// kNotFound (routing delivered somewhere without the record).
  std::uint64_t get_timeouts = 0;
  std::uint64_t get_notfound = 0;
  /// Owner-side create() rejections: a live record with a different value
  /// already held the key.
  std::uint64_t create_conflicts = 0;
  /// Records pushed back out to ring neighbors after a connection loss
  /// left them under-replicated.
  std::uint64_t rereplications = 0;
  /// Owner-side consult-on-miss fallbacks: a get/create arrived for a key
  /// we hold no record for, so we asked the next-closest node (likely the
  /// previous owner, pre-handoff) before answering.  consult_hits counts
  /// the ones where that node did hold the record.
  std::uint64_t consults = 0;
  std::uint64_t consult_hits = 0;
  /// Creates answered kRetry because this node was too young to trust its
  /// own miss (see DhtConfig::min_owner_age).
  std::uint64_t create_deferrals = 0;
  /// Incoming replicas older than our stored copy, answered by pushing
  /// the newer record back at the stale holder (read repair on the
  /// replication plane).
  std::uint64_t antientropy_pushbacks = 0;
};

class Dht {
 public:
  using Key = Address;
  using PutCallback = std::function<void(bool ok)>;
  using GetCallback =
      std::function<void(std::optional<std::vector<std::uint8_t>>)>;

  Dht(BrunetNode& node, DhtConfig cfg = {});
  ~Dht();

  /// Store value at the node closest to `key` (plus replicas).
  void put(const Key& key, std::vector<std::uint8_t> value, PutCallback cb);
  /// Atomic create-if-absent: succeeds only when no live record holds the
  /// key, or the existing record already carries exactly `value` (so the
  /// writer can renew its own claim with the same call — the refresh
  /// pushes the expiry out and re-replicates).  The uniqueness check runs
  /// on the owner, making this the allocation primitive DHCP-over-DHT
  /// leases are built on; accepted creates replicate like put().
  void create(const Key& key, std::vector<std::uint8_t> value, PutCallback cb);
  /// Fetch the freshest value for `key` from its owner.
  void get(const Key& key, GetCallback cb);

  /// Number of records this node currently stores.
  std::size_t local_records() const { return store_.size(); }
  const DhtStats& stats() const { return stats_; }

 private:
  struct Record {
    std::vector<std::uint8_t> value;
    TimePoint expires{};
    std::uint64_t version = 0;  // writer-supplied monotonic stamp
    /// Ring-shift handoff bookkeeping: the owner this copy was already
    /// forwarded to.  Without it every replica re-sends every record to
    /// the owner on every republish tick — at 64 nodes that snowballs
    /// into hundreds of redundant handoffs per second.
    Address handed_to{};
    bool handed = false;
  };

  enum class Op : std::uint8_t { kPut = 0, kGet = 1, kReplica = 2,
                                 kCreate = 3,
                                 // Strictly-local lookup, used by the
                                 // consult-on-miss fallback so it can
                                 // never recurse past one hop.
                                 kGetLocal = 4 };

  /// Version stamp for an outgoing write: clock-derived so stamps order
  /// writes *across* writers (see the definition for why writer-local
  /// counters poison anti-entropy), strictly monotonic per writer.
  std::uint64_t write_stamp();
  void handle_request(const Packet& pkt);
  void get_attempt(const Key& key, int retries_left, GetCallback cb);
  void create_attempt(const Key& key, std::vector<std::uint8_t> value,
                      int retries_left, PutCallback cb);
  /// Accept a put/create: stamp expiry, dominate the stored version,
  /// store, replicate, and answer kOk to the original requester.
  void accept_write(const Key& key, Record rec, const Packet& req);
  /// Raise an accepted write's version above the stored record's (writers
  /// stamp from independent counters; an overwrite the owner accepted
  /// must dominate the previous writer's stamp on every replica too).
  void bump_version(const Key& key, Record& rec);
  /// The kReplica wire image: op byte + key + version + lp value (shared
  /// by replication fan-out, ring-shift handoff and departure handoff).
  std::vector<std::uint8_t> encode_replica(const Key& key, const Record& rec);
  void store_record(const Key& key, Record rec);
  void republish_tick();
  /// Serialize `rec` once and fan the kReplica out to the ring neighbors
  /// (one shared payload buffer, batched per edge).
  void replicate(const Key& key, const Record& rec);
  /// A connection died: schedule one coalesced re-replication pass.
  void schedule_rereplication();
  void rereplicate_owned();
  /// Graceful-departure hook: hand every stored record to the connected
  /// node now closest to its key, before our edges go down.
  void handoff_all();
  bool owns(const Key& key) const;

  BrunetNode& node_;
  DhtConfig cfg_;
  DhtStats stats_;
  std::map<Key, Record> store_;
  std::uint64_t version_counter_ = 1;
  std::uint64_t republish_timer_ = 0;
  std::uint64_t rereplicate_timer_ = 0;
  bool stopped_ = false;
  /// Sentinel for the observer lambdas registered with the node (the node
  /// may outlive this Dht; expired weak_ptr = dead Dht, do nothing).
  std::shared_ptr<bool> alive_;
};

}  // namespace ipop::brunet
