#include "brunet/dht.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace ipop::brunet {

namespace {
constexpr std::uint8_t kOk = 1;
constexpr std::uint8_t kNotFound = 0;
constexpr std::uint8_t kConflict = 2;  // create(): key taken by other value
constexpr std::uint8_t kRetry = 3;     // create(): owner too young to decide
}  // namespace

Dht::Dht(BrunetNode& node, DhtConfig cfg)
    : node_(node), cfg_(cfg), alive_(std::make_shared<bool>(true)) {
  node_.set_handler(PacketType::kDhtRequest,
                    [this](const Packet& pkt) { handle_request(pkt); });
  republish_timer_ = node_.host().loop().schedule_after(
      cfg_.republish_interval, [this] { republish_tick(); });
  // Churn hooks: a dead connection may have held replicas of our records;
  // a graceful departure hands every record onward before edges drop.
  node_.add_connection_lost_observer(
      [this, alive = std::weak_ptr<bool>(alive_)](const Address& lost) {
        if (alive.expired()) return;
        // The departed peer may come back (same overlay address after a
        // crash/rejoin): clear the handoff stamps aimed at it so the
        // republish tick re-sends the records it lost, instead of
        // starving the rejoined owner forever.
        for (auto& [key, rec] : store_) {
          if (rec.handed && rec.handed_to == lost) rec.handed = false;
        }
        schedule_rereplication();
      });
  node_.add_departure_hook([this, alive = std::weak_ptr<bool>(alive_)] {
    if (alive.expired()) return;
    handoff_all();
  });
}

Dht::~Dht() {
  stopped_ = true;
  auto& loop = node_.host().loop();
  if (republish_timer_ != 0) loop.cancel(republish_timer_);
  if (rereplicate_timer_ != 0) loop.cancel(rereplicate_timer_);
}

std::uint64_t Dht::write_stamp() {
  // Version stamps must order writes across *different* writers, or a
  // stale replica of an overwritten record can hold a higher version
  // than the current owner's copy and win reconciliation (the
  // anti-entropy push-back would then actively spread the dead value).
  // Clock-derived stamps give that global order: all nodes share the
  // simulated clock, so later write == larger stamp; the max() keeps a
  // single writer strictly monotonic within one tick.  (A deployment
  // would use NTP-disciplined wall time — last-writer-wins DHTs already
  // accept that clock skew bounds their consistency.)
  const auto now_ns =
      static_cast<std::uint64_t>(node_.host().loop().now().count());
  version_counter_ = std::max(version_counter_ + 1, now_ns);
  return version_counter_;
}

void Dht::put(const Key& key, std::vector<std::uint8_t> value, PutCallback cb) {
  ++stats_.puts;
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kPut));
  w.bytes(std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
  w.u64(write_stamp());
  w.lp_bytes(value);
  node_.request(key, PacketType::kDhtRequest, RoutingMode::kClosest, w.take(),
                [cb = std::move(cb)](std::optional<Packet> resp) {
                  if (cb) cb(resp.has_value() && !resp->payload().empty() &&
                             resp->payload()[0] == kOk);
                });
}

void Dht::create(const Key& key, std::vector<std::uint8_t> value,
                 PutCallback cb) {
  ++stats_.creates;
  create_attempt(key, std::move(value), cfg_.create_retries, std::move(cb));
}

void Dht::create_attempt(const Key& key, std::vector<std::uint8_t> value,
                         int retries_left, PutCallback cb) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kCreate));
  w.bytes(std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
  w.u64(write_stamp());
  w.lp_bytes(value);
  node_.request(
      key, PacketType::kDhtRequest, RoutingMode::kClosest, w.take(),
      [this, key, value = std::move(value), retries_left, cb = std::move(cb),
       alive = std::weak_ptr<bool>(alive_)](std::optional<Packet> resp) mutable {
        if (alive.expired()) return;
        // kRetry means delivery hit a node too young to decide (its miss
        // is not authoritative); the claim itself is still undecided, so
        // back off and re-ask rather than reporting a conflict.
        if (resp && !resp->payload().empty() && resp->payload()[0] == kRetry &&
            retries_left > 0 && !stopped_) {
          node_.host().loop().schedule_after(
              cfg_.create_retry_delay,
              [this, key, value = std::move(value), retries_left,
               cb = std::move(cb), alive2 = std::move(alive)]() mutable {
                if (alive2.expired() || stopped_) return;
                create_attempt(key, std::move(value), retries_left - 1,
                               std::move(cb));
              });
          return;
        }
        if (cb) cb(resp.has_value() && !resp->payload().empty() &&
                   resp->payload()[0] == kOk);
      });
}

void Dht::get(const Key& key, GetCallback cb) {
  ++stats_.gets;
  get_attempt(key, cfg_.get_retries, std::move(cb));
}

void Dht::get_attempt(const Key& key, int retries_left, GetCallback cb) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kGet));
  w.bytes(std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
  node_.request(
      key, PacketType::kDhtRequest, RoutingMode::kClosest, w.take(),
      [this, key, retries_left, cb = std::move(cb),
       alive = std::weak_ptr<bool>(alive_)](std::optional<Packet> resp) mutable {
        if (alive.expired()) return;
        if (!resp) {
          ++stats_.get_timeouts;
        } else if (resp->payload().empty() || resp->payload()[0] == kNotFound) {
          ++stats_.get_notfound;
        }
        if (!resp || resp->payload().empty() ||
            resp->payload()[0] == kNotFound) {
          // Miss or timeout: under churn the request may have died on a
          // route through a dead-but-not-yet-evicted node; give the ring
          // a beat to heal and ask again.
          if (retries_left > 0 && !stopped_) {
            ++stats_.get_retries;
            node_.host().loop().schedule_after(
                cfg_.get_retry_delay,
                [this, key, retries_left, cb = std::move(cb),
                 alive2 = std::move(alive)]() mutable {
                  if (alive2.expired() || stopped_) return;
                  get_attempt(key, retries_left - 1, std::move(cb));
                });
            return;
          }
          ++stats_.misses;
          if (cb) cb(std::nullopt);
          return;
        }
        ++stats_.hits;
        try {
          util::ByteReader r(resp->payload());
          r.u8();  // status
          if (cb) cb(r.lp_bytes());
        } catch (const util::ParseError&) {
          if (cb) cb(std::nullopt);
        }
      });
}

void Dht::handle_request(const Packet& pkt) {
  Op op;
  Key key;
  util::ByteReader r(pkt.payload());
  try {
    op = static_cast<Op>(r.u8());
    Address::Bytes kb{};
    auto raw = r.bytes(Address::kBytes);
    std::copy(raw.begin(), raw.end(), kb.begin());
    key = Address(kb);

    switch (op) {
      case Op::kPut: {
        Record rec;
        rec.version = r.u64();
        rec.value = r.lp_bytes();
        accept_write(key, std::move(rec), pkt);
        return;
      }
      case Op::kCreate: {
        Record rec;
        rec.version = r.u64();
        rec.value = r.lp_bytes();
        // Owner-side uniqueness check: a live record with a different
        // value wins; an expired record or the writer's own value does
        // not block (the latter is how a lease holder renews).
        auto it = store_.find(key);
        if (it != store_.end() &&
            it->second.expires >= node_.host().loop().now() &&
            it->second.value != rec.value) {
          ++stats_.create_conflicts;
          node_.respond(pkt, PacketType::kDhtResponse,
                        std::vector<std::uint8_t>{kConflict});
          return;
        }
        if (it == store_.end() ||
            it->second.expires < node_.host().loop().now()) {
          // A young node's miss is not authoritative: its half-built
          // table may both deliver and consult far from the key's true
          // ring region, and accepting there double-allocates a taken
          // key.  Tell the claimant to back off and re-route once our
          // position has settled.
          if (node_.uptime() < cfg_.min_owner_age) {
            ++stats_.create_deferrals;
            node_.respond(pkt, PacketType::kDhtResponse,
                          std::vector<std::uint8_t>{kRetry});
            return;
          }
          // Fresh-owner window: under churn we may have just become the
          // closest node for this key without having received the
          // previous owner's handoff, and a blind accept here would mint
          // a duplicate for a key that is already taken one hop away.
          // Consult the next-closest node before accepting.
          const Connection* prev = node_.table().closest_to(key);
          if (prev != nullptr) {
            ++stats_.consults;
            util::ByteWriter cw;
            cw.u8(static_cast<std::uint8_t>(Op::kGetLocal));
            cw.bytes(std::span<const std::uint8_t>(key.bytes().data(),
                                                   Address::kBytes));
            node_.request(
                prev->addr, PacketType::kDhtRequest, RoutingMode::kExact,
                cw.take(),
                [this, key, rec, req = pkt,
                 alive = std::weak_ptr<bool>(alive_)](
                    std::optional<Packet> resp) mutable {
                  if (alive.expired() || stopped_) return;
                  if (resp && !resp->payload().empty() &&
                      resp->payload()[0] == kOk) {
                    try {
                      util::ByteReader rr(resp->payload());
                      rr.u8();  // status
                      if (rr.lp_bytes() != rec.value) {
                        ++stats_.consult_hits;
                        ++stats_.create_conflicts;
                        node_.respond(req, PacketType::kDhtResponse,
                                      std::vector<std::uint8_t>{kConflict});
                        return;
                      }
                    } catch (const util::ParseError&) {
                    }
                  }
                  accept_write(key, std::move(rec), req);
                });
            return;
          }
        }
        accept_write(key, std::move(rec), pkt);
        return;
      }
      case Op::kReplica: {
        Record rec;
        rec.version = r.u64();
        rec.value = r.lp_bytes();
        rec.expires = node_.host().loop().now() + cfg_.record_ttl;
        // Anti-entropy push-back: a replica OLDER than our stored copy
        // means its holder is stale (an overwritten binding it never saw
        // rewritten — e.g. a re-leased IP's old owner record).  Push our
        // newer record back at the sender instead of silently dropping
        // theirs; one round-trip heals the stale copy, and the exchange
        // terminates because only the strictly-newer side ever replies.
        {
          auto it = store_.find(key);
          if (it != store_.end() && it->second.version > rec.version &&
              it->second.expires >= node_.host().loop().now() &&
              it->second.value != rec.value) {
            node_.send(pkt.src, PacketType::kDhtRequest, RoutingMode::kExact,
                       encode_replica(key, it->second));
            ++stats_.antientropy_pushbacks;
            return;
          }
        }
        // A replica write is the system placing this copy: if we are not
        // the owner, stamp it handed so the next republish tick does not
        // echo it straight back to the owner that just sent it.  handed_to
        // records the believed owner, so its connection loss re-arms the
        // handoff (see the connection-lost observer).
        const Connection* best = node_.table().closest_to(key);
        if (best != nullptr &&
            Address::closer(key, best->addr, node_.address())) {
          rec.handed = true;
          rec.handed_to = best->addr;
        }
        store_record(key, rec);
        return;  // replicas are fire-and-forget
      }
      case Op::kGet: {
        auto it = store_.find(key);
        if (it == store_.end() ||
            it->second.expires < node_.host().loop().now()) {
          // Miss: the record may still sit one hop away at the previous
          // owner (we became closest before its handoff reached us).
          // Consult it and relay a hit; kGetLocal keeps this from ever
          // recursing further.
          const Connection* prev = node_.table().closest_to(key);
          if (prev == nullptr) {
            node_.respond(pkt, PacketType::kDhtResponse,
                          std::vector<std::uint8_t>{kNotFound});
            return;
          }
          ++stats_.consults;
          util::ByteWriter cw;
          cw.u8(static_cast<std::uint8_t>(Op::kGetLocal));
          cw.bytes(std::span<const std::uint8_t>(key.bytes().data(),
                                                 Address::kBytes));
          node_.request(
              prev->addr, PacketType::kDhtRequest, RoutingMode::kExact,
              cw.take(),
              [this, req = pkt, alive = std::weak_ptr<bool>(alive_)](
                  std::optional<Packet> resp) mutable {
                if (alive.expired() || stopped_) return;
                if (resp && !resp->payload().empty() &&
                    resp->payload()[0] == kOk) {
                  ++stats_.consult_hits;
                  node_.respond(req, PacketType::kDhtResponse,
                                resp->share_payload());
                  return;
                }
                node_.respond(req, PacketType::kDhtResponse,
                              std::vector<std::uint8_t>{kNotFound});
              });
          return;
        }
        util::ByteWriter w;
        w.u8(kOk);
        w.lp_bytes(it->second.value);
        node_.respond(pkt, PacketType::kDhtResponse, w.take());
        return;
      }
      case Op::kGetLocal: {
        auto it = store_.find(key);
        if (it == store_.end() ||
            it->second.expires < node_.host().loop().now()) {
          node_.respond(pkt, PacketType::kDhtResponse,
                        std::vector<std::uint8_t>{kNotFound});
          return;
        }
        util::ByteWriter w;
        w.u8(kOk);
        w.lp_bytes(it->second.value);
        node_.respond(pkt, PacketType::kDhtResponse, w.take());
        return;
      }
    }
  } catch (const util::ParseError&) {
  }
}

void Dht::accept_write(const Key& key, Record rec, const Packet& req) {
  rec.expires = node_.host().loop().now() + cfg_.record_ttl;
  bump_version(key, rec);
  store_record(key, rec);
  replicate(key, rec);
  node_.respond(req, PacketType::kDhtResponse,
                std::vector<std::uint8_t>{kOk});
}

void Dht::bump_version(const Key& key, Record& rec) {
  // Writers stamp versions from their own independent counters, so an
  // accepted overwrite must also dominate whatever version the previous
  // writer left here (and on the replicas) — otherwise store_record()
  // keeps the old record while the owner already answered kOk.
  auto it = store_.find(key);
  if (it != store_.end()) {
    rec.version = std::max(rec.version, it->second.version + 1);
  }
}

std::vector<std::uint8_t> Dht::encode_replica(const Key& key,
                                              const Record& rec) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kReplica));
  w.bytes(std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
  w.u64(rec.version);
  w.lp_bytes(rec.value);
  return w.take();
}

void Dht::replicate(const Key& key, const Record& rec) {
  // Replicate to ring neighbors: the replica record is serialized once
  // and the fan-out shares that one buffer — each replica packet prepends
  // its own header segment, and replicas routing over the same edge leave
  // in one batched transport send.
  const auto payload = util::Buffer::wrap(encode_replica(key, rec));
  std::vector<Address> replicas;
  replicas.reserve(cfg_.replicas + 1);
  node_.table().for_each_right(
      cfg_.replicas, [&](const Connection& c) { replicas.push_back(c.addr); });
  // One counter-clockwise guard copy: when the owner crashes, ownership
  // moves to whichever side of the key is next-closest — if that is the
  // left neighbor, a clockwise-only replica set leaves the new owner
  // (and its consult target) without a copy during the repair window.
  if (const Connection* left = node_.table().left_neighbor()) {
    if (std::find(replicas.begin(), replicas.end(), left->addr) ==
        replicas.end()) {
      replicas.push_back(left->addr);
    }
  }
  node_.send_batch(replicas, PacketType::kDhtRequest, RoutingMode::kExact,
                   payload.share());
}

bool Dht::owns(const Key& key) const {
  const Connection* best = node_.table().closest_to(key);
  return best == nullptr ||
         !Address::closer(key, best->addr, node_.address());
}

void Dht::schedule_rereplication() {
  if (stopped_ || rereplicate_timer_ != 0) return;
  rereplicate_timer_ = node_.host().loop().schedule_after(
      cfg_.rereplicate_delay, [this] {
        rereplicate_timer_ = 0;
        rereplicate_owned();
      });
}

void Dht::rereplicate_owned() {
  if (stopped_) return;
  const auto now = node_.host().loop().now();
  for (const auto& [key, rec] : store_) {
    if (rec.expires < now || !owns(key)) continue;
    replicate(key, rec);
    ++stats_.rereplications;
  }
}

void Dht::handoff_all() {
  // Departing: push every record out before our edges go down; the
  // receiver absorbs each as a plain replica write.  Records we own go
  // kExact to the connection closest to the key — that node inherits the
  // key once we leave, and kClosest would loop back to us (we *are* the
  // closest while still in the ring).  Copies we don't own are routed
  // kClosest to the key itself, landing at the true owner instead of at
  // whichever connection is locally closest (which would store the copy
  // and have to relay it again next tick).
  for (const auto& [key, rec] : store_) {
    const Connection* best = node_.table().closest_to(key);
    if (best == nullptr) continue;
    if (!Address::closer(key, best->addr, node_.address())) {
      node_.send(best->addr, PacketType::kDhtRequest, RoutingMode::kExact,
                 encode_replica(key, rec));
    } else {
      node_.send(key, PacketType::kDhtRequest, RoutingMode::kClosest,
                 encode_replica(key, rec));
    }
    ++stats_.handoffs;
  }
}

void Dht::store_record(const Key& key, Record rec) {
  auto it = store_.find(key);
  if (it != store_.end() && it->second.version > rec.version) {
    return;  // stale write: keep the newer record
  }
  store_[key] = std::move(rec);
  stats_.stored = store_.size();
}

void Dht::republish_tick() {
  if (stopped_) return;
  const auto now = node_.host().loop().now();
  // Expire dead records.
  std::erase_if(store_, [&](const auto& kv) { return kv.second.expires < now; });
  stats_.stored = store_.size();
  // Hand off records whose key is now closer to a connected neighbor than
  // to us (ring membership changed underneath the data).  The copy is
  // routed kClosest to the *key*, so it lands at the true owner in one
  // logical transfer — sending kExact one greedy hop at a time would make
  // every relay node store the record, and those stale relay copies (alive
  // for record_ttl) re-hand themselves on every table change; at 10^3
  // nodes under churn that snowballed into ~5000 handoffs per sim-second.
  // Each copy is forwarded once: the handed stamp suppresses re-sends even
  // when the locally-closest connection flaps, and is cleared when the
  // believed owner's connection drops or the record is rewritten.
  for (auto& [key, rec] : store_) {
    if (rec.handed) continue;
    const Connection* best = node_.table().closest_to(key);
    if (best == nullptr || !Address::closer(key, best->addr, node_.address())) {
      continue;
    }
    node_.send(key, PacketType::kDhtRequest, RoutingMode::kClosest,
               encode_replica(key, rec));
    rec.handed = true;
    rec.handed_to = best->addr;
    ++stats_.handoffs;
  }
  republish_timer_ = node_.host().loop().schedule_after(
      cfg_.republish_interval, [this] { republish_tick(); });
}

}  // namespace ipop::brunet
