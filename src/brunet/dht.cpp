#include "brunet/dht.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace ipop::brunet {

namespace {
constexpr std::uint8_t kOk = 1;
constexpr std::uint8_t kNotFound = 0;
constexpr std::uint8_t kConflict = 2;  // create(): key taken by other value
constexpr std::uint8_t kRetry = 3;     // create(): owner too young to decide

/// Record fields behind the status/op byte and key: the one wire layout
/// shared by put/create/replica requests and get responses.
void encode_record_fields(util::ByteWriter& w, const Record& rec) {
  w.u64(rec.version);
  w.u32(rec.ttl);
  w.u8(rec.flags);
  if (rec.is_signed()) {
    w.bytes(std::span<const std::uint8_t>(rec.owner.bytes));
    w.bytes(std::span<const std::uint8_t>(rec.sig.bytes));
  }
  w.lp_bytes(rec.value.as_span());
}
}  // namespace

std::vector<std::uint8_t> Record::signed_bytes(const Address& key) const {
  std::vector<std::uint8_t> m;
  m.reserve(Address::kBytes + 13 + value.size());
  m.insert(m.end(), key.bytes().begin(), key.bytes().end());
  for (int i = 7; i >= 0; --i) {
    m.push_back(static_cast<std::uint8_t>(version >> (i * 8)));
  }
  for (int i = 3; i >= 0; --i) {
    m.push_back(static_cast<std::uint8_t>(ttl >> (i * 8)));
  }
  m.push_back(flags);
  const auto v = value.as_span();
  m.insert(m.end(), v.begin(), v.end());
  return m;
}

void Record::sign(const Address& key, const util::crypto::KeyPair& keys) {
  flags |= kSigned;
  owner = keys.public_key();
  sig = keys.sign(signed_bytes(key));
}

bool Record::verify(const Address& key) const {
  if (!is_signed()) return false;
  // kKeyBound: the value's leading bytes claim an overlay address, and a
  // valid signature alone must not let key X bind node Y's address — the
  // claimed address has to derive from the signing key.  A release
  // (empty value) claims nothing, so only the signature matters there.
  if (key_bound() && !value.empty()) {
    if (value.size() < Address::kBytes) return false;
    Address::Bytes claimed{};
    std::copy_n(value.data(), Address::kBytes, claimed.begin());
    if (Address(claimed) != Address::from_public_key(owner)) return false;
  }
  return util::crypto::verify(owner, signed_bytes(key), sig);
}

Dht::Dht(BrunetNode& node, DhtConfig cfg)
    : node_(node), cfg_(cfg), alive_(std::make_shared<bool>(true)) {
  node_.set_handler(PacketType::kDhtRequest,
                    [this](const Packet& pkt) { handle_request(pkt); });
  republish_timer_ = node_.host().loop().schedule_after(
      cfg_.republish_interval, [this] { republish_tick(); });
  // Churn hooks: a dead connection may have held replicas of our records;
  // a graceful departure hands every record onward before edges drop.
  node_.add_connection_lost_observer(
      [this, alive = std::weak_ptr<bool>(alive_)](const Address& lost) {
        if (alive.expired()) return;
        // The departed peer may come back (same overlay address after a
        // crash/rejoin): clear the handoff stamps aimed at it so the
        // republish tick re-sends the records it lost, instead of
        // starving the rejoined owner forever.
        for (auto& [key, s] : store_) {
          if (s.handed && s.handed_to == lost) s.handed = false;
        }
        schedule_rereplication();
      });
  node_.add_departure_hook([this, alive = std::weak_ptr<bool>(alive_)] {
    if (alive.expired()) return;
    handoff_all();
  });
}

Dht::~Dht() {
  stopped_ = true;
  auto& loop = node_.host().loop();
  if (republish_timer_ != 0) loop.cancel(republish_timer_);
  if (rereplicate_timer_ != 0) loop.cancel(rereplicate_timer_);
}

std::uint64_t Dht::write_stamp() {
  // Version stamps must order writes across *different* writers, or a
  // stale replica of an overwritten record can hold a higher version
  // than the current owner's copy and win reconciliation (the
  // anti-entropy push-back would then actively spread the dead value).
  // Clock-derived stamps give that global order: all nodes share the
  // simulated clock, so later write == larger stamp; the max() keeps a
  // single writer strictly monotonic within one tick.  (A deployment
  // would use NTP-disciplined wall time — last-writer-wins DHTs already
  // accept that clock skew bounds their consistency.)
  const auto now_ns =
      static_cast<std::uint64_t>(node_.host().loop().now().count());
  version_counter_ = std::max(version_counter_ + 1, now_ns);
  return version_counter_;
}

void Dht::finalize_outgoing(const Key& key, Record& rec) {
  rec.version = write_stamp();
  // Every write from an identity-bearing node is signed — the subsystems
  // above (DHCP, Brunet-ARP) get ownership protection without holding
  // key material themselves.  Signing happens after the version stamp
  // because the signature covers it (replay protection).
  if (node_.has_identity()) {
    rec.sign(key, node_.identity().keys);
  }
}

void Dht::put(const Key& key, Record rec, PutCallback cb) {
  ++stats_.puts;
  finalize_outgoing(key, rec);
  node_.request(key, PacketType::kDhtRequest, RoutingMode::kClosest,
                encode_record(Op::kPut, key, rec),
                [cb = std::move(cb)](std::optional<Packet> resp) {
                  if (cb) cb(resp.has_value() && !resp->payload().empty() &&
                             resp->payload()[0] == kOk);
                });
}

void Dht::release(const Key& key, PutCallback cb) {
  // An unsigned release would be a free hijack primitive (anyone could
  // erase anyone's record), so it only exists for identity-bearing
  // nodes; the storing node enforces the same rule.
  if (!node_.has_identity()) {
    if (cb) cb(false);
    return;
  }
  ++stats_.puts;
  Record rec;  // empty value = release
  finalize_outgoing(key, rec);
  node_.request(key, PacketType::kDhtRequest, RoutingMode::kClosest,
                encode_record(Op::kPut, key, rec),
                [cb = std::move(cb)](std::optional<Packet> resp) {
                  if (cb) cb(resp.has_value() && !resp->payload().empty() &&
                             resp->payload()[0] == kOk);
                });
}

void Dht::create(const Key& key, Record rec, PutCallback cb) {
  ++stats_.creates;
  create_attempt(key, std::move(rec), cfg_.create_retries, std::move(cb));
}

void Dht::create_attempt(const Key& key, Record rec, int retries_left,
                         PutCallback cb) {
  // Keep the caller's record as the retry template (copying shares the
  // value's storage, O(1)); each attempt gets a fresh stamp + signature.
  Record wire = rec;
  finalize_outgoing(key, wire);
  node_.request(
      key, PacketType::kDhtRequest, RoutingMode::kClosest,
      encode_record(Op::kCreate, key, wire),
      [this, key, rec = std::move(rec), retries_left, cb = std::move(cb),
       alive = std::weak_ptr<bool>(alive_)](std::optional<Packet> resp) mutable {
        if (alive.expired()) return;
        // kRetry means delivery hit a node too young to decide (its miss
        // is not authoritative); the claim itself is still undecided, so
        // back off and re-ask rather than reporting a conflict.
        if (resp && !resp->payload().empty() && resp->payload()[0] == kRetry &&
            retries_left > 0 && !stopped_) {
          node_.host().loop().schedule_after(
              cfg_.create_retry_delay,
              [this, key, rec = std::move(rec), retries_left,
               cb = std::move(cb), alive2 = std::move(alive)]() mutable {
                if (alive2.expired() || stopped_) return;
                create_attempt(key, std::move(rec), retries_left - 1,
                               std::move(cb));
              });
          return;
        }
        if (cb) cb(resp.has_value() && !resp->payload().empty() &&
                   resp->payload()[0] == kOk);
      });
}

void Dht::get(const Key& key, GetCallback cb) {
  ++stats_.gets;
  get_attempt(key, cfg_.get_retries, std::move(cb));
}

void Dht::get_attempt(const Key& key, int retries_left, GetCallback cb) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kGet));
  w.bytes(std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
  node_.request(
      key, PacketType::kDhtRequest, RoutingMode::kClosest, w.take(),
      [this, key, retries_left, cb = std::move(cb),
       alive = std::weak_ptr<bool>(alive_)](std::optional<Packet> resp) mutable {
        if (alive.expired()) return;
        if (!resp) {
          ++stats_.get_timeouts;
        } else if (resp->payload().empty() || resp->payload()[0] == kNotFound) {
          ++stats_.get_notfound;
        }
        if (!resp || resp->payload().empty() ||
            resp->payload()[0] == kNotFound) {
          // Miss or timeout: under churn the request may have died on a
          // route through a dead-but-not-yet-evicted node; give the ring
          // a beat to heal and ask again.
          if (retries_left > 0 && !stopped_) {
            ++stats_.get_retries;
            node_.host().loop().schedule_after(
                cfg_.get_retry_delay,
                [this, key, retries_left, cb = std::move(cb),
                 alive2 = std::move(alive)]() mutable {
                  if (alive2.expired() || stopped_) return;
                  get_attempt(key, retries_left - 1, std::move(cb));
                });
            return;
          }
          ++stats_.misses;
          if (cb) cb(std::nullopt);
          return;
        }
        ++stats_.hits;
        try {
          util::ByteReader r(resp->payload());
          r.u8();  // status
          // The record's value shares the response packet's storage —
          // resolvers read the bytes in place, no copy.
          if (cb) cb(decode_record(r, resp->share_payload()));
        } catch (const util::ParseError&) {
          if (cb) cb(std::nullopt);
        }
      });
}

Record Dht::decode_record(util::ByteReader& r, const util::Buffer& storage) {
  Record rec;
  rec.version = r.u64();
  rec.ttl = r.u32();
  rec.flags = r.u8();
  if (rec.is_signed()) {
    const auto pk = r.bytes(rec.owner.bytes.size());
    std::copy(pk.begin(), pk.end(), rec.owner.bytes.begin());
    const auto sg = r.bytes(rec.sig.bytes.size());
    std::copy(sg.begin(), sg.end(), rec.sig.bytes.begin());
  }
  const std::uint32_t len = r.u32();
  // `storage` backs exactly the span the reader walks, so the value is a
  // sub-buffer of the carrying packet: zero-copy decode, and the record
  // keeps the packet storage alive for as long as it lives.
  const std::size_t off = storage.size() - r.remaining();
  r.bytes(len);  // bounds check + advance
  rec.value = storage.share(off, len);
  return rec;
}

std::uint8_t Dht::check_ownership(const Key& key, const Record& rec) {
  if (rec.is_signed() && !rec.verify(key)) {
    ++stats_.sig_rejects;
    return kConflict;
  }
  auto it = store_.find(key);
  if (it == store_.end() ||
      it->second.expires < node_.host().loop().now() ||
      !it->second.rec.is_signed()) {
    return kOk;  // no live signed incumbent: first come, first served
  }
  // A live signed record holds the key: only its owner may touch it.
  if (!rec.is_signed() || !(rec.owner == it->second.rec.owner)) {
    ++stats_.owner_rejects;
    return kConflict;
  }
  // Replay gate: the signature covers the version, so an attacker cannot
  // restamp a captured record — but they can resend it verbatim.  A
  // same-owner write older than the live copy is such a replay (or a
  // badly stale replica); reject instead of answering kOk while
  // silently keeping the newer record.
  if (rec.version < it->second.rec.version) {
    ++stats_.sig_rejects;
    return kConflict;
  }
  return kOk;
}

void Dht::handle_request(const Packet& pkt) {
  Op op;
  Key key;
  util::ByteReader r(pkt.payload());
  try {
    op = static_cast<Op>(r.u8());
    Address::Bytes kb{};
    auto raw = r.bytes(Address::kBytes);
    std::copy(raw.begin(), raw.end(), kb.begin());
    key = Address(kb);

    switch (op) {
      case Op::kPut: {
        Record rec = decode_record(r, pkt.share_payload());
        const std::uint8_t st = check_ownership(key, rec);
        if (st != kOk) {
          node_.respond(pkt, PacketType::kDhtResponse,
                        std::vector<std::uint8_t>{st});
          return;
        }
        // FCFS on an authoritative miss is correct; FCFS on a YOUNG
        // node's miss hands the key to whoever writes first during the
        // handoff window — exactly the lease/binding hijack the hostile
        // soak probes.  Consult the ex-closest node first: a live record
        // there signed by a DIFFERENT key outranks the newcomer (the
        // create path runs the same consult for the same reason).
        auto inc = store_.find(key);
        const bool incumbent_live =
            inc != store_.end() &&
            inc->second.expires >= node_.host().loop().now() &&
            inc->second.rec.is_signed();
        if (!incumbent_live && rec.is_signed() &&
            node_.uptime() < cfg_.min_owner_age) {
          const Connection* prev = node_.table().closest_to(key);
          if (prev != nullptr) {
            ++stats_.consults;
            util::ByteWriter cw;
            cw.u8(static_cast<std::uint8_t>(Op::kGetLocal));
            cw.bytes(std::span<const std::uint8_t>(key.bytes().data(),
                                                   Address::kBytes));
            node_.request(
                prev->addr, PacketType::kDhtRequest, RoutingMode::kExact,
                cw.take(),
                [this, key, rec, req = pkt,
                 alive = std::weak_ptr<bool>(alive_)](
                    std::optional<Packet> resp) mutable {
                  if (alive.expired() || stopped_) return;
                  if (resp && !resp->payload().empty() &&
                      resp->payload()[0] == kOk) {
                    try {
                      util::ByteReader rr(resp->payload());
                      rr.u8();  // status
                      Record held = decode_record(rr, resp->share_payload());
                      if (held.is_signed() && !(held.owner == rec.owner)) {
                        ++stats_.consult_hits;
                        ++stats_.owner_rejects;
                        node_.respond(req, PacketType::kDhtResponse,
                                      std::vector<std::uint8_t>{kConflict});
                        return;
                      }
                    } catch (const util::ParseError&) {
                    }
                  }
                  accept_write(key, std::move(rec), req);
                });
            return;
          }
        }
        accept_write(key, std::move(rec), pkt);
        return;
      }
      case Op::kCreate: {
        Record rec = decode_record(r, pkt.share_payload());
        const std::uint8_t st = check_ownership(key, rec);
        if (st != kOk) {
          ++stats_.create_conflicts;
          node_.respond(pkt, PacketType::kDhtResponse,
                        std::vector<std::uint8_t>{st});
          return;
        }
        // Owner-side uniqueness check: a live record with a different
        // value wins; an expired record or the writer's own value does
        // not block (the latter is how a lease holder renews).
        auto it = store_.find(key);
        if (it != store_.end() &&
            it->second.expires >= node_.host().loop().now() &&
            !it->second.rec.same_value(rec)) {
          ++stats_.create_conflicts;
          node_.respond(pkt, PacketType::kDhtResponse,
                        std::vector<std::uint8_t>{kConflict});
          return;
        }
        if (it == store_.end() ||
            it->second.expires < node_.host().loop().now()) {
          // A young node's miss is not authoritative: its half-built
          // table may both deliver and consult far from the key's true
          // ring region, and accepting there double-allocates a taken
          // key.  Tell the claimant to back off and re-route once our
          // position has settled.
          if (node_.uptime() < cfg_.min_owner_age) {
            ++stats_.create_deferrals;
            node_.respond(pkt, PacketType::kDhtResponse,
                          std::vector<std::uint8_t>{kRetry});
            return;
          }
          // Fresh-owner window: under churn we may have just become the
          // closest node for this key without having received the
          // previous owner's handoff, and a blind accept here would mint
          // a duplicate for a key that is already taken one hop away.
          // Consult the next-closest node before accepting.
          const Connection* prev = node_.table().closest_to(key);
          if (prev != nullptr) {
            ++stats_.consults;
            util::ByteWriter cw;
            cw.u8(static_cast<std::uint8_t>(Op::kGetLocal));
            cw.bytes(std::span<const std::uint8_t>(key.bytes().data(),
                                                   Address::kBytes));
            node_.request(
                prev->addr, PacketType::kDhtRequest, RoutingMode::kExact,
                cw.take(),
                [this, key, rec, req = pkt,
                 alive = std::weak_ptr<bool>(alive_)](
                    std::optional<Packet> resp) mutable {
                  if (alive.expired() || stopped_) return;
                  if (resp && !resp->payload().empty() &&
                      resp->payload()[0] == kOk) {
                    try {
                      util::ByteReader rr(resp->payload());
                      rr.u8();  // status
                      Record held = decode_record(rr, resp->share_payload());
                      if (!held.same_value(rec)) {
                        ++stats_.consult_hits;
                        ++stats_.create_conflicts;
                        node_.respond(req, PacketType::kDhtResponse,
                                      std::vector<std::uint8_t>{kConflict});
                        return;
                      }
                    } catch (const util::ParseError&) {
                    }
                  }
                  accept_write(key, std::move(rec), req);
                });
            return;
          }
        }
        accept_write(key, std::move(rec), pkt);
        return;
      }
      case Op::kReplica: {
        Record rec = decode_record(r, pkt.share_payload());
        if (check_ownership(key, rec) != kOk) {
          return;  // replicas are fire-and-forget, rejects included
        }
        if (rec.is_release()) {
          // Owner-signed release propagated by the storing node: erase
          // our copy too, so the key frees ring-wide at once.
          if (store_.erase(key) > 0) {
            ++stats_.releases;
            stats_.stored = store_.size();
          }
          return;
        }
        // Anti-entropy push-back: a replica OLDER than our stored copy
        // means its holder is stale (an overwritten binding it never saw
        // rewritten — e.g. a re-leased IP's old owner record).  Push our
        // newer record back at the sender instead of silently dropping
        // theirs; one round-trip heals the stale copy, and the exchange
        // terminates because only the strictly-newer side ever replies.
        {
          auto it = store_.find(key);
          if (it != store_.end() && it->second.rec.version > rec.version &&
              it->second.expires >= node_.host().loop().now() &&
              !it->second.rec.same_value(rec)) {
            node_.send(Destination::unicast(pkt.src),
                       OutboundFrame(PacketType::kDhtRequest,
                                     encode_stored(key, it->second)));
            ++stats_.antientropy_pushbacks;
            return;
          }
        }
        // A replica write is the system placing this copy: if we are not
        // the owner, stamp it handed so the next republish tick does not
        // echo it straight back to the owner that just sent it.  handed_to
        // records the believed owner, so its connection loss re-arms the
        // handoff (see the connection-lost observer).
        const Connection* best = node_.table().closest_to(key);
        Stored* s = store_record(key, std::move(rec));
        if (s != nullptr && best != nullptr &&
            Address::closer(key, best->addr, node_.address())) {
          s->handed = true;
          s->handed_to = best->addr;
        }
        return;  // replicas are fire-and-forget
      }
      case Op::kGet: {
        auto it = store_.find(key);
        if (it == store_.end() ||
            it->second.expires < node_.host().loop().now()) {
          // Miss: the record may still sit one hop away at the previous
          // owner (we became closest before its handoff reached us).
          // Consult it and relay a hit; kGetLocal keeps this from ever
          // recursing further.
          const Connection* prev = node_.table().closest_to(key);
          if (prev == nullptr) {
            node_.respond(pkt, PacketType::kDhtResponse,
                          std::vector<std::uint8_t>{kNotFound});
            return;
          }
          ++stats_.consults;
          util::ByteWriter cw;
          cw.u8(static_cast<std::uint8_t>(Op::kGetLocal));
          cw.bytes(std::span<const std::uint8_t>(key.bytes().data(),
                                                 Address::kBytes));
          node_.request(
              prev->addr, PacketType::kDhtRequest, RoutingMode::kExact,
              cw.take(),
              [this, req = pkt, alive = std::weak_ptr<bool>(alive_)](
                  std::optional<Packet> resp) mutable {
                if (alive.expired() || stopped_) return;
                if (resp && !resp->payload().empty() &&
                    resp->payload()[0] == kOk) {
                  ++stats_.consult_hits;
                  node_.respond(req, PacketType::kDhtResponse,
                                resp->share_payload());
                  return;
                }
                node_.respond(req, PacketType::kDhtResponse,
                              std::vector<std::uint8_t>{kNotFound});
              });
          return;
        }
        util::ByteWriter w;
        w.u8(kOk);
        encode_record_fields(w, it->second.rec);
        node_.respond(pkt, PacketType::kDhtResponse, w.take());
        return;
      }
      case Op::kGetLocal: {
        auto it = store_.find(key);
        if (it == store_.end() ||
            it->second.expires < node_.host().loop().now()) {
          node_.respond(pkt, PacketType::kDhtResponse,
                        std::vector<std::uint8_t>{kNotFound});
          return;
        }
        util::ByteWriter w;
        w.u8(kOk);
        encode_record_fields(w, it->second.rec);
        node_.respond(pkt, PacketType::kDhtResponse, w.take());
        return;
      }
    }
  } catch (const util::ParseError&) {
  }
}

void Dht::accept_write(const Key& key, Record rec, const Packet& req) {
  if (rec.is_release()) {
    // check_ownership already proved the signer owns the record (or the
    // key is free): erase, propagate to the replica holders, done.
    if (store_.erase(key) > 0) {
      ++stats_.releases;
      stats_.stored = store_.size();
    }
    replicate(key, rec);
    node_.respond(req, PacketType::kDhtResponse,
                  std::vector<std::uint8_t>{kOk});
    return;
  }
  bump_version(key, rec);
  store_record(key, rec);
  replicate(key, rec);
  node_.respond(req, PacketType::kDhtResponse,
                std::vector<std::uint8_t>{kOk});
}

void Dht::bump_version(const Key& key, Record& rec) {
  // Writers stamp versions from their own independent counters, so an
  // accepted overwrite must also dominate whatever version the previous
  // writer left here (and on the replicas) — otherwise store_record()
  // keeps the old record while the owner already answered kOk.  Signed
  // records are exempt: restamping would break the signature, and their
  // replay gate already rejected non-dominating writes.
  if (rec.is_signed()) return;
  auto it = store_.find(key);
  if (it != store_.end()) {
    rec.version = std::max(rec.version, it->second.rec.version + 1);
  }
}

std::vector<std::uint8_t> Dht::encode_record(Op op, const Key& key,
                                             const Record& rec) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.bytes(std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
  encode_record_fields(w, rec);
  return w.take();
}

void Dht::replicate(const Key& key, const Record& rec) {
  // Replicate to ring neighbors: the replica record is serialized once
  // and the fan-out shares that one buffer — each replica packet prepends
  // its own header segment, and replicas routing over the same edge leave
  // in one batched transport send.
  std::vector<Address> replicas;
  replicas.reserve(cfg_.replicas + 1);
  node_.table().for_each_right(
      cfg_.replicas, [&](const Connection& c) { replicas.push_back(c.addr); });
  // One counter-clockwise guard copy: when the owner crashes, ownership
  // moves to whichever side of the key is next-closest — if that is the
  // left neighbor, a clockwise-only replica set leaves the new owner
  // (and its consult target) without a copy during the repair window.
  if (const Connection* left = node_.table().left_neighbor()) {
    if (std::find(replicas.begin(), replicas.end(), left->addr) ==
        replicas.end()) {
      replicas.push_back(left->addr);
    }
  }
  node_.send(Destination::fanout(replicas),
             OutboundFrame(PacketType::kDhtRequest,
                           encode_record(Op::kReplica, key, rec)));
}

bool Dht::owns(const Key& key) const {
  const Connection* best = node_.table().closest_to(key);
  return best == nullptr ||
         !Address::closer(key, best->addr, node_.address());
}

void Dht::schedule_rereplication() {
  if (stopped_ || rereplicate_timer_ != 0) return;
  rereplicate_timer_ = node_.host().loop().schedule_after(
      cfg_.rereplicate_delay, [this] {
        rereplicate_timer_ = 0;
        rereplicate_owned();
      });
}

void Dht::rereplicate_owned() {
  if (stopped_) return;
  const auto now = node_.host().loop().now();
  for (const auto& [key, s] : store_) {
    if (s.expires < now || !owns(key)) continue;
    replicate(key, s.rec);
    ++stats_.rereplications;
  }
}

void Dht::handoff_all() {
  // Departing: push every record out before our edges go down; the
  // receiver absorbs each as a plain replica write.  Records we own go
  // kExact to the connection closest to the key — that node inherits the
  // key once we leave, and kClosest would loop back to us (we *are* the
  // closest while still in the ring).  Copies we don't own are routed
  // kClosest to the key itself, landing at the true owner instead of at
  // whichever connection is locally closest (which would store the copy
  // and have to relay it again next tick).
  for (const auto& [key, s] : store_) {
    const Connection* best = node_.table().closest_to(key);
    if (best == nullptr) continue;
    if (!Address::closer(key, best->addr, node_.address())) {
      node_.send(Destination::unicast(best->addr),
                 OutboundFrame(PacketType::kDhtRequest,
                               encode_stored(key, s)));
    } else {
      node_.send(Destination::closest(key),
                 OutboundFrame(PacketType::kDhtRequest,
                               encode_stored(key, s)));
    }
    ++stats_.handoffs;
  }
}

Dht::Stored* Dht::store_record(const Key& key, Record rec) {
  const auto now = node_.host().loop().now();
  auto it = store_.find(key);
  if (it != store_.end() && it->second.rec.version > rec.version &&
      it->second.expires >= now) {
    return nullptr;  // stale write: keep the newer live record
  }
  Stored s;
  s.expires = now + (rec.ttl != 0 ? util::seconds(rec.ttl) : cfg_.record_ttl);
  s.rec = std::move(rec);
  auto& slot = store_[key];
  slot = std::move(s);
  stats_.stored = store_.size();
  return &slot;
}

void Dht::republish_tick() {
  if (stopped_) return;
  const auto now = node_.host().loop().now();
  // Expire dead records.
  std::erase_if(store_, [&](const auto& kv) { return kv.second.expires < now; });
  stats_.stored = store_.size();
  // Hand off records whose key is now closer to a connected neighbor than
  // to us (ring membership changed underneath the data).  The copy is
  // routed kClosest to the *key*, so it lands at the true owner in one
  // logical transfer — sending kExact one greedy hop at a time would make
  // every relay node store the record, and those stale relay copies (alive
  // for record_ttl) re-hand themselves on every table change; at 10^3
  // nodes under churn that snowballed into ~5000 handoffs per sim-second.
  // Each copy is forwarded once: the handed stamp suppresses re-sends even
  // when the locally-closest connection flaps, and is cleared when the
  // believed owner's connection drops or the record is rewritten.
  for (auto& [key, s] : store_) {
    if (s.handed) continue;
    const Connection* best = node_.table().closest_to(key);
    if (best == nullptr || !Address::closer(key, best->addr, node_.address())) {
      continue;
    }
    node_.send(Destination::closest(key),
               OutboundFrame(PacketType::kDhtRequest, encode_stored(key, s)));
    s.handed = true;
    s.handed_to = best->addr;
    ++stats_.handoffs;
  }
  republish_timer_ = node_.host().loop().schedule_after(
      cfg_.republish_interval, [this] { republish_tick(); });
}

}  // namespace ipop::brunet
