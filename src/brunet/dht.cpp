#include "brunet/dht.hpp"

#include "util/logging.hpp"

namespace ipop::brunet {

namespace {
constexpr std::uint8_t kOk = 1;
constexpr std::uint8_t kNotFound = 0;
constexpr std::uint8_t kConflict = 2;  // create(): key taken by other value
}  // namespace

Dht::Dht(BrunetNode& node, DhtConfig cfg)
    : node_(node), cfg_(cfg), alive_(std::make_shared<bool>(true)) {
  node_.set_handler(PacketType::kDhtRequest,
                    [this](const Packet& pkt) { handle_request(pkt); });
  republish_timer_ = node_.host().loop().schedule_after(
      cfg_.republish_interval, [this] { republish_tick(); });
  // Churn hooks: a dead connection may have held replicas of our records;
  // a graceful departure hands every record onward before edges drop.
  node_.add_connection_lost_observer(
      [this, alive = std::weak_ptr<bool>(alive_)](const Address& lost) {
        if (alive.expired()) return;
        // The departed peer may come back (same overlay address after a
        // crash/rejoin): clear the handoff stamps aimed at it so the
        // republish tick re-sends the records it lost, instead of
        // starving the rejoined owner forever.
        for (auto& [key, rec] : store_) {
          if (rec.handed && rec.handed_to == lost) rec.handed = false;
        }
        schedule_rereplication();
      });
  node_.add_departure_hook([this, alive = std::weak_ptr<bool>(alive_)] {
    if (alive.expired()) return;
    handoff_all();
  });
}

Dht::~Dht() {
  stopped_ = true;
  auto& loop = node_.host().loop();
  if (republish_timer_ != 0) loop.cancel(republish_timer_);
  if (rereplicate_timer_ != 0) loop.cancel(rereplicate_timer_);
}

void Dht::put(const Key& key, std::vector<std::uint8_t> value, PutCallback cb) {
  ++stats_.puts;
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kPut));
  w.bytes(std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
  w.u64(version_counter_++);
  w.lp_bytes(value);
  node_.request(key, PacketType::kDhtRequest, RoutingMode::kClosest, w.take(),
                [cb = std::move(cb)](std::optional<Packet> resp) {
                  if (cb) cb(resp.has_value() && !resp->payload().empty() &&
                             resp->payload()[0] == kOk);
                });
}

void Dht::create(const Key& key, std::vector<std::uint8_t> value,
                 PutCallback cb) {
  ++stats_.creates;
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kCreate));
  w.bytes(std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
  w.u64(version_counter_++);
  w.lp_bytes(value);
  node_.request(key, PacketType::kDhtRequest, RoutingMode::kClosest, w.take(),
                [cb = std::move(cb)](std::optional<Packet> resp) {
                  if (cb) cb(resp.has_value() && !resp->payload().empty() &&
                             resp->payload()[0] == kOk);
                });
}

void Dht::get(const Key& key, GetCallback cb) {
  ++stats_.gets;
  get_attempt(key, cfg_.get_retries, std::move(cb));
}

void Dht::get_attempt(const Key& key, int retries_left, GetCallback cb) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kGet));
  w.bytes(std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
  node_.request(
      key, PacketType::kDhtRequest, RoutingMode::kClosest, w.take(),
      [this, key, retries_left, cb = std::move(cb),
       alive = std::weak_ptr<bool>(alive_)](std::optional<Packet> resp) mutable {
        if (alive.expired()) return;
        if (!resp || resp->payload().empty() ||
            resp->payload()[0] == kNotFound) {
          // Miss or timeout: under churn the request may have died on a
          // route through a dead-but-not-yet-evicted node; give the ring
          // a beat to heal and ask again.
          if (retries_left > 0 && !stopped_) {
            ++stats_.get_retries;
            node_.host().loop().schedule_after(
                cfg_.get_retry_delay,
                [this, key, retries_left, cb = std::move(cb),
                 alive2 = std::move(alive)]() mutable {
                  if (alive2.expired() || stopped_) return;
                  get_attempt(key, retries_left - 1, std::move(cb));
                });
            return;
          }
          ++stats_.misses;
          if (cb) cb(std::nullopt);
          return;
        }
        ++stats_.hits;
        try {
          util::ByteReader r(resp->payload());
          r.u8();  // status
          if (cb) cb(r.lp_bytes());
        } catch (const util::ParseError&) {
          if (cb) cb(std::nullopt);
        }
      });
}

void Dht::handle_request(const Packet& pkt) {
  Op op;
  Key key;
  util::ByteReader r(pkt.payload());
  try {
    op = static_cast<Op>(r.u8());
    Address::Bytes kb{};
    auto raw = r.bytes(Address::kBytes);
    std::copy(raw.begin(), raw.end(), kb.begin());
    key = Address(kb);

    switch (op) {
      case Op::kPut: {
        Record rec;
        rec.version = r.u64();
        rec.value = r.lp_bytes();
        rec.expires = node_.host().loop().now() + cfg_.record_ttl;
        bump_version(key, rec);
        store_record(key, rec);
        replicate(key, rec);
        node_.respond(pkt, PacketType::kDhtResponse,
                      std::vector<std::uint8_t>{kOk});
        return;
      }
      case Op::kCreate: {
        Record rec;
        rec.version = r.u64();
        rec.value = r.lp_bytes();
        // Owner-side uniqueness check: a live record with a different
        // value wins; an expired record or the writer's own value does
        // not block (the latter is how a lease holder renews).
        auto it = store_.find(key);
        if (it != store_.end() &&
            it->second.expires >= node_.host().loop().now() &&
            it->second.value != rec.value) {
          ++stats_.create_conflicts;
          node_.respond(pkt, PacketType::kDhtResponse,
                        std::vector<std::uint8_t>{kConflict});
          return;
        }
        rec.expires = node_.host().loop().now() + cfg_.record_ttl;
        bump_version(key, rec);
        store_record(key, rec);
        replicate(key, rec);
        node_.respond(pkt, PacketType::kDhtResponse,
                      std::vector<std::uint8_t>{kOk});
        return;
      }
      case Op::kReplica: {
        Record rec;
        rec.version = r.u64();
        rec.value = r.lp_bytes();
        rec.expires = node_.host().loop().now() + cfg_.record_ttl;
        store_record(key, rec);
        return;  // replicas are fire-and-forget
      }
      case Op::kGet: {
        auto it = store_.find(key);
        if (it == store_.end() ||
            it->second.expires < node_.host().loop().now()) {
          node_.respond(pkt, PacketType::kDhtResponse,
                        std::vector<std::uint8_t>{kNotFound});
          return;
        }
        util::ByteWriter w;
        w.u8(kOk);
        w.lp_bytes(it->second.value);
        node_.respond(pkt, PacketType::kDhtResponse, w.take());
        return;
      }
    }
  } catch (const util::ParseError&) {
  }
}

void Dht::bump_version(const Key& key, Record& rec) {
  // Writers stamp versions from their own independent counters, so an
  // accepted overwrite must also dominate whatever version the previous
  // writer left here (and on the replicas) — otherwise store_record()
  // keeps the old record while the owner already answered kOk.
  auto it = store_.find(key);
  if (it != store_.end()) {
    rec.version = std::max(rec.version, it->second.version + 1);
  }
}

std::vector<std::uint8_t> Dht::encode_replica(const Key& key,
                                              const Record& rec) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kReplica));
  w.bytes(std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
  w.u64(rec.version);
  w.lp_bytes(rec.value);
  return w.take();
}

void Dht::replicate(const Key& key, const Record& rec) {
  // Replicate to ring neighbors: the replica record is serialized once
  // and the fan-out shares that one buffer — each replica packet prepends
  // its own header segment, and replicas routing over the same edge leave
  // in one batched transport send.
  const auto payload = util::Buffer::wrap(encode_replica(key, rec));
  std::vector<Address> replicas;
  for (const auto* c : node_.table().right_neighbors(cfg_.replicas)) {
    replicas.push_back(c->addr);
    if (replicas.size() >= cfg_.replicas) break;
  }
  node_.send_batch(replicas, PacketType::kDhtRequest, RoutingMode::kExact,
                   payload.share());
}

bool Dht::owns(const Key& key) const {
  const Connection* best = node_.table().closest_to(key);
  return best == nullptr ||
         !Address::closer(key, best->addr, node_.address());
}

void Dht::schedule_rereplication() {
  if (stopped_ || rereplicate_timer_ != 0) return;
  rereplicate_timer_ = node_.host().loop().schedule_after(
      cfg_.rereplicate_delay, [this] {
        rereplicate_timer_ = 0;
        rereplicate_owned();
      });
}

void Dht::rereplicate_owned() {
  if (stopped_) return;
  const auto now = node_.host().loop().now();
  for (const auto& [key, rec] : store_) {
    if (rec.expires < now || !owns(key)) continue;
    replicate(key, rec);
    ++stats_.rereplications;
  }
}

void Dht::handoff_all() {
  // Departing: push every record (owned or replica) to the connected node
  // now closest to its key.  Routed kExact over the still-open edges; the
  // receiver absorbs it as a plain replica write.
  for (const auto& [key, rec] : store_) {
    const Connection* best = node_.table().closest_to(key);
    if (best == nullptr) continue;
    node_.send(best->addr, PacketType::kDhtRequest, RoutingMode::kExact,
               encode_replica(key, rec));
    ++stats_.handoffs;
  }
}

void Dht::store_record(const Key& key, Record rec) {
  auto it = store_.find(key);
  if (it != store_.end() && it->second.version > rec.version) {
    return;  // stale write: keep the newer record
  }
  store_[key] = std::move(rec);
  stats_.stored = store_.size();
}

void Dht::republish_tick() {
  if (stopped_) return;
  const auto now = node_.host().loop().now();
  // Expire dead records.
  std::erase_if(store_, [&](const auto& kv) { return kv.second.expires < now; });
  stats_.stored = store_.size();
  // Hand off records whose key is now closer to a connected neighbor than
  // to us (ring membership changed underneath the data).  Each copy is
  // forwarded once per distinct owner: the handed_to stamp suppresses the
  // re-send until ownership shifts again or the record is rewritten.
  for (auto& [key, rec] : store_) {
    const Connection* best = node_.table().closest_to(key);
    if (best == nullptr || !Address::closer(key, best->addr, node_.address())) {
      continue;
    }
    if (rec.handed && rec.handed_to == best->addr) continue;
    node_.send(best->addr, PacketType::kDhtRequest, RoutingMode::kExact,
               encode_replica(key, rec));
    rec.handed = true;
    rec.handed_to = best->addr;
    ++stats_.handoffs;
  }
  republish_timer_ = node_.host().loop().schedule_after(
      cfg_.republish_interval, [this] { republish_tick(); });
}

}  // namespace ipop::brunet
