#include "brunet/dht.hpp"

#include "util/logging.hpp"

namespace ipop::brunet {

namespace {
constexpr std::uint8_t kOk = 1;
constexpr std::uint8_t kNotFound = 0;
}  // namespace

Dht::Dht(BrunetNode& node, DhtConfig cfg) : node_(node), cfg_(cfg) {
  node_.set_handler(PacketType::kDhtRequest,
                    [this](const Packet& pkt) { handle_request(pkt); });
  republish_timer_ = node_.host().loop().schedule_after(
      cfg_.republish_interval, [this] { republish_tick(); });
}

Dht::~Dht() {
  stopped_ = true;
  if (republish_timer_ != 0) node_.host().loop().cancel(republish_timer_);
}

void Dht::put(const Key& key, std::vector<std::uint8_t> value, PutCallback cb) {
  ++stats_.puts;
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kPut));
  w.bytes(std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
  w.u64(version_counter_++);
  w.lp_bytes(value);
  node_.request(key, PacketType::kDhtRequest, RoutingMode::kClosest, w.take(),
                [cb = std::move(cb)](std::optional<Packet> resp) {
                  if (cb) cb(resp.has_value() && !resp->payload().empty() &&
                             resp->payload()[0] == kOk);
                });
}

void Dht::get(const Key& key, GetCallback cb) {
  ++stats_.gets;
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kGet));
  w.bytes(std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
  node_.request(
      key, PacketType::kDhtRequest, RoutingMode::kClosest, w.take(),
      [this, cb = std::move(cb)](std::optional<Packet> resp) {
        if (!resp || resp->payload().empty() || resp->payload()[0] == kNotFound) {
          ++stats_.misses;
          if (cb) cb(std::nullopt);
          return;
        }
        ++stats_.hits;
        try {
          util::ByteReader r(resp->payload());
          r.u8();  // status
          if (cb) cb(r.lp_bytes());
        } catch (const util::ParseError&) {
          if (cb) cb(std::nullopt);
        }
      });
}

void Dht::handle_request(const Packet& pkt) {
  Op op;
  Key key;
  util::ByteReader r(pkt.payload());
  try {
    op = static_cast<Op>(r.u8());
    Address::Bytes kb{};
    auto raw = r.bytes(Address::kBytes);
    std::copy(raw.begin(), raw.end(), kb.begin());
    key = Address(kb);

    switch (op) {
      case Op::kPut: {
        Record rec;
        rec.version = r.u64();
        rec.value = r.lp_bytes();
        rec.expires = node_.host().loop().now() + cfg_.record_ttl;
        store_record(key, rec);
        // Replicate to ring neighbors: the replica record is serialized
        // once and the fan-out shares that one buffer — each replica
        // packet prepends its own header segment, and replicas routing
        // over the same edge leave in one batched transport send.
        util::ByteWriter w;
        w.u8(static_cast<std::uint8_t>(Op::kReplica));
        w.bytes(std::span<const std::uint8_t>(key.bytes().data(),
                                              Address::kBytes));
        w.u64(rec.version);
        w.lp_bytes(rec.value);
        const auto payload = util::Buffer::wrap(w.take());
        std::vector<Address> replicas;
        for (const auto* c : node_.table().right_neighbors(cfg_.replicas)) {
          replicas.push_back(c->addr);
          if (replicas.size() >= cfg_.replicas) break;
        }
        node_.send_batch(replicas, PacketType::kDhtRequest,
                         RoutingMode::kExact, payload.share());
        node_.respond(pkt, PacketType::kDhtResponse,
                      std::vector<std::uint8_t>{kOk});
        return;
      }
      case Op::kReplica: {
        Record rec;
        rec.version = r.u64();
        rec.value = r.lp_bytes();
        rec.expires = node_.host().loop().now() + cfg_.record_ttl;
        store_record(key, rec);
        return;  // replicas are fire-and-forget
      }
      case Op::kGet: {
        auto it = store_.find(key);
        if (it == store_.end() ||
            it->second.expires < node_.host().loop().now()) {
          node_.respond(pkt, PacketType::kDhtResponse,
                        std::vector<std::uint8_t>{kNotFound});
          return;
        }
        util::ByteWriter w;
        w.u8(kOk);
        w.lp_bytes(it->second.value);
        node_.respond(pkt, PacketType::kDhtResponse, w.take());
        return;
      }
    }
  } catch (const util::ParseError&) {
  }
}

void Dht::store_record(const Key& key, Record rec) {
  auto it = store_.find(key);
  if (it != store_.end() && it->second.version > rec.version) {
    return;  // stale write: keep the newer record
  }
  store_[key] = std::move(rec);
  stats_.stored = store_.size();
}

void Dht::republish_tick() {
  if (stopped_) return;
  const auto now = node_.host().loop().now();
  // Expire dead records.
  std::erase_if(store_, [&](const auto& kv) { return kv.second.expires < now; });
  stats_.stored = store_.size();
  // Hand off records whose key is now closer to a connected neighbor than
  // to us (ring membership changed underneath the data).
  for (const auto& [key, rec] : store_) {
    const Connection* best = node_.table().closest_to(key);
    if (best != nullptr && Address::closer(key, best->addr, node_.address())) {
      util::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(Op::kReplica));
      w.bytes(
          std::span<const std::uint8_t>(key.bytes().data(), Address::kBytes));
      w.u64(rec.version);
      w.lp_bytes(rec.value);
      node_.send(best->addr, PacketType::kDhtRequest, RoutingMode::kExact,
                 w.take());
      ++stats_.handoffs;
    }
  }
  republish_timer_ = node_.host().loop().schedule_after(
      cfg_.republish_interval, [this] { republish_tick(); });
}

}  // namespace ipop::brunet
