// FrameSealer: end-to-end payload encryption + sender authentication for
// tunneled IP packets, with per-hop routing headers left in the clear.
//
// Frame layout (the serval overlay idiom — encrypt the payload once at
// the source, let every relay patch its small cleartext header in place):
//
//   | Brunet header (clear, per-hop) | seal header (clear) | ciphertext |
//   seal header = flags(1) | sender_pubkey(32) | nonce(8) | signature(64)
//
// The payload is encrypted in place on the uniquely-owned capture buffer
// (stream cipher keyed by the Diffie-Hellman shared secret of the two
// endpoint identities), signed by the sender's Ed25519 key over
// (flags || nonce || destination address || ciphertext), and the seal
// header is prepended into the buffer's existing headroom — the secured
// hot path moves zero payload bytes, and Stats::payload_bytes_copied
// proves it (the bench gate pins the counter at 0).
//
// The signature binds the ciphertext to the destination address, so a
// captured frame cannot be redirected at another node; the nonce makes
// every (sender, payload) pair produce a distinct keystream.  Replay
// suppression is a deliberate non-goal (see README "Security model"):
// a replayed tunnel frame is a duplicate IP packet, which the virtual
// network's transports already tolerate.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>

#include "brunet/address.hpp"
#include "util/buffer.hpp"
#include "util/crypto.hpp"

namespace ipop::brunet {

class FrameSealer {
 public:
  /// Seal header bytes prepended in front of the ciphertext.
  static constexpr std::size_t kHeaderSize = 1 + 32 + 8 + 64;
  /// flags value of a sealed frame.  Deliberately collision-free with
  /// cleartext tunneled IPv4, whose first byte (version|IHL) is >= 0x45:
  /// receivers sniff byte 0 to tell sealed from legacy-clear frames.
  static constexpr std::uint8_t kSealedV1 = 0x01;

  struct Stats {
    std::uint64_t sealed = 0;
    std::uint64_t opened = 0;
    /// Frames dropped at open(): bad signature, wrong destination,
    /// truncated header, or unknown flags.
    std::uint64_t rejected = 0;
    /// Payload bytes copied while sealing (headroom shortfall or shared
    /// storage forced a reallocation).  The zero-copy invariant the
    /// bench gate pins: stays 0 while capture buffers arrive uniquely
    /// owned with the per-path headroom budget intact.
    std::uint64_t payload_bytes_copied = 0;
    /// Diffie-Hellman key agreements performed (cache misses); the
    /// steady-state per-packet cost excludes them.
    std::uint64_t key_agreements = 0;
  };

  explicit FrameSealer(const util::crypto::KeyPair& keys) : keys_(keys) {}

  /// Encrypt `payload` in place for `peer`, sign, and prepend the seal
  /// header.  `dst` is the overlay destination the signature binds the
  /// frame to; `realloc_headroom` is the sender's per-path headroom
  /// budget, used only if a (counted) reallocation is forced.
  util::Buffer seal(util::Buffer payload, const util::crypto::PublicKey& peer,
                    const Address& dst, std::size_t realloc_headroom);

  /// Verify + decrypt a sealed frame in place; `dst` must match what the
  /// sender signed (the local node's address).  Returns the plaintext
  /// sub-buffer (sharing the frame's storage) or nullopt on any failure.
  /// The caller owns `frame` exclusively per buffer-ownership rule 7.
  std::optional<util::Buffer> open(util::Buffer frame, const Address& dst);

  /// True when byte 0 of a tunnel payload marks a sealed frame.
  static bool looks_sealed(std::span<const std::uint8_t> payload) {
    return !payload.empty() && payload[0] == kSealedV1;
  }

  const Stats& stats() const { return stats_; }
  const util::crypto::PublicKey& public_key() const {
    return keys_.public_key();
  }

 private:
  /// DH shared key with `peer`, cached (one agreement per peer pair).
  const util::crypto::SymmetricKey& shared_with(
      const util::crypto::PublicKey& peer);
  /// The byte string the frame signature covers.
  static std::vector<std::uint8_t> signed_bytes(
      std::uint8_t flags, std::uint64_t nonce, const Address& dst,
      std::span<const std::uint8_t> ciphertext);

  util::crypto::KeyPair keys_;
  std::map<std::array<std::uint8_t, 32>, util::crypto::SymmetricKey> dh_cache_;
  std::uint64_t nonce_counter_ = 1;
  Stats stats_;
};

}  // namespace ipop::brunet
