// Transport edges: the point-to-point legs of the overlay.
//
// Brunet can run over TCP or UDP (the paper evaluates both modes in Tables
// I-III).  A TcpEdge frames packets onto a TCP stream with a length
// prefix; UdpEdges share one UDP socket per node and are demultiplexed by
// remote endpoint.  UDP edges come up as soon as a packet arrives from the
// remote — exactly the property the decentralized NAT traversal of Section
// III-D exploits (both sides fire probes; whichever direction the NAT
// admits brings the edge up).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "util/buffer.hpp"
#include "util/buffer_chain.hpp"
#include "util/time.hpp"

namespace ipop::brunet {

using util::Duration;
using util::TimePoint;

/// Headroom budget a base (non-tunneling) edge asks its senders to leave
/// in front of a Brunet wire image: the underlay prepends below the edge
/// (8B UDP or stream framing + 20B IPv4 + 14B Ethernet = 42B) rounded up
/// for slack.  Tunneling edges report more (their encapsulation plus the
/// budget of the edge they ride) — see Edge::headroom().
inline constexpr std::size_t kUnderlayHeadroom = 64;

struct TransportAddress {
  /// kRelay marks an edge tunneled through a relay node rather than a
  /// dialable socket endpoint; its ip/port carry the relay's identity
  /// for logging only and must never be dialed or gossiped.
  enum class Proto : std::uint8_t { kTcp = 0, kUdp = 1, kRelay = 2 };
  Proto proto = Proto::kUdp;
  net::Ipv4Address ip;
  std::uint16_t port = 0;

  std::string to_string() const;
  void encode(util::ByteWriter& w) const;
  static TransportAddress decode(util::ByteReader& r);

  friend bool operator==(const TransportAddress&,
                         const TransportAddress&) = default;
  friend auto operator<=>(const TransportAddress&,
                          const TransportAddress&) = default;
};

/// A bidirectional packet pipe to one remote node.  Packets cross an edge
/// as shared util::Buffers: sending shares the caller's buffer handle (no
/// payload copy), so forwarding a routed packet onto the next edge is
/// refcount traffic, not memcpy traffic.
class Edge {
 public:
  using ReceiveHandler = std::function<void(util::Buffer)>;
  using CloseHandler = std::function<void()>;

  virtual ~Edge() = default;
  virtual void send(util::Buffer bytes) = 0;
  /// Scatter-gather send: the chain's segments (e.g. a per-destination
  /// header in front of a shared payload buffer) cross the edge without
  /// being flattened by the caller.  The base fallback coalesces once;
  /// transports override with a copy-free path.
  virtual void send_chain(util::BufferChain chain) {
    // lint:allow(zero-copy): base-class fallback only — both real transports override copy-free
    send(chain.coalesce().share());
  }
  /// Batched send: every chain is one packet, emitted with a single
  /// transport crossing where the transport supports it (UDP's
  /// sendmmsg-style socket batch, one gathered stream write for TCP).
  virtual void send_batch(std::vector<util::BufferChain> chains) {
    for (auto& c : chains) send_chain(std::move(c));
  }
  virtual void close() = 0;
  virtual TransportAddress remote() const = 0;
  virtual bool is_up() const = 0;
  /// Headroom (bytes) a sender should leave in front of a wire image
  /// handed to send() so this edge and every layer below it prepend
  /// zero-copy.  Base transports return the underlay budget; tunneling
  /// edges (RelayEdge) add their own encapsulation on top of the edge
  /// they ride.  Nodes derive their per-path send headroom from the max
  /// over their live edges at edge-establishment time (buffer-ownership
  /// rule 6).
  virtual std::size_t headroom() const { return kUnderlayHeadroom; }

  void set_receive_handler(ReceiveHandler h) { on_receive_ = std::move(h); }
  void set_close_handler(CloseHandler h) { on_close_ = std::move(h); }

  TimePoint last_received() const { return last_received_; }
  /// Reset the activity clock (called when a node adopts the edge so a
  /// fresh edge is not immediately reaped by the keepalive sweep).
  void touch(TimePoint now) { last_received_ = now; }
  std::uint64_t packets_sent() const { return tx_; }
  std::uint64_t packets_received() const { return rx_; }

 protected:
  void deliver(TimePoint now, util::Buffer bytes) {
    last_received_ = now;
    ++rx_;
    if (on_receive_) on_receive_(std::move(bytes));
  }
  void notify_closed() {
    if (on_close_) {
      auto cb = std::move(on_close_);
      on_close_ = nullptr;
      cb();
    }
  }

  ReceiveHandler on_receive_;
  CloseHandler on_close_;
  TimePoint last_received_{};
  std::uint64_t tx_ = 0;
  std::uint64_t rx_ = 0;
};

/// TCP edge: length-prefixed packets over a stream socket.  Framing is
/// scatter-gather: the 4-byte length prefix rides its own tiny segment in
/// front of the packet buffer, and the chain is linked straight into the
/// socket's send queue — the length-framed stream copy of the historical
/// path (frame vector build + socket enqueue) is gone.
class TcpEdge : public Edge, public std::enable_shared_from_this<TcpEdge> {
 public:
  TcpEdge(sim::EventLoop& loop, std::shared_ptr<net::TcpSocket> sock);

  void send(util::Buffer bytes) override;
  void send_chain(util::BufferChain chain) override;
  /// One gathered stream write for the whole batch: frames are linked
  /// into the socket send queue back to back and the socket is crossed
  /// once.
  void send_batch(std::vector<util::BufferChain> chains) override;
  void close() override;
  TransportAddress remote() const override;
  bool is_up() const override { return up_; }

  /// Wire the socket callbacks; call once after construction.
  void attach();

  /// Underlying stream socket (stats introspection for tests/benches).
  const std::shared_ptr<net::TcpSocket>& socket() const { return sock_; }

 private:
  void pump();
  /// Prepend the 4-byte length prefix as its own segment.
  static util::BufferChain frame(util::BufferChain chain);
  /// Link `framed` into the socket queue, spilling what does not fit
  /// into the backlog chain (flushed from on_writable).
  void enqueue(util::BufferChain framed);

  sim::EventLoop& loop_;
  std::shared_ptr<net::TcpSocket> sock_;
  std::vector<std::uint8_t> rx_buf_;
  util::BufferChain tx_backlog_;  // frames the socket couldn't take
  bool up_ = true;
};

class UdpTransport;

/// UDP edge: one remote endpoint over the node's shared UDP socket.
class UdpEdge : public Edge {
 public:
  UdpEdge(UdpTransport* transport, net::Ipv4Address ip, std::uint16_t port)
      : transport_(transport), ip_(ip), port_(port) {}

  void send(util::Buffer bytes) override;
  void send_chain(util::BufferChain chain) override;
  /// One sendmmsg-style socket crossing for the whole batch.
  void send_batch(std::vector<util::BufferChain> chains) override;
  void close() override;
  TransportAddress remote() const override {
    return {TransportAddress::Proto::kUdp, ip_, port_};
  }
  bool is_up() const override { return up_; }

 private:
  friend class UdpTransport;
  UdpTransport* transport_;
  net::Ipv4Address ip_;
  std::uint16_t port_;
  bool up_ = true;
};

/// Accepts and dials TCP edges for one node.
class TcpTransport {
 public:
  using EdgeHandler = std::function<void(std::shared_ptr<Edge>)>;
  using ConnectCallback = std::function<void(std::shared_ptr<Edge>)>;

  TcpTransport(net::Host& host, std::uint16_t port);
  /// Stops accepting (closes the listener).  Established TcpEdges own
  /// their sockets and outlive the transport.
  ~TcpTransport();

  void set_inbound_handler(EdgeHandler h) { on_inbound_ = std::move(h); }
  /// Dial; cb receives nullptr on failure (refused / timeout / filtered).
  void connect(net::Ipv4Address ip, std::uint16_t port, ConnectCallback cb);
  std::uint16_t port() const { return port_; }

 private:
  net::Host& host_;
  std::uint16_t port_;
  std::shared_ptr<net::TcpListener> listener_;
  EdgeHandler on_inbound_;
  /// Expires with the transport; in-flight connect() callbacks check it
  /// before touching `this` (or invoking the caller's callback).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Owns the node's UDP socket and demultiplexes edges by remote endpoint.
class UdpTransport {
 public:
  using EdgeHandler = std::function<void(std::shared_ptr<Edge>)>;

  UdpTransport(net::Host& host, std::uint16_t port);
  /// Closes the socket and detaches every edge (up_ = false, transport
  /// pointer cleared) so an edge handle that outlives the transport —
  /// e.g. across a node stop()/start() cycle — fails sends safely
  /// instead of dereferencing a dead transport.
  ~UdpTransport();

  void set_inbound_handler(EdgeHandler h) { on_inbound_ = std::move(h); }
  /// Find or create the edge to a remote endpoint (creating it sends
  /// nothing; packets flow when the caller sends).
  std::shared_ptr<Edge> edge_to(net::Ipv4Address ip, std::uint16_t port);
  std::uint16_t port() const { return port_; }
  net::Host& host() { return host_; }
  /// Underlying socket (stats introspection for tests/benches).
  const std::shared_ptr<net::UdpSocket>& socket() const { return sock_; }

  /// sendmmsg-style corking: between cork() and uncork(), chain/batch
  /// sends on *any* of this transport's edges are staged instead of
  /// emitted, and the final uncork flushes every staged datagram —
  /// across edges and destinations — through one UdpSocket::send_batch
  /// call.  Nests (cork twice, flush on the last uncork).  A socket that
  /// closed while corked drops the staged batch safely.
  void cork() { ++cork_; }
  void uncork();
  bool corked() const { return cork_ > 0; }

 private:
  friend class UdpEdge;
  void on_datagram(net::Ipv4Address src, std::uint16_t sport,
                   util::Buffer data);
  void send_to(net::Ipv4Address ip, std::uint16_t port, util::Buffer data);
  void send_to(net::Ipv4Address ip, std::uint16_t port,
               util::BufferChain data);
  /// One UdpSocket::send_batch call for all chains toward one endpoint.
  void send_batch(net::Ipv4Address ip, std::uint16_t port,
                  std::vector<util::BufferChain> chains);
  void stage(net::Ipv4Address ip, std::uint16_t port,
             util::BufferChain chain);
  void remove_edge(net::Ipv4Address ip, std::uint16_t port);

  net::Host& host_;
  std::uint16_t port_;
  std::shared_ptr<net::UdpSocket> sock_;
  EdgeHandler on_inbound_;
  std::map<std::pair<net::Ipv4Address, std::uint16_t>,
           std::shared_ptr<UdpEdge>>
      edges_;
  int cork_ = 0;
  std::vector<net::UdpSendItem> staged_;
};

}  // namespace ipop::brunet

template <>
struct std::hash<ipop::brunet::TransportAddress> {
  std::size_t operator()(const ipop::brunet::TransportAddress& t) const noexcept {
    return (static_cast<std::size_t>(t.ip.value) << 17) ^ t.port ^
           (static_cast<std::size_t>(t.proto) << 1);
  }
};
