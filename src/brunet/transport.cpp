#include "brunet/transport.hpp"

#include "util/logging.hpp"

namespace ipop::brunet {

// ---------------------------------------------------------------------------
// TransportAddress
// ---------------------------------------------------------------------------

std::string TransportAddress::to_string() const {
  const char* scheme = proto == Proto::kTcp     ? "tcp://"
                       : proto == Proto::kRelay ? "relay://"
                                                : "udp://";
  return scheme + ip.to_string() + ":" + std::to_string(port);
}

void TransportAddress::encode(util::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(proto));
  w.u32(ip.value);
  w.u16(port);
}

TransportAddress TransportAddress::decode(util::ByteReader& r) {
  TransportAddress t;
  t.proto = static_cast<Proto>(r.u8());
  t.ip = net::Ipv4Address(r.u32());
  t.port = r.u16();
  return t;
}

// ---------------------------------------------------------------------------
// TcpEdge
// ---------------------------------------------------------------------------

TcpEdge::TcpEdge(sim::EventLoop& loop, std::shared_ptr<net::TcpSocket> sock)
    : loop_(loop), sock_(std::move(sock)) {}

void TcpEdge::attach() {
  auto self = shared_from_this();
  sock_->on_readable = [self] { self->pump(); };
  sock_->on_closed = [self](const std::string&) {
    self->up_ = false;
    self->notify_closed();
  };
  sock_->on_writable = [self] {
    // Flush any backlog that did not fit the socket buffer: the socket
    // links the chain's shared handles in place, so the flush moves no
    // bytes and copies no handles.
    if (!self->tx_backlog_.empty()) {
      self->sock_->send_from(self->tx_backlog_);
    }
  };
}

util::BufferChain TcpEdge::frame(util::BufferChain chain) {
  // The length prefix rides its own 4-byte segment; the packet bytes are
  // linked behind it untouched (no stream serialization copy).
  auto hdr = util::Buffer::allocate(4, 0);
  util::store_u32(hdr.data(), static_cast<std::uint32_t>(chain.size()));
  chain.prepend(std::move(hdr));
  return chain;
}

void TcpEdge::enqueue(util::BufferChain framed) {
  if (!tx_backlog_.empty()) {
    // Earlier frames are still queued: preserve stream order.
    tx_backlog_.append(std::move(framed));
    return;
  }
  sock_->send_from(framed);  // consumes the accepted prefix in place
  if (!framed.empty()) tx_backlog_ = std::move(framed);
}

void TcpEdge::send(util::Buffer bytes) {
  send_chain(util::BufferChain(std::move(bytes)));
}

void TcpEdge::send_chain(util::BufferChain chain) {
  if (!up_) return;
  ++tx_;
  enqueue(frame(std::move(chain)));
}

void TcpEdge::send_batch(std::vector<util::BufferChain> chains) {
  if (!up_) return;
  util::BufferChain all;
  for (auto& c : chains) {
    ++tx_;
    all.append(frame(std::move(c)));
  }
  // All frames cross the socket in one gathered write.
  enqueue(std::move(all));
}

void TcpEdge::pump() {
  while (true) {
    auto chunk = sock_->receive(64 * 1024);
    if (chunk.empty()) break;
    rx_buf_.insert(rx_buf_.end(), chunk.begin(), chunk.end());
  }
  // Extract complete frames.
  std::size_t pos = 0;
  while (rx_buf_.size() - pos >= 4) {
    const std::uint32_t len = static_cast<std::uint32_t>(rx_buf_[pos]) << 24 |
                              static_cast<std::uint32_t>(rx_buf_[pos + 1]) << 16 |
                              static_cast<std::uint32_t>(rx_buf_[pos + 2]) << 8 |
                              static_cast<std::uint32_t>(rx_buf_[pos + 3]);
    if (rx_buf_.size() - pos - 4 < len) break;
    // lint:allow(zero-copy): stream reframing — bytes leave the shared TCP rx ring exactly once
    auto frame = util::Buffer::copy_of(
        std::span<const std::uint8_t>(rx_buf_.data() + pos + 4, len));
    pos += 4 + len;
    deliver(loop_.now(), std::move(frame));
  }
  rx_buf_.erase(rx_buf_.begin(), rx_buf_.begin() + pos);
  if (sock_->eof() && up_) {
    up_ = false;
    sock_->close();
    notify_closed();
  }
}

void TcpEdge::close() {
  if (!up_) return;
  up_ = false;
  sock_->close();
  notify_closed();
}

TransportAddress TcpEdge::remote() const {
  return {TransportAddress::Proto::kTcp, sock_->remote_ip(),
          sock_->remote_port()};
}

// ---------------------------------------------------------------------------
// UdpEdge
// ---------------------------------------------------------------------------

void UdpEdge::send(util::Buffer bytes) {
  if (!up_ || transport_ == nullptr) return;
  ++tx_;
  transport_->send_to(ip_, port_, std::move(bytes));
}

void UdpEdge::send_chain(util::BufferChain chain) {
  // A closed edge (or one whose transport is being torn down) swallows
  // the send — never reach into a dead transport/socket.
  if (!up_ || transport_ == nullptr) return;
  ++tx_;
  if (transport_->corked()) {
    transport_->stage(ip_, port_, std::move(chain));
    return;
  }
  transport_->send_to(ip_, port_, std::move(chain));
}

void UdpEdge::send_batch(std::vector<util::BufferChain> chains) {
  if (!up_ || transport_ == nullptr) return;
  tx_ += chains.size();
  if (transport_->corked()) {
    for (auto& c : chains) transport_->stage(ip_, port_, std::move(c));
    return;
  }
  transport_->send_batch(ip_, port_, std::move(chains));
}

void UdpEdge::close() {
  if (!up_) return;
  up_ = false;
  if (transport_ != nullptr) {
    auto* t = transport_;
    transport_ = nullptr;
    t->remove_edge(ip_, port_);
  }
  notify_closed();
}

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

TcpTransport::~TcpTransport() {
  if (listener_ != nullptr) listener_->close();
}

TcpTransport::TcpTransport(net::Host& host, std::uint16_t port)
    : host_(host), port_(port) {
  net::TcpConfig cfg;
  cfg.nagle = true;  // match the .NET socket default of the prototype
  listener_ = host_.stack().tcp_listen(port_, cfg);
  if (listener_ != nullptr) {
    listener_->set_accept_handler([this](std::shared_ptr<net::TcpSocket> s) {
      auto edge = std::make_shared<TcpEdge>(host_.loop(), std::move(s));
      edge->attach();
      if (on_inbound_) on_inbound_(edge);
    });
  }
}

void TcpTransport::connect(net::Ipv4Address ip, std::uint16_t port,
                           ConnectCallback cb) {
  net::TcpConfig cfg;
  cfg.syn_retries = 3;  // fail reasonably fast behind firewalls
  cfg.nagle = true;     // match the .NET socket default of the prototype
  auto sock = host_.stack().tcp_connect(ip, port, cfg);
  if (sock == nullptr) {
    cb(nullptr);
    return;
  }
  // Share state between the two callbacks.  The alive sentinel guards
  // the dial window across transport teardown: a node may stop() (which
  // destroys its transports) while the simulated handshake is still in
  // flight, and the late completion must not touch the dead transport —
  // or the caller whose lambda rides in cbp.
  auto done = std::make_shared<bool>(false);
  auto cbp = std::make_shared<ConnectCallback>(std::move(cb));
  sock->on_connected = [this, alive = std::weak_ptr<bool>(alive_), sock, done,
                        cbp] {
    if (*done) return;
    *done = true;
    if (alive.expired()) {
      sock->close();
      return;
    }
    auto edge = std::make_shared<TcpEdge>(host_.loop(), sock);
    edge->attach();
    (*cbp)(edge);
  };
  sock->on_closed = [alive = std::weak_ptr<bool>(alive_), done,
                     cbp](const std::string&) {
    if (*done) return;
    *done = true;
    if (alive.expired()) return;
    (*cbp)(nullptr);
  };
}

// ---------------------------------------------------------------------------
// UdpTransport
// ---------------------------------------------------------------------------

UdpTransport::UdpTransport(net::Host& host, std::uint16_t port)
    : host_(host), port_(port) {
  sock_ = host_.stack().udp_bind(port_);
  if (sock_ != nullptr) {
    // Zero-copy receive: the datagram arrives as a sub-buffer of the
    // frame the NIC delivered — no kernel/user copy on the overlay path.
    sock_->set_receive_handler(
        [this](net::Ipv4Address src, std::uint16_t sport, util::Buffer data) {
          on_datagram(src, sport, std::move(data));
        });
  }
}

UdpTransport::~UdpTransport() {
  // Detach rather than close(): no close-handler callbacks from a
  // destructor — surviving edge handles just go down and drop sends.
  for (auto& [key, edge] : edges_) {
    edge->up_ = false;
    edge->transport_ = nullptr;
  }
  edges_.clear();
  // close() unregisters the port and detaches the handlers.
  if (sock_ != nullptr) sock_->close();
}

std::shared_ptr<Edge> UdpTransport::edge_to(net::Ipv4Address ip,
                                            std::uint16_t port) {
  auto key = std::pair{ip, port};
  auto it = edges_.find(key);
  if (it != edges_.end()) return it->second;
  auto edge = std::make_shared<UdpEdge>(this, ip, port);
  edges_[key] = edge;
  return edge;
}

void UdpTransport::on_datagram(net::Ipv4Address src, std::uint16_t sport,
                               util::Buffer buffer) {
  // The edge's receiver (and the routing layer above it) share the
  // delivered frame's buffer; nothing is copied on this host.
  auto key = std::pair{src, sport};
  auto it = edges_.find(key);
  if (it == edges_.end()) {
    auto edge = std::make_shared<UdpEdge>(this, src, sport);
    edges_[key] = edge;
    if (on_inbound_) on_inbound_(edge);
    edge->deliver(host_.loop().now(), std::move(buffer));
    return;
  }
  it->second->deliver(host_.loop().now(), std::move(buffer));
}

void UdpTransport::send_to(net::Ipv4Address ip, std::uint16_t port,
                           util::Buffer data) {
  if (sock_ != nullptr) sock_->send_to(ip, port, std::move(data));
}

void UdpTransport::send_to(net::Ipv4Address ip, std::uint16_t port,
                           util::BufferChain data) {
  if (sock_ != nullptr) sock_->send_to(ip, port, std::move(data));
}

void UdpTransport::send_batch(net::Ipv4Address ip, std::uint16_t port,
                              std::vector<util::BufferChain> chains) {
  if (sock_ == nullptr) return;
  std::vector<net::UdpSendItem> items;
  items.reserve(chains.size());
  for (auto& chain : chains) {
    items.push_back(net::UdpSendItem{ip, port, std::move(chain)});
  }
  sock_->send_batch(items);
}

void UdpTransport::stage(net::Ipv4Address ip, std::uint16_t port,
                         util::BufferChain chain) {
  staged_.push_back(net::UdpSendItem{ip, port, std::move(chain)});
}

void UdpTransport::uncork() {
  if (cork_ == 0) return;
  if (--cork_ > 0 || staged_.empty()) return;
  auto items = std::move(staged_);
  staged_.clear();
  // One socket-API crossing for the whole staged fan-out.  A socket that
  // closed (or was detached by a dying stack) while the batch was
  // pending drops it here instead of reaching into dead state.
  if (sock_ != nullptr) sock_->send_batch(items);
}

void UdpTransport::remove_edge(net::Ipv4Address ip, std::uint16_t port) {
  edges_.erase(std::pair{ip, port});
}

}  // namespace ipop::brunet
