#include "brunet/transport.hpp"

#include "util/logging.hpp"

namespace ipop::brunet {

// ---------------------------------------------------------------------------
// TransportAddress
// ---------------------------------------------------------------------------

std::string TransportAddress::to_string() const {
  return std::string(proto == Proto::kTcp ? "tcp://" : "udp://") +
         ip.to_string() + ":" + std::to_string(port);
}

void TransportAddress::encode(util::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(proto));
  w.u32(ip.value);
  w.u16(port);
}

TransportAddress TransportAddress::decode(util::ByteReader& r) {
  TransportAddress t;
  t.proto = static_cast<Proto>(r.u8());
  t.ip = net::Ipv4Address(r.u32());
  t.port = r.u16();
  return t;
}

// ---------------------------------------------------------------------------
// TcpEdge
// ---------------------------------------------------------------------------

TcpEdge::TcpEdge(sim::EventLoop& loop, std::shared_ptr<net::TcpSocket> sock)
    : loop_(loop), sock_(std::move(sock)) {}

void TcpEdge::attach() {
  auto self = shared_from_this();
  sock_->on_readable = [self] { self->pump(); };
  sock_->on_closed = [self](const std::string&) {
    self->up_ = false;
    self->notify_closed();
  };
  sock_->on_writable = [self] {
    // Flush any backlog that did not fit the socket buffer.
    if (!self->tx_backlog_.empty()) {
      const std::size_t n = self->sock_->send(self->tx_backlog_);
      self->tx_backlog_.erase(self->tx_backlog_.begin(),
                              self->tx_backlog_.begin() + n);
    }
  };
}

void TcpEdge::send(util::Buffer bytes) {
  if (!up_) return;
  ++tx_;
  // Length-framing onto the stream necessarily serializes the packet; the
  // zero-copy fast path is the UDP transport (the paper's WAN winner).
  util::ByteWriter w(4 + bytes.size());
  w.u32(static_cast<std::uint32_t>(bytes.size()));
  w.bytes(bytes.as_span());
  auto framed = w.take();
  if (!tx_backlog_.empty()) {
    tx_backlog_.insert(tx_backlog_.end(), framed.begin(), framed.end());
    return;
  }
  const std::size_t n = sock_->send(framed);
  if (n < framed.size()) {
    tx_backlog_.assign(framed.begin() + n, framed.end());
  }
}

void TcpEdge::pump() {
  while (true) {
    auto chunk = sock_->receive(64 * 1024);
    if (chunk.empty()) break;
    rx_buf_.insert(rx_buf_.end(), chunk.begin(), chunk.end());
  }
  // Extract complete frames.
  std::size_t pos = 0;
  while (rx_buf_.size() - pos >= 4) {
    const std::uint32_t len = static_cast<std::uint32_t>(rx_buf_[pos]) << 24 |
                              static_cast<std::uint32_t>(rx_buf_[pos + 1]) << 16 |
                              static_cast<std::uint32_t>(rx_buf_[pos + 2]) << 8 |
                              static_cast<std::uint32_t>(rx_buf_[pos + 3]);
    if (rx_buf_.size() - pos - 4 < len) break;
    auto frame = util::Buffer::copy_of(
        std::span<const std::uint8_t>(rx_buf_.data() + pos + 4, len));
    pos += 4 + len;
    deliver(loop_.now(), std::move(frame));
  }
  rx_buf_.erase(rx_buf_.begin(), rx_buf_.begin() + pos);
  if (sock_->eof() && up_) {
    up_ = false;
    sock_->close();
    notify_closed();
  }
}

void TcpEdge::close() {
  if (!up_) return;
  up_ = false;
  sock_->close();
  notify_closed();
}

TransportAddress TcpEdge::remote() const {
  return {TransportAddress::Proto::kTcp, sock_->remote_ip(),
          sock_->remote_port()};
}

// ---------------------------------------------------------------------------
// UdpEdge
// ---------------------------------------------------------------------------

void UdpEdge::send(util::Buffer bytes) {
  if (!up_ || transport_ == nullptr) return;
  ++tx_;
  transport_->send_to(ip_, port_, std::move(bytes));
}

void UdpEdge::close() {
  if (!up_) return;
  up_ = false;
  if (transport_ != nullptr) {
    auto* t = transport_;
    transport_ = nullptr;
    t->remove_edge(ip_, port_);
  }
  notify_closed();
}

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

TcpTransport::TcpTransport(net::Host& host, std::uint16_t port)
    : host_(host), port_(port) {
  net::TcpConfig cfg;
  cfg.nagle = true;  // match the .NET socket default of the prototype
  listener_ = host_.stack().tcp_listen(port_, cfg);
  if (listener_ != nullptr) {
    listener_->set_accept_handler([this](std::shared_ptr<net::TcpSocket> s) {
      auto edge = std::make_shared<TcpEdge>(host_.loop(), std::move(s));
      edge->attach();
      if (on_inbound_) on_inbound_(edge);
    });
  }
}

void TcpTransport::connect(net::Ipv4Address ip, std::uint16_t port,
                           ConnectCallback cb) {
  net::TcpConfig cfg;
  cfg.syn_retries = 3;  // fail reasonably fast behind firewalls
  cfg.nagle = true;     // match the .NET socket default of the prototype
  auto sock = host_.stack().tcp_connect(ip, port, cfg);
  if (sock == nullptr) {
    cb(nullptr);
    return;
  }
  // Share state between the two callbacks.
  auto done = std::make_shared<bool>(false);
  auto cbp = std::make_shared<ConnectCallback>(std::move(cb));
  sock->on_connected = [this, sock, done, cbp] {
    if (*done) return;
    *done = true;
    auto edge = std::make_shared<TcpEdge>(host_.loop(), sock);
    edge->attach();
    (*cbp)(edge);
  };
  sock->on_closed = [done, cbp](const std::string&) {
    if (*done) return;
    *done = true;
    (*cbp)(nullptr);
  };
}

// ---------------------------------------------------------------------------
// UdpTransport
// ---------------------------------------------------------------------------

UdpTransport::UdpTransport(net::Host& host, std::uint16_t port)
    : host_(host), port_(port) {
  sock_ = host_.stack().udp_bind(port_);
  if (sock_ != nullptr) {
    // Zero-copy receive: the datagram arrives as a sub-buffer of the
    // frame the NIC delivered — no kernel/user copy on the overlay path.
    sock_->set_receive_handler(
        [this](net::Ipv4Address src, std::uint16_t sport, util::Buffer data) {
          on_datagram(src, sport, std::move(data));
        });
  }
}

std::shared_ptr<Edge> UdpTransport::edge_to(net::Ipv4Address ip,
                                            std::uint16_t port) {
  auto key = std::pair{ip, port};
  auto it = edges_.find(key);
  if (it != edges_.end()) return it->second;
  auto edge = std::make_shared<UdpEdge>(this, ip, port);
  edges_[key] = edge;
  return edge;
}

void UdpTransport::on_datagram(net::Ipv4Address src, std::uint16_t sport,
                               util::Buffer buffer) {
  // The edge's receiver (and the routing layer above it) share the
  // delivered frame's buffer; nothing is copied on this host.
  auto key = std::pair{src, sport};
  auto it = edges_.find(key);
  if (it == edges_.end()) {
    auto edge = std::make_shared<UdpEdge>(this, src, sport);
    edges_[key] = edge;
    if (on_inbound_) on_inbound_(edge);
    edge->deliver(host_.loop().now(), std::move(buffer));
    return;
  }
  it->second->deliver(host_.loop().now(), std::move(buffer));
}

void UdpTransport::send_to(net::Ipv4Address ip, std::uint16_t port,
                           util::Buffer data) {
  if (sock_ != nullptr) sock_->send_to(ip, port, std::move(data));
}

void UdpTransport::remove_edge(net::Ipv4Address ip, std::uint16_t port) {
  edges_.erase(std::pair{ip, port});
}

}  // namespace ipop::brunet
