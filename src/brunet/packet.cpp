#include "brunet/packet.hpp"

#include <algorithm>

namespace ipop::brunet {

const char* packet_type_name(PacketType t) {
  switch (t) {
    case PacketType::kLinkRequest: return "LinkRequest";
    case PacketType::kLinkResponse: return "LinkResponse";
    case PacketType::kEdgePing: return "EdgePing";
    case PacketType::kEdgePong: return "EdgePong";
    case PacketType::kDeparting: return "Departing";
    case PacketType::kRelayForward: return "RelayForward";
    case PacketType::kRelayDeliver: return "RelayDeliver";
    case PacketType::kEdgeClose: return "EdgeClose";
    case PacketType::kConnectRequest: return "ConnectRequest";
    case PacketType::kConnectResponse: return "ConnectResponse";
    case PacketType::kNeighborQuery: return "NeighborQuery";
    case PacketType::kNeighborReply: return "NeighborReply";
    case PacketType::kPunchRequest: return "PunchRequest";
    case PacketType::kPunchResponse: return "PunchResponse";
    case PacketType::kPing: return "Ping";
    case PacketType::kPingResponse: return "PingResponse";
    case PacketType::kIpTunnel: return "IpTunnel";
    case PacketType::kDhtRequest: return "DhtRequest";
    case PacketType::kDhtResponse: return "DhtResponse";
    case PacketType::kAppData: return "AppData";
  }
  return "?";
}

util::BufferView Packet::payload() const {
  if (!wire_) return buf_.view();
  return buf_.view(kHeaderSize, buf_.size() - kHeaderSize);
}

util::Buffer Packet::share_payload() const {
  if (!wire_) return buf_.share();
  return buf_.share(kHeaderSize, buf_.size() - kHeaderSize);
}

void Packet::set_payload(std::vector<std::uint8_t> bytes) {
  set_payload(util::Buffer::wrap(std::move(bytes)));
}

void Packet::set_payload(util::Buffer bytes) {
  buf_ = std::move(bytes);
  wire_ = false;
}

void Packet::write_header(std::uint8_t* h) const {
  h[0] = static_cast<std::uint8_t>(type);
  h[1] = static_cast<std::uint8_t>(mode);
  h[2] = ttl;
  h[3] = hops;
  h[4] = static_cast<std::uint8_t>(msg_id >> 24);
  h[5] = static_cast<std::uint8_t>(msg_id >> 16);
  h[6] = static_cast<std::uint8_t>(msg_id >> 8);
  h[7] = static_cast<std::uint8_t>(msg_id);
  std::copy(src.bytes().begin(), src.bytes().end(), h + 8);
  std::copy(dst.bytes().begin(), dst.bytes().end(), h + 8 + Address::kBytes);
}

void Packet::finalize(std::size_t headroom) {
  if (wire_) {
    // Transit only mutates ttl/hops: sync them with two in-place patches.
    buf_.patch_u8(kTtlOffset, ttl);
    buf_.patch_u8(kHopsOffset, hops);
    return;
  }
  // Prepend the header into the payload buffer's headroom (zero-copy when
  // the storage is uniquely owned, one reallocation otherwise — with the
  // caller's per-path headroom budget in front).
  auto h = buf_.grow_front(kHeaderSize, headroom);
  write_header(h.data());
  wire_ = true;
}

util::BufferChain Packet::wire_chain(util::Buffer shared_payload,
                                     std::size_t headroom) const {
  auto hdr = util::Buffer::allocate(kHeaderSize, headroom);
  write_header(hdr.data());
  util::BufferChain chain;
  chain.append(std::move(hdr));
  chain.append(std::move(shared_payload));
  return chain;
}

util::Buffer Packet::to_wire(std::size_t headroom) {
  finalize(headroom);
  return buf_;
}

util::Buffer Packet::take_wire(std::size_t headroom) {
  finalize(headroom);
  wire_ = false;
  return std::move(buf_);
}

Packet Packet::decode(util::Buffer wire) {
  util::ByteReader r(wire.view());
  Packet p;
  p.type = static_cast<PacketType>(r.u8());
  p.mode = static_cast<RoutingMode>(r.u8());
  p.ttl = r.u8();
  p.hops = r.u8();
  p.msg_id = r.u32();
  Address::Bytes src{}, dst{};
  auto s = r.bytes(Address::kBytes);
  std::copy(s.begin(), s.end(), src.begin());
  auto d = r.bytes(Address::kBytes);
  std::copy(d.begin(), d.end(), dst.begin());
  p.src = Address(src);
  p.dst = Address(dst);
  p.buf_ = std::move(wire);
  // Ownership rule (util/buffer.hpp): a packet adopted from a transport
  // is exclusively ours even while the transport briefly holds a second
  // handle, so in-place TTL/hop patches on the forward path are
  // sanctioned against the debug patch-ownership assertion.
  p.buf_.assume_exclusive();
  p.wire_ = true;
  return p;
}

Packet Packet::decode(std::span<const std::uint8_t> bytes) {
  // lint:allow(zero-copy): span-entry API edge — foreign bytes must be adopted into owned storage once
  return decode(util::Buffer::copy_of(bytes));
}

}  // namespace ipop::brunet
