#include "brunet/packet.hpp"

namespace ipop::brunet {

const char* packet_type_name(PacketType t) {
  switch (t) {
    case PacketType::kLinkRequest: return "LinkRequest";
    case PacketType::kLinkResponse: return "LinkResponse";
    case PacketType::kEdgePing: return "EdgePing";
    case PacketType::kEdgePong: return "EdgePong";
    case PacketType::kConnectRequest: return "ConnectRequest";
    case PacketType::kConnectResponse: return "ConnectResponse";
    case PacketType::kNeighborQuery: return "NeighborQuery";
    case PacketType::kNeighborReply: return "NeighborReply";
    case PacketType::kPing: return "Ping";
    case PacketType::kPingResponse: return "PingResponse";
    case PacketType::kIpTunnel: return "IpTunnel";
    case PacketType::kDhtRequest: return "DhtRequest";
    case PacketType::kDhtResponse: return "DhtResponse";
    case PacketType::kAppData: return "AppData";
  }
  return "?";
}

std::vector<std::uint8_t> Packet::encode() const {
  util::ByteWriter w(kHeaderSize + payload.size());
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(static_cast<std::uint8_t>(mode));
  w.u8(ttl);
  w.u8(hops);
  w.u32(msg_id);
  w.bytes(std::span<const std::uint8_t>(src.bytes().data(), Address::kBytes));
  w.bytes(std::span<const std::uint8_t>(dst.bytes().data(), Address::kBytes));
  w.bytes(payload);
  return w.take();
}

Packet Packet::decode(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  Packet p;
  p.type = static_cast<PacketType>(r.u8());
  p.mode = static_cast<RoutingMode>(r.u8());
  p.ttl = r.u8();
  p.hops = r.u8();
  p.msg_id = r.u32();
  Address::Bytes src{}, dst{};
  auto s = r.bytes(Address::kBytes);
  std::copy(s.begin(), s.end(), src.begin());
  auto d = r.bytes(Address::kBytes);
  std::copy(d.begin(), d.end(), dst.begin());
  p.src = Address(src);
  p.dst = Address(dst);
  p.payload = r.rest_copy();
  return p;
}

}  // namespace ipop::brunet
