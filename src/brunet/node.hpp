// BrunetNode: a structured-overlay node (the paper's P2P routing substrate).
//
// Responsibilities:
//  * greedy ring routing (forward to the connection closest to the packet
//    destination; deliver locally when this node is closest),
//  * self-configuring ring maintenance: bootstrap from seed endpoints,
//    locate the ring position with routed ConnectRequests, stabilize near
//    neighbors by gossiping neighbor lists, grow Kleinberg-style shortcut
//    connections,
//  * the linker: decentralized connection establishment with NAT
//    traversal — both endpoints dial each other's known endpoints
//    simultaneously (with retries), so one probe always looks like the
//    response to the other's outbound packet (paper Section III-D),
//  * translated-address discovery: every link handshake and keepalive
//    tells the peer which endpoint it is seen as, replacing STUN with a
//    fully decentralized mechanism,
//  * edge keepalives and failure detection driving ring self-repair.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "brunet/connection_table.hpp"
#include "brunet/packet.hpp"
#include "brunet/transport.hpp"
#include "net/host.hpp"

namespace ipop::brunet {

struct NodeConfig {
  TransportAddress::Proto transport = TransportAddress::Proto::kUdp;
  std::uint16_t port = 17001;
  /// Near (ring-neighbor) connections maintained on each side.
  std::size_t near_per_side = 2;
  /// Target number of far/shortcut connections.
  std::size_t shortcut_target = 2;
  Duration maintenance_interval = util::milliseconds(500);
  Duration edge_idle_ping = util::seconds(5);
  Duration edge_timeout = util::seconds(15);
  Duration request_timeout = util::seconds(3);
  Duration link_retry = util::milliseconds(400);
  int link_attempts = 6;
  std::uint8_t default_ttl = 32;
  /// CPU cost charged per received packet (routing is user-level work;
  /// IPOP raises this to its measured per-packet processing cost).
  Duration cpu_per_packet = util::microseconds(20);
};

struct NodeStats {
  std::uint64_t originated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_exact = 0;
  std::uint64_t edges_opened = 0;
  std::uint64_t edges_closed = 0;
  /// Seeds dialed through the secondary (non-configured) transport
  /// because their protocol did not match cfg_.transport.
  std::uint64_t bootstrap_cross_proto = 0;
  /// kDeparting notices received from gracefully leaving peers.
  std::uint64_t departures_seen = 0;
  /// Connections evicted by keepalive-miss failure detection (edge
  /// timeout / dead edge), as opposed to graceful departures.
  std::uint64_t keepalive_evictions = 0;
  /// Link-path diagnostics: connect requests delivered to us, link
  /// attempts started / abandoned, locate probes answered.
  std::uint64_t connect_requests = 0;
  std::uint64_t links_started = 0;
  std::uint64_t links_failed = 0;
  std::uint64_t locate_responses = 0;
};

/// Identity + dialable endpoints of a node, gossiped in the maintenance
/// protocol so peers can run the linker toward it.
struct NodeInfo {
  Address addr;
  std::vector<TransportAddress> addrs;

  void encode(util::ByteWriter& w) const;
  static NodeInfo decode(util::ByteReader& r);
};

/// Encode a NodeInfo list behind its u8 count prefix, clamping to the 255
/// entries the count byte can express (a >255-neighbor reply would
/// otherwise silently truncate the count and desynchronize the decoder).
/// Returns the number of infos actually encoded.
std::size_t encode_node_infos(util::ByteWriter& w,
                              std::span<const NodeInfo> infos);

class BrunetNode {
 public:
  using PacketHandler = std::function<void(const Packet&)>;
  using ResponseCallback = std::function<void(std::optional<Packet>)>;

  BrunetNode(net::Host& host, Address addr, NodeConfig cfg = {});
  ~BrunetNode();

  BrunetNode(const BrunetNode&) = delete;
  BrunetNode& operator=(const BrunetNode&) = delete;

  /// Bootstrap endpoint (any existing overlay member).
  void add_seed(TransportAddress ta);
  void start();
  /// Leave the overlay: close every edge and stop timers.  An abrupt stop
  /// — peers only find out via keepalive misses (models a crash).
  void stop();
  /// Graceful departure: announce kDeparting to every connection (handing
  /// each side our neighbor list so the ring re-links around the gap
  /// immediately), run the registered departure hooks (the DHT hands off
  /// its records here), then stop().
  void leave();
  bool started() const { return started_; }
  /// Time since start(); resets on restart.  Young nodes have immature
  /// routing state (see Dht's owner-age gate on create).
  util::Duration uptime() const { return host_.loop().now() - started_at_; }
  /// True once this node is attached to the overlay: it has at least one
  /// connection, or it *is* the overlay origin (no seeds configured).
  /// Consumers that must not act on a still-isolated view of the ring —
  /// the DHCP lease prober above all — poll this before trusting
  /// kClosest routing.
  bool joined() const { return seeds_.empty() || table_.size() > 0; }

  // --- churn observers ----------------------------------------------------
  using ConnectionLostHandler = std::function<void(const Address&)>;
  /// Called whenever a connection leaves the table for good — keepalive
  /// eviction, edge close, or a peer's graceful kDeparting notice.  The
  /// DHT uses this to re-replicate records that lost a replica holder;
  /// Brunet-ARP uses it to invalidate bindings owned by the dead peer.
  void add_connection_lost_observer(ConnectionLostHandler h);
  /// Called from leave() after the departure notices go out but while the
  /// node can still route — subsystems hand off state here.
  void add_departure_hook(std::function<void()> hook);

  // --- messaging ---------------------------------------------------------
  /// Buffer overload: the zero-copy path.  A payload with kHeaderSize
  /// bytes of headroom (e.g. a captured tap frame) is encapsulated in
  /// place; otherwise it is copied exactly once into the wire image.
  void send(Address dst, PacketType type, RoutingMode mode,
            util::Buffer payload, std::uint32_t msg_id = 0);
  void send(Address dst, PacketType type, RoutingMode mode,
            std::vector<std::uint8_t> payload, std::uint32_t msg_id = 0);
  /// Fan-out send: one routed packet per destination, every packet
  /// sharing `payload`'s storage (each destination's 48-byte header is
  /// written into its own small segment with headroom for the transport
  /// prepends).  Destinations routing over the same edge leave in one
  /// batched transport send — UDP crosses the socket sendmmsg-style,
  /// TCP as one gathered stream write.  Returns packets sent or
  /// delivered locally (routing drops are excluded and counted in
  /// NodeStats as usual).
  std::size_t send_batch(std::span<const Address> dsts, PacketType type,
                         RoutingMode mode, util::Buffer payload);
  /// Register the handler for an application packet type (kIpTunnel,
  /// kDhtRequest, kAppData); maintenance types are handled internally.
  void set_handler(PacketType type, PacketHandler handler);
  /// Request/response: fresh msg_id, response matched by id; cb receives
  /// nullopt on timeout.
  void request(Address dst, PacketType type, RoutingMode mode,
               std::vector<std::uint8_t> payload, ResponseCallback cb);
  /// Reply to a received request, echoing its msg_id.
  void respond(const Packet& req, PacketType type, util::Buffer payload);
  void respond(const Packet& req, PacketType type,
               std::vector<std::uint8_t> payload);

  // --- linker ------------------------------------------------------------
  /// Establish a direct connection to `target`, dialing all candidates
  /// (simultaneous-open NAT traversal).  Idempotent while in progress.
  void connect_to(const Address& target,
                  const std::vector<TransportAddress>& candidates,
                  ConnectionType type);
  /// Ask a known overlay address (whose endpoints we do not know) to link
  /// with us: a ConnectRequest is routed to it; the target dials back and
  /// its response gives us its endpoints.  Used by IPOP's traffic-driven
  /// shortcuts (paper Section V.1).
  void request_connection(const Address& target, ConnectionType type);

  // --- introspection ------------------------------------------------------
  const Address& address() const { return addr_; }
  ConnectionTable& table() { return table_; }
  const ConnectionTable& table() const { return table_; }
  net::Host& host() { return host_; }
  NodeConfig& config() { return cfg_; }
  const NodeStats& stats() const { return stats_; }
  std::uint64_t maintenance_ticks() const { return maintenance_ticks_; }
  /// Local + NAT-observed endpoints, advertised during handshakes.
  std::vector<TransportAddress> local_addresses() const;
  std::optional<Address> left_neighbor() const;
  std::optional<Address> right_neighbor() const;

 private:
  struct PendingRequest {
    ResponseCallback cb;
    std::uint64_t timer = 0;
  };
  struct LinkAttempt {
    std::vector<TransportAddress> candidates;
    ConnectionType type = ConnectionType::kStructuredNear;
    int attempts_left = 0;
    std::uint64_t timer = 0;
  };

  // Edge plumbing.
  void adopt_edge(const std::shared_ptr<Edge>& edge);
  void on_edge_packet(const std::shared_ptr<Edge>& edge, util::Buffer bytes);
  void process_packet(const std::shared_ptr<Edge>& edge, Packet pkt);
  void on_edge_closed(Edge* edge);

  // Routing.
  struct NextHop {
    const Connection* best = nullptr;
    /// best exists and is strictly closer to the destination than we
    /// are (the greedy-forwarding condition).
    bool have_closer = false;
  };
  /// Greedy next-hop selection shared by route() and send_batch();
  /// `src` is excluded so a packet never routes back toward its origin.
  NextHop pick_next_hop(const Address& dst, const Address& src) const;
  void route(Packet pkt, bool from_transit);
  void deliver(const Packet& pkt);

  // Link handshake.
  void send_link_request(const std::shared_ptr<Edge>& edge,
                         ConnectionType type);
  void handle_link_request(const std::shared_ptr<Edge>& edge,
                           const Packet& pkt);
  void handle_link_response(const std::shared_ptr<Edge>& edge,
                            const Packet& pkt);
  void handle_edge_ping(const std::shared_ptr<Edge>& edge, const Packet& pkt);
  void handle_edge_pong(const std::shared_ptr<Edge>& edge, const Packet& pkt);
  void handle_departing(const std::shared_ptr<Edge>& edge, const Packet& pkt);
  /// Drop a connection and tell the churn observers about it.
  void evict_connection(const Address& addr);
  void notify_connection_lost(const Address& addr);

  // Ring maintenance.
  void maintenance_tick();
  void bootstrap();
  void locate_ring_position();
  void send_locate_probe(const std::shared_ptr<Edge>& via);
  void probe_via_seed();
  void stabilize();
  void reclassify_connections();
  void maintain_shortcuts();
  void trim_connections();
  void keepalive();
  void handle_connect_request(const Packet& pkt);
  void handle_neighbor_query(const Packet& pkt);
  void consider_candidates(const std::vector<NodeInfo>& infos);
  bool should_be_near(const Address& candidate) const;
  void link_retry_tick(Address target);

  std::vector<NodeInfo> neighbor_infos(std::size_t k) const;
  /// Remember a translated endpoint peers observe for us; on new
  /// discovery, push a refreshed identity to every connection.
  void record_observed(const TransportAddress& ta);
  void broadcast_identity();
  std::uint32_t next_msg_id() { return msg_id_counter_++; }

  net::Host& host_;
  Address addr_;
  NodeConfig cfg_;
  ConnectionTable table_;
  NodeStats stats_;
  bool started_ = false;
  util::TimePoint started_at_{};

  std::unique_ptr<TcpTransport> tcp_;
  std::unique_ptr<UdpTransport> udp_;
  std::vector<TransportAddress> seeds_;
  std::set<TransportAddress> observed_;
  std::vector<ConnectionLostHandler> conn_lost_observers_;
  std::vector<std::function<void()>> departure_hooks_;

  // Registry of every adopted edge (handshaken or not).  Ownership here
  // guarantees the receive-handler lookup succeeds even for duplicate
  // edges that lost the connection-table race on one side only.
  // Deliberately an ordered map: keepalive and stop() iterate it, and
  // pointer *comparison* order is stable under an ASLR base shift while
  // pointer *hash* order is not — an unordered_map here would make edge
  // close order (and thus the whole event schedule) vary across runs.
  std::map<Edge*, std::shared_ptr<Edge>> edges_;
  std::map<PacketType, PacketHandler> handlers_;
  // Only iterated in stop() to cancel timers (order-insensitive): O(1)
  // lookup wins on the response-correlation and link-attempt paths.
  std::unordered_map<Address, LinkAttempt> linking_;
  std::unordered_map<std::uint32_t, PendingRequest> pending_requests_;
  std::uint32_t msg_id_counter_ = 1;
  std::uint64_t maintenance_timer_ = 0;
  std::uint64_t maintenance_ticks_ = 0;
};

}  // namespace ipop::brunet
