// BrunetNode: a structured-overlay node (the paper's P2P routing substrate).
//
// Responsibilities:
//  * greedy ring routing (forward to the connection closest to the packet
//    destination; deliver locally when this node is closest),
//  * self-configuring ring maintenance: bootstrap from seed endpoints,
//    locate the ring position with routed ConnectRequests, stabilize near
//    neighbors by gossiping neighbor lists, grow Kleinberg-style shortcut
//    connections,
//  * the linker: decentralized connection establishment with NAT
//    traversal — both endpoints dial each other's known endpoints
//    simultaneously (with retries), so one probe always looks like the
//    response to the other's outbound packet (paper Section III-D),
//  * translated-address discovery: every link handshake and keepalive
//    tells the peer which endpoint it is seen as, replacing STUN with a
//    fully decentralized mechanism,
//  * edge keepalives and failure detection driving ring self-repair.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "brunet/connection_table.hpp"
#include "brunet/packet.hpp"
#include "brunet/transport.hpp"
#include "net/host.hpp"
#include "util/crypto.hpp"
#include "util/lifetime.hpp"

namespace ipop::brunet {

class RelayEdge;

/// Cryptographic node identity: an Ed25519 keypair plus the overlay
/// address derived from its public key (SHA-1 of the key, keeping the
/// paper's 160-bit ring width).  A node addressed this way *owns* its
/// ring position: DHT records, leases, ARP bindings and departure
/// notices it signs are verifiable against the address itself, so
/// nobody can squat another node's identity (netsukuku's ANDNA
/// first-come-first-served ownership model).
struct NodeIdentity {
  util::crypto::KeyPair keys;

  /// Keys drawn from the seeded sim generator (the only sanctioned
  /// entropy source for in-sim key generation).
  static NodeIdentity generate(util::Rng& rng) {
    return NodeIdentity{util::crypto::KeyPair::generate(rng)};
  }
  static NodeIdentity from_seed(std::span<const std::uint8_t> seed) {
    return NodeIdentity{util::crypto::KeyPair::from_seed(seed)};
  }

  Address address() const {
    return Address::from_public_key(keys.public_key());
  }
  bool valid() const { return keys.valid(); }
};

/// Self-classified NAT behavior, inferred from the translated addresses
/// peers report back during handshakes and keepalives (the decentralized
/// STUN of paper Section III-D).  Coarse on purpose: one stable external
/// mapping per protocol reads as cone, distinct external ports toward
/// different peers read as symmetric, and an untranslated observation
/// means no NAT at all.  Restricted vs. port-restricted filtering cannot
/// be told apart without cooperative probe servers, and the linker does
/// not need to: those cases resolve through punch retries or the relay
/// fallback.
enum class NatClass : std::uint8_t {
  kUnknown = 0,
  kOpen = 1,
  kCone = 2,
  kSymmetric = 3,
};

const char* nat_class_name(NatClass c);

struct NodeConfig {
  TransportAddress::Proto transport = TransportAddress::Proto::kUdp;
  std::uint16_t port = 17001;
  /// Near (ring-neighbor) connections maintained on each side.
  std::size_t near_per_side = 2;
  /// Target number of far/shortcut connections.
  std::size_t shortcut_target = 2;
  Duration maintenance_interval = util::milliseconds(500);
  Duration edge_idle_ping = util::seconds(5);
  Duration edge_timeout = util::seconds(15);
  Duration request_timeout = util::seconds(3);
  Duration link_retry = util::milliseconds(400);
  int link_attempts = 6;
  std::uint8_t default_ttl = 32;
  /// CPU cost charged per received packet (routing is user-level work;
  /// IPOP raises this to its measured per-packet processing cost).
  Duration cpu_per_packet = util::microseconds(20);
  /// Reject kDeparting notices that carry no signature.  Off by default
  /// (plain BrunetNode rings have no identities); IPOP turns it on when
  /// the overlay runs key-derived addresses, closing the forged-eviction
  /// hole the hostile soak probes.
  bool require_signed_departures = false;
};

struct NodeStats {
  std::uint64_t originated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_exact = 0;
  std::uint64_t edges_opened = 0;
  std::uint64_t edges_closed = 0;
  /// Seeds dialed through the secondary (non-configured) transport
  /// because their protocol did not match cfg_.transport.
  std::uint64_t bootstrap_cross_proto = 0;
  /// kDeparting notices received from gracefully leaving peers.
  std::uint64_t departures_seen = 0;
  /// Connections evicted by keepalive-miss failure detection (edge
  /// timeout / dead edge), as opposed to graceful departures.
  std::uint64_t keepalive_evictions = 0;
  /// Link-path diagnostics: connect requests delivered to us, link
  /// attempts started / abandoned, locate probes answered.
  std::uint64_t connect_requests = 0;
  std::uint64_t links_started = 0;
  std::uint64_t links_failed = 0;
  std::uint64_t locate_responses = 0;
  // NAT traversal (hole punching + relay fallback).
  /// Punch requests we routed to link targets / received from peers /
  /// answers that made it back to us.
  std::uint64_t punch_requests_sent = 0;
  std::uint64_t punch_requests = 0;
  std::uint64_t punch_responses = 0;
  /// Connections that needed punch assistance (established after the
  /// first dial round while a punch exchange was in flight).
  std::uint64_t links_punched = 0;
  /// Connections established over a relay tunnel.
  std::uint64_t links_relayed = 0;
  /// Link attempts whose candidates all carried the peer's (non-native)
  /// protocol, dialed through the lazily created secondary transport.
  std::uint64_t links_cross_proto = 0;
  /// Relay tunnel endpoints materialized at this node (either side).
  std::uint64_t relay_edges = 0;
  /// Wrapped frames forwarded while acting as the relay, and forwards
  /// dropped for want of a direct edge to the tunnel target.
  std::uint64_t relay_forwarded = 0;
  std::uint64_t relay_drop_no_route = 0;
  /// Bytes copied wrapping outbound tunnel frames: stays 0 while the
  /// per-path headroom budget (buffer-ownership rule 6) holds.
  std::uint64_t relay_wrap_bytes_copied = 0;
  /// Relay tunnels whose carrier died and were swapped onto the
  /// pre-armed backup via instead of re-running the linker.
  std::uint64_t relay_failovers = 0;
  /// kDeparting notices dropped because their signature was invalid,
  /// claimed an address the signing key does not own, or was missing
  /// while the config demands signed departures.
  std::uint64_t departures_rejected = 0;
};

/// Identity + dialable endpoints of a node, gossiped in the maintenance
/// protocol so peers can run the linker toward it.
struct NodeInfo {
  Address addr;
  std::vector<TransportAddress> addrs;

  void encode(util::ByteWriter& w) const;
  static NodeInfo decode(util::ByteReader& r);
};

/// Encode a NodeInfo list behind its u8 count prefix, clamping to the 255
/// entries the count byte can express (a >255-neighbor reply would
/// otherwise silently truncate the count and desynchronize the decoder).
/// Returns the number of infos actually encoded.
std::size_t encode_node_infos(util::ByteWriter& w,
                              std::span<const NodeInfo> infos);

/// Routing target of one originated payload: a single address or a
/// fan-out list, each with a routing mode.  Fan-out spans reference the
/// caller's storage; send() consumes them synchronously.
class Destination {
 public:
  static Destination unicast(const Address& a,
                             RoutingMode m = RoutingMode::kExact) {
    Destination d;
    d.single_ = a;
    d.mode_ = m;
    return d;
  }
  static Destination closest(const Address& a) {
    return unicast(a, RoutingMode::kClosest);
  }
  static Destination fanout(std::span<const Address> as,
                            RoutingMode m = RoutingMode::kExact) {
    Destination d;
    d.many_ = as;
    d.is_fanout_ = true;
    d.mode_ = m;
    return d;
  }

  RoutingMode mode() const { return mode_; }
  bool is_fanout() const { return is_fanout_; }
  const Address& addr() const { return single_; }
  std::span<const Address> addrs() const { return many_; }

 private:
  Destination() = default;
  Address single_{};
  std::span<const Address> many_{};
  RoutingMode mode_ = RoutingMode::kExact;
  bool is_fanout_ = false;
};

/// One originated routed payload: owns the bytes and states the headroom
/// intent.  Every application packet leaves through
/// send(Destination, OutboundFrame&&) — the single choke point the
/// security layer wraps (IPOP seals tunnel payloads and the DHT signs
/// records *before* constructing the frame, so nothing routed can bypass
/// them).
struct OutboundFrame {
  PacketType type = PacketType::kAppData;
  util::Buffer payload;
  std::uint32_t msg_id = 0;
  /// kTake consumes the payload's own front slack for in-place
  /// encapsulation (the zero-copy unicast path); kShare leaves the
  /// storage untouched and writes headers into per-destination side
  /// segments.  Fan-out destinations always share.
  enum class Headroom : std::uint8_t { kTake, kShare };
  Headroom headroom = Headroom::kTake;

  OutboundFrame(PacketType t, util::Buffer b, std::uint32_t id = 0)
      : type(t), payload(std::move(b)), msg_id(id) {}
  OutboundFrame(PacketType t, std::vector<std::uint8_t> b,
                std::uint32_t id = 0)
      : type(t), payload(util::Buffer::wrap(std::move(b))), msg_id(id) {}
};

class BrunetNode {
 public:
  using PacketHandler = std::function<void(const Packet&)>;
  using ResponseCallback = std::function<void(std::optional<Packet>)>;

  BrunetNode(net::Host& host, Address addr, NodeConfig cfg = {});
  /// Key-addressed node: the overlay address is derived from the
  /// identity's public key, so this node can sign for its ring position.
  BrunetNode(net::Host& host, const NodeIdentity& identity,
             NodeConfig cfg = {});
  ~BrunetNode();

  BrunetNode(const BrunetNode&) = delete;
  BrunetNode& operator=(const BrunetNode&) = delete;

  /// Bootstrap endpoint (any existing overlay member).
  void add_seed(TransportAddress ta);
  void start();
  /// Leave the overlay: close every edge and stop timers.  An abrupt stop
  /// — peers only find out via keepalive misses (models a crash).
  void stop();
  /// Graceful departure: announce kDeparting to every connection (handing
  /// each side our neighbor list so the ring re-links around the gap
  /// immediately), run the registered departure hooks (the DHT hands off
  /// its records here), then stop().
  void leave();
  bool started() const { return started_; }
  /// Time since start(); resets on restart.  Young nodes have immature
  /// routing state (see Dht's owner-age gate on create).
  util::Duration uptime() const { return host_.loop().now() - started_at_; }
  /// True once this node is attached to the overlay: it has at least one
  /// connection, or it *is* the overlay origin (no seeds configured).
  /// Consumers that must not act on a still-isolated view of the ring —
  /// the DHCP lease prober above all — poll this before trusting
  /// kClosest routing.
  bool joined() const { return seeds_.empty() || table_.size() > 0; }

  // --- churn observers ----------------------------------------------------
  using ConnectionLostHandler = std::function<void(const Address&)>;
  /// Called whenever a connection leaves the table for good — keepalive
  /// eviction, edge close, or a peer's graceful kDeparting notice.  The
  /// DHT uses this to re-replicate records that lost a replica holder;
  /// Brunet-ARP uses it to invalidate bindings owned by the dead peer.
  void add_connection_lost_observer(ConnectionLostHandler h);
  /// Called from leave() after the departure notices go out but while the
  /// node can still route — subsystems hand off state here.
  void add_departure_hook(std::function<void()> hook);

  // --- messaging ---------------------------------------------------------
  /// THE outbound entry point: every originated routed packet goes
  /// through here (request/respond are conveniences over it).
  ///
  /// Unicast with Headroom::kTake is the zero-copy path: a payload with
  /// kHeaderSize bytes of front slack (e.g. a captured tap frame) is
  /// encapsulated in place; otherwise it is copied exactly once into the
  /// wire image.  A fan-out destination sends one routed packet per
  /// address, every packet sharing the payload's storage (headers live
  /// in per-destination side segments with headroom for the transport
  /// prepends); destinations routing over the same edge leave in one
  /// batched transport send — UDP crosses the socket sendmmsg-style,
  /// TCP as one gathered stream write.  Returns packets accepted for
  /// routing or delivered locally (fan-out routing drops are excluded
  /// and counted in NodeStats as usual).
  std::size_t send(const Destination& dst, OutboundFrame&& frame);
  /// Register the handler for an application packet type (kIpTunnel,
  /// kDhtRequest, kAppData); maintenance types are handled internally.
  void set_handler(PacketType type, PacketHandler handler);
  /// Request/response: fresh msg_id, response matched by id; cb receives
  /// nullopt on timeout.
  void request(Address dst, PacketType type, RoutingMode mode,
               std::vector<std::uint8_t> payload, ResponseCallback cb);
  /// Reply to a received request, echoing its msg_id.
  void respond(const Packet& req, PacketType type, util::Buffer payload);
  void respond(const Packet& req, PacketType type,
               std::vector<std::uint8_t> payload);

  // --- linker ------------------------------------------------------------
  /// Establish a direct connection to `target`, dialing all candidates
  /// (simultaneous-open NAT traversal).  Idempotent while in progress.
  /// `via_hints` names overlay nodes the target says it already holds
  /// edges to — relay candidates if dialing and punching both fail (a
  /// NATed joiner not yet in the ring is unreachable by routed punch
  /// requests, so these hints are the only way to it).
  void connect_to(const Address& target,
                  const std::vector<TransportAddress>& candidates,
                  ConnectionType type,
                  const std::vector<NodeInfo>& via_hints = {});
  /// Ask a known overlay address (whose endpoints we do not know) to link
  /// with us: a ConnectRequest is routed to it; the target dials back and
  /// its response gives us its endpoints.  Used by IPOP's traffic-driven
  /// shortcuts (paper Section V.1).
  void request_connection(const Address& target, ConnectionType type);

  // --- identity -----------------------------------------------------------
  /// Attach signing keys to a node whose address is *not* key-derived
  /// (the classic from_ip mapping): records it writes are still signed,
  /// but departure notices stay unsigned since the keys cannot vouch for
  /// the ring position.  Call before start().
  void set_identity(NodeIdentity identity) {
    identity_ = std::move(identity);
  }
  const NodeIdentity& identity() const { return identity_; }
  bool has_identity() const { return identity_.valid(); }
  /// True when the overlay address is derived from the identity's key —
  /// the node can prove ownership of its ring position.
  bool key_addressed() const {
    return has_identity() && identity_.address() == addr_;
  }

  // --- introspection ------------------------------------------------------
  const Address& address() const { return addr_; }
  ConnectionTable& table() { return table_; }
  const ConnectionTable& table() const { return table_; }
  net::Host& host() { return host_; }
  NodeConfig& config() { return cfg_; }
  const NodeStats& stats() const { return stats_; }
  std::uint64_t maintenance_ticks() const { return maintenance_ticks_; }
  /// Local + NAT-observed endpoints, advertised during handshakes.
  std::vector<TransportAddress> local_addresses() const;
  std::optional<Address> left_neighbor() const;
  std::optional<Address> right_neighbor() const;
  /// What this node has inferred about the NAT in front of it.
  NatClass nat_class() const { return nat_class_; }
  /// Per-path send headroom (buffer-ownership rule 6): the reallocation
  /// budget left in front of locally built wire images, derived at
  /// edge-establishment time as max(kPacketHeadroom, header + the
  /// costliest live edge's headroom()) so frames bound for tunneling
  /// edges stay zero-copy through every encapsulation layer.
  std::size_t send_headroom() const { return send_headroom_; }
  /// Live relay tunnels keyed by tunnel peer (introspection for tests
  /// and the hostile soak's path audit).
  const std::map<Address, std::shared_ptr<RelayEdge>>& relay_edges() const {
    return relay_edges_;
  }

 private:
  struct PendingRequest {
    ResponseCallback cb;
    std::uint64_t timer = 0;
  };
  struct LinkAttempt {
    std::vector<TransportAddress> candidates;
    /// The peer's neighbors (from its punch response): relay candidates
    /// if dialing fails.
    std::vector<NodeInfo> relay_candidates;
    ConnectionType type = ConnectionType::kStructuredNear;
    int attempts_left = 0;
    /// Dial rounds completed; round 1 successes are direct links,
    /// anything later that needed the punch exchange counts as punched.
    int round = 0;
    NatClass peer_nat = NatClass::kUnknown;
    bool punch_sent = false;
    bool relay_tried = false;
    std::uint64_t timer = 0;
  };

  // Edge plumbing.
  void adopt_edge(const std::shared_ptr<Edge>& edge);
  void on_edge_packet(const std::shared_ptr<Edge>& edge, util::Buffer bytes);
  void process_packet(const std::shared_ptr<Edge>& edge, Packet pkt);
  void on_edge_closed(Edge* edge);

  // Routing.
  struct NextHop {
    const Connection* best = nullptr;
    /// best exists and is strictly closer to the destination than we
    /// are (the greedy-forwarding condition).
    bool have_closer = false;
  };
  /// Greedy next-hop selection shared by route() and send_batch();
  /// `src` is excluded so a packet never routes back toward its origin.
  NextHop pick_next_hop(const Address& dst, const Address& src) const;
  void route(Packet pkt, bool from_transit);
  std::size_t send_fanout(std::span<const Address> dsts, PacketType type,
                          RoutingMode mode, util::Buffer payload);
  void deliver(const Packet& pkt);

  // Link handshake.
  void send_link_request(const std::shared_ptr<Edge>& edge,
                         ConnectionType type);
  void handle_link_request(const std::shared_ptr<Edge>& edge,
                           const Packet& pkt);
  void handle_link_response(const std::shared_ptr<Edge>& edge,
                            const Packet& pkt);
  void handle_edge_ping(const std::shared_ptr<Edge>& edge, const Packet& pkt);
  void handle_edge_pong(const std::shared_ptr<Edge>& edge, const Packet& pkt);
  void handle_departing(const std::shared_ptr<Edge>& edge, const Packet& pkt);

  // NAT traversal.
  void send_punch_request(const Address& target);
  void on_punch_response(const Address& target, std::optional<Packet> resp);
  void handle_punch_request(const Packet& pkt);
  /// Tunnel the link handshake through a mutual neighbor; returns false
  /// when no usable relay is known.
  bool start_relay(const Address& target, LinkAttempt& attempt);
  /// Swap a tunnel whose carrier died onto its pre-armed backup via.
  /// Returns false when no backup is armed or the backup edge is gone
  /// (the tunnel then closes as before).
  bool failover_relay(const std::shared_ptr<RelayEdge>& re);
  void handle_relay_forward(const std::shared_ptr<Edge>& edge, Packet pkt);
  void handle_relay_deliver(const std::shared_ptr<Edge>& edge,
                            const Packet& pkt);
  /// Drop a connection and tell the churn observers about it.
  void evict_connection(const Address& addr);
  void notify_connection_lost(const Address& addr);

  // Ring maintenance.
  void maintenance_tick();
  void bootstrap();
  void locate_ring_position();
  void send_locate_probe(const std::shared_ptr<Edge>& via);
  void probe_via_seed();
  void stabilize();
  void reclassify_connections();
  void maintain_shortcuts();
  void trim_connections();
  /// Tell the peer we are dropping this edge (datagram edges have no
  /// transport-level close; without the notice the peer zombie-pings).
  void send_edge_close(const std::shared_ptr<Edge>& edge);
  void keepalive();
  void handle_connect_request(const Packet& pkt);
  void handle_neighbor_query(const Packet& pkt);
  void consider_candidates(const std::vector<NodeInfo>& infos);
  bool should_be_near(const Address& candidate) const;
  void link_retry_tick(Address target);

  std::vector<NodeInfo> neighbor_infos(std::size_t k) const;
  /// Overlay nodes we hold a live *direct* (non-relay) edge to, as
  /// address-only NodeInfos: the "reachable via" hints a locate probe
  /// carries so responders can tunnel a link back to us before we are
  /// routable (capped at 4 — one reachable relay suffices).
  std::vector<NodeInfo> direct_edge_hints() const;
  /// Remember a translated endpoint peers observe for us (and refine the
  /// NAT self-classification); on new discovery, push a refreshed
  /// identity to every connection.
  void record_observed(const TransportAddress& ta);
  void broadcast_identity();
  /// Lazily bring up a transport (bootstrap and the mixed-transport
  /// linker fallback dial whatever protocol the peer offers).
  UdpTransport* ensure_udp();
  TcpTransport* ensure_tcp();
  /// Re-derive send_headroom_ from the live edge set; called whenever an
  /// edge is adopted or closed.
  void recompute_send_headroom();
  std::uint32_t next_msg_id() { return msg_id_counter_++; }

  net::Host& host_;
  Address addr_;
  NodeIdentity identity_{};
  NodeConfig cfg_;
  ConnectionTable table_;
  NodeStats stats_;
  bool started_ = false;
  util::TimePoint started_at_{};

  std::unique_ptr<TcpTransport> tcp_;
  std::unique_ptr<UdpTransport> udp_;
  std::vector<TransportAddress> seeds_;
  std::set<TransportAddress> observed_;
  NatClass nat_class_ = NatClass::kUnknown;
  std::size_t send_headroom_ = util::kPacketHeadroom;
  /// Live relay tunnels by tunnel peer.  Ordered map: teardown on via
  /// close iterates it, and address order is stable across runs where
  /// pointer hash order is not.
  std::map<Address, std::shared_ptr<RelayEdge>> relay_edges_;
  /// Last time an edge carried a relay forward *through* us (we were the
  /// R of someone else's tunnel).  Keeps trim_connections from cutting a
  /// tunnel we cannot see from our own relay_edges_.
  std::map<Edge*, TimePoint> relay_via_activity_;
  std::vector<ConnectionLostHandler> conn_lost_observers_;
  std::vector<std::function<void()>> departure_hooks_;

  // Registry of every adopted edge (handshaken or not).  Ownership here
  // guarantees the receive-handler lookup succeeds even for duplicate
  // edges that lost the connection-table race on one side only.
  // Deliberately an ordered map: keepalive and stop() iterate it, and
  // pointer *comparison* order is stable under an ASLR base shift while
  // pointer *hash* order is not — an unordered_map here would make edge
  // close order (and thus the whole event schedule) vary across runs.
  std::map<Edge*, std::shared_ptr<Edge>> edges_;
  std::map<PacketType, PacketHandler> handlers_;
  // Only iterated in stop() to cancel timers (order-insensitive): O(1)
  // lookup wins on the response-correlation and link-attempt paths.
  std::unordered_map<Address, LinkAttempt> linking_;
  std::unordered_map<std::uint32_t, PendingRequest> pending_requests_;
  std::uint32_t msg_id_counter_ = 1;
  std::uint64_t maintenance_timer_ = 0;
  std::uint64_t maintenance_ticks_ = 0;
  /// Guards the punch/link retry timers: declared last so a node dying
  /// mid-punch expires every outstanding callback before the members
  /// they would touch are gone (timer-lifetime rule).
  util::AliveToken alive_;
};

}  // namespace ipop::brunet
