#include "brunet/relay_edge.hpp"

namespace ipop::brunet {

util::Buffer RelayEdge::wrap(util::Buffer inner) {
  // Exclusive storage with the full downstream budget in front (wrapper
  // header + the carrying edge's own budget): prepend in place.  Callers
  // guarantee this via send()'s dispatch; anything short of the budget
  // takes exactly one counted copy here, sized so every layer below
  // prepends in place — never a second copy downstream.
  if (!inner.unique() || inner.headroom() < headroom()) {
    *wrap_copies_ += inner.size();
    // lint:allow(zero-copy): cold fallback — counted copy restores the per-path headroom budget
    inner = inner.clone(headroom());
  }
  Packet w;
  w.type = PacketType::kRelayForward;
  w.ttl = kWrapperTtl;
  w.src = local_;
  w.dst = peer_;
  w.set_payload(std::move(inner));
  // grow_front succeeds in place (unique + budget ensured above); the
  // realloc headroom argument is moot but kept honest.
  return w.take_wire(headroom());
}

void RelayEdge::send(util::Buffer bytes) {
  if (!up_ || via_ == nullptr) return;
  // A shared wire image (identity broadcast, departure notice: one
  // buffer fanned out to every edge) must not be grown in place —
  // wrap it scatter-gather style instead, same as send_chain, so the
  // fan-out costs zero copies on tunneled paths too.
  if (!bytes.unique()) {
    util::BufferChain chain;
    chain.append(std::move(bytes));
    send_chain(std::move(chain));
    return;
  }
  ++tx_;
  via_->send(wrap(std::move(bytes)));
}

void RelayEdge::send_chain(util::BufferChain chain) {
  if (!up_ || via_ == nullptr) return;
  // Scatter-gather wrap: the wrapper header rides its own segment in
  // front and the inner frame's segments (e.g. a per-destination header
  // over a fan-out-shared payload) cross the carrying edge unflattened —
  // zero bytes copied regardless of how the inner chain is shared.
  ++tx_;
  Packet w;
  w.type = PacketType::kRelayForward;
  w.ttl = kWrapperTtl;
  w.src = local_;
  w.dst = peer_;
  auto img = w.wire_chain(util::Buffer(), via_->headroom());
  chain.prepend(img.segment(0).share());
  via_->send_chain(std::move(chain));
}

void RelayEdge::close() {
  if (!up_) return;
  up_ = false;
  via_.reset();
  notify_closed();
}

TransportAddress RelayEdge::remote() const {
  const auto& rb = relay_.bytes();
  const auto& pb = peer_.bytes();
  const std::uint32_t ip = static_cast<std::uint32_t>(rb[0]) << 24 |
                           static_cast<std::uint32_t>(rb[1]) << 16 |
                           static_cast<std::uint32_t>(rb[2]) << 8 |
                           static_cast<std::uint32_t>(rb[3]);
  const std::uint16_t port =
      static_cast<std::uint16_t>(pb[0] << 8 | pb[1]);
  return {TransportAddress::Proto::kRelay, net::Ipv4Address(ip), port};
}

}  // namespace ipop::brunet
