// Connection table: the node's view of the ring.
//
// Brunet distinguishes structured *near* connections (immediate ring
// neighbors, which guarantee routability) from structured *far* shortcuts
// (Kleinberg-style long links that give O(log n) routing) and *leaf*
// connections (bootstrap edges).  Greedy routing consults all of them.
//
// The table keeps connections sorted by address, which turns every ring
// query into a binary search plus a short walk:
//
//   - closest_to: the ring-distance minimizer over a sorted set is always
//     the successor or the predecessor of the target in address order
//     (min directed distance forward = successor, min backward =
//     predecessor), so a lower_bound plus at most two candidates per side
//     (when one is excluded) replaces the old linear scan — O(log n).
//   - left/right_neighbors: the k entries adjacent to self's ring
//     position, O(log n + k) instead of sort-all-connections per call.
//   - reclassify: one pass computing each entry's clockwise offset from
//     self, O(n) instead of O(n log n + n·k).
//
// Ties at equal ring distance break toward the numerically lower address.
// This is deterministic and independent of insertion order (the old
// linear scan kept whichever entry was inserted first).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "brunet/address.hpp"
#include "brunet/transport.hpp"

namespace ipop::brunet {

enum class ConnectionType : std::uint8_t {
  kLeaf = 0,
  kStructuredNear = 1,
  kStructuredFar = 2,
  /// Traffic-justified direct link (IPOP Section V.1 shortcuts): kept as
  /// long as the edge lives, exempt from background trimming.
  kTrafficShortcut = 3,
};

const char* connection_type_name(ConnectionType t);

struct Connection {
  Address addr;
  ConnectionType type = ConnectionType::kLeaf;
  /// The peer asked for this link as one of *its* near connections; we
  /// never trim such links (prevents trim/relink flapping when the ring
  /// view is asymmetric).
  bool peer_requested_near = false;
  /// The link needed NAT hole-punch assistance (established after the
  /// first dial round while a punch exchange was in flight).  Sticky
  /// across re-adds.  A *relayed* link is recognized by its edge instead:
  /// edge->remote().proto == kRelay.
  bool punched = false;
  std::shared_ptr<Edge> edge;
  /// Dialable endpoints advertised by the peer in its link handshake.
  /// (The edge's remote endpoint is an ephemeral port for TCP, so gossip
  /// must use these instead.)
  std::vector<TransportAddress> advertised;
};

class ConnectionTable {
 public:
  explicit ConnectionTable(Address self) : self_(self) {}

  /// Insert or update; an existing connection to the same address keeps
  /// the strongest type (near > far > leaf) and the newest edge.
  void add(const Connection& conn);
  void remove(const Address& addr);
  void clear() { conns_.clear(); }
  bool contains(const Address& addr) const;
  const Connection* find(const Address& addr) const;
  /// Look up the connection using a specific edge instance.
  const Connection* find_by_edge(const Edge* edge) const;

  /// Connection whose address minimizes ring distance to `target`
  /// (excluding self; the table never stores self).  `exclude` skips one
  /// address (used to avoid routing a packet back to its source).
  /// O(log n): binary search, then at most two candidates per side.
  const Connection* closest_to(const Address& target,
                               const Address* exclude = nullptr) const;

  /// Re-label connection types: the k nearest per side become near;
  /// displaced near connections are kept as far (shortcut) links.
  void reclassify(std::size_t k);

  /// Ring neighbors: the `k` nearest connections clockwise ("right") or
  /// counter-clockwise ("left") of self, nearest first.
  std::vector<const Connection*> right_neighbors(std::size_t k) const;
  std::vector<const Connection*> left_neighbors(std::size_t k) const;

  /// Allocation-free single-neighbor accessors (the k=1 case above is a
  /// routing-adjacent hot path: ring-position checks, stabilization,
  /// departure handoff).  Null when the table is empty.
  const Connection* right_neighbor() const;
  const Connection* left_neighbor() const;

  /// Visit every connection in address order, allocation-free.  The
  /// callback must not mutate the table.
  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& c : conns_) fn(c);
  }

  /// Visit up to `k` ring neighbors clockwise of self, nearest first,
  /// allocation-free (replica-set queries in the DHT).
  template <typename F>
  void for_each_right(std::size_t k, F&& fn) const {
    const std::size_t n = conns_.size();
    if (n == 0) return;
    std::size_t i = ring_begin();
    for (std::size_t taken = 0; taken < k && taken < n; ++taken) {
      fn(conns_[i]);
      i = i + 1 < n ? i + 1 : 0;
    }
  }

  /// Visit up to `k` ring neighbors counter-clockwise of self, nearest
  /// first, allocation-free.
  template <typename F>
  void for_each_left(std::size_t k, F&& fn) const {
    const std::size_t n = conns_.size();
    if (n == 0) return;
    std::size_t i = ring_begin();
    for (std::size_t taken = 0; taken < k && taken < n; ++taken) {
      i = i == 0 ? n - 1 : i - 1;
      fn(conns_[i]);
    }
  }

  std::vector<const Connection*> all() const;
  std::size_t size() const { return conns_.size(); }
  std::size_t count(ConnectionType t) const;
  const Address& self() const { return self_; }

 private:
  /// Index of the first connection with addr >= a (== size() when none).
  std::size_t lower_bound_index(const Address& a) const;
  /// Index of self's clockwise successor (wraps to 0 past the top of the
  /// address space); the start of the right-neighbor walk.
  std::size_t ring_begin() const;

  Address self_;
  std::vector<Connection> conns_;  // sorted ascending by addr
};

}  // namespace ipop::brunet
