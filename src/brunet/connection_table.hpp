// Connection table: the node's view of the ring.
//
// Brunet distinguishes structured *near* connections (immediate ring
// neighbors, which guarantee routability) from structured *far* shortcuts
// (Kleinberg-style long links that give O(log n) routing) and *leaf*
// connections (bootstrap edges).  Greedy routing consults all of them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "brunet/address.hpp"
#include "brunet/transport.hpp"

namespace ipop::brunet {

enum class ConnectionType : std::uint8_t {
  kLeaf = 0,
  kStructuredNear = 1,
  kStructuredFar = 2,
  /// Traffic-justified direct link (IPOP Section V.1 shortcuts): kept as
  /// long as the edge lives, exempt from background trimming.
  kTrafficShortcut = 3,
};

const char* connection_type_name(ConnectionType t);

struct Connection {
  Address addr;
  std::shared_ptr<Edge> edge;
  ConnectionType type = ConnectionType::kLeaf;
  /// Dialable endpoints advertised by the peer in its link handshake.
  /// (The edge's remote endpoint is an ephemeral port for TCP, so gossip
  /// must use these instead.)
  std::vector<TransportAddress> advertised;
  /// The peer asked for this link as one of *its* near connections; we
  /// never trim such links (prevents trim/relink flapping when the ring
  /// view is asymmetric).
  bool peer_requested_near = false;
};

class ConnectionTable {
 public:
  explicit ConnectionTable(Address self) : self_(self) {}

  /// Insert or update; an existing connection to the same address keeps
  /// the strongest type (near > far > leaf) and the newest edge.
  void add(const Connection& conn);
  void remove(const Address& addr);
  bool contains(const Address& addr) const;
  const Connection* find(const Address& addr) const;
  /// Look up the connection using a specific edge instance.
  const Connection* find_by_edge(const Edge* edge) const;

  /// Connection whose address minimizes ring distance to `target`
  /// (excluding self; the table never stores self).  `exclude` skips one
  /// address (used to avoid routing a packet back to its source).
  const Connection* closest_to(const Address& target,
                               const Address* exclude = nullptr) const;

  /// Re-label connection types: the k nearest per side become near;
  /// displaced near connections are kept as far (shortcut) links.
  void reclassify(std::size_t k);

  /// Ring neighbors: the `k` nearest connections clockwise ("right") or
  /// counter-clockwise ("left") of self, nearest first.
  std::vector<const Connection*> right_neighbors(std::size_t k) const;
  std::vector<const Connection*> left_neighbors(std::size_t k) const;

  std::vector<const Connection*> all() const;
  std::size_t size() const { return conns_.size(); }
  std::size_t count(ConnectionType t) const;
  const Address& self() const { return self_; }

 private:
  Address self_;
  std::vector<Connection> conns_;
};

}  // namespace ipop::brunet
