#include "brunet/address.hpp"

#include "util/bytes.hpp"

namespace ipop::brunet {

namespace {

/// out = a - b (mod 2^160).
Address::Bytes sub_mod(const Address::Bytes& a, const Address::Bytes& b) {
  Address::Bytes out{};
  int borrow = 0;
  for (int i = Address::kBytes - 1; i >= 0; --i) {
    int v = static_cast<int>(a[i]) - static_cast<int>(b[i]) - borrow;
    borrow = v < 0 ? 1 : 0;
    out[i] = static_cast<std::uint8_t>(v & 0xFF);
  }
  return out;  // modular: borrow out of the top wraps, which is what we want
}

/// out = a + b (mod 2^160).
Address::Bytes add_mod(const Address::Bytes& a, const Address::Bytes& b) {
  Address::Bytes out{};
  int carry = 0;
  for (int i = Address::kBytes - 1; i >= 0; --i) {
    int v = static_cast<int>(a[i]) + static_cast<int>(b[i]) + carry;
    carry = v > 0xFF ? 1 : 0;
    out[i] = static_cast<std::uint8_t>(v & 0xFF);
  }
  return out;
}

}  // namespace

int compare_bytes(const Address::Bytes& a, const Address::Bytes& b) {
  for (std::size_t i = 0; i < Address::kBytes; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

Address Address::from_ip(net::Ipv4Address ip) {
  std::array<std::uint8_t, 4> raw{
      static_cast<std::uint8_t>(ip.value >> 24),
      static_cast<std::uint8_t>(ip.value >> 16),
      static_cast<std::uint8_t>(ip.value >> 8),
      static_cast<std::uint8_t>(ip.value)};
  return Address(util::sha1(std::span<const std::uint8_t>(raw.data(), 4)));
}

Address Address::hash(std::string_view data) {
  return Address(util::sha1(data));
}

Address Address::from_public_key(const util::crypto::PublicKey& pk) {
  util::Sha1 ctx;
  ctx.update(std::string_view("ipop-key:"));
  ctx.update(std::span<const std::uint8_t>(pk.bytes));
  return Address(ctx.finish());
}

Address Address::random(util::Rng& rng) {
  Bytes b;
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng() & 0xFF);
  return Address(b);
}

Address Address::from_hex(std::string_view hex) {
  auto raw = util::from_hex(hex);
  if (raw.size() != kBytes) throw util::ParseError("address must be 40 hex");
  Bytes b;
  std::copy(raw.begin(), raw.end(), b.begin());
  return Address(b);
}

std::string Address::to_hex() const {
  return util::to_hex(std::span<const std::uint8_t>(bytes_.data(), kBytes));
}

Address::Bytes Address::directed_distance(const Address& a, const Address& b) {
  return sub_mod(b.bytes_, a.bytes_);
}

Address::Bytes Address::ring_distance(const Address& a, const Address& b) {
  Bytes d1 = sub_mod(b.bytes_, a.bytes_);
  Bytes d2 = sub_mod(a.bytes_, b.bytes_);
  return compare_bytes(d1, d2) <= 0 ? d1 : d2;
}

bool Address::closer(const Address& target, const Address& x,
                     const Address& y) {
  return compare_bytes(ring_distance(target, x), ring_distance(target, y)) < 0;
}

bool Address::in_range_right(const Address& a, const Address& x,
                             const Address& b) {
  // x in (a, b] clockwise  <=>  dist(a->x) != 0 and dist(a->x) <= dist(a->b).
  const Bytes ax = directed_distance(a, x);
  const Bytes ab = directed_distance(a, b);
  const Bytes zero{};
  if (compare_bytes(ax, zero) == 0) return false;
  return compare_bytes(ax, ab) <= 0;
}

Address Address::offset_by_pow2(int bit) const {
  Bytes delta{};
  const int byte_index = kBytes - 1 - bit / 8;
  if (byte_index >= 0) {
    delta[byte_index] = static_cast<std::uint8_t>(1u << (bit % 8));
  }
  return Address(add_mod(bytes_, delta));
}

Address Address::offset_by(const Bytes& delta) const {
  return Address(add_mod(bytes_, delta));
}

}  // namespace ipop::brunet
