// RelayEdge: an overlay edge tunneled through a mutual neighbor.
//
// When hole punching cannot connect two NATed nodes (symmetric NAT on
// both sides, or symmetric against port-restricted), the linker falls
// back to relaying through a ring neighbor R that holds direct edges to
// both endpoints.  The relay is stateless: A wraps each edge frame in a
// kRelayForward packet (full 48-byte Brunet header, src = A, dst = B)
// and sends it on its direct edge to R; R patches the type byte to
// kRelayDeliver in place and resends the *same* buffer on its direct
// edge to B — zero bytes copied, zero bytes allocated at the relay.  B
// demultiplexes by the wrapper's src address into its own RelayEdge,
// whose deliver() hands the inner frame to the node like any other edge.
//
// The wrap on the endpoint side is where per-path headroom earns its
// keep: a wire image built with the node's derived send headroom has
// room for the 48-byte wrapper *and* the underlay prepends below the
// carrying edge, so nested encapsulation stays zero-copy end to end.
// Frames that arrive without the budget (transit traffic originated by a
// node with no relay edges) take one counted copy that restores it.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "brunet/packet.hpp"
#include "brunet/transport.hpp"

namespace ipop::brunet {

class RelayEdge : public Edge {
 public:
  /// Bound on relay forwards per wrapper.  A wrapper crosses exactly one
  /// relay by construction (relays only forward over non-relay edges),
  /// so this is a belt-and-suspenders drop for corrupted hop counts.
  static constexpr std::uint8_t kWrapperTtl = 4;

  /// `wrap_copy_counter` (owned by the node's stats) accumulates bytes
  /// copied by the cold wrap path; it must outlive every send.
  RelayEdge(Address local, Address peer, Address relay,
            std::shared_ptr<Edge> via, std::uint64_t* wrap_copy_counter)
      : local_(local),
        peer_(peer),
        relay_(relay),
        via_(std::move(via)),
        wrap_copies_(wrap_copy_counter) {}

  void send(util::Buffer bytes) override;
  void send_chain(util::BufferChain chain) override;
  void close() override;
  /// kRelay pseudo-address: never dialable, never gossiped; ip/port pack
  /// relay/peer identity bytes so log lines distinguish edges.
  TransportAddress remote() const override;
  bool is_up() const override {
    return up_ && via_ != nullptr && via_->is_up();
  }
  /// Wrapper header on top of everything the carrying edge needs.
  std::size_t headroom() const override {
    return (via_ != nullptr ? via_->headroom() : kUnderlayHeadroom) +
           Packet::kHeaderSize;
  }

  const std::shared_ptr<Edge>& via() const { return via_; }
  const Address& peer() const { return peer_; }
  const Address& relay() const { return relay_; }

  /// Pre-arm a second relay candidate (ROADMAP item 2 follow-up): when
  /// the carrier dies the node swaps the tunnel onto the backup's direct
  /// edge instead of re-running the whole linker.  The initiator arms it
  /// from the punch response's candidate list at link time; the
  /// responder arms it opportunistically from whichever other direct
  /// edge delivers wrapped frames (after a peer-side failover, frames
  /// arrive through the new relay before our old carrier even times
  /// out).
  void arm_backup(const Address& relay) { backup_relay_ = relay; }
  const Address& backup_relay() const { return backup_relay_; }

  /// Ride a new carrier; the old relay becomes the backup (it may only
  /// have died from the *carrier edge*'s perspective — if its node is
  /// really gone, the next failover simply finds no direct edge to it).
  void swap_via(std::shared_ptr<Edge> via, const Address& relay) {
    backup_relay_ = relay_;
    relay_ = relay;
    via_ = std::move(via);
  }

  /// Node-side entry point for an unwrapped inbound frame.
  void deliver_inner(TimePoint now, util::Buffer inner) {
    deliver(now, std::move(inner));
  }

 private:
  util::Buffer wrap(util::Buffer inner);

  Address local_;
  Address peer_;
  Address relay_;
  /// All-zero address = no backup armed.
  Address backup_relay_{};
  std::shared_ptr<Edge> via_;
  std::uint64_t* wrap_copies_;
  bool up_ = true;
};

}  // namespace ipop::brunet
