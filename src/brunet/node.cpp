#include "brunet/node.hpp"

#include <algorithm>

#include "brunet/relay_edge.hpp"
#include "util/logging.hpp"

namespace ipop::brunet {

namespace {
bool is_edge_local(PacketType t) {
  return static_cast<std::uint8_t>(t) < 10;
}
bool is_response_type(PacketType t) {
  switch (t) {
    case PacketType::kConnectResponse:
    case PacketType::kNeighborReply:
    case PacketType::kPingResponse:
    case PacketType::kPunchResponse:
    case PacketType::kDhtResponse:
      return true;
    default:
      return false;
  }
}
}  // namespace

const char* nat_class_name(NatClass c) {
  switch (c) {
    case NatClass::kUnknown: return "unknown";
    case NatClass::kOpen: return "open";
    case NatClass::kCone: return "cone";
    case NatClass::kSymmetric: return "symmetric";
  }
  return "?";
}

void NodeInfo::encode(util::ByteWriter& w) const {
  w.bytes(std::span<const std::uint8_t>(addr.bytes().data(), Address::kBytes));
  w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(addrs.size(), 8)));
  for (std::size_t i = 0; i < addrs.size() && i < 8; ++i) {
    addrs[i].encode(w);
  }
}

NodeInfo NodeInfo::decode(util::ByteReader& r) {
  NodeInfo info;
  Address::Bytes b{};
  auto raw = r.bytes(Address::kBytes);
  std::copy(raw.begin(), raw.end(), b.begin());
  info.addr = Address(b);
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    info.addrs.push_back(TransportAddress::decode(r));
  }
  return info;
}

std::size_t encode_node_infos(util::ByteWriter& w,
                              std::span<const NodeInfo> infos) {
  const std::size_t n = std::min<std::size_t>(infos.size(), 255);
  w.u8(static_cast<std::uint8_t>(n));
  for (std::size_t i = 0; i < n; ++i) infos[i].encode(w);
  return n;
}

BrunetNode::BrunetNode(net::Host& host, Address addr, NodeConfig cfg)
    : host_(host), addr_(addr), cfg_(cfg), table_(addr) {}

BrunetNode::BrunetNode(net::Host& host, const NodeIdentity& identity,
                       NodeConfig cfg)
    : host_(host),
      addr_(identity.address()),
      identity_(identity),
      cfg_(cfg),
      table_(addr_) {}

BrunetNode::~BrunetNode() { stop(); }

void BrunetNode::add_seed(TransportAddress ta) { seeds_.push_back(ta); }

void BrunetNode::start() {
  if (started_) return;
  started_ = true;
  started_at_ = host_.loop().now();
  if (cfg_.transport == TransportAddress::Proto::kTcp) {
    ensure_tcp();
  } else {
    ensure_udp();
  }
  maintenance_tick();
}

void BrunetNode::leave() {
  if (!started_) return;
  // Hand off state (DHT records, ring position) first, while every edge
  // is still fully open: peers close the shared edge as soon as the
  // kDeparting notice arrives, so on stream transports anything queued
  // behind the notice would be discarded with the socket.
  for (auto& hook : departure_hooks_) {
    if (hook) hook();
  }
  // Then tell every peer we are going: one shared wire image carrying our
  // identity and neighbor list, so the two sides of the ring gap can link
  // to each other immediately instead of waiting for keepalive misses and
  // stabilization to rediscover the neighborhood.
  Packet notice;
  notice.type = PacketType::kDeparting;
  notice.src = addr_;
  util::ByteWriter w;
  NodeInfo{addr_, local_addresses()}.encode(w);
  encode_node_infos(w, neighbor_infos(cfg_.near_per_side));
  auto body = w.take();
  // A key-addressed node signs the notice over (address || body), so a
  // peer can check the departure really comes from the key that owns the
  // ring position — nobody can forge an eviction for a live node.  The
  // appended pubkey + signature are trailing fields legacy receivers
  // never reach while parsing.
  if (key_addressed()) {
    std::vector<std::uint8_t> msg;
    msg.reserve(Address::kBytes + body.size());
    msg.insert(msg.end(), addr_.bytes().begin(), addr_.bytes().end());
    msg.insert(msg.end(), body.begin(), body.end());
    const auto sig = identity_.keys.sign(msg);
    const auto& pk = identity_.keys.public_key().bytes;
    body.insert(body.end(), pk.begin(), pk.end());
    body.insert(body.end(), sig.bytes.begin(), sig.bytes.end());
  }
  notice.set_payload(std::move(body));
  const auto wire = notice.to_wire(send_headroom_);
  table_.for_each([&](const Connection& c) { c.edge->send(wire); });
  stop();
}

void BrunetNode::add_connection_lost_observer(ConnectionLostHandler h) {
  conn_lost_observers_.push_back(std::move(h));
}

void BrunetNode::add_departure_hook(std::function<void()> hook) {
  departure_hooks_.push_back(std::move(hook));
}

void BrunetNode::notify_connection_lost(const Address& addr) {
  for (auto& observer : conn_lost_observers_) {
    if (observer) observer(addr);
  }
}

void BrunetNode::evict_connection(const Address& addr) {
  const Connection* c = table_.find(addr);
  if (c == nullptr) return;
  auto edge = c->edge;
  table_.remove(addr);
  if (edge) edge->close();
  notify_connection_lost(addr);
}

void BrunetNode::stop() {
  if (!started_) return;
  started_ = false;
  auto& loop = host_.loop();
  if (maintenance_timer_ != 0) loop.cancel(maintenance_timer_);
  for (auto& [id, pr] : pending_requests_) {
    if (pr.timer != 0) loop.cancel(pr.timer);
  }
  pending_requests_.clear();
  for (auto& [addr, attempt] : linking_) {
    if (attempt.timer != 0) loop.cancel(attempt.timer);
  }
  linking_.clear();
  // Close all edges (copy: close mutates the table via callbacks).
  std::vector<std::shared_ptr<Edge>> edges;
  edges.reserve(edges_.size());
  for (auto& [ptr, e] : edges_) edges.push_back(e);
  edges_.clear();
  relay_edges_.clear();
  relay_via_activity_.clear();
  for (auto& e : edges) {
    if (e) e->close();
  }
  table_.clear();
  send_headroom_ = util::kPacketHeadroom;
  // Tear the transports down: a stopped node's sockets close, so inbound
  // traffic can no longer spawn edges that would dangle across a later
  // restart (start() builds fresh transports).
  udp_.reset();
  tcp_.reset();
}

void BrunetNode::record_observed(const TransportAddress& ta) {
  // A relay tunnel's pseudo-endpoint says nothing about our NAT and must
  // never be advertised as dialable.
  if (ta.proto == TransportAddress::Proto::kRelay) return;
  if (host_.stack().is_local_ip(ta.ip)) {
    // Peers see our packets untranslated: no NAT in front of us (at
    // least toward them).
    if (nat_class_ == NatClass::kUnknown) nat_class_ = NatClass::kOpen;
    return;
  }
  // A symmetric NAT mints a fresh mapping per peer, so its observed set
  // would grow with the peer count; eight entries are plenty for both
  // the classification (two suffice) and the gossip clamp.
  if (observed_.size() >= 8) return;
  if (!observed_.insert(ta).second) return;
  // Self-classification (decentralized STUN): one stable external
  // mapping per protocol reads as cone; two distinct external ports on
  // the same external IP and protocol mean per-destination mappings —
  // symmetric.  Symmetric is sticky (extra cone-looking observations
  // never downgrade it).
  std::size_t same_proto_ip = 0;
  for (const auto& o : observed_) {
    if (o.proto == ta.proto && o.ip == ta.ip) ++same_proto_ip;
  }
  if (same_proto_ip >= 2) {
    nat_class_ = NatClass::kSymmetric;
  } else if (nat_class_ != NatClass::kSymmetric) {
    nat_class_ = NatClass::kCone;
  }
  IPOP_LOG_DEBUG(addr_.short_hex() << ": learned translated address "
                                   << ta.to_string() << " (nat: "
                                   << nat_class_name(nat_class_) << ")");
  // Our advertised endpoints changed: refresh every peer's view so gossip
  // carries the dialable (translated) endpoint, not just the private one.
  broadcast_identity();
}

void BrunetNode::broadcast_identity() {
  Packet ping;
  ping.type = PacketType::kEdgePing;
  ping.src = addr_;
  util::ByteWriter w;
  NodeInfo{addr_, local_addresses()}.encode(w);
  ping.set_payload(w.take());
  // One wire buffer, shared by every edge's send.
  const auto wire = ping.to_wire(send_headroom_);
  table_.for_each([&](const Connection& c) { c.edge->send(wire); });
}

std::vector<TransportAddress> BrunetNode::local_addresses() const {
  std::vector<TransportAddress> out;
  for (std::size_t i = 0; i < host_.stack().interface_count(); ++i) {
    // The tap interface belongs to the *virtual* network; advertising it
    // would invite peers to dial through the tunnel they are building.
    if (host_.stack().interface_name(i).starts_with("tap")) continue;
    const auto ip = host_.stack().interface_ip(i);
    if (ip.is_unspecified()) continue;
    // Advertise every protocol we can accept on — the native transport
    // first, so same-protocol dialing stays preferred — letting
    // mixed-transport peers fall back to whichever we share.
    if (cfg_.transport == TransportAddress::Proto::kTcp) {
      if (tcp_ != nullptr) out.push_back({TransportAddress::Proto::kTcp, ip,
                                          cfg_.port});
      if (udp_ != nullptr) out.push_back({TransportAddress::Proto::kUdp, ip,
                                          cfg_.port});
    } else {
      if (udp_ != nullptr) out.push_back({TransportAddress::Proto::kUdp, ip,
                                          cfg_.port});
      if (tcp_ != nullptr) out.push_back({TransportAddress::Proto::kTcp, ip,
                                          cfg_.port});
    }
  }
  for (const auto& obs : observed_) {
    if (std::find(out.begin(), out.end(), obs) == out.end()) {
      out.push_back(obs);
    }
  }
  if (out.size() > 8) out.resize(8);
  return out;
}

std::optional<Address> BrunetNode::left_neighbor() const {
  const Connection* c = table_.left_neighbor();
  if (c == nullptr) return std::nullopt;
  return c->addr;
}

std::optional<Address> BrunetNode::right_neighbor() const {
  const Connection* c = table_.right_neighbor();
  if (c == nullptr) return std::nullopt;
  return c->addr;
}

// ---------------------------------------------------------------------------
// Edge plumbing
// ---------------------------------------------------------------------------

void BrunetNode::adopt_edge(const std::shared_ptr<Edge>& edge) {
  edge->touch(host_.loop().now());
  edges_.emplace(edge.get(), edge);
  edge->set_receive_handler(
      [this, e = edge.get()](util::Buffer bytes) {
        // Resolve the owning shared_ptr without creating a ref cycle.
        auto it = edges_.find(e);
        if (it != edges_.end()) on_edge_packet(it->second, std::move(bytes));
      });
  edge->set_close_handler([this, e = edge.get()] { on_edge_closed(e); });
  recompute_send_headroom();
}

void BrunetNode::recompute_send_headroom() {
  // Buffer-ownership rule 6: every wire image this node builds carries
  // enough front slack for the costliest live edge — our 48-byte header
  // plus everything that edge (and the layers it rides) prepends.  A
  // node with only base-transport edges keeps the historical 128; one
  // with a relay tunnel grows the budget so tunnel-in-tunnel frames stay
  // zero-copy end to end.
  std::size_t h = util::kPacketHeadroom;
  for (const auto& [ptr, e] : edges_) {
    h = std::max(h, Packet::kHeaderSize + e->headroom());
  }
  send_headroom_ = h;
}

void BrunetNode::on_edge_packet(const std::shared_ptr<Edge>& edge,
                                util::Buffer bytes) {
  if (!started_) return;
  // User-level packet processing competes for the host CPU: this single
  // charge is what turns loaded Planet-Lab routers into seconds of delay.
  host_.cpu().run(cfg_.cpu_per_packet,
                  [this, edge, bytes = std::move(bytes)]() mutable {
                    if (!started_) return;
                    Packet pkt;
                    try {
                      // Header parse only; the payload stays in `bytes`,
                      // now owned by the packet.
                      pkt = Packet::decode(std::move(bytes));
                    } catch (const util::ParseError&) {
                      return;
                    }
                    process_packet(edge, std::move(pkt));
                  });
}

void BrunetNode::process_packet(const std::shared_ptr<Edge>& edge,
                                Packet pkt) {
  if (is_edge_local(pkt.type)) {
    switch (pkt.type) {
      case PacketType::kLinkRequest:
        handle_link_request(edge, pkt);
        break;
      case PacketType::kLinkResponse:
        handle_link_response(edge, pkt);
        break;
      case PacketType::kEdgePing:
        handle_edge_ping(edge, pkt);
        break;
      case PacketType::kEdgePong:
        handle_edge_pong(edge, pkt);
        break;
      case PacketType::kDeparting:
        handle_departing(edge, pkt);
        break;
      case PacketType::kRelayForward:
        handle_relay_forward(edge, std::move(pkt));
        break;
      case PacketType::kRelayDeliver:
        handle_relay_deliver(edge, pkt);
        break;
      case PacketType::kEdgeClose:
        // The peer dropped this edge.  Evict now instead of zombie-pinging
        // an endpoint that no longer tracks us (and, if this was our only
        // connection, re-bootstrap on the next maintenance tick).
        if (const Connection* c = table_.find_by_edge(edge.get())) {
          ++stats_.edges_closed;
          evict_connection(c->addr);
        } else {
          edge->close();
        }
        break;
      default:
        break;
    }
    return;
  }
  route(std::move(pkt), /*from_transit=*/true);
}

void BrunetNode::on_edge_closed(Edge* edge) {
  edges_.erase(edge);
  relay_via_activity_.erase(edge);
  // A tunnel is only as alive as its carrier — but a tunnel with a
  // pre-armed backup relay swaps onto the backup's direct edge first
  // (failover) and only dies when no backup can carry it.  Each close
  // re-enters here for the tunnel itself, one level deep — a relay's via
  // is always direct.
  std::vector<std::shared_ptr<RelayEdge>> dead_tunnels;
  for (auto it = relay_edges_.begin(); it != relay_edges_.end();) {
    if (it->second.get() == edge) {
      it = relay_edges_.erase(it);
    } else if (it->second->via().get() == edge) {
      if (failover_relay(it->second)) {
        ++it;
      } else {
        dead_tunnels.push_back(it->second);
        it = relay_edges_.erase(it);
      }
    } else {
      ++it;
    }
  }
  for (auto& re : dead_tunnels) re->close();
  if (const Connection* c = table_.find_by_edge(edge)) {
    const Address addr = c->addr;  // copy: remove() invalidates c
    IPOP_LOG_DEBUG(addr_.short_hex() << ": lost edge to " << addr.short_hex());
    ++stats_.edges_closed;
    table_.remove(addr);
    notify_connection_lost(addr);
  }
  recompute_send_headroom();
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

std::size_t BrunetNode::send(const Destination& dst, OutboundFrame&& frame) {
  if (dst.is_fanout()) {
    return send_fanout(dst.addrs(), frame.type, dst.mode(),
                       std::move(frame.payload));
  }
  Packet pkt;
  pkt.type = frame.type;
  pkt.mode = dst.mode();
  pkt.ttl = cfg_.default_ttl;
  pkt.msg_id = frame.msg_id;
  pkt.src = addr_;
  pkt.dst = dst.addr();
  pkt.set_payload(frame.headroom == OutboundFrame::Headroom::kShare
                      ? frame.payload.share()
                      : std::move(frame.payload));
  route(std::move(pkt), /*from_transit=*/false);
  return 1;
}

std::size_t BrunetNode::send_fanout(std::span<const Address> dsts,
                                    PacketType type, RoutingMode mode,
                                    util::Buffer payload) {
  // Per-edge groups (shared_ptr: a deliver() reentering the node must
  // not invalidate an edge we still have frames for).
  std::vector<std::pair<std::shared_ptr<Edge>, std::vector<util::BufferChain>>>
      batches;
  std::size_t accepted = 0;
  for (const Address& dst : dsts) {
    Packet pkt;
    pkt.type = type;
    pkt.mode = mode;
    pkt.ttl = cfg_.default_ttl;
    pkt.src = addr_;
    pkt.dst = dst;
    ++stats_.originated;
    if (dst == addr_) {
      pkt.set_payload(payload.share());
      deliver(pkt);
      ++accepted;
      continue;
    }
    const auto [best, have_closer] = pick_next_hop(dst, pkt.src);
    if (!have_closer) {
      if (mode == RoutingMode::kClosest) {
        pkt.set_payload(payload.share());
        deliver(pkt);
        ++accepted;
      } else if (best == nullptr) {
        ++stats_.dropped_no_route;
      } else {
        ++stats_.dropped_exact;
      }
      continue;
    }
    // Per-destination header segment in front of the shared payload —
    // the payload's storage is never duplicated across the fan-out.
    auto chain = pkt.wire_chain(payload.share(), send_headroom_);
    auto it = std::find_if(batches.begin(), batches.end(), [&](const auto& b) {
      return b.first.get() == best->edge.get();
    });
    if (it == batches.end()) {
      batches.emplace_back(best->edge, std::vector<util::BufferChain>{});
      it = std::prev(batches.end());
    }
    it->second.push_back(std::move(chain));
    ++accepted;
  }
  // Cork the shared UDP socket across the dispatch: every UDP edge's
  // frames — whatever their destination — leave in one sendmmsg-style
  // socket crossing.  TCP edges batch per edge (one gathered stream
  // write each).  RAII: a throwing edge send must not leave the
  // transport corked forever (staged datagrams would never flush).
  struct CorkGuard {
    UdpTransport* t;
    explicit CorkGuard(UdpTransport* t) : t(t) {
      if (t != nullptr) t->cork();
    }
    ~CorkGuard() {
      if (t != nullptr) t->uncork();
    }
  } cork_guard(udp_.get());
  for (auto& [edge, chains] : batches) {
    if (chains.size() == 1) {
      edge->send_chain(std::move(chains.front()));
    } else {
      edge->send_batch(std::move(chains));
    }
  }
  return accepted;
}

BrunetNode::NextHop BrunetNode::pick_next_hop(const Address& dst,
                                              const Address& src) const {
  // Never route a packet back toward its source: a transit packet only
  // reached us because the sender saw us strictly closer to dst, so the
  // source is never progress.  Crucially this must hold even when
  // dst == src — that is the self-addressed locate probe, and without
  // exclusion the first hop sees the prober in its own table at ring
  // distance zero and bounces the probe straight back, turning ring
  // positioning into a no-op (masked at small N by the stabilize crawl,
  // fatal at 10^3+ where the crawl freezes short of convergence).
  const Connection* best = table_.closest_to(dst, &src);
  return {best,
          best != nullptr && Address::closer(dst, best->addr, addr_)};
}

void BrunetNode::route(Packet pkt, bool from_transit) {
  if (from_transit) {
    if (pkt.hops >= pkt.ttl) {
      ++stats_.dropped_ttl;
      return;
    }
    ++pkt.hops;
  } else {
    ++stats_.originated;
  }

  if (pkt.dst == addr_) {
    deliver(pkt);
    return;
  }
  const auto [best, have_closer] = pick_next_hop(pkt.dst, pkt.src);
  if (!have_closer) {
    if (pkt.mode == RoutingMode::kClosest) {
      deliver(pkt);
    } else if (best == nullptr) {
      ++stats_.dropped_no_route;
    } else {
      ++stats_.dropped_exact;
    }
    return;
  }
  if (from_transit) ++stats_.forwarded;
  // For a transit packet take_wire() is a one-byte in-place hop-count
  // patch and the *same* buffer goes out on the next edge — released by
  // the Packet, so the UDP layer below can prepend its headers into the
  // storage too: forwarding cost is O(1) header work, zero copies.
  best->edge->send(pkt.take_wire(send_headroom_));
}

void BrunetNode::deliver(const Packet& pkt) {
  ++stats_.delivered;
  // Response correlation first.
  if (is_response_type(pkt.type)) {
    auto it = pending_requests_.find(pkt.msg_id);
    if (it != pending_requests_.end()) {
      auto pr = std::move(it->second);
      pending_requests_.erase(it);
      if (pr.timer != 0) host_.loop().cancel(pr.timer);
      if (pr.cb) pr.cb(pkt);
      return;
    }
  }
  switch (pkt.type) {
    case PacketType::kConnectRequest:
      handle_connect_request(pkt);
      return;
    case PacketType::kNeighborQuery:
      handle_neighbor_query(pkt);
      return;
    case PacketType::kPunchRequest:
      handle_punch_request(pkt);
      return;
    case PacketType::kPing:
      // Echo the payload back.  The response adopts the request's payload
      // bytes; since the request packet is still alive here, the header
      // prepend takes the copy-on-shared path exactly once (ownership
      // rule 2) instead of corrupting the request's wire image.
      respond(pkt, PacketType::kPingResponse, pkt.share_payload());
      return;
    default:
      break;
  }
  auto it = handlers_.find(pkt.type);
  if (it != handlers_.end() && it->second) {
    it->second(pkt);
  }
}

void BrunetNode::set_handler(PacketType type, PacketHandler handler) {
  handlers_[type] = std::move(handler);
}

void BrunetNode::request(Address dst, PacketType type, RoutingMode mode,
                         std::vector<std::uint8_t> payload,
                         ResponseCallback cb) {
  const std::uint32_t id = next_msg_id();
  PendingRequest pr;
  pr.cb = std::move(cb);
  pr.timer = host_.loop().schedule_after(cfg_.request_timeout, [this, id] {
    auto it = pending_requests_.find(id);
    if (it == pending_requests_.end()) return;
    auto cb2 = std::move(it->second.cb);
    pending_requests_.erase(it);
    if (cb2) cb2(std::nullopt);
  });
  pending_requests_.emplace(id, std::move(pr));
  send(Destination::unicast(dst, mode),
       OutboundFrame(type, std::move(payload), id));
}

void BrunetNode::respond(const Packet& req, PacketType type,
                         util::Buffer payload) {
  send(Destination::unicast(req.src),
       OutboundFrame(type, std::move(payload), req.msg_id));
}

void BrunetNode::respond(const Packet& req, PacketType type,
                         std::vector<std::uint8_t> payload) {
  respond(req, type, util::Buffer::wrap(std::move(payload)));
}

// ---------------------------------------------------------------------------
// Link handshake
// ---------------------------------------------------------------------------

void BrunetNode::send_link_request(const std::shared_ptr<Edge>& edge,
                                   ConnectionType type) {
  Packet pkt;
  pkt.type = PacketType::kLinkRequest;
  pkt.src = addr_;
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  NodeInfo{addr_, local_addresses()}.encode(w);
  edge->remote().encode(w);  // "this is where I believe you are"
  pkt.set_payload(w.take());
  edge->send(pkt.take_wire(send_headroom_));
}

void BrunetNode::handle_link_request(const std::shared_ptr<Edge>& edge,
                                     const Packet& pkt) {
  ConnectionType type;
  NodeInfo sender;
  TransportAddress my_observed;
  try {
    util::ByteReader r(pkt.payload());
    type = static_cast<ConnectionType>(r.u8());
    sender = NodeInfo::decode(r);
    my_observed = TransportAddress::decode(r);
  } catch (const util::ParseError&) {
    return;
  }
  record_observed(my_observed);
  Connection conn;
  conn.addr = sender.addr;
  conn.edge = edge;
  conn.type = type;
  conn.advertised = sender.addrs;
  conn.peer_requested_near = (type == ConnectionType::kStructuredNear);
  auto link = linking_.find(sender.addr);
  // The inbound request won a link we were dialing ourselves: if our
  // first round had already failed and a punch exchange was in flight,
  // this is the punched simultaneous open, not plain reachability.
  conn.punched = link != linking_.end() && link->second.punch_sent &&
                 link->second.round >= 1;
  table_.add(conn);
  ++stats_.edges_opened;
  if (conn.punched) ++stats_.links_punched;
  if (edge->remote().proto == TransportAddress::Proto::kRelay) {
    ++stats_.links_relayed;
  }
  if (link != linking_.end()) {
    if (link->second.timer != 0) host_.loop().cancel(link->second.timer);
    linking_.erase(link);
  }
  // Identify ourselves back; tell the peer where we see it.
  Packet resp;
  resp.type = PacketType::kLinkResponse;
  resp.src = addr_;
  resp.dst = sender.addr;
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  NodeInfo{addr_, local_addresses()}.encode(w);
  edge->remote().encode(w);
  resp.set_payload(w.take());
  edge->send(resp.take_wire(send_headroom_));
  IPOP_LOG_DEBUG(addr_.short_hex() << ": accepted link from "
                                   << sender.addr.short_hex() << " ("
                                   << connection_type_name(type) << ")");
}

void BrunetNode::handle_link_response(const std::shared_ptr<Edge>& edge,
                                      const Packet& pkt) {
  ConnectionType type;
  NodeInfo sender;
  TransportAddress my_observed;
  try {
    util::ByteReader r(pkt.payload());
    type = static_cast<ConnectionType>(r.u8());
    sender = NodeInfo::decode(r);
    my_observed = TransportAddress::decode(r);
  } catch (const util::ParseError&) {
    return;
  }
  record_observed(my_observed);
  bool punched = false;
  auto link = linking_.find(sender.addr);
  if (link != linking_.end()) {
    type = link->second.type;
    // A response on the very first dial round means the target was
    // plainly reachable; success on a later round with a punch exchange
    // in flight means the hole punch opened the path.
    punched = link->second.punch_sent && link->second.round >= 2;
    if (link->second.timer != 0) host_.loop().cancel(link->second.timer);
    linking_.erase(link);
  }
  Connection conn;
  conn.addr = sender.addr;
  conn.edge = edge;
  conn.type = type;
  conn.advertised = sender.addrs;
  conn.punched = punched;
  table_.add(conn);
  ++stats_.edges_opened;
  if (punched) ++stats_.links_punched;
  if (edge->remote().proto == TransportAddress::Proto::kRelay) {
    ++stats_.links_relayed;
  }
  IPOP_LOG_DEBUG(addr_.short_hex() << ": link established to "
                                   << sender.addr.short_hex());
}

void BrunetNode::handle_edge_ping(const std::shared_ptr<Edge>& edge,
                                  const Packet& pkt) {
  if (!pkt.payload().empty()) {
    try {
      util::ByteReader r(pkt.payload());
      NodeInfo info = NodeInfo::decode(r);
      // Refresh the peer's advertised endpoints (it may have just learned
      // its translated address).
      Connection conn;
      conn.addr = info.addr;
      conn.edge = edge;
      conn.advertised = info.addrs;
      table_.add(conn);
    } catch (const util::ParseError&) {
    }
  }
  Packet pong;
  pong.type = PacketType::kEdgePong;
  pong.src = addr_;
  pong.dst = pkt.src;
  util::ByteWriter w;
  edge->remote().encode(w);
  pong.set_payload(w.take());
  edge->send(pong.take_wire(send_headroom_));
}

void BrunetNode::handle_edge_pong(const std::shared_ptr<Edge>& /*edge*/,
                                  const Packet& pkt) {
  try {
    util::ByteReader r(pkt.payload());
    record_observed(TransportAddress::decode(r));
  } catch (const util::ParseError&) {
  }
}

void BrunetNode::handle_departing(const std::shared_ptr<Edge>& edge,
                                  const Packet& pkt) {
  NodeInfo sender;
  std::vector<NodeInfo> neighbors;
  std::size_t body_size = 0;
  bool signed_notice = false;
  try {
    util::ByteReader r(pkt.payload());
    sender = NodeInfo::decode(r);
    const std::uint8_t n = r.u8();
    for (std::uint8_t i = 0; i < n; ++i) {
      neighbors.push_back(NodeInfo::decode(r));
    }
    body_size = pkt.payload().size() - r.remaining();
    // Trailing pubkey(32) + signature(64) from a key-addressed departer.
    // The signature covers (claimed address || body), and the key must
    // *derive* the claimed address — otherwise any node could sign an
    // eviction notice for any ring position with its own perfectly valid
    // key.
    if (r.remaining() == 32 + 64) {
      util::crypto::PublicKey pk;
      auto pk_bytes = r.bytes(32);
      std::copy(pk_bytes.begin(), pk_bytes.end(), pk.bytes.begin());
      util::crypto::Signature sig;
      auto sig_bytes = r.bytes(64);
      std::copy(sig_bytes.begin(), sig_bytes.end(), sig.bytes.begin());
      std::vector<std::uint8_t> msg;
      msg.reserve(Address::kBytes + body_size);
      msg.insert(msg.end(), sender.addr.bytes().begin(),
                 sender.addr.bytes().end());
      const auto body = pkt.payload().subview(0, body_size);
      msg.insert(msg.end(), body.data(), body.data() + body.size());
      if (Address::from_public_key(pk) != sender.addr ||
          !util::crypto::verify(pk, msg, sig)) {
        ++stats_.departures_rejected;
        return;
      }
      signed_notice = true;
    }
  } catch (const util::ParseError&) {
    return;
  }
  if (cfg_.require_signed_departures && !signed_notice) {
    ++stats_.departures_rejected;
    return;
  }
  ++stats_.departures_seen;
  IPOP_LOG_DEBUG(addr_.short_hex() << ": peer " << sender.addr.short_hex()
                                   << " is departing gracefully");
  if (table_.contains(sender.addr)) {
    ++stats_.edges_closed;
    evict_connection(sender.addr);
  }
  edges_.erase(edge.get());
  edge->close();
  // The departed node handed us its neighborhood: link to whoever should
  // now be our ring neighbor so the gap closes without a repair cycle.
  consider_candidates(neighbors);
}

// ---------------------------------------------------------------------------
// Linker (connection establishment, NAT traversal)
// ---------------------------------------------------------------------------

namespace {
/// Merge dialable candidates into an attempt: relay pseudo-addresses are
/// never dialable, and same-protocol endpoints are preferred — only a
/// peer offering none falls back to its own protocol (the bootstrap
/// cross-proto rule, now applied to every ring link).  Returns true when
/// the merge had to fall back.
bool merge_candidates(std::vector<TransportAddress>& into,
                      const std::vector<TransportAddress>& candidates,
                      TransportAddress::Proto native) {
  bool have_native = false;
  for (const auto& ta : candidates) {
    if (ta.proto == native) {
      have_native = true;
      break;
    }
  }
  for (const auto& ta : candidates) {
    if (ta.proto == TransportAddress::Proto::kRelay) continue;
    if (have_native && ta.proto != native) continue;
    if (std::find(into.begin(), into.end(), ta) == into.end()) {
      into.push_back(ta);
    }
  }
  return !have_native && !candidates.empty();
}
}  // namespace

void BrunetNode::connect_to(const Address& target,
                            const std::vector<TransportAddress>& candidates,
                            ConnectionType type,
                            const std::vector<NodeInfo>& via_hints) {
  if (!started_ || target == addr_) return;
  if (const Connection* existing = table_.find(target)) {
    // Already connected: upgrade the classification if needed.
    Connection upgrade;
    upgrade.addr = target;
    upgrade.edge = existing->edge;
    upgrade.type = type;
    table_.add(upgrade);
    return;
  }
  auto merge_hints = [](LinkAttempt& a, const std::vector<NodeInfo>& hints) {
    for (const auto& h : hints) {
      const bool known = std::any_of(
          a.relay_candidates.begin(), a.relay_candidates.end(),
          [&](const NodeInfo& r) { return r.addr == h.addr; });
      if (!known) a.relay_candidates.push_back(h);
    }
  };
  auto [it, inserted] = linking_.try_emplace(target);
  if (!inserted) {
    // Attempt already running — still fold in fresh relay hints (a
    // re-probing joiner may have gained reachable neighbors since).
    merge_hints(it->second, via_hints);
    return;
  }
  ++stats_.links_started;
  LinkAttempt& attempt = it->second;
  attempt.type = type;
  attempt.attempts_left = cfg_.link_attempts;
  merge_hints(attempt, via_hints);
  if (merge_candidates(attempt.candidates, candidates, cfg_.transport)) {
    ++stats_.links_cross_proto;
  }
  if (attempt.candidates.empty()) {
    linking_.erase(it);
    return;
  }
  link_retry_tick(target);
  // Rendezvous through the overlay: tell the target to dial us back so
  // both NATs see outbound traffic (simultaneous open, Section III-D) —
  // and to report its NAT class and neighbors (our relay candidates).
  // Needs a routable table; a joining node's first links skip it.
  if (table_.size() > 0 && linking_.find(target) != linking_.end()) {
    send_punch_request(target);
  }
}

void BrunetNode::link_retry_tick(Address target) {
  auto it = linking_.find(target);
  if (it == linking_.end() || !started_) return;
  LinkAttempt& attempt = it->second;
  attempt.timer = 0;
  if (table_.contains(target)) {
    linking_.erase(it);
    return;
  }
  if (attempt.attempts_left-- <= 0) {
    // Dialing is spent.  Before giving up, tunnel the handshake through
    // a mutual neighbor: symmetric↔symmetric pairs can never punch, and
    // an exhausted cone pair gets one relay try too.
    if (!attempt.relay_tried && start_relay(target, attempt)) {
      attempt.relay_tried = true;
      attempt.attempts_left = 2;  // rounds for the handshake over the tunnel
      attempt.timer = host_.loop().schedule_after(
          cfg_.link_retry, [this, alive = alive_.guard(), target] {
            if (!alive) return;
            link_retry_tick(target);
          });
      return;
    }
    IPOP_LOG_DEBUG(addr_.short_hex() << ": link to " << target.short_hex()
                                     << " failed (no response)");
    ++stats_.links_failed;
    linking_.erase(it);
    return;
  }
  ++attempt.round;
  const ConnectionType type = attempt.type;
  for (const auto& ta : attempt.candidates) {
    // A NATed node advertises its private endpoints too; our copy of
    // that private address is our *own* socket (every private LAN looks
    // alike) — dialing it would handshake with ourselves.
    if (host_.stack().is_local_ip(ta.ip) && ta.port == cfg_.port) continue;
    if (ta.proto == TransportAddress::Proto::kUdp) {
      auto edge = ensure_udp()->edge_to(ta.ip, ta.port);
      if (edges_.find(edge.get()) == edges_.end()) adopt_edge(edge);
      send_link_request(edge, type);
    } else {
      ensure_tcp()->connect(
          ta.ip, ta.port, [this, target, type](std::shared_ptr<Edge> edge) {
            if (edge == nullptr || !started_) return;
            if (linking_.find(target) == linking_.end() &&
                table_.contains(target)) {
              edge->close();  // race: already linked elsewhere
              return;
            }
            adopt_edge(edge);
            send_link_request(edge, type);
          });
    }
  }
  // Per-NAT-type pacing: against a symmetric endpoint every retry lands
  // on a fresh mapping, so rapid-fire probing burns attempts without
  // widening coverage — stretch the interval linearly instead and give
  // the punched dial-back time to arrive.
  Duration delay = cfg_.link_retry;
  if (nat_class_ == NatClass::kSymmetric ||
      attempt.peer_nat == NatClass::kSymmetric) {
    delay = cfg_.link_retry * attempt.round;
  }
  attempt.timer = host_.loop().schedule_after(
      delay, [this, alive = alive_.guard(), target] {
        if (!alive) return;
        link_retry_tick(target);
      });
}

// ---------------------------------------------------------------------------
// NAT traversal: hole punching + relay fallback
// ---------------------------------------------------------------------------

void BrunetNode::send_punch_request(const Address& target) {
  auto it = linking_.find(target);
  if (it == linking_.end()) return;
  it->second.punch_sent = true;
  ++stats_.punch_requests_sent;
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(it->second.type));
  w.u8(static_cast<std::uint8_t>(nat_class_));
  NodeInfo{addr_, local_addresses()}.encode(w);
  request(target, PacketType::kPunchRequest, RoutingMode::kExact, w.take(),
          [this, target](std::optional<Packet> resp) {
            on_punch_response(target, std::move(resp));
          });
}

void BrunetNode::handle_punch_request(const Packet& pkt) {
  ConnectionType type;
  NatClass requester_nat;
  NodeInfo requester;
  try {
    util::ByteReader r(pkt.payload());
    type = static_cast<ConnectionType>(r.u8());
    requester_nat = static_cast<NatClass>(r.u8());
    requester = NodeInfo::decode(r);
  } catch (const util::ParseError&) {
    return;
  }
  ++stats_.punch_requests;
  // Dial back: our outbound probes open our NAT toward the requester
  // while its own probes open the reverse path — whichever direction a
  // NAT admits first brings the edge up.  Idempotent via linking_, which
  // also terminates the request ping-pong (our connect_to's punch
  // request finds the requester already linking toward us).
  connect_to(requester.addr, requester.addrs, type);
  if (auto it = linking_.find(requester.addr); it != linking_.end()) {
    it->second.peer_nat = requester_nat;
  }
  // Answer with our NAT class and neighbors: if neither side's probes
  // land, the requester picks its relay from this set.
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(nat_class_));
  NodeInfo{addr_, local_addresses()}.encode(w);
  encode_node_infos(w, neighbor_infos(cfg_.near_per_side));
  respond(pkt, PacketType::kPunchResponse, w.take());
}

void BrunetNode::on_punch_response(const Address& target,
                                   std::optional<Packet> resp) {
  if (!resp) return;
  ++stats_.punch_responses;
  NatClass peer_nat;
  NodeInfo peer;
  std::vector<NodeInfo> relays;
  try {
    util::ByteReader r(resp->payload());
    peer_nat = static_cast<NatClass>(r.u8());
    peer = NodeInfo::decode(r);
    const std::uint8_t n = r.u8();
    for (std::uint8_t i = 0; i < n; ++i) {
      relays.push_back(NodeInfo::decode(r));
    }
  } catch (const util::ParseError&) {
    return;
  }
  auto it = linking_.find(target);
  if (it == linking_.end()) return;  // already linked (or given up)
  LinkAttempt& attempt = it->second;
  attempt.peer_nat = peer_nat;
  attempt.relay_candidates = std::move(relays);
  merge_candidates(attempt.candidates, peer.addrs, cfg_.transport);
  if (nat_class_ == NatClass::kSymmetric &&
      peer_nat == NatClass::kSymmetric) {
    // Hopeless pairing: both sides mint per-destination mappings, so no
    // advertised endpoint will ever match a probe.  Skip the remaining
    // dial rounds and relay now.
    if (attempt.timer != 0) {
      host_.loop().cancel(attempt.timer);
      attempt.timer = 0;
    }
    attempt.attempts_left = 0;
    link_retry_tick(target);
  }
}

bool BrunetNode::start_relay(const Address& target, LinkAttempt& attempt) {
  if (auto existing = relay_edges_.find(target);
      existing != relay_edges_.end() && existing->second->is_up()) {
    send_link_request(existing->second, attempt.type);
    return true;
  }
  // Pick the relay R: a node adjacent to the target (its neighbor set
  // from the punch response) that we hold a *direct* edge to — relays
  // only forward over non-relay edges, which bounds tunnel nesting at
  // one layer.  Deterministic min-address pick; the runner-up is armed
  // as the failover backup so a dying carrier swaps vias instead of
  // re-running the linker.
  const Connection* via = nullptr;
  const Connection* backup = nullptr;
  for (const auto& info : attempt.relay_candidates) {
    if (info.addr == addr_ || info.addr == target) continue;
    const Connection* c = table_.find(info.addr);
    if (c == nullptr || c->edge == nullptr || !c->edge->is_up()) continue;
    if (c->edge->remote().proto == TransportAddress::Proto::kRelay) continue;
    if (via == nullptr || c->addr < via->addr) {
      backup = via;
      via = c;
    } else if (backup == nullptr || c->addr < backup->addr) {
      backup = c;
    }
  }
  if (via == nullptr) {
    // No punch response made it back (or no mutual neighbor): fall back
    // to our direct connection ring-closest to the target, which on a
    // converging ring is very likely the target's neighbor.
    table_.for_each([&](const Connection& c) {
      if (c.addr == target || c.edge == nullptr || !c.edge->is_up()) return;
      if (c.edge->remote().proto == TransportAddress::Proto::kRelay) return;
      if (via == nullptr || Address::closer(target, c.addr, via->addr)) {
        backup = via;
        via = &c;
      } else if (backup == nullptr ||
                 Address::closer(target, c.addr, backup->addr)) {
        backup = &c;
      }
    });
  }
  if (via == nullptr) return false;
  IPOP_LOG_DEBUG(addr_.short_hex() << ": relaying link to "
                                   << target.short_hex() << " via "
                                   << via->addr.short_hex());
  auto re = std::make_shared<RelayEdge>(addr_, target, via->addr, via->edge,
                                        &stats_.relay_wrap_bytes_copied);
  if (backup != nullptr) re->arm_backup(backup->addr);
  adopt_edge(re);
  relay_edges_[target] = re;
  ++stats_.relay_edges;
  send_link_request(re, attempt.type);
  return true;
}

bool BrunetNode::failover_relay(const std::shared_ptr<RelayEdge>& re) {
  const Address& backup = re->backup_relay();
  if (backup == Address{}) return false;
  const Connection* c = table_.find(backup);
  if (c == nullptr || c->edge == nullptr || !c->edge->is_up() ||
      c->edge->remote().proto == TransportAddress::Proto::kRelay) {
    return false;
  }
  IPOP_LOG_DEBUG(addr_.short_hex()
                 << ": relay to " << re->peer().short_hex()
                 << " failing over via " << backup.short_hex());
  re->swap_via(c->edge, c->addr);
  ++stats_.relay_failovers;
  return true;
}

void BrunetNode::handle_relay_forward(const std::shared_ptr<Edge>& edge,
                                      Packet pkt) {
  if (pkt.hops >= pkt.ttl) {
    ++stats_.relay_drop_no_route;
    return;
  }
  ++pkt.hops;
  const Connection* c = table_.find(pkt.dst);
  if (c == nullptr || c->edge == nullptr || !c->edge->is_up() ||
      c->edge->remote().proto == TransportAddress::Proto::kRelay) {
    // Forwarding only over a direct edge keeps tunnels one layer deep
    // (no wrap-in-wrap recursion between mutually relaying nodes).
    ++stats_.relay_drop_no_route;
    return;
  }
  ++stats_.relay_forwarded;
  const auto now = host_.loop().now();
  relay_via_activity_[edge.get()] = now;
  relay_via_activity_[c->edge.get()] = now;
  // The relay's forward is a one-byte type patch on the arriving wire
  // image (plus the hop-count patch take_wire() always does): the same
  // buffer goes out on the direct edge to the tunnel target — zero bytes
  // copied, zero bytes allocated here.
  auto wire = pkt.take_wire();
  wire.patch_u8(0, static_cast<std::uint8_t>(PacketType::kRelayDeliver));
  c->edge->send(std::move(wire));
}

void BrunetNode::handle_relay_deliver(const std::shared_ptr<Edge>& edge,
                                      const Packet& pkt) {
  if (pkt.dst != addr_) return;  // misdelivered wrapper
  std::shared_ptr<RelayEdge> re;
  if (auto it = relay_edges_.find(pkt.src);
      it != relay_edges_.end() && it->second->is_up()) {
    re = it->second;
    // Opportunistic backup arming (the responder-side mirror of the
    // initiator's link-time pick): a wrapped frame arriving over a
    // different direct edge proves that edge's owner can also relay for
    // this peer — e.g. after the peer failed over, its frames come
    // through the new relay before our old carrier even times out.
    if (edge.get() != re->via().get()) {
      if (const Connection* rc = table_.find_by_edge(edge.get())) {
        re->arm_backup(rc->addr);
      }
    }
  } else {
    // First wrapped frame from this tunnel peer: materialize our end of
    // the tunnel over the edge it arrived on (the relay's direct edge to
    // us), so the handshake — and everything after — has a real Edge to
    // ride.
    Address relay_addr;
    if (const Connection* rc = table_.find_by_edge(edge.get())) {
      relay_addr = rc->addr;
    }
    re = std::make_shared<RelayEdge>(addr_, pkt.src, relay_addr, edge,
                                     &stats_.relay_wrap_bytes_copied);
    adopt_edge(re);
    relay_edges_[pkt.src] = re;
    ++stats_.relay_edges;
  }
  // The inner frame shares the wrapper's storage: unwrapping is a
  // 48-byte offset, not a copy — and refunds exactly the headroom the
  // next node on a reply path would need.
  re->deliver_inner(host_.loop().now(), pkt.share_payload());
}

// ---------------------------------------------------------------------------
// Ring maintenance
// ---------------------------------------------------------------------------

void BrunetNode::maintenance_tick() {
  if (!started_) return;
  bootstrap();
  ++maintenance_ticks_;
  if (table_.size() > 0) {
    // Locate while the near set is thin — but also periodically after it
    // fills.  reclassify() marks the table's nearest entries near whether
    // or not they are the *true* ring neighbors, so after a mass join a
    // node can look saturated while sitting in the wrong ring position;
    // stabilize()'s neighbor-of-neighbor window then closes the gap only
    // one position per round.  The routed locate probe jumps straight to
    // the node currently closest to us (greedy over shortcuts), giving
    // O(log n) convergence instead of O(gap).
    if (table_.count(ConnectionType::kStructuredNear) <
            2 * cfg_.near_per_side ||
        maintenance_ticks_ % 4 == 0) {
      locate_ring_position();
    }
    // Partition healing: table-routed probes cannot escape a clique that
    // closed over itself, so periodically inject one through the seed
    // set (see probe_via_seed).  The jittered tick spreads these out, so
    // the seed sees O(n / 16 ticks) probe traffic, each one greedy-routed
    // onward at O(log n) cost.
    if (maintenance_ticks_ % 16 == 0) probe_via_seed();
    stabilize();
    table_.reclassify(cfg_.near_per_side);
    maintain_shortcuts();
    trim_connections();
  }
  keepalive();
  // Jittered periodic tick keeps nodes from synchronizing.
  const double jitter = 0.9 + 0.2 * host_.stack().rng().uniform();
  const auto interval = util::Duration{static_cast<std::int64_t>(
      static_cast<double>(cfg_.maintenance_interval.count()) * jitter)};
  maintenance_timer_ =
      host_.loop().schedule_after(interval, [this] { maintenance_tick(); });
}

UdpTransport* BrunetNode::ensure_udp() {
  if (udp_ == nullptr) {
    udp_ = std::make_unique<UdpTransport>(host_, cfg_.port);
    udp_->set_inbound_handler(
        [this](std::shared_ptr<Edge> e) { adopt_edge(e); });
  }
  return udp_.get();
}

TcpTransport* BrunetNode::ensure_tcp() {
  if (tcp_ == nullptr) {
    tcp_ = std::make_unique<TcpTransport>(host_, cfg_.port);
    tcp_->set_inbound_handler(
        [this](std::shared_ptr<Edge> e) { adopt_edge(e); });
  }
  return tcp_.get();
}

void BrunetNode::bootstrap() {
  if (table_.size() > 0 || seeds_.empty()) return;
  for (const auto& seed : seeds_) {
    // Do not dial ourselves.
    if (host_.stack().is_local_ip(seed.ip) && seed.port == cfg_.port) continue;
    // A seed whose protocol differs from our configured transport is still
    // dialable: bring up the matching transport lazily and bootstrap
    // through it (a UDP node handed only TCP seeds must not spin forever).
    if (seed.proto != cfg_.transport) ++stats_.bootstrap_cross_proto;
    if (seed.proto == TransportAddress::Proto::kUdp) {
      auto edge = ensure_udp()->edge_to(seed.ip, seed.port);
      if (edges_.find(edge.get()) == edges_.end()) adopt_edge(edge);
      send_link_request(edge, ConnectionType::kLeaf);
    } else {
      ensure_tcp()->connect(seed.ip, seed.port,
                            [this](std::shared_ptr<Edge> edge) {
                              if (edge == nullptr || !started_) return;
                              adopt_edge(edge);
                              send_link_request(edge, ConnectionType::kLeaf);
                            });
    }
  }
}

void BrunetNode::locate_ring_position() {
  const Connection* via = table_.closest_to(addr_);
  if (via == nullptr) return;
  send_locate_probe(via->edge);
}

// Route one locate probe through a bootstrap seed instead of our own
// table.  A mass join can strand small cliques whose connection tables
// point only at each other: every table-routed probe then circulates
// inside the clique and the partition is stable forever.  The seed set is
// the one rendezvous all partitions share, so a probe injected there is
// routed within the seed's partition and lands at our true ring
// neighbor, whose dial-back merges the components.
void BrunetNode::probe_via_seed() {
  if (seeds_.empty()) return;
  auto& rng = host_.stack().rng();
  const auto pick =
      static_cast<std::size_t>(rng.uniform_int(0, seeds_.size() - 1));
  for (std::size_t i = 0; i < seeds_.size(); ++i) {
    const auto& seed = seeds_[(pick + i) % seeds_.size()];
    if (host_.stack().is_local_ip(seed.ip) && seed.port == cfg_.port) continue;
    // Cross-protocol seeds are as good a rendezvous as native ones: dial
    // through whichever transport matches (lazily created, same as
    // bootstrap).
    if (seed.proto == TransportAddress::Proto::kUdp) {
      auto edge = ensure_udp()->edge_to(seed.ip, seed.port);
      if (edges_.find(edge.get()) == edges_.end()) adopt_edge(edge);
      send_locate_probe(edge);
    } else {
      ensure_tcp()->connect(seed.ip, seed.port,
                            [this](std::shared_ptr<Edge> edge) {
                              if (edge == nullptr || !started_) return;
                              adopt_edge(edge);
                              send_locate_probe(edge);
                            });
    }
    return;
  }
}

void BrunetNode::send_locate_probe(const std::shared_ptr<Edge>& via) {
  const std::uint32_t id = next_msg_id();
  PendingRequest pr;
  pr.cb = [this](std::optional<Packet> resp) {
    if (!resp) return;
    ++stats_.locate_responses;
    try {
      util::ByteReader r(resp->payload());
      NodeInfo closest = NodeInfo::decode(r);
      const std::uint8_t n = r.u8();
      std::vector<NodeInfo> infos{closest};
      for (std::uint8_t i = 0; i < n; ++i) {
        infos.push_back(NodeInfo::decode(r));
      }
      consider_candidates(infos);
    } catch (const util::ParseError&) {
    }
  };
  pr.timer = host_.loop().schedule_after(cfg_.request_timeout, [this, id] {
    auto it = pending_requests_.find(id);
    if (it == pending_requests_.end()) return;
    auto cb = std::move(it->second.cb);
    pending_requests_.erase(it);
    if (cb) cb(std::nullopt);
  });
  pending_requests_.emplace(id, std::move(pr));

  // Routed toward our own address; first hop is forced outward so the
  // packet reaches the node currently closest to our ring position.
  Packet pkt;
  pkt.type = PacketType::kConnectRequest;
  pkt.mode = RoutingMode::kClosest;
  pkt.ttl = cfg_.default_ttl;
  pkt.hops = 1;
  pkt.msg_id = id;
  pkt.src = addr_;
  pkt.dst = addr_;
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ConnectionType::kStructuredNear));
  NodeInfo{addr_, local_addresses()}.encode(w);
  // Reachable-via hints: until we are ring-linked, a responder can reach
  // us neither by routed punch request (exact routing drops at our
  // would-be neighbor) nor by dialing our NATed endpoints — but it can
  // tunnel a link request through any node we already hold an edge to
  // (the bootstrap seed, at minimum).
  encode_node_infos(w, direct_edge_hints());
  pkt.set_payload(w.take());
  ++stats_.originated;
  via->send(pkt.take_wire(send_headroom_));
}

std::vector<NodeInfo> BrunetNode::direct_edge_hints() const {
  std::vector<NodeInfo> hints;
  hints.reserve(4);
  table_.for_each([&](const Connection& c) {
    if (hints.size() >= 4) return;
    if (c.edge == nullptr || !c.edge->is_up()) return;
    if (c.edge->remote().proto == TransportAddress::Proto::kRelay) return;
    hints.push_back(NodeInfo{c.addr, {}});
  });
  return hints;
}

void BrunetNode::handle_connect_request(const Packet& pkt) {
  ConnectionType type;
  NodeInfo requester;
  std::vector<NodeInfo> via_hints;
  try {
    util::ByteReader r(pkt.payload());
    type = static_cast<ConnectionType>(r.u8());
    requester = NodeInfo::decode(r);
    // Optional trailing reachable-via hint list (locate probes from
    // NATed joiners; requests from older senders simply end here).
    if (r.remaining() > 0) {
      const std::uint8_t n = r.u8();
      via_hints.reserve(n);
      for (std::uint8_t i = 0; i < n; ++i) {
        via_hints.push_back(NodeInfo::decode(r));
      }
    }
  } catch (const util::ParseError&) {
    return;
  }
  ++stats_.connect_requests;
  connect_to(requester.addr, requester.addrs, type, via_hints);
  // Answer with our identity and our current neighborhood so the joiner
  // discovers its true ring neighbors (double-width window, matching
  // handle_neighbor_query, so a misplaced joiner reaches further per
  // round).
  util::ByteWriter w;
  NodeInfo{addr_, local_addresses()}.encode(w);
  encode_node_infos(w, neighbor_infos(2 * cfg_.near_per_side));
  respond(pkt, PacketType::kConnectResponse, w.take());
}

void BrunetNode::stabilize() {
  for (bool left : {false, true}) {
    const Connection* c = left ? table_.left_neighbor() : table_.right_neighbor();
    if (c == nullptr) continue;
    request(c->addr, PacketType::kNeighborQuery, RoutingMode::kExact,
            {}, [this](std::optional<Packet> resp) {
              if (!resp) return;
              try {
                util::ByteReader r(resp->payload());
                const std::uint8_t n = r.u8();
                std::vector<NodeInfo> infos;
                infos.reserve(n);
                for (std::uint8_t i = 0; i < n; ++i) {
                  infos.push_back(NodeInfo::decode(r));
                }
                consider_candidates(infos);
              } catch (const util::ParseError&) {
              }
            });
  }
}

void BrunetNode::handle_neighbor_query(const Packet& pkt) {
  util::ByteWriter w;
  // Self goes first: it is the one entry the querier cannot learn
  // elsewhere, so the 255-entry clamp must never be able to cut it.
  // Answer with twice the near window: a repairing querier whose true
  // neighbor sits just outside our own near set still discovers it, which
  // doubles the per-round repair reach after correlated joins.
  std::vector<NodeInfo> infos{NodeInfo{addr_, local_addresses()}};
  for (auto& info : neighbor_infos(2 * cfg_.near_per_side)) {
    infos.push_back(std::move(info));
  }
  encode_node_infos(w, infos);
  respond(pkt, PacketType::kNeighborReply, w.take());
}

std::vector<NodeInfo> BrunetNode::neighbor_infos(std::size_t k) const {
  std::vector<NodeInfo> out;
  auto add = [&](const Connection& c) {
    for (const auto& existing : out) {
      if (existing.addr == c.addr) return;
    }
    NodeInfo info;
    info.addr = c.addr;
    info.addrs = c.advertised;
    // The endpoint we actually talk to is dialable for cone NATs; gossip
    // it alongside whatever the peer advertised.  A relayed neighbor's
    // live endpoint is a tunnel pseudo-address — meaningless to anyone
    // else, so only its advertised set goes out.
    const auto live = c.edge->remote();
    if (live.proto != TransportAddress::Proto::kRelay &&
        std::find(info.addrs.begin(), info.addrs.end(), live) ==
            info.addrs.end()) {
      info.addrs.push_back(live);
    }
    out.push_back(std::move(info));
  };
  table_.for_each_left(k, add);
  table_.for_each_right(k, add);
  return out;
}

void BrunetNode::consider_candidates(const std::vector<NodeInfo>& infos) {
  for (const auto& info : infos) {
    if (info.addr == addr_ || table_.contains(info.addr)) continue;
    if (should_be_near(info.addr)) {
      connect_to(info.addr, info.addrs, ConnectionType::kStructuredNear);
    }
  }
}

bool BrunetNode::should_be_near(const Address& candidate) const {
  const auto right_d = Address::directed_distance(addr_, candidate);
  const auto left_d = Address::directed_distance(candidate, addr_);
  std::size_t closer_right = 0;
  std::size_t closer_left = 0;
  table_.for_each([&](const Connection& c) {
    if (compare_bytes(Address::directed_distance(addr_, c.addr), right_d) < 0) {
      ++closer_right;
    }
    if (compare_bytes(Address::directed_distance(c.addr, addr_), left_d) < 0) {
      ++closer_left;
    }
  });
  return closer_right < cfg_.near_per_side || closer_left < cfg_.near_per_side;
}

void BrunetNode::maintain_shortcuts() {
  if (table_.count(ConnectionType::kStructuredFar) >= cfg_.shortcut_target) {
    return;
  }
  if (table_.size() < 2) return;  // too small for shortcuts to matter
  // Kleinberg-flavoured target: distance ~ 2^bit with bit uniform, giving
  // a 1/d density over the ring.
  auto& rng = host_.stack().rng();
  const int bit = static_cast<int>(rng.uniform_int(16, 158));
  Address target = addr_.offset_by_pow2(bit);
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ConnectionType::kStructuredFar));
  NodeInfo{addr_, local_addresses()}.encode(w);
  request(target, PacketType::kConnectRequest, RoutingMode::kClosest, w.take(),
          [this](std::optional<Packet> resp) {
            if (!resp) return;
            try {
              util::ByteReader r(resp->payload());
              NodeInfo closest = NodeInfo::decode(r);
              const std::uint8_t n = r.u8();
              std::vector<NodeInfo> infos{closest};
              for (std::uint8_t i = 0; i < n; ++i) {
                infos.push_back(NodeInfo::decode(r));
              }
              consider_candidates(infos);
            } catch (const util::ParseError&) {
            }
          });
}

void BrunetNode::request_connection(const Address& target,
                                    ConnectionType type) {
  if (!started_ || target == addr_ || table_.contains(target)) return;
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  NodeInfo{addr_, local_addresses()}.encode(w);
  request(target, PacketType::kConnectRequest, RoutingMode::kExact, w.take(),
          [this, type](std::optional<Packet> resp) {
            if (!resp) return;
            try {
              util::ByteReader r(resp->payload());
              NodeInfo peer = NodeInfo::decode(r);
              connect_to(peer.addr, peer.addrs, type);
            } catch (const util::ParseError&) {
            }
          });
}

void BrunetNode::trim_connections() {
  // A mature node keeps: its near connections, up to shortcut_target far
  // links, and any link the peer requested as near.  Everything else is
  // join-time debris; closing it keeps the overlay sparse so routing is
  // genuinely multi-hop at scale (as in the real Brunet deployments).
  if (table_.count(ConnectionType::kStructuredNear) <
      2 * cfg_.near_per_side) {
    return;  // ring not saturated yet: keep everything
  }
  // Copy candidates by value: removals below reshuffle the table.
  struct Victim {
    Address addr;
    std::shared_ptr<Edge> edge;
  };
  std::vector<Victim> trimmable;
  const auto now = host_.loop().now();
  auto carries_tunnel = [&](const std::shared_ptr<Edge>& e) {
    // Our own tunnels' carriers are load-bearing however the connection
    // is classified...
    for (const auto& [peer, re] : relay_edges_) {
      if (re->via() == e) return true;
    }
    // ...and so are edges recently forwarding someone *else's* tunnel
    // through us (we are their R; cutting the edge cuts their link).
    auto a = relay_via_activity_.find(e.get());
    return a != relay_via_activity_.end() && now - a->second < cfg_.edge_timeout;
  };
  table_.for_each([&](const Connection& c) {
    if (c.type == ConnectionType::kStructuredNear) return;
    if (c.type == ConnectionType::kTrafficShortcut) return;
    if (c.peer_requested_near) return;
    if (carries_tunnel(c.edge)) return;
    trimmable.push_back({c.addr, c.edge});
  });
  if (trimmable.size() <= cfg_.shortcut_target) return;
  std::sort(trimmable.begin(), trimmable.end(),
            [](const Victim& a, const Victim& b) {
              return a.edge->last_received() < b.edge->last_received();
            });
  const std::size_t excess = trimmable.size() - cfg_.shortcut_target;
  for (std::size_t i = 0; i < excess; ++i) {
    table_.remove(trimmable[i].addr);
    ++stats_.edges_closed;
    send_edge_close(trimmable[i].edge);
    trimmable[i].edge->close();
  }
}

void BrunetNode::send_edge_close(const std::shared_ptr<Edge>& edge) {
  if (edge == nullptr || !edge->is_up()) return;
  Packet bye;
  bye.type = PacketType::kEdgeClose;
  bye.src = addr_;
  edge->send(bye.take_wire(send_headroom_));
}

void BrunetNode::keepalive() {
  const auto now = host_.loop().now();
  std::vector<Address> dead;
  std::vector<std::shared_ptr<Edge>> to_ping;
  table_.for_each([&](const Connection& c) {
    const auto idle = now - c.edge->last_received();
    if (!c.edge->is_up() || idle > cfg_.edge_timeout) {
      dead.push_back(c.addr);
    } else if (idle > cfg_.edge_idle_ping) {
      to_ping.push_back(c.edge);
    }
  });
  for (const auto& addr : dead) {
    ++stats_.edges_closed;
    ++stats_.keepalive_evictions;
    // Eviction notifies the churn observers: the DHT re-replicates
    // records the dead peer was holding copies of.
    evict_connection(addr);
  }
  for (auto& edge : to_ping) {
    Packet ping;
    ping.type = PacketType::kEdgePing;
    ping.src = addr_;
    edge->send(ping.take_wire(send_headroom_));
  }
  // Reap stale edges that are not the table's edge for any connection
  // (half-open handshakes and losing duplicates).
  std::vector<std::shared_ptr<Edge>> stale;
  for (auto& [ptr, e] : edges_) {
    if (table_.find_by_edge(ptr) != nullptr) continue;
    if (now - e->last_received() > cfg_.edge_timeout) stale.push_back(e);
  }
  // edges_ is keyed by pointer, so the reap order above is heap-address
  // order.  The close notices below hit the wire back-to-back; sort by
  // remote endpoint so the emission order is partition-invariant (the
  // cross-shard digest contract) instead of allocator-dependent.
  std::sort(stale.begin(), stale.end(),
            [](const std::shared_ptr<Edge>& a, const std::shared_ptr<Edge>& b) {
              return a->remote() < b->remote();
            });
  for (auto& e : stale) {
    edges_.erase(e.get());
    send_edge_close(e);
    e->close();
  }
}

}  // namespace ipop::brunet
