#include "brunet/connection_table.hpp"

#include <algorithm>

namespace ipop::brunet {

const char* connection_type_name(ConnectionType t) {
  switch (t) {
    case ConnectionType::kLeaf: return "leaf";
    case ConnectionType::kStructuredNear: return "near";
    case ConnectionType::kStructuredFar: return "far";
    case ConnectionType::kTrafficShortcut: return "traffic-shortcut";
  }
  return "?";
}

void ConnectionTable::add(const Connection& conn) {
  if (conn.addr == self_) return;
  for (auto& c : conns_) {
    if (c.addr == conn.addr) {
      // Keep the strongest classification; refresh the edge.
      if (static_cast<int>(conn.type) > static_cast<int>(c.type)) {
        c.type = conn.type;
      }
      if (conn.edge != nullptr && conn.edge->is_up() &&
          (c.edge == nullptr || !c.edge->is_up())) {
        c.edge = conn.edge;
      }
      if (!conn.advertised.empty()) c.advertised = conn.advertised;
      c.peer_requested_near |= conn.peer_requested_near;
      return;
    }
  }
  conns_.push_back(conn);
}

void ConnectionTable::remove(const Address& addr) {
  std::erase_if(conns_, [&](const Connection& c) { return c.addr == addr; });
}

bool ConnectionTable::contains(const Address& addr) const {
  return find(addr) != nullptr;
}

const Connection* ConnectionTable::find(const Address& addr) const {
  for (const auto& c : conns_) {
    if (c.addr == addr) return &c;
  }
  return nullptr;
}

const Connection* ConnectionTable::find_by_edge(const Edge* edge) const {
  for (const auto& c : conns_) {
    if (c.edge.get() == edge) return &c;
  }
  return nullptr;
}

const Connection* ConnectionTable::closest_to(const Address& target,
                                              const Address* exclude) const {
  const Connection* best = nullptr;
  for (const auto& c : conns_) {
    if (exclude != nullptr && c.addr == *exclude) continue;
    if (best == nullptr || Address::closer(target, c.addr, best->addr)) {
      best = &c;
    }
  }
  return best;
}

void ConnectionTable::reclassify(std::size_t k) {
  auto right = right_neighbors(k);
  auto left = left_neighbors(k);
  auto is_near = [&](const Connection* c) {
    for (auto* r : right) {
      if (r == c) return true;
    }
    for (auto* l : left) {
      if (l == c) return true;
    }
    return false;
  };
  for (auto& c : conns_) {
    if (is_near(&c)) {
      c.type = ConnectionType::kStructuredNear;
    } else if (c.type == ConnectionType::kStructuredNear) {
      c.type = ConnectionType::kStructuredFar;
    }
  }
}

std::vector<const Connection*> ConnectionTable::right_neighbors(
    std::size_t k) const {
  std::vector<const Connection*> out;
  out.reserve(conns_.size());
  for (const auto& c : conns_) out.push_back(&c);
  std::sort(out.begin(), out.end(),
            [&](const Connection* a, const Connection* b) {
              return compare_bytes(Address::directed_distance(self_, a->addr),
                                   Address::directed_distance(self_, b->addr)) < 0;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<const Connection*> ConnectionTable::left_neighbors(
    std::size_t k) const {
  std::vector<const Connection*> out;
  out.reserve(conns_.size());
  for (const auto& c : conns_) out.push_back(&c);
  std::sort(out.begin(), out.end(),
            [&](const Connection* a, const Connection* b) {
              return compare_bytes(Address::directed_distance(a->addr, self_),
                                   Address::directed_distance(b->addr, self_)) < 0;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<const Connection*> ConnectionTable::all() const {
  std::vector<const Connection*> out;
  out.reserve(conns_.size());
  for (const auto& c : conns_) out.push_back(&c);
  return out;
}

std::size_t ConnectionTable::count(ConnectionType t) const {
  return static_cast<std::size_t>(
      std::count_if(conns_.begin(), conns_.end(),
                    [&](const Connection& c) { return c.type == t; }));
}

}  // namespace ipop::brunet
