#include "brunet/connection_table.hpp"

#include <algorithm>

namespace ipop::brunet {

// One Connection per ring entry; at the 10^4..10^5-node scale the harness
// drives, a node's table must stay within a cache line.
static_assert(sizeof(void*) != 8 || sizeof(Connection) <= 64,
              "Connection outgrew one cache line; check field order");

const char* connection_type_name(ConnectionType t) {
  switch (t) {
    case ConnectionType::kLeaf: return "leaf";
    case ConnectionType::kStructuredNear: return "near";
    case ConnectionType::kStructuredFar: return "far";
    case ConnectionType::kTrafficShortcut: return "traffic-shortcut";
  }
  return "?";
}

std::size_t ConnectionTable::lower_bound_index(const Address& a) const {
  const auto it = std::lower_bound(
      conns_.begin(), conns_.end(), a,
      [](const Connection& c, const Address& x) { return c.addr < x; });
  return static_cast<std::size_t>(it - conns_.begin());
}

std::size_t ConnectionTable::ring_begin() const {
  if (conns_.empty()) return 0;
  const std::size_t i = lower_bound_index(self_);
  return i == conns_.size() ? 0 : i;
}

void ConnectionTable::add(const Connection& conn) {
  if (conn.addr == self_) return;
  const std::size_t i = lower_bound_index(conn.addr);
  if (i < conns_.size() && conns_[i].addr == conn.addr) {
    // Keep the strongest classification; refresh the edge.
    Connection& c = conns_[i];
    if (static_cast<int>(conn.type) > static_cast<int>(c.type)) {
      c.type = conn.type;
    }
    if (conn.edge != nullptr && conn.edge->is_up() &&
        (c.edge == nullptr || !c.edge->is_up())) {
      c.edge = conn.edge;
    }
    if (!conn.advertised.empty()) c.advertised = conn.advertised;
    c.peer_requested_near |= conn.peer_requested_near;
    c.punched |= conn.punched;
    return;
  }
  conns_.insert(conns_.begin() + static_cast<std::ptrdiff_t>(i), conn);
}

void ConnectionTable::remove(const Address& addr) {
  const std::size_t i = lower_bound_index(addr);
  if (i < conns_.size() && conns_[i].addr == addr) {
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

bool ConnectionTable::contains(const Address& addr) const {
  return find(addr) != nullptr;
}

const Connection* ConnectionTable::find(const Address& addr) const {
  const std::size_t i = lower_bound_index(addr);
  if (i < conns_.size() && conns_[i].addr == addr) return &conns_[i];
  return nullptr;
}

const Connection* ConnectionTable::find_by_edge(const Edge* edge) const {
  // Control plane only (edge-close teardown); a linear scan is fine.
  for (const auto& c : conns_) {
    if (c.edge.get() == edge) return &c;
  }
  return nullptr;
}

const Connection* ConnectionTable::closest_to(const Address& target,
                                              const Address* exclude) const {
  const std::size_t n = conns_.size();
  if (n == 0) return nullptr;
  const Connection* best = nullptr;
  auto consider = [&](const Connection& c) {
    if (exclude != nullptr && c.addr == *exclude) return false;
    if (best == nullptr || Address::closer(target, c.addr, best->addr) ||
        (!Address::closer(target, best->addr, c.addr) &&
         c.addr < best->addr)) {
      best = &c;
    }
    return true;
  };
  // The ring-distance minimizer over a sorted set is the target's
  // successor (minimum forward distance) or predecessor (minimum
  // backward distance) in address order.  Walk each direction until one
  // non-excluded entry is accepted — at most two probes per side.
  const std::size_t start = lower_bound_index(target) % n;
  std::size_t i = start;
  for (std::size_t steps = 0; steps < n; ++steps) {
    if (consider(conns_[i])) break;
    i = i + 1 < n ? i + 1 : 0;
  }
  i = start == 0 ? n - 1 : start - 1;
  for (std::size_t steps = 0; steps < n; ++steps) {
    if (consider(conns_[i])) break;
    i = i == 0 ? n - 1 : i - 1;
  }
  return best;
}

void ConnectionTable::reclassify(std::size_t k) {
  const std::size_t n = conns_.size();
  if (n == 0) return;
  const std::size_t b = ring_begin();
  // Peer-requested pins protect a link only while the peer could still
  // plausibly list us among its near set.  Ring distance is symmetric, so
  // once an entry drifts well outside our own near window (4k per side of
  // hysteresis) the peer's window has moved on too — keep the pin there
  // and every join that ever probed this position leaks one immortal
  // connection per node, which is what melts tables at 10^4 nodes.
  const std::size_t pin_window = 4 * k;
  for (std::size_t idx = 0; idx < n; ++idx) {
    // Clockwise offset of this entry from self's ring position: the k
    // nearest per side are offsets [0, k) and [n - k, n).
    const std::size_t o = idx >= b ? idx - b : idx + n - b;
    const bool near = k >= n || o < k || o >= n - k;
    if (near) {
      conns_[idx].type = ConnectionType::kStructuredNear;
    } else if (conns_[idx].type == ConnectionType::kStructuredNear) {
      conns_[idx].type = ConnectionType::kStructuredFar;
    }
    const bool pinnable =
        pin_window >= n || o < pin_window || o >= n - pin_window;
    if (!pinnable) conns_[idx].peer_requested_near = false;
  }
}

std::vector<const Connection*> ConnectionTable::right_neighbors(
    std::size_t k) const {
  std::vector<const Connection*> out;
  out.reserve(std::min(k, conns_.size()));
  for_each_right(k, [&](const Connection& c) { out.push_back(&c); });
  return out;
}

std::vector<const Connection*> ConnectionTable::left_neighbors(
    std::size_t k) const {
  std::vector<const Connection*> out;
  out.reserve(std::min(k, conns_.size()));
  for_each_left(k, [&](const Connection& c) { out.push_back(&c); });
  return out;
}

const Connection* ConnectionTable::right_neighbor() const {
  if (conns_.empty()) return nullptr;
  return &conns_[ring_begin()];
}

const Connection* ConnectionTable::left_neighbor() const {
  const std::size_t n = conns_.size();
  if (n == 0) return nullptr;
  const std::size_t b = ring_begin();
  return &conns_[b == 0 ? n - 1 : b - 1];
}

std::vector<const Connection*> ConnectionTable::all() const {
  std::vector<const Connection*> out;
  out.reserve(conns_.size());
  for (const auto& c : conns_) out.push_back(&c);
  return out;
}

std::size_t ConnectionTable::count(ConnectionType t) const {
  return static_cast<std::size_t>(
      std::count_if(conns_.begin(), conns_.end(),
                    [&](const Connection& c) { return c.type == t; }));
}

}  // namespace ipop::brunet
