// Brunet P2P packet format.
//
// Every message on the overlay — link handshakes, ring maintenance,
// connection setup, DHT operations and tunneled IP packets (the paper's
// Figure 3 encapsulation) — is one of these packets.  On the wire a packet
// rides inside the transport edge (UDP datagram payload or length-framed
// TCP stream), which itself rides inside the physical IP network; the
// encapsulated virtual IP packet is the innermost layer.
//
// A Packet is a parsed header over a shared util::Buffer, not an owning
// struct: decoding a received wire buffer costs a 48-byte header parse and
// zero payload copies, and forwarding patches the hop count with a
// one-byte in-place write and resends the *same* buffer on the next edge
// (the Serval overlay-frame idiom).  Building a packet locally writes the
// header into the payload buffer's headroom when possible, so IPOP's
// Figure-3 encapsulation never copies the captured IP packet either.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "brunet/address.hpp"
#include "util/buffer.hpp"
#include "util/buffer_chain.hpp"
#include "util/bytes.hpp"

namespace ipop::brunet {

enum class PacketType : std::uint8_t {
  // Edge-local (never routed, ttl ignored).
  kLinkRequest = 1,   // new edge: sender identifies itself
  kLinkResponse = 2,  // edge accepted: receiver identifies itself
  kEdgePing = 3,      // keepalive probe
  kEdgePong = 4,      // keepalive response; carries observed remote address
  kDeparting = 5,     // graceful leave: sender hands off its ring position
  kRelayForward = 6,  // tunnel-in-tunnel: wrapped edge frame, relay-bound
  kRelayDeliver = 7,  // wrapped edge frame arriving at the tunnel endpoint
  // Sender is dropping this edge (trim, stale-reap).  Datagram edges have
  // no transport-level close: without the notice the trimmed peer keeps a
  // zombie connection whose pings we would keep answering, and — if we
  // were its bootstrap rendezvous — never re-joins.
  kEdgeClose = 8,
  // Routed.
  kConnectRequest = 10,   // "please connect to me" (ring join / shortcut)
  kConnectResponse = 11,  // closest node's neighbor info
  kNeighborQuery = 12,    // stabilization: ask a peer for its neighbors
  kNeighborReply = 13,
  kPunchRequest = 14,   // hole punch: "dial me back, simultaneously"
  kPunchResponse = 15,  // target's NAT class + relay-candidate neighbors
  kPing = 20,  // overlay-level echo, for diagnostics
  kPingResponse = 21,
  kIpTunnel = 30,  // IPOP: encapsulated virtual IPv4 packet
  kDhtRequest = 40,
  kDhtResponse = 41,
  kAppData = 50,  // generic application payload
};

const char* packet_type_name(PacketType t);

/// Delivery semantics for routed packets.
enum class RoutingMode : std::uint8_t {
  /// Deliver only to the exact destination address; drop if the greedy
  /// walk ends elsewhere.
  kExact = 0,
  /// Deliver to the node closest to the destination (DHT semantics).
  kClosest = 1,
};

struct Packet {
  PacketType type = PacketType::kAppData;
  RoutingMode mode = RoutingMode::kExact;
  std::uint8_t ttl = 32;
  std::uint8_t hops = 0;
  /// Correlates requests and responses end-to-end.
  std::uint32_t msg_id = 0;
  Address src;
  Address dst;

  static constexpr std::size_t kHeaderSize = 1 + 1 + 1 + 1 + 4 + 20 + 20;
  /// Wire offsets of the transit-mutable header bytes.
  static constexpr std::size_t kTtlOffset = 2;
  static constexpr std::size_t kHopsOffset = 3;

  /// Payload view, aliasing the packet's shared buffer.  Valid while any
  /// handle to that buffer exists (the Packet itself holds one).
  util::BufferView payload() const;
  /// Owning sub-buffer of the payload bytes, sharing storage with the
  /// wire image — the zero-copy way to unwrap a tunneled IP packet or
  /// echo a payload back.
  util::Buffer share_payload() const;
  void set_payload(std::vector<std::uint8_t> bytes);
  void set_payload(util::Buffer bytes);

  /// True once the buffer holds the full wire image (after decode(Buffer)
  /// or finalize()).
  bool has_wire() const { return wire_; }
  /// Materialize or refresh the wire image and return a handle sharing
  /// its storage.  For a packet decoded from the wire this is two
  /// one-byte patches (ttl, hops) — the payload is never copied.  For a
  /// locally built packet the header is prepended into the payload
  /// buffer's headroom (zero-copy when uniquely owned, one copy
  /// otherwise).  `headroom` is the reallocation budget for that one
  /// copy: nodes pass their per-path headroom (buffer-ownership rule 6)
  /// so a wire image bound for a tunneling edge leaves room for every
  /// encapsulation layer below.
  util::Buffer to_wire(std::size_t headroom = util::kPacketHeadroom);
  /// to_wire() + release: returns the wire buffer and leaves the packet
  /// empty.  Use at the final send site — the transport (and the
  /// simulated kernel below it) then holds the storage uniquely and can
  /// prepend its headers into the same buffer instead of reallocating.
  util::Buffer take_wire(std::size_t headroom = util::kPacketHeadroom);
  /// Wire image as a scatter-gather chain: the 48-byte header (taken
  /// from this packet's fields; its own buffer/payload is ignored) is
  /// written into a small per-destination buffer — with `headroom` so
  /// the transport/UDP/IP headers prepend into it downstream — and
  /// `shared_payload` is linked behind it untouched.  The fan-out idiom:
  /// N destinations share one payload buffer, each rides its own header
  /// segment.
  util::BufferChain wire_chain(util::Buffer shared_payload,
                               std::size_t headroom =
                                   util::kPacketHeadroom) const;

  /// Zero-copy decode: parses the header and adopts `wire` as the shared
  /// backing store.  Throws util::ParseError on truncation.
  static Packet decode(util::Buffer wire);
  /// Copying decode for non-owned input.
  static Packet decode(std::span<const std::uint8_t> bytes);

 private:
  void write_header(std::uint8_t* h) const;
  void finalize(std::size_t headroom);

  util::Buffer buf_;   // wire image if wire_, else payload-only storage
  bool wire_ = false;
};

}  // namespace ipop::brunet
