// Brunet P2P packet format.
//
// Every message on the overlay — link handshakes, ring maintenance,
// connection setup, DHT operations and tunneled IP packets (the paper's
// Figure 3 encapsulation) — is one of these packets.  On the wire a packet
// rides inside the transport edge (UDP datagram payload or length-framed
// TCP stream), which itself rides inside the physical IP network; the
// encapsulated virtual IP packet is the innermost layer.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "brunet/address.hpp"
#include "util/bytes.hpp"

namespace ipop::brunet {

enum class PacketType : std::uint8_t {
  // Edge-local (never routed, ttl ignored).
  kLinkRequest = 1,   // new edge: sender identifies itself
  kLinkResponse = 2,  // edge accepted: receiver identifies itself
  kEdgePing = 3,      // keepalive probe
  kEdgePong = 4,      // keepalive response; carries observed remote address
  // Routed.
  kConnectRequest = 10,   // "please connect to me" (ring join / shortcut)
  kConnectResponse = 11,  // closest node's neighbor info
  kNeighborQuery = 12,    // stabilization: ask a peer for its neighbors
  kNeighborReply = 13,
  kPing = 20,  // overlay-level echo, for diagnostics
  kPingResponse = 21,
  kIpTunnel = 30,  // IPOP: encapsulated virtual IPv4 packet
  kDhtRequest = 40,
  kDhtResponse = 41,
  kAppData = 50,  // generic application payload
};

const char* packet_type_name(PacketType t);

/// Delivery semantics for routed packets.
enum class RoutingMode : std::uint8_t {
  /// Deliver only to the exact destination address; drop if the greedy
  /// walk ends elsewhere.
  kExact = 0,
  /// Deliver to the node closest to the destination (DHT semantics).
  kClosest = 1,
};

struct Packet {
  PacketType type = PacketType::kAppData;
  RoutingMode mode = RoutingMode::kExact;
  std::uint8_t ttl = 32;
  std::uint8_t hops = 0;
  /// Correlates requests and responses end-to-end.
  std::uint32_t msg_id = 0;
  Address src;
  Address dst;
  std::vector<std::uint8_t> payload;

  static constexpr std::size_t kHeaderSize = 1 + 1 + 1 + 1 + 4 + 20 + 20;

  std::vector<std::uint8_t> encode() const;
  static Packet decode(std::span<const std::uint8_t> bytes);
};

}  // namespace ipop::brunet
