#include "brunet/secure.hpp"

#include <algorithm>
#include <cassert>

namespace ipop::brunet {

const util::crypto::SymmetricKey& FrameSealer::shared_with(
    const util::crypto::PublicKey& peer) {
  auto it = dh_cache_.find(peer.bytes);
  if (it == dh_cache_.end()) {
    ++stats_.key_agreements;
    it = dh_cache_.emplace(peer.bytes, keys_.shared_key(peer)).first;
  }
  return it->second;
}

std::vector<std::uint8_t> FrameSealer::signed_bytes(
    std::uint8_t flags, std::uint64_t nonce, const Address& dst,
    std::span<const std::uint8_t> ciphertext) {
  std::vector<std::uint8_t> m;
  m.reserve(1 + 8 + Address::kBytes + ciphertext.size());
  m.push_back(flags);
  for (int i = 7; i >= 0; --i) {
    m.push_back(static_cast<std::uint8_t>(nonce >> (i * 8)));
  }
  m.insert(m.end(), dst.bytes().begin(), dst.bytes().end());
  m.insert(m.end(), ciphertext.begin(), ciphertext.end());
  return m;
}

util::Buffer FrameSealer::seal(util::Buffer payload,
                               const util::crypto::PublicKey& peer,
                               const Address& dst,
                               std::size_t realloc_headroom) {
  // In-place crypto requires exclusive ownership (buffer-ownership
  // rule 7): a capture buffer arrives unique, so this is a no-op on the
  // hot path — and the counter below makes any violation measurable
  // instead of silent.
  if (!payload.patchable() || payload.headroom() < kHeaderSize) {
    stats_.payload_bytes_copied += payload.size();
  }
  payload.ensure_unique(realloc_headroom);
  assert(payload.patchable());

  const std::uint64_t nonce = nonce_counter_++;
  util::crypto::stream_xor(payload.writable(), shared_with(peer), nonce);

  // Encrypt-then-sign: the signature authenticates the ciphertext, so a
  // receiver rejects tampered frames before running the cipher.
  const auto sig =
      keys_.sign(signed_bytes(kSealedV1, nonce, dst, payload.as_span()));

  auto hdr = payload.grow_front(kHeaderSize, realloc_headroom);
  hdr[0] = kSealedV1;
  std::copy(keys_.public_key().bytes.begin(), keys_.public_key().bytes.end(),
            hdr.begin() + 1);
  for (int i = 0; i < 8; ++i) {
    hdr[1 + 32 + i] = static_cast<std::uint8_t>(nonce >> ((7 - i) * 8));
  }
  std::copy(sig.bytes.begin(), sig.bytes.end(), hdr.begin() + 1 + 32 + 8);
  ++stats_.sealed;
  return payload;
}

std::optional<util::Buffer> FrameSealer::open(util::Buffer frame,
                                              const Address& dst) {
  const auto bytes = frame.as_span();
  if (bytes.size() < kHeaderSize || bytes[0] != kSealedV1) {
    ++stats_.rejected;
    return std::nullopt;
  }
  util::crypto::PublicKey sender;
  std::copy_n(bytes.data() + 1, sender.bytes.size(), sender.bytes.begin());
  std::uint64_t nonce = 0;
  for (int i = 0; i < 8; ++i) {
    nonce = (nonce << 8) | bytes[1 + 32 + i];
  }
  util::crypto::Signature sig;
  std::copy_n(bytes.data() + 1 + 32 + 8, sig.bytes.size(), sig.bytes.begin());

  const auto ciphertext = bytes.subspan(kHeaderSize);
  if (!util::crypto::verify(sender,
                            signed_bytes(kSealedV1, nonce, dst, ciphertext),
                            sig)) {
    ++stats_.rejected;
    return std::nullopt;
  }
  // Strip the seal header (the bytes become headroom for the tap-side
  // Ethernet rebuild) and decrypt the payload in place: opening is a
  // view adjustment plus the cipher pass, zero bytes moved.
  frame.drop_front(kHeaderSize);
  assert(frame.patchable());
  util::crypto::stream_xor(frame.writable(), shared_with(sender), nonce);
  ++stats_.opened;
  return frame;
}

}  // namespace ipop::brunet
