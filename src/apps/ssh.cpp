#include "apps/ssh.hpp"

#include "util/bytes.hpp"

namespace ipop::apps {

namespace {

/// Length-prefixed string framing over a TCP socket; calls `cb` with each
/// complete message.  Stores partial data in an external buffer.
class MessageReader {
 public:
  /// Returns complete messages extracted from `buf` after appending data.
  static std::vector<std::string> drain(std::vector<std::uint8_t>& buf) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (buf.size() - pos >= 4) {
      const std::uint32_t len = static_cast<std::uint32_t>(buf[pos]) << 24 |
                                static_cast<std::uint32_t>(buf[pos + 1]) << 16 |
                                static_cast<std::uint32_t>(buf[pos + 2]) << 8 |
                                static_cast<std::uint32_t>(buf[pos + 3]);
      if (buf.size() - pos - 4 < len) break;
      out.emplace_back(reinterpret_cast<const char*>(buf.data() + pos + 4),
                       len);
      pos += 4 + len;
    }
    buf.erase(buf.begin(), buf.begin() + pos);
    return out;
  }

  static std::vector<std::uint8_t> frame(const std::string& msg) {
    util::ByteWriter w(4 + msg.size());
    w.lp_string(msg);
    return w.take();
  }
};

}  // namespace

ExecServer::ExecServer(net::Stack& stack, std::uint16_t port) : stack_(stack) {
  listener_ = stack_.tcp_listen(port);
  if (listener_ != nullptr) {
    listener_->set_accept_handler([this](std::shared_ptr<net::TcpSocket> s) {
      handle_request(std::move(s));
    });
  }
}

ExecServer::~ExecServer() {
  if (listener_ != nullptr) listener_->close();
}

void ExecServer::register_command(const std::string& name,
                                  CommandHandler handler) {
  commands_[name] = std::move(handler);
}

void ExecServer::handle_request(std::shared_ptr<net::TcpSocket> sock) {
  auto buf = std::make_shared<std::vector<std::uint8_t>>();
  auto sp = sock;
  sock->on_readable = [this, sp, buf] {
    while (true) {
      auto chunk = sp->receive(4096);
      if (chunk.empty()) break;
      buf->insert(buf->end(), chunk.begin(), chunk.end());
    }
    for (const auto& msg : MessageReader::drain(*buf)) {
      ++served_;
      const auto space = msg.find(' ');
      const std::string name = msg.substr(0, space);
      const std::string args =
          space == std::string::npos ? "" : msg.substr(space + 1);
      std::string result = "sh: command not found: " + name;
      auto it = commands_.find(name);
      if (it != commands_.end()) result = it->second(args);
      auto framed = MessageReader::frame(result);
      sp->send(framed);
      sp->close();
    }
  };
}

void exec_remote(net::Stack& stack, net::Ipv4Address host,
                 const std::string& command,
                 std::function<void(std::optional<std::string>)> done,
                 std::uint16_t port) {
  auto sock = stack.tcp_connect(host, port);
  if (sock == nullptr) {
    done(std::nullopt);
    return;
  }
  auto buf = std::make_shared<std::vector<std::uint8_t>>();
  auto done_p =
      std::make_shared<std::function<void(std::optional<std::string>)>>(
          std::move(done));
  sock->on_connected = [sock, command] {
    auto framed = MessageReader::frame(command);
    sock->send(framed);
  };
  sock->on_readable = [sock, buf, done_p] {
    while (true) {
      auto chunk = sock->receive(4096);
      if (chunk.empty()) break;
      buf->insert(buf->end(), chunk.begin(), chunk.end());
    }
    auto msgs = MessageReader::drain(*buf);
    if (!msgs.empty() && *done_p) {
      auto cb = std::move(*done_p);
      *done_p = nullptr;
      cb(msgs.front());
      sock->close();
    }
  };
  sock->on_closed = [done_p](const std::string&) {
    if (*done_p) {
      auto cb = std::move(*done_p);
      *done_p = nullptr;
      cb(std::nullopt);
    }
  };
}

}  // namespace ipop::apps
