// LSS (Light Scattering Spectroscopy) parallel application workalike.
//
// The paper's case study (Section IV-C, Table IV): a master/worker MPI
// program that fits each spectral image against four 32 MB database files
// served over NFS, across three firewalled sites joined only by IPOP.
// Per image, each database contributes a least-squares fit (compute) after
// its records stream in via NFS (I/O: cold first image, warm afterwards).
// Workers are booted with the SSH-like exec service, tasks and results
// flow over the message-passing runtime, databases over the NFS client —
// all riding unmodified TCP sockets on the virtual network.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "apps/mp.hpp"
#include "apps/nfs.hpp"
#include "apps/ssh.hpp"
#include "net/host.hpp"

namespace ipop::apps {

struct LssConfig {
  int images = 6;
  int databases = 4;
  std::uint64_t db_size = 32ull << 20;  // 32 MB each
  /// Least-squares fitting time per database per image (simulated CPU).
  util::Duration fit_compute_per_db = util::seconds_f(41.75);
  net::Ipv4Address file_server;  // NFS server virtual IP
  std::uint16_t nfs_port = NfsServer::kDefaultPort;
};

struct LssReport {
  bool ok = false;
  /// Wall time per image, seconds.
  std::vector<double> image_seconds;

  double first_image() const {
    return image_seconds.empty() ? 0.0 : image_seconds.front();
  }
  double remaining_images() const {
    double s = 0;
    for (std::size_t i = 1; i < image_seconds.size(); ++i) {
      s += image_seconds[i];
    }
    return s;
  }
  double total() const { return first_image() + remaining_images(); }
};

struct LssMember {
  net::Host* host = nullptr;
  net::Ipv4Address vip;  // virtual address (ranks talk over IPOP)
};

/// One LSS run.  members[0] is the master (no compute); members[1..] are
/// workers.  Databases are assigned round-robin to workers per image.
class LssJob {
 public:
  LssJob(std::vector<LssMember> members, LssConfig cfg);

  void run(std::function<void(LssReport)> done);

  const NfsClientStats& worker_nfs_stats(int worker_index) const {
    return nfs_clients_[static_cast<std::size_t>(worker_index)]->stats();
  }

 private:
  static constexpr int kTagTask = 1;
  static constexpr int kTagResult = 2;

  void boot_and_start();
  void start_image(int image);
  void worker_loop(std::size_t worker_index);
  void handle_task(std::size_t worker_index, int image, int db);

  std::vector<LssMember> members_;
  LssConfig cfg_;
  std::vector<std::unique_ptr<ExecServer>> exec_servers_;
  std::vector<std::unique_ptr<MpEndpoint>> endpoints_;
  std::vector<std::unique_ptr<NfsClient>> nfs_clients_;  // workers only
  std::function<void(LssReport)> done_;
  LssReport report_;
  int current_image_ = 0;
  int outstanding_ = 0;
  util::TimePoint image_started_{};
};

}  // namespace ipop::apps
