#include "apps/mp.hpp"

#include "apps/ssh.hpp"
#include "util/bytes.hpp"

namespace ipop::apps {

namespace {
// Wire frame: [u32 length][u32 src_rank][u32 tag][payload...]
std::vector<std::uint8_t> frame_message(int src_rank, int tag,
                                        const MpEndpoint::Message& payload) {
  util::ByteWriter w(12 + payload.size());
  w.u32(static_cast<std::uint32_t>(8 + payload.size()));
  w.u32(static_cast<std::uint32_t>(src_rank));
  w.u32(static_cast<std::uint32_t>(tag));
  w.bytes(payload);
  return w.take();
}
}  // namespace

MpEndpoint::MpEndpoint(net::Stack& stack, int rank,
                       std::vector<net::Ipv4Address> ranks)
    : stack_(stack), rank_(rank), ranks_(std::move(ranks)) {
  listener_ =
      stack_.tcp_listen(static_cast<std::uint16_t>(kBasePort + rank_));
  if (listener_ != nullptr) {
    listener_->set_accept_handler([this](std::shared_ptr<net::TcpSocket> s) {
      // Inbound sockets only ever receive; the sender is identified by the
      // src_rank field of each frame, so no handshake is needed.
      adopt_socket(std::move(s), /*connected=*/true);
    });
  }
}

MpEndpoint::~MpEndpoint() {
  if (listener_ != nullptr) listener_->close();
  for (auto& [id, peer] : peers_) {
    if (peer.sock != nullptr) {
      peer.sock->on_readable = nullptr;
      peer.sock->on_writable = nullptr;
      peer.sock->on_connected = nullptr;
      peer.sock->abort();
    }
  }
}

int MpEndpoint::adopt_socket(std::shared_ptr<net::TcpSocket> sock,
                             bool connected) {
  const int id = next_socket_id_++;
  Peer& peer = peers_[id];
  peer.sock = std::move(sock);
  peer.connected = connected;
  auto sp = peer.sock;
  sp->on_readable = [this, id] { pump(id); };
  sp->on_writable = [this, id] { flush(id); };
  sp->on_connected = [this, id] {
    peers_[id].connected = true;
    flush(id);
  };
  return id;
}

void MpEndpoint::ensure_peer(int dst_rank) {
  if (outbound_.count(dst_rank) > 0) return;
  auto sock = stack_.tcp_connect(
      ranks_[static_cast<std::size_t>(dst_rank)],
      static_cast<std::uint16_t>(kBasePort + dst_rank));
  if (sock == nullptr) return;
  outbound_[dst_rank] = adopt_socket(std::move(sock), /*connected=*/false);
}

void MpEndpoint::send(int dst_rank, int tag, Message payload) {
  ensure_peer(dst_rank);
  auto out = outbound_.find(dst_rank);
  if (out == outbound_.end()) return;  // no route to rank
  Peer& peer = peers_[out->second];
  auto framed = frame_message(rank_, tag, payload);
  peer.tx_backlog.insert(peer.tx_backlog.end(), framed.begin(), framed.end());
  ++sent_;
  if (peer.connected) flush(out->second);
}

void MpEndpoint::flush(int socket_id) {
  auto it = peers_.find(socket_id);
  if (it == peers_.end() || it->second.sock == nullptr ||
      !it->second.connected) {
    return;
  }
  Peer& peer = it->second;
  while (!peer.tx_backlog.empty()) {
    const std::size_t n = peer.sock->send(peer.tx_backlog);
    if (n == 0) break;
    peer.tx_backlog.erase(peer.tx_backlog.begin(),
                          peer.tx_backlog.begin() + n);
  }
}

void MpEndpoint::pump(int socket_id) {
  auto it = peers_.find(socket_id);
  if (it == peers_.end() || it->second.sock == nullptr) return;
  Peer& peer = it->second;
  while (true) {
    auto chunk = peer.sock->receive(64 * 1024);
    if (chunk.empty()) break;
    peer.rx_buf.insert(peer.rx_buf.end(), chunk.begin(), chunk.end());
  }
  auto& buf = peer.rx_buf;
  std::size_t pos = 0;
  while (buf.size() - pos >= 4) {
    const std::uint32_t len = static_cast<std::uint32_t>(buf[pos]) << 24 |
                              static_cast<std::uint32_t>(buf[pos + 1]) << 16 |
                              static_cast<std::uint32_t>(buf[pos + 2]) << 8 |
                              static_cast<std::uint32_t>(buf[pos + 3]);
    if (len < 8 || buf.size() - pos - 4 < len) break;
    util::ByteReader r(
        std::span<const std::uint8_t>(buf.data() + pos + 4, len));
    const int src_rank = static_cast<int>(r.u32());
    const int tag = static_cast<int>(r.u32());
    Message payload = r.rest_copy();
    pos += 4 + len;
    dispatch(src_rank, tag, std::move(payload));
  }
  buf.erase(buf.begin(), buf.begin() + pos);
}

void MpEndpoint::dispatch(int src_rank, int tag, Message payload) {
  ++received_;
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if ((it->src_rank == -1 || it->src_rank == src_rank) && it->tag == tag) {
      auto cb = std::move(it->cb);
      pending_.erase(it);
      cb(src_rank, std::move(payload));
      return;
    }
  }
  unexpected_.push_back(Unexpected{src_rank, tag, std::move(payload)});
}

void MpEndpoint::recv(int src_rank, int tag, RecvCallback cb) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if ((src_rank == -1 || it->src_rank == src_rank) && it->tag == tag) {
      auto msg = std::move(*it);
      unexpected_.erase(it);
      cb(msg.src_rank, std::move(msg.payload));
      return;
    }
  }
  pending_.push_back(Pending{src_rank, tag, std::move(cb)});
}

void MpLauncher::lamboot(net::Stack& master_stack,
                         const std::vector<net::Ipv4Address>& ranks,
                         LaunchCallback done) {
  auto remaining = std::make_shared<int>(static_cast<int>(ranks.size()));
  auto ok = std::make_shared<bool>(true);
  auto done_p = std::make_shared<LaunchCallback>(std::move(done));
  for (const auto& ip : ranks) {
    exec_remote(master_stack, ip, "lamboot",
                [remaining, ok, done_p](std::optional<std::string> out) {
                  if (!out.has_value()) *ok = false;
                  if (--*remaining == 0 && *done_p) {
                    auto cb = std::move(*done_p);
                    *done_p = nullptr;
                    cb(*ok);
                  }
                });
  }
}

}  // namespace ipop::apps
