#include "apps/nfs.hpp"

#include <algorithm>

#include "util/bytes.hpp"

namespace ipop::apps {

// Wire protocol (over one TCP connection, strictly one request in flight):
//   request:  [u32 frame_len][lp_string name][u64 offset][u32 len]
//   response: [u32 frame_len][u8 status][lp_bytes data]

std::uint8_t NfsServer::content_byte(const std::string& name,
                                     std::uint64_t offset) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  h ^= offset;
  h *= 1099511628211ull;
  return static_cast<std::uint8_t>(h >> 32);
}

NfsServer::NfsServer(net::Stack& stack, std::uint16_t port) : stack_(stack) {
  listener_ = stack_.tcp_listen(port);
  if (listener_ != nullptr) {
    listener_->set_accept_handler(
        [this](std::shared_ptr<net::TcpSocket> s) { serve(std::move(s)); });
  }
}

NfsServer::~NfsServer() {
  if (listener_ != nullptr) listener_->close();
}

void NfsServer::add_file(const std::string& name, std::uint64_t size) {
  files_[name] = size;
}

void NfsServer::serve(std::shared_ptr<net::TcpSocket> sock) {
  auto buf = std::make_shared<std::vector<std::uint8_t>>();
  auto sp = sock;
  sock->on_readable = [this, sp, buf] {
    while (true) {
      auto chunk = sp->receive(64 * 1024);
      if (chunk.empty()) break;
      buf->insert(buf->end(), chunk.begin(), chunk.end());
    }
    std::size_t pos = 0;
    while (buf->size() - pos >= 4) {
      const auto* b = buf->data() + pos;
      const std::uint32_t frame_len =
          static_cast<std::uint32_t>(b[0]) << 24 |
          static_cast<std::uint32_t>(b[1]) << 16 |
          static_cast<std::uint32_t>(b[2]) << 8 | b[3];
      if (buf->size() - pos - 4 < frame_len) break;
      util::ByteReader r(
          std::span<const std::uint8_t>(buf->data() + pos + 4, frame_len));
      pos += 4 + frame_len;
      try {
        const std::string name = r.lp_string();
        const std::uint64_t offset = r.u64();
        const std::uint32_t len = r.u32();
        ++stats_.requests;

        util::ByteWriter w;
        auto file = files_.find(name);
        if (file == files_.end() || offset >= file->second) {
          w.u8(0);  // not found / EOF
          w.lp_bytes({});
        } else {
          const std::uint64_t n =
              std::min<std::uint64_t>(len, file->second - offset);
          std::vector<std::uint8_t> data(static_cast<std::size_t>(n));
          for (std::uint64_t i = 0; i < n; ++i) {
            data[static_cast<std::size_t>(i)] = content_byte(name, offset + i);
          }
          stats_.bytes_served += n;
          w.u8(1);
          w.lp_bytes(data);
        }
        util::ByteWriter framed(4 + w.size());
        framed.u32(static_cast<std::uint32_t>(w.size()));
        framed.bytes(w.data());
        auto out = framed.take();
        sp->send(out);
      } catch (const util::ParseError&) {
        sp->abort();
        return;
      }
    }
    buf->erase(buf->begin(), buf->begin() + pos);
  };
}

NfsClient::NfsClient(net::Host& host, net::Ipv4Address server,
                     std::uint16_t port, NfsClientConfig cfg)
    : host_(host), server_(server), port_(port), cfg_(cfg) {}

void NfsClient::ensure_connected() {
  if (sock_ != nullptr) return;
  sock_ = host_.stack().tcp_connect(server_, port_);
  if (sock_ == nullptr) return;
  sock_->on_connected = [this] {
    connected_ = true;
    issue_next();
  };
  sock_->on_readable = [this] { on_data(); };
  sock_->on_closed = [this](const std::string&) {
    connected_ = false;
    sock_ = nullptr;
  };
}

void NfsClient::read_block(const std::string& name, std::uint64_t block_index,
                           std::function<void(std::vector<std::uint8_t>)> done) {
  ++stats_.reads;
  const std::uint64_t offset = block_index * cfg_.block_size;
  if (cache_.count({name, block_index}) > 0) {
    ++stats_.cache_hits;
    // Local disk-cache read: small fixed cost, no network.
    host_.loop().schedule_after(cfg_.cache_hit_cost,
                                [done = std::move(done)] { done({}); });
    return;
  }
  ++stats_.cache_misses;
  Rpc rpc;
  rpc.name = name;
  rpc.offset = offset;
  rpc.len = static_cast<std::uint32_t>(cfg_.block_size);
  rpc.done = [this, name, block_index, done = std::move(done)](
                 std::vector<std::uint8_t> data) {
    cache_.insert({name, block_index});
    stats_.bytes_fetched += data.size();
    done(std::move(data));
  };
  queue_.push_back(std::move(rpc));
  ensure_connected();
  issue_next();
}

void NfsClient::issue_next() {
  if (in_flight_ || queue_.empty() || !connected_) return;
  in_flight_ = true;
  const Rpc& rpc = queue_.front();
  util::ByteWriter w;
  w.lp_string(rpc.name);
  w.u64(rpc.offset);
  w.u32(rpc.len);
  util::ByteWriter framed(4 + w.size());
  framed.u32(static_cast<std::uint32_t>(w.size()));
  framed.bytes(w.data());
  auto out = framed.take();
  sock_->send(out);
}

void NfsClient::on_data() {
  while (true) {
    auto chunk = sock_->receive(64 * 1024);
    if (chunk.empty()) break;
    rx_buf_.insert(rx_buf_.end(), chunk.begin(), chunk.end());
  }
  while (rx_buf_.size() >= 4) {
    const std::uint32_t frame_len =
        static_cast<std::uint32_t>(rx_buf_[0]) << 24 |
        static_cast<std::uint32_t>(rx_buf_[1]) << 16 |
        static_cast<std::uint32_t>(rx_buf_[2]) << 8 | rx_buf_[3];
    if (rx_buf_.size() - 4 < frame_len) break;
    std::vector<std::uint8_t> data;
    try {
      util::ByteReader r(
          std::span<const std::uint8_t>(rx_buf_.data() + 4, frame_len));
      r.u8();  // status (synthetic files always resolve)
      data = r.lp_bytes();
    } catch (const util::ParseError&) {
      rx_buf_.clear();
      return;
    }
    rx_buf_.erase(rx_buf_.begin(), rx_buf_.begin() + 4 + frame_len);
    if (!queue_.empty()) {
      auto rpc = std::move(queue_.front());
      queue_.erase(queue_.begin());
      in_flight_ = false;
      rpc.done(std::move(data));
    }
    issue_next();
  }
}

void NfsClient::read_file(const std::string& name, std::uint64_t size,
                          std::function<void(bool ok)> done) {
  const std::uint64_t blocks =
      (size + cfg_.block_size - 1) / cfg_.block_size;
  auto next = std::make_shared<std::function<void(std::uint64_t)>>();
  auto done_p = std::make_shared<std::function<void(bool)>>(std::move(done));
  // The step function captures itself weakly; the strong reference lives
  // in the in-flight RPC continuation, so the chain frees itself on
  // completion (or with the client's queue) instead of cycling forever.
  *next = [this, name, blocks, next_w = std::weak_ptr(next),
           done_p](std::uint64_t i) {
    if (i >= blocks) {
      (*done_p)(true);
      return;
    }
    auto self = next_w.lock();
    read_block(name, i, [self, i](std::vector<std::uint8_t>) {
      (*self)(i + 1);
    });
  };
  (*next)(0);
}

}  // namespace ipop::apps
