// NFS-like block file service with client-side disk caching.
//
// The paper's LSS runs against database files on an NFS-mounted volume
// with "transparent user-level client-side disk caching that exploits the
// temporal locality of references across runs" (Section IV-C).  Table IV's
// cold/warm split is entirely this effect: the first image pays
// synchronous block fetches over the virtual WAN; later images hit the
// local cache.  The client issues one synchronous RPC per block — the
// latency-bound access pattern that produces the paper's cold-read times.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/host.hpp"

namespace ipop::apps {

struct NfsServerStats {
  std::uint64_t requests = 0;
  std::uint64_t bytes_served = 0;
};

class NfsServer {
 public:
  static constexpr std::uint16_t kDefaultPort = 2049;

  explicit NfsServer(net::Stack& stack, std::uint16_t port = kDefaultPort);
  ~NfsServer();

  /// Register a file; content is synthetic (deterministic bytes).
  void add_file(const std::string& name, std::uint64_t size);
  const NfsServerStats& stats() const { return stats_; }

  /// Deterministic content byte for (file, offset): lets clients verify
  /// reads end-to-end.
  static std::uint8_t content_byte(const std::string& name,
                                   std::uint64_t offset);

 private:
  void serve(std::shared_ptr<net::TcpSocket> sock);

  net::Stack& stack_;
  std::shared_ptr<net::TcpListener> listener_;
  std::map<std::string, std::uint64_t> files_;
  NfsServerStats stats_;
};

struct NfsClientConfig {
  std::size_t block_size = 8 * 1024;
  /// Local cache access time per block (disk-cache hit).
  util::Duration cache_hit_cost = util::microseconds(50);
};

struct NfsClientStats {
  std::uint64_t reads = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t bytes_fetched = 0;
};

class NfsClient {
 public:
  NfsClient(net::Host& host, net::Ipv4Address server,
            std::uint16_t port = NfsServer::kDefaultPort,
            NfsClientConfig cfg = {});

  /// Stream the whole file through the cache, one synchronous block RPC
  /// at a time; `done(ok)` fires after the last block.
  void read_file(const std::string& name, std::uint64_t size,
                 std::function<void(bool ok)> done);
  /// Read one block (cache-aware).
  void read_block(const std::string& name, std::uint64_t block_index,
                  std::function<void(std::vector<std::uint8_t>)> done);

  /// Drop the local cache (simulates a cold start).
  void invalidate_cache() { cache_.clear(); }
  const NfsClientStats& stats() const { return stats_; }

 private:
  struct Rpc {
    std::string name;
    std::uint64_t offset;
    std::uint32_t len;
    std::function<void(std::vector<std::uint8_t>)> done;
  };

  void ensure_connected();
  void issue_next();
  void on_data();

  net::Host& host_;
  net::Ipv4Address server_;
  std::uint16_t port_;
  NfsClientConfig cfg_;
  std::shared_ptr<net::TcpSocket> sock_;
  bool connected_ = false;
  std::vector<std::uint8_t> rx_buf_;
  std::vector<Rpc> queue_;  // FIFO; one outstanding RPC (synchronous NFS)
  bool in_flight_ = false;
  std::set<std::pair<std::string, std::uint64_t>> cache_;  // (file, block)
  NfsClientStats stats_;
};

}  // namespace ipop::apps
