// Minimal SSH-like remote execution service.
//
// The paper's LSS case study needs SSH "to start the lam daemons on each
// compute node before parallel execution begins" (Section IV-C).  This is
// a functional stand-in: a TCP service on port 22 that receives a command
// string and responds with its output, used by the MPI-like launcher to
// boot worker daemons across the virtual network.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/stack.hpp"

namespace ipop::apps {

class ExecServer {
 public:
  using CommandHandler = std::function<std::string(const std::string& args)>;

  explicit ExecServer(net::Stack& stack, std::uint16_t port = 22);
  ~ExecServer();

  /// Register `name` so that "name args..." invokes the handler.
  void register_command(const std::string& name, CommandHandler handler);
  std::uint64_t commands_served() const { return served_; }

 private:
  void handle_request(std::shared_ptr<net::TcpSocket> sock);

  net::Stack& stack_;
  std::shared_ptr<net::TcpListener> listener_;
  std::map<std::string, CommandHandler> commands_;
  std::uint64_t served_ = 0;
};

/// One-shot remote command: connect, send, await reply, close.
/// `done` receives the output, or nullopt on connection failure/timeout.
void exec_remote(net::Stack& stack, net::Ipv4Address host,
                 const std::string& command,
                 std::function<void(std::optional<std::string>)> done,
                 std::uint16_t port = 22);

}  // namespace ipop::apps
