#include "apps/lss.hpp"

#include "util/bytes.hpp"
#include "util/logging.hpp"

namespace ipop::apps {

LssJob::LssJob(std::vector<LssMember> members, LssConfig cfg)
    : members_(std::move(members)), cfg_(cfg) {
  // Rank table (virtual IPs) shared by all endpoints.
  std::vector<net::Ipv4Address> ranks;
  for (const auto& m : members_) ranks.push_back(m.vip);

  for (std::size_t i = 0; i < members_.size(); ++i) {
    // Every member runs the exec service ("lamboot" target).
    auto exec = std::make_unique<ExecServer>(members_[i].host->stack());
    exec->register_command(
        "lamboot", [](const std::string&) { return "lamd running"; });
    exec_servers_.push_back(std::move(exec));
    endpoints_.push_back(std::make_unique<MpEndpoint>(
        members_[i].host->stack(), static_cast<int>(i), ranks));
  }
  // Workers mount the shared volume.
  for (std::size_t i = 1; i < members_.size(); ++i) {
    nfs_clients_.push_back(std::make_unique<NfsClient>(
        *members_[i].host, cfg_.file_server, cfg_.nfs_port));
  }
}

void LssJob::run(std::function<void(LssReport)> done) {
  done_ = std::move(done);
  boot_and_start();
}

void LssJob::boot_and_start() {
  std::vector<net::Ipv4Address> ranks;
  for (const auto& m : members_) ranks.push_back(m.vip);
  MpLauncher::lamboot(members_[0].host->stack(), ranks, [this](bool ok) {
    if (!ok) {
      IPOP_LOG_ERROR("LSS: lamboot failed");
      report_.ok = false;
      if (done_) done_(report_);
      return;
    }
    for (std::size_t w = 1; w < members_.size(); ++w) worker_loop(w);
    current_image_ = 0;
    start_image(0);
  });
}

void LssJob::start_image(int image) {
  if (image >= cfg_.images) {
    report_.ok = true;
    if (done_) {
      auto cb = std::move(done_);
      cb(report_);
    }
    return;
  }
  image_started_ = members_[0].host->loop().now();
  outstanding_ = cfg_.databases;
  const int workers = static_cast<int>(members_.size()) - 1;
  for (int db = 0; db < cfg_.databases; ++db) {
    const int worker_rank = 1 + (db % workers);
    util::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(image));
    w.u32(static_cast<std::uint32_t>(db));
    endpoints_[0]->send(worker_rank, kTagTask, w.take());
  }
  // Collect all fit results for this image.
  for (int r = 0; r < cfg_.databases; ++r) {
    endpoints_[0]->recv(-1, kTagResult, [this](int, MpEndpoint::Message) {
      if (--outstanding_ == 0) {
        const auto elapsed =
            members_[0].host->loop().now() - image_started_;
        report_.image_seconds.push_back(util::to_seconds(elapsed));
        start_image(++current_image_);
      }
    });
  }
}

void LssJob::worker_loop(std::size_t worker_index) {
  endpoints_[worker_index]->recv(
      0, kTagTask,
      [this, worker_index](int, MpEndpoint::Message msg) {
        try {
          util::ByteReader r(msg);
          const int image = static_cast<int>(r.u32());
          const int db = static_cast<int>(r.u32());
          handle_task(worker_index, image, db);
        } catch (const util::ParseError&) {
        }
      });
}

void LssJob::handle_task(std::size_t worker_index, int image, int db) {
  auto& client = *nfs_clients_[worker_index - 1];
  auto& host = *members_[worker_index].host;
  const std::string db_name = "db" + std::to_string(db);
  // Stream the database through the (possibly warm) NFS cache, then run
  // the least-squares fit as simulated CPU work, then report back.
  client.read_file(db_name, cfg_.db_size, [this, worker_index, image, db,
                                           &host](bool ok) {
    if (!ok) IPOP_LOG_WARN("LSS: NFS read failed for db" << db);
    host.cpu().run(cfg_.fit_compute_per_db, [this, worker_index, image, db] {
      util::ByteWriter w;
      w.u32(static_cast<std::uint32_t>(image));
      w.u32(static_cast<std::uint32_t>(db));
      w.u64(0xF17F17);  // fit result stand-in
      endpoints_[worker_index]->send(0, kTagResult, w.take());
      // Ready for the next task.
      worker_loop(worker_index);
    });
  });
}

}  // namespace ipop::apps
