// Message-passing runtime (MPI-workalike) over virtual-network TCP.
//
// The paper runs an unmodified LAM/MPI application over IPOP (Section
// IV-C).  This runtime provides the subset LSS needs — ranked endpoints,
// tagged point-to-point messages with MPI-style matching (posted receives
// vs. unexpected-message queue), and a tiny launcher that "boots" workers
// via the SSH-like exec service — all over ordinary TCP sockets, so the
// whole stack exercises IPOP exactly the way LAM/MPI did.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/stack.hpp"

namespace ipop::apps {

/// Tagged message endpoint for one rank.
class MpEndpoint {
 public:
  static constexpr std::uint16_t kBasePort = 5600;
  using Message = std::vector<std::uint8_t>;
  using RecvCallback = std::function<void(int src_rank, Message)>;

  /// `ranks` maps rank -> virtual IP (same table on every member).
  MpEndpoint(net::Stack& stack, int rank,
             std::vector<net::Ipv4Address> ranks);
  ~MpEndpoint();

  int rank() const { return rank_; }
  int world_size() const { return static_cast<int>(ranks_.size()); }

  /// Asynchronous tagged send (buffered; connection established lazily).
  void send(int dst_rank, int tag, Message payload);
  /// Post a one-shot receive for (src_rank, tag); src_rank -1 = any.
  /// Matches MPI semantics: unexpected messages queue until a receive is
  /// posted.
  void recv(int src_rank, int tag, RecvCallback cb);

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_received() const { return received_; }

 private:
  struct Pending {
    int src_rank;
    int tag;
    RecvCallback cb;
  };
  struct Unexpected {
    int src_rank;
    int tag;
    Message payload;
  };
  struct Peer {
    std::shared_ptr<net::TcpSocket> sock;
    std::vector<std::uint8_t> rx_buf;
    std::vector<std::uint8_t> tx_backlog;
    bool connected = false;
  };

  /// Register a socket (inbound or outbound) under a fresh id.
  int adopt_socket(std::shared_ptr<net::TcpSocket> sock, bool connected);
  void ensure_peer(int dst_rank);
  void pump(int socket_id);
  void dispatch(int src_rank, int tag, Message payload);
  void flush(int socket_id);

  net::Stack& stack_;
  int rank_;
  std::vector<net::Ipv4Address> ranks_;
  std::shared_ptr<net::TcpListener> listener_;
  // All sockets by id; senders are identified per-frame, so inbound and
  // outbound connections never need correlating.
  std::map<int, Peer> peers_;
  std::map<int, int> outbound_;  // dst_rank -> socket id
  int next_socket_id_ = 1;
  std::deque<Pending> pending_;
  std::deque<Unexpected> unexpected_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

/// "mpirun": boot daemons on every host via the exec service, then hand
/// ready MpEndpoints to the caller.  Mirrors the paper's "SSH is required
/// to start the lam daemons on each compute node".
class MpLauncher {
 public:
  using LaunchCallback = std::function<void(bool ok)>;

  /// Each (stack, ip) pair is one rank, in order; rank 0 is the master.
  /// All stacks must already run an ExecServer with a "lamboot" command.
  static void lamboot(net::Stack& master_stack,
                      const std::vector<net::Ipv4Address>& ranks,
                      LaunchCallback done);
};

}  // namespace ipop::apps
