#include "sim/channel.hpp"

#include <iterator>
#include <utility>

namespace ipop::sim {

void Channel::push(StampedEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(std::move(ev));
}

void Channel::drain(std::vector<StampedEvent>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) return;
  forwarded_ += pending_.size();
  out.insert(out.end(), std::make_move_iterator(pending_.begin()),
             std::make_move_iterator(pending_.end()));
  pending_.clear();
}

}  // namespace ipop::sim
