// ShardedEngine — conservative parallel discrete-event engine.
//
// The engine owns N shard-local EventLoops plus one worker thread per
// shard (for N > 1) and advances simulated time in conservative windows
// (Chandy–Misra-style lookahead):
//
//   1. The coordinator drains every cross-shard Channel into the
//      destination loops, finds the global minimum next-event time `w`,
//      and announces the window [w, w + lookahead).
//   2. Each worker runs its own loop's events inside the window.  Any
//      cross-shard link send produced by those events is stamped for
//      delivery at >= w + lookahead (lookahead = minimum cross-shard link
//      delay), so nothing a peer shard does during the window can affect
//      this window — shards are causally independent inside it.
//   3. A barrier ends the window; goto 1.  Empty stretches are skipped by
//      jumping `w` straight to the next event time.
//
// Determinism: each loop executes its events in the canonical
// partition-invariant order (see event_loop.hpp), cross-shard deliveries
// carry sender-assigned (stream, seq) stamps, and channel drains happen
// only at barriers on the coordinator thread.  A run is therefore
// bit-for-bit identical for any shard count, including 1 — the digest
// test pins this.
//
// The shard planner partitions the precomputed link graph: zero-delay
// edges are contracted (a zero-delay cut would force a zero lookahead),
// then components are greedily merged along the smallest-delay edges
// (Kruskal under a balance cap) so the surviving cut is made of
// high-latency links and the window stays wide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sim/channel.hpp"
#include "sim/event_loop.hpp"
#include "util/random.hpp"

namespace ipop::sim {

class ShardedEngine {
 public:
  using VertexId = std::size_t;

  ShardedEngine();
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // --- topology registration (before plan()) -------------------------------
  /// Register a schedulable vertex (host, switch, middlebox).  Until
  /// plan() runs every vertex lives on shard 0.
  VertexId add_vertex();
  /// Register a link between two vertices with its one-way delay (the
  /// smaller direction for asymmetric links).
  void add_edge(VertexId a, VertexId b, Duration delay);

  // --- planning -------------------------------------------------------------
  /// Partition vertices into `n` shards, compute the lookahead, create
  /// the shard loops/channels and (for n > 1) the worker threads.  Must
  /// be called at most once, before any events are scheduled.  `seed`
  /// feeds the per-shard Rng streams.
  void plan(std::size_t n, std::uint64_t seed = 1);
  bool planned() const { return planned_; }

  std::size_t shards() const { return loops_.size(); }
  std::size_t shard_of(VertexId v) const { return shard_of_[v]; }
  EventLoop& loop(std::size_t shard) { return *loops_[shard]; }
  EventLoop& loop_of(VertexId v) { return *loops_[shard_of_[v]]; }
  /// Channel for src-shard -> dst-shard deliveries; nullptr when equal.
  Channel* channel(std::size_t src, std::size_t dst);
  /// Minimum cross-shard link delay (TimePoint::max() when no edge is
  /// cut, e.g. single shard).
  Duration lookahead() const { return lookahead_; }
  /// Independent deterministic random stream for one shard, derived from
  /// the global seed + shard ordinal.
  util::Rng shard_rng(std::size_t shard) const {
    return util::Rng(seed_).fork(0x5AA2D000ULL + shard);
  }

  // --- running --------------------------------------------------------------
  TimePoint now() const { return loops_[0]->now(); }
  /// Run every shard's events with timestamp <= t, then advance all
  /// clocks to t.  Returns events executed across all shards.
  std::size_t run_until(TimePoint t);
  std::size_t run_for(Duration d) { return run_until(now() + d); }

  // --- stats / tracing ------------------------------------------------------
  std::uint64_t events_processed() const;
  std::uint64_t windows_run() const { return windows_; }
  std::uint64_t channel_events() const;
  void set_tracing(bool on);
  /// sha1 hex over the merged per-stream trace tables of all shards,
  /// sorted by stream id — identical for any shard count.
  std::string trace_digest() const;

 private:
  enum class Phase { kWindow, kUntil };

  void worker_main(std::size_t shard);
  void run_phase(Phase phase, TimePoint end);
  void drain_channels();
  std::size_t start_threads_and_barrier(std::size_t n);

  bool planned_ = false;
  std::uint64_t seed_ = 1;
  Duration lookahead_ = Duration::max();
  std::uint64_t windows_ = 0;

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::size_t> shard_of_;  // vertex -> shard
  struct Edge {
    VertexId a, b;
    Duration delay;
  };
  std::vector<Edge> edges_;

  // channels_[src * n + dst]; null on the diagonal.
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<StampedEvent> drain_buf_;

  // Worker coordination.  phase_/phase_end_/counters written by the
  // coordinator strictly before the start barrier and read by workers
  // strictly after it (and vice versa for the end barrier), so plain
  // members suffice; the barrier provides the happens-before edges.
  struct BarrierState;  // hides <barrier> from this header
  std::unique_ptr<BarrierState> bar_;
  std::vector<std::thread> threads_;
  Phase phase_ = Phase::kWindow;
  TimePoint phase_end_{};
  bool quit_ = false;
  std::vector<std::size_t> phase_counts_;  // per-shard events run
};

}  // namespace ipop::sim
