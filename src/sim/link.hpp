// Point-to-point physical link with bandwidth, delay, queue, loss, jitter.
//
// A Link owns two LinkEnd endpoints; whatever is attached to an end (a host
// NIC, a switch port, a NAT interface, IPOP's tap device) exchanges raw
// frames through it.  Each direction models: a drop-tail byte-bounded
// transmit queue, store-and-forward serialization at the configured
// bandwidth, fixed propagation delay, optional uniform jitter and random
// loss.  This is the substrate that stands in for the paper's ACIS LAN,
// Abilene WAN paths and Planet-Lab access links.
//
// Shard affinity: a direction's state is split by which shard touches it.
// The transmit path (loss draw, backlog accounting, tx_free_at, drop/sent
// counters) runs on the *sender's* loop; the delivery lambda (delivered
// counters, receiver handler) runs on the *receiver's* loop.  When the two
// ends live on different shards the delivery is stamped with the
// direction's (stream, seq) key and routed through the engine Channel
// instead of being scheduled directly — scheduling onto a peer shard's
// loop is the race the shard-affinity lint rule flags.  The frame Buffer
// crosses by handle (zero-copy); the window barrier serializes the
// refcount hand-off.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/event_loop.hpp"
#include "util/buffer.hpp"
#include "util/lifetime.hpp"
#include "util/random.hpp"

namespace ipop::sim {

/// Frames are reference-counted buffers: a link (and the learning switch
/// flooding a frame out of several ports) forwards the handle, never the
/// bytes, so the physical substrate adds zero payload copies.
using Frame = util::Buffer;
using FrameHandler = std::function<void(Frame)>;

struct LinkConfig {
  /// One-way propagation delay.
  Duration delay = util::microseconds(100);
  /// Bits per second; 0 means infinite (no serialization delay).
  double bandwidth_bps = 100e6;
  /// Drop-tail transmit queue capacity in bytes (per direction).
  std::size_t queue_bytes = 128 * 1024;
  /// Independent per-frame loss probability.
  double loss_rate = 0.0;
  /// Additional uniform delay in [0, jitter).
  Duration jitter{};
};

struct LinkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped_queue = 0;
  std::uint64_t frames_dropped_loss = 0;
  std::uint64_t bytes_delivered = 0;
};

class Link;

/// One side of a Link: send frames in, receive frames from the peer side.
class LinkEnd {
 public:
  void send(Frame frame);
  void set_receiver(FrameHandler handler) { receiver_ = std::move(handler); }
  bool has_receiver() const { return static_cast<bool>(receiver_); }
  Link& link() { return *link_; }

 private:
  friend class Link;
  Link* link_ = nullptr;
  bool is_a_ = false;
  FrameHandler receiver_;
};

class Link {
 public:
  /// No canonical delivery stream assigned: deliveries schedule as plain
  /// loop-local events (unit tests, intra-host tap links).
  static constexpr std::uint64_t kNoStream = ~0ULL;

  /// Symmetric link.
  Link(EventLoop& loop, const LinkConfig& cfg, util::Rng rng,
       std::string name = "link");
  /// Asymmetric link (separate config per direction).
  Link(EventLoop& loop, const LinkConfig& a_to_b, const LinkConfig& b_to_a,
       util::Rng rng, std::string name = "link");

  LinkEnd& end_a() { return a_; }
  LinkEnd& end_b() { return b_; }

  /// Assign the global delivery-stream ids (canonical cross-partition
  /// sort key; Network derives them from the link's creation index).
  void set_streams(std::uint64_t a_to_b, std::uint64_t b_to_a);
  /// Re-home the two ends onto their shard loops after planning.  A null
  /// channel means the corresponding direction stays intra-shard.
  void bind(EventLoop& loop_a, EventLoop& loop_b, Channel* a_to_b,
            Channel* b_to_a);

  LinkStats stats_a_to_b() const { return stats(0); }
  LinkStats stats_b_to_a() const { return stats(1); }
  const std::string& name() const { return name_; }

  /// Administratively disable/enable (frames dropped while down); used by
  /// churn and failure-injection tests.  Under sharding, call only from
  /// the coordinator between windows (workers never write it).
  void set_up(bool up) { up_ = up; }
  bool is_up() const { return up_; }

 private:
  friend class LinkEnd;

  struct Direction {
    LinkConfig cfg;  // immutable after construction
    // --- sender-shard state (touched only on src_loop's thread) --------
    // Time at which the transmitter finishes serializing queued frames;
    // the byte backlog is derived from this horizon, so drop-tail
    // accounting is exact.
    TimePoint tx_free_at{};
    util::Rng rng;  // per-direction stream: loss + jitter draws
    std::uint64_t stream = kNoStream;
    std::uint64_t seq = 0;  // per-stream monotone delivery sequence
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_dropped_queue = 0;
    std::uint64_t frames_dropped_loss = 0;
    EventLoop* src_loop = nullptr;
    // --- receiver-shard state (touched only on dst_loop's thread) ------
    std::uint64_t rx_frames_delivered = 0;
    std::uint64_t rx_bytes_delivered = 0;
    EventLoop* dst_loop = nullptr;
    Channel* channel = nullptr;  // non-null when the direction crosses
  };

  LinkStats stats(int d) const {
    return LinkStats{dir_[d].frames_sent, dir_[d].rx_frames_delivered,
                     dir_[d].frames_dropped_queue,
                     dir_[d].frames_dropped_loss,
                     dir_[d].rx_bytes_delivered};
  }

  void transmit(bool from_a, Frame frame);

  std::string name_;
  bool up_ = true;
  Direction dir_[2];  // [0]: a->b, [1]: b->a
  LinkEnd a_, b_;
  // Declared last: in-flight delivery events reference dir_/ends by
  // reference; the guard turns them into no-ops once the Link is gone.
  util::AliveToken alive_;
};

}  // namespace ipop::sim
