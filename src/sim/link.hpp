// Point-to-point physical link with bandwidth, delay, queue, loss, jitter.
//
// A Link owns two LinkEnd endpoints; whatever is attached to an end (a host
// NIC, a switch port, a NAT interface, IPOP's tap device) exchanges raw
// frames through it.  Each direction models: a drop-tail byte-bounded
// transmit queue, store-and-forward serialization at the configured
// bandwidth, fixed propagation delay, optional uniform jitter and random
// loss.  This is the substrate that stands in for the paper's ACIS LAN,
// Abilene WAN paths and Planet-Lab access links.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "util/buffer.hpp"
#include "util/lifetime.hpp"
#include "util/random.hpp"

namespace ipop::sim {

/// Frames are reference-counted buffers: a link (and the learning switch
/// flooding a frame out of several ports) forwards the handle, never the
/// bytes, so the physical substrate adds zero payload copies.
using Frame = util::Buffer;
using FrameHandler = std::function<void(Frame)>;

struct LinkConfig {
  /// One-way propagation delay.
  Duration delay = util::microseconds(100);
  /// Bits per second; 0 means infinite (no serialization delay).
  double bandwidth_bps = 100e6;
  /// Drop-tail transmit queue capacity in bytes (per direction).
  std::size_t queue_bytes = 128 * 1024;
  /// Independent per-frame loss probability.
  double loss_rate = 0.0;
  /// Additional uniform delay in [0, jitter).
  Duration jitter{};
};

struct LinkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped_queue = 0;
  std::uint64_t frames_dropped_loss = 0;
  std::uint64_t bytes_delivered = 0;
};

class Link;

/// One side of a Link: send frames in, receive frames from the peer side.
class LinkEnd {
 public:
  void send(Frame frame);
  void set_receiver(FrameHandler handler) { receiver_ = std::move(handler); }
  bool has_receiver() const { return static_cast<bool>(receiver_); }
  Link& link() { return *link_; }

 private:
  friend class Link;
  Link* link_ = nullptr;
  bool is_a_ = false;
  FrameHandler receiver_;
};

class Link {
 public:
  /// Symmetric link.
  Link(EventLoop& loop, const LinkConfig& cfg, util::Rng rng,
       std::string name = "link");
  /// Asymmetric link (separate config per direction).
  Link(EventLoop& loop, const LinkConfig& a_to_b, const LinkConfig& b_to_a,
       util::Rng rng, std::string name = "link");

  LinkEnd& end_a() { return a_; }
  LinkEnd& end_b() { return b_; }

  const LinkStats& stats_a_to_b() const { return dir_[0].stats; }
  const LinkStats& stats_b_to_a() const { return dir_[1].stats; }
  const std::string& name() const { return name_; }

  /// Administratively disable/enable (frames dropped while down); used by
  /// churn and failure-injection tests.
  void set_up(bool up) { up_ = up; }
  bool is_up() const { return up_; }

 private:
  friend class LinkEnd;

  struct Direction {
    LinkConfig cfg;
    // Time at which the transmitter finishes serializing queued frames;
    // the byte backlog is derived from this horizon, so drop-tail
    // accounting is exact.
    TimePoint tx_free_at{};
    LinkStats stats;
  };

  void transmit(bool from_a, Frame frame);

  EventLoop& loop_;
  std::string name_;
  util::Rng rng_;
  bool up_ = true;
  Direction dir_[2];  // [0]: a->b, [1]: b->a
  LinkEnd a_, b_;
  // Declared last: in-flight delivery events reference dir_/ends by
  // reference; the guard turns them into no-ops once the Link is gone.
  util::AliveToken alive_;
};

}  // namespace ipop::sim
