#include "sim/event_loop.hpp"

#include <algorithm>

namespace ipop::sim {

namespace {
// Below this, skipping dead entries on pop is cheaper than rebuilding.
constexpr std::size_t kCompactMinHeap = 64;

// splitmix64 finalizer — decorrelates the trace-chain inputs so the
// merged digest is sensitive to every (at, seq, aux) triple.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

TimePoint EventLoop::clamp_to_now(TimePoint t) {
  // A past timestamp means some layer computed a deadline from stale
  // state — under sharding that is a window-synchronization bug, not a
  // convenience to paper over.
  assert(t >= now_ && "schedule into the past (cross-shard sync bug?)");
  if (t < now_) {
    ++clamped_;
    t = now_;
  }
  return t;
}

void EventLoop::push_item(Item item) {
  heap_.push_back(std::move(item));
  std::push_heap(heap_.begin(), heap_.end());
  ++pending_;
}

EventLoop::EventId EventLoop::schedule_at(TimePoint t, Callback cb) {
  t = clamp_to_now(t);
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_.size();
    slots_.emplace_back();
  }
  slots_[slot].live = true;
  const EventId id =
      (static_cast<EventId>(slot) << 32) | slots_[slot].gen;
  push_item(Item{t, 0, next_seq_++, id, 0, std::move(cb)});
  return id;
}

void EventLoop::schedule_delivery(TimePoint t, std::uint64_t stream,
                                  std::uint64_t seq, std::uint32_t aux,
                                  Callback cb) {
  t = clamp_to_now(t);
  push_item(Item{t, stream + 1, seq, 0, aux, std::move(cb)});
}

void EventLoop::cancel(EventId id) {
  if (!slot_live(id)) return;  // already ran or cancelled (or a delivery)
  release_slot(id);
  --pending_;
  maybe_compact();
}

void EventLoop::maybe_compact() {
  // Rebuild once dead entries outnumber live ones: amortized O(1) per
  // cancel, and the heap never holds more than ~2x the live events.
  if (heap_.size() < kCompactMinHeap) return;
  if (heap_.size() - pending_ <= heap_.size() / 2) return;
  std::erase_if(heap_, [&](const Item& it) { return !item_live(it); });
  std::make_heap(heap_.begin(), heap_.end());
}

bool EventLoop::pop_next(Item& out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    Item item = std::move(heap_.back());
    heap_.pop_back();
    if (!item_live(item)) continue;  // cancelled: discard lazily
    --pending_;
    out = std::move(item);
    return true;
  }
  return false;
}

void EventLoop::restore(Item item) { push_item(std::move(item)); }

TimePoint EventLoop::next_event_at() {
  while (!heap_.empty() && !item_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
  if (heap_.empty()) return TimePoint::max();
  return heap_.front().at;
}

void EventLoop::execute(Item& item) {
  now_ = item.at;
  ++processed_;
  if (item.id != 0) {
    release_slot(item.id);
  } else if (tracing_) {
    TraceStream& ts = trace_[item.key0 - 1];
    ts.chain = mix64(ts.chain ^ mix64(static_cast<std::uint64_t>(
                                          item.at.count()) ^
                                      mix64(item.key1) ^
                                      mix64(item.aux)));
    ++ts.count;
  }
  item.cb();
}

bool EventLoop::run_one() {
  Item item;
  if (!pop_next(item)) return false;
  execute(item);
  return true;
}

std::size_t EventLoop::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && run_one()) ++n;
  return n;
}

std::size_t EventLoop::run_until(TimePoint t) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    Item item;
    if (!pop_next(item)) break;
    if (item.at > t) {
      restore(std::move(item));  // put it back untouched
      break;
    }
    execute(item);
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

std::size_t EventLoop::run_window(TimePoint end) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    Item item;
    if (!pop_next(item)) break;
    if (item.at >= end) {
      restore(std::move(item));  // horizon event: next window's work
      break;
    }
    execute(item);
    ++n;
  }
  if (now_ < end) now_ = end;
  return n;
}

}  // namespace ipop::sim
