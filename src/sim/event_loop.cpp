#include "sim/event_loop.hpp"

#include <algorithm>

namespace ipop::sim {

namespace {
// Below this, skipping dead entries on pop is cheaper than rebuilding.
constexpr std::size_t kCompactMinHeap = 64;
}  // namespace

EventLoop::EventId EventLoop::schedule_at(TimePoint t, Callback cb) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  heap_.push_back(Item{t, next_seq_++, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end());
  live_.insert(id);
  return id;
}

void EventLoop::cancel(EventId id) {
  if (live_.erase(id) == 0) return;  // already ran or cancelled
  maybe_compact();
}

void EventLoop::maybe_compact() {
  // Rebuild once dead entries outnumber live ones: amortized O(1) per
  // cancel, and the heap never holds more than ~2x the live events.
  if (heap_.size() < kCompactMinHeap) return;
  if (heap_.size() - live_.size() <= heap_.size() / 2) return;
  std::erase_if(heap_,
                [&](const Item& it) { return !live_.contains(it.id); });
  std::make_heap(heap_.begin(), heap_.end());
}

bool EventLoop::pop_next(Item& out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    Item item = std::move(heap_.back());
    heap_.pop_back();
    if (live_.erase(item.id) == 0) continue;  // cancelled: discard lazily
    out = std::move(item);
    return true;
  }
  return false;
}

bool EventLoop::run_one() {
  Item item;
  if (!pop_next(item)) return false;
  now_ = item.at;
  ++processed_;
  item.cb();
  return true;
}

std::size_t EventLoop::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && run_one()) ++n;
  return n;
}

std::size_t EventLoop::run_until(TimePoint t) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    Item item;
    if (!pop_next(item)) break;
    if (item.at > t) {
      // Put it back untouched (pop_next removed it from the live set).
      live_.insert(item.id);
      heap_.push_back(std::move(item));
      std::push_heap(heap_.begin(), heap_.end());
      break;
    }
    now_ = item.at;
    ++processed_;
    item.cb();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace ipop::sim
