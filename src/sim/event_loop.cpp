#include "sim/event_loop.hpp"

namespace ipop::sim {

EventLoop::EventId EventLoop::schedule_at(TimePoint t, Callback cb) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  heap_.push(Item{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void EventLoop::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;  // already ran or cancelled
  callbacks_.erase(it);
  cancelled_.insert(id);
}

bool EventLoop::pop_next(Item& out) {
  while (!heap_.empty()) {
    Item item = heap_.top();
    heap_.pop();
    auto cit = cancelled_.find(item.id);
    if (cit != cancelled_.end()) {
      cancelled_.erase(cit);
      continue;
    }
    out = item;
    return true;
  }
  return false;
}

bool EventLoop::run_one() {
  Item item;
  if (!pop_next(item)) return false;
  now_ = item.at;
  auto it = callbacks_.find(item.id);
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  ++processed_;
  cb();
  return true;
}

std::size_t EventLoop::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && run_one()) ++n;
  return n;
}

std::size_t EventLoop::run_until(TimePoint t) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    Item item;
    if (!pop_next(item)) break;
    if (item.at > t) {
      // Put it back untouched; cheapest is to re-push.
      heap_.push(item);
      break;
    }
    now_ = item.at;
    auto it = callbacks_.find(item.id);
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    ++processed_;
    cb();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace ipop::sim
