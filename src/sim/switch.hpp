// Learning Ethernet switch.
//
// Recreates the paper's LAN segments (the ACIS private LAN holding F1, F2,
// F4 and the campus public segment).  The switch learns source MACs per
// port, forwards unicast to the learned port and floods unknown/broadcast
// destinations, with a small per-frame forwarding latency.
//
// For the scale harness the switch can additionally run EVPN-style ARP
// suppression: endpoints register their IP→(MAC, port) binding at attach
// time, broadcast ARP requests for registered IPs are answered by the
// switch itself on the ingress port, and the MAC table is pre-seeded so
// unknown-unicast floods never happen.  Without this, N nodes resolving
// each other on one segment cost O(N²) flooded frames — fatal at 10^4
// ports.  Off by default: the small paper topologies exercise the real
// flood-and-learn behavior.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/link.hpp"
#include "util/lifetime.hpp"

namespace ipop::sim {

class Switch {
 public:
  Switch(EventLoop& loop, std::string name,
         Duration forwarding_delay = util::microseconds(5))
      : loop_(&loop), name_(std::move(name)), delay_(forwarding_delay) {}

  /// Re-home onto a shard loop (engine planning; before any frame flows).
  void rebind(EventLoop& loop) { loop_ = &loop; }

  /// Attach a link end as a switch port; the switch takes over its receive
  /// handler.  Returns the port index.
  std::size_t attach(LinkEnd& end);

  std::size_t ports() const { return ports_.size(); }
  std::uint64_t frames_forwarded() const { return forwarded_; }
  std::uint64_t frames_flooded() const { return flooded_; }
  std::uint64_t arp_suppressed() const { return arp_suppressed_; }
  const std::string& name() const { return name_; }

  /// Turn proxy-ARP / flood suppression on; replays already-registered
  /// endpoints into the MAC table.
  void set_arp_suppression(bool on);
  bool arp_suppression() const { return suppress_arp_; }
  /// Register an endpoint's IPv4→(MAC, port) binding (host byte order).
  /// Consulted only while suppression is on.
  void register_endpoint(std::uint32_t ipv4,
                         const std::array<std::uint8_t, 6>& mac,
                         std::size_t port);

 private:
  using MacKey = std::uint64_t;  // 48-bit MAC packed into 64 bits
  static MacKey mac_key(const Frame& f, std::size_t offset);
  static bool is_broadcast(const Frame& f);

  void handle_frame(std::size_t in_port, Frame frame);
  /// True when the frame was a broadcast ARP request for a registered IP
  /// and a proxy reply has been scheduled on the ingress port.
  bool try_suppress_arp(std::size_t in_port, const Frame& f);

  struct Endpoint {
    std::array<std::uint8_t, 6> mac;
    std::size_t port;
  };

  EventLoop* loop_;
  std::string name_;
  Duration delay_;
  std::vector<LinkEnd*> ports_;
  std::unordered_map<MacKey, std::size_t> mac_table_;
  std::unordered_map<std::uint32_t, Endpoint> arp_registry_;
  bool suppress_arp_ = false;
  std::uint64_t forwarded_ = 0;
  std::uint64_t flooded_ = 0;
  std::uint64_t arp_suppressed_ = 0;
  // Declared last: forwarding-delay events may still be queued when a
  // Switch is destroyed; their lambdas carry a guard, not a bare `this`.
  util::AliveToken alive_;
};

}  // namespace ipop::sim
