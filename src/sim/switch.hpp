// Learning Ethernet switch.
//
// Recreates the paper's LAN segments (the ACIS private LAN holding F1, F2,
// F4 and the campus public segment).  The switch learns source MACs per
// port, forwards unicast to the learned port and floods unknown/broadcast
// destinations, with a small per-frame forwarding latency.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/link.hpp"

namespace ipop::sim {

class Switch {
 public:
  Switch(EventLoop& loop, std::string name,
         Duration forwarding_delay = util::microseconds(5))
      : loop_(loop), name_(std::move(name)), delay_(forwarding_delay) {}

  /// Attach a link end as a switch port; the switch takes over its receive
  /// handler.  Returns the port index.
  std::size_t attach(LinkEnd& end);

  std::size_t ports() const { return ports_.size(); }
  std::uint64_t frames_forwarded() const { return forwarded_; }
  std::uint64_t frames_flooded() const { return flooded_; }
  const std::string& name() const { return name_; }

 private:
  using MacKey = std::uint64_t;  // 48-bit MAC packed into 64 bits
  static MacKey mac_key(const Frame& f, std::size_t offset);
  static bool is_broadcast(const Frame& f);

  void handle_frame(std::size_t in_port, Frame frame);

  EventLoop& loop_;
  std::string name_;
  Duration delay_;
  std::vector<LinkEnd*> ports_;
  std::unordered_map<MacKey, std::size_t> mac_table_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t flooded_ = 0;
};

}  // namespace ipop::sim
