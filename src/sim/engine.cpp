#include "sim/engine.hpp"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <map>
#include <numeric>

#include "util/sha1.hpp"

namespace ipop::sim {

struct ShardedEngine::BarrierState {
  explicit BarrierState(std::ptrdiff_t parties) : barrier(parties) {}
  std::barrier<> barrier;
};

ShardedEngine::ShardedEngine() {
  loops_.push_back(std::make_unique<EventLoop>());
}

ShardedEngine::~ShardedEngine() {
  if (!threads_.empty()) {
    quit_ = true;
    bar_->barrier.arrive_and_wait();  // release workers into their exit path
    for (auto& th : threads_) th.join();
  }
}

ShardedEngine::VertexId ShardedEngine::add_vertex() {
  assert(!planned_ && "register vertices before plan()");
  shard_of_.push_back(0);
  return shard_of_.size() - 1;
}

void ShardedEngine::add_edge(VertexId a, VertexId b, Duration delay) {
  assert(!planned_ && "register edges before plan()");
  edges_.push_back(Edge{a, b, delay});
}

namespace {
// Small deterministic union-find for the shard planner.
struct UnionFind {
  std::vector<std::size_t> parent, size;
  explicit UnionFind(std::size_t n) : parent(n), size(n, 1) {
    std::iota(parent.begin(), parent.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size[a] < size[b]) std::swap(a, b);
    parent[b] = a;
    size[a] += size[b];
    return true;
  }
};
}  // namespace

void ShardedEngine::plan(std::size_t n, std::uint64_t seed) {
  assert(!planned_ && "plan() must run exactly once");
  assert(loops_[0]->pending() == 0 &&
         "plan() must precede all event scheduling");
  if (n < 1) n = 1;
  planned_ = true;
  seed_ = seed;

  const std::size_t v_count = shard_of_.size();
  if (v_count == 0) n = 1;  // nothing to distribute
  if (v_count > 0 && n > 1) {
    UnionFind uf(v_count);
    // Zero-delay edges must never be cut: a zero-delay cross-shard link
    // would force a zero lookahead (empty windows forever).  Contract
    // them unconditionally first.
    for (const Edge& e : edges_) {
      if (e.delay <= Duration::zero()) uf.unite(e.a, e.b);
    }
    // Kruskal under a balance cap: merge along the *smallest*-delay edges
    // so the edges left in the cut are the highest-latency ones — they
    // set the lookahead, and a wide window amortizes the barriers.
    std::vector<std::size_t> order(edges_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return edges_[x].delay < edges_[y].delay;
                     });
    const std::size_t cap = (v_count + n - 1) / n;
    for (std::size_t idx : order) {
      const Edge& e = edges_[idx];
      const std::size_t ra = uf.find(e.a), rb = uf.find(e.b);
      if (ra == rb) continue;
      if (uf.size[ra] + uf.size[rb] > cap) continue;
      uf.unite(ra, rb);
    }
    // Clusters in first-vertex order, then greedy largest-first onto the
    // least-loaded shard (ties to the lowest ordinal) — all deterministic.
    std::vector<std::size_t> roots;
    std::vector<std::size_t> cluster_of(v_count);
    for (std::size_t v = 0; v < v_count; ++v) {
      const std::size_t r = uf.find(v);
      auto it = std::find(roots.begin(), roots.end(), r);
      if (it == roots.end()) {
        roots.push_back(r);
        cluster_of[v] = roots.size() - 1;
      } else {
        cluster_of[v] = static_cast<std::size_t>(it - roots.begin());
      }
    }
    // Never spawn more shards than clusters: surplus shards would be
    // empty loops paying barrier cost for nothing.
    n = std::min(n, roots.size());
    std::vector<std::size_t> cluster_order(roots.size());
    std::iota(cluster_order.begin(), cluster_order.end(), std::size_t{0});
    std::stable_sort(cluster_order.begin(), cluster_order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return uf.size[roots[x]] > uf.size[roots[y]];
                     });
    std::vector<std::size_t> load(n, 0);
    std::vector<std::size_t> cluster_shard(roots.size(), 0);
    for (std::size_t c : cluster_order) {
      const std::size_t s = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      cluster_shard[c] = s;
      load[s] += uf.size[roots[c]];
    }
    for (std::size_t v = 0; v < v_count; ++v) {
      shard_of_[v] = cluster_shard[cluster_of[v]];
    }
  }

  // Lookahead = min delay across the cut.
  lookahead_ = Duration::max();
  for (const Edge& e : edges_) {
    if (shard_of_[e.a] != shard_of_[e.b]) {
      lookahead_ = std::min(lookahead_, e.delay);
    }
  }
  assert((n == 1 || lookahead_ > Duration::zero()) &&
         "zero-delay edge crossed the cut");

  while (loops_.size() < n) loops_.push_back(std::make_unique<EventLoop>());
  if (n > 1) {
    channels_.resize(n * n);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t d = 0; d < n; ++d) {
        if (s != d) channels_[s * n + d] = std::make_unique<Channel>();
      }
    }
    phase_counts_.assign(n, 0);
    bar_ = std::make_unique<BarrierState>(static_cast<std::ptrdiff_t>(n) + 1);
    threads_.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      threads_.emplace_back([this, s] { worker_main(s); });
    }
  }
}

Channel* ShardedEngine::channel(std::size_t src, std::size_t dst) {
  if (channels_.empty() || src == dst) return nullptr;
  return channels_[src * loops_.size() + dst].get();
}

void ShardedEngine::worker_main(std::size_t shard) {
  for (;;) {
    bar_->barrier.arrive_and_wait();  // window start
    if (quit_) return;                // coordinator skips the end barrier too
    EventLoop& lp = *loops_[shard];
    phase_counts_[shard] = (phase_ == Phase::kWindow)
                               ? lp.run_window(phase_end_)
                               : lp.run_until(phase_end_);
    bar_->barrier.arrive_and_wait();  // window end
  }
}

void ShardedEngine::run_phase(Phase phase, TimePoint end) {
  phase_ = phase;
  phase_end_ = end;
  bar_->barrier.arrive_and_wait();  // start: workers run their loops
  bar_->barrier.arrive_and_wait();  // end: all shards reached `end`
  ++windows_;
}

void ShardedEngine::drain_channels() {
  const std::size_t n = loops_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    drain_buf_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      if (src == dst) continue;
      channels_[src * n + dst]->drain(drain_buf_);
    }
    // Insertion order is irrelevant: the destination heap sorts by the
    // canonical (at, stream, seq) stamp the sender assigned.
    EventLoop& lp = *loops_[dst];
    for (StampedEvent& ev : drain_buf_) {
      lp.schedule_delivery(ev.at, ev.stream, ev.seq, ev.aux,
                           std::move(ev.cb));
    }
  }
  drain_buf_.clear();
}

std::size_t ShardedEngine::run_until(TimePoint t) {
  if (loops_.size() == 1) return loops_[0]->run_until(t);

  std::size_t total = 0;
  for (;;) {
    drain_channels();
    TimePoint next = TimePoint::max();
    for (auto& lp : loops_) next = std::min(next, lp->next_event_at());
    if (next > t) break;  // nothing left at or before the target
    // Jump straight to the global next event (empty-gap skip), then run
    // one conservative window.  When the horizon would pass the target,
    // finish with an inclusive run-to-t: every cross-shard send produced
    // by an event at s <= t delivers at >= next + lookahead > t, so the
    // tail phase is still causally closed.
    if (lookahead_ == Duration::max() || next > t - lookahead_) {
      run_phase(Phase::kUntil, t);
    } else {
      run_phase(Phase::kWindow, next + lookahead_);
    }
    for (std::size_t s = 0; s < phase_counts_.size(); ++s) {
      total += phase_counts_[s];
    }
  }
  for (auto& lp : loops_) lp->advance_to(t);
  return total;
}

std::uint64_t ShardedEngine::events_processed() const {
  std::uint64_t n = 0;
  for (const auto& lp : loops_) n += lp->events_processed();
  return n;
}

std::uint64_t ShardedEngine::channel_events() const {
  std::uint64_t n = 0;
  for (const auto& ch : channels_) {
    if (ch) n += ch->events_forwarded();
  }
  return n;
}

void ShardedEngine::set_tracing(bool on) {
  for (auto& lp : loops_) lp->set_tracing(on);
}

std::string ShardedEngine::trace_digest() const {
  // Within one run a stream (link direction) delivers to exactly one
  // shard, so merging the per-loop tables is a disjoint union; sorting by
  // stream id makes the digest independent of the partition.
  std::map<std::uint64_t, EventLoop::TraceStream> merged;
  for (const auto& lp : loops_) {
    for (const auto& [stream, ts] : lp->trace()) {
      auto [it, inserted] = merged.emplace(stream, ts);
      if (!inserted) {
        // Defensive: fold duplicates deterministically (cannot happen
        // while links keep a fixed receiver shard within a run).
        it->second.chain ^= ts.chain;
        it->second.count += ts.count;
      }
    }
  }
  util::Sha1 sha;
  for (const auto& [stream, ts] : merged) {
    std::uint8_t rec[24];
    auto put64 = [&rec](std::size_t off, std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        rec[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
      }
    };
    put64(0, stream);
    put64(8, ts.chain);
    put64(16, ts.count);
    sha.update(std::span<const std::uint8_t>(rec, sizeof rec));
  }
  const util::Sha1Digest digest = sha.finish();
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : digest) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

}  // namespace ipop::sim
