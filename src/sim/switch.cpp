#include "sim/switch.hpp"

namespace ipop::sim {

std::size_t Switch::attach(LinkEnd& end) {
  const std::size_t port = ports_.size();
  ports_.push_back(&end);
  end.set_receiver(
      [this, port](Frame frame) { handle_frame(port, std::move(frame)); });
  return port;
}

Switch::MacKey Switch::mac_key(const Frame& f, std::size_t offset) {
  MacKey key = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    key = (key << 8) | f[offset + i];
  }
  return key;
}

bool Switch::is_broadcast(const Frame& f) {
  for (std::size_t i = 0; i < 6; ++i) {
    if (f[i] != 0xFF) return false;
  }
  return true;
}

void Switch::handle_frame(std::size_t in_port, Frame frame) {
  if (frame.size() < 14) return;  // runt frame: drop

  mac_table_[mac_key(frame, 6)] = in_port;  // learn source

  auto forward = [this](std::size_t port, Frame f) {
    loop_.schedule_after(delay_, [this, port, f = std::move(f)]() mutable {
      ports_[port]->send(std::move(f));
    });
  };

  if (!is_broadcast(frame)) {
    auto it = mac_table_.find(mac_key(frame, 0));
    if (it != mac_table_.end()) {
      if (it->second != in_port) {
        ++forwarded_;
        forward(it->second, std::move(frame));
      }
      return;
    }
  }
  // Broadcast or unknown unicast: flood all other ports.
  ++flooded_;
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    if (p == in_port) continue;
    forward(p, frame);
  }
}

}  // namespace ipop::sim
