#include "sim/switch.hpp"

namespace ipop::sim {

std::size_t Switch::attach(LinkEnd& end) {
  const std::size_t port = ports_.size();
  ports_.push_back(&end);
  end.set_receiver(
      [this, port](Frame frame) { handle_frame(port, std::move(frame)); });
  return port;
}

Switch::MacKey Switch::mac_key(const Frame& f, std::size_t offset) {
  MacKey key = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    key = (key << 8) | f[offset + i];
  }
  return key;
}

bool Switch::is_broadcast(const Frame& f) {
  for (std::size_t i = 0; i < 6; ++i) {
    if (f[i] != 0xFF) return false;
  }
  return true;
}

void Switch::set_arp_suppression(bool on) {
  suppress_arp_ = on;
  if (!on) return;
  for (const auto& [ip, ep] : arp_registry_) {
    MacKey key = 0;
    for (std::size_t i = 0; i < 6; ++i) key = (key << 8) | ep.mac[i];
    mac_table_[key] = ep.port;
  }
}

void Switch::register_endpoint(std::uint32_t ipv4,
                               const std::array<std::uint8_t, 6>& mac,
                               std::size_t port) {
  arp_registry_[ipv4] = Endpoint{mac, port};
  if (suppress_arp_) {
    MacKey key = 0;
    for (std::size_t i = 0; i < 6; ++i) key = (key << 8) | mac[i];
    mac_table_[key] = port;
  }
}

bool Switch::try_suppress_arp(std::size_t in_port, const Frame& f) {
  // Raw-offset parse (the sim layer must not depend on net/ codecs):
  // Ethernet type at 12, then the ARP body — htype 14, ptype 16, hlen 18,
  // plen 19, oper 20, sha 22, spa 28, tha 32, tpa 38.
  if (f.size() < 42) return false;
  if (f[12] != 0x08 || f[13] != 0x06) return false;  // not ARP
  if (f[14] != 0x00 || f[15] != 0x01) return false;  // not Ethernet
  if (f[16] != 0x08 || f[17] != 0x00) return false;  // not IPv4
  if (f[18] != 6 || f[19] != 4) return false;
  if (f[20] != 0x00 || f[21] != 0x01) return false;  // not a request
  std::uint32_t target_ip = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    target_ip = (target_ip << 8) | f[38 + i];
  }
  const auto it = arp_registry_.find(target_ip);
  if (it == arp_registry_.end()) return false;  // unknown: flood normally
  const Endpoint& ep = it->second;

  // Proxy reply: owner's binding, unicast back to the requester.
  auto reply = util::Buffer::allocate(42, 0);
  std::uint8_t* r = reply.data();
  for (std::size_t i = 0; i < 6; ++i) r[i] = f[6 + i];  // eth dst = requester
  for (std::size_t i = 0; i < 6; ++i) r[6 + i] = ep.mac[i];
  r[12] = 0x08; r[13] = 0x06;
  r[14] = 0x00; r[15] = 0x01;  // htype: Ethernet
  r[16] = 0x08; r[17] = 0x00;  // ptype: IPv4
  r[18] = 6; r[19] = 4;
  r[20] = 0x00; r[21] = 0x02;  // oper: reply
  for (std::size_t i = 0; i < 6; ++i) r[22 + i] = ep.mac[i];  // sha
  for (std::size_t i = 0; i < 4; ++i) r[28 + i] = f[38 + i];  // spa = asked IP
  for (std::size_t i = 0; i < 6; ++i) r[32 + i] = f[22 + i];  // tha
  for (std::size_t i = 0; i < 4; ++i) r[38 + i] = f[28 + i];  // tpa
  ++arp_suppressed_;
  loop_->schedule_after(delay_,
                       [this, alive = alive_.guard(), in_port,
                        reply = std::move(reply)]() mutable {
                         if (!alive) return;
                         ports_[in_port]->send(std::move(reply));
                       });
  return true;
}

void Switch::handle_frame(std::size_t in_port, Frame frame) {
  if (frame.size() < 14) return;  // runt frame: drop

  mac_table_[mac_key(frame, 6)] = in_port;  // learn source

  auto forward = [this](std::size_t port, Frame f) {
    loop_->schedule_after(delay_, [this, alive = alive_.guard(), port,
                                  f = std::move(f)]() mutable {
      if (!alive) return;
      ports_[port]->send(std::move(f));
    });
  };

  if (!is_broadcast(frame)) {
    auto it = mac_table_.find(mac_key(frame, 0));
    if (it != mac_table_.end()) {
      if (it->second != in_port) {
        ++forwarded_;
        forward(it->second, std::move(frame));
      }
      return;
    }
  }
  if (suppress_arp_ && try_suppress_arp(in_port, frame)) return;
  // Broadcast or unknown unicast: flood all other ports.
  ++flooded_;
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    if (p == in_port) continue;
    forward(p, frame);
  }
}

}  // namespace ipop::sim
