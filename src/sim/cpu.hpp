// Host CPU occupancy model.
//
// The paper attributes IPOP's latency overhead to user-level packet
// processing (tap reads, Mono runtime, encapsulation) and shows that on
// overloaded Planet-Lab routers (load > 10) this inflates RTTs to seconds.
// CpuScheduler serializes simulated work on one core and scales each task's
// cost by (1 + load), reproducing both the unloaded 6-10 ms overhead and
// the loaded Planet-Lab regime with a single mechanism.
#pragma once

#include <functional>
#include <string>

#include "sim/event_loop.hpp"
#include "util/random.hpp"

namespace ipop::sim {

class CpuScheduler {
 public:
  CpuScheduler(EventLoop& loop, std::string name)
      : loop_(&loop), name_(std::move(name)) {}

  /// Re-home onto a shard loop (engine planning; before any work runs).
  void rebind(EventLoop& loop) { loop_ = &loop; }

  /// External contention: effective task cost = cost * (1 + load).
  void set_load(double load) { load_ = load < 0 ? 0 : load; }
  double load() const { return load_; }

  /// Timesharing model: before each task runs, the process waits an
  /// exponentially distributed scheduling delay with mean quantum * load
  /// (zero quantum disables it).  This is what turns "CPU load in excess
  /// of 10" on Planet-Lab routers into the paper's multi-second RTTs
  /// (Section IV-D): the user-level router waits whole timeslices before
  /// it even touches a packet.
  void set_sched_quantum(Duration q) { sched_quantum_ = q; }
  Duration sched_quantum() const { return sched_quantum_; }

  /// Enqueue `cost` worth of CPU work; `done` fires when it completes.
  /// Work is FIFO-serialized: a busy CPU delays subsequent packets, which
  /// is exactly the queueing effect seen at loaded overlay routers.
  void run(Duration cost, std::function<void()> done);

  /// Total CPU time consumed (after load scaling).
  Duration busy_total() const { return busy_total_; }
  /// Time at which all queued work completes.
  TimePoint free_at() const { return free_at_; }
  /// Work items executed.
  std::uint64_t tasks() const { return tasks_; }
  const std::string& name() const { return name_; }

 private:
  EventLoop* loop_;
  std::string name_;
  double load_ = 0.0;
  Duration sched_quantum_{};
  util::Rng rng_{0xC0FFEE};
  TimePoint free_at_{};
  Duration busy_total_{};
  std::uint64_t tasks_ = 0;
};

}  // namespace ipop::sim
