#include "sim/cpu.hpp"

#include <cmath>

namespace ipop::sim {

void CpuScheduler::run(Duration cost, std::function<void()> done) {
  const auto scaled = Duration{static_cast<std::int64_t>(
      std::llround(static_cast<double>(cost.count()) * (1.0 + load_)))};
  // Timeslice wait applies when the process has to be *scheduled in*
  // (CPU idle for us).  Work arriving while we are already running or
  // queued is handled within the same burst — otherwise a loaded node
  // could never drain its queue.
  Duration sched_wait{};
  if (sched_quantum_.count() > 0 && load_ > 0 && free_at_ <= loop_->now()) {
    sched_wait = Duration{static_cast<std::int64_t>(rng_.exponential(
        static_cast<double>(sched_quantum_.count()) * load_))};
  }
  const TimePoint start = std::max(loop_->now(), free_at_) + sched_wait;
  const TimePoint finish = start + scaled;
  free_at_ = finish;
  busy_total_ += scaled;
  ++tasks_;
  loop_->schedule_at(finish, std::move(done));
}

}  // namespace ipop::sim
