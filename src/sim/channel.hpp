// Cross-shard event channel for the sharded engine.
//
// When a Link's endpoints live on different shards, the sender's transmit
// path cannot touch the receiver's EventLoop directly — loops are
// single-threaded by contract.  Instead it stamps the delivery with its
// canonical sort key (deliver-at time, stream id, per-stream sequence) and
// pushes it onto the Channel for that (source shard, destination shard)
// pair.  The engine drains every channel at the window barrier — on the
// coordinating thread, while all workers are parked — and re-schedules the
// stamped events onto the destination loops via schedule_delivery.
//
// Determinism: the stamp, not arrival order, decides execution order.
// Whatever interleaving the producer threads ran in, the destination
// loop's heap sorts deliveries by (at, stream, seq), which the sender
// assigned deterministically.  Conservative windows guarantee the stamp's
// time is at least one lookahead past the window that produced it, so a
// drained event can never land in a shard's past.
//
// Thread-safety: each channel is SPSC by discipline — exactly one
// producer (the source shard's worker, during a window) and one consumer
// (the coordinator, between windows), never concurrently; the window
// barrier provides the happens-before edge.  The mutex is therefore
// uncontended; it exists to make the hand-off explicit and TSan-provable
// rather than to arbitrate races.
//
// Zero-copy: the stamped callback carries its util::Buffer frame by
// handle.  The refcount is the only state shared across the shard
// boundary, and the barrier serializes the transfer, so the
// shared_ptr-based count stays sound.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/event_loop.hpp"

namespace ipop::sim {

/// One cross-shard event, carrying its canonical sort key.
struct StampedEvent {
  TimePoint at;
  std::uint64_t stream;  // global link-direction id
  std::uint64_t seq;     // per-stream monotone sequence (sender-assigned)
  std::uint32_t aux;     // frame size, folded into the trace digest
  EventLoop::Callback cb;
};

class Channel {
 public:
  /// Producer side (source shard's worker thread, during a window).
  void push(StampedEvent ev);

  /// Consumer side (coordinator thread, between windows): move out all
  /// queued events, appending to `out` (reused across calls).
  void drain(std::vector<StampedEvent>& out);

  std::uint64_t events_forwarded() const { return forwarded_; }

 private:
  std::mutex mu_;
  std::vector<StampedEvent> pending_;
  std::uint64_t forwarded_ = 0;  // coordinator-side tally (drain path)
};

}  // namespace ipop::sim
