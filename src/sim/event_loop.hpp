// Deterministic discrete-event simulation core.
//
// Every host, link, protocol timer and application in the reproduction is
// driven by an EventLoop.  Since the engine refactor a run may use several
// loops — one per shard — so the tie-break order at equal timestamps must
// be *partition-invariant*: it cannot depend on which loop an event landed
// on or on a global scheduling counter.  The ordering contract is:
//
//   1. primary key: timestamp `at` (simulated nanoseconds);
//   2. at equal timestamps, timer events (schedule_at/schedule_after) run
//      before link deliveries (schedule_delivery);
//   3. timer ties break on the loop-local scheduling sequence.  All
//      inter-vertex links have positive delay, so two vertices can only
//      produce same-timestamp timers via causally independent chains whose
//      relative order is fixed by construction order — which every
//      partition replays identically;
//   4. delivery ties break on (stream id, per-stream sequence), both
//      assigned by the sender independent of partitioning.
//
// Under this contract entire experiments are bit-for-bit reproducible
// across runs *and across shard counts* — the property all the
// paper-table benches, churn tests and the cross-shard digest test rely
// on.
//
// Layout is sized for 10^4..10^5-node runs: the callback lives inside the
// heap item (one allocation-free slot per event instead of a side map
// entry each), liveness is a generation-stamped slot vector (O(1) array
// indexing per cancel/pop, no hashing), and cancellation is lazy with
// compaction — a churning overlay cancels far-future keepalive/renew
// timers constantly, and without compaction those dead slots would
// dominate the heap.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace ipop::sim {

using util::Duration;
using util::TimePoint;

class EventLoop {
 public:
  using Callback = std::function<void()>;
  /// (slot << 32) | generation.  0 is never a valid id (generations start
  /// at 1), so callers can use 0 as a "no timer armed" sentinel.
  using EventId = std::uint64_t;

  /// Chained per-stream trace state; see trace().
  struct TraceStream {
    std::uint64_t chain = 0;
    std::uint64_t count = 0;
  };

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `cb` at absolute time `t`.  Scheduling in the past is a
  /// synchronization bug under sharding: debug builds assert; release
  /// builds clamp to now() and count it in clamped_schedules().
  EventId schedule_at(TimePoint t, Callback cb);
  /// Schedule `cb` after a relative delay.
  EventId schedule_after(Duration d, Callback cb) {
    return schedule_at(now_ + d, std::move(cb));
  }
  /// Schedule a link delivery carrying its canonical cross-partition sort
  /// key: `stream` is the global link-direction id, `seq` the sender's
  /// per-stream monotone sequence, `aux` a payload discriminator (frame
  /// size) folded into the event-trace digest.  Deliveries are not
  /// cancellable (links guard their callbacks with AliveTokens instead).
  void schedule_delivery(TimePoint t, std::uint64_t stream, std::uint64_t seq,
                         std::uint32_t aux, Callback cb);
  /// Cancel a pending event; harmless if it already ran.
  void cancel(EventId id);

  /// Run the next event, if any.  Returns false when the queue is empty.
  bool run_one();
  /// Run until the queue drains or stop() is called; returns events run.
  std::size_t run();
  /// Run all events with timestamp <= t, then advance the clock to t.
  std::size_t run_until(TimePoint t);
  /// Run all events with timestamp strictly < end, then advance the clock
  /// to end.  This is the conservative-window primitive: the sharded
  /// engine runs disjoint half-open windows [w, w+lookahead) so an event
  /// at exactly the horizon lands in the next window on every shard.
  std::size_t run_window(TimePoint end);
  /// Convenience: run_until(now + d).
  std::size_t run_for(Duration d) { return run_until(now_ + d); }
  /// Make run()/run_until() return at the next event boundary.
  void stop() { stopped_ = true; }

  /// Timestamp of the earliest pending event, or TimePoint::max() when
  /// the queue is empty.  Prunes cancelled debris from the heap top.
  TimePoint next_event_at();

  /// Advance the clock without running anything (engine barrier path;
  /// asserts no event would be skipped).
  void advance_to(TimePoint t) {
    assert(next_event_at() >= t);
    if (now_ < t) now_ = t;
  }

  /// Live (scheduled, not cancelled, not yet run) events — exact.
  std::size_t pending() const { return pending_; }
  /// Heap slots actually held, including lazily-cancelled entries not yet
  /// compacted.  Bounded at O(pending()): the growth-regression test
  /// asserts cancelled debris cannot accumulate.
  std::size_t queue_depth() const { return heap_.size(); }
  std::uint64_t events_processed() const { return processed_; }
  /// Release-build count of past-timestamp schedules clamped to now().
  std::uint64_t clamped_schedules() const { return clamped_; }

  /// Event-trace recording: when on, every executed delivery folds
  /// (at, seq, aux) into its stream's running chain.  The per-stream
  /// tables of all shards merge into one digest independent of execution
  /// interleaving — see ShardedEngine::trace_digest().
  void set_tracing(bool on) { tracing_ = on; }
  bool tracing() const { return tracing_; }
  const std::unordered_map<std::uint64_t, TraceStream>& trace() const {
    return trace_;
  }

 private:
  struct Item {
    TimePoint at;
    std::uint64_t key0;  // 0 = timer; stream id + 1 = delivery
    std::uint64_t key1;  // timer: loop-local seq; delivery: stream seq
    EventId id;          // 0 for deliveries (not cancellable)
    std::uint32_t aux;
    Callback cb;
    // Heap is a max-heap; invert so the canonical order pops first.
    bool operator<(const Item& o) const {
      if (at != o.at) return at > o.at;
      if (key0 != o.key0) return key0 > o.key0;
      return key1 > o.key1;
    }
  };

  /// One liveness slot per outstanding timer.  The generation stamp makes
  /// stale EventIds (and lazily-dead heap entries) O(1) detectable after
  /// the slot is reused.
  struct Slot {
    std::uint32_t gen = 1;
    bool live = false;
  };

  bool item_live(const Item& it) const {
    if (it.id == 0) return true;  // deliveries are never cancelled
    return slot_live(it.id);
  }
  bool slot_live(EventId id) const {
    const std::size_t slot = id >> 32;
    const auto gen = static_cast<std::uint32_t>(id);
    return slot < slots_.size() && slots_[slot].gen == gen &&
           slots_[slot].live;
  }
  /// Free a timer's slot once it has executed (or been cancelled).
  /// Bumping the generation invalidates every outstanding copy of the id.
  void release_slot(EventId id) {
    const std::size_t slot = id >> 32;
    slots_[slot].live = false;
    ++slots_[slot].gen;
    free_slots_.push_back(static_cast<std::uint32_t>(slot));
  }

  TimePoint clamp_to_now(TimePoint t);
  void push_item(Item item);
  bool pop_next(Item& out);
  void restore(Item item);
  void execute(Item& item);
  void maybe_compact();

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t clamped_ = 0;
  std::size_t pending_ = 0;  // live items currently in heap_
  bool stopped_ = false;
  bool tracing_ = false;
  // Binary heap via push_heap/pop_heap (priority_queue would hide the
  // storage needed for compaction).
  std::vector<Item> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<std::uint64_t, TraceStream> trace_;
};

}  // namespace ipop::sim
