// Deterministic discrete-event simulation core.
//
// Every host, link, protocol timer and application in the reproduction is
// driven by one EventLoop.  Events at equal timestamps fire in scheduling
// order (a monotone sequence number breaks ties), which makes entire
// experiments bit-for-bit reproducible across runs — the property all the
// paper-table benches and churn tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace ipop::sim {

using util::Duration;
using util::TimePoint;

class EventLoop {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (clamped to now if in the past).
  EventId schedule_at(TimePoint t, Callback cb);
  /// Schedule `cb` after a relative delay.
  EventId schedule_after(Duration d, Callback cb) {
    return schedule_at(now_ + d, std::move(cb));
  }
  /// Cancel a pending event; harmless if it already ran.
  void cancel(EventId id);

  /// Run the next event, if any.  Returns false when the queue is empty.
  bool run_one();
  /// Run until the queue drains or stop() is called; returns events run.
  std::size_t run();
  /// Run all events with timestamp <= t, then advance the clock to t.
  std::size_t run_until(TimePoint t);
  /// Convenience: run_until(now + d).
  std::size_t run_for(Duration d) { return run_until(now_ + d); }
  /// Make run()/run_until() return at the next event boundary.
  void stop() { stopped_ = true; }

  std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Item {
    TimePoint at;
    std::uint64_t seq;
    EventId id;
    // Heap is a max-heap; invert so earliest (then lowest seq) pops first.
    bool operator<(const Item& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  bool pop_next(Item& out);

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Item> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ipop::sim
