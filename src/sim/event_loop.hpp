// Deterministic discrete-event simulation core.
//
// Every host, link, protocol timer and application in the reproduction is
// driven by one EventLoop.  Events at equal timestamps fire in scheduling
// order (a monotone sequence number breaks ties), which makes entire
// experiments bit-for-bit reproducible across runs — the property all the
// paper-table benches and churn tests rely on.
//
// Layout is sized for 10^4..10^5-node runs: the callback lives inside the
// heap item (one allocation-free slot per event instead of a side map
// entry each), liveness is a single id set, and cancellation is lazy with
// compaction — a churning overlay cancels far-future keepalive/renew
// timers constantly, and without compaction those dead slots would
// dominate the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace ipop::sim {

using util::Duration;
using util::TimePoint;

class EventLoop {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (clamped to now if in the past).
  EventId schedule_at(TimePoint t, Callback cb);
  /// Schedule `cb` after a relative delay.
  EventId schedule_after(Duration d, Callback cb) {
    return schedule_at(now_ + d, std::move(cb));
  }
  /// Cancel a pending event; harmless if it already ran.
  void cancel(EventId id);

  /// Run the next event, if any.  Returns false when the queue is empty.
  bool run_one();
  /// Run until the queue drains or stop() is called; returns events run.
  std::size_t run();
  /// Run all events with timestamp <= t, then advance the clock to t.
  std::size_t run_until(TimePoint t);
  /// Convenience: run_until(now + d).
  std::size_t run_for(Duration d) { return run_until(now_ + d); }
  /// Make run()/run_until() return at the next event boundary.
  void stop() { stopped_ = true; }

  /// Live (scheduled, not cancelled, not yet run) events — exact.
  std::size_t pending() const { return live_.size(); }
  /// Heap slots actually held, including lazily-cancelled entries not yet
  /// compacted.  Bounded at O(pending()): the growth-regression test
  /// asserts cancelled debris cannot accumulate.
  std::size_t queue_depth() const { return heap_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Item {
    TimePoint at;
    std::uint64_t seq;
    EventId id;
    Callback cb;
    // Heap is a max-heap; invert so earliest (then lowest seq) pops first.
    bool operator<(const Item& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  bool pop_next(Item& out);
  void maybe_compact();

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
  // Binary heap via push_heap/pop_heap (priority_queue would hide the
  // storage needed for compaction).
  std::vector<Item> heap_;
  std::unordered_set<EventId> live_;
};

}  // namespace ipop::sim
