#include "sim/link.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace ipop::sim {

void LinkEnd::send(Frame frame) { link_->transmit(is_a_, std::move(frame)); }

Link::Link(EventLoop& loop, const LinkConfig& cfg, util::Rng rng,
           std::string name)
    : Link(loop, cfg, cfg, std::move(rng), std::move(name)) {}

Link::Link(EventLoop& loop, const LinkConfig& a_to_b, const LinkConfig& b_to_a,
           util::Rng rng, std::string name)
    : name_(std::move(name)) {
  dir_[0].cfg = a_to_b;
  dir_[1].cfg = b_to_a;
  // Independent per-direction streams so the two senders' draws stay
  // uncoupled when the directions run on different shards.
  dir_[0].rng = rng.fork(0);
  dir_[1].rng = rng.fork(1);
  for (Direction& d : dir_) {
    d.src_loop = &loop;
    d.dst_loop = &loop;
  }
  a_.link_ = this;
  a_.is_a_ = true;
  b_.link_ = this;
  b_.is_a_ = false;
}

void Link::set_streams(std::uint64_t a_to_b, std::uint64_t b_to_a) {
  dir_[0].stream = a_to_b;
  dir_[1].stream = b_to_a;
}

void Link::bind(EventLoop& loop_a, EventLoop& loop_b, Channel* a_to_b,
                Channel* b_to_a) {
  dir_[0].src_loop = &loop_a;
  dir_[0].dst_loop = &loop_b;
  dir_[0].channel = a_to_b;
  dir_[1].src_loop = &loop_b;
  dir_[1].dst_loop = &loop_a;
  dir_[1].channel = b_to_a;
}

void Link::transmit(bool from_a, Frame frame) {
  Direction& d = dir_[from_a ? 0 : 1];
  LinkEnd& dst = from_a ? b_ : a_;
  ++d.frames_sent;

  if (!up_) {
    ++d.frames_dropped_loss;
    return;
  }
  if (d.cfg.loss_rate > 0 && d.rng.chance(d.cfg.loss_rate)) {
    ++d.frames_dropped_loss;
    return;
  }

  const TimePoint now = d.src_loop->now();
  // Current backlog in bytes is the unserialized horizon times bandwidth.
  double backlog_bytes = 0.0;
  if (d.cfg.bandwidth_bps > 0 && d.tx_free_at > now) {
    backlog_bytes = static_cast<double>((d.tx_free_at - now).count()) *
                    d.cfg.bandwidth_bps / 8e9;
  }
  if (backlog_bytes + static_cast<double>(frame.size()) >
      static_cast<double>(d.cfg.queue_bytes)) {
    ++d.frames_dropped_queue;
    IPOP_LOG_TRACE(name_ << ": queue drop (" << backlog_bytes << "B backlog)");
    return;
  }

  Duration serialization{};
  if (d.cfg.bandwidth_bps > 0) {
    serialization = Duration{static_cast<std::int64_t>(std::llround(
        static_cast<double>(frame.size()) * 8.0 / d.cfg.bandwidth_bps * 1e9))};
  }
  const TimePoint tx_start = std::max(now, d.tx_free_at);
  const TimePoint tx_done = tx_start + serialization;
  d.tx_free_at = tx_done;

  Duration jitter{};
  if (d.cfg.jitter.count() > 0) {
    jitter = Duration{static_cast<std::int64_t>(
        d.rng.uniform(0, static_cast<double>(d.cfg.jitter.count())))};
  }
  const TimePoint deliver_at = tx_done + d.cfg.delay + jitter;
  const std::size_t frame_size = frame.size();

  // The delivery closure touches only receiver-shard state; the sender's
  // counters above were already settled on this thread.
  auto deliver = [alive = alive_.guard(), &d, &dst, frame = std::move(frame),
                  frame_size]() mutable {
    if (!alive) return;
    ++d.rx_frames_delivered;
    d.rx_bytes_delivered += frame_size;
    if (dst.receiver_) dst.receiver_(std::move(frame));
  };

  if (d.channel != nullptr) {
    d.channel->push(StampedEvent{deliver_at, d.stream, d.seq++,
                                 static_cast<std::uint32_t>(frame_size),
                                 std::move(deliver)});
  } else if (d.stream != kNoStream) {
    d.dst_loop->schedule_delivery(deliver_at, d.stream, d.seq++,
                                  static_cast<std::uint32_t>(frame_size),
                                  std::move(deliver));
  } else {
    // Untagged (unit-test / intra-host) link: plain loop-local event.
    d.dst_loop->schedule_at(deliver_at, std::move(deliver));
  }
}

}  // namespace ipop::sim
