#include "sim/link.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace ipop::sim {

void LinkEnd::send(Frame frame) { link_->transmit(is_a_, std::move(frame)); }

Link::Link(EventLoop& loop, const LinkConfig& cfg, util::Rng rng,
           std::string name)
    : Link(loop, cfg, cfg, std::move(rng), std::move(name)) {}

Link::Link(EventLoop& loop, const LinkConfig& a_to_b, const LinkConfig& b_to_a,
           util::Rng rng, std::string name)
    : loop_(loop), name_(std::move(name)), rng_(std::move(rng)) {
  dir_[0].cfg = a_to_b;
  dir_[1].cfg = b_to_a;
  a_.link_ = this;
  a_.is_a_ = true;
  b_.link_ = this;
  b_.is_a_ = false;
}

void Link::transmit(bool from_a, Frame frame) {
  Direction& d = dir_[from_a ? 0 : 1];
  LinkEnd& dst = from_a ? b_ : a_;
  ++d.stats.frames_sent;

  if (!up_) {
    ++d.stats.frames_dropped_loss;
    return;
  }
  if (d.cfg.loss_rate > 0 && rng_.chance(d.cfg.loss_rate)) {
    ++d.stats.frames_dropped_loss;
    return;
  }

  const TimePoint now = loop_.now();
  // Current backlog in bytes is the unserialized horizon times bandwidth.
  double backlog_bytes = 0.0;
  if (d.cfg.bandwidth_bps > 0 && d.tx_free_at > now) {
    backlog_bytes = static_cast<double>((d.tx_free_at - now).count()) *
                    d.cfg.bandwidth_bps / 8e9;
  }
  if (backlog_bytes + static_cast<double>(frame.size()) >
      static_cast<double>(d.cfg.queue_bytes)) {
    ++d.stats.frames_dropped_queue;
    IPOP_LOG_TRACE(name_ << ": queue drop (" << backlog_bytes << "B backlog)");
    return;
  }

  Duration serialization{};
  if (d.cfg.bandwidth_bps > 0) {
    serialization = Duration{static_cast<std::int64_t>(std::llround(
        static_cast<double>(frame.size()) * 8.0 / d.cfg.bandwidth_bps * 1e9))};
  }
  const TimePoint tx_start = std::max(now, d.tx_free_at);
  const TimePoint tx_done = tx_start + serialization;
  d.tx_free_at = tx_done;

  Duration jitter{};
  if (d.cfg.jitter.count() > 0) {
    jitter = Duration{static_cast<std::int64_t>(
        rng_.uniform(0, static_cast<double>(d.cfg.jitter.count())))};
  }
  const TimePoint deliver_at = tx_done + d.cfg.delay + jitter;
  const std::size_t frame_size = frame.size();

  loop_.schedule_at(
      deliver_at, [alive = alive_.guard(), &d, &dst,
                   frame = std::move(frame), frame_size]() mutable {
        if (!alive) return;
        ++d.stats.frames_delivered;
        d.stats.bytes_delivered += frame_size;
        if (dst.receiver_) dst.receiver_(std::move(frame));
      });
}

}  // namespace ipop::sim
