#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ipop::util {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.count_ == 0) return;
  if (count_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(o.count_);
  const double delta = o.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += o.m2_ + delta * delta * na * nb / n;
  count_ += o.count_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

std::string Histogram::render(std::size_t max_width,
                              const std::string& unit) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "[%8.1f, %8.1f)%s ", bin_lo(i),
                  bin_lo(i) + width_, unit.c_str());
    os << label;
    const std::size_t bar = counts_[i] * max_width / peak;
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

std::string Histogram::to_csv() const {
  std::ostringstream os;
  os << "bin_lo,bin_hi,count\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << bin_lo(i) << ',' << bin_lo(i) + width_ << ',' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace ipop::util
