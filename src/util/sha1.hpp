// SHA-1 (FIPS 180-1), implemented from scratch.
//
// IPOP's address scheme maps a virtual IP to the P2P node whose 160-bit
// Brunet address is the SHA-1 hash of the IP (paper Section III-B), and the
// Brunet-ARP mapper stores the IP->node binding at SHA1(ip) (Section
// III-E).  SHA-1 being exactly 160 bits is what makes the overlay address
// space line up, so we implement the real algorithm rather than a stand-in.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace ipop::util {

using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1 context (update in chunks, then finish).
class Sha1 {
 public:
  Sha1() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);
  /// Finalizes and returns the digest; the context must be reset() before
  /// reuse.
  Sha1Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience wrappers.
Sha1Digest sha1(std::span<const std::uint8_t> data);
Sha1Digest sha1(std::string_view data);

/// Digest rendered as 40 hex characters.
std::string sha1_hex(std::string_view data);

}  // namespace ipop::util
