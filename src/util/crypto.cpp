#include "util/crypto.hpp"

#include <cstring>

namespace ipop::util::crypto {

// ---------------------------------------------------------------------------
// SHA-512 (FIPS 180-4)

namespace {

// Round constants: fractional parts of the cube roots of the first 80
// primes, as 64-bit words.
constexpr std::uint64_t kSha512K[80] = {
    0x428a2f98d728ae22ull, 0x7137449123ef65cdull, 0xb5c0fbcfec4d3b2full,
    0xe9b5dba58189dbbcull, 0x3956c25bf348b538ull, 0x59f111f1b605d019ull,
    0x923f82a4af194f9bull, 0xab1c5ed5da6d8118ull, 0xd807aa98a3030242ull,
    0x12835b0145706fbeull, 0x243185be4ee4b28cull, 0x550c7dc3d5ffb4e2ull,
    0x72be5d74f27b896full, 0x80deb1fe3b1696b1ull, 0x9bdc06a725c71235ull,
    0xc19bf174cf692694ull, 0xe49b69c19ef14ad2ull, 0xefbe4786384f25e3ull,
    0x0fc19dc68b8cd5b5ull, 0x240ca1cc77ac9c65ull, 0x2de92c6f592b0275ull,
    0x4a7484aa6ea6e483ull, 0x5cb0a9dcbd41fbd4ull, 0x76f988da831153b5ull,
    0x983e5152ee66dfabull, 0xa831c66d2db43210ull, 0xb00327c898fb213full,
    0xbf597fc7beef0ee4ull, 0xc6e00bf33da88fc2ull, 0xd5a79147930aa725ull,
    0x06ca6351e003826full, 0x142929670a0e6e70ull, 0x27b70a8546d22ffcull,
    0x2e1b21385c26c926ull, 0x4d2c6dfc5ac42aedull, 0x53380d139d95b3dfull,
    0x650a73548baf63deull, 0x766a0abb3c77b2a8ull, 0x81c2c92e47edaee6ull,
    0x92722c851482353bull, 0xa2bfe8a14cf10364ull, 0xa81a664bbc423001ull,
    0xc24b8b70d0f89791ull, 0xc76c51a30654be30ull, 0xd192e819d6ef5218ull,
    0xd69906245565a910ull, 0xf40e35855771202aull, 0x106aa07032bbd1b8ull,
    0x19a4c116b8d2d0c8ull, 0x1e376c085141ab53ull, 0x2748774cdf8eeb99ull,
    0x34b0bcb5e19b48a8ull, 0x391c0cb3c5c95a63ull, 0x4ed8aa4ae3418acbull,
    0x5b9cca4f7763e373ull, 0x682e6ff3d6b2b8a3ull, 0x748f82ee5defb2fcull,
    0x78a5636f43172f60ull, 0x84c87814a1f0ab72ull, 0x8cc702081a6439ecull,
    0x90befffa23631e28ull, 0xa4506cebde82bde9ull, 0xbef9a3f7b2c67915ull,
    0xc67178f2e372532bull, 0xca273eceea26619cull, 0xd186b8c721c0c207ull,
    0xeada7dd6cde0eb1eull, 0xf57d4f7fee6ed178ull, 0x06f067aa72176fbaull,
    0x0a637dc5a2c898a6ull, 0x113f9804bef90daeull, 0x1b710b35131c471bull,
    0x28db77f523047d84ull, 0x32caab7b40c72493ull, 0x3c9ebe0a15c9bebcull,
    0x431d67c49c100d4cull, 0x4cc5d4becb3e42b6ull, 0x597f299cfc657e2aull,
    0x5fcb6fab3ad6faecull, 0x6c44198c4a475817ull};

constexpr std::uint64_t rotr64(std::uint64_t x, int n) {
  return (x >> n) | (x << (64 - n));
}

std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

void store_be64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
}

}  // namespace

void Sha512::reset() {
  h_ = {0x6a09e667f3bcc908ull, 0xbb67ae8584caa73bull, 0x3c6ef372fe94f82bull,
        0xa54ff53a5f1d36f1ull, 0x510e527fade682d1ull, 0x9b05688c2b3e6c1full,
        0x1f83d9abfb41bd6bull, 0x5be0cd19137e2179ull};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha512::process_block(const std::uint8_t* block) {
  std::uint64_t w[80];
  for (int t = 0; t < 16; ++t) w[t] = load_be64(block + 8 * t);
  for (int t = 16; t < 80; ++t) {
    const std::uint64_t s0 = rotr64(w[t - 15], 1) ^ rotr64(w[t - 15], 8) ^
                             (w[t - 15] >> 7);
    const std::uint64_t s1 = rotr64(w[t - 2], 19) ^ rotr64(w[t - 2], 61) ^
                             (w[t - 2] >> 6);
    w[t] = w[t - 16] + s0 + w[t - 7] + s1;
  }

  std::uint64_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint64_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int t = 0; t < 80; ++t) {
    const std::uint64_t s1 = rotr64(e, 14) ^ rotr64(e, 18) ^ rotr64(e, 41);
    const std::uint64_t ch = (e & f) ^ (~e & g);
    const std::uint64_t t1 = h + s1 + ch + kSha512K[t] + w[t];
    const std::uint64_t s0 = rotr64(a, 28) ^ rotr64(a, 34) ^ rotr64(a, 39);
    const std::uint64_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint64_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha512::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    off = take;
    if (buffered_ < buffer_.size()) return;
    process_block(buffer_.data());
    buffered_ = 0;
  }
  while (off + 128 <= data.size()) {
    process_block(data.data() + off);
    off += 128;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

void Sha512::update(std::string_view data) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Sha512Digest Sha512::finish() {
  // Pad: 0x80, zeros, then the 128-bit bit count (we only track 64 bits
  // of length — plenty for any in-sim message).
  const std::uint64_t bit_count = total_bytes_ * 8;
  std::uint8_t pad[256]{};
  pad[0] = 0x80;
  const std::size_t rem = buffered_;
  // Pad to 112 mod 128 (leaving 16 bytes for the length field).
  const std::size_t pad_len =
      (rem < 112) ? (112 - rem) : (240 - rem);
  std::uint8_t length_field[16]{};
  store_be64(length_field + 8, bit_count);
  update(std::span<const std::uint8_t>(pad, pad_len));
  update(std::span<const std::uint8_t>(length_field, 16));

  Sha512Digest out{};
  for (int i = 0; i < 8; ++i) store_be64(out.data() + 8 * i, h_[i]);
  return out;
}

Sha512Digest sha512(std::span<const std::uint8_t> data) {
  Sha512 ctx;
  ctx.update(data);
  return ctx.finish();
}

Sha512Digest sha512(std::string_view data) {
  Sha512 ctx;
  ctx.update(data);
  return ctx.finish();
}

// ---------------------------------------------------------------------------
// curve25519 field arithmetic — radix-2^16 limbs, TweetNaCl style.

namespace {

using Fe = std::array<std::int64_t, 16>;  // field element mod 2^255 - 19

constexpr Fe kGf0{};
constexpr Fe kGf1{1};
// Edwards curve constant d, 2d, the base point (X, Y), and sqrt(-1).
constexpr Fe kD{0x78a3, 0x1359, 0x4dca, 0x75eb, 0xd8ab, 0x4141, 0x0a4d,
                0x0070, 0xe898, 0x7779, 0x4079, 0x8cc7, 0xfe73, 0x2b6f,
                0x6cee, 0x5203};
constexpr Fe kD2{0xf159, 0x26b2, 0x9b94, 0xebd6, 0xb156, 0x8283, 0x149a,
                 0x00e0, 0xd130, 0xeef3, 0x80f2, 0x198e, 0xfce7, 0x56df,
                 0xd9dc, 0x2406};
constexpr Fe kBaseX{0xd51a, 0x8f25, 0x2d60, 0xc956, 0xa7b2, 0x9525, 0xc760,
                    0x692c, 0xdc5c, 0xfdd6, 0xe231, 0xc0a4, 0x53fe, 0xcd6e,
                    0x36d3, 0x2169};
constexpr Fe kBaseY{0x6658, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666,
                    0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666,
                    0x6666, 0x6666};
constexpr Fe kSqrtM1{0xa0b0, 0x4a0e, 0x1b27, 0xc4ee, 0xe478, 0xad2f, 0x1806,
                     0x2f43, 0xd7a7, 0x3dfb, 0x0099, 0x2b4d, 0xdf0b, 0x4fc1,
                     0x2480, 0x2b83};

void carry(Fe& o) {
  for (int i = 0; i < 16; ++i) {
    o[i] += 1ll << 16;
    const std::int64_t c = o[i] >> 16;
    o[(i + 1) * (i < 15)] += c - 1 + 37 * (c - 1) * (i == 15);
    o[i] -= c << 16;
  }
}

/// Constant-time conditional swap of field elements (b in {0,1}).
void cond_swap(Fe& p, Fe& q, std::int64_t b) {
  const std::int64_t mask = ~(b - 1);
  for (int i = 0; i < 16; ++i) {
    const std::int64_t t = mask & (p[i] ^ q[i]);
    p[i] ^= t;
    q[i] ^= t;
  }
}

void add_fe(Fe& o, const Fe& a, const Fe& b) {
  for (int i = 0; i < 16; ++i) o[i] = a[i] + b[i];
}

void sub_fe(Fe& o, const Fe& a, const Fe& b) {
  for (int i = 0; i < 16; ++i) o[i] = a[i] - b[i];
}

void mul_fe(Fe& o, const Fe& a, const Fe& b) {
  std::int64_t t[31]{};
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j) t[i + j] += a[i] * b[j];
  for (int i = 0; i < 15; ++i) t[i] += 38 * t[i + 16];
  for (int i = 0; i < 16; ++i) o[i] = t[i];
  carry(o);
  carry(o);
}

void sq_fe(Fe& o, const Fe& a) { mul_fe(o, a, a); }

void pack25519(std::uint8_t* o, const Fe& n) {
  Fe t = n;
  carry(t);
  carry(t);
  carry(t);
  for (int j = 0; j < 2; ++j) {
    Fe m{};
    m[0] = t[0] - 0xffed;
    for (int i = 1; i < 15; ++i) {
      m[i] = t[i] - 0xffff - ((m[i - 1] >> 16) & 1);
      m[i - 1] &= 0xffff;
    }
    m[15] = t[15] - 0x7fff - ((m[14] >> 16) & 1);
    const std::int64_t b = (m[15] >> 16) & 1;
    m[14] &= 0xffff;
    cond_swap(t, m, 1 - b);
  }
  for (int i = 0; i < 16; ++i) {
    o[2 * i] = static_cast<std::uint8_t>(t[i] & 0xff);
    o[2 * i + 1] = static_cast<std::uint8_t>(t[i] >> 8);
  }
}

void unpack25519(Fe& o, const std::uint8_t* n) {
  for (int i = 0; i < 16; ++i)
    o[i] = n[2 * i] + (static_cast<std::int64_t>(n[2 * i + 1]) << 8);
  o[15] &= 0x7fff;
}

bool bytes_differ(const std::uint8_t* a, const std::uint8_t* b,
                  std::size_t n) {
  std::uint32_t d = 0;
  for (std::size_t i = 0; i < n; ++i) d |= a[i] ^ b[i];
  return d != 0;
}

bool neq25519(const Fe& a, const Fe& b) {
  std::uint8_t pa[32], pb[32];
  pack25519(pa, a);
  pack25519(pb, b);
  return bytes_differ(pa, pb, 32);
}

std::uint8_t parity25519(const Fe& a) {
  std::uint8_t d[32];
  pack25519(d, a);
  return d[0] & 1;
}

void inv25519(Fe& o, const Fe& in) {
  Fe c = in;
  for (int a = 253; a >= 0; --a) {
    sq_fe(c, c);
    if (a != 2 && a != 4) mul_fe(c, c, in);
  }
  o = c;
}

/// x^((p-5)/8), used to compute square roots when decompressing points.
void pow2523(Fe& o, const Fe& in) {
  Fe c = in;
  for (int a = 250; a >= 0; --a) {
    sq_fe(c, c);
    if (a != 1) mul_fe(c, c, in);
  }
  o = c;
}

// ---------------------------------------------------------------------------
// Edwards point arithmetic (extended coordinates X, Y, Z, T).

using Point = std::array<Fe, 4>;

void point_add(Point& p, const Point& q) {
  Fe a, b, c, d, t, e, f, g, h;
  sub_fe(a, p[1], p[0]);
  sub_fe(t, q[1], q[0]);
  mul_fe(a, a, t);
  add_fe(b, p[0], p[1]);
  add_fe(t, q[0], q[1]);
  mul_fe(b, b, t);
  mul_fe(c, p[3], q[3]);
  mul_fe(c, c, kD2);
  mul_fe(d, p[2], q[2]);
  add_fe(d, d, d);
  sub_fe(e, b, a);
  sub_fe(f, d, c);
  add_fe(g, d, c);
  add_fe(h, b, a);
  mul_fe(p[0], e, f);
  mul_fe(p[1], h, g);
  mul_fe(p[2], g, f);
  mul_fe(p[3], e, h);
}

void point_cswap(Point& p, Point& q, std::uint8_t b) {
  for (int i = 0; i < 4; ++i) cond_swap(p[i], q[i], b);
}

void point_pack(std::uint8_t* r, const Point& p) {
  Fe tx, ty, zi;
  inv25519(zi, p[2]);
  mul_fe(tx, p[0], zi);
  mul_fe(ty, p[1], zi);
  pack25519(r, ty);
  r[31] ^= static_cast<std::uint8_t>(parity25519(tx) << 7);
}

/// p = s * q, constant-time double-and-add ladder.
void point_scalarmult(Point& p, Point& q, const std::uint8_t* s) {
  p = {kGf0, kGf1, kGf1, kGf0};
  for (int i = 255; i >= 0; --i) {
    const std::uint8_t b = (s[i / 8] >> (i & 7)) & 1;
    point_cswap(p, q, b);
    point_add(q, p);
    point_add(p, p);
    point_cswap(p, q, b);
  }
}

void point_scalarbase(Point& p, const std::uint8_t* s) {
  Point q{kBaseX, kBaseY, kGf1, Fe{}};
  mul_fe(q[3], kBaseX, kBaseY);
  point_scalarmult(p, q, s);
}

/// Decompress a public key into -A (negated: exactly what verification
/// wants, and harmless for DH since both sides negate).  False if the
/// bytes are not on the curve.
bool point_unpack_neg(Point& r, const std::uint8_t* p) {
  Fe t, chk, num, den, den2, den4, den6;
  r[2] = kGf1;
  unpack25519(r[1], p);
  sq_fe(num, r[1]);
  mul_fe(den, num, kD);
  sub_fe(num, num, r[2]);
  add_fe(den, r[2], den);

  sq_fe(den2, den);
  sq_fe(den4, den2);
  mul_fe(den6, den4, den2);
  mul_fe(t, den6, num);
  mul_fe(t, t, den);

  pow2523(t, t);
  mul_fe(t, t, num);
  mul_fe(t, t, den);
  mul_fe(t, t, den);
  mul_fe(r[0], t, den);

  sq_fe(chk, r[0]);
  mul_fe(chk, chk, den);
  if (neq25519(chk, num)) mul_fe(r[0], r[0], kSqrtM1);

  sq_fe(chk, r[0]);
  mul_fe(chk, chk, den);
  if (neq25519(chk, num)) return false;

  if (parity25519(r[0]) == (p[31] >> 7)) sub_fe(r[0], kGf0, r[0]);

  mul_fe(r[3], r[0], r[1]);
  return true;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod the group order L = 2^252 + 27742...8493.

constexpr std::int64_t kOrder[32] = {
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7,
    0xa2, 0xde, 0xf9, 0xde, 0x14, 0,    0,    0,    0,    0,    0,
    0,    0,    0,    0,    0,    0,    0,    0,    0,    0x10};

void mod_order(std::uint8_t* r, std::int64_t x[64]) {
  std::int64_t carry_v;
  for (int i = 63; i >= 32; --i) {
    carry_v = 0;
    int j;
    for (j = i - 32; j < i - 12; ++j) {
      x[j] += carry_v - 16 * x[i] * kOrder[j - (i - 32)];
      carry_v = (x[j] + 128) >> 8;
      x[j] -= carry_v << 8;
    }
    x[j] += carry_v;
    x[i] = 0;
  }
  carry_v = 0;
  for (int j = 0; j < 32; ++j) {
    x[j] += carry_v - (x[31] >> 4) * kOrder[j];
    carry_v = x[j] >> 8;
    x[j] &= 255;
  }
  for (int j = 0; j < 32; ++j) x[j] -= carry_v * kOrder[j];
  for (int i = 0; i < 32; ++i) {
    x[i + 1] += x[i] >> 8;
    r[i] = static_cast<std::uint8_t>(x[i] & 255);
  }
}

/// Reduces a 64-byte little-endian value mod L into its first 32 bytes.
void reduce64(std::uint8_t* r) {
  std::int64_t x[64];
  for (int i = 0; i < 64; ++i) x[i] = r[i];
  for (int i = 0; i < 64; ++i) r[i] = 0;
  mod_order(r, x);
}

}  // namespace

// ---------------------------------------------------------------------------
// KeyPair / sign / verify / DH

KeyPair KeyPair::from_seed(std::span<const std::uint8_t> seed) {
  KeyPair kp;
  if (seed.size() != 32) return kp;

  Sha512 ctx;
  ctx.update(seed);
  const Sha512Digest d = ctx.finish();
  std::memcpy(kp.scalar_.data(), d.data(), 32);
  std::memcpy(kp.prefix_.data(), d.data() + 32, 32);
  kp.scalar_[0] &= 248;
  kp.scalar_[31] &= 127;
  kp.scalar_[31] |= 64;

  Point p;
  point_scalarbase(p, kp.scalar_.data());
  point_pack(kp.public_.bytes.data(), p);
  kp.valid_ = true;
  return kp;
}

KeyPair KeyPair::generate(Rng& rng) {
  std::array<std::uint8_t, 32> seed{};
  for (int i = 0; i < 4; ++i) {
    std::uint64_t w = rng();
    for (int j = 0; j < 8; ++j) {
      seed[8 * i + j] = static_cast<std::uint8_t>(w & 0xff);
      w >>= 8;
    }
  }
  return from_seed(seed);
}

Signature KeyPair::sign(std::span<const std::uint8_t> msg) const {
  Signature sig{};
  if (!valid_) return sig;

  // r = H(prefix || msg) mod L;  R = r * G.
  std::uint8_t r[64];
  {
    Sha512 ctx;
    ctx.update(std::span<const std::uint8_t>(prefix_));
    ctx.update(msg);
    const Sha512Digest d = ctx.finish();
    std::memcpy(r, d.data(), 64);
  }
  reduce64(r);
  Point p;
  point_scalarbase(p, r);
  point_pack(sig.bytes.data(), p);

  // h = H(R || A || msg) mod L;  S = r + h * scalar mod L.
  std::uint8_t h[64];
  {
    Sha512 ctx;
    ctx.update(std::span<const std::uint8_t>(sig.bytes.data(), 32));
    ctx.update(std::span<const std::uint8_t>(public_.bytes));
    ctx.update(msg);
    const Sha512Digest d = ctx.finish();
    std::memcpy(h, d.data(), 64);
  }
  reduce64(h);

  std::int64_t x[64]{};
  for (int i = 0; i < 32; ++i) x[i] = r[i];
  for (int i = 0; i < 32; ++i)
    for (int j = 0; j < 32; ++j)
      x[i + j] += static_cast<std::int64_t>(h[i]) * scalar_[j];
  mod_order(sig.bytes.data() + 32, x);
  return sig;
}

bool verify(const PublicKey& pk, std::span<const std::uint8_t> msg,
            const Signature& sig) {
  Point q;
  if (!point_unpack_neg(q, pk.bytes.data())) return false;

  std::uint8_t h[64];
  {
    Sha512 ctx;
    ctx.update(std::span<const std::uint8_t>(sig.bytes.data(), 32));
    ctx.update(std::span<const std::uint8_t>(pk.bytes));
    ctx.update(msg);
    const Sha512Digest d = ctx.finish();
    std::memcpy(h, d.data(), 64);
  }
  reduce64(h);

  // t = S*G - h*A; valid iff t == R.
  Point p;
  point_scalarmult(p, q, h);
  Point base;
  point_scalarbase(base, sig.bytes.data() + 32);
  point_add(p, base);

  std::uint8_t t[32];
  point_pack(t, p);
  return !bytes_differ(t, sig.bytes.data(), 32);
}

SymmetricKey KeyPair::shared_key(const PublicKey& peer) const {
  SymmetricKey key{};
  if (!valid_) return key;
  Point q;
  if (!point_unpack_neg(q, peer.bytes.data())) return key;

  // Both sides compute -(a*b)*G, so the packed point matches.
  Point p;
  point_scalarmult(p, q, scalar_.data());
  std::uint8_t packed[32];
  point_pack(packed, p);

  Sha512 ctx;
  ctx.update(std::span<const std::uint8_t>(packed, 32));
  const Sha512Digest d = ctx.finish();
  std::memcpy(key.data(), d.data(), 32);
  return key;
}

void stream_xor(std::span<std::uint8_t> data, const SymmetricKey& key,
                std::uint64_t nonce) {
  std::uint8_t block_input[48];
  std::memcpy(block_input, key.data(), 32);
  store_be64(block_input + 32, nonce);

  std::uint64_t counter = 0;
  std::size_t off = 0;
  while (off < data.size()) {
    store_be64(block_input + 40, counter++);
    const Sha512Digest ks = sha512(std::span<const std::uint8_t>(block_input, 48));
    const std::size_t n = std::min<std::size_t>(64, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) data[off + i] ^= ks[i];
    off += n;
  }
}

}  // namespace ipop::util::crypto
