#include "util/buffer_chain.hpp"

#include <cstring>

namespace ipop::util {

const Buffer& BufferChain::segment(std::size_t i) const {
  if (i >= segs_.size()) throw ParseError("BufferChain: segment out of range");
  return segs_[i];
}

void BufferChain::prepend(Buffer b) {
  if (b.empty()) return;
  size_ += b.size();
  segs_.push_front(std::move(b));
}

void BufferChain::append(Buffer b) {
  if (b.empty()) return;
  size_ += b.size();
  segs_.push_back(std::move(b));
}

void BufferChain::append(BufferChain other) {
  for (auto& seg : other.segs_) {
    append(std::move(seg));
  }
  other.clear();
}

void BufferChain::clear() {
  segs_.clear();
  size_ = 0;
}

std::uint8_t BufferChain::at(std::size_t i) const {
  check_range(i, 1);
  for (const Buffer& seg : segs_) {
    if (i < seg.size()) return seg.data()[i];
    i -= seg.size();
  }
  throw ParseError("BufferChain: at out of range");  // unreachable
}

void BufferChain::drop_front(std::size_t n) {
  if (n > size_) throw ParseError("BufferChain: drop_front past end");
  size_ -= n;
  while (n > 0) {
    Buffer& head = segs_.front();
    if (n >= head.size()) {
      n -= head.size();
      segs_.pop_front();
    } else {
      head.drop_front(n);
      n = 0;
    }
  }
}

void BufferChain::gather(std::size_t offset,
                         std::span<std::uint8_t> out) const {
  std::uint8_t* dst = out.data();
  for_each_span(offset, out.size(),
                [&dst](std::span<const std::uint8_t> span) {
                  std::memcpy(dst, span.data(), span.size());
                  dst += span.size();
                });
}

std::optional<Buffer> BufferChain::try_share(std::size_t offset,
                                             std::size_t len) const {
  check_range(offset, len);
  if (len == 0) return Buffer();
  for (const Buffer& seg : segs_) {
    if (offset < seg.size()) {
      if (len > seg.size() - offset) return std::nullopt;  // spans segments
      return seg.share(offset, len);
    }
    offset -= seg.size();
  }
  return std::nullopt;  // unreachable (checked above)
}

const Buffer& BufferChain::coalesce() {
  static const Buffer kEmpty;
  if (segs_.empty()) return kEmpty;
  if (segs_.size() == 1) return segs_.front();
  Buffer flat = Buffer::allocate(size_, kPacketHeadroom);
  gather(0, flat.writable());
  segs_.clear();
  segs_.push_back(std::move(flat));
  return segs_.front();
}

std::vector<std::uint8_t> BufferChain::to_vector() const {
  std::vector<std::uint8_t> out(size_);
  gather(0, out);
  return out;
}

void BufferChain::check_range(std::size_t offset, std::size_t len) const {
  if (offset > size_ || len > size_ - offset) {
    throw ParseError("BufferChain: range out of bounds");
  }
}

}  // namespace ipop::util
