// Simulated-time primitives shared by every module.
//
// All of IPOP's reproduction runs on a deterministic discrete-event
// simulator; time is a signed 64-bit count of simulated nanoseconds.  We
// wrap std::chrono so arithmetic is type-safe, and provide terse factory
// helpers because packet-level code constructs durations constantly.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace ipop::util {

/// Duration of simulated time (nanosecond resolution).
using Duration = std::chrono::nanoseconds;

/// Absolute simulated time, measured from the start of the simulation.
using TimePoint = std::chrono::nanoseconds;

constexpr Duration nanoseconds(std::int64_t n) { return Duration{n}; }
constexpr Duration microseconds(std::int64_t n) { return Duration{n * 1000}; }
constexpr Duration milliseconds(std::int64_t n) {
  return Duration{n * 1'000'000};
}
constexpr Duration seconds(std::int64_t n) { return Duration{n * 1'000'000'000}; }

/// Fractional-unit helpers (useful for calibration knobs like 0.35 ms).
constexpr Duration microseconds_f(double n) {
  return Duration{static_cast<std::int64_t>(n * 1e3)};
}
constexpr Duration milliseconds_f(double n) {
  return Duration{static_cast<std::int64_t>(n * 1e6)};
}
constexpr Duration seconds_f(double n) {
  return Duration{static_cast<std::int64_t>(n * 1e9)};
}

constexpr double to_seconds(Duration d) { return d.count() / 1e9; }
constexpr double to_milliseconds(Duration d) { return d.count() / 1e6; }
constexpr double to_microseconds(Duration d) { return d.count() / 1e3; }

/// Render a duration as a human-readable string, e.g. "1.234ms".
inline std::string format_duration(Duration d) {
  const double ns = static_cast<double>(d.count());
  char buf[64];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", ns / 1e9);
  }
  return buf;
}

}  // namespace ipop::util
