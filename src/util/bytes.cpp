#include "util/bytes.hpp"

namespace ipop::util {

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

namespace {
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw ParseError("from_hex: invalid digit");
}
}  // namespace

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw ParseError("from_hex: odd length");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) << 4 |
                                            hex_value(hex[i + 1])));
  }
  return out;
}

}  // namespace ipop::util
