// Reference-counted contiguous byte buffer with reserved headroom.
//
// The ownership unit of the packet pipeline: one Storage block can back a
// tap frame, the Brunet packet encapsulating it and the datagram a
// transport emits — each layer holds a Buffer handle over the same bytes.
// Copying a Buffer shares storage in O(1); drop_front/grow_front move the
// view edges so encapsulation layers strip or prepend headers without
// touching payload bytes (the sk_buff/Serval overlay-frame idiom: relays
// patch the small header in place and forward the enclosed bytes
// untouched).
//
// Ownership rules (see README.md):
//  * A node exclusively owns buffers it allocated or received from a
//    transport; patching header bytes of such a buffer is safe.
//  * grow_front/prepend reuse headroom only when the storage is uniquely
//    referenced; otherwise they reallocate once, so a shared buffer can
//    never be corrupted by a downstream prepend.
//  * BufferViews do not keep storage alive; hold the Buffer alongside.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace ipop::util {

/// Headroom reserved in front of freshly allocated packet buffers so the
/// virtual-network encapsulation chain prepends without reallocating.
/// The deepest consumer is a secured tunneled send: 14B Ethernet strip at
/// the tap refunds itself, then a 105B seal header (flags + sender key +
/// nonce + signature), 48B Brunet header, 8B UDP + 20B IPv4 + 14B
/// Ethernet = 195B of prepends before the frame hits the physical link
/// (a relay wrap adds another 48B, covered by the per-path send-headroom
/// derivation on top of this floor).
inline constexpr std::size_t kPacketHeadroom = 256;

class Buffer {
 public:
  Buffer() = default;

  /// Fill-initialized buffer of `size` bytes with no headroom.
  static Buffer filled(std::size_t size, std::uint8_t fill);
  /// Zeroed buffer of `size` data bytes with `headroom` spare bytes in
  /// front of it.
  static Buffer allocate(std::size_t size, std::size_t headroom);
  /// Adopt a vector without copying (no headroom).
  static Buffer wrap(std::vector<std::uint8_t> bytes);
  /// Copy `data` into fresh storage with `headroom` spare front bytes.
  static Buffer copy_of(std::span<const std::uint8_t> data,
                        std::size_t headroom = 0);

  std::size_t size() const { return end_ - begin_; }
  bool empty() const { return begin_ == end_; }
  const std::uint8_t* data() const;
  std::uint8_t* data();
  std::span<const std::uint8_t> as_span() const { return {data(), size()}; }
  std::span<std::uint8_t> writable() { return {data(), size()}; }
  operator std::span<const std::uint8_t>() const { return as_span(); }
  operator BufferView() const { return view(); }

  std::uint8_t operator[](std::size_t i) const;
  std::uint8_t& operator[](std::size_t i);
  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + size(); }

  /// Spare bytes in front of / behind the data region.
  std::size_t headroom() const { return begin_; }
  std::size_t tailroom() const;
  /// Handles (Buffers) referencing this storage; 0 for a null buffer.
  long use_count() const { return s_ ? s_.use_count() : 0; }
  bool unique() const { return use_count() == 1; }

  /// Extend the data region n bytes to the front and return the writable
  /// header slot.  Zero-copy when the storage is uniquely referenced and
  /// has enough headroom; otherwise reallocates once with
  /// `realloc_headroom` fresh bytes in front.  Callers on a path whose
  /// encapsulation stack is deeper than the default budget (tunneled
  /// relay edges) pass their derived per-path headroom here so the one
  /// reallocation leaves room for every remaining prepend.
  std::span<std::uint8_t> grow_front(std::size_t n,
                                     std::size_t realloc_headroom =
                                         kPacketHeadroom);
  /// grow_front + copy `header` into the slot.
  void prepend(std::span<const std::uint8_t> header);
  /// Shrink the data region from the front (the bytes become headroom).
  void drop_front(std::size_t n);
  void drop_back(std::size_t n);

  /// In-place single-byte / big-endian 16-bit patch (bounds-checked).
  /// Debug builds additionally assert patchable(): writing through a
  /// shared handle silently mutates every reader, so a patch requires
  /// unique ownership, an explicit ensure_unique() COW, or an
  /// assume_exclusive() ownership claim.
  void patch_u8(std::size_t offset, std::uint8_t v);
  void patch_u16(std::size_t offset, std::uint16_t v);

  /// Explicit copy-on-write: make this handle the sole owner of its
  /// bytes (clones when the storage is shared, no-op when already
  /// unique).  Call before in-place patching a possibly-shared buffer.
  void ensure_unique(std::size_t headroom = 0);
  /// Ownership claim for in-place patches on storage that is refcounted
  /// but exclusively owned per the rules above (e.g. a packet adopted
  /// from a transport whose other handles never read the bytes again).
  /// The claim is handle-local; copies of this handle inherit it.
  Buffer& assume_exclusive() {
    exclusive_ = true;
    return *this;
  }
  /// True when an in-place patch through this handle is sanctioned.
  bool patchable() const { return unique() || exclusive_; }

  /// O(1) handle sharing the same storage.
  Buffer share() const { return *this; }
  /// Sub-buffer [offset, offset+len) sharing the same storage.
  Buffer share(std::size_t offset, std::size_t len) const;
  /// Deep copy into fresh storage with `headroom` spare front bytes.
  Buffer clone(std::size_t headroom = 0) const;

  BufferView view() const { return {data(), size()}; }
  BufferView view(std::size_t offset, std::size_t len) const;
  std::vector<std::uint8_t> to_vector() const;

 private:
  struct Storage {
    std::vector<std::uint8_t> bytes;
  };

  Buffer(std::shared_ptr<Storage> s, std::size_t begin, std::size_t end)
      : s_(std::move(s)), begin_(begin), end_(end) {}

  std::shared_ptr<Storage> s_;
  std::size_t begin_ = 0;  // data region [begin_, end_) within storage
  std::size_t end_ = 0;
  bool exclusive_ = false;  // assume_exclusive() patch-ownership claim
};

}  // namespace ipop::util
