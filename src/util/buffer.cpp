#include "util/buffer.hpp"

#include <cassert>
#include <cstring>

namespace ipop::util {

Buffer Buffer::filled(std::size_t size, std::uint8_t fill) {
  auto s = std::make_shared<Storage>();
  s->bytes.assign(size, fill);
  return Buffer(std::move(s), 0, size);
}

Buffer Buffer::allocate(std::size_t size, std::size_t headroom) {
  auto s = std::make_shared<Storage>();
  s->bytes.assign(headroom + size, 0);
  return Buffer(std::move(s), headroom, headroom + size);
}

Buffer Buffer::wrap(std::vector<std::uint8_t> bytes) {
  auto s = std::make_shared<Storage>();
  s->bytes = std::move(bytes);
  const std::size_t n = s->bytes.size();
  return Buffer(std::move(s), 0, n);
}

Buffer Buffer::copy_of(std::span<const std::uint8_t> data,
                       std::size_t headroom) {
  Buffer b = allocate(data.size(), headroom);
  if (!data.empty()) std::memcpy(b.data(), data.data(), data.size());
  return b;
}

const std::uint8_t* Buffer::data() const {
  return s_ ? s_->bytes.data() + begin_ : nullptr;
}

std::uint8_t* Buffer::data() {
  return s_ ? s_->bytes.data() + begin_ : nullptr;
}

std::uint8_t Buffer::operator[](std::size_t i) const {
  if (i >= size()) throw ParseError("Buffer: index out of range");
  return data()[i];
}

std::uint8_t& Buffer::operator[](std::size_t i) {
  if (i >= size()) throw ParseError("Buffer: index out of range");
  return data()[i];
}

std::size_t Buffer::tailroom() const {
  return s_ ? s_->bytes.size() - end_ : 0;
}

std::span<std::uint8_t> Buffer::grow_front(std::size_t n,
                                           std::size_t realloc_headroom) {
  if (n == 0) return {data(), 0};
  if (s_ && unique() && headroom() >= n) {
    begin_ -= n;
    return {data(), n};
  }
  // Shared or cramped storage: reallocate once with fresh headroom.  The
  // old storage is left untouched, so other handles never observe the
  // prepend.
  auto s = std::make_shared<Storage>();
  s->bytes.assign(realloc_headroom + n + size(), 0);
  if (size() > 0) {
    std::memcpy(s->bytes.data() + realloc_headroom + n, data(), size());
  }
  const std::size_t new_end = realloc_headroom + n + size();
  s_ = std::move(s);
  begin_ = realloc_headroom;
  end_ = new_end;
  return {data(), n};
}

void Buffer::prepend(std::span<const std::uint8_t> header) {
  auto slot = grow_front(header.size());
  if (!header.empty()) std::memcpy(slot.data(), header.data(), header.size());
}

void Buffer::drop_front(std::size_t n) {
  if (n > size()) throw ParseError("Buffer: drop_front past end");
  begin_ += n;
}

void Buffer::drop_back(std::size_t n) {
  if (n > size()) throw ParseError("Buffer: drop_back past start");
  end_ -= n;
}

void Buffer::patch_u8(std::size_t offset, std::uint8_t v) {
  if (offset >= size()) throw ParseError("Buffer: patch_u8 out of range");
  assert(patchable() &&
         "Buffer: in-place patch of shared storage — call ensure_unique() "
         "(COW) or assume_exclusive() (ownership claim) first");
  data()[offset] = v;
}

void Buffer::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > size()) throw ParseError("Buffer: patch_u16 out of range");
  assert(patchable() &&
         "Buffer: in-place patch of shared storage — call ensure_unique() "
         "(COW) or assume_exclusive() (ownership claim) first");
  data()[offset] = static_cast<std::uint8_t>(v >> 8);
  data()[offset + 1] = static_cast<std::uint8_t>(v);
}

void Buffer::ensure_unique(std::size_t headroom) {
  if (!s_ || unique()) return;
  *this = clone(headroom);
}

Buffer Buffer::share(std::size_t offset, std::size_t len) const {
  if (offset > size() || len > size() - offset) {
    throw ParseError("Buffer: share out of range");
  }
  return Buffer(s_, begin_ + offset, begin_ + offset + len);
}

Buffer Buffer::clone(std::size_t headroom) const {
  return copy_of(as_span(), headroom);
}

BufferView Buffer::view(std::size_t offset, std::size_t len) const {
  if (offset > size() || len > size() - offset) {
    throw ParseError("Buffer: view out of range");
  }
  return {data() + offset, len};
}

std::vector<std::uint8_t> Buffer::to_vector() const {
  return {begin(), end()};
}

}  // namespace ipop::util
