#include "util/sha1.hpp"

#include <bit>
#include <cstring>

#include "util/bytes.hpp"

namespace ipop::util {

namespace {
constexpr std::uint32_t rotl(std::uint32_t x, int s) {
  return std::rotl(x, s);
}
}  // namespace

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::update(std::string_view data) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  // Fill a partially buffered block first.
  if (buffered_ > 0) {
    std::size_t take = std::min<std::size_t>(64 - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    buffered_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffered_);
  }
}

Sha1Digest Sha1::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  // Padding: 0x80 then zeros until 56 mod 64, then 64-bit length.
  const std::uint8_t pad80 = 0x80;
  update(std::span<const std::uint8_t>(&pad80, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(std::span<const std::uint8_t>(&zero, 1));
  std::array<std::uint8_t, 8> len{};
  for (int i = 0; i < 8; ++i) {
    len[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(len.data(), len.size()));

  Sha1Digest out{};
  for (int i = 0; i < 5; ++i) {
    out[i * 4 + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    // Cast each byte *before* shifting: the integer promotion is to
    // signed int, and a byte >= 0x80 shifted by 24 would land in the
    // sign bit.
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1Digest sha1(std::span<const std::uint8_t> data) {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finish();
}

Sha1Digest sha1(std::string_view data) {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finish();
}

std::string sha1_hex(std::string_view data) {
  auto d = sha1(data);
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

}  // namespace ipop::util
