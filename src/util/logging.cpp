#include "util/logging.hpp"

#include <cstdio>

namespace ipop::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel lvl, const std::string& msg) {
    std::fprintf(stderr, "[%s] %s\n", log_level_name(lvl), msg.c_str());
  };
}

Logger::Sink Logger::set_sink(Sink sink) {
  auto prev = std::move(sink_);
  sink_ = std::move(sink);
  return prev;
}

void Logger::write(LogLevel lvl, const std::string& msg) {
  if (sink_) sink_(lvl, msg);
}

const char* log_level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace ipop::util
