#include "util/random.hpp"

#include <cmath>

namespace ipop::util {

double Rng::log_uniform(double lo, double hi) {
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  return std::exp(uniform(llo, lhi));
}

}  // namespace ipop::util
