// Bounds-checked big-endian byte serialization.
//
// Every wire format in the repository (Ethernet, IPv4, TCP, Brunet P2P
// packets, DHT records, NFS RPCs) is encoded through these two classes so
// that byte-order and bounds handling live in exactly one place.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ipop::util {

/// Thrown when a reader runs past the end of its buffer.  Network-facing
/// parsers catch this at the demultiplex boundary and drop the packet, so a
/// malformed or truncated packet can never corrupt simulator state.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Non-owning bounds-checked view of immutable bytes: the zero-copy
/// counterpart of std::span used throughout the packet pipeline.  Every
/// accessor throws ParseError instead of invoking undefined behaviour on
/// out-of-range access, so parsers can slice wire data freely.
///
/// A BufferView does not keep the underlying storage alive; holders must
/// keep the owning util::Buffer (or vector) in scope.  Views handed out by
/// brunet::Packet alias the packet's shared buffer and remain valid for as
/// long as any handle to that buffer exists.
class BufferView {
 public:
  constexpr BufferView() = default;
  constexpr BufferView(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  BufferView(std::span<const std::uint8_t> s)  // NOLINT: intentional implicit
      : data_(s.data()), size_(s.size()) {}
  BufferView(const std::vector<std::uint8_t>& v)  // NOLINT: implicit
      : data_(v.data()), size_(v.size()) {}

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::uint8_t operator[](std::size_t i) const {
    if (i >= size_) throw ParseError("BufferView: index out of range");
    return data_[i];
  }
  /// Sub-view [offset, offset+len); throws ParseError on out-of-bounds.
  BufferView subview(std::size_t offset, std::size_t len) const {
    if (offset > size_ || len > size_ - offset) {
      throw ParseError("BufferView: subview out of range");
    }
    return {data_ + offset, len};
  }
  /// Sub-view from offset to the end; throws ParseError on out-of-bounds.
  BufferView subview(std::size_t offset) const {
    if (offset > size_) throw ParseError("BufferView: subview out of range");
    return {data_ + offset, size_ - offset};
  }

  std::span<const std::uint8_t> as_span() const { return {data_, size_}; }
  operator std::span<const std::uint8_t>() const { return as_span(); }
  const std::uint8_t* begin() const { return data_; }
  const std::uint8_t* end() const { return data_ + size_; }
  std::vector<std::uint8_t> to_vector() const { return {data_, data_ + size_}; }

  friend bool operator==(BufferView a, BufferView b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Append-only big-endian encoder.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  /// Length-prefixed (u32) byte string.
  void lp_bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    bytes(data);
  }
  /// Length-prefixed (u32) UTF-8 string.
  void lp_string(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Overwrite a previously written 16-bit field (e.g. a checksum slot).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    if (offset + 2 > buf_.size()) throw ParseError("patch_u16 out of range");
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked big-endian decoder over a non-owning view.
///
/// Two modes of consuming byte ranges exist side by side: the historical
/// `*_copy` accessors return owning vectors, while the view-backed
/// accessors (`view_bytes`, `rest_view`) return BufferViews aliasing the
/// reader's input — the mode the zero-copy parsers in net/ use.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u64() {
    std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::vector<std::uint8_t> bytes_copy(std::size_t n) {
    auto s = bytes(n);
    return {s.begin(), s.end()};
  }
  std::vector<std::uint8_t> lp_bytes() {
    std::uint32_t n = u32();
    return bytes_copy(n);
  }
  std::string lp_string() {
    std::uint32_t n = u32();
    auto s = bytes(n);
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }
  /// Zero-copy: the next n bytes as a view aliasing the input.
  BufferView view_bytes(std::size_t n) { return BufferView(bytes(n)); }
  /// Remaining unread bytes as a view.
  std::span<const std::uint8_t> rest() { return data_.subspan(pos_); }
  /// Zero-copy: all remaining bytes as a view aliasing the input
  /// (consumes them, like rest_copy).
  BufferView rest_view() {
    auto s = rest();
    pos_ = data_.size();
    return BufferView(s);
  }
  std::vector<std::uint8_t> rest_copy() {
    auto s = rest();
    pos_ = data_.size();
    return {s.begin(), s.end()};
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw ParseError("ByteReader: truncated input (need " +
                       std::to_string(n) + " at " + std::to_string(pos_) +
                       " of " + std::to_string(data_.size()) + ")");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Raw big-endian stores/loads for writing wire fields directly into
/// pre-sized buffer memory (the zero-copy codecs' counterpart of
/// ByteWriter's append API).  Callers are responsible for bounds.
inline void store_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}
inline void store_u32(std::uint8_t* p, std::uint32_t v) {
  store_u16(p, static_cast<std::uint16_t>(v >> 16));
  store_u16(p + 2, static_cast<std::uint16_t>(v));
}
inline std::uint16_t load_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) << 8 |
                                    p[1]);
}

/// Render bytes as lowercase hex (diagnostics and test assertions).
std::string to_hex(std::span<const std::uint8_t> data);

/// Parse hex back into bytes; throws ParseError on odd length / bad digit.
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace ipop::util
