// Minimal leveled logger.
//
// Simulation code logs through IPOP_LOG_* macros; the level check is a
// single branch so packet-path logging costs nothing when disabled.  The
// sink is injectable so tests can capture output.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace ipop::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  LogLevel level() const { return level_; }
  void set_level(LogLevel lvl) { level_ = lvl; }
  bool enabled(LogLevel lvl) const { return lvl >= level_; }

  using Sink = std::function<void(LogLevel, const std::string&)>;
  /// Replace the output sink (default writes to stderr); returns previous.
  Sink set_sink(Sink sink);

  void write(LogLevel lvl, const std::string& msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

const char* log_level_name(LogLevel lvl);

}  // namespace ipop::util

#define IPOP_LOG_AT(lvl, expr)                                        \
  do {                                                                \
    auto& ipop_logger = ::ipop::util::Logger::instance();             \
    if (ipop_logger.enabled(lvl)) {                                   \
      std::ostringstream ipop_log_os;                                 \
      ipop_log_os << expr;                                            \
      ipop_logger.write(lvl, ipop_log_os.str());                      \
    }                                                                 \
  } while (0)

#define IPOP_LOG_TRACE(expr) IPOP_LOG_AT(::ipop::util::LogLevel::kTrace, expr)
#define IPOP_LOG_DEBUG(expr) IPOP_LOG_AT(::ipop::util::LogLevel::kDebug, expr)
#define IPOP_LOG_INFO(expr) IPOP_LOG_AT(::ipop::util::LogLevel::kInfo, expr)
#define IPOP_LOG_WARN(expr) IPOP_LOG_AT(::ipop::util::LogLevel::kWarn, expr)
#define IPOP_LOG_ERROR(expr) IPOP_LOG_AT(::ipop::util::LogLevel::kError, expr)
