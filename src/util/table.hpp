// ASCII table printer used by the benchmark harnesses to echo the paper's
// tables next to our measured values.
#pragma once

#include <string>
#include <vector>

namespace ipop::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Horizontal separator row.
  void add_rule();

  std::string render() const;

  /// printf-style float cell helpers.
  static std::string num(double v, int precision = 3);
  static std::string percent(double v, int precision = 0);

 private:
  std::vector<std::string> headers_;
  // Empty vector encodes a rule row.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ipop::util
