// Scatter-gather chain of Buffer segments (the iovec of the packet
// pipeline).
//
// A BufferChain is an ordered list of shared util::Buffer handles viewed
// as one logical byte string.  Prepending a header or appending a payload
// is O(1) handle traffic — no byte ever moves — so layered senders can
// compose [frame-header | packet-header | shared-payload] without the
// per-layer serialization copies the paper's Section V.2 measures.  The
// bytes come together exactly once, at the simulated NIC's scatter-gather
// walk (gather()), the step real hardware performs with DMA descriptors
// rather than CPU copies.
//
// Ownership follows util::Buffer: segments share storage refcounted, and a
// chain holding a segment keeps that storage alive.  Coalescing is lazy —
// coalesce() flattens multi-segment chains into a single segment only when
// a caller genuinely needs contiguity, and caches the result in place.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "util/buffer.hpp"

namespace ipop::util {

class BufferChain {
 public:
  BufferChain() = default;
  /// Single-segment chain over an existing buffer (no copy).
  explicit BufferChain(Buffer b) { append(std::move(b)); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of segments (empty buffers are never stored).
  std::size_t segments() const { return segs_.size(); }
  const Buffer& segment(std::size_t i) const;

  /// O(1): link the buffer in front of / behind the chain.  Empty buffers
  /// are dropped (a zero-length iovec entry carries no information).
  void prepend(Buffer b);
  void append(Buffer b);
  /// Splice another chain's segments onto the end (handles move, bytes
  /// do not).
  void append(BufferChain other);
  void clear();

  /// Logical byte access (bounds-checked; O(segments) scan).
  std::uint8_t at(std::size_t i) const;

  /// Drop n bytes from the logical front: whole segments are unlinked,
  /// a partially consumed head segment shrinks its view edge in place.
  /// Throws ParseError when n exceeds size().
  void drop_front(std::size_t n);

  /// The scatter-gather walk: copy [offset, offset+out.size()) into
  /// `out`.  This is the single point where chained bytes become
  /// contiguous — the simulated equivalent of the NIC's DMA gather.
  /// Throws ParseError when the range exceeds size().
  void gather(std::size_t offset, std::span<std::uint8_t> out) const;

  /// Visit [offset, offset+len) as a minimal run of contiguous spans
  /// (the readv/writev iteration order).  `f` receives each span once.
  template <typename F>
  void for_each_span(std::size_t offset, std::size_t len, F&& f) const {
    check_range(offset, len);
    for (const Buffer& seg : segs_) {
      if (len == 0) break;
      if (offset >= seg.size()) {
        offset -= seg.size();
        continue;
      }
      const std::size_t take = std::min(len, seg.size() - offset);
      f(std::span<const std::uint8_t>(seg.data() + offset, take));
      offset = 0;
      len -= take;
    }
  }

  /// Zero-copy extraction of [offset, offset+len) when the range lies
  /// inside a single segment: returns a sub-buffer sharing that
  /// segment's storage.  Multi-segment ranges return nullopt (use
  /// gather()).  Throws ParseError on out-of-range.
  std::optional<Buffer> try_share(std::size_t offset, std::size_t len) const;

  /// Lazy coalescing: flatten the chain into one contiguous segment and
  /// return it.  A chain that is already single-segment returns its
  /// segment untouched (zero-copy); otherwise the segments are gathered
  /// once into fresh storage (with kPacketHeadroom in front) and the
  /// flattened segment replaces them, so repeated calls stay O(1).
  const Buffer& coalesce();

  std::vector<std::uint8_t> to_vector() const;

 private:
  void check_range(std::size_t offset, std::size_t len) const;

  std::deque<Buffer> segs_;
  std::size_t size_ = 0;
};

}  // namespace ipop::util
