// Owner-side liveness token for deferred callbacks.
//
// The timer-lifetime discipline (enforced by tools/lint/run.py): an
// EventLoop callback that captures `this` must either keep the returned
// EventId as a cancellation handle, or carry a liveness guard so the
// callback turns into a no-op once the owner is gone.  AliveToken is the
// reusable form of the guard: the owner holds one as a member (declare it
// last so it dies first), every scheduled lambda captures
// `alive = alive_.guard()` and bails out with `if (!alive) return;`.
// Destroying the owner expires every outstanding guard atomically —
// exactly the use-after-free class AddressSanitizer caught twice in
// transport teardown before this existed.
#pragma once

#include <memory>

namespace ipop::util {

class AliveToken {
 public:
  class Guard {
   public:
    Guard() = default;
    explicit Guard(std::weak_ptr<const void> w) : w_(std::move(w)) {}
    /// True while the owning AliveToken still exists.
    explicit operator bool() const { return !w_.expired(); }

   private:
    std::weak_ptr<const void> w_;
  };

  AliveToken() : tok_(std::make_shared<char>(0)) {}
  AliveToken(const AliveToken&) = delete;
  AliveToken& operator=(const AliveToken&) = delete;

  Guard guard() const { return Guard(tok_); }

 private:
  std::shared_ptr<const void> tok_;
};

}  // namespace ipop::util
