// Measurement statistics: Welford running moments, percentiles, histograms.
//
// The paper reports mean + standard deviation over 1000 pings (Table I),
// absolute/relative bandwidth (Tables II/III), and an RTT distribution
// histogram (Figure 5); these helpers regenerate all of those shapes.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ipop::util {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over retained samples (used for tail latencies).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t size() const { return xs_.size(); }
  /// Nearest-rank percentile, p in [0, 100].  Returns 0 when empty.
  double percentile(double p) const;
  double mean() const;
  double stddev() const;
  const std::vector<double>& values() const { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width linear-bin histogram with ASCII rendering (Figure 5).
class Histogram {
 public:
  /// Bins cover [lo, hi) in `bins` equal slots; out-of-range values land in
  /// saturated edge bins so no sample is silently dropped.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& counts() const { return counts_; }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_width() const { return width_; }

  /// Multi-line ASCII bar chart; `max_width` is the widest bar in chars.
  std::string render(std::size_t max_width = 50,
                     const std::string& unit = "") const;
  /// CSV rows "bin_lo,bin_hi,count" for plotting.
  std::string to_csv() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ipop::util
