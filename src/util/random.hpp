// Deterministic pseudo-random sources.
//
// Every stochastic element of the reproduction (link jitter, packet loss,
// Planet-Lab CPU load, overlay shortcut targets, workload records) draws
// from an explicitly seeded Rng so that tests and benches replay exactly.
// xoshiro256** is used as the core generator (fast, well-distributed, tiny
// state); splitmix64 seeds it, as its authors recommend.
#pragma once

#include <cstdint>
#include <random>

namespace ipop::util {

/// splitmix64 step; also useful as a cheap hash of a 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1B0BDEADBEEFull) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(*this);
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(*this);
  }
  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }
  /// Exponential with the given mean (0 mean yields 0).
  double exponential(double mean) {
    if (mean <= 0) return 0.0;
    return std::exponential_distribution<double>(1.0 / mean)(*this);
  }
  /// Normal (Gaussian).
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(*this);
  }
  /// Log-uniform in [lo, hi]; used for Kleinberg-style shortcut distances.
  double log_uniform(double lo, double hi);

  /// Derive an independent child generator (stable given the same label).
  Rng fork(std::uint64_t label) {
    std::uint64_t seed = (*this)() ^ (label * 0x9E3779B97F4A7C15ull);
    return Rng(seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace ipop::util
