// Self-contained crypto primitives for the authenticated overlay.
//
// Three building blocks, no external dependencies:
//
//   - Sha512: FIPS 180-4 SHA-512, incremental like util::Sha1.  Used for
//     signature hashing, shared-key derivation, and the payload keystream.
//   - Ed25519 signatures (KeyPair / verify): compact curve25519 field and
//     Edwards point arithmetic in the TweetNaCl tradition (radix-2^16
//     limbs, branch-free conditional swaps).  Interoperable with RFC 8032
//     — the unit tests pin the RFC test vectors.
//   - A keyed stream cipher (stream_xor): SHA-512 in counter mode over
//     (key, nonce, block index), XORed in place.  Paired with shared_key()
//     — an Edwards Diffie-Hellman over the same keypairs — this encrypts
//     tunneled payloads end to end without a second key hierarchy.
//
// Determinism rule: key generation takes an explicit util::Rng (the
// seeded sim generator) or literal injected seed bytes.  Nothing in this
// file reads ambient entropy; the lint keygen-entropy rule enforces the
// same discipline on callers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/random.hpp"

namespace ipop::util::crypto {

using Sha512Digest = std::array<std::uint8_t, 64>;

/// Incremental SHA-512 context (update in chunks, then finish).
class Sha512 {
 public:
  Sha512() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);
  /// Finalizes and returns the digest; reset() before reuse.
  Sha512Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint64_t, 8> h_{};
  std::array<std::uint8_t, 128> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience.
Sha512Digest sha512(std::span<const std::uint8_t> data);
Sha512Digest sha512(std::string_view data);

/// 32-byte compressed Edwards point identifying a node.
struct PublicKey {
  std::array<std::uint8_t, 32> bytes{};

  bool operator==(const PublicKey&) const = default;
  /// All-zero key = "no key"; used by unsigned legacy records.
  bool empty() const {
    for (const auto b : bytes)
      if (b != 0) return false;
    return true;
  }
};

/// 64-byte Ed25519 signature (R || S).
struct Signature {
  std::array<std::uint8_t, 64> bytes{};

  bool operator==(const Signature&) const = default;
};

/// Symmetric key for stream_xor, usually from shared_key().
using SymmetricKey = std::array<std::uint8_t, 32>;

/// Ed25519 keypair.  The 32-byte seed is the only secret state; scalar
/// and prefix are cached derivations (RFC 8032 section 5.1.5).
class KeyPair {
 public:
  KeyPair() = default;

  /// Deterministic keypair from 32 injected seed bytes.
  static KeyPair from_seed(std::span<const std::uint8_t> seed);
  /// Deterministic keypair drawn from the seeded sim generator — the
  /// only sanctioned entropy source for in-sim key generation.
  static KeyPair generate(Rng& rng);

  const PublicKey& public_key() const { return public_; }
  bool valid() const { return valid_; }

  /// Detached signature over `msg`.
  Signature sign(std::span<const std::uint8_t> msg) const;

  /// Edwards Diffie-Hellman: SHA-512 of the shared point, truncated to
  /// 32 bytes.  Symmetric: a.shared_key(B.pub) == b.shared_key(A.pub).
  SymmetricKey shared_key(const PublicKey& peer) const;

 private:
  std::array<std::uint8_t, 32> scalar_{};  // clamped secret scalar
  std::array<std::uint8_t, 32> prefix_{};  // nonce-derivation prefix
  PublicKey public_{};
  bool valid_ = false;
};

/// Verifies a detached signature; false on malformed key or mismatch.
bool verify(const PublicKey& pk, std::span<const std::uint8_t> msg,
            const Signature& sig);

/// XORs `data` in place with the keystream for (key, nonce).  Encryption
/// and decryption are the same operation.  Callers must hold the buffer
/// exclusively (buffer-ownership rule 7); this function only sees the
/// raw span and cannot check that.
void stream_xor(std::span<std::uint8_t> data, const SymmetricKey& key,
                std::uint64_t nonce);

}  // namespace ipop::util::crypto
