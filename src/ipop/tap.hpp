// Simulated "tap" virtual network interface (paper Section III-A).
//
// A tap device has two faces: the kernel face appears as a network
// interface (`tap0`) inside the host's stack, and the user face is a
// character-device-like handle from which a user-level process (IPOP)
// reads and writes raw Ethernet frames.  We model the pair as a zero-loss,
// microsecond-latency link whose far end belongs to the IPOP process.
//
// ARP containment: the virtual subnet is routed through a fictitious
// gateway with a static ARP entry, so the kernel never broadcasts ARP on
// the virtual network — every frame IPOP sees is unicast IP addressed to
// the gateway MAC, exactly as the paper describes.
#pragma once

#include <functional>
#include <vector>

#include "net/host.hpp"
#include "sim/link.hpp"

namespace ipop::core {

struct TapConfig {
  std::string name = "tap0";
  /// This host's address on the virtual network.
  net::Ipv4Address ip;
  /// The virtual address space (paper uses 172.16.0.0/16).
  net::Ipv4Prefix subnet = net::Ipv4Prefix{net::Ipv4Address(172, 16, 0, 0), 16};
  /// Fictitious gateway that "routes for" the whole virtual space.
  net::Ipv4Address gateway = net::Ipv4Address(172, 16, 255, 254);
  /// Lower than Ethernet so the encapsulated packet fits the physical MTU.
  std::size_t mtu = 1200;
  /// Kernel <-> user-process crossing latency per frame.
  util::Duration crossing_delay = util::microseconds(5);
};

class TapDevice {
 public:
  /// Frames cross the tap as shared buffers.  Kernel-emitted frames carry
  /// util::kPacketHeadroom spare front bytes, so IPOP can strip the
  /// Ethernet header and prepend the Brunet tunnel header in place.
  using FrameHandler = std::function<void(util::Buffer)>;

  TapDevice(net::Host& host, const TapConfig& cfg);

  /// User face: frames the kernel emitted on tap0 arrive here.
  void set_frame_handler(FrameHandler h) { handler_ = std::move(h); }
  /// User face: inject a frame into the kernel as if received on tap0.
  void write_frame(util::Buffer frame);
  /// Assign (or re-assign) the tap's virtual IP after construction — the
  /// self-configuration path: the device comes up unnumbered
  /// (cfg.ip = 0.0.0.0) and is addressed once the DHCP-over-DHT lease is
  /// claimed.  The gateway route/ARP containment set up at construction
  /// are address-independent and stay in place.
  void configure_ip(net::Ipv4Address ip);

  const TapConfig& config() const { return cfg_; }
  net::MacAddress kernel_mac() const { return kernel_mac_; }
  net::MacAddress gateway_mac() const { return gateway_mac_; }
  net::Host& host() { return host_; }
  std::uint64_t frames_read() const { return frames_read_; }
  std::uint64_t frames_written() const { return frames_written_; }

 private:
  net::Host& host_;
  TapConfig cfg_;
  sim::Link link_;
  net::MacAddress kernel_mac_;
  net::MacAddress gateway_mac_;
  FrameHandler handler_;
  std::uint64_t frames_read_ = 0;
  std::uint64_t frames_written_ = 0;
};

}  // namespace ipop::core
