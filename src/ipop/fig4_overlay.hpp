// The paper's deployment: IPOP nodes on every machine of the Figure-4
// testbed, with the virtual 172.16.0.0/16 address plan of the paper.
//
//   F4 = 172.16.0.2   (dual-homed ACIS machine; LSS file server)
//   F1 = 172.16.0.3   (ACIS VM)
//   F2 = 172.16.0.4   (ACIS physical host)
//   V1 = 172.16.0.18  (VIMS, behind VFW)
//   L1 = 172.16.0.20  (LSU, behind LFW)
//   F3 = 172.16.0.51  (public UF machine; overlay seed)
//
// Every node seeds at F3 (the only machine all sites may dial), exactly
// the decentralized self-configuration story of Section IV.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ipop/node.hpp"
#include "net/topology.hpp"

namespace ipop::core {

struct Fig4OverlayOptions {
  net::Fig4Options testbed{};
  brunet::TransportAddress::Proto transport =
      brunet::TransportAddress::Proto::kUdp;
  bool use_brunet_arp = false;
  ShortcutConfig shortcuts{};
  util::Duration cpu_per_packet = util::microseconds(240);
  util::Duration sched_latency = util::microseconds(1330);
  /// Ring neighbors per side; 3 fully meshes the 6-node testbed so the
  /// measured pairs are one overlay hop apart, as in the paper.
  std::size_t near_per_side = 3;
};

class Fig4Overlay {
 public:
  explicit Fig4Overlay(const Fig4OverlayOptions& opts = {});

  net::Fig4Testbed& testbed() { return tb_; }
  sim::EventLoop& loop() { return tb_.net->loop(); }

  static const std::vector<std::string>& machine_names();
  IpopNode& node(const std::string& name) { return *nodes_.at(name); }
  net::Host& host(const std::string& name);
  net::Ipv4Address vip(const std::string& name) const {
    return vips_.at(name);
  }

  void start_all();
  /// Run until every node's overlay table spans the whole membership (all
  /// 5 peers reachable as direct connections) or the budget elapses.
  /// Returns true on full convergence — expected for UDP transport; TCP
  /// mode converges only as far as the firewalls allow.
  bool converge(util::Duration budget = util::seconds(120));
  /// Ensure a direct overlay connection between two machines (used in TCP
  /// mode where firewall policy prevents some pairs from self-linking;
  /// the paper's measured pairs are always dialable in one direction).
  bool link_pair(const std::string& a, const std::string& b,
                 util::Duration budget = util::seconds(30));

 private:
  net::Fig4Testbed tb_;
  Fig4OverlayOptions opts_;
  std::map<std::string, std::unique_ptr<IpopNode>> nodes_;
  std::map<std::string, net::Ipv4Address> vips_;
};

}  // namespace ipop::core
