#include "ipop/node.hpp"

#include "net/arp.hpp"
#include "util/logging.hpp"

namespace ipop::core {

IpopNode::IpopNode(net::Host& host, IpopConfig cfg)
    : host_(host), cfg_(std::move(cfg)) {
  tap_ = std::make_unique<TapDevice>(host_, cfg_.tap);
  // The overlay node's per-packet CPU charge is IPOP's processing cost:
  // every forwarded tunnel packet costs this much at every overlay hop.
  cfg_.overlay.cpu_per_packet = cfg_.cpu_per_packet;
  overlay_ = std::make_unique<brunet::BrunetNode>(
      host_, brunet::Address::from_ip(cfg_.tap.ip), cfg_.overlay);
  dht_ = std::make_unique<brunet::Dht>(*overlay_);
  if (cfg_.use_brunet_arp) {
    brunet_arp_ = std::make_unique<BrunetArp>(*overlay_, *dht_,
                                              cfg_.brunet_arp);
  }
  shortcuts_ = std::make_unique<ShortcutManager>(*overlay_, cfg_.shortcuts);

  tap_->set_frame_handler(
      [this](std::vector<std::uint8_t> f) { on_tap_frame(std::move(f)); });
  overlay_->set_handler(brunet::PacketType::kIpTunnel,
                        [this](const brunet::Packet& pkt) {
                          on_tunnel_packet(pkt);
                        });
}

IpopNode::~IpopNode() { stop(); }

void IpopNode::start() {
  if (started_) return;
  started_ = true;
  overlay_->start();
  if (brunet_arp_ != nullptr) brunet_arp_->register_ip(cfg_.tap.ip);
}

void IpopNode::stop() {
  if (!started_) return;
  started_ = false;
  overlay_->stop();
}

void IpopNode::route_for(net::Ipv4Address vip) {
  if (brunet_arp_ == nullptr) {
    IPOP_LOG_WARN("route_for(" << vip.to_string()
                               << ") requires Brunet-ARP mode");
    return;
  }
  extra_ips_.insert(vip);
  if (auto idx = host_.stack().interface_by_name(cfg_.tap.name)) {
    host_.stack().add_ip_alias(*idx, vip);
  }
  brunet_arp_->register_ip(vip);
}

void IpopNode::unroute_for(net::Ipv4Address vip) {
  extra_ips_.erase(vip);
  if (auto idx = host_.stack().interface_by_name(cfg_.tap.name)) {
    host_.stack().remove_ip_alias(*idx, vip);
  }
  if (brunet_arp_ != nullptr) brunet_arp_->unregister_ip(vip);
}

bool IpopNode::routes_for(net::Ipv4Address ip) const {
  return ip == cfg_.tap.ip || extra_ips_.count(ip) > 0;
}

// ---------------------------------------------------------------------------
// Outbound: tap -> overlay
// ---------------------------------------------------------------------------

void IpopNode::on_tap_frame(std::vector<std::uint8_t> frame) {
  if (!started_) return;
  ++metrics_.frames_captured;
  // User-level capture cost: serial CPU work plus pipelined wakeup latency.
  host_.cpu().run(cfg_.cpu_per_packet,
                  [this, frame = std::move(frame)]() mutable {
                    host_.loop().schedule_after(
                        cfg_.sched_latency,
                        [this, frame = std::move(frame)]() mutable {
                          if (started_) process_captured(std::move(frame));
                        });
                  });
}

void IpopNode::process_captured(std::vector<std::uint8_t> frame) {
  net::EthernetFrame eth;
  try {
    eth = net::EthernetFrame::decode(frame);
  } catch (const util::ParseError&) {
    ++metrics_.dropped_parse;
    return;
  }
  switch (eth.type) {
    case net::EtherType::kArp: {
      // The static gateway entry normally prevents ARP from reaching us;
      // contain any stray request by answering locally with the gateway
      // MAC (defense in depth, as in the prototype).
      ++metrics_.arp_contained;
      try {
        auto req = net::ArpMessage::decode(eth.payload);
        if (req.op != net::ArpOp::kRequest) return;
        net::ArpMessage reply;
        reply.op = net::ArpOp::kReply;
        reply.sender_mac = tap_->gateway_mac();
        reply.sender_ip = req.target_ip;
        reply.target_mac = req.sender_mac;
        reply.target_ip = req.sender_ip;
        net::EthernetFrame out;
        out.dst = req.sender_mac;
        out.src = tap_->gateway_mac();
        out.type = net::EtherType::kArp;
        out.payload = reply.encode();
        tap_->write_frame(out.encode());
      } catch (const util::ParseError&) {
      }
      return;
    }
    case net::EtherType::kIpv4:
      break;
    default:
      ++metrics_.dropped_non_ip;  // non-IP traffic stays inside the host
      return;
  }

  net::Ipv4Packet ip;
  try {
    ip = net::Ipv4Packet::decode(eth.payload);
  } catch (const util::ParseError&) {
    ++metrics_.dropped_parse;
    return;
  }
  if (!cfg_.tap.subnet.contains(ip.hdr.dst)) {
    ++metrics_.dropped_non_ip;  // not on the virtual network
    return;
  }
  tunnel(ip.hdr.dst, std::move(eth.payload));
}

void IpopNode::tunnel(net::Ipv4Address dst_ip,
                      std::vector<std::uint8_t> ip_bytes) {
  auto send_to = [this](brunet::Address addr,
                        std::vector<std::uint8_t> bytes) {
    ++metrics_.packets_tunneled;
    shortcuts_->note_packet(addr);
    overlay_->send(addr, brunet::PacketType::kIpTunnel,
                   brunet::RoutingMode::kExact, std::move(bytes));
  };

  if (!cfg_.use_brunet_arp) {
    // Classic IPOP: the destination node *is* SHA1(destination IP).
    send_to(brunet::Address::from_ip(dst_ip), std::move(ip_bytes));
    return;
  }
  brunet_arp_->resolve(
      dst_ip, [this, send_to, ip_bytes = std::move(ip_bytes)](
                  std::optional<brunet::Address> addr) mutable {
        if (!addr) {
          ++metrics_.dropped_unresolved;
          return;
        }
        send_to(*addr, std::move(ip_bytes));
      });
}

// ---------------------------------------------------------------------------
// Inbound: overlay -> tap
// ---------------------------------------------------------------------------

void IpopNode::on_tunnel_packet(const brunet::Packet& pkt) {
  // The overlay node already charged the per-packet CPU cost on receive;
  // only the injection latency remains.
  auto bytes = pkt.payload;
  host_.loop().schedule_after(cfg_.sched_latency,
                              [this, bytes = std::move(bytes)]() mutable {
                                if (started_) inject(std::move(bytes));
                              });
}

void IpopNode::inject(std::vector<std::uint8_t> ip_bytes) {
  net::Ipv4Packet ip;
  try {
    ip = net::Ipv4Packet::decode(ip_bytes);
  } catch (const util::ParseError&) {
    ++metrics_.dropped_parse;
    return;
  }
  if (!routes_for(ip.hdr.dst)) {
    ++metrics_.dropped_not_ours;
    return;
  }
  // Rebuild the Ethernet frame exactly as the paper describes: source is
  // the gateway's ARP-entry MAC, destination is the host's tap MAC.
  net::EthernetFrame eth;
  eth.dst = tap_->kernel_mac();
  eth.src = tap_->gateway_mac();
  eth.type = net::EtherType::kIpv4;
  eth.payload = std::move(ip_bytes);
  ++metrics_.packets_injected;
  tap_->write_frame(eth.encode());
}

}  // namespace ipop::core
