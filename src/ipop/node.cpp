#include "ipop/node.hpp"

#include "net/arp.hpp"
#include "util/logging.hpp"

namespace ipop::core {

IpopNode::IpopNode(net::Host& host, IpopConfig cfg)
    : host_(host), cfg_(std::move(cfg)) {
  // Full self-configuration implies DHT-backed resolution: with no
  // preassigned IP the overlay address cannot be SHA1(IP), so the
  // IP -> node binding must live in Brunet-ARP.
  if (cfg_.use_dhcp) cfg_.use_brunet_arp = true;
  tap_ = std::make_unique<TapDevice>(host_, cfg_.tap);
  // The overlay node's per-packet CPU charge is IPOP's processing cost:
  // every forwarded tunnel packet costs this much at every overlay hop.
  cfg_.overlay.cpu_per_packet = cfg_.cpu_per_packet;
  // Every node carries an Ed25519 identity; keys come from the seeded
  // sim generator, so a run's whole keyspace replays deterministically.
  const auto identity = brunet::NodeIdentity::generate(host_.stack().rng());
  if (cfg_.use_dhcp) {
    // Self-configuring mode is key-addressed: the ring position derives
    // from the public key, so leases / ARP bindings are hijack-proof and
    // departure notices must be signed.
    cfg_.overlay.require_signed_departures = true;
    overlay_ =
        std::make_unique<brunet::BrunetNode>(host_, identity, cfg_.overlay);
  } else {
    // Classic mapping keeps the paper's SHA1(IP) address; the identity
    // still signs DHT records and encrypts tunneled payloads.
    overlay_ = std::make_unique<brunet::BrunetNode>(
        host_, brunet::Address::from_ip(cfg_.tap.ip), cfg_.overlay);
    overlay_->set_identity(identity);
  }
  sealer_ = std::make_unique<brunet::FrameSealer>(identity.keys);
  dht_ = std::make_unique<brunet::Dht>(*overlay_, cfg_.dht);
  if (cfg_.use_brunet_arp) {
    brunet_arp_ = std::make_unique<BrunetArp>(*overlay_, *dht_,
                                              cfg_.brunet_arp);
  }
  if (cfg_.use_dhcp) {
    dhcp_ = std::make_unique<DhcpClient>(*overlay_, *dht_, cfg_.dhcp);
    dhcp_->set_lease_lost_handler([this](net::Ipv4Address) {
      // The address was re-leased elsewhere: stop answering for it and
      // reconfigure from scratch.
      release_address();
      if (started_) acquire_lease();
    });
  }
  shortcuts_ = std::make_unique<ShortcutManager>(*overlay_, cfg_.shortcuts);

  tap_->set_frame_handler(
      [this](util::Buffer f) { on_tap_frame(std::move(f)); });
  overlay_->set_handler(brunet::PacketType::kIpTunnel,
                        [this](const brunet::Packet& pkt) {
                          on_tunnel_packet(pkt);
                        });
}

IpopNode::~IpopNode() { stop(); }

void IpopNode::start() {
  if (started_) return;
  started_ = true;
  overlay_->start();
  if (cfg_.use_dhcp) {
    acquire_lease();
  } else if (brunet_arp_ != nullptr) {
    brunet_arp_->register_ip(cfg_.tap.ip);
  }
}

void IpopNode::acquire_lease() {
  dhcp_->acquire([this](std::optional<net::Ipv4Address> ip) {
    if (!started_) return;
    if (!ip) {
      // A probe round can exhaust itself on create() timeouts during
      // churn turbulence; a live node must not stay unnumbered forever,
      // so back off and re-probe (earlier timeouts may now succeed).
      IPOP_LOG_WARN(host_.name()
                    << ": virtual-IP acquisition failed; retrying");
      reacquire_timer_ = host_.loop().schedule_after(
          util::seconds(10), [this] {
            reacquire_timer_ = 0;
            if (started_ && !self_configured()) acquire_lease();
          });
      return;
    }
    on_lease(*ip);
  });
}

void IpopNode::on_lease(net::Ipv4Address vip) {
  cfg_.tap.ip = vip;
  tap_->configure_ip(vip);
  brunet_arp_->register_ip(vip);
  IPOP_LOG_DEBUG(host_.name() << ": self-configured as " << vip.to_string());
  if (on_configured_) on_configured_(vip);
}

void IpopNode::release_address() {
  if (brunet_arp_ != nullptr && !cfg_.tap.ip.is_unspecified()) {
    brunet_arp_->unregister_ip(cfg_.tap.ip);
  }
  cfg_.tap.ip = net::Ipv4Address{};
  // Unnumbering also retracts the /32 connected route.
  tap_->configure_ip(net::Ipv4Address{});
}

void IpopNode::stop() {
  if (!started_) return;
  started_ = false;
  if (reacquire_timer_ != 0) {
    host_.loop().cancel(reacquire_timer_);
    reacquire_timer_ = 0;
  }
  if (dhcp_ != nullptr) {
    dhcp_->release();
    // The lease dies with the renewals: stop answering for the address
    // now, or a long-crashed node would rejoin claiming self_configured
    // with an IP that may have been re-leased in the meantime.
    release_address();
  }
  overlay_->stop();
}

void IpopNode::leave() {
  if (!started_) return;
  started_ = false;
  if (reacquire_timer_ != 0) {
    host_.loop().cancel(reacquire_timer_);
    reacquire_timer_ = 0;
  }
  // Stop renewing and answering for the address first, then let the
  // overlay's graceful departure run the DHT handoff (our lease and ARP
  // records ride to the neighbors); overlay_->leave() ends in stop(), so
  // the edges drop afterwards.
  if (dhcp_ != nullptr) {
    dhcp_->release();
    release_address();
  }
  overlay_->leave();
}

void IpopNode::route_for(net::Ipv4Address vip) {
  if (brunet_arp_ == nullptr) {
    IPOP_LOG_WARN("route_for(" << vip.to_string()
                               << ") requires Brunet-ARP mode");
    return;
  }
  extra_ips_.insert(vip);
  if (auto idx = host_.stack().interface_by_name(cfg_.tap.name)) {
    host_.stack().add_ip_alias(*idx, vip);
  }
  brunet_arp_->register_ip(vip);
}

void IpopNode::unroute_for(net::Ipv4Address vip) {
  extra_ips_.erase(vip);
  if (auto idx = host_.stack().interface_by_name(cfg_.tap.name)) {
    host_.stack().remove_ip_alias(*idx, vip);
  }
  if (brunet_arp_ != nullptr) brunet_arp_->unregister_ip(vip);
}

bool IpopNode::routes_for(net::Ipv4Address ip) const {
  return ip == cfg_.tap.ip || extra_ips_.count(ip) > 0;
}

// ---------------------------------------------------------------------------
// Outbound: tap -> overlay
// ---------------------------------------------------------------------------

void IpopNode::on_tap_frame(util::Buffer frame) {
  if (!started_) return;
  ++metrics_.frames_captured;
  // User-level capture cost: serial CPU work plus pipelined wakeup latency.
  host_.cpu().run(cfg_.cpu_per_packet,
                  [this, alive = alive_.guard(),
                   frame = std::move(frame)]() mutable {
                    if (!alive) return;
                    host_.loop().schedule_after(
                        cfg_.sched_latency,
                        [this, alive, frame = std::move(frame)]() mutable {
                          if (!alive) return;
                          if (started_) process_captured(std::move(frame));
                        });
                  });
}

void IpopNode::process_captured(util::Buffer frame) {
  // Parse the headers as views into the captured frame; the payload bytes
  // are never copied on the capture path.
  net::EthernetView eth;
  try {
    eth = net::EthernetView::parse(frame.view());
  } catch (const util::ParseError&) {
    ++metrics_.dropped_parse;
    return;
  }
  switch (eth.type) {
    case net::EtherType::kArp: {
      // The static gateway entry normally prevents ARP from reaching us;
      // contain any stray request by answering locally with the gateway
      // MAC (defense in depth, as in the prototype).
      ++metrics_.arp_contained;
      try {
        auto req = net::ArpMessage::decode(eth.payload);
        if (req.op != net::ArpOp::kRequest) return;
        net::ArpMessage reply;
        reply.op = net::ArpOp::kReply;
        reply.sender_mac = tap_->gateway_mac();
        reply.sender_ip = req.target_ip;
        reply.target_mac = req.sender_mac;
        reply.target_ip = req.sender_ip;
        net::EthernetFrame out;
        out.dst = req.sender_mac;
        out.src = tap_->gateway_mac();
        out.type = net::EtherType::kArp;
        out.payload = reply.encode();
        tap_->write_frame(util::Buffer::wrap(out.encode()));
      } catch (const util::ParseError&) {
      }
      return;
    }
    case net::EtherType::kIpv4:
      break;
    default:
      ++metrics_.dropped_non_ip;  // non-IP traffic stays inside the host
      return;
  }

  net::Ipv4View ip;
  try {
    ip = net::Ipv4View::parse(eth.payload);
  } catch (const util::ParseError&) {
    ++metrics_.dropped_parse;
    return;
  }
  if (!cfg_.tap.subnet.contains(ip.hdr.dst)) {
    ++metrics_.dropped_non_ip;  // not on the virtual network
    return;
  }
  // Figure-3 encapsulation, zero-copy: strip the Ethernet header (the 14
  // bytes become headroom) and trim link padding; the Brunet header is
  // later prepended into that headroom by Packet::to_wire().
  const std::size_t ip_len = net::Ipv4Header::kSize + ip.payload.size();
  frame.drop_front(net::EthernetFrame::kHeaderSize);
  frame.drop_back(frame.size() - ip_len);
  tunnel(ip.hdr.dst, std::move(frame));
}

void IpopNode::tunnel(net::Ipv4Address dst_ip, util::Buffer ip_bytes) {
  auto send_to = [this](const brunet::Address& addr,
                        const util::crypto::PublicKey* peer_key,
                        util::Buffer bytes) {
    ++metrics_.packets_tunneled;
    shortcuts_->note_packet(addr);
    if (peer_key != nullptr) {
      // End-to-end seal on the still-exclusive capture buffer: encrypt in
      // place, sign, prepend the seal header into the per-path headroom.
      bytes = sealer_->seal(std::move(bytes), *peer_key, addr,
                            overlay_->send_headroom());
      ++metrics_.packets_sealed;
    } else {
      ++metrics_.packets_clear;
    }
    overlay_->send(brunet::Destination::unicast(addr),
                   brunet::OutboundFrame(brunet::PacketType::kIpTunnel,
                                         std::move(bytes)));
  };

  if (!cfg_.use_brunet_arp) {
    // Classic IPOP: the destination node *is* SHA1(destination IP) — an
    // address with no key behind it, so these frames go in the clear.
    send_to(brunet::Address::from_ip(dst_ip), nullptr, std::move(ip_bytes));
    return;
  }
  brunet_arp_->resolve(
      dst_ip, [this, send_to, ip_bytes = std::move(ip_bytes)](
                  std::optional<ArpBinding> binding) mutable {
        if (!binding) {
          ++metrics_.dropped_unresolved;
          return;
        }
        send_to(binding->addr, binding->has_key ? &binding->key : nullptr,
                std::move(ip_bytes));
      });
}

// ---------------------------------------------------------------------------
// Inbound: overlay -> tap
// ---------------------------------------------------------------------------

void IpopNode::on_tunnel_packet(const brunet::Packet& pkt) {
  // The overlay node already charged the per-packet CPU cost on receive;
  // only the injection latency remains.  Unwrapping the tunneled IP packet
  // is a sub-buffer share, not a copy.
  auto bytes = pkt.share_payload();
  if (brunet::FrameSealer::looks_sealed(bytes.as_span())) {
    // Buffer-ownership rule 7: once routing delivered the packet here the
    // payload bytes are exclusively ours, so the in-place decrypt through
    // this shared-refcount handle is sanctioned.
    auto plain =
        sealer_->open(std::move(bytes.assume_exclusive()), overlay_->address());
    if (!plain) {
      ++metrics_.dropped_seal_reject;
      return;
    }
    bytes = std::move(*plain);
  }
  host_.loop().schedule_after(cfg_.sched_latency,
                              [this, alive = alive_.guard(),
                               bytes = std::move(bytes)]() mutable {
                                if (!alive) return;
                                if (started_) inject(std::move(bytes));
                              });
}

void IpopNode::inject(util::Buffer ip_bytes) {
  net::Ipv4View ip;
  try {
    ip = net::Ipv4View::parse(ip_bytes.view());
  } catch (const util::ParseError&) {
    ++metrics_.dropped_parse;
    return;
  }
  if (!routes_for(ip.hdr.dst)) {
    ++metrics_.dropped_not_ours;
    return;
  }
  // Rebuild the Ethernet frame exactly as the paper describes: source is
  // the gateway's ARP-entry MAC, destination is the host's tap MAC.  The
  // header lands in the headroom left by the consumed Brunet header, so
  // injection does not copy the packet either.
  ++metrics_.packets_injected;
  tap_->write_frame(net::frame_onto(std::move(ip_bytes), tap_->kernel_mac(),
                                    tap_->gateway_mac(),
                                    net::EtherType::kIpv4));
}

}  // namespace ipop::core
