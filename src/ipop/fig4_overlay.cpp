#include "ipop/fig4_overlay.hpp"

namespace ipop::core {

namespace {
net::Ipv4Address vip_of(const std::string& name) {
  if (name == "F4") return net::Ipv4Address(172, 16, 0, 2);
  if (name == "F1") return net::Ipv4Address(172, 16, 0, 3);
  if (name == "F2") return net::Ipv4Address(172, 16, 0, 4);
  if (name == "V1") return net::Ipv4Address(172, 16, 0, 18);
  if (name == "L1") return net::Ipv4Address(172, 16, 0, 20);
  if (name == "F3") return net::Ipv4Address(172, 16, 0, 51);
  throw std::out_of_range("unknown machine " + name);
}
}  // namespace

const std::vector<std::string>& Fig4Overlay::machine_names() {
  static const std::vector<std::string> names = {"F1", "F2", "F3",
                                                 "F4", "V1", "L1"};
  return names;
}

net::Host& Fig4Overlay::host(const std::string& name) {
  if (name == "F1") return *tb_.f1;
  if (name == "F2") return *tb_.f2;
  if (name == "F3") return *tb_.f3;
  if (name == "F4") return *tb_.f4;
  if (name == "V1") return *tb_.v1;
  if (name == "L1") return *tb_.l1;
  throw std::out_of_range("unknown machine " + name);
}

Fig4Overlay::Fig4Overlay(const Fig4OverlayOptions& opts)
    : tb_(net::build_fig4(opts.testbed)), opts_(opts) {
  const brunet::TransportAddress seed{opts.transport, tb_.f3_ip, 17001};
  for (const auto& name : machine_names()) {
    IpopConfig cfg;
    cfg.tap.ip = vip_of(name);
    cfg.overlay.transport = opts.transport;
    cfg.overlay.near_per_side = opts.near_per_side;
    cfg.cpu_per_packet = opts.cpu_per_packet;
    cfg.sched_latency = opts.sched_latency;
    cfg.use_brunet_arp = opts.use_brunet_arp;
    cfg.shortcuts = opts.shortcuts;
    auto node = std::make_unique<IpopNode>(host(name), cfg);
    if (name != "F3") node->add_seed(seed);
    vips_[name] = cfg.tap.ip;
    nodes_[name] = std::move(node);
  }
}

void Fig4Overlay::start_all() {
  for (auto& [name, node] : nodes_) node->start();
}

bool Fig4Overlay::converge(util::Duration budget) {
  auto& loop = tb_.net->loop();
  const auto deadline = loop.now() + budget;
  auto full = [&] {
    for (const auto& [name, node] : nodes_) {
      if (node->overlay().table().size() + 1 < nodes_.size()) return false;
    }
    return true;
  };
  while (loop.now() < deadline) {
    loop.run_until(loop.now() + util::milliseconds(500));
    if (full()) return true;
  }
  return full();
}

bool Fig4Overlay::link_pair(const std::string& a, const std::string& b,
                            util::Duration budget) {
  auto& na = node(a).overlay();
  auto& nb = node(b).overlay();
  auto& loop = tb_.net->loop();
  const auto deadline = loop.now() + budget;
  while (loop.now() < deadline) {
    if (na.table().contains(nb.address()) &&
        nb.table().contains(na.address())) {
      return true;
    }
    na.connect_to(nb.address(), nb.local_addresses(),
                  brunet::ConnectionType::kStructuredFar);
    nb.connect_to(na.address(), na.local_addresses(),
                  brunet::ConnectionType::kStructuredFar);
    loop.run_until(loop.now() + util::milliseconds(500));
  }
  return na.table().contains(nb.address()) &&
         nb.table().contains(na.address());
}

}  // namespace ipop::core
