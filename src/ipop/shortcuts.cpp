#include "ipop/shortcuts.hpp"

namespace ipop::core {

void ShortcutManager::erase(std::map<brunet::Address, Counter>::iterator it) {
  lru_.erase(it->second.lru_pos);
  counters_.erase(it);
  ++stats_.evicted;
}

void ShortcutManager::evict(util::TimePoint now) {
  // The LRU front is the counter untouched the longest.  Pop while it
  // carries no information worth keeping (measurement window and request
  // back-off both expired) — amortized O(1) per insertion.
  bool removed = false;
  while (!lru_.empty()) {
    auto it = counters_.find(lru_.front());
    const Counter& c = it->second;
    if (now - c.window_start > cfg_.window &&
        now - c.last_request > cfg_.retry_backoff) {
      erase(it);
      removed = true;
    } else {
      break;
    }
  }
  if (removed || counters_.empty() || counters_.size() < cfg_.max_tracked) {
    return;
  }
  // Everything is still live (pathological: > max_tracked hot
  // destinations inside one window).  Drop the least-recently-used
  // counter to keep the bound hard.  Deliberate trade-off: a force-
  // evicted counter forgets its request back-off, so under sustained
  // destination churn a re-created counter may re-request earlier than
  // retry_backoff — bounded extra connect traffic, in exchange for a
  // hard memory bound with no per-eviction bookkeeping.
  erase(counters_.find(lru_.front()));
}

void ShortcutManager::note_packet(const brunet::Address& dst) {
  if (!cfg_.enabled) return;
  if (node_.table().contains(dst)) {
    ++stats_.already_direct;
    return;  // greedy routing already uses the direct edge
  }
  const auto now = node_.host().loop().now();
  auto it = counters_.find(dst);
  if (it == counters_.end()) {
    if (counters_.size() >= cfg_.max_tracked) evict(now);
    it = counters_.emplace(dst, Counter{}).first;
    it->second.lru_pos = lru_.insert(lru_.end(), dst);
  } else {
    // Touch: move to the LRU back in O(1).
    lru_.splice(lru_.end(), lru_, it->second.lru_pos);
  }
  Counter& c = it->second;
  if (now - c.window_start > cfg_.window) {
    c.window_start = now;
    c.count = 0;
  }
  if (++c.count < cfg_.threshold) return;
  if (now - c.last_request < cfg_.retry_backoff) return;
  c.last_request = now;
  c.count = 0;
  ++stats_.requests;
  node_.request_connection(dst, brunet::ConnectionType::kTrafficShortcut);
}

}  // namespace ipop::core
