#include "ipop/shortcuts.hpp"

namespace ipop::core {

void ShortcutManager::evict(util::TimePoint now) {
  // Sweep: anything whose measurement window and request back-off both
  // expired carries no information worth keeping.
  for (auto it = counters_.begin(); it != counters_.end();) {
    const Counter& c = it->second;
    if (now - c.window_start > cfg_.window &&
        now - c.last_request > cfg_.retry_backoff) {
      it = counters_.erase(it);
      ++stats_.evicted;
    } else {
      ++it;
    }
  }
  if (counters_.empty() || counters_.size() < cfg_.max_tracked) return;
  // Everything is still live (pathological: > max_tracked hot
  // destinations inside one window).  Drop the stalest counter to keep
  // the bound hard.
  auto stalest = counters_.begin();
  for (auto it = counters_.begin(); it != counters_.end(); ++it) {
    if (it->second.window_start < stalest->second.window_start) stalest = it;
  }
  counters_.erase(stalest);
  ++stats_.evicted;
}

void ShortcutManager::note_packet(const brunet::Address& dst) {
  if (!cfg_.enabled) return;
  if (node_.table().contains(dst)) {
    ++stats_.already_direct;
    return;  // greedy routing already uses the direct edge
  }
  const auto now = node_.host().loop().now();
  auto it = counters_.find(dst);
  if (it == counters_.end()) {
    if (counters_.size() >= cfg_.max_tracked) evict(now);
    it = counters_.emplace(dst, Counter{}).first;
  }
  Counter& c = it->second;
  if (now - c.window_start > cfg_.window) {
    c.window_start = now;
    c.count = 0;
  }
  if (++c.count < cfg_.threshold) return;
  if (now - c.last_request < cfg_.retry_backoff) return;
  c.last_request = now;
  c.count = 0;
  ++stats_.requests;
  node_.request_connection(dst, brunet::ConnectionType::kTrafficShortcut);
}

}  // namespace ipop::core
