#include "ipop/shortcuts.hpp"

namespace ipop::core {

void ShortcutManager::note_packet(const brunet::Address& dst) {
  if (!cfg_.enabled) return;
  if (node_.table().contains(dst)) {
    ++stats_.already_direct;
    return;  // greedy routing already uses the direct edge
  }
  const auto now = node_.host().loop().now();
  Counter& c = counters_[dst];
  if (now - c.window_start > cfg_.window) {
    c.window_start = now;
    c.count = 0;
  }
  if (++c.count < cfg_.threshold) return;
  if (now - c.last_request < cfg_.retry_backoff) return;
  c.last_request = now;
  c.count = 0;
  ++stats_.requests;
  node_.request_connection(dst, brunet::ConnectionType::kTrafficShortcut);
}

}  // namespace ipop::core
