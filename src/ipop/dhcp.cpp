#include "ipop/dhcp.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace ipop::core {

DhcpClient::DhcpClient(brunet::BrunetNode& node, brunet::Dht& dht,
                       DhcpConfig cfg)
    : node_(node), dht_(dht), cfg_(cfg) {}

DhcpClient::~DhcpClient() {
  stopped_ = true;
  if (renew_timer_ != 0) node_.host().loop().cancel(renew_timer_);
  if (claim_timer_ != 0) node_.host().loop().cancel(claim_timer_);
}

brunet::Address DhcpClient::key_for(net::Ipv4Address ip) {
  return brunet::Address::hash("ipop-dhcp:" + ip.to_string());
}

std::vector<std::uint8_t> DhcpClient::lease_value() const {
  const auto& b = node_.address().bytes();
  std::vector<std::uint8_t> v(b.begin(), b.end());
  if (node_.has_identity()) {
    const auto& pk = node_.identity().keys.public_key().bytes;
    v.insert(v.end(), pk.begin(), pk.end());
  }
  return v;
}

brunet::Record DhcpClient::lease_record() const {
  brunet::Record rec;
  rec.value = util::Buffer::wrap(lease_value());
  // kKeyBound makes the storing node require the claimed address to
  // derive from the signing key: nobody can lease an IP *as us*.  Only
  // valid when the overlay address really is key-derived.
  if (node_.key_addressed()) rec.flags |= brunet::Record::kKeyBound;
  return rec;
}

bool DhcpClient::value_is_ours(const brunet::Record& rec) const {
  const auto mine = lease_value();
  const auto theirs = rec.value.as_span();
  return mine.size() == theirs.size() &&
         std::equal(mine.begin(), mine.end(), theirs.begin());
}

net::Ipv4Address DhcpClient::candidate(int attempt) const {
  // Deterministic per (node, attempt): hash the overlay address down to a
  // seed so each node probes its own pseudo-random walk of the pool —
  // N nodes spread over a pool much larger than N rarely collide, and a
  // retry after a conflict lands somewhere fresh.
  std::uint64_t seed = 0x6970'6f70'6468'6370ull;  // "ipopdhcp"
  for (auto byte : node_.address().bytes()) {
    seed = util::splitmix64(seed) ^ byte;
  }
  std::uint64_t round_salt = probe_round_;
  util::Rng rng(seed + static_cast<std::uint64_t>(attempt) * 0x9E3779B9ull +
                util::splitmix64(round_salt));
  for (int tries = 0; tries < 64; ++tries) {
    const auto idx = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cfg_.pool_size) - 1));
    const net::Ipv4Address ip(cfg_.pool_start.value + idx);
    const auto last = ip.value & 0xFF;
    if (last == 0 || last == 255) continue;
    return ip;
  }
  return net::Ipv4Address(cfg_.pool_start.value + 1);
}

void DhcpClient::acquire(AcquireCallback cb) {
  if (acquiring_ || lease_.has_value()) {
    if (cb) cb(lease_);
    return;
  }
  acquiring_ = true;
  ++probe_round_;
  try_claim(epoch_, 0, std::move(cb));
}

void DhcpClient::try_claim(std::uint64_t epoch, int attempt,
                           AcquireCallback cb) {
  if (stopped_ || epoch != epoch_) return;
  if (!node_.joined()) {
    // Still isolated: a kClosest create would deliver to ourselves and
    // "succeed" no matter who else holds the address.  Wait for the
    // bootstrap edge before probing.
    claim_timer_ = node_.host().loop().schedule_after(
        cfg_.join_poll, [this, epoch, attempt, cb = std::move(cb)]() mutable {
          claim_timer_ = 0;
          try_claim(epoch, attempt, std::move(cb));
        });
    return;
  }
  if (attempt >= cfg_.max_attempts) {
    IPOP_LOG_WARN("DHCP: pool exhausted after " << attempt << " probes");
    acquiring_ = false;
    if (cb) cb(std::nullopt);
    return;
  }
  const auto ip = candidate(attempt);
  ++stats_.attempts;
  dht_.create(
      key_for(ip), lease_record(),
      [this, epoch, ip, attempt, cb = std::move(cb)](bool ok) mutable {
        if (stopped_ || epoch != epoch_) return;
        if (!ok) {
          ++stats_.conflicts;
          try_claim(epoch, attempt + 1, std::move(cb));
          return;
        }
        if (!cfg_.confirm_readback) {
          lease_acquired(epoch, ip, std::move(cb));
          return;
        }
        // Read-back: the owner that accepted our create must still hold
        // our value.  If ring churn split ownership and someone else's
        // claim stuck, walk on to the next candidate.
        dht_.get(key_for(ip),
                 [this, epoch, ip, attempt, cb = std::move(cb)](
                     std::optional<brunet::Record> rec) mutable {
                   if (stopped_ || epoch != epoch_) return;
                   if (rec && value_is_ours(*rec)) {
                     lease_acquired(epoch, ip, std::move(cb));
                   } else {
                     ++stats_.conflicts;
                     try_claim(epoch, attempt + 1, std::move(cb));
                   }
                 });
      });
}

void DhcpClient::lease_acquired(std::uint64_t epoch, net::Ipv4Address ip,
                                AcquireCallback cb) {
  lease_ = ip;
  acquiring_ = false;
  ++stats_.acquisitions;
  IPOP_LOG_DEBUG("DHCP: leased " << ip.to_string() << " to "
                                 << node_.address().short_hex());
  renew_timer_ = node_.host().loop().schedule_after(
      cfg_.renew_interval, [this, epoch] { renew_tick(epoch); });
  if (cb) cb(lease_);
}

void DhcpClient::renew_tick(std::uint64_t epoch) {
  renew_timer_ = 0;
  if (stopped_ || epoch != epoch_ || !lease_.has_value()) return;
  if (!node_.joined()) {
    // Isolated (every connection evicted): a kClosest create would
    // self-deliver and "renew" against our own store no matter who holds
    // the key by now — the same double-allocation hazard the acquisition
    // path guards against.  Hold the lease provisionally and retry once
    // the overlay is reachable again; if the real record expired in the
    // meantime, the next genuine renewal detects the new holder.
    renew_timer_ = node_.host().loop().schedule_after(
        cfg_.renew_interval / 4, [this, epoch] { renew_tick(epoch); });
    return;
  }
  const auto ip = *lease_;
  dht_.create(key_for(ip), lease_record(), [this, epoch, ip](bool ok) {
    if (stopped_ || epoch != epoch_ || !lease_.has_value() ||
        *lease_ != ip) {
      return;
    }
    if (ok) {
      ++stats_.renewals;
      dispute_rounds_ = 0;
      renew_timer_ = node_.host().loop().schedule_after(
          cfg_.renew_interval, [this, epoch] { renew_tick(epoch); });
      return;
    }
    ++stats_.renewal_failures;
    // A failed refresh is either a transient timeout (keep the lease,
    // retry soon) or a genuine loss — the key now carries someone else's
    // value because our record expired during a partition and the IP was
    // re-leased.  Read the record back to tell them apart.
    dht_.get(key_for(ip),
             [this, epoch, ip](std::optional<brunet::Record> rec) {
               if (stopped_ || epoch != epoch_ || !lease_.has_value() ||
                   *lease_ != ip) {
                 return;
               }
               if (!rec || value_is_ours(*rec)) {
                 // Still ours (or unreachable): retry on a short fuse.
                 dispute_rounds_ = 0;
                 renew_timer_ = node_.host().loop().schedule_after(
                     cfg_.renew_interval / 4,
                     [this, epoch] { renew_tick(epoch); });
                 return;
               }
               // Someone else's value is visible — but under churn that is
               // usually a transient split-brain: a rival's create was
               // accepted by a fresh post-churn owner that missed the
               // handoff, and the rival's own read-back then disagreed and
               // walked on, stranding its record.  The incumbent is the
               // one node still renewing, so republish/handoff reconciles
               // toward us; dispute a few rounds before conceding.
               if (dispute_rounds_ < cfg_.dispute_rounds) {
                 ++dispute_rounds_;
                 renew_timer_ = node_.host().loop().schedule_after(
                     cfg_.renew_interval / 4,
                     [this, epoch] { renew_tick(epoch); });
                 return;
               }
               dispute_rounds_ = 0;
               ++stats_.lost_leases;
               lease_.reset();
               IPOP_LOG_WARN("DHCP: lease on " << ip.to_string()
                                               << " lost to another holder");
               if (on_lost_) on_lost_(ip);
             });
  });
}

void DhcpClient::release() {
  // A signed release hands the IP back to the pool immediately instead
  // of waiting out the record TTL (only possible with an identity; an
  // unsigned release would be a hijack primitive, so the DHT refuses
  // it).  Best-effort: if the release is lost the TTL still reclaims.
  if (lease_.has_value() && node_.has_identity()) {
    dht_.release(key_for(*lease_), nullptr);
  }
  // Invalidate every continuation of the current acquire/renew chain —
  // including ones parked inside the DHT's get-retry timers, which no
  // timer handle here can reach.
  ++epoch_;
  if (renew_timer_ != 0) {
    node_.host().loop().cancel(renew_timer_);
    renew_timer_ = 0;
  }
  if (claim_timer_ != 0) {
    node_.host().loop().cancel(claim_timer_);
    claim_timer_ = 0;
  }
  lease_.reset();
  acquiring_ = false;
}

}  // namespace ipop::core
