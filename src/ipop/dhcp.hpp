// DHCP over the DHT: self-configuring virtual-IP allocation.
//
// The paper's title promises *self-configuring* virtual IP networks; this
// is the subsystem that delivers it.  A joining IPOP node knows only the
// virtual address pool, not its own address.  It derives candidate IPs
// from its overlay address, claims one with the DHT's atomic
// create-if-absent primitive (the uniqueness check runs at the key's
// owner, so two nodes racing for one IP cannot both win), verifies the
// claim with a read-back, and then renews the lease on a timer — the same
// create() call, which the owner accepts because the value (our overlay
// address) matches.  A node that stops renewing loses its lease when the
// DHT record's TTL runs out, so addresses leak back to the pool under
// churn without any central server.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "brunet/dht.hpp"

namespace ipop::core {

struct DhcpConfig {
  /// Leasable pool: [pool_start, pool_start + pool_size).  Addresses whose
  /// last octet is 0 or 255 are skipped (network/broadcast conventions).
  net::Ipv4Address pool_start = net::Ipv4Address(172, 16, 1, 0);
  std::uint32_t pool_size = 4096;
  /// Lease refresh cadence; must be well below the DHT record TTL or the
  /// lease expires out from under a live node.
  util::Duration renew_interval = util::seconds(60);
  /// Candidate IPs probed before acquire() reports failure.
  int max_attempts = 16;
  /// Poll cadence while waiting for the overlay join: claiming before the
  /// node has any connection would route the create to ourselves and
  /// self-allocate blindly (the partition double-allocation hazard).
  util::Duration join_poll = util::milliseconds(500);
  /// After a successful create, read the record back and require our own
  /// value: catches the double-allocation race where ring churn briefly
  /// splits ownership of the key.
  bool confirm_readback = true;
  /// Consecutive renewal read-backs showing a rival value tolerated
  /// before the lease is declared lost.  Split-brains under churn are
  /// usually stranded records from a rival that already walked on;
  /// disputing (short-fuse re-renewals) lets republish/handoff reconcile
  /// toward the incumbent instead of churning the address.
  int dispute_rounds = 3;
};

struct DhcpStats {
  std::uint64_t attempts = 0;          // create() probes sent
  std::uint64_t conflicts = 0;         // candidate held by someone else
  std::uint64_t acquisitions = 0;
  std::uint64_t renewals = 0;          // successful lease refreshes
  std::uint64_t renewal_failures = 0;  // refresh rejected or timed out
  std::uint64_t lost_leases = 0;
};

class DhcpClient {
 public:
  using AcquireCallback =
      std::function<void(std::optional<net::Ipv4Address>)>;
  using LeaseLostHandler = std::function<void(net::Ipv4Address)>;

  DhcpClient(brunet::BrunetNode& node, brunet::Dht& dht, DhcpConfig cfg = {});
  ~DhcpClient();

  DhcpClient(const DhcpClient&) = delete;
  DhcpClient& operator=(const DhcpClient&) = delete;

  /// Probe the pool and claim a lease; cb receives the acquired IP or
  /// nullopt after max_attempts conflicts.  One acquisition at a time.
  void acquire(AcquireCallback cb);
  /// Stop renewing (the DHT record ages out; a graceful leave() hands it
  /// to a neighbor first, where it blocks reuse until the TTL passes).
  void release();

  std::optional<net::Ipv4Address> lease() const { return lease_; }
  /// Called when a renewal discovers the key now carries someone else's
  /// value (our record TTL'd out during a partition and the IP was
  /// re-allocated) — the holder must reconfigure.
  void set_lease_lost_handler(LeaseLostHandler h) { on_lost_ = std::move(h); }
  const DhcpStats& stats() const { return stats_; }

  /// DHT key for a lease record: distinct namespace from Brunet-ARP so a
  /// lease and a binding for the same IP never collide.
  static brunet::Address key_for(net::Ipv4Address ip);

 private:
  net::Ipv4Address candidate(int attempt) const;
  void try_claim(std::uint64_t epoch, int attempt, AcquireCallback cb);
  void lease_acquired(std::uint64_t epoch, net::Ipv4Address ip,
                      AcquireCallback cb);
  void renew_tick(std::uint64_t epoch);
  /// Lease record value: this node's overlay address, plus its public
  /// key when it has an identity — resolvers reading the lease learn the
  /// encryption key along with the address.
  std::vector<std::uint8_t> lease_value() const;
  /// The lease as a typed DHT record (kKeyBound when the node's address
  /// is key-derived, so only this node's key can claim it).
  brunet::Record lease_record() const;
  bool value_is_ours(const brunet::Record& rec) const;

  brunet::BrunetNode& node_;
  brunet::Dht& dht_;
  DhcpConfig cfg_;
  DhcpStats stats_;
  std::optional<net::Ipv4Address> lease_;
  LeaseLostHandler on_lost_;
  bool acquiring_ = false;
  /// Salts candidate(): bumped once per acquisition round so a retry
  /// after "pool exhausted" probes a FRESH pseudo-random walk.  Without
  /// it the walk is fully determined by the node address, and a node
  /// whose max_attempts candidates are all genuinely taken (likely at
  /// high pool load — 10k nodes on a 20k pool is a coin flip per probe)
  /// re-probes the same taken addresses forever.
  std::uint64_t probe_round_ = 0;
  /// Consecutive disputed renewals (see DhcpConfig::dispute_rounds).
  int dispute_rounds_ = 0;
  std::uint64_t renew_timer_ = 0;
  std::uint64_t claim_timer_ = 0;  // join-wait poll
  /// Bumped by release(): continuations of an older acquire/renew chain
  /// parked inside DHT retries compare their captured epoch and die,
  /// instead of reviving after a stop()/start() cycle and completing a
  /// second, parallel acquisition.
  std::uint64_t epoch_ = 0;
  bool stopped_ = false;
};

}  // namespace ipop::core
