#include "ipop/tap.hpp"

namespace ipop::core {

namespace {
sim::LinkConfig tap_link_config(const TapConfig& cfg) {
  sim::LinkConfig lcfg;
  lcfg.delay = cfg.crossing_delay;
  lcfg.bandwidth_bps = 0;  // memory copy: no serialization delay
  lcfg.queue_bytes = 1 << 20;
  return lcfg;
}
}  // namespace

TapDevice::TapDevice(net::Host& host, const TapConfig& cfg)
    : host_(host),
      cfg_(cfg),
      link_(host.loop(), tap_link_config(cfg), util::Rng(cfg.ip.value),
            cfg.name) {
  // Kernel face: register tap0 as an interface.  A /32 avoids a broad
  // connected route; the whole virtual subnet is instead routed through
  // the fictitious gateway so all frames carry its MAC (ARP containment).
  net::InterfaceConfig icfg;
  icfg.name = cfg_.name;
  icfg.ip = cfg_.ip;
  icfg.prefix_len = 32;
  icfg.mtu = cfg_.mtu;
  const std::size_t idx = host_.stack().add_interface(icfg, &link_.end_a());
  kernel_mac_ = host_.stack().interface_mac(idx);

  gateway_mac_ = net::MacAddress{{0x02, 0xCA, 0xFE, 0x00, 0x00, 0x01}};
  host_.stack().add_static_arp(idx, cfg_.gateway, gateway_mac_);
  host_.stack().add_route(cfg_.subnet, idx, cfg_.gateway);

  // User face.
  link_.end_b().set_receiver([this](sim::Frame frame) {
    ++frames_read_;
    if (handler_) handler_(std::move(frame));
  });
}

void TapDevice::write_frame(util::Buffer frame) {
  ++frames_written_;
  link_.end_b().send(std::move(frame));
}

void TapDevice::configure_ip(net::Ipv4Address ip) {
  cfg_.ip = ip;
  if (auto idx = host_.stack().interface_by_name(cfg_.name)) {
    host_.stack().set_interface_ip(*idx, ip);
  }
}

}  // namespace ipop::core
