#include "ipop/brunet_arp.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace ipop::core {

BrunetArp::BrunetArp(brunet::BrunetNode& node, brunet::Dht& dht,
                     BrunetArpConfig cfg)
    : node_(node), dht_(dht), cfg_(cfg), alive_(std::make_shared<bool>(true)) {
  reregister_timer_ = node_.host().loop().schedule_after(
      cfg_.reregister_interval, [this] { reregister_tick(); });
  // Churn: a binding whose owner just vanished is stale no matter how
  // much cache TTL remains — drop it so the next packet re-resolves
  // (and finds the re-registered binding after a migration or re-lease).
  node_.add_connection_lost_observer(
      [this, alive = std::weak_ptr<bool>(alive_)](
          const brunet::Address& lost) {
        if (alive.expired()) return;
        const auto n = std::erase_if(cache_, [&](const auto& kv) {
          return kv.second.addr == lost;
        });
        stats_.invalidations += n;
      });
}

BrunetArp::~BrunetArp() {
  stopped_ = true;
  if (reregister_timer_ != 0) node_.host().loop().cancel(reregister_timer_);
}

void BrunetArp::register_ip(net::Ipv4Address vip) {
  if (std::find(registered_.begin(), registered_.end(), vip) ==
      registered_.end()) {
    registered_.push_back(vip);
  }
  do_register(vip, cfg_.register_retries);
}

void BrunetArp::do_register(net::Ipv4Address vip, int retries_left) {
  ++stats_.registrations;
  const auto& addr = node_.address();
  std::vector<std::uint8_t> value(addr.bytes().begin(), addr.bytes().end());
  dht_.put(key_for(vip), std::move(value),
           [this, vip, retries_left,
            alive = std::weak_ptr<bool>(alive_)](bool ok) {
             if (ok || alive.expired() || stopped_) return;
             if (retries_left <= 0 ||
                 std::find(registered_.begin(), registered_.end(), vip) ==
                     registered_.end()) {
               IPOP_LOG_WARN("Brunet-ARP registration for " << vip.to_string()
                                                            << " failed");
               return;
             }
             node_.host().loop().schedule_after(
                 cfg_.register_retry,
                 [this, vip, retries_left,
                  alive2 = std::weak_ptr<bool>(alive_)] {
                   if (alive2.expired() || stopped_) return;
                   if (std::find(registered_.begin(), registered_.end(),
                                 vip) == registered_.end()) {
                     return;  // unregistered while waiting
                   }
                   do_register(vip, retries_left - 1);
                 });
           });
}

void BrunetArp::invalidate(net::Ipv4Address vip) { cache_.erase(vip); }

void BrunetArp::unregister_ip(net::Ipv4Address vip) {
  std::erase(registered_, vip);
  // The DHT record ages out via TTL; an explicit tombstone is not needed
  // because a migrated IP re-binds with a newer version immediately.
}

void BrunetArp::reregister_tick() {
  if (stopped_) return;
  for (const auto& vip : registered_) {
    do_register(vip, cfg_.register_retries);
  }
  reregister_timer_ = node_.host().loop().schedule_after(
      cfg_.reregister_interval, [this] { reregister_tick(); });
}

void BrunetArp::resolve(net::Ipv4Address vip, ResolveCallback cb) {
  ++stats_.lookups;
  const auto now = node_.host().loop().now();
  auto cached = cache_.find(vip);
  if (cached != cache_.end() && cached->second.expires > now) {
    ++stats_.cache_hits;
    cb(cached->second.addr);
    return;
  }
  auto [it, fresh] = in_flight_.try_emplace(vip);
  it->second.push_back(std::move(cb));
  if (!fresh) return;  // lookup already running; coalesce

  dht_.get(key_for(vip), [this, vip](std::optional<std::vector<std::uint8_t>> v) {
    std::optional<brunet::Address> result;
    if (v && v->size() == brunet::Address::kBytes) {
      ++stats_.dht_hits;
      brunet::Address::Bytes b{};
      std::copy(v->begin(), v->end(), b.begin());
      result = brunet::Address(b);
      cache_[vip] = CacheEntry{*result,
                               node_.host().loop().now() + cfg_.cache_ttl};
    } else {
      ++stats_.dht_misses;
    }
    auto waiting = in_flight_.find(vip);
    if (waiting == in_flight_.end()) return;
    auto callbacks = std::move(waiting->second);
    in_flight_.erase(waiting);
    for (auto& callback : callbacks) callback(result);
  });
}

}  // namespace ipop::core
