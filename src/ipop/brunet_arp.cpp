#include "ipop/brunet_arp.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace ipop::core {

BrunetArp::BrunetArp(brunet::BrunetNode& node, brunet::Dht& dht,
                     BrunetArpConfig cfg)
    : node_(node), dht_(dht), cfg_(cfg), alive_(std::make_shared<bool>(true)) {
  reregister_timer_ = node_.host().loop().schedule_after(
      cfg_.reregister_interval, [this] { reregister_tick(); });
  // Churn: a binding whose owner just vanished is stale no matter how
  // much cache TTL remains — drop it so the next packet re-resolves
  // (and finds the re-registered binding after a migration or re-lease).
  node_.add_connection_lost_observer(
      [this, alive = std::weak_ptr<bool>(alive_)](
          const brunet::Address& lost) {
        if (alive.expired()) return;
        const auto n = std::erase_if(cache_, [&](const auto& kv) {
          return kv.second.binding.addr == lost;
        });
        stats_.invalidations += n;
      });
}

BrunetArp::~BrunetArp() {
  stopped_ = true;
  if (reregister_timer_ != 0) node_.host().loop().cancel(reregister_timer_);
}

void BrunetArp::register_ip(net::Ipv4Address vip) {
  if (std::find(registered_.begin(), registered_.end(), vip) ==
      registered_.end()) {
    registered_.push_back(vip);
  }
  do_register(vip, cfg_.register_retries);
}

brunet::Record BrunetArp::binding_record() const {
  const auto& addr = node_.address();
  std::vector<std::uint8_t> value(addr.bytes().begin(), addr.bytes().end());
  if (node_.has_identity()) {
    const auto& pk = node_.identity().keys.public_key().bytes;
    value.insert(value.end(), pk.begin(), pk.end());
  }
  brunet::Record rec;
  rec.value = util::Buffer::wrap(std::move(value));
  // Only a key-derived address can prove the value's address claim is
  // the signer's own (see Record::kKeyBound).
  if (node_.key_addressed()) rec.flags |= brunet::Record::kKeyBound;
  return rec;
}

void BrunetArp::do_register(net::Ipv4Address vip, int retries_left) {
  ++stats_.registrations;
  dht_.put(key_for(vip), binding_record(),
           [this, vip, retries_left,
            alive = std::weak_ptr<bool>(alive_)](bool ok) {
             if (ok || alive.expired() || stopped_) return;
             if (retries_left <= 0 ||
                 std::find(registered_.begin(), registered_.end(), vip) ==
                     registered_.end()) {
               IPOP_LOG_WARN("Brunet-ARP registration for " << vip.to_string()
                                                            << " failed");
               return;
             }
             node_.host().loop().schedule_after(
                 cfg_.register_retry,
                 [this, vip, retries_left,
                  alive2 = std::weak_ptr<bool>(alive_)] {
                   if (alive2.expired() || stopped_) return;
                   if (std::find(registered_.begin(), registered_.end(),
                                 vip) == registered_.end()) {
                     return;  // unregistered while waiting
                   }
                   do_register(vip, retries_left - 1);
                 });
           });
}

void BrunetArp::invalidate(net::Ipv4Address vip) { cache_.erase(vip); }

void BrunetArp::unregister_ip(net::Ipv4Address vip) {
  std::erase(registered_, vip);
  // With an identity, a signed release drops the binding immediately so
  // resolvers stop routing here; otherwise the record ages out via TTL
  // (a migrated IP re-binds with a newer version anyway).
  if (node_.has_identity()) dht_.release(key_for(vip), nullptr);
}

void BrunetArp::reregister_tick() {
  if (stopped_) return;
  for (const auto& vip : registered_) {
    do_register(vip, cfg_.register_retries);
  }
  reregister_timer_ = node_.host().loop().schedule_after(
      cfg_.reregister_interval, [this] { reregister_tick(); });
}

void BrunetArp::resolve(net::Ipv4Address vip, ResolveCallback cb) {
  ++stats_.lookups;
  const auto now = node_.host().loop().now();
  auto cached = cache_.find(vip);
  if (cached != cache_.end() && cached->second.expires > now) {
    ++stats_.cache_hits;
    cb(cached->second.binding);
    return;
  }
  auto [it, fresh] = in_flight_.try_emplace(vip);
  it->second.push_back(std::move(cb));
  if (!fresh) return;  // lookup already running; coalesce

  dht_.get(key_for(vip), [this, vip](std::optional<brunet::Record> rec) {
    std::optional<ArpBinding> result;
    if (rec && rec->value.size() >= brunet::Address::kBytes) {
      ++stats_.dht_hits;
      const auto bytes = rec->value.as_span();
      brunet::Address::Bytes b{};
      std::copy(bytes.begin(), bytes.begin() + brunet::Address::kBytes,
                b.begin());
      ArpBinding binding{brunet::Address(b), {}, false};
      // The owner key is the authoritative encryption key: the storing
      // node verified the record signature against it.  (The copy in the
      // value bytes is advisory — present even on unsigned records.)
      if (rec->is_signed()) {
        binding.key = rec->owner;
        binding.has_key = true;
      }
      cache_[vip] = CacheEntry{binding,
                               node_.host().loop().now() + cfg_.cache_ttl};
      result = binding;
    } else {
      ++stats_.dht_misses;
    }
    auto waiting = in_flight_.find(vip);
    if (waiting == in_flight_.end()) return;
    auto callbacks = std::move(waiting->second);
    in_flight_.erase(waiting);
    for (auto& callback : callbacks) callback(result);
  });
}

}  // namespace ipop::core
