// Traffic-triggered shortcut connections (paper Section V.1).
//
// The paper proposes monitoring P2P traffic per destination and creating a
// direct edge once a pair's packet rate crosses a threshold — turning a
// multi-hop overlay path into 1-hop IP routing while the overlay still
// provides address resolution and bootstrap.  This manager counts tunneled
// packets per destination in a sliding window and asks the overlay node to
// link directly when the threshold trips.
#pragma once

#include <cstdint>
#include <list>
#include <map>

#include "brunet/node.hpp"

namespace ipop::core {

struct ShortcutConfig {
  bool enabled = false;
  /// Packets to one destination within one window that trip a shortcut.
  std::uint32_t threshold = 32;
  util::Duration window = util::seconds(10);
  /// Back-off before re-requesting the same destination.
  util::Duration retry_backoff = util::seconds(30);
  /// Upper bound on tracked destinations.  Counters live on an LRU list:
  /// each packet touches its counter to the list's back in O(1), and
  /// inserting past the bound pops expired (then least-recently-used)
  /// counters off the front in O(1) — a node forwarding traffic for many
  /// destinations cannot grow memory without bound, and the hot set is
  /// never the part evicted.
  std::size_t max_tracked = 1024;
};

struct ShortcutStats {
  std::uint64_t requests = 0;
  std::uint64_t already_direct = 0;
  std::uint64_t evicted = 0;
};

class ShortcutManager {
 public:
  ShortcutManager(brunet::BrunetNode& node, ShortcutConfig cfg)
      : node_(node), cfg_(cfg) {}

  /// Record one tunneled packet toward `dst`; may trigger a connection
  /// request.
  void note_packet(const brunet::Address& dst);

  const ShortcutStats& stats() const { return stats_; }
  /// Destinations currently tracked (bounded by cfg.max_tracked).
  std::size_t tracked() const { return counters_.size(); }

 private:
  struct Counter {
    std::uint32_t count = 0;
    util::TimePoint window_start{};
    util::TimePoint last_request{};
    /// Position in lru_ (front = least recently touched).
    std::list<brunet::Address>::iterator lru_pos;
  };

  /// O(1): pop expired counters off the LRU front; if none were expired
  /// and the map is full, pop the least-recently-used counter.
  void evict(util::TimePoint now);
  void erase(std::map<brunet::Address, Counter>::iterator it);

  brunet::BrunetNode& node_;
  ShortcutConfig cfg_;
  ShortcutStats stats_;
  std::map<brunet::Address, Counter> counters_;
  std::list<brunet::Address> lru_;
};

}  // namespace ipop::core
