// Traffic-triggered shortcut connections (paper Section V.1).
//
// The paper proposes monitoring P2P traffic per destination and creating a
// direct edge once a pair's packet rate crosses a threshold — turning a
// multi-hop overlay path into 1-hop IP routing while the overlay still
// provides address resolution and bootstrap.  This manager counts tunneled
// packets per destination in a sliding window and asks the overlay node to
// link directly when the threshold trips.
#pragma once

#include <cstdint>
#include <map>

#include "brunet/node.hpp"

namespace ipop::core {

struct ShortcutConfig {
  bool enabled = false;
  /// Packets to one destination within one window that trip a shortcut.
  std::uint32_t threshold = 32;
  util::Duration window = util::seconds(10);
  /// Back-off before re-requesting the same destination.
  util::Duration retry_backoff = util::seconds(30);
  /// Upper bound on tracked destinations.  Inserting past the bound first
  /// sweeps counters whose window (and back-off) expired, then — if the
  /// map is still full — evicts the stalest counter, so a node forwarding
  /// traffic for many destinations cannot grow memory without bound.
  std::size_t max_tracked = 1024;
};

struct ShortcutStats {
  std::uint64_t requests = 0;
  std::uint64_t already_direct = 0;
  std::uint64_t evicted = 0;
};

class ShortcutManager {
 public:
  ShortcutManager(brunet::BrunetNode& node, ShortcutConfig cfg)
      : node_(node), cfg_(cfg) {}

  /// Record one tunneled packet toward `dst`; may trigger a connection
  /// request.
  void note_packet(const brunet::Address& dst);

  const ShortcutStats& stats() const { return stats_; }
  /// Destinations currently tracked (bounded by cfg.max_tracked).
  std::size_t tracked() const { return counters_.size(); }

 private:
  struct Counter {
    std::uint32_t count = 0;
    util::TimePoint window_start{};
    util::TimePoint last_request{};
  };

  /// Drop counters whose window and back-off both expired; if none
  /// qualified and the map is full, drop the stalest counter.
  void evict(util::TimePoint now);

  brunet::BrunetNode& node_;
  ShortcutConfig cfg_;
  ShortcutStats stats_;
  std::map<brunet::Address, Counter> counters_;
};

}  // namespace ipop::core
