// IpopNode — the paper's primary contribution (Section III).
//
// One IpopNode per host glues three things together:
//
//   tap device  <-->  user-level IPOP process  <-->  Brunet overlay
//
// Outbound: Ethernet frames the kernel writes to tap0 are captured; ARP is
// contained locally; the IPv4 payload is extracted, the destination
// virtual IP resolved to an overlay address (SHA1(ip) classically, or via
// the Brunet-ARP DHT), and the packet tunneled through the P2P overlay
// (Figure 3 encapsulation).  Inbound: a tunneled IP packet is unwrapped,
// rebuilt into an Ethernet frame (src = fictitious gateway MAC, dst = tap
// MAC) and written back to the tap, where the kernel stack delivers it to
// unmodified applications.
//
// User-level processing is modeled with two calibrated knobs per packet:
// a serial CPU occupancy (bounds throughput) and a scheduling latency
// (bounds RTT); both scale with host load.  These reproduce the paper's
// 6-10 ms single-hop overhead and its 20-30 % LAN throughput ratio, as
// well as the Planet-Lab collapse at load > 10 (Sections IV-B and IV-D).
#pragma once

#include <memory>
#include <optional>
#include <set>

#include "brunet/dht.hpp"
#include "brunet/node.hpp"
#include "brunet/secure.hpp"
#include "ipop/brunet_arp.hpp"
#include "ipop/dhcp.hpp"
#include "ipop/shortcuts.hpp"
#include "ipop/tap.hpp"
#include "util/lifetime.hpp"

namespace ipop::core {

struct IpopConfig {
  TapConfig tap;
  brunet::NodeConfig overlay;
  /// Serial CPU occupancy per captured/forwarded packet (user-level
  /// processing: Mono runtime, encapsulation, copies).
  util::Duration cpu_per_packet = util::microseconds(240);
  /// Additional pipelined latency per crossing (process wakeups, tap
  /// scheduling, double kernel-stack traversal).
  util::Duration sched_latency = util::microseconds(1330);
  /// Resolve IP -> overlay address via the Brunet-ARP DHT instead of the
  /// static SHA1 mapping (enables multi-IP routing and migration).
  bool use_brunet_arp = false;
  BrunetArpConfig brunet_arp;
  /// DHT tuning (replication factor, TTLs, retry budgets).
  brunet::DhtConfig dht;
  ShortcutConfig shortcuts;
  /// Full self-configuration: boot with *no* preassigned virtual IP
  /// (tap.ip unset), claim a lease from the pool via DHCP-over-the-DHT,
  /// and address the tap once it lands.  Implies use_brunet_arp (the
  /// overlay address is no longer SHA1(IP), so resolution must go through
  /// the DHT).
  bool use_dhcp = false;
  DhcpConfig dhcp;
};

struct IpopMetrics {
  std::uint64_t frames_captured = 0;
  std::uint64_t packets_tunneled = 0;
  std::uint64_t packets_injected = 0;
  std::uint64_t arp_contained = 0;
  std::uint64_t dropped_non_ip = 0;
  std::uint64_t dropped_parse = 0;
  std::uint64_t dropped_unresolved = 0;
  std::uint64_t dropped_not_ours = 0;
  /// Tunnel payloads encrypted + signed before leaving, vs. sent in the
  /// clear (no peer key known: the classic SHA1(IP) mapping, or a legacy
  /// unsigned binding).
  std::uint64_t packets_sealed = 0;
  std::uint64_t packets_clear = 0;
  /// Inbound sealed frames FrameSealer::open refused (bad signature,
  /// frame bound to another destination, truncated header).
  std::uint64_t dropped_seal_reject = 0;
};

class IpopNode {
 public:
  /// The overlay address is SHA1(virtual IP), per the paper.
  IpopNode(net::Host& host, IpopConfig cfg);
  ~IpopNode();

  IpopNode(const IpopNode&) = delete;
  IpopNode& operator=(const IpopNode&) = delete;

  void add_seed(brunet::TransportAddress ta) { overlay_->add_seed(ta); }
  void start();
  /// Abrupt stop (models a crash: peers discover via keepalive misses).
  void stop();
  /// Graceful departure: the overlay announces kDeparting and the DHT
  /// hands its records (including our lease and ARP bindings) to the ring
  /// neighbors before edges drop.
  void leave();

  /// Route for an additional virtual IP (a VM hosted here).  Requires
  /// Brunet-ARP mode; the binding is published to the DHT and the host
  /// kernel will accept injected packets for it.
  void route_for(net::Ipv4Address vip);
  /// Stop routing for a migrated-away IP.
  void unroute_for(net::Ipv4Address vip);

  /// The node's virtual IP: preassigned, or 0.0.0.0 in DHCP mode until
  /// the lease lands (see self_configured()).
  net::Ipv4Address virtual_ip() const { return cfg_.tap.ip; }
  /// DHCP mode: true once a lease is held and the tap is addressed.
  bool self_configured() const {
    return !cfg_.use_dhcp || !cfg_.tap.ip.is_unspecified();
  }
  /// DHCP mode: invoked (possibly repeatedly, after lease loss and
  /// re-acquisition) every time the node finishes self-configuring.
  void set_configured_handler(std::function<void(net::Ipv4Address)> h) {
    on_configured_ = std::move(h);
  }
  brunet::BrunetNode& overlay() { return *overlay_; }
  /// The node's end-to-end crypto pipeline (per-peer DH keys, in-place
  /// seal/open).  Its Stats expose the zero-copy counter the bench gate
  /// pins.
  brunet::FrameSealer& sealer() { return *sealer_; }
  TapDevice& tap() { return *tap_; }
  brunet::Dht& dht() { return *dht_; }
  BrunetArp* brunet_arp() { return brunet_arp_.get(); }
  DhcpClient* dhcp() { return dhcp_.get(); }
  ShortcutManager& shortcuts() { return *shortcuts_; }
  const IpopMetrics& metrics() const { return metrics_; }
  net::Host& host() { return host_; }

 private:
  void on_tap_frame(util::Buffer frame);
  void process_captured(util::Buffer frame);
  void tunnel(net::Ipv4Address dst_ip, util::Buffer ip_bytes);
  void on_tunnel_packet(const brunet::Packet& pkt);
  void inject(util::Buffer ip_bytes);
  bool routes_for(net::Ipv4Address ip) const;
  void acquire_lease();
  void on_lease(net::Ipv4Address vip);
  /// Dropping the lease always retracts the ARP registration and
  /// unnumbers the tap (one definition, so no teardown path can forget a
  /// step and leave the node answering for an address it no longer owns).
  void release_address();

  net::Host& host_;
  IpopConfig cfg_;
  std::unique_ptr<TapDevice> tap_;
  std::unique_ptr<brunet::BrunetNode> overlay_;
  std::unique_ptr<brunet::FrameSealer> sealer_;
  std::unique_ptr<brunet::Dht> dht_;
  std::unique_ptr<BrunetArp> brunet_arp_;
  std::unique_ptr<DhcpClient> dhcp_;
  std::unique_ptr<ShortcutManager> shortcuts_;
  std::function<void(net::Ipv4Address)> on_configured_;
  std::set<net::Ipv4Address> extra_ips_;
  IpopMetrics metrics_;
  std::uint64_t reacquire_timer_ = 0;  // DHCP: backoff after a failed acquire
  bool started_ = false;
  // Declared last: capture/injection latency events may still be queued
  // when the node dies; their lambdas carry a guard, not a bare `this`.
  util::AliveToken alive_;
};

}  // namespace ipop::core
