// Brunet-ARP: DHT-backed virtual-IP -> overlay-address resolution
// (paper Section III-E, "Multiple IPs and mobility").
//
// Classic IPOP maps an IP to the node addressed SHA1(IP), which forces one
// P2P node per virtual IP.  Brunet-ARP instead *stores* the binding
// IP -> node-address at the "Brunet-ARP-Mapper" (the node closest to
// SHA1(IP)), so one IPOP node can route for many virtual IPs (e.g. VMs it
// hosts) and a migrating VM can re-bind its IP to a new node.  Resolvers
// cache bindings with a TTL; stale entries age out after migration.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "brunet/dht.hpp"

namespace ipop::core {

struct BrunetArpConfig {
  util::Duration cache_ttl = util::seconds(30);
  util::Duration reregister_interval = util::seconds(60);
  /// A failed registration put (e.g. a request timeout while the ring is
  /// converging) retries on this short fuse instead of leaving the IP
  /// unresolvable until the next reregister_interval.
  util::Duration register_retry = util::seconds(2);
  int register_retries = 3;
  /// Packets queued per destination while a lookup is in flight.
  std::size_t pending_queue_limit = 64;
};

struct BrunetArpStats {
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t dht_hits = 0;
  std::uint64_t dht_misses = 0;
  std::uint64_t registrations = 0;
  /// Cached bindings dropped because their owner left the overlay (churn:
  /// the connection-lost observer fires before the TTL would age them
  /// out, so traffic re-resolves instead of black-holing).
  std::uint64_t invalidations = 0;
};

/// A resolved IP -> node binding.  Records written by identity-bearing
/// nodes carry the owner's public key, so resolving an IP also yields
/// the key to encrypt tunneled payloads to (how FrameSealer learns its
/// peer keys — no extra key-exchange round trip).
struct ArpBinding {
  brunet::Address addr;
  util::crypto::PublicKey key{};
  bool has_key = false;
};

class BrunetArp {
 public:
  using ResolveCallback = std::function<void(std::optional<ArpBinding>)>;

  BrunetArp(brunet::BrunetNode& node, brunet::Dht& dht,
            BrunetArpConfig cfg = {});
  ~BrunetArp();

  /// Announce that this overlay node routes for `vip` (kept fresh by
  /// periodic re-registration; calling again after migration re-binds).
  void register_ip(net::Ipv4Address vip);
  void unregister_ip(net::Ipv4Address vip);

  /// Resolve a virtual IP to an overlay address (cache, then DHT).
  void resolve(net::Ipv4Address vip, ResolveCallback cb);
  /// Drop a cached binding (e.g. after delivery failure).
  void invalidate(net::Ipv4Address vip);

  const BrunetArpStats& stats() const { return stats_; }

  /// DHT key for a virtual IP: SHA1(ip) == the classic IPOP node address,
  /// so the mapper for D is exactly the paper's "Brunet-ARP-Mapper".
  static brunet::Address key_for(net::Ipv4Address vip) {
    return brunet::Address::from_ip(vip);
  }

 private:
  struct CacheEntry {
    ArpBinding binding;
    util::TimePoint expires{};
  };

  void do_register(net::Ipv4Address vip, int retries_left);
  void reregister_tick();
  /// Binding record value: this node's overlay address (plus public key
  /// with an identity), kKeyBound when the address is key-derived.
  brunet::Record binding_record() const;

  brunet::BrunetNode& node_;
  brunet::Dht& dht_;
  BrunetArpConfig cfg_;
  BrunetArpStats stats_;
  std::map<net::Ipv4Address, CacheEntry> cache_;
  std::map<net::Ipv4Address, std::vector<ResolveCallback>> in_flight_;
  std::vector<net::Ipv4Address> registered_;
  std::uint64_t reregister_timer_ = 0;
  bool stopped_ = false;
  /// Observer-lambda sentinel (the node may outlive this BrunetArp).
  std::shared_ptr<bool> alive_;
};

}  // namespace ipop::core
