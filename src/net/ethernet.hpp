// Ethernet II framing and MAC addresses.
//
// IPOP operates on layer-2 frames: the kernel writes Ethernet frames to the
// tap device, IPOP extracts the IP payload and contains ARP locally (paper
// Section III-A).  This header provides the frame codec shared by the host
// stack, the switch-facing NICs and the tap glue.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace ipop::net {

struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  static MacAddress broadcast() {
    return MacAddress{{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}};
  }
  /// Locally administered unicast MAC derived from a small integer;
  /// the simulator allocates NIC MACs from a global counter.
  static MacAddress from_index(std::uint64_t index);

  bool is_broadcast() const { return *this == broadcast(); }
  std::string to_string() const;

  friend bool operator==(const MacAddress&, const MacAddress&) = default;
  friend auto operator<=>(const MacAddress&, const MacAddress&) = default;
};

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

struct EthernetFrame {
  MacAddress dst;
  MacAddress src;
  EtherType type = EtherType::kIpv4;
  std::vector<std::uint8_t> payload;

  static constexpr std::size_t kHeaderSize = 14;

  std::vector<std::uint8_t> encode() const;
  /// Throws util::ParseError on truncated input.
  static EthernetFrame decode(std::span<const std::uint8_t> bytes);
};

}  // namespace ipop::net

template <>
struct std::hash<ipop::net::MacAddress> {
  std::size_t operator()(const ipop::net::MacAddress& m) const noexcept {
    std::size_t h = 0;
    for (auto b : m.octets) h = h * 131 + b;
    return h;
  }
};
