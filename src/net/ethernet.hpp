// Ethernet II framing and MAC addresses.
//
// IPOP operates on layer-2 frames: the kernel writes Ethernet frames to the
// tap device, IPOP extracts the IP payload and contains ARP locally (paper
// Section III-A).  This header provides the frame codec shared by the host
// stack, the switch-facing NICs and the tap glue.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/buffer.hpp"
#include "util/bytes.hpp"

namespace ipop::net {

struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  static MacAddress broadcast() {
    return MacAddress{{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}};
  }
  /// Locally administered unicast MAC derived from a small integer;
  /// the simulator allocates NIC MACs from a global counter.
  static MacAddress from_index(std::uint64_t index);

  bool is_broadcast() const { return *this == broadcast(); }
  std::string to_string() const;

  friend bool operator==(const MacAddress&, const MacAddress&) = default;
  friend auto operator<=>(const MacAddress&, const MacAddress&) = default;
};

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

struct EthernetFrame {
  MacAddress dst;
  MacAddress src;
  EtherType type = EtherType::kIpv4;
  std::vector<std::uint8_t> payload;

  static constexpr std::size_t kHeaderSize = 14;

  std::vector<std::uint8_t> encode() const;
  /// Encode into a shared buffer with `headroom` spare bytes in front, so
  /// downstream consumers (IPOP's tap capture) can strip this header and
  /// prepend tunnel headers without copying the payload.
  util::Buffer encode_buffer(std::size_t headroom) const;
  /// Throws util::ParseError on truncated input.
  static EthernetFrame decode(util::BufferView bytes);
};

/// Zero-copy parsed Ethernet header: `payload` aliases the input view.
struct EthernetView {
  MacAddress dst;
  MacAddress src;
  EtherType type = EtherType::kIpv4;
  util::BufferView payload;

  /// Throws util::ParseError on truncated input.
  static EthernetView parse(util::BufferView frame);
};

/// Frame `payload` by prepending an Ethernet II header — in place when the
/// buffer's headroom and unique ownership allow, with one reallocation
/// otherwise.  This is how IPOP injects tunneled IP packets back into the
/// kernel without copying them.
util::Buffer frame_onto(util::Buffer payload, const MacAddress& dst,
                        const MacAddress& src, EtherType type);

}  // namespace ipop::net

template <>
struct std::hash<ipop::net::MacAddress> {
  std::size_t operator()(const ipop::net::MacAddress& m) const noexcept {
    std::size_t h = 0;
    for (auto b : m.octets) h = h * 131 + b;
    return h;
  }
};
