// "ttcp" throughput tool over the simulated stack.
//
// Mirrors the paper's bandwidth methodology (Tables II/III): a TCP bulk
// transfer of a fixed byte count; throughput = bytes / wall time, reported
// in KB/s as the paper does.  Works unmodified over the physical network
// and over an IPOP virtual network — which is the entire point of IPOP.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/stack.hpp"
#include "util/time.hpp"

namespace ipop::net {

struct TtcpResult {
  std::uint64_t bytes = 0;
  Duration elapsed{};
  bool ok = false;

  double throughput_kbps() const {  // kilobytes per second, as the paper
    const double secs = util::to_seconds(elapsed);
    return secs > 0 ? static_cast<double>(bytes) / 1024.0 / secs : 0.0;
  }
};

/// Sink side: accepts one connection, drains it, reports bytes/elapsed
/// from first connection to FIN.
class TtcpReceiver {
 public:
  TtcpReceiver(Stack& stack, std::uint16_t port);

  void set_done(std::function<void(TtcpResult)> done) {
    done_ = std::move(done);
  }

 private:
  void pump();
  void finish(bool ok);

  Stack& stack_;
  std::shared_ptr<TcpListener> listener_;
  std::shared_ptr<TcpSocket> sock_;
  std::function<void(TtcpResult)> done_;
  TtcpResult result_;
  TimePoint started_{};
  bool finished_ = false;
};

/// Source side: connects and streams `total_bytes`, then closes.
class TtcpSender {
 public:
  explicit TtcpSender(Stack& stack) : stack_(stack) {}

  struct Options {
    std::uint64_t total_bytes = 1 << 20;
    std::size_t write_chunk = 8 * 1024;
    TcpConfig tcp{};
  };

  void run(Ipv4Address dst, std::uint16_t port, const Options& opts,
           std::function<void(TtcpResult)> done);

 private:
  void pump();

  Stack& stack_;
  Options opts_;
  std::shared_ptr<TcpSocket> sock_;
  std::function<void(TtcpResult)> done_;
  std::uint64_t queued_ = 0;
  TimePoint started_{};
};

}  // namespace ipop::net
